package rng_test

import (
	"math"
	"testing"
	"testing/quick"

	"pop/internal/rng"
)

func TestDeterministicForSeed(t *testing.T) {
	a, b := rng.New(12345), rng.New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("divergence at step %d", i)
		}
	}
}

func TestSeedsDecorrelate(t *testing.T) {
	// Adjacent small seeds (thread ids) must produce unrelated streams.
	a, b := rng.New(1), rng.New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between adjacent seeds", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := rng.New(0)
	if x, y := r.Uint64(), r.Uint64(); x == 0 && y == 0 {
		t.Fatal("zero seed produced zero stream")
	}
}

func TestIntnBounds(t *testing.T) {
	r := rng.New(99)
	for _, n := range []int64{1, 2, 3, 10, 1 << 40, math.MaxInt64} {
		for i := 0; i < 2000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int64{0, -1, math.MinInt64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared-ish sanity: 16 buckets, 64K draws; each bucket within
	// 10% of the mean.
	r := rng.New(2024)
	const buckets, draws = 16, 1 << 16
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	mean := draws / buckets
	for b, c := range counts {
		if c < mean*9/10 || c > mean*11/10 {
			t.Fatalf("bucket %d has %d draws (mean %d)", b, c, mean)
		}
	}
}

func TestPctRange(t *testing.T) {
	r := rng.New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		p := r.Pct()
		if p < 0 || p >= 100 {
			t.Fatalf("Pct() = %d", p)
		}
		seen[p] = true
	}
	if len(seen) < 90 {
		t.Fatalf("only %d distinct percentages in 10000 draws", len(seen))
	}
}

// TestQuickIntnInRange property-checks Intn over arbitrary seeds/bounds.
func TestQuickIntnInRange(t *testing.T) {
	prop := func(seed uint64, bound uint32) bool {
		n := int64(bound%1000) + 1
		r := rng.New(seed)
		for i := 0; i < 50; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReseed(t *testing.T) {
	r := rng.New(7)
	first := r.Uint64()
	r.Seed(7)
	if r.Uint64() != first {
		t.Fatal("Seed did not reset the stream")
	}
}
