// Package rng implements the xoshiro256** pseudo-random generator used by
// the workload driver.
//
// The benchmark harness needs a per-thread generator that is (a) fast
// enough that random-key generation never dominates a data-structure
// operation, (b) seedable so trials are reproducible, and (c) free of any
// shared state so that adding worker threads adds zero synchronisation.
// math/rand's global functions fail (c) and math/rand.Source behind an
// interface call is slower than the list operations we measure, so we
// implement xoshiro256** (Blackman & Vigna) directly: four words of
// state, three rotations per number.
package rng

// State is a xoshiro256** generator. The zero value is invalid; use New.
type State struct {
	s [4]uint64
}

// splitmix64 is the recommended seeding generator for xoshiro: it
// decorrelates arbitrary user seeds (including small integers 0,1,2,...)
// into well-distributed state words.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed via splitmix64.
func New(seed uint64) *State {
	var st State
	st.Seed(seed)
	return &st
}

// Seed reinitialises the generator from seed.
func (r *State) Seed(seed uint64) {
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro's state must not be all zero; splitmix64 of any seed cannot
	// produce four zero words, but guard anyway for safety.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *State) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *State) Intn(n int64) int64 {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and divides only
	// on the (rare) rejection path.
	un := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul128(x, un)
		if lo >= un || lo >= (-un)%un {
			return int64(hi)
		}
	}
}

// Pct returns a uniform value in [0, 100), for op-mix selection.
func (r *State) Pct() int { return int(r.Intn(100)) }

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	tLo, tHi := t&mask, t>>32
	t = aLo*bHi + tLo
	lo |= t << 32
	hi = aHi*bHi + tHi + t>>32
	return hi, lo
}
