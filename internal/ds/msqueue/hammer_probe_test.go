package msqueue_test

import (
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pop/internal/core"
	"pop/internal/ds/msqueue"
	"pop/internal/rng"
)

// TestHammerProbe is the queue's cross-policy stress probe, mirroring
// the sets' hammer tests: concurrent enqueues/dequeues under every
// policy with a tiny reclaim threshold, then leak assertions — the
// retire-per-dequeue pattern makes the queue the highest retire-rate
// structure per operation, so reclamation bugs surface here fastest.
// Enabled long via MSQUEUE_HAMMER=1; a few short rounds otherwise.
func TestHammerProbe(t *testing.T) {
	dur := 2 * time.Second
	if os.Getenv("MSQUEUE_HAMMER") != "" {
		dur = 90 * time.Second
	}
	const workers = 4
	start := time.Now()
	round := 0
	for time.Since(start) < dur {
		round++
		for _, p := range core.Policies() {
			d := core.NewDomain(p, workers, &core.Options{ReclaimThreshold: 48, EpochFreq: 16, BatchSize: 8})
			q := msqueue.New(d)
			var enq, deq atomic.Int64
			var wg sync.WaitGroup
			threads := make([]*core.Thread, workers)
			for i := range threads {
				threads[i] = d.RegisterThread()
			}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int, th *core.Thread) {
					defer wg.Done()
					r := rng.New(uint64(id)*41 + uint64(round)*13 + uint64(p))
					for i := 0; i < 5000; i++ {
						if r.Intn(2) == 0 {
							q.Enqueue(th, int64(id)<<32|int64(i))
							enq.Add(1)
						} else if _, ok := q.Dequeue(th); ok {
							deq.Add(1)
						}
					}
				}(w, threads[w])
			}
			wg.Wait()
			for _, th := range threads {
				th.Flush()
			}
			// FIFO conservation: the queue holds exactly the un-dequeued
			// residue.
			if got, want := int64(q.Len(threads[0])), enq.Load()-deq.Load(); got != want {
				t.Fatalf("%v round %d: Len = %d, want %d", p, round, got, want)
			}
			// Leak check: once quiescent, Outstanding is the linked nodes
			// (residue + the dummy) plus anything the policy failed to
			// free — which must be nothing except under NR.
			if p != core.NR {
				if u := d.Unreclaimed(); u != 0 {
					t.Fatalf("%v round %d: %d unreclaimed nodes after flush", p, round, u)
				}
				if got, want := q.Outstanding(), enq.Load()-deq.Load()+1; got != want {
					t.Fatalf("%v round %d: Outstanding = %d, want %d (residue+dummy)", p, round, got, want)
				}
			}
		}
	}
}
