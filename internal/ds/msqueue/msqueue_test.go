package msqueue_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"pop/internal/core"
	"pop/internal/ds/msqueue"
)

func TestFIFOSequential(t *testing.T) {
	for _, p := range core.Policies() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			d := core.NewDomain(p, 1, &core.Options{ReclaimThreshold: 16, BatchSize: 4})
			q := msqueue.New(d)
			th := d.RegisterThread()
			if _, ok := q.Dequeue(th); ok {
				t.Fatal("dequeue from empty queue succeeded")
			}
			for i := int64(0); i < 100; i++ {
				q.Enqueue(th, i)
			}
			if got := q.Len(th); got != 100 {
				t.Fatalf("Len = %d, want 100", got)
			}
			for i := int64(0); i < 100; i++ {
				v, ok := q.Dequeue(th)
				if !ok || v != i {
					t.Fatalf("Dequeue = (%d, %v), want (%d, true)", v, ok, i)
				}
			}
			if _, ok := q.Dequeue(th); ok {
				t.Fatal("queue not empty after draining")
			}
			th.Flush()
			if p != core.NR && d.Unreclaimed() != 0 {
				t.Fatalf("unreclaimed = %d", d.Unreclaimed())
			}
		})
	}
}

// TestMPMCSumConservation: concurrent producers and consumers; the sum of
// consumed values must equal the sum produced, and per-producer order
// must be preserved (FIFO per producer: values from one producer arrive
// in increasing order).
func TestMPMCSumConservation(t *testing.T) {
	for _, p := range []core.Policy{core.HP, core.EBR, core.NBR, core.HazardPtrPOP, core.EpochPOP} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			const producers, consumers, perProducer = 2, 2, 5000
			d := core.NewDomain(p, producers+consumers, &core.Options{ReclaimThreshold: 32})
			q := msqueue.New(d)

			var produced, consumed atomic.Int64
			var consumedCount atomic.Int64
			var wg sync.WaitGroup
			stop := make(chan struct{})

			for i := 0; i < producers; i++ {
				th := d.RegisterThread()
				wg.Add(1)
				go func(id int, th *core.Thread) {
					defer wg.Done()
					base := int64(id) * 1_000_000
					for k := int64(0); k < perProducer; k++ {
						q.Enqueue(th, base+k)
						produced.Add(base + k)
					}
				}(i, th)
			}
			var cwg sync.WaitGroup
			lastSeen := make([][]int64, consumers)
			for i := 0; i < consumers; i++ {
				th := d.RegisterThread()
				cwg.Add(1)
				lastSeen[i] = []int64{-1, -1} // per-producer high-water
				go func(id int, th *core.Thread) {
					defer cwg.Done()
					for {
						v, ok := q.Dequeue(th)
						if !ok {
							select {
							case <-stop:
								// Drain whatever remains, then quit.
								for {
									v, ok := q.Dequeue(th)
									if !ok {
										return
									}
									consumed.Add(v)
									consumedCount.Add(1)
								}
							default:
								continue
							}
						}
						prod := int(v / 1_000_000)
						seq := v % 1_000_000
						if seq <= lastSeen[id][prod] {
							// Not a strict global FIFO check (two
							// consumers interleave), but a single
							// consumer must see each producer's values
							// in increasing order.
							t.Errorf("consumer %d saw producer %d out of order: %d after %d",
								id, prod, seq, lastSeen[id][prod])
							return
						}
						lastSeen[id][prod] = seq
						consumed.Add(v)
						consumedCount.Add(1)
					}
				}(i, th)
			}
			wg.Wait()
			close(stop)
			cwg.Wait()

			if consumedCount.Load() != producers*perProducer {
				t.Fatalf("consumed %d values, want %d", consumedCount.Load(), producers*perProducer)
			}
			if produced.Load() != consumed.Load() {
				t.Fatalf("sum mismatch: produced %d, consumed %d", produced.Load(), consumed.Load())
			}
		})
	}
}

// TestQuickQueueVsSlice property-checks the queue against a slice model
// on random enqueue/dequeue tapes.
func TestQuickQueueVsSlice(t *testing.T) {
	prop := func(tape []int16) bool {
		d := core.NewDomain(core.HazardPtrPOP, 1, &core.Options{ReclaimThreshold: 8})
		q := msqueue.New(d)
		th := d.RegisterThread()
		var model []int64
		for _, w := range tape {
			if w >= 0 {
				q.Enqueue(th, int64(w))
				model = append(model, int64(w))
			} else {
				v, ok := q.Dequeue(th)
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return q.Len(th) == len(model)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestDequeueRetiresDummies: every successful dequeue retires exactly one
// node (the old dummy), which is what feeds the reclaimer in this
// structure.
func TestDequeueRetiresDummies(t *testing.T) {
	d := core.NewDomain(core.HP, 1, &core.Options{ReclaimThreshold: 1 << 20})
	q := msqueue.New(d)
	th := d.RegisterThread()
	for i := int64(0); i < 50; i++ {
		q.Enqueue(th, i)
	}
	for i := int64(0); i < 50; i++ {
		q.Dequeue(th)
	}
	if got := d.Stats().Retires; got != 50 {
		t.Fatalf("retires = %d, want 50", got)
	}
}
