// Package msqueue implements the Michael-Scott lock-free FIFO queue —
// the original showcase data structure for hazard pointers (Michael
// [42] §5 uses it as the running example). It is included beyond the
// paper's five sets to demonstrate the POP algorithms' drop-in claim
// (§4.2.4: "compatible with the same data structures as hazard
// pointers") on a structure with a completely different reservation
// pattern: two fixed slots (head/tail), no traversals, and retirement of
// the dummy node on every dequeue.
package msqueue

import (
	"unsafe"

	"pop/internal/arena"
	"pop/internal/core"
)

// node is a queue cell. Header first (reclamation contract).
type node struct {
	core.Header
	val  int64
	next core.Atomic
}

// Queue is a lock-free multi-producer multi-consumer FIFO of int64.
type Queue struct {
	d     *core.Domain
	typ   uint8
	pool  *arena.Pool[node]
	cache []*arena.ThreadCache[node]
	head  core.Atomic // dummy node; its successor holds the front value
	tail  core.Atomic
}

// New creates an empty queue in domain d.
func New(d *core.Domain) *Queue {
	q := &Queue{
		d:     d,
		pool:  arena.NewPool[node](nil, nil),
		cache: make([]*arena.ThreadCache[node], d.MaxThreads()),
	}
	q.typ = d.RegisterType(func(t *core.Thread, h *core.Header) {
		q.cacheFor(t).Put((*node)(unsafe.Pointer(h)))
	})
	// The initial dummy is pool-managed: the first dequeue retires it.
	c := q.pool.NewCache()
	dummy := c.Get()
	dummy.val = 0
	dummy.next.Raw(nil)
	dummy.Header.Type = q.typ
	q.head.Raw(unsafe.Pointer(dummy))
	q.tail.Raw(unsafe.Pointer(dummy))
	return q
}

// Outstanding reports pool-level live+retired nodes.
func (q *Queue) Outstanding() int64 { return q.pool.Outstanding() }

func (q *Queue) cacheFor(t *core.Thread) *arena.ThreadCache[node] {
	c := q.cache[t.ID()]
	if c == nil {
		c = q.pool.NewCache()
		q.cache[t.ID()] = c
	}
	return c
}

const (
	slotHead = 0
	slotNext = 1
	slotTail = 0 // enqueue reuses slot 0 for the tail
)

// Enqueue appends v to the queue.
func (q *Queue) Enqueue(t *core.Thread, v int64) {
	t.StartOp()
	defer t.EndOp()
	cache := q.cacheFor(t)
	n := cache.Get()
	n.val = v
	n.next.Raw(nil)
	t.OnAlloc(&n.Header, q.typ)
	for {
		raw, ok := t.Protect(slotTail, &q.tail)
		if !ok {
			continue // neutralized: the new node is private, just retry
		}
		tail := (*node)(raw)
		next := tail.next.Load()
		if q.tail.Load() != unsafe.Pointer(tail) {
			continue
		}
		if next != nil {
			// Tail is lagging: help swing it.
			q.tail.CompareAndSwap(unsafe.Pointer(tail), next)
			continue
		}
		if !t.EnterWritePhase() {
			continue
		}
		if tail.next.CompareAndSwap(nil, unsafe.Pointer(n)) {
			q.tail.CompareAndSwap(unsafe.Pointer(tail), unsafe.Pointer(n))
			t.ExitWritePhase()
			return
		}
		t.ExitWritePhase()
	}
}

// Dequeue removes and returns the front value; ok=false when empty.
func (q *Queue) Dequeue(t *core.Thread) (v int64, ok bool) {
	t.StartOp()
	defer t.EndOp()
	for {
		raw, okp := t.Protect(slotHead, &q.head)
		if !okp {
			continue
		}
		head := (*node)(raw)
		tailRaw := q.tail.Load()
		nextRaw, okp := t.Protect(slotNext, &head.next)
		if !okp {
			continue
		}
		if q.head.Load() != unsafe.Pointer(head) {
			continue
		}
		next := (*node)(nextRaw)
		if unsafe.Pointer(head) == tailRaw {
			if next == nil {
				return 0, false // empty
			}
			// Tail lagging behind an in-flight enqueue: help.
			q.tail.CompareAndSwap(tailRaw, nextRaw)
			continue
		}
		if next == nil {
			// head != tail implies a successor exists; re-read raced.
			continue
		}
		// Read the value before the CAS publishes the node as the new
		// dummy (after the CAS another dequeuer may retire-free it).
		val := next.val
		if !t.EnterWritePhase() {
			continue
		}
		if q.head.CompareAndSwap(unsafe.Pointer(head), nextRaw) {
			t.Retire(&head.Header)
			t.ExitWritePhase()
			return val, true
		}
		t.ExitWritePhase()
	}
}

// Len counts queued values. Quiescent use only.
func (q *Queue) Len(t *core.Thread) int {
	n := 0
	cur := (*node)(q.head.Load())
	for raw := cur.next.Load(); raw != nil; raw = cur.next.Load() {
		cur = (*node)(raw)
		n++
	}
	return n
}
