package skiplist_test

import (
	"os"
	"sync"
	"testing"

	"pop/internal/chaos"
	"pop/internal/core"
	"pop/internal/ds/skiplist"
	"pop/internal/rng"
)

// TestChurnStorm is the thread-lifecycle acceptance storm: goroutines
// continuously lease a handle from the domain's pool, perform protected
// map operations that retire nodes (overwrites and deletes), and
// release the handle mid-stream — donating their unreclaimed retire
// lists — while long-lived scanner threads run range scans over the
// same structure (reservations live across every churn event). After
// the storm a flush must return live nodes to baseline: Outstanding
// (allocations minus frees) equal to the surviving key count, i.e. no
// node stranded on a departed thread's retire list and no node freed
// out from under a scanner via stale-reservation attribution across
// slot reuse.
func TestChurnStorm(t *testing.T) {
	legs := 12
	if os.Getenv("SKIPLIST_HAMMER") != "" {
		legs = 120
	}
	for _, p := range core.Policies() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			churnStorm(t, p, 4, 2, legs, 400)
		})
	}
}

// churnStorm runs one policy's storm: churners × legs leases, each leg
// doing ops mixed operations, against scanners running range scans.
func churnStorm(t *testing.T, p core.Policy, churners, scanners, legs, ops int) {
	const keyRange = 512
	d := core.NewDomain(p, churners+scanners+1, &core.Options{
		ReclaimThreshold: 64,
		EpochFreq:        16,
		BatchSize:        16,
	})
	pool := core.NewHandles(d)
	l := skiplist.New(d)

	// Prefill so scans see a populated structure from the start.
	seed, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < keyRange; k += 2 {
		l.PutIfAbsent(seed, k, uint64(k))
	}

	var (
		churnWG sync.WaitGroup
		scanWG  sync.WaitGroup
		stop    = make(chan struct{})
	)
	for s := 0; s < scanners; s++ {
		th, err := pool.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		scanWG.Add(1)
		go func(id int, th *core.Thread) {
			defer scanWG.Done()
			r := rng.New(uint64(id)*0x9e3779b97f4a7c15 + 0x5ca9)
			for {
				select {
				case <-stop:
					th.Flush()
					pool.Release(th)
					return
				default:
				}
				lo := r.Intn(keyRange)
				l.RangeCount(th, lo, lo+64)
			}
		}(s, th)
	}

	for c := 0; c < churners; c++ {
		churnWG.Add(1)
		go func(id int) {
			defer churnWG.Done()
			r := rng.New(uint64(id)*0xff51afd7ed558ccd + 0xc0a1)
			for leg := 0; leg < legs; leg++ {
				th, err := pool.Acquire()
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < ops; i++ {
					k := r.Intn(keyRange)
					switch r.Intn(4) {
					case 0:
						l.PutIfAbsent(th, k, uint64(k))
					case 1:
						l.Put(th, k, uint64(leg)<<32|uint64(i)) // overwrite: retires
					case 2:
						l.Delete(th, k)
					default:
						l.Get(th, k)
					}
				}
				// Depart mid-stream: the retire list this leg accumulated
				// is donated for adoption, the slot becomes re-leasable.
				pool.Release(th)
			}
		}(c)
	}
	churnWG.Wait()
	close(stop)
	scanWG.Wait()

	// Final drain: the surviving seed thread adopts all orphans and
	// flushes; then the shared invariant checker takes over (the
	// scenario-specific assertion that churn actually happened stays
	// local).
	seed.Flush()
	lc := d.Lifecycle()
	if lc.Releases == 0 {
		t.Fatalf("lifecycle after storm: %+v (no thread ever released — storm vacuous)", lc)
	}
	iv := chaos.Invariants{Policy: p}
	var vs []chaos.Violation
	vs = append(vs, iv.CheckLifecycle(lc, 1)...) // seed still leased
	vs = append(vs, iv.CheckBalance(l.Outstanding(), int64(l.Size(seed)))...)
	vs = append(vs, iv.CheckDrained(d)...)
	vs = append(vs, iv.CheckCounters(d.Stats())...)
	for _, v := range vs {
		t.Errorf("invariant violated: %s", v)
	}
	pool.Release(seed)
}
