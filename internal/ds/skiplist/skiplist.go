// Package skiplist implements a lock-free skiplist set (SKL in the
// harness) in the Fraser/Herlihy style: a sorted multi-level linked
// list in which each node carries a tower of forward links, each level
// is a Harris-Michael list in its own right (logical deletion by CAS
// marking the level's next pointer, physical unlink by a second CAS),
// and membership is defined by the bottom level alone. It is the
// repository's only structure with ordered range scans, which makes it
// the SMR-heaviest workload available: a scan is one long operation
// that protects every hop, exactly the traversal pressure the paper's
// §5.1.2 long-running-reads experiment puts on reservation publication.
//
// # Reservation discipline
//
// Traversals rotate three protection slots (pred/curr/next, Michael's
// index-rotation trick, as in hmlist) and re-validate pred.next == curr
// after every protect; descending a level keeps pred protected and
// re-walks from it. Range scans extend the same rotation along level 0
// and resume from the last emitted key when a hop fails validation, so
// results stay sorted and duplicate-free without restarting the scan.
//
// # Retire protocol (why towers don't break reclamation)
//
// A skiplist node is reachable from many levels, so "unlinked at level
// 0" does not mean unreachable — the retire contract every policy in
// core depends on. Two rules make retirement exact:
//
//  1. Only the thread whose CAS marks level 0 (the deletion's
//     linearization point) may retire the node, and only after a full
//     by-pointer purge descent has confirmed the node is unlinked from
//     every level. Helper traversals snip marked levels but never
//     retire.
//  2. The inserting thread announces tower construction in the node's
//     state word (LINKING). A deleter that finds LINKING still set
//     hands the retire off (RETIREREQ); whichever of the two clears its
//     bit last performs the purge + retire. The inserter additionally
//     keeps the node protected in a dedicated anchor slot from before
//     publication until its operation ends, and un-links any level it
//     raced a deleter on (link-then-mark interleavings) before
//     releasing LINKING — so a retired node can never be re-linked, and
//     a linked node can never be freed.
//
// Under NBR a neutralized inserter abandons the remaining tower levels
// instead of restarting: the node is already in the set (level 0), a
// short tower only costs balance, and the state protocol guarantees the
// node outlives every access the inserter still performs (a node with
// LINKING set is never retired, hence never freed).
package skiplist

import (
	"math"
	"sync/atomic"
	"unsafe"

	"pop/internal/arena"
	"pop/internal/core"
	"pop/internal/rng"
)

// MaxHeight is the tower-height cap. 2^20 keys at the expected one node
// per two towers per level covers every structure size the harness runs.
const MaxHeight = 20

// state-word bits (node.state).
const (
	// stateLinking is set by the inserter before the node is published
	// and cleared when tower construction (including undo of any
	// link/mark race) is complete. A node with LINKING set is never
	// retired.
	stateLinking = uint32(1) << 0
	// stateRetireReq is set by the deleter that won the level-0 mark
	// after its purge descent. If LINKING was already clear, the deleter
	// retires; otherwise the inserter does when it clears LINKING.
	stateRetireReq = uint32(1) << 1
)

// node is a skiplist cell. Header must be first (reclamation contract).
// The mark bit of next[lvl] tags *this* node as logically deleted at
// that level; level 0's mark is the deletion's linearization point.
type node struct {
	core.Header
	key    int64
	height int32         // tower height, 1..MaxHeight; immutable once published
	state  atomic.Uint32 // LINKING/RETIREREQ retire-handoff word
	next   [MaxHeight]core.Atomic
}

// threadLocal is a thread's allocation cache plus its private
// height-distribution generator.
type threadLocal struct {
	cache *arena.ThreadCache[node]
	hrng  *rng.State
}

// List is a lock-free skiplist set of int64 keys.
type List struct {
	d      *core.Domain
	typ    uint8
	pool   *arena.Pool[node]
	locals []*threadLocal // indexed by thread id, owner-only
	head   *node          // full-height sentinel, key = MinInt64
	tail   *node          // key = MaxInt64; terminates every level
}

// New creates an empty skiplist in domain d.
func New(d *core.Domain) *List {
	l := &List{
		d:      d,
		pool:   arena.NewPool[node](nil, nil),
		locals: make([]*threadLocal, d.MaxThreads()),
	}
	l.typ = d.RegisterType(func(t *core.Thread, h *core.Header) {
		l.localFor(t).cache.Put((*node)(unsafe.Pointer(h)))
	})
	// Sentinels come from the Go heap (never retired; Outstanding counts
	// only real keys).
	l.head = &node{key: math.MinInt64, height: MaxHeight}
	l.tail = &node{key: math.MaxInt64, height: MaxHeight}
	for i := 0; i < MaxHeight; i++ {
		l.head.next[i].Raw(unsafe.Pointer(l.tail))
	}
	return l
}

// Outstanding reports pool-level live+retired nodes (memory metric).
func (l *List) Outstanding() int64 { return l.pool.Outstanding() }

// localFor returns t's thread-local state, creating it on first use. The
// slot is only ever touched by t's goroutine.
func (l *List) localFor(t *core.Thread) *threadLocal {
	tl := l.locals[t.ID()]
	if tl == nil {
		tl = &threadLocal{
			cache: l.pool.NewCache(),
			hrng:  rng.New(0x5ee9_11f7<<16 ^ uint64(t.ID())*0x9e3779b97f4a7c15),
		}
		l.locals[t.ID()] = tl
	}
	return tl
}

// randomHeight draws a geometric(1/2) tower height in [1, MaxHeight].
func randomHeight(r *rng.State) int32 {
	h := int32(1)
	for bits := r.Uint64(); bits&1 == 1 && h < MaxHeight; bits >>= 1 {
		h++
	}
	return h
}

// Reservation slots: three rotating traversal slots plus a fixed anchor
// the inserter uses to keep its node protected during tower linking.
const (
	slotPred   = 0
	slotCurr   = 1
	slotNext   = 2
	slotAnchor = 3
)

// position is the result of a descent: the state of the walk at the
// lowest level visited, with pred and curr protected in the recorded
// slots (the hmlist discipline, per level).
type position struct {
	predCell *core.Atomic
	pred     *node // protected in sPred; head sentinel at minimum
	curr     *node // protected in sCurr; first node with key >= target key
	next     *node // curr's successor (nil iff curr == tail)
	sPred    int
	sCurr    int
	sNext    int
}

// descend walks from the head down to level lo and returns the position
// there. At each level it stops before the first node with key > key;
// nodes with key == key stop the walk unless target is non-nil, in which
// case only target itself stops it (the retirer's by-pointer purge walks
// past unmarked same-key reincarnations). Marked nodes encountered at
// any level are snipped — but never retired; see the package comment.
//
// ok=false means the operation was neutralized (NBR) and the caller must
// either restart from its entry point or abandon (tower building).
// A completed descent with target != nil proves target was unlinked from
// every level in [lo, MaxHeight): target is fully marked by then, so if
// the walk met it, it snipped it, and if not, it wasn't in the chain.
func (l *List) descend(t *core.Thread, key int64, lo int, target *node) (position, bool) {
retry:
	pos := position{pred: l.head, sPred: slotPred, sCurr: slotCurr, sNext: slotNext}
	for lvl := MaxHeight - 1; ; lvl-- {
		pos.predCell = &pos.pred.next[lvl]
		craw, ok := t.Protect(pos.sCurr, pos.predCell)
		if !ok {
			return pos, false
		}
		if core.Marked(craw) {
			// pred was logically deleted at this level under us; its
			// links are no longer a valid walk origin.
			goto retry
		}
		pos.curr = (*node)(craw)
		for {
			if pos.curr == l.tail {
				pos.next = nil
				break
			}
			nraw, ok := t.Protect(pos.sNext, &pos.curr.next[lvl])
			if !ok {
				return pos, false
			}
			// Validate the edge: pred must still point at curr, so curr
			// was reachable (and next its successor) after the protect.
			if pos.predCell.Load() != unsafe.Pointer(pos.curr) {
				goto retry
			}
			if core.Marked(nraw) {
				// curr is logically deleted at lvl: snip it. Retirement
				// is the mark winner's job (see package comment), so a
				// successful snip just drops the node from this level.
				succ := core.Mask(nraw)
				if !t.EnterWritePhase() {
					return pos, false
				}
				if !pos.predCell.CompareAndSwap(unsafe.Pointer(pos.curr), succ) {
					t.ExitWritePhase()
					goto retry
				}
				t.ExitWritePhase()
				pos.curr = (*node)(succ)
				pos.sCurr, pos.sNext = pos.sNext, pos.sCurr
				continue
			}
			if pos.curr.key > key || (pos.curr.key == key && (target == nil || pos.curr == target)) {
				pos.next = (*node)(nraw)
				break
			}
			// Advance along the level.
			pos.pred = pos.curr
			pos.predCell = &pos.curr.next[lvl]
			pos.curr = (*node)(nraw)
			pos.sPred, pos.sCurr, pos.sNext = pos.sCurr, pos.sNext, pos.sPred
		}
		if lvl == lo {
			return pos, true
		}
		// Descend: pred keeps its protection and the next level's walk
		// re-validates from it.
	}
}

// Contains reports whether key is in the set.
func (l *List) Contains(t *core.Thread, key int64) bool {
	checkKey(key)
	t.StartOp()
	defer t.EndOp()
	for {
		pos, ok := l.descend(t, key, 0, nil)
		if !ok {
			continue // neutralized: restart
		}
		return pos.curr != l.tail && pos.curr.key == key
	}
}

// Insert adds key; false if already present.
func (l *List) Insert(t *core.Thread, key int64) bool {
	checkKey(key)
	t.StartOp()
	defer t.EndOp()
	tl := l.localFor(t)
	var n *node
	var anchor core.Atomic
	for {
		pos, ok := l.descend(t, key, 0, nil)
		if !ok {
			continue // neutralized: n (if any) is still private, retry
		}
		if pos.curr != l.tail && pos.curr.key == key {
			if n != nil {
				tl.cache.Put(n) // never published: straight back to the pool
			}
			return false
		}
		if n == nil {
			n = tl.cache.Get()
			n.key = key
			n.height = randomHeight(tl.hrng)
			n.state.Store(stateLinking)
			for i := int32(0); i < n.height; i++ {
				n.next[i].Raw(unsafe.Pointer(l.tail))
			}
			t.OnAlloc(&n.Header, l.typ)
			anchor.Raw(unsafe.Pointer(n))
		}
		// Anchor n before publication: the reservation is taken while the
		// node provably cannot be retired (it is still private) and held
		// until EndOp, so the tower-building phase below may keep
		// touching n under every policy.
		if _, ok := t.Protect(slotAnchor, &anchor); !ok {
			continue
		}
		n.next[0].Raw(unsafe.Pointer(pos.curr))
		if !t.EnterWritePhase() {
			continue
		}
		if pos.predCell.CompareAndSwap(unsafe.Pointer(pos.curr), unsafe.Pointer(n)) {
			t.ExitWritePhase()
			break // linearized: n is in the set
		}
		t.ExitWritePhase()
	}
	// Build the tower. Failures here never affect the insert's outcome.
	for lvl := 1; lvl < int(n.height); lvl++ {
		if !l.linkLevel(t, n, key, lvl) {
			break
		}
	}
	// Release LINKING; if a deleter finished while we were linking, the
	// retire was handed to us.
	if old := n.state.And(^stateLinking); old&stateRetireReq != 0 {
		l.purge(t, n, key)
		t.Retire(&n.Header)
	}
	return true
}

// linkLevel links n into level lvl. false means the tower is abandoned:
// the node was deleted, another node owns the key, or the thread was
// neutralized (NBR) — in every case the set's contents are unaffected.
func (l *List) linkLevel(t *core.Thread, n *node, key int64, lvl int) bool {
	for {
		pos, ok := l.descend(t, key, lvl, nil)
		if !ok {
			return false
		}
		if pos.curr == n {
			return true // already linked at this level
		}
		if pos.curr != l.tail && pos.curr.key == key {
			// A different node owns the key at this level, which can only
			// happen after n was marked at level 0: stop building.
			return false
		}
		// Point n's level-lvl link at the successor, but only while the
		// level is unmarked (a mark here means a deleter beat us).
		for {
			raw := n.next[lvl].Load()
			if core.Marked(raw) {
				return false
			}
			if raw == unsafe.Pointer(pos.curr) {
				break
			}
			if !t.EnterWritePhase() {
				return false
			}
			done := n.next[lvl].CompareAndSwap(raw, unsafe.Pointer(pos.curr))
			t.ExitWritePhase()
			if done {
				break
			}
		}
		if !t.EnterWritePhase() {
			return false
		}
		if !pos.predCell.CompareAndSwap(unsafe.Pointer(pos.curr), unsafe.Pointer(n)) {
			t.ExitWritePhase()
			continue // position changed under us: re-walk this level
		}
		// Linked. If a deleter marked this level between the two CASes we
		// just re-linked a logically dead node: undo before the state
		// protocol can let anyone retire it.
		if raw := n.next[lvl].Load(); core.Marked(raw) {
			pos.predCell.CompareAndSwap(unsafe.Pointer(n), core.Mask(raw))
			t.ExitWritePhase()
			l.ensureUnlinked(t, n, key, lvl)
			return false
		}
		t.ExitWritePhase()
		return true
	}
}

// ensureUnlinked walks levels [lvl, MaxHeight) until a descent completes
// with n absent from each of them (n is fully marked by now, so any
// encounter snips it). n cannot be retired while we are here: LINKING is
// still set, so the descent may keep comparing against it safely.
func (l *List) ensureUnlinked(t *core.Thread, n *node, key int64, lvl int) {
	for {
		if _, ok := l.descend(t, key, lvl, n); ok {
			return
		}
	}
}

// purge makes n physically unreachable from every level. Callers hold
// the retire right (mark winner with LINKING clear, or inserter with
// RETIREREQ observed), which guarantees n stays allocated throughout.
func (l *List) purge(t *core.Thread, n *node, key int64) {
	for {
		if _, ok := l.descend(t, key, 0, n); ok {
			return
		}
	}
}

// Delete removes key; false if absent.
func (l *List) Delete(t *core.Thread, key int64) bool {
	checkKey(key)
	t.StartOp()
	defer t.EndOp()
restart:
	for {
		pos, ok := l.descend(t, key, 0, nil)
		if !ok {
			continue
		}
		if pos.curr == l.tail || pos.curr.key != key {
			return false
		}
		victim := pos.curr // protected in pos.sCurr
		// Mark the upper levels top-down (idempotent; concurrent deleters
		// may interleave here, the level-0 mark below decides the winner).
		for lvl := int(victim.height) - 1; lvl >= 1; lvl-- {
			for {
				raw := victim.next[lvl].Load()
				if core.Marked(raw) {
					break
				}
				if !t.EnterWritePhase() {
					goto restart
				}
				done := victim.next[lvl].CompareAndSwap(raw, core.WithMark(raw))
				t.ExitWritePhase()
				if done {
					break
				}
			}
		}
		// Level 0: the winning CAS is the linearization point and carries
		// the retire right.
		for {
			raw := victim.next[0].Load()
			if core.Marked(raw) {
				return false // another deleter linearized first
			}
			if !t.EnterWritePhase() {
				goto restart
			}
			won := victim.next[0].CompareAndSwap(raw, core.WithMark(raw))
			t.ExitWritePhase()
			if !won {
				continue
			}
			// From here victim cannot be freed even after our traversal
			// slots are reused: it is not retired until the handoff below
			// resolves, and only the handoff's winner retires it.
			l.purge(t, victim, key)
			if old := victim.state.Or(stateRetireReq); old&stateLinking == 0 {
				t.Retire(&victim.Header)
			}
			return true
		}
	}
}

// RangeCount counts the keys in [lo, hi].
func (l *List) RangeCount(t *core.Thread, lo, hi int64) int {
	n := 0
	l.scanRange(t, lo, hi, func(int64) { n++ })
	return n
}

// RangeCollect appends the keys in [lo, hi], ascending, to buf[:0] and
// returns the filled slice. The result is sorted and duplicate-free;
// each reported key was observed present (unmarked and reachable) at
// some point during the scan, and no key absent for the scan's whole
// duration is reported.
func (l *List) RangeCollect(t *core.Thread, lo, hi int64, buf []int64) []int64 {
	buf = buf[:0]
	l.scanRange(t, lo, hi, func(k int64) { buf = append(buf, k) })
	return buf
}

// scanRange walks level 0 across [lo, hi] as one long operation,
// emitting every key observed unmarked while validated reachable. When a
// hop fails validation (or hits a marked node, whose links are not a
// safe bridge), the scan re-descends to the first key not yet emitted —
// keys already emitted are never revisited, keeping output sorted and
// unique.
func (l *List) scanRange(t *core.Thread, lo, hi int64, emit func(int64)) {
	if lo > hi {
		return
	}
	t.StartOp()
	defer t.EndOp()
	from := lo
	for {
		pos, ok := l.descend(t, from, 0, nil)
		if !ok {
			continue // neutralized: resume at `from`
		}
		predCell, curr := pos.predCell, pos.curr
		// Full three-slot rotation, exactly as in descend: the node
		// holding predCell must keep its reservation through the
		// validation read below, so the slot reused for each new protect
		// is the one two hops back, never the current predecessor's.
		sPred, sCurr, sNext := pos.sPred, pos.sCurr, pos.sNext
		for {
			if curr == l.tail || curr.key > hi {
				return
			}
			// Snapshot the key while curr is still protected: a failed
			// Protect below means we were neutralized and curr may be
			// reclaimed before the !ok branch runs.
			k := curr.key
			nraw, ok := t.Protect(sNext, &curr.next[0])
			if !ok {
				from = k
				break // neutralized: re-descend
			}
			if predCell.Load() != unsafe.Pointer(curr) {
				from = k
				break // chain changed behind us: re-descend
			}
			if core.Marked(nraw) {
				// curr was deleted under the scan: skip it, and restart
				// past it (a marked node's links may already be stale).
				from = k + 1
				break
			}
			emit(k)
			from = k + 1
			predCell = &curr.next[0]
			curr = (*node)(nraw)
			sPred, sCurr, sNext = sCurr, sNext, sPred
		}
	}
}

// Size counts unmarked bottom-level nodes. Quiescent use only.
func (l *List) Size(t *core.Thread) int {
	n := 0
	for c := (*node)(core.Mask(l.head.next[0].Load())); c != l.tail; {
		raw := c.next[0].Load()
		if !core.Marked(raw) {
			n++
		}
		c = (*node)(core.Mask(raw))
	}
	return n
}

func checkKey(key int64) {
	if key == math.MinInt64 || key == math.MaxInt64 {
		panic("skiplist: key collides with sentinel")
	}
}
