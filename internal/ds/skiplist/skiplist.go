// Package skiplist implements a lock-free skiplist map (SKL in the
// harness) whose bottom layer *is* an hmlist.List: membership, upsert,
// replace-node-and-retire overwrite, deletion, batched get/put and the
// LINKING/RETIREREQ retire handoff all live in the shared Harris-Michael
// bottom layer (see package hmlist), and this package contributes only
// the probabilistic index above it. It is one of the repository's two
// structures with ordered range scans, which makes it the SMR-heaviest
// workload available: a scan is one long operation that protects every
// hop, exactly the traversal pressure the paper's §5.1.2
// long-running-reads experiment puts on reservation publication.
//
// # Index columns: GC-managed, protection-free
//
// Earlier revisions gave every node a tower of forward links and paid
// for it twice: ~96 B/key of pooled link cells, and a full reservation
// protocol (protect + validate per hop) on every index level, because
// index cells lived inside reclaimed nodes. The index is now a separate
// spine of *columns* on the ordinary Go heap:
//
//	column{ key, n (-> bottom node), right[height] }
//
// A column is published once by its inserter and unlinked when its node
// retires, but never pooled or freed manually — the garbage collector
// owns it. That one decision deletes the entire reservation protocol
// from the index: walkers chase column pointers with plain loads (a
// stale column routes conservatively, never dangles), and index CASes
// need no write-phase brackets under NBR because nothing in the index
// is ever reclaimed by the domain. Only the final hop — materializing
// the bottom-layer hint out of a column's n cell — publishes a
// reservation, and the hmlist walk it seeds revalidates everything.
//
// Column heights are geometric(1/4): three quarters of keys have no
// column at all, and the expected index footprint is ~1/3 cell per key
// (~13 B amortized), versus one mandatory tower per key before. Lookups
// still descend O(log n) expected: a quarter-density index is one extra
// bottom hop per descent on average, traded for hint hops that touch no
// shared SMR state at all.
//
// # Hint protocol (why a column may be trusted)
//
// descendIndex walks the columns to the last column with key < target
// and protects that column's n cell. The column clears n *before* the
// node is retired (purge runs before Retire under every policy — see
// hmlist's retire ordering), so a successful Protect on n happened
// before the clear, hence before the Retire, hence before any
// reclaimer's scan: the hint node is safely dereferenceable. The hinted
// hmlist walk then revalidates the ordinary way; any staleness
// (hint marked, edge changed, CAS lost) surfaces as valid=false and the
// operation re-descends for a fresh hint, falling back to a plain head
// walk after maxHintTries misses so progress never depends on a stalled
// purge.
//
// # Column lifecycle
//
// The inserter publishes its bottom node with LINKING set (hmlist's
// linking mode), builds the column bottom-up — so a column spliced
// anywhere is always spliced at index level 0 — and only then releases
// LINKING. Retirement funnels through hmlist's handoff: whichever side
// clears its state bit last runs this package's purge hook exactly
// once. The purge walks index level 0 to find the victim's column by
// node identity (absent there means the column was never published:
// unreachable Go garbage, nothing to do), marks every right cell
// top-down so walkers stop splicing behind it and help unlink it, then
// unlinks each level and clears n last. Mark-then-unlink on the column
// cells is what makes a concurrent splice either land before the mark
// (and be preserved by the unlink CAS, which swings to the masked
// successor) or fail its CAS and re-walk — a splice is never lost into
// a dead column.
package skiplist

import (
	"math"
	"sync/atomic"
	"unsafe"

	"pop/internal/core"
	"pop/internal/ds/hmlist"
	"pop/internal/rng"
)

// maxIndexHeight caps the number of index levels. Geometric(1/4)
// heights over 2^16 expected columns per level-16 cell covers every
// structure size the harness runs.
const maxIndexHeight = 16

// maxHintTries is how many stale hints an operation tolerates before
// falling back to a head walk: re-descending is cheap, but progress
// must not depend on the purge of a dead column ever being scheduled.
const maxHintTries = 3

// slotHint is the reservation slot holding the bottom-layer hint node.
// The hinted hmlist walk rotates it with slots 0 and 1; slot 2 is only
// used by head walks.
const slotHint = 3

// column is one key's index presence: height cells of right links plus
// the bottom node the index routes to. Columns live on the Go heap —
// the GC reclaims them, the domain never does (see the package
// comment) — so key is plainly immutable, right cells carry the usual
// mark bit ("this column is being purged"), and n is a protectable cell
// cleared before the node retires.
type column struct {
	key   int64
	n     core.Atomic
	right []core.Atomic
}

// colLocal is a thread's private height-distribution generator.
type colLocal struct {
	hrng *rng.State
}

// List is a lock-free skiplist map of int64 keys to uint64 values.
type List struct {
	b       *hmlist.List
	headCol *column // full-height column before all keys; never purged
	tailCol *column // terminates every index level (marked cells must
	// stay non-nil, the core.WithMark contract), key = MaxInt64
	top    atomic.Int32 // index levels in use; see indexTop
	locals []*colLocal  // indexed by thread id, owner-only
}

// New creates an empty skiplist in domain d.
func New(d *core.Domain) *List {
	l := &List{
		headCol: &column{key: math.MinInt64, right: make([]core.Atomic, maxIndexHeight)},
		tailCol: &column{key: math.MaxInt64},
		locals:  make([]*colLocal, d.MaxThreads()),
	}
	for h := 0; h < maxIndexHeight; h++ {
		l.headCol.right[h].Raw(unsafe.Pointer(l.tailCol))
	}
	l.b = hmlist.New(d)
	l.b.EnableLinking(l.purgeIndex)
	return l
}

// Outstanding reports pool-level live+retired nodes (memory metric).
// Index columns are deliberately absent: they are Go-heap objects.
func (l *List) Outstanding() int64 { return l.b.Outstanding() }

// localFor returns t's thread-local state, creating it on first use.
// The slot is only ever touched by t's goroutine.
func (l *List) localFor(t *core.Thread) *colLocal {
	tl := l.locals[t.ID()]
	if tl == nil {
		tl = &colLocal{hrng: rng.New(0x5ee9_11f7<<16 ^ uint64(t.ID())*0x9e3779b97f4a7c15)}
		l.locals[t.ID()] = tl
	}
	return tl
}

// indexHeight draws a geometric(1/4) column height in [0, maxIndexHeight]:
// 0 (no column) with probability 3/4, each further level a 1/4 event.
func indexHeight(r *rng.State) int {
	h := 0
	for bits := r.Uint64(); bits&3 == 3 && h < maxIndexHeight; bits >>= 2 {
		h++
	}
	return h
}

// indexTop returns the number of index levels currently worth
// descending: the effective-height probe, now O(1). The counter is
// raised by splicers and never lowered — starting a descent above the
// live columns only costs nil loads, while starting below one is always
// safe because upper levels are only shortcuts (every key is reachable
// through the bottom layer alone).
func (l *List) indexTop() int { return int(l.top.Load()) }

func (l *List) raiseTop(h int) {
	for {
		t0 := l.top.Load()
		if int32(h) <= t0 || l.top.CompareAndSwap(t0, int32(h)) {
			return
		}
	}
}

// descendIndex walks the column spine to the last column with key
// strictly below target. All loads are plain (GC memory); marked right
// cells belong to columns being purged and are helped out of the chain
// when the predecessor's cell is still clean. Returns nil when no
// column precedes target (walk from the list head).
func (l *List) descendIndex(key int64) *column {
	pred := l.headCol
	for h := l.indexTop() - 1; h >= 0; h-- {
		for {
			craw := pred.right[h].Load()
			c := (*column)(core.Mask(craw))
			if c.key >= key {
				break // descend a level
			}
			rraw := c.right[h].Load()
			if core.Marked(rraw) {
				// c is being purged. Help unlink it if pred's cell is
				// clean; a marked pred cell means pred is being purged
				// too — just route through (columns never dangle).
				if !core.Marked(craw) && pred.right[h].CompareAndSwap(craw, core.Mask(rraw)) {
					continue
				}
				pred = c
				continue
			}
			pred = c
		}
	}
	if pred == l.headCol {
		return nil
	}
	return pred
}

// hintFor materializes a bottom-layer walk origin for key: descend the
// index, protect the final column's n cell in slotHint. A nil return
// (no index progress, cleared n, neutralized protect, or the caller
// exhausted maxHintTries) means walk from the head.
func (l *List) hintFor(t *core.Thread, key int64, attempt int) (*hmlist.Node, int) {
	if attempt >= maxHintTries {
		return nil, 0
	}
	c := l.descendIndex(key)
	if c == nil {
		return nil, 0
	}
	raw, ok := t.Protect(slotHint, &c.n)
	if !ok || raw == nil {
		return nil, 0
	}
	return (*hmlist.Node)(raw), slotHint
}

// indexPred positions a level-h walk: the last column with key < target
// whose cell (craw, unmarked) it returns, descending from the current
// top so the walk is O(log n) rather than a level scan. ok=false means
// the chosen pred's cell went marked under the probe — retry from the
// head.
func (l *List) indexPred(key int64, lvl int) (pred *column, craw unsafe.Pointer, ok bool) {
	pred = l.headCol
	top := l.indexTop()
	if top <= lvl {
		top = lvl + 1
	}
	for h := top - 1; h >= lvl; h-- {
		for {
			craw = pred.right[h].Load()
			c := (*column)(core.Mask(craw))
			if c.key >= key {
				break
			}
			rraw := c.right[h].Load()
			if core.Marked(rraw) {
				if !core.Marked(craw) && pred.right[h].CompareAndSwap(craw, core.Mask(rraw)) {
					continue
				}
				pred = c
				continue
			}
			pred = c
		}
	}
	if core.Marked(craw) {
		return nil, nil, false
	}
	return pred, craw, true
}

// linkIndex publishes n's column: height drawn geometric(1/4) (0 = no
// column, the common case), levels spliced bottom-up so presence at any
// level implies presence at index level 0 — the invariant purgeIndex's
// level-0 search relies on. Runs between the bottom-layer publish and
// FinishLinking, so the node cannot retire (and the column cannot be
// purged) while it is under construction.
func (l *List) linkIndex(t *core.Thread, n *hmlist.Node, key int64) {
	h := indexHeight(l.localFor(t).hrng)
	if h == 0 {
		return
	}
	c := &column{key: key, right: make([]core.Atomic, h)}
	c.n.Raw(unsafe.Pointer(n))
	for lvl := 0; lvl < h; lvl++ {
		for {
			pred, craw, ok := l.indexPred(key, lvl)
			if !ok {
				continue
			}
			// Route c past the successor, then splice. c is unpublished
			// at this level, so the Raw store cannot race a helper; the
			// CAS fails if pred's cell changed — including going marked,
			// which is what makes a splice into a dying column impossible
			// (mark-then-unlink, see the package comment).
			c.right[lvl].Raw(craw)
			if pred.right[lvl].CompareAndSwap(craw, unsafe.Pointer(c)) {
				break
			}
		}
	}
	l.raiseTop(h)
}

// purgeIndex is the hmlist purge hook: called exactly once per retiring
// node, after it is unlinked and marked at the bottom, before Retire.
// It removes the node's column (if any) from every level and clears the
// column's n cell last, so no hint can outlive the grace period: a
// Protect on n that validates must have happened before this clear,
// hence before the Retire that follows it.
func (l *List) purgeIndex(t *core.Thread, victim *hmlist.Node) {
	key := victim.Key()
	// Find the victim's column by node identity at index level 0: splices
	// go bottom-up, so absence there proves the column was never
	// published (unreachable Go garbage the GC will sweep).
	var c *column
	pred, craw, _ := l.indexPred(key, 0)
	if pred == nil {
		// Pred's cell went marked mid-probe; the level-0 scan below
		// re-walks from wherever the chain is clean.
		pred = l.headCol
		craw = pred.right[0].Load()
	}
	for {
		s := (*column)(core.Mask(craw))
		if s.key > key {
			break
		}
		if s.key == key && s.n.Load() == unsafe.Pointer(victim) {
			c = s
			break
		}
		// Equal-key columns of older incarnations may precede ours; walk
		// through them (and anything a racing splice put in between).
		pred = s
		craw = pred.right[0].Load()
	}
	if c == nil {
		return
	}
	// Phase 1: mark every right cell top-down. A failed CAS means a
	// splice landed behind c after we loaded the cell — reload and mark
	// the new successor chain in.
	for lvl := len(c.right) - 1; lvl >= 0; lvl-- {
		for {
			raw := c.right[lvl].Load()
			if core.Marked(raw) || c.right[lvl].CompareAndSwap(raw, core.WithMark(raw)) {
				break
			}
		}
	}
	// Phase 2: unlink each level. Walkers help, so the walk just retries
	// until c is no longer reachable at the level.
	for lvl := len(c.right) - 1; lvl >= 0; lvl-- {
		l.unlinkIndexLevel(c, lvl)
	}
	// Phase 3: cut the index->node edge. After this store no new hint
	// can name the victim; earlier Protects validated against the
	// pre-clear value and are covered by the Retire ordering.
	c.n.Store(nil)
}

// unlinkIndexLevel removes c (fully marked at lvl) from level lvl.
func (l *List) unlinkIndexLevel(c *column, lvl int) {
retry:
	pred := l.headCol
	for {
		craw := pred.right[lvl].Load()
		if core.Marked(craw) {
			// pred is being purged under us: restart from the head (the
			// head column is never purged).
			goto retry
		}
		s := (*column)(craw)
		if s.key > c.key {
			return // c is not reachable at this level
		}
		if s == c {
			if pred.right[lvl].CompareAndSwap(craw, core.Mask(c.right[lvl].Load())) {
				return
			}
			continue // pred's cell changed: re-read
		}
		rraw := s.right[lvl].Load()
		if core.Marked(rraw) {
			if pred.right[lvl].CompareAndSwap(craw, core.Mask(rraw)) {
				continue
			}
			goto retry
		}
		pred = s
	}
}

// Contains reports whether key is in the map.
func (l *List) Contains(t *core.Thread, key int64) bool {
	_, ok := l.Get(t, key)
	return ok
}

// Get returns the value mapped to key. The index descent costs no
// protections; only the final hint hop publishes a reservation, and the
// bottom-layer walk revalidates from there.
func (l *List) Get(t *core.Thread, key int64) (uint64, bool) {
	t.StartOp()
	defer t.EndOp()
	return l.getInOp(t, key)
}

func (l *List) getInOp(t *core.Thread, key int64) (uint64, bool) {
	for attempt := 0; ; attempt++ {
		start, s := l.hintFor(t, key, attempt)
		v, present, valid := l.b.GetInOpHinted(t, key, start, s)
		if valid {
			return v, present
		}
	}
}

// Insert adds key with the zero value; false if already present.
func (l *List) Insert(t *core.Thread, key int64) bool {
	return l.PutIfAbsent(t, key, 0)
}

// PutIfAbsent maps key to val only if key is absent.
func (l *List) PutIfAbsent(t *core.Thread, key int64, val uint64) bool {
	t.StartOp()
	defer t.EndOp()
	ok, _, _ := l.putInOp(t, key, val, false)
	return ok
}

// Put maps key to val, overwriting; returns the previous value.
func (l *List) Put(t *core.Thread, key int64, val uint64) (uint64, bool) {
	t.StartOp()
	defer t.EndOp()
	_, old, replaced := l.putInOp(t, key, val, true)
	return old, replaced
}

// putInOp is the upsert body: hinted bottom-layer put, then — if a node
// was published — index column construction under the LINKING bit, with
// the retire handoff resolved by FinishLinking. A replaced victim's
// column is purged by whichever side hmlist's handoff elects; the
// replacement builds its own column exactly like an insert.
func (l *List) putInOp(t *core.Thread, key int64, val uint64, overwrite bool) (inserted bool, old uint64, replaced bool) {
	for attempt := 0; ; attempt++ {
		start, s := l.hintFor(t, key, attempt)
		out, valid := l.b.PutInOpHinted(t, key, val, overwrite, start, s)
		if !valid {
			continue
		}
		if out.New != nil {
			l.linkIndex(t, out.New, key)
			l.b.FinishLinking(t, out.New)
		}
		return out.Inserted, out.Old, out.Replaced
	}
}

// PutBatch upserts every keys[i] inside one protected operation,
// recording replaced values in old[i]/replaced[i] (the ds.BatchPutter
// contract). The batch amortizes the entry/exit protocol; each upsert
// re-descends the index for its own hint, so under NBR a neutralization
// retries only the key it interrupted.
func (l *List) PutBatch(t *core.Thread, keys []int64, vals []uint64, old []uint64, replaced []bool) {
	t.StartOp()
	defer t.EndOp()
	for i, key := range keys {
		_, old[i], replaced[i] = l.putInOp(t, key, vals[i], true)
	}
}

// Delete removes key and returns the value it removed. The bottom layer
// owns the whole removal; the victim's index column is detached by the
// purge hook on whichever side of the handoff retires it.
func (l *List) Delete(t *core.Thread, key int64) (uint64, bool) {
	t.StartOp()
	defer t.EndOp()
	for attempt := 0; ; attempt++ {
		start, s := l.hintFor(t, key, attempt)
		old, removed, valid := l.b.DeleteInOpHinted(t, key, start, s)
		if valid {
			return old, removed
		}
	}
}

// GetBatch looks up every keys[i] inside one protected operation (one
// StartOp/EndOp instead of one per key), recording results in vals[i]
// and present[i]. Ascending key order gives consecutive descents warm
// column paths; the O(1) indexTop probe replaced the per-batch
// effective-height scan.
func (l *List) GetBatch(t *core.Thread, keys []int64, vals []uint64, present []bool) {
	t.StartOp()
	defer t.EndOp()
	for i, key := range keys {
		vals[i], present[i] = l.getInOp(t, key)
	}
}

// RangeCount counts the keys in [lo, hi].
func (l *List) RangeCount(t *core.Thread, lo, hi int64) int {
	n := 0
	l.scanRange(t, lo, hi, func(int64, uint64) bool { n++; return true })
	return n
}

// RangeCollect appends the keys in [lo, hi], ascending, to buf[:0] and
// returns the filled slice. The result is sorted and duplicate-free;
// each reported key was observed present (unmarked and reachable) at
// some point during the scan, and no key absent for the scan's whole
// duration is reported.
func (l *List) RangeCollect(t *core.Thread, lo, hi int64, buf []int64) []int64 {
	buf = buf[:0]
	l.scanRange(t, lo, hi, func(k int64, _ uint64) bool { buf = append(buf, k); return true })
	return buf
}

// RangeCollectKV appends up to max (key, value) pairs from [lo, hi],
// ascending, to keys[:0]/vals[:0] (max <= 0 = unlimited). Values are
// immutable per node and snapshotted while the node is protected, so
// each pair is one the map actually held while the scan ran.
func (l *List) RangeCollectKV(t *core.Thread, lo, hi int64, max int, keys []int64, vals []uint64) ([]int64, []uint64) {
	keys, vals = keys[:0], vals[:0]
	l.scanRange(t, lo, hi, func(k int64, v uint64) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return max <= 0 || len(keys) < max
	})
	return keys, vals
}

// scanRange walks [lo, hi] as one long operation: each leg descends the
// index for a hint and runs the bottom layer's validated scan from
// there, resuming at the first unemitted key whenever a hop fails
// validation — keys already emitted are never revisited, keeping output
// sorted and unique. Legs that advance reset the hint budget; legs that
// don't burn it down until the walk degrades to the head (progress
// never depends on a fresh hint materializing).
func (l *List) scanRange(t *core.Thread, lo, hi int64, emit func(int64, uint64) bool) {
	if lo > hi {
		return
	}
	t.StartOp()
	defer t.EndOp()
	from := lo
	attempt := 0
	for {
		start, s := l.hintFor(t, from, attempt)
		resume, done := l.b.ScanInOpHinted(t, from, hi, start, s, emit)
		if done {
			return
		}
		if resume > from {
			from, attempt = resume, 0
		} else {
			attempt++
		}
	}
}

// Size counts unmarked bottom-level nodes. Quiescent use only.
func (l *List) Size(t *core.Thread) int { return l.b.Size(t) }
