// Package skiplist implements a lock-free skiplist map (SKL in the
// harness) in the Fraser/Herlihy style: a sorted multi-level linked
// list in which each node carries a tower of forward links, each level
// is a Harris-Michael list in its own right (logical deletion by CAS
// marking the level's next pointer, physical unlink by a second CAS),
// and membership is defined by the bottom level alone. It is one of the
// repository's two structures with ordered range scans, which makes it
// the SMR-heaviest workload available: a scan is one long operation
// that protects every hop, exactly the traversal pressure the paper's
// §5.1.2 long-running-reads experiment puts on reservation publication.
//
// # Variable-height towers
//
// Tower heights are geometric(1/2), so 93.75% of nodes are at most
// inlineLevels (4) tall. Each node inlines only those four link cells;
// taller towers attach a pooled extension (extTower) holding the
// remaining MaxHeight-4 levels. The extension comes from its own
// type-stable arena pool, is attached before the node is published and
// detached only when the node is freed (after its grace period), so a
// protected node's links are always dereferenceable. Expected tower
// footprint drops from MaxHeight (20) cells per node to 4 + 16/16 = 5,
// a ~4x cut in link memory — see BenchmarkTowerFootprint for the
// measured bytes/key.
//
// # Reservation discipline
//
// Traversals rotate three protection slots (pred/curr/next, Michael's
// index-rotation trick, as in hmlist) and re-validate pred.next == curr
// after every protect; descending a level keeps pred protected and
// re-walks from it. Range scans extend the same rotation along level 0
// and resume from the last emitted key when a hop fails validation, so
// results stay sorted and duplicate-free without restarting the scan.
//
// # Overwrite strategy: replace-node-and-retire
//
// Node values are immutable once published: storing into a live node is
// not linearizable on a lock-free list (the node can be CAS-marked
// between lookup and store, letting a Get observe a value the map never
// held). Put on a present key instead builds a fresh node with the new
// value and links it directly *behind* the victim at level 0 with the
// very CAS that marks the victim:
//
//	victim.level0: succ  ->  mark(new)     where new.level0 = succ
//
// One CAS both logically deletes the victim and makes the same-key
// replacement the continuation of the chain, so the key is never
// absent; traversals that snip the marked victim land on the new node.
// The victim's upper levels are marked top-down beforehand (exactly as
// in Delete) and the victim retires through the ordinary mark-winner
// purge/handoff path below, so every overwrite is a retirement — a new
// tower is allocated and an old one reclaimed even when the key set is
// static.
//
// # Retire protocol (why towers don't break reclamation)
//
// A skiplist node is reachable from many levels, so "unlinked at level
// 0" does not mean unreachable — the retire contract every policy in
// core depends on. Two rules make retirement exact:
//
//  1. Only the thread whose CAS marks level 0 (the deletion's or
//     replacement's linearization point) may retire the node, and only
//     after a full by-pointer purge descent has confirmed the node is
//     unlinked from every level. Helper traversals snip marked levels
//     but never retire.
//  2. The inserting thread announces tower construction in the node's
//     state word (LINKING). A deleter that finds LINKING still set
//     hands the retire off (RETIREREQ); whichever of the two clears its
//     bit last performs the purge + retire. The inserter additionally
//     keeps the node protected in a dedicated anchor slot from before
//     publication until its operation ends, and un-links any level it
//     raced a deleter on (link-then-mark interleavings) before
//     releasing LINKING — so a retired node can never be re-linked, and
//     a linked node can never be freed.
//
// Under NBR a neutralized inserter abandons the remaining tower levels
// instead of restarting: the node is already in the set (level 0), a
// short tower only costs balance, and the state protocol guarantees the
// node outlives every access the inserter still performs (a node with
// LINKING set is never retired, hence never freed).
package skiplist

import (
	"math"
	"sync/atomic"
	"unsafe"

	"pop/internal/arena"
	"pop/internal/core"
	"pop/internal/rng"
)

// MaxHeight is the tower-height cap. 2^20 keys at the expected one node
// per two towers per level covers every structure size the harness runs.
const MaxHeight = 20

// inlineLevels is the number of link cells stored inside the node
// itself. Geometric(1/2) heights make towers taller than this a 1/16
// event; those attach a pooled extTower for the remaining levels.
const inlineLevels = 4

// extTower is the pooled link extension for towers taller than
// inlineLevels. It is attached before the node is published and
// detached only on free, so it shares the node's lifetime exactly.
type extTower struct {
	cells [MaxHeight - inlineLevels]core.Atomic
}

// state-word bits (node.state).
const (
	// stateLinking is set by the inserter before the node is published
	// and cleared when tower construction (including undo of any
	// link/mark race) is complete. A node with LINKING set is never
	// retired.
	stateLinking = uint32(1) << 0
	// stateRetireReq is set by the deleter that won the level-0 mark
	// after its purge descent. If LINKING was already clear, the deleter
	// retires; otherwise the inserter does when it clears LINKING.
	stateRetireReq = uint32(1) << 1
)

// node is a skiplist cell. Header must be first (reclamation contract).
// The mark bit of link(lvl) tags *this* node as logically deleted at
// that level; level 0's mark is the deletion's (or replacement's)
// linearization point. key and val are immutable once published.
type node struct {
	core.Header
	key    int64
	val    uint64
	height int32         // tower height, 1..MaxHeight; immutable once published
	state  atomic.Uint32 // LINKING/RETIREREQ retire-handoff word
	ext    *extTower     // levels inlineLevels..height-1; nil for short towers
	low    [inlineLevels]core.Atomic
}

// link returns the node's forward cell for level lvl. Callers only ever
// name levels below the node's height, so ext is non-nil whenever the
// branch takes it.
func (n *node) link(lvl int) *core.Atomic {
	if lvl < inlineLevels {
		return &n.low[lvl]
	}
	return &n.ext.cells[lvl-inlineLevels]
}

// threadLocal is a thread's allocation caches plus its private
// height-distribution generator.
type threadLocal struct {
	cache *arena.ThreadCache[node]
	extc  *arena.ThreadCache[extTower]
	hrng  *rng.State
}

// List is a lock-free skiplist map of int64 keys to uint64 values.
type List struct {
	d       *core.Domain
	typ     uint8
	pool    *arena.Pool[node]
	extPool *arena.Pool[extTower]
	locals  []*threadLocal // indexed by thread id, owner-only
	head    *node          // full-height sentinel, key = MinInt64
	tail    *node          // key = MaxInt64; terminates every level
}

// New creates an empty skiplist in domain d.
func New(d *core.Domain) *List {
	l := &List{
		d:       d,
		pool:    arena.NewPool[node](nil, nil),
		extPool: arena.NewPool[extTower](nil, nil),
		locals:  make([]*threadLocal, d.MaxThreads()),
	}
	l.typ = d.RegisterType(func(t *core.Thread, h *core.Header) {
		n := (*node)(unsafe.Pointer(h))
		tl := l.localFor(t)
		if n.ext != nil {
			tl.extc.Put(n.ext)
			n.ext = nil
		}
		tl.cache.Put(n)
	})
	// Sentinels come from the Go heap (never retired; Outstanding counts
	// only real keys). Their extensions do too.
	l.head = &node{key: math.MinInt64, height: MaxHeight, ext: &extTower{}}
	l.tail = &node{key: math.MaxInt64, height: MaxHeight, ext: &extTower{}}
	for i := 0; i < MaxHeight; i++ {
		l.head.link(i).Raw(unsafe.Pointer(l.tail))
	}
	return l
}

// Outstanding reports pool-level live+retired nodes (memory metric).
func (l *List) Outstanding() int64 { return l.pool.Outstanding() }

// localFor returns t's thread-local state, creating it on first use. The
// slot is only ever touched by t's goroutine.
func (l *List) localFor(t *core.Thread) *threadLocal {
	tl := l.locals[t.ID()]
	if tl == nil {
		tl = &threadLocal{
			cache: l.pool.NewCache(),
			extc:  l.extPool.NewCache(),
			hrng:  rng.New(0x5ee9_11f7<<16 ^ uint64(t.ID())*0x9e3779b97f4a7c15),
		}
		l.locals[t.ID()] = tl
	}
	return tl
}

// randomHeight draws a geometric(1/2) tower height in [1, MaxHeight].
func randomHeight(r *rng.State) int32 {
	h := int32(1)
	for bits := r.Uint64(); bits&1 == 1 && h < MaxHeight; bits >>= 1 {
		h++
	}
	return h
}

// newNode allocates and initialises an unpublished node: links point at
// the tail, the extension matches the sampled height (attached for tall
// towers, returned to its pool when a recycled node no longer needs one).
func (l *List) newNode(t *core.Thread, tl *threadLocal, key int64, val uint64) *node {
	n := tl.cache.Get()
	n.key = key
	n.val = val
	n.height = randomHeight(tl.hrng)
	n.state.Store(stateLinking)
	if n.height > inlineLevels {
		if n.ext == nil {
			n.ext = tl.extc.Get()
		}
	} else if n.ext != nil {
		tl.extc.Put(n.ext)
		n.ext = nil
	}
	for i := 0; i < int(n.height); i++ {
		n.link(i).Raw(unsafe.Pointer(l.tail))
	}
	t.OnAlloc(&n.Header, l.typ)
	return n
}

// Reservation slots: three rotating traversal slots plus a fixed anchor
// the inserter uses to keep its node protected during tower linking.
const (
	slotPred   = 0
	slotCurr   = 1
	slotNext   = 2
	slotAnchor = 3
)

// position is the result of a descent: the state of the walk at the
// lowest level visited, with pred and curr protected in the recorded
// slots (the hmlist discipline, per level).
type position struct {
	predCell *core.Atomic
	pred     *node // protected in sPred; head sentinel at minimum
	curr     *node // protected in sCurr; first node with key >= target key
	next     *node // curr's successor (nil iff curr == tail)
	sPred    int
	sCurr    int
	sNext    int
}

// descend walks from the head down to level lo and returns the position
// there. At each level it stops before the first node with key > key;
// nodes with key == key stop the walk unless target is non-nil, in which
// case only target itself stops it (the retirer's by-pointer purge walks
// past unmarked same-key reincarnations). Marked nodes encountered at
// any level are snipped — but never retired; see the package comment.
//
// ok=false means the operation was neutralized (NBR) and the caller must
// either restart from its entry point or abandon (tower building).
// A completed descent with target != nil proves target was unlinked from
// every level in [lo, MaxHeight): target is fully marked by then, so if
// the walk met it, it snipped it, and if not, it wasn't in the chain.
func (l *List) descend(t *core.Thread, key int64, lo int, target *node) (position, bool) {
	return l.descendFrom(t, key, lo, MaxHeight-1, target)
}

// descendFrom is descend with an explicit start level. Starting below
// MaxHeight-1 is always safe — every node is reachable through level 0
// and the upper levels are only shortcuts — it just walks more at the
// start level if towers above it exist. GetBatch exploits this: one
// effective-height probe amortized over the whole batch skips the empty
// top levels every descent would otherwise pay for. Purge descents
// (target != nil) must use the full height: their contract is proving
// target unlinked from every level.
func (l *List) descendFrom(t *core.Thread, key int64, lo, top int, target *node) (position, bool) {
retry:
	pos := position{pred: l.head, sPred: slotPred, sCurr: slotCurr, sNext: slotNext}
	for lvl := top; ; lvl-- {
		pos.predCell = pos.pred.link(lvl)
		craw, ok := t.Protect(pos.sCurr, pos.predCell)
		if !ok {
			return pos, false
		}
		if core.Marked(craw) {
			// pred was logically deleted at this level under us; its
			// links are no longer a valid walk origin.
			goto retry
		}
		pos.curr = (*node)(craw)
		for {
			if pos.curr == l.tail {
				pos.next = nil
				break
			}
			nraw, ok := t.Protect(pos.sNext, pos.curr.link(lvl))
			if !ok {
				return pos, false
			}
			// Validate the edge: pred must still point at curr, so curr
			// was reachable (and next its successor) after the protect.
			if pos.predCell.Load() != unsafe.Pointer(pos.curr) {
				goto retry
			}
			if core.Marked(nraw) {
				// curr is logically deleted at lvl: snip it. (For a
				// replaced node at level 0 the masked successor is the
				// same-key replacement, so the walk lands on the key's
				// live node.) Retirement is the mark winner's job (see
				// package comment), so a successful snip just drops the
				// node from this level.
				succ := core.Mask(nraw)
				if !t.EnterWritePhase() {
					return pos, false
				}
				if !pos.predCell.CompareAndSwap(unsafe.Pointer(pos.curr), succ) {
					t.ExitWritePhase()
					goto retry
				}
				t.ExitWritePhase()
				pos.curr = (*node)(succ)
				pos.sCurr, pos.sNext = pos.sNext, pos.sCurr
				continue
			}
			if pos.curr.key > key || (pos.curr.key == key && (target == nil || pos.curr == target)) {
				pos.next = (*node)(nraw)
				break
			}
			// Advance along the level.
			pos.pred = pos.curr
			pos.predCell = pos.curr.link(lvl)
			pos.curr = (*node)(nraw)
			pos.sPred, pos.sCurr, pos.sNext = pos.sCurr, pos.sNext, pos.sPred
		}
		if lvl == lo {
			return pos, true
		}
		// Descend: pred keeps its protection and the next level's walk
		// re-validates from it.
	}
}

// Contains reports whether key is in the map.
func (l *List) Contains(t *core.Thread, key int64) bool {
	_, ok := l.Get(t, key)
	return ok
}

// effectiveTop probes the highest level with any live tower: the level
// single and batched descents start from instead of MaxHeight-1, so a
// store holding 2^h keys pays ~h link hops per descent, not MaxHeight.
// Starting below MaxHeight-1 is always safe (upper levels are only
// shortcuts; a tower raised above the probe after it ran is still found
// through the levels below), which is why the probe needs no protection
// — the head sentinel is never retired. Purge descents must NOT use it:
// their contract is proving a node unlinked from every level.
func (l *List) effectiveTop() int {
	top := MaxHeight - 1
	for top > 0 && l.head.link(top).Load() == unsafe.Pointer(l.tail) {
		top--
	}
	return top
}

// Get returns the value mapped to key. Values are immutable per node,
// so a plain read of the protected node is the value it was published
// with. The descent starts at the probed effective height (see
// effectiveTop) — the batch path's amortization applied to the single
// lookup, where the empty top levels were pure overhead per call.
func (l *List) Get(t *core.Thread, key int64) (uint64, bool) {
	checkKey(key)
	t.StartOp()
	defer t.EndOp()
	top := l.effectiveTop()
	for {
		pos, ok := l.descendFrom(t, key, 0, top, nil)
		if !ok {
			continue // neutralized: restart
		}
		if pos.curr == l.tail || pos.curr.key != key {
			return 0, false
		}
		return pos.curr.val, true
	}
}

// Insert adds key with the zero value; false if already present.
func (l *List) Insert(t *core.Thread, key int64) bool {
	return l.PutIfAbsent(t, key, 0)
}

// PutIfAbsent maps key to val only if key is absent.
func (l *List) PutIfAbsent(t *core.Thread, key int64, val uint64) bool {
	ok, _, _ := l.put(t, key, val, false)
	return ok
}

// Put maps key to val, overwriting; returns the previous value.
func (l *List) Put(t *core.Thread, key int64, val uint64) (uint64, bool) {
	_, old, replaced := l.put(t, key, val, true)
	return old, replaced
}

// put is the shared insert/overwrite path. A present key under
// overwrite is replaced by a fresh node linked behind it with the CAS
// that marks it (see the package comment); the victim then retires
// through the same purge/handoff path a deletion uses, and the
// replacement builds its own tower exactly like an insert.
func (l *List) put(t *core.Thread, key int64, val uint64, overwrite bool) (inserted bool, old uint64, replaced bool) {
	checkKey(key)
	t.StartOp()
	defer t.EndOp()
	// Find descents start at the probed effective height (safe at any
	// start level; see effectiveTop). The purge and ensureUnlinked
	// descents inside keep the full height — their unlink proof needs it.
	return l.putInOp(t, key, val, overwrite, l.effectiveTop())
}

// PutBatch upserts every keys[i] inside one protected operation,
// recording replaced values in old[i]/replaced[i] (the ds.BatchPutter
// contract). The batch amortizes the entry/exit protocol and one
// effective-height probe across the group, exactly like GetBatch; each
// upsert is an ordinary validated put body, so under NBR a
// neutralization retries only the key it interrupted.
func (l *List) PutBatch(t *core.Thread, keys []int64, vals []uint64, old []uint64, replaced []bool) {
	t.StartOp()
	defer t.EndOp()
	top := l.effectiveTop()
	for i, key := range keys {
		checkKey(key)
		_, old[i], replaced[i] = l.putInOp(t, key, vals[i], true, top)
	}
}

// putInOp is put's body inside an already-open operation, descending
// from start level top. The anchor reservation it takes in slotAnchor
// is held only while this upsert still touches its node — a following
// batch entry may re-use the slot, by which point the previous node is
// published and no longer touched.
func (l *List) putInOp(t *core.Thread, key int64, val uint64, overwrite bool, top int) (inserted bool, old uint64, replaced bool) {
	tl := l.localFor(t)
	var n *node
	var anchor core.Atomic
	for {
		pos, ok := l.descendFrom(t, key, 0, top, nil)
		if !ok {
			continue // neutralized: n (if any) is still private, retry
		}
		if pos.curr != l.tail && pos.curr.key == key {
			victim := pos.curr // protected in pos.sCurr
			// Snapshot the value now: no poll point has intervened since
			// the descent, and the victim may retire below.
			vold := victim.val
			if !overwrite {
				if n != nil {
					tl.cache.Put(n) // never published: straight back to the pool
				}
				return false, vold, true
			}
			if n == nil {
				n = l.newNode(t, tl, key, val)
				anchor.Raw(unsafe.Pointer(n))
			}
			// Anchor n before publication, exactly as in the insert path.
			if _, ok := t.Protect(slotAnchor, &anchor); !ok {
				continue
			}
			// Mark the victim's upper levels top-down (idempotent, shared
			// with concurrent deleters; the level-0 CAS below decides who
			// linearizes).
			if !l.markUpper(t, victim) {
				continue // neutralized: restart
			}
			won, ok := l.replaceAt0(t, victim, n)
			if !ok {
				continue // neutralized
			}
			if !won {
				continue // a deleter or another replacer linearized first: re-find
			}
			// Linearized: n replaced victim atomically. The victim is ours
			// to purge and retire (we won its level-0 mark).
			l.purge(t, victim, key)
			if st := victim.state.Or(stateRetireReq); st&stateLinking == 0 {
				t.Retire(&victim.Header)
			}
			old, replaced = vold, true
			break // build n's tower
		}
		if n == nil {
			n = l.newNode(t, tl, key, val)
			anchor.Raw(unsafe.Pointer(n))
		}
		// Anchor n before publication: the reservation is taken while the
		// node provably cannot be retired (it is still private) and held
		// until EndOp, so the tower-building phase below may keep
		// touching n under every policy.
		if _, ok := t.Protect(slotAnchor, &anchor); !ok {
			continue
		}
		n.link(0).Raw(unsafe.Pointer(pos.curr))
		if !t.EnterWritePhase() {
			continue
		}
		if pos.predCell.CompareAndSwap(unsafe.Pointer(pos.curr), unsafe.Pointer(n)) {
			t.ExitWritePhase()
			inserted = true
			break // linearized: n is in the map
		}
		t.ExitWritePhase()
	}
	// Build the tower. Failures here never affect the put's outcome.
	for lvl := 1; lvl < int(n.height); lvl++ {
		if !l.linkLevel(t, n, key, lvl) {
			break
		}
	}
	// Release LINKING; if a deleter finished while we were linking, the
	// retire was handed to us.
	if st := n.state.And(^stateLinking); st&stateRetireReq != 0 {
		l.purge(t, n, key)
		t.Retire(&n.Header)
	}
	return inserted, old, replaced
}

// markUpper marks victim's levels [1, height) top-down, the shared
// first phase of deletion and replacement. false: neutralized.
func (l *List) markUpper(t *core.Thread, victim *node) bool {
	for lvl := int(victim.height) - 1; lvl >= 1; lvl-- {
		for {
			raw := victim.link(lvl).Load()
			if core.Marked(raw) {
				break
			}
			if !t.EnterWritePhase() {
				return false
			}
			done := victim.link(lvl).CompareAndSwap(raw, core.WithMark(raw))
			t.ExitWritePhase()
			if done {
				break
			}
		}
	}
	return true
}

// replaceAt0 attempts the replacement's linearization: one CAS that
// marks victim at level 0 *and* links n (same key, new value) as the
// masked continuation, so the key is never absent. won=false means a
// deleter or another replacer marked level 0 first; ok=false means
// neutralized.
func (l *List) replaceAt0(t *core.Thread, victim, n *node) (won, ok bool) {
	for {
		raw := victim.link(0).Load()
		if core.Marked(raw) {
			return false, true
		}
		n.link(0).Raw(raw) // n continues to victim's successor
		if !t.EnterWritePhase() {
			return false, false
		}
		done := victim.link(0).CompareAndSwap(raw, core.WithMark(unsafe.Pointer(n)))
		t.ExitWritePhase()
		if done {
			return true, true
		}
		// Successor changed under us (an insert landed right behind the
		// victim): reload and retry the CAS.
	}
}

// linkLevel links n into level lvl. false means the tower is abandoned:
// the node was deleted, another node owns the key, or the thread was
// neutralized (NBR) — in every case the map's contents are unaffected.
func (l *List) linkLevel(t *core.Thread, n *node, key int64, lvl int) bool {
	for {
		pos, ok := l.descend(t, key, lvl, nil)
		if !ok {
			return false
		}
		if pos.curr == n {
			return true // already linked at this level
		}
		if pos.curr != l.tail && pos.curr.key == key {
			// A different node owns the key at this level, which can only
			// happen after n was marked at level 0: stop building.
			return false
		}
		// Point n's level-lvl link at the successor, but only while the
		// level is unmarked (a mark here means a deleter beat us).
		for {
			raw := n.link(lvl).Load()
			if core.Marked(raw) {
				return false
			}
			if raw == unsafe.Pointer(pos.curr) {
				break
			}
			if !t.EnterWritePhase() {
				return false
			}
			done := n.link(lvl).CompareAndSwap(raw, unsafe.Pointer(pos.curr))
			t.ExitWritePhase()
			if done {
				break
			}
		}
		if !t.EnterWritePhase() {
			return false
		}
		if !pos.predCell.CompareAndSwap(unsafe.Pointer(pos.curr), unsafe.Pointer(n)) {
			t.ExitWritePhase()
			continue // position changed under us: re-walk this level
		}
		// Linked. If a deleter marked this level between the two CASes we
		// just re-linked a logically dead node: undo before the state
		// protocol can let anyone retire it.
		if raw := n.link(lvl).Load(); core.Marked(raw) {
			pos.predCell.CompareAndSwap(unsafe.Pointer(n), core.Mask(raw))
			t.ExitWritePhase()
			l.ensureUnlinked(t, n, key, lvl)
			return false
		}
		t.ExitWritePhase()
		return true
	}
}

// ensureUnlinked walks levels [lvl, MaxHeight) until a descent completes
// with n absent from each of them (n is fully marked by now, so any
// encounter snips it). n cannot be retired while we are here: LINKING is
// still set, so the descent may keep comparing against it safely.
func (l *List) ensureUnlinked(t *core.Thread, n *node, key int64, lvl int) {
	for {
		if _, ok := l.descend(t, key, lvl, n); ok {
			return
		}
	}
}

// purge makes n physically unreachable from every level. Callers hold
// the retire right (mark winner with LINKING clear, or inserter with
// RETIREREQ observed), which guarantees n stays allocated throughout.
func (l *List) purge(t *core.Thread, n *node, key int64) {
	for {
		if _, ok := l.descend(t, key, 0, n); ok {
			return
		}
	}
}

// Delete removes key and returns the value it removed.
func (l *List) Delete(t *core.Thread, key int64) (uint64, bool) {
	checkKey(key)
	t.StartOp()
	defer t.EndOp()
restart:
	for {
		pos, ok := l.descend(t, key, 0, nil)
		if !ok {
			continue
		}
		if pos.curr == l.tail || pos.curr.key != key {
			return 0, false
		}
		victim := pos.curr // protected in pos.sCurr
		// Snapshot the value before any poll point: once the retire
		// handoff resolves the node may be reclaimed.
		old := victim.val
		// Mark the upper levels top-down (idempotent; concurrent deleters
		// and replacers may interleave here, the level-0 mark below
		// decides the winner).
		if !l.markUpper(t, victim) {
			goto restart
		}
		// Level 0: the winning CAS is the linearization point and carries
		// the retire right.
		for {
			raw := victim.link(0).Load()
			if core.Marked(raw) {
				// Another deleter or a replacer linearized first. Either
				// way this operation did not remove the key: re-find (a
				// replacement or reincarnation is deletable; a completed
				// delete returns absent).
				goto restart
			}
			if !t.EnterWritePhase() {
				goto restart
			}
			won := victim.link(0).CompareAndSwap(raw, core.WithMark(raw))
			t.ExitWritePhase()
			if !won {
				continue
			}
			// From here victim cannot be freed even after our traversal
			// slots are reused: it is not retired until the handoff below
			// resolves, and only the handoff's winner retires it.
			l.purge(t, victim, key)
			if st := victim.state.Or(stateRetireReq); st&stateLinking == 0 {
				t.Retire(&victim.Header)
			}
			return old, true
		}
	}
}

// RangeCount counts the keys in [lo, hi].
func (l *List) RangeCount(t *core.Thread, lo, hi int64) int {
	n := 0
	l.scanRange(t, lo, hi, func(int64, uint64) bool { n++; return true })
	return n
}

// RangeCollect appends the keys in [lo, hi], ascending, to buf[:0] and
// returns the filled slice. The result is sorted and duplicate-free;
// each reported key was observed present (unmarked and reachable) at
// some point during the scan, and no key absent for the scan's whole
// duration is reported.
func (l *List) RangeCollect(t *core.Thread, lo, hi int64, buf []int64) []int64 {
	buf = buf[:0]
	l.scanRange(t, lo, hi, func(k int64, _ uint64) bool { buf = append(buf, k); return true })
	return buf
}

// RangeCollectKV appends up to max (key, value) pairs from [lo, hi],
// ascending, to keys[:0]/vals[:0] (max <= 0 = unlimited). Values are
// immutable per node and snapshotted while the node is protected, so
// each pair is one the map actually held while the scan ran.
func (l *List) RangeCollectKV(t *core.Thread, lo, hi int64, max int, keys []int64, vals []uint64) ([]int64, []uint64) {
	keys, vals = keys[:0], vals[:0]
	l.scanRange(t, lo, hi, func(k int64, v uint64) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return max <= 0 || len(keys) < max
	})
	return keys, vals
}

// GetBatch looks up every keys[i] inside one protected operation (one
// StartOp/EndOp instead of one per key), recording results in vals[i]
// and present[i]. Two amortizations pay for the batch: the operation
// entry/exit protocol runs once, and one effective-height probe lets
// every descent start just above the tallest live tower instead of at
// MaxHeight-1 (safe at any start level — upper levels are only
// shortcuts; a tower raised above the probe after it ran is still found
// through the levels below). Each lookup is an ordinary validated
// descent; under NBR a neutralization retries only the key it
// interrupted. Ascending key order gives consecutive descents warm
// upper-level paths.
func (l *List) GetBatch(t *core.Thread, keys []int64, vals []uint64, present []bool) {
	t.StartOp()
	defer t.EndOp()
	top := l.effectiveTop()
	for i, key := range keys {
		checkKey(key)
		for {
			pos, ok := l.descendFrom(t, key, 0, top, nil)
			if !ok {
				continue // neutralized: retry this key
			}
			if pos.curr == l.tail || pos.curr.key != key {
				vals[i], present[i] = 0, false
			} else {
				vals[i], present[i] = pos.curr.val, true
			}
			break
		}
	}
}

// scanRange walks level 0 across [lo, hi] as one long operation,
// emitting every (key, value) pair observed unmarked while validated
// reachable; emit returning false stops the scan (the KV collector's
// pair limit). When a hop fails validation (or hits a marked node,
// whose links are not a safe bridge), the scan re-descends to the first
// key not yet emitted — keys already emitted are never revisited,
// keeping output sorted and unique.
func (l *List) scanRange(t *core.Thread, lo, hi int64, emit func(int64, uint64) bool) {
	if lo > hi {
		return
	}
	t.StartOp()
	defer t.EndOp()
	from := lo
	for {
		pos, ok := l.descend(t, from, 0, nil)
		if !ok {
			continue // neutralized: resume at `from`
		}
		predCell, curr := pos.predCell, pos.curr
		// Full three-slot rotation, exactly as in descend: the node
		// holding predCell must keep its reservation through the
		// validation read below, so the slot reused for each new protect
		// is the one two hops back, never the current predecessor's.
		sPred, sCurr, sNext := pos.sPred, pos.sCurr, pos.sNext
		for {
			if curr == l.tail || curr.key > hi {
				return
			}
			// Snapshot the key and value while curr is still protected: a
			// failed Protect below means we were neutralized and curr may
			// be reclaimed before the !ok branch runs.
			k, v := curr.key, curr.val
			nraw, ok := t.Protect(sNext, curr.link(0))
			if !ok {
				from = k
				break // neutralized: re-descend
			}
			if predCell.Load() != unsafe.Pointer(curr) {
				from = k
				break // chain changed behind us: re-descend
			}
			if core.Marked(nraw) {
				// curr was deleted or replaced under the scan: restart at
				// its key (a marked node's links may already be stale; the
				// re-descent finds the replacement if there is one, whose
				// key has not been emitted yet).
				from = k
				break
			}
			if !emit(k, v) {
				return
			}
			from = k + 1
			predCell = curr.link(0)
			curr = (*node)(nraw)
			sPred, sCurr, sNext = sCurr, sNext, sPred
		}
	}
}

// Size counts unmarked bottom-level nodes. Quiescent use only.
func (l *List) Size(t *core.Thread) int {
	n := 0
	for c := (*node)(core.Mask(l.head.link(0).Load())); c != l.tail; {
		raw := c.link(0).Load()
		if !core.Marked(raw) {
			n++
		}
		c = (*node)(core.Mask(raw))
	}
	return n
}

func checkKey(key int64) {
	if key == math.MinInt64 || key == math.MaxInt64 {
		panic("skiplist: key collides with sentinel")
	}
}
