package skiplist

import (
	"testing"
	"unsafe"

	"pop/internal/core"
	"pop/internal/ds/hmlist"
)

// prevBytesPerKey is what the pre-unification layout paid per key, as
// measured by this benchmark before the rewrite: a pooled node carrying
// an inline 4-cell tower plus an amortized pooled extTower for the
// ~6.25% of geometric(1/2) towers taller than that (~88 node-B/key +
// ~8 ext-B/key). Kept as the before side of the before/after
// comparison this benchmark reports.
const prevBytesPerKey = 96

// BenchmarkTowerFootprint measures index + node memory per key with the
// unified layout: every key is one hmlist bottom node, and only the
// geometric(1/4) minority of keys carries a GC-heap index column. The
// node side is derived from the arena pool's outstanding count (what
// the allocator actually reserved); the column side walks index level 0
// and sums the exact Go-heap size of every column spine.
//
// Reported metrics:
//
//	node-B/key   bytes of bottom-node slab per key
//	idx-B/key    bytes of index columns per key (struct + right cells)
//	total-B/key  the two combined — the after side
//	prev-B/key   the pre-unification layout's measured cost — the before side
func BenchmarkTowerFootprint(b *testing.B) {
	const keys = 200_000
	nodeSize := int64(unsafe.Sizeof(hmlist.Node{}))
	colSize := int64(unsafe.Sizeof(column{}))
	cellSize := int64(unsafe.Sizeof(core.Atomic{}))

	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := core.NewDomain(core.EBR, 1, nil)
		l := New(d)
		th := d.RegisterThread()
		for k := int64(0); k < keys; k++ {
			l.PutIfAbsent(th, k, uint64(k))
		}
		nodes := l.Outstanding()
		if nodes != keys {
			b.Fatalf("outstanding nodes = %d, want %d", nodes, keys)
		}
		idxBytes := int64(0)
		for c := (*column)(core.Mask(l.headCol.right[0].Load())); c != l.tailCol; c = (*column)(core.Mask(c.right[0].Load())) {
			idxBytes += colSize + int64(len(c.right))*cellSize
		}
		nodeB := float64(nodes*nodeSize) / keys
		idxB := float64(idxBytes) / keys
		b.ReportMetric(nodeB, "node-B/key")
		b.ReportMetric(idxB, "idx-B/key")
		b.ReportMetric(nodeB+idxB, "total-B/key")
		b.ReportMetric(prevBytesPerKey, "prev-B/key")
	}
}

// TestColumnAccounting pins the index invariants: roughly a quarter of
// keys own a column (geometric(1/4)), every column routes to a live
// same-key node, and a full delete leaves the index empty — every
// column unlinked by the purge hook and every node back in its pool.
func TestColumnAccounting(t *testing.T) {
	d := core.NewDomain(core.EBR, 1, &core.Options{ReclaimThreshold: 64})
	l := New(d)
	th := d.RegisterThread()
	const keys = 20_000
	for k := int64(0); k < keys; k++ {
		l.PutIfAbsent(th, k, 0)
	}
	cols := int64(0)
	for c := (*column)(core.Mask(l.headCol.right[0].Load())); c != l.tailCol; c = (*column)(core.Mask(c.right[0].Load())) {
		cols++
		raw := c.n.Load()
		if raw == nil {
			t.Fatalf("live column for key %d has a cleared node pointer", c.key)
		}
		if got := (*hmlist.Node)(raw).Key(); got != c.key {
			t.Fatalf("column key %d routes to node key %d", c.key, got)
		}
	}
	// Geometric(1/4) heights: P(column) = 1/4. Allow generous slack.
	if lo, hi := int64(keys/6), int64(keys/3); cols < lo || cols > hi {
		t.Fatalf("columns = %d of %d keys, outside sane geometric bounds [%d, %d]", cols, keys, lo, hi)
	}
	// Deleting everything must purge every column and return every node
	// to its pool once reclamation has run.
	for k := int64(0); k < keys; k++ {
		if _, ok := l.Delete(th, k); !ok {
			t.Fatalf("delete %d: absent", k)
		}
	}
	th.Flush()
	for lvl := 0; lvl < maxIndexHeight; lvl++ {
		if raw := l.headCol.right[lvl].Load(); (*column)(core.Mask(raw)) != l.tailCol {
			t.Fatalf("index level %d not empty after full delete", lvl)
		}
	}
	if got := l.Outstanding(); got != 0 {
		t.Fatalf("node pool outstanding = %d after full delete+flush, want 0", got)
	}
}
