package skiplist

import (
	"testing"
	"unsafe"

	"pop/internal/core"
)

// BenchmarkTowerFootprint measures link-cell memory per key with the
// variable-height tower layout and reports it against the fixed-tower
// baseline this layout replaced (every node carrying a full
// MaxHeight-cell array, the ROADMAP item). The benchmark inserts N
// distinct keys and derives bytes/key from the arena pools' slab
// counts, so it reflects what the allocator actually reserved —
// including pooled extTowers for the ~6.25% of towers taller than
// inlineLevels.
//
// Reported metrics:
//
//	node-B/key   bytes of node slab per key (includes the inline tower)
//	ext-B/key    bytes of extension slab per key
//	fixed-B/key  what the same key count cost with fixed 20-level towers
func BenchmarkTowerFootprint(b *testing.B) {
	const keys = 200_000
	nodeSize := int64(unsafe.Sizeof(node{}))
	extSize := int64(unsafe.Sizeof(extTower{}))
	// The pre-refactor node: the current layout minus the ext pointer
	// and inline array, plus a full MaxHeight tower.
	fixedNodeSize := nodeSize - int64(unsafe.Sizeof([inlineLevels]core.Atomic{})) -
		int64(unsafe.Sizeof((*extTower)(nil))) + int64(unsafe.Sizeof([MaxHeight]core.Atomic{}))

	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := core.NewDomain(core.EBR, 1, nil)
		l := New(d)
		th := d.RegisterThread()
		for k := int64(0); k < keys; k++ {
			l.PutIfAbsent(th, k, uint64(k))
		}
		nodes := l.pool.Outstanding()
		exts := l.extPool.Outstanding()
		if nodes != keys {
			b.Fatalf("outstanding nodes = %d, want %d", nodes, keys)
		}
		b.ReportMetric(float64(nodes*nodeSize)/keys, "node-B/key")
		b.ReportMetric(float64(exts*extSize)/keys, "ext-B/key")
		b.ReportMetric(float64(nodes*fixedNodeSize)/keys, "fixed-B/key")
	}
}

// TestExtTowerAccounting pins the variable-height invariant: only
// towers taller than inlineLevels hold an extension, and extensions are
// recycled when their nodes are reclaimed.
func TestExtTowerAccounting(t *testing.T) {
	d := core.NewDomain(core.EBR, 1, &core.Options{ReclaimThreshold: 64})
	l := New(d)
	th := d.RegisterThread()
	const keys = 20_000
	for k := int64(0); k < keys; k++ {
		l.PutIfAbsent(th, k, 0)
	}
	tall := int64(0)
	for c := (*node)(core.Mask(l.head.link(0).Load())); c != l.tail; c = (*node)(core.Mask(c.link(0).Load())) {
		if c.height > inlineLevels {
			if c.ext == nil {
				t.Fatalf("height-%d node without extension", c.height)
			}
			tall++
		} else if c.ext != nil {
			t.Fatalf("height-%d node holds an extension", c.height)
		}
	}
	exts := l.extPool.Outstanding()
	if exts != tall {
		t.Fatalf("ext pool outstanding = %d, want %d (tall towers)", exts, tall)
	}
	// Geometric(1/2) heights: P(h > 4) = 1/16. Allow generous slack.
	if lo, hi := keys/32, keys/8; tall < int64(lo) || tall > int64(hi) {
		t.Fatalf("tall towers = %d of %d, outside sane geometric bounds [%d, %d]", tall, keys, lo, hi)
	}
	// Deleting everything must return every extension to its pool once
	// reclamation has run.
	for k := int64(0); k < keys; k++ {
		l.Delete(th, k)
	}
	th.Flush()
	if got := l.extPool.Outstanding(); got != 0 {
		t.Fatalf("ext pool outstanding = %d after full delete+flush, want 0", got)
	}
	if got := l.pool.Outstanding(); got != 0 {
		t.Fatalf("node pool outstanding = %d after full delete+flush, want 0", got)
	}
}
