package skiplist_test

import (
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pop/internal/core"
	"pop/internal/ds/skiplist"
	"pop/internal/rng"
)

// TestHammerProbe chases tower-reclamation races (link-after-mark undo,
// retire handoff, scan resumption) under every policy with a tiny
// reclaim threshold, asserting zero unreclaimed nodes once quiescent.
// Enabled long via SKIPLIST_HAMMER=1; a few short rounds otherwise.
func TestHammerProbe(t *testing.T) {
	dur := 2 * time.Second
	if os.Getenv("SKIPLIST_HAMMER") != "" {
		dur = 90 * time.Second
	}
	start := time.Now()
	round := 0
	for time.Since(start) < dur {
		round++
		for _, p := range core.Policies() {
			hammerRound(t, p, round, 4, 4000)
			if t.Failed() {
				return
			}
		}
	}
}

// TestHammerProbeRaceSubset is the short hammer for `go test -race`
// over the policies the acceptance bar names; the full-policy probe
// above already runs race-clean, this pins the three must-pass ones
// even when the suite is filtered.
func TestHammerProbeRaceSubset(t *testing.T) {
	for round, p := range []core.Policy{core.EBR, core.HazardPtrPOP, core.EpochPOP} {
		hammerRound(t, p, round, 4, 3000)
		if t.Failed() {
			return
		}
	}
}

// hammerRound runs one domain's worth of mixed ops + scans and checks
// the leak and scan-shape invariants at the end.
func hammerRound(t *testing.T, p core.Policy, round, workers, ops int) {
	d := core.NewDomain(p, workers, &core.Options{ReclaimThreshold: 64, EpochFreq: 16})
	l := skiplist.New(d)
	var scanned atomic.Uint64
	var wg sync.WaitGroup
	threads := make([]*core.Thread, workers)
	for i := range threads {
		threads[i] = d.RegisterThread()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int, th *core.Thread) {
			defer wg.Done()
			r := rng.New(uint64(id)*23 + uint64(round)*7919 + uint64(p))
			var buf []int64
			for i := 0; i < ops; i++ {
				k := r.Intn(512)
				switch i % 5 {
				case 0, 1:
					l.Insert(th, k)
				case 2:
					l.Delete(th, k)
				case 3:
					l.Contains(th, k)
				default:
					hi := k + r.Intn(96)
					buf = l.RangeCollect(th, k, hi, buf)
					for j := 1; j < len(buf); j++ {
						if buf[j-1] >= buf[j] || buf[j] < k || buf[j] > hi {
							t.Errorf("%v round %d: malformed scan [%d,%d]: %v", p, round, k, hi, buf)
							return
						}
					}
					scanned.Add(uint64(len(buf)))
				}
			}
		}(w, threads[w])
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for _, th := range threads {
		th.Flush()
	}
	if p != core.NR {
		if u := d.Unreclaimed(); u != 0 {
			t.Errorf("%v round %d: %d unreclaimed nodes after quiescent flush", p, round, u)
		}
	}
	// Outstanding must equal exactly the keys still linked (towers with
	// retired-but-unfreed nodes would inflate it).
	if p != core.NR {
		if live, out := int64(l.Size(threads[0])), l.Outstanding(); live != out {
			t.Errorf("%v round %d: Outstanding = %d but Size = %d", p, round, out, live)
		}
	}
	if scanned.Load() == 0 {
		t.Errorf("%v round %d: hammer performed no successful scans", p, round)
	}
}
