package skiplist

import (
	"testing"

	"pop/internal/core"
)

// Effective-height microbenchmarks: the single-op descents (Get, Put)
// start at the probed highest live level instead of MaxHeight-1, so a
// small store pays ~log2(keys) link hops per descent instead of a fixed
// 20. The *FullHeight variants drive the same in-op bodies pinned to the
// pre-change start level — the before/after pair for the probe's win.
// At 1K keys the effective top is ~10 levels, so roughly half of every
// pre-change descent was hops along empty head→tail levels.

const effKeys = 1 << 10

func prefill(b *testing.B) (*core.Domain, *List, *core.Thread) {
	b.Helper()
	d := core.NewDomain(core.EBR, 1, nil)
	l := New(d)
	th := d.RegisterThread()
	for k := int64(0); k < effKeys; k++ {
		l.PutIfAbsent(th, k, uint64(k))
	}
	b.ReportAllocs()
	b.ResetTimer()
	return d, l, th
}

func BenchmarkGetEffectiveHeight(b *testing.B) {
	_, l, th := prefill(b)
	for i := 0; i < b.N; i++ {
		if _, ok := l.Get(th, int64(i)%effKeys); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkGetFullHeight is the pre-change Get: same protected descent,
// start level pinned to MaxHeight-1.
func BenchmarkGetFullHeight(b *testing.B) {
	_, l, th := prefill(b)
	for i := 0; i < b.N; i++ {
		key := int64(i) % effKeys
		th.StartOp()
		pos, ok := l.descendFrom(th, key, 0, MaxHeight-1, nil)
		if !ok || pos.curr == l.tail || pos.curr.key != key {
			th.EndOp()
			b.Fatal("miss")
		}
		th.EndOp()
	}
}

func BenchmarkPutEffectiveHeight(b *testing.B) {
	_, l, th := prefill(b)
	for i := 0; i < b.N; i++ {
		l.Put(th, int64(i)%effKeys, uint64(i))
	}
}

// BenchmarkPutFullHeight is the pre-change Put: the shared upsert body
// with its find descents pinned to MaxHeight-1.
func BenchmarkPutFullHeight(b *testing.B) {
	_, l, th := prefill(b)
	for i := 0; i < b.N; i++ {
		th.StartOp()
		l.putInOp(th, int64(i)%effKeys, uint64(i), true, MaxHeight-1)
		th.EndOp()
	}
}
