package skiplist

import (
	"testing"

	"pop/internal/core"
)

// Index-vs-head-walk microbenchmarks: the default single-op paths seed
// the bottom-layer walk with an index hint (O(log n) column hops, no
// protections until the final hop), while the *HeadWalk variants drive
// the identical hmlist in-op bodies with a nil hint — the pure
// Harris-Michael walk every operation would pay without the index. At
// 1K keys that is ~512 protected hops per op versus ~5 column hops plus
// a short protected tail, the before/after pair for the index's win.

const effKeys = 1 << 10

func prefill(b *testing.B) (*core.Domain, *List, *core.Thread) {
	b.Helper()
	d := core.NewDomain(core.EBR, 1, nil)
	l := New(d)
	th := d.RegisterThread()
	for k := int64(0); k < effKeys; k++ {
		l.PutIfAbsent(th, k, uint64(k))
	}
	b.ReportAllocs()
	b.ResetTimer()
	return d, l, th
}

func BenchmarkGetIndexed(b *testing.B) {
	_, l, th := prefill(b)
	for i := 0; i < b.N; i++ {
		if _, ok := l.Get(th, int64(i)%effKeys); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkGetHeadWalk is the same protected lookup body with the index
// bypassed: every descent walks the bottom layer from the head.
func BenchmarkGetHeadWalk(b *testing.B) {
	_, l, th := prefill(b)
	for i := 0; i < b.N; i++ {
		key := int64(i) % effKeys
		th.StartOp()
		_, present, _ := l.b.GetInOpHinted(th, key, nil, 0)
		th.EndOp()
		if !present {
			b.Fatal("miss")
		}
	}
}

func BenchmarkPutIndexed(b *testing.B) {
	_, l, th := prefill(b)
	for i := 0; i < b.N; i++ {
		l.Put(th, int64(i)%effKeys, uint64(i))
	}
}

// BenchmarkPutHeadWalk is the upsert body with the index bypassed: the
// overwrite walks from the head, and the published replacement still
// links its column (the index must stay coherent for the purge hook).
func BenchmarkPutHeadWalk(b *testing.B) {
	_, l, th := prefill(b)
	for i := 0; i < b.N; i++ {
		key := int64(i) % effKeys
		th.StartOp()
		out, _ := l.b.PutInOpHinted(th, key, uint64(i), true, nil, 0)
		if out.New != nil {
			l.linkIndex(th, out.New, key)
			l.b.FinishLinking(th, out.New)
		}
		th.EndOp()
	}
}
