package skiplist_test

import (
	"testing"

	"pop/internal/core"
	"pop/internal/ds"
	"pop/internal/ds/dstest"
	"pop/internal/ds/skiplist"
)

func TestConformance(t *testing.T) {
	dstest.Run(t, func(d *core.Domain) ds.Map { return skiplist.New(d) }, dstest.Config{})
}

// TestRangeEdges exercises degenerate bounds. (Randomized range
// validation against a reference model runs in TestConformance via
// dstest's RangeSequentialVsRef/RangeOwnedStripes suites.)
func TestRangeEdges(t *testing.T) {
	d := core.NewDomain(core.EBR, 1, nil)
	l := skiplist.New(d)
	th := d.RegisterThread()
	for _, k := range []int64{-5, 0, 3, 7, 100} {
		l.Insert(th, k)
	}
	if got := l.RangeCount(th, 10, 5); got != 0 {
		t.Fatalf("inverted range counted %d", got)
	}
	if got := l.RangeCount(th, -1000, 1000); got != 5 {
		t.Fatalf("covering range counted %d, want 5", got)
	}
	if got := l.RangeCount(th, 3, 3); got != 1 {
		t.Fatalf("point range counted %d, want 1", got)
	}
	if got := l.RangeCount(th, 4, 6); got != 0 {
		t.Fatalf("empty gap counted %d, want 0", got)
	}
	if buf := l.RangeCollect(th, 0, 7, nil); len(buf) != 3 || buf[0] != 0 || buf[1] != 3 || buf[2] != 7 {
		t.Fatalf("RangeCollect(0,7) = %v", buf)
	}
}

// TestTowerHeightsReasonable sanity-checks the geometric height draw by
// inserting many keys and verifying multi-level towers exist (coverage
// for the upper-level link path).
func TestTowerHeightsReasonable(t *testing.T) {
	d := core.NewDomain(core.EBR, 1, nil)
	l := skiplist.New(d)
	th := d.RegisterThread()
	for k := int64(0); k < 4096; k++ {
		l.Insert(th, k)
	}
	if got := l.Size(th); got != 4096 {
		t.Fatalf("Size = %d, want 4096", got)
	}
	// A 4096-key skiplist with geometric heights has ~2048 towers of
	// height >= 2; the range scan must still see every key.
	if got := l.RangeCount(th, 0, 4095); got != 4096 {
		t.Fatalf("RangeCount over all = %d, want 4096", got)
	}
}
