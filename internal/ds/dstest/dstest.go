// Package dstest is the conformance suite every concurrent structure in
// this repository must pass, under every reclamation policy. Data-
// structure packages call Run from their tests; the suite exercises:
//
//   - sequential set semantics (insert/delete/contains truth table,
//     ordering, duplicates, sentinels) through the ds.Set adapter;
//   - sequential map semantics (get-after-put, put-if-absent,
//     last-writer-wins overwrite, delete returning the removed value);
//   - randomized sequential equivalence against reference maps;
//   - concurrent mixed workloads with a net-count invariant (inserts
//     minus deletes equals final size);
//   - a concurrent overwrite storm on a small shared key set: every
//     thread writes globally unique values and the returned old values
//     must chain perfectly (each written value is returned as "old"
//     exactly once or survives as a final value) — the linearizability
//     check for replace-node/in-place/CoW overwrite strategies;
//   - per-thread key-stripe map workloads validated exactly against a
//     reference map, including every returned old value, while
//     neighbouring stripes churn;
//   - reclamation pressure (tiny retire thresholds force constant
//     reclaim/ping traffic while readers traverse);
//   - a delayed-thread scenario that must not break safety;
//   - for structures implementing ds.BatchGetter, batch-vs-loop
//     equivalence: quiescent exactness (hits, misses, duplicates) and
//     per-thread owned-stripe validation under concurrent churn;
//   - for structures implementing ds.RangeScanner, range-query
//     validation against a mutex-guarded reference model: exact
//     equivalence sequentially and over per-thread key stripes under
//     concurrent churn, plus global-scan invariants (sorted,
//     duplicate-free, in-bounds, all permanently-present keys reported,
//     no never-inserted key ever reported) and value-returning scans
//     (RangeCollectKV) checked pair-exactly, limits included.
//
// Any use-after-free surfaces as a poisoned key, a failed invariant, or
// an arena panic — the Go analogue of the segfault the paper's C++
// benchmark would produce.
package dstest

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"pop/internal/core"
	"pop/internal/ds"
	"pop/internal/rng"
)

// Factory builds a fresh map instance over the given domain.
type Factory func(d *core.Domain) ds.Map

// Config tunes the suite for a data structure's cost profile.
type Config struct {
	// KeyRange bounds random keys to [0, KeyRange).
	KeyRange int64
	// ConcOps is the per-goroutine operation count in concurrent tests.
	ConcOps int
	// Threads is the concurrency level (defaults to 4).
	Threads int
	// SkipPolicies lists policies the structure does not support.
	SkipPolicies []core.Policy
}

func (c Config) withDefaults() Config {
	if c.KeyRange <= 0 {
		c.KeyRange = 512
	}
	if c.ConcOps <= 0 {
		c.ConcOps = 3000
	}
	if c.Threads <= 0 {
		c.Threads = 4
	}
	return c
}

func (c Config) skip(p core.Policy) bool {
	for _, s := range c.SkipPolicies {
		if s == p {
			return true
		}
	}
	return false
}

// Run executes the full conformance suite: the set-contract suites
// (via the ds.Set adapter), the map-contract suites, and — for
// structures implementing ds.RangeScanner — the range-query suites.
func Run(t *testing.T, f Factory, cfg Config) {
	cfg = cfg.withDefaults()
	probe := f(newDomain(core.NR, 1))
	_, ranged := probe.(ds.RangeScanner)
	_, batched := probe.(ds.BatchGetter)
	for _, p := range core.Policies() {
		if cfg.skip(p) {
			continue
		}
		p := p
		t.Run(p.String(), func(t *testing.T) {
			t.Run("Sequential", func(t *testing.T) { sequential(t, f, p) })
			t.Run("RandomizedVsMap", func(t *testing.T) { randomizedVsMap(t, f, p, cfg) })
			t.Run("ConcurrentInvariant", func(t *testing.T) { concurrentInvariant(t, f, p, cfg) })
			t.Run("ConcurrentDistinctKeys", func(t *testing.T) { concurrentDistinctKeys(t, f, p, cfg) })
			t.Run("DelayedReader", func(t *testing.T) { delayedReader(t, f, p, cfg) })
			t.Run("MapSequential", func(t *testing.T) { mapSequential(t, f, p) })
			t.Run("MapRandomizedVsRef", func(t *testing.T) { mapRandomizedVsRef(t, f, p, cfg) })
			t.Run("MapOverwriteStorm", func(t *testing.T) { mapOverwriteStorm(t, f, p, cfg) })
			t.Run("MapOwnedStripes", func(t *testing.T) { mapOwnedStripes(t, f, p, cfg) })
			if batched {
				t.Run("MapBatchGet", func(t *testing.T) { mapBatchGet(t, f, p, cfg) })
			}
			if ranged {
				t.Run("RangeSequentialVsRef", func(t *testing.T) { rangeSequentialVsRef(t, f, p, cfg) })
				t.Run("RangeKVVsRef", func(t *testing.T) { rangeKVVsRef(t, f, p, cfg) })
				t.Run("RangeOwnedStripes", func(t *testing.T) { rangeOwnedStripes(t, f, p, cfg) })
				t.Run("RangeChurnInvariants", func(t *testing.T) { rangeChurnInvariants(t, f, p, cfg) })
			}
		})
	}
}

// newDomain builds a domain with a tiny reclaim threshold so reclamation
// paths run constantly during the suite.
func newDomain(p core.Policy, threads int) *core.Domain {
	return core.NewDomain(p, threads, &core.Options{
		ReclaimThreshold: 32,
		EpochFreq:        8,
		BatchSize:        8,
		Debug:            true,
	})
}

func sequential(t *testing.T, f Factory, p core.Policy) {
	d := newDomain(p, 1)
	m := f(d)
	s := ds.AsSet(m)
	th := d.RegisterThread()

	if s.Contains(th, 10) {
		t.Fatal("empty set contains 10")
	}
	if s.Delete(th, 10) {
		t.Fatal("delete from empty set succeeded")
	}
	if !s.Insert(th, 10) {
		t.Fatal("insert 10 failed")
	}
	if s.Insert(th, 10) {
		t.Fatal("duplicate insert 10 succeeded")
	}
	if !s.Contains(th, 10) {
		t.Fatal("set lost 10")
	}
	// Neighbours must not be confused with 10.
	for _, k := range []int64{9, 11, 0, 1 << 40} {
		if s.Contains(th, k) {
			t.Fatalf("phantom key %d", k)
		}
	}
	if !s.Delete(th, 10) {
		t.Fatal("delete 10 failed")
	}
	if s.Contains(th, 10) {
		t.Fatal("10 survived delete")
	}
	if s.Delete(th, 10) {
		t.Fatal("double delete succeeded")
	}

	// Ascending, descending, interleaved batches.
	for i := int64(0); i < 64; i++ {
		if !s.Insert(th, i) {
			t.Fatalf("insert %d failed", i)
		}
	}
	for i := int64(127); i >= 64; i-- {
		if !s.Insert(th, i) {
			t.Fatalf("insert %d failed", i)
		}
	}
	for i := int64(0); i < 128; i++ {
		if !s.Contains(th, i) {
			t.Fatalf("missing %d", i)
		}
	}
	if sized, ok := m.(ds.Sized); ok {
		if got := sized.Size(th); got != 128 {
			t.Fatalf("Size = %d, want 128", got)
		}
	}
	// Delete evens, verify odds.
	for i := int64(0); i < 128; i += 2 {
		if !s.Delete(th, i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	for i := int64(0); i < 128; i++ {
		want := i%2 == 1
		if got := s.Contains(th, i); got != want {
			t.Fatalf("Contains(%d) = %v, want %v", i, got, want)
		}
	}
	th.Flush()
}

// mapSequential is the single-threaded truth table for the map
// contract: get-after-put visibility, put-if-absent semantics,
// last-writer-wins overwrite with exact old values, and delete
// returning the removed value.
func mapSequential(t *testing.T, f Factory, p core.Policy) {
	d := newDomain(p, 1)
	m := f(d)
	th := d.RegisterThread()

	if _, ok := m.Get(th, 7); ok {
		t.Fatal("empty map Get(7) reported a value")
	}
	if _, ok := m.Delete(th, 7); ok {
		t.Fatal("empty map Delete(7) succeeded")
	}
	if old, replaced := m.Put(th, 7, 100); replaced || old != 0 {
		t.Fatalf("Put(7) on empty map = (%d, %v), want (0, false)", old, replaced)
	}
	if v, ok := m.Get(th, 7); !ok || v != 100 {
		t.Fatalf("Get(7) after Put = (%d, %v), want (100, true)", v, ok)
	}
	// Put-if-absent must not disturb a present key.
	if m.PutIfAbsent(th, 7, 200) {
		t.Fatal("PutIfAbsent(7) succeeded on a present key")
	}
	if v, _ := m.Get(th, 7); v != 100 {
		t.Fatalf("PutIfAbsent overwrote: Get(7) = %d, want 100", v)
	}
	// Overwrite returns the exact replaced value, repeatedly.
	for i, want := range []uint64{100, 300, 400} {
		next := uint64(300 + 100*i)
		if old, replaced := m.Put(th, 7, next); !replaced || old != want {
			t.Fatalf("Put(7, %d) = (%d, %v), want (%d, true)", next, old, replaced, want)
		}
	}
	if v, _ := m.Get(th, 7); v != 500 {
		t.Fatalf("after overwrite chain Get(7) = %d, want 500", v)
	}
	// Neighbours carry their own values.
	if !m.PutIfAbsent(th, 6, 60) || !m.PutIfAbsent(th, 8, 80) {
		t.Fatal("PutIfAbsent on absent neighbours failed")
	}
	for k, want := range map[int64]uint64{6: 60, 7: 500, 8: 80} {
		if v, ok := m.Get(th, k); !ok || v != want {
			t.Fatalf("Get(%d) = (%d, %v), want (%d, true)", k, v, ok, want)
		}
	}
	// Delete returns the removed value; the key is gone afterwards.
	if v, ok := m.Delete(th, 7); !ok || v != 500 {
		t.Fatalf("Delete(7) = (%d, %v), want (500, true)", v, ok)
	}
	if _, ok := m.Get(th, 7); ok {
		t.Fatal("7 survived delete")
	}
	if v, ok := m.Delete(th, 6); !ok || v != 60 {
		t.Fatalf("Delete(6) = (%d, %v), want (60, true)", v, ok)
	}
	// Re-insert after delete starts a fresh value history.
	if old, replaced := m.Put(th, 7, 999); replaced || old != 0 {
		t.Fatalf("Put(7) after delete = (%d, %v), want (0, false)", old, replaced)
	}
	if v, _ := m.Get(th, 7); v != 999 {
		t.Fatalf("Get(7) after re-insert = %d, want 999", v)
	}
	th.Flush()
}

// mapRandomizedVsRef drives the map with a random single-threaded tape
// and checks every result — including returned old values — against a
// reference map.
func mapRandomizedVsRef(t *testing.T, f Factory, p core.Policy, cfg Config) {
	d := newDomain(p, 1)
	m := f(d)
	th := d.RegisterThread()
	ref := make(map[int64]uint64)
	r := rng.New(uint64(0xBEEF) ^ uint64(p)<<4)

	for i := 0; i < 4000; i++ {
		k := r.Intn(cfg.KeyRange)
		v := r.Uint64()
		switch r.Intn(4) {
		case 0:
			wantOld, wantReplaced := ref[k], false
			if _, present := ref[k]; present {
				wantReplaced = true
			}
			old, replaced := m.Put(th, k, v)
			if replaced != wantReplaced || old != wantOld {
				t.Fatalf("op %d: Put(%d) = (%d, %v), want (%d, %v)", i, k, old, replaced, wantOld, wantReplaced)
			}
			ref[k] = v
		case 1:
			_, present := ref[k]
			if got := m.PutIfAbsent(th, k, v); got != !present {
				t.Fatalf("op %d: PutIfAbsent(%d) = %v, want %v", i, k, got, !present)
			}
			if !present {
				ref[k] = v
			}
		case 2:
			wantV, wantOK := ref[k]
			v, ok := m.Delete(th, k)
			if ok != wantOK || v != wantV {
				t.Fatalf("op %d: Delete(%d) = (%d, %v), want (%d, %v)", i, k, v, ok, wantV, wantOK)
			}
			delete(ref, k)
		default:
			wantV, wantOK := ref[k]
			v, ok := m.Get(th, k)
			if ok != wantOK || v != wantV {
				t.Fatalf("op %d: Get(%d) = (%d, %v), want (%d, %v)", i, k, v, ok, wantV, wantOK)
			}
		}
	}
	if sized, ok := m.(ds.Sized); ok {
		if got := sized.Size(th); got != len(ref) {
			t.Fatalf("Size = %d, want %d", got, len(ref))
		}
	}
	th.Flush()
}

// mapOverwriteStorm hammers a small shared key set with overwrites
// only. Every thread writes globally unique values and records its own
// writes and returned old values privately — nothing synchronizes the
// storm but the map itself, so replace-CAS races (two replacers on one
// victim, replace vs delete at level 0) actually happen. At the end,
// for every key, the value chain must balance exactly: {initial value}
// ∪ {written values} = {values returned as old} ∪ {final value}, each
// exactly once. A lost update, a doubled old value, or a value from a
// reclaimed node would unbalance the multiset — this is the
// linearizability check for every overwrite strategy (replace-node,
// in-place, CoW leaf).
func mapOverwriteStorm(t *testing.T, f Factory, p core.Policy, cfg Config) {
	const nkeys = 16
	d := newDomain(p, cfg.Threads)
	m := f(d)
	threads := make([]*core.Thread, cfg.Threads)
	for i := range threads {
		threads[i] = d.RegisterThread()
	}

	// Prefill each key with a unique tagged value (tag 0, slot = key).
	mkVal := func(writer, seq int) uint64 {
		return uint64(writer+1)<<32 | uint64(seq)
	}
	written := make(map[int64][]uint64, nkeys)
	for k := int64(0); k < nkeys; k++ {
		v := mkVal(0, int(k))
		if old, replaced := m.Put(threads[0], k, v); replaced || old != 0 {
			t.Fatalf("prefill Put(%d) = (%d, %v)", k, old, replaced)
		}
		written[k] = append(written[k], v)
	}

	ops := cfg.ConcOps
	wrote := make([]map[int64][]uint64, cfg.Threads)
	returned := make([]map[int64][]uint64, cfg.Threads)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Threads; i++ {
		wrote[i] = make(map[int64][]uint64)
		returned[i] = make(map[int64][]uint64)
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := threads[id]
			r := rng.New(uint64(id)*6364136223846793005 + uint64(p))
			for n := 0; n < ops; n++ {
				k := r.Intn(nkeys)
				v := mkVal(id+1, n)
				wrote[id][k] = append(wrote[id][k], v)
				old, replaced := m.Put(th, k, v)
				if !replaced {
					t.Errorf("thread %d: Put(%d) found the key absent mid-storm", id, k)
					return
				}
				returned[id][k] = append(returned[id][k], old)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for id := range wrote {
		for k, vs := range wrote[id] {
			written[k] = append(written[k], vs...)
		}
	}

	// Balance the chains: per key, olds ∪ {final} must equal written.
	for k := int64(0); k < nkeys; k++ {
		final, ok := m.Get(threads[0], k)
		if !ok {
			t.Fatalf("key %d absent after storm", k)
		}
		seen := make(map[uint64]int, len(written[k]))
		for _, v := range written[k] {
			seen[v]++
			if seen[v] > 1 {
				t.Fatalf("key %d: duplicate written value %#x (test bug)", k, v)
			}
		}
		consume := func(v uint64, what string) {
			c, present := seen[v]
			if !present {
				t.Fatalf("key %d: %s value %#x was never written", k, what, v)
			}
			if c == 0 {
				t.Fatalf("key %d: %s value %#x consumed twice (overwrite chain forked)", k, what, v)
			}
			seen[v] = 0
		}
		for id := range returned {
			for _, old := range returned[id][k] {
				consume(old, "returned-old")
			}
		}
		consume(final, "final")
		for v, c := range seen {
			if c != 0 {
				t.Fatalf("key %d: written value %#x neither returned as old nor final (lost update)", k, v)
			}
		}
	}
	for _, th := range threads {
		th.Flush()
	}
	if p != core.NR {
		if u := d.Unreclaimed(); u != 0 {
			t.Fatalf("%d unreclaimed nodes after quiescent flush", u)
		}
	}
}

// mapOwnedStripes gives each thread a private key stripe and validates
// every operation result — values, old values, removed values — exactly
// against a per-thread reference map while the other stripes churn the
// same structure (get-after-put visibility under full concurrency).
func mapOwnedStripes(t *testing.T, f Factory, p core.Policy, cfg Config) {
	const stripe = 256
	d := newDomain(p, cfg.Threads)
	m := f(d)
	threads := make([]*core.Thread, cfg.Threads)
	for i := range threads {
		threads[i] = d.RegisterThread()
	}
	errs := make(chan error, cfg.Threads)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := threads[id]
			lo := int64(id) * stripe
			ref := make(map[int64]uint64)
			r := rng.New(uint64(id)*2862933555777941757 + uint64(p) + 11)
			for n := 0; n < cfg.ConcOps; n++ {
				k := lo + r.Intn(stripe)
				v := r.Uint64()
				switch r.Intn(8) {
				case 0, 1:
					wantOld, wantReplaced := ref[k], false
					if _, present := ref[k]; present {
						wantReplaced = true
					}
					old, replaced := m.Put(th, k, v)
					if replaced != wantReplaced || old != wantOld {
						errs <- fmt.Errorf("thread %d: Put(%d) = (%d, %v), want (%d, %v)", id, k, old, replaced, wantOld, wantReplaced)
						return
					}
					ref[k] = v
				case 2, 3:
					_, present := ref[k]
					if got := m.PutIfAbsent(th, k, v); got != !present {
						errs <- fmt.Errorf("thread %d: PutIfAbsent(%d) = %v, want %v", id, k, got, !present)
						return
					}
					if !present {
						ref[k] = v
					}
				case 4, 5:
					wantV, wantOK := ref[k]
					got, ok := m.Delete(th, k)
					if ok != wantOK || got != wantV {
						errs <- fmt.Errorf("thread %d: Delete(%d) = (%d, %v), want (%d, %v)", id, k, got, ok, wantV, wantOK)
						return
					}
					delete(ref, k)
				default:
					wantV, wantOK := ref[k]
					got, ok := m.Get(th, k)
					if ok != wantOK || got != wantV {
						errs <- fmt.Errorf("thread %d: Get(%d) = (%d, %v), want (%d, %v) — stale read", id, k, got, ok, wantV, wantOK)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, th := range threads {
		th.Flush()
	}
	if p != core.NR {
		if u := d.Unreclaimed(); u != 0 {
			t.Fatalf("%d unreclaimed nodes after quiescent flush", u)
		}
	}
}

func randomizedVsMap(t *testing.T, f Factory, p core.Policy, cfg Config) {
	d := newDomain(p, 1)
	m := f(d)
	s := ds.AsSet(m)
	th := d.RegisterThread()
	ref := make(map[int64]bool)
	r := rng.New(uint64(0xC0FFEE) ^ uint64(p))

	for i := 0; i < 4000; i++ {
		k := r.Intn(cfg.KeyRange)
		switch r.Intn(3) {
		case 0:
			want := !ref[k]
			if got := s.Insert(th, k); got != want {
				t.Fatalf("op %d: Insert(%d) = %v, want %v", i, k, got, want)
			}
			ref[k] = true
		case 1:
			want := ref[k]
			if got := s.Delete(th, k); got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
			delete(ref, k)
		default:
			if got := s.Contains(th, k); got != ref[k] {
				t.Fatalf("op %d: Contains(%d) = %v, want %v", i, k, got, ref[k])
			}
		}
	}
	if sized, ok := m.(ds.Sized); ok {
		if got := sized.Size(th); got != len(ref) {
			t.Fatalf("Size = %d, want %d", got, len(ref))
		}
	}
	th.Flush()
}

// concurrentInvariant hammers the set from several goroutines and checks
// that successful inserts minus successful deletes equals the final size.
func concurrentInvariant(t *testing.T, f Factory, p core.Policy, cfg Config) {
	d := newDomain(p, cfg.Threads)
	m := f(d)
	s := ds.AsSet(m)
	var net atomic.Int64
	var wg sync.WaitGroup
	threads := make([]*core.Thread, cfg.Threads)
	for i := range threads {
		threads[i] = d.RegisterThread()
	}
	for i := 0; i < cfg.Threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := threads[id]
			r := rng.New(uint64(id)*7919 + uint64(p))
			local := int64(0)
			for n := 0; n < cfg.ConcOps; n++ {
				k := r.Intn(cfg.KeyRange)
				switch r.Intn(10) {
				case 0, 1, 2, 3:
					if s.Insert(th, k) {
						local++
					}
				case 4, 5, 6, 7:
					if s.Delete(th, k) {
						local--
					}
				default:
					s.Contains(th, k)
				}
			}
			net.Add(local)
		}(i)
	}
	wg.Wait()

	if sized, ok := m.(ds.Sized); ok {
		if got := sized.Size(threads[0]); int64(got) != net.Load() {
			t.Fatalf("net inserts %d != final size %d", net.Load(), got)
		}
	}
	for _, th := range threads {
		th.Flush()
	}
	// Everything retired must be freed once all threads are quiescent
	// (except NR, which leaks by design).
	if p != core.NR {
		if u := d.Unreclaimed(); u != 0 {
			t.Fatalf("%d unreclaimed nodes after quiescent flush", u)
		}
	}
}

// concurrentDistinctKeys gives each goroutine a private key range so
// every operation's outcome is deterministic even under concurrency.
func concurrentDistinctKeys(t *testing.T, f Factory, p core.Policy, cfg Config) {
	d := newDomain(p, cfg.Threads)
	m := f(d)
	s := ds.AsSet(m)
	var wg sync.WaitGroup
	threads := make([]*core.Thread, cfg.Threads)
	for i := range threads {
		threads[i] = d.RegisterThread()
	}
	errs := make(chan error, cfg.Threads)
	for i := 0; i < cfg.Threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := threads[id]
			base := int64(id) * 1_000_000
			for k := base; k < base+200; k++ {
				if !s.Insert(th, k) {
					errs <- fmt.Errorf("thread %d: insert %d failed", id, k)
					return
				}
			}
			for k := base; k < base+200; k++ {
				if !s.Contains(th, k) {
					errs <- fmt.Errorf("thread %d: lost key %d", id, k)
					return
				}
			}
			for k := base; k < base+200; k += 2 {
				if !s.Delete(th, k) {
					errs <- fmt.Errorf("thread %d: delete %d failed", id, k)
					return
				}
			}
			for k := base; k < base+200; k++ {
				want := k%2 == 1
				if got := s.Contains(th, k); got != want {
					errs <- fmt.Errorf("thread %d: Contains(%d)=%v want %v", id, k, got, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, th := range threads {
		th.Flush()
	}
}

// delayedReader holds one thread inside an operation (answering polls,
// like a thread busy with other work) while writers churn. Robust
// policies must keep reclaiming; all policies must stay safe.
func delayedReader(t *testing.T, f Factory, p core.Policy, cfg Config) {
	d := newDomain(p, 3)
	m := f(d)
	s := ds.AsSet(m)
	reader := d.RegisterThread()
	w1 := d.RegisterThread()
	w2 := d.RegisterThread()

	// Seed some keys so the reader has something to look at.
	for k := int64(0); k < 32; k++ {
		s.Insert(w1, k)
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		// The reader performs one op, then stalls inside a fresh op
		// polling (busy-delayed), then resumes.
		s.Contains(reader, 1)
		reader.StartOp()
		for {
			select {
			case <-stop:
				reader.EndOp()
				return
			default:
				reader.Poll()
				runtime.Gosched()
			}
		}
	}()

	var wg sync.WaitGroup
	for _, th := range []*core.Thread{w1, w2} {
		wg.Add(1)
		go func(th *core.Thread) {
			defer wg.Done()
			r := rng.New(uint64(th.ID()) + 99)
			for n := 0; n < cfg.ConcOps; n++ {
				k := r.Intn(cfg.KeyRange)
				if r.Intn(2) == 0 {
					s.Insert(th, k)
				} else {
					s.Delete(th, k)
				}
			}
		}(th)
	}
	wg.Wait()
	close(stop)
	<-done

	st := d.Stats()
	if p.Robust() && st.Frees == 0 && st.Retires > 64 {
		t.Fatalf("robust policy %v freed nothing under a delayed reader (retires=%d)", p, st.Retires)
	}
	for _, th := range []*core.Thread{reader, w1, w2} {
		th.Flush()
	}
}

// ---------------------------------------------------------------------
// Range-query suites (structures implementing ds.RangeScanner)
// ---------------------------------------------------------------------

// refSet is the mutex-guarded reference model range results are
// validated against.
type refSet struct {
	mu   sync.Mutex
	keys map[int64]bool
}

func newRefSet() *refSet { return &refSet{keys: make(map[int64]bool)} }

func (r *refSet) insert(k int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.keys[k] {
		return false
	}
	r.keys[k] = true
	return true
}

func (r *refSet) delete(k int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.keys[k] {
		return false
	}
	delete(r.keys, k)
	return true
}

// sortedRange returns the model's keys in [lo, hi], ascending.
func (r *refSet) sortedRange(lo, hi int64) []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []int64
	for k := range r.keys {
		if k >= lo && k <= hi {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// checkScanShape verifies the structural guarantees every concurrent
// scan must satisfy regardless of interleaving: sorted, duplicate-free,
// within bounds.
func checkScanShape(t *testing.T, got []int64, lo, hi int64) {
	t.Helper()
	for i, k := range got {
		if k < lo || k > hi {
			t.Fatalf("scan[%d] = %d outside [%d, %d]", i, k, lo, hi)
		}
		if i > 0 && got[i-1] >= k {
			t.Fatalf("scan not strictly ascending at %d: %d then %d", i, got[i-1], k)
		}
	}
}

// rangeSequentialVsRef checks both range entry points for exact
// equivalence with the reference model under a random single-threaded
// history (every scan here is linearizable trivially).
func rangeSequentialVsRef(t *testing.T, f Factory, p core.Policy, cfg Config) {
	d := newDomain(p, 1)
	m := f(d)
	s := ds.AsSet(m)
	rs := m.(ds.RangeScanner)
	th := d.RegisterThread()
	ref := newRefSet()
	r := rng.New(uint64(0x5ca9) ^ uint64(p)<<8)
	var buf []int64

	for i := 0; i < 3000; i++ {
		k := r.Intn(cfg.KeyRange)
		switch r.Intn(4) {
		case 0:
			if got, want := s.Insert(th, k), ref.insert(k); got != want {
				t.Fatalf("op %d: Insert(%d) = %v, want %v", i, k, got, want)
			}
		case 1:
			if got, want := s.Delete(th, k), ref.delete(k); got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
		default:
			lo := r.Intn(cfg.KeyRange)
			hi := lo + r.Intn(cfg.KeyRange/8+1)
			want := ref.sortedRange(lo, hi)
			buf = rs.RangeCollect(th, lo, hi, buf)
			checkScanShape(t, buf, lo, hi)
			if len(buf) != len(want) {
				t.Fatalf("op %d: RangeCollect(%d,%d) -> %d keys, want %d", i, lo, hi, len(buf), len(want))
			}
			for j := range want {
				if buf[j] != want[j] {
					t.Fatalf("op %d: RangeCollect(%d,%d)[%d] = %d, want %d", i, lo, hi, j, buf[j], want[j])
				}
			}
			if got := rs.RangeCount(th, lo, hi); got != len(want) {
				t.Fatalf("op %d: RangeCount(%d,%d) = %d, want %d", i, lo, hi, got, len(want))
			}
		}
	}
	th.Flush()
}

// rangeOwnedStripes gives each thread a private key stripe it both
// mutates and scans: a scan over the thread's own stripe must match its
// reference exactly even though neighbouring stripes churn concurrently
// (scans traverse foreign nodes on the way, so snips, towers being
// built, and reclamation all interleave with validation). Mutations mix
// set-style inserts with value overwrites so scans also cross nodes
// being replaced (the overwrite retirement path).
func rangeOwnedStripes(t *testing.T, f Factory, p core.Policy, cfg Config) {
	d := newDomain(p, cfg.Threads)
	m := f(d)
	s := ds.AsSet(m)
	rs := m.(ds.RangeScanner)
	const stripe = 256
	threads := make([]*core.Thread, cfg.Threads)
	for i := range threads {
		threads[i] = d.RegisterThread()
	}
	errs := make(chan error, cfg.Threads)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := threads[id]
			lo := int64(id) * stripe
			hi := lo + stripe - 1
			ref := newRefSet()
			r := rng.New(uint64(id)*131 + uint64(p))
			var buf []int64
			for n := 0; n < cfg.ConcOps; n++ {
				k := lo + r.Intn(stripe)
				switch r.Intn(8) {
				case 0, 1, 2:
					if got, want := s.Insert(th, k), ref.insert(k); got != want {
						errs <- fmt.Errorf("thread %d: Insert(%d) = %v, want %v", id, k, got, want)
						return
					}
				case 3, 4:
					if got, want := s.Delete(th, k), ref.delete(k); got != want {
						errs <- fmt.Errorf("thread %d: Delete(%d) = %v, want %v", id, k, got, want)
						return
					}
				case 5:
					// Overwrite: the key's presence must not change.
					m.Put(th, k, uint64(n))
					ref.insert(k)
				default:
					want := ref.sortedRange(lo, hi)
					buf = rs.RangeCollect(th, lo, hi, buf)
					if len(buf) != len(want) {
						errs <- fmt.Errorf("thread %d: scan [%d,%d] -> %d keys, want %d", id, lo, hi, len(buf), len(want))
						return
					}
					for j := range want {
						if buf[j] != want[j] {
							errs <- fmt.Errorf("thread %d: scan [%d,%d][%d] = %d, want %d", id, lo, hi, j, buf[j], want[j])
							return
						}
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, th := range threads {
		th.Flush()
	}
	if p != core.NR {
		if u := d.Unreclaimed(); u != 0 {
			t.Fatalf("%d unreclaimed nodes after quiescent flush", u)
		}
	}
}

// rangeChurnInvariants scans the whole structure while writers churn a
// middle stripe. Keys are split mod 3: residue 0 is inserted up front
// and never touched (every covering scan must report all of them),
// residue 1 churns (a scanned key must at least be one the churners ever
// insert), residue 2 is never inserted (must never appear). Half the
// churn is overwrites, so scans constantly cross replaced nodes without
// the key set changing.
func rangeChurnInvariants(t *testing.T, f Factory, p core.Policy, cfg Config) {
	d := newDomain(p, cfg.Threads+1)
	m := f(d)
	s := ds.AsSet(m)
	rs := m.(ds.RangeScanner)
	scanner := d.RegisterThread()
	writers := make([]*core.Thread, cfg.Threads)
	for i := range writers {
		writers[i] = d.RegisterThread()
	}

	permanent := make(map[int64]bool)
	for k := int64(0); k < cfg.KeyRange; k += 3 {
		s.Insert(scanner, k)
		permanent[k] = true
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := range writers {
		wg.Add(1)
		go func(id int, th *core.Thread) {
			defer wg.Done()
			r := rng.New(uint64(id)*977 + uint64(p) + 5)
			n := uint64(0)
			for !stop.Load() {
				k := r.Intn(cfg.KeyRange/3)*3 + 1 // residue-1 stripe only
				switch r.Intn(3) {
				case 0:
					s.Insert(th, k)
				case 1:
					s.Delete(th, k)
				default:
					m.Put(th, k, n) // overwrite (or insert): churns nodes, not keys
				}
				n++
			}
		}(i, writers[i])
	}

	r := rng.New(uint64(p) + 0xabc)
	var buf []int64
	for scan := 0; scan < 40; scan++ {
		lo := r.Intn(cfg.KeyRange / 2)
		hi := lo + r.Intn(cfg.KeyRange/2)
		buf = rs.RangeCollect(scanner, lo, hi, buf)
		checkScanShape(t, buf, lo, hi)
		seen := make(map[int64]bool, len(buf))
		for _, k := range buf {
			seen[k] = true
			switch k % 3 {
			case 2:
				t.Errorf("scan %d: key %d was never inserted", scan, k)
			}
		}
		for k := lo; k <= hi && k < cfg.KeyRange; k++ {
			if k%3 == 0 && permanent[k] && !seen[k] {
				t.Errorf("scan %d: permanently present key %d missing from [%d,%d]", scan, k, lo, hi)
			}
		}
		if t.Failed() {
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	for _, th := range append(writers, scanner) {
		th.Flush()
	}
}

// mapBatchGet exercises the ds.BatchGetter contract: a batch answered
// inside one protected operation must agree with per-key Gets. The
// sequential half checks exact equivalence on a quiescent map (hits,
// misses, duplicate keys, unsorted order). The concurrent half gives
// each thread an owned stripe it puts and batch-gets — owned keys have
// deterministic values even while the other stripes churn, so every
// batch slot is validated exactly.
func mapBatchGet(t *testing.T, f Factory, p core.Policy, cfg Config) {
	d := newDomain(p, cfg.Threads)
	m := f(d)
	bg := m.(ds.BatchGetter)
	threads := make([]*core.Thread, cfg.Threads)
	for i := range threads {
		threads[i] = d.RegisterThread()
	}

	// Sequential equivalence on a quiescent prefix of the key space.
	th := threads[0]
	r := rng.New(uint64(p)*2654435761 + 99)
	for i := int64(0); i < cfg.KeyRange; i += 2 {
		m.Put(th, i, uint64(i)*3+1)
	}
	const batch = 64
	keys := make([]int64, batch)
	vals := make([]uint64, batch)
	present := make([]bool, batch)
	for round := 0; round < 20; round++ {
		for i := range keys {
			keys[i] = r.Intn(cfg.KeyRange)
		}
		if round == 0 {
			keys[1] = keys[0] // duplicate keys must both be answered
		}
		bg.GetBatch(th, keys, vals, present)
		for i, k := range keys {
			wv, wok := m.Get(th, k)
			if present[i] != wok || vals[i] != wv {
				t.Fatalf("round %d: GetBatch[%d] key %d = (%d, %v), Get = (%d, %v)",
					round, i, k, vals[i], present[i], wv, wok)
			}
		}
	}

	// Concurrent: each thread owns stripe [id*stripe, id*stripe+stripe)
	// and validates batches over it against its private reference while
	// all other stripes churn through the same structure.
	const stripe = 256
	errs := make(chan error, cfg.Threads)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := threads[id]
			base := cfg.KeyRange + int64(id)*stripe // clear of the prefix above
			ref := make(map[int64]uint64, stripe)
			r := rng.New(uint64(id)*7919 + uint64(p))
			keys := make([]int64, batch)
			vals := make([]uint64, batch)
			present := make([]bool, batch)
			for n := 0; n < cfg.ConcOps/batch+1; n++ {
				// Mutate a few owned keys.
				for j := 0; j < 8; j++ {
					k := base + r.Intn(stripe)
					if r.Intn(4) == 0 {
						m.Delete(th, k)
						delete(ref, k)
					} else {
						v := uint64(id)<<32 | uint64(n)<<8 | uint64(j)
						m.Put(th, k, v)
						ref[k] = v
					}
				}
				for j := range keys {
					keys[j] = base + r.Intn(stripe)
				}
				bg.GetBatch(th, keys, vals, present)
				for j, k := range keys {
					wv, wok := ref[k]
					if present[j] != wok || (wok && vals[j] != wv) {
						errs <- fmt.Errorf("thread %d: GetBatch[%d] key %d = (%d, %v), ref = (%d, %v)",
							id, j, k, vals[j], present[j], wv, wok)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, th := range threads {
		th.Flush()
	}
}

// rangeKVVsRef checks the value-returning scan against a reference map
// under a random single-threaded history: RangeCollectKV must return
// exactly the reference's (key, value) pairs in order, and the pair
// limit must truncate to a prefix.
func rangeKVVsRef(t *testing.T, f Factory, p core.Policy, cfg Config) {
	d := newDomain(p, 1)
	m := f(d)
	rs := m.(ds.RangeScanner)
	th := d.RegisterThread()
	ref := make(map[int64]uint64)
	r := rng.New(0x6b76 ^ uint64(p)<<8)
	var keys []int64
	var vals []uint64

	for i := 0; i < 3000; i++ {
		k := r.Intn(cfg.KeyRange)
		switch r.Intn(4) {
		case 0:
			v := uint64(i)<<16 | uint64(k)
			m.Put(th, k, v)
			ref[k] = v
		case 1:
			m.Delete(th, k)
			delete(ref, k)
		default:
			lo := r.Intn(cfg.KeyRange)
			hi := lo + r.Intn(cfg.KeyRange/8+1)
			var want []int64
			for rk := range ref {
				if rk >= lo && rk <= hi {
					want = append(want, rk)
				}
			}
			sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
			keys, vals = rs.RangeCollectKV(th, lo, hi, 0, keys, vals)
			if len(keys) != len(vals) || len(keys) != len(want) {
				t.Fatalf("op %d: RangeCollectKV(%d,%d) -> %d/%d pairs, want %d", i, lo, hi, len(keys), len(vals), len(want))
			}
			for j := range want {
				if keys[j] != want[j] || vals[j] != ref[want[j]] {
					t.Fatalf("op %d: RangeCollectKV(%d,%d)[%d] = (%d,%d), want (%d,%d)",
						i, lo, hi, j, keys[j], vals[j], want[j], ref[want[j]])
				}
			}
			if len(want) > 1 {
				max := 1 + int(r.Intn(int64(len(want))))
				keys, vals = rs.RangeCollectKV(th, lo, hi, max, keys, vals)
				if len(keys) != max {
					t.Fatalf("op %d: limited RangeCollectKV returned %d pairs, want %d", i, len(keys), max)
				}
				for j := 0; j < max; j++ {
					if keys[j] != want[j] || vals[j] != ref[want[j]] {
						t.Fatalf("op %d: limited scan[%d] = (%d,%d), want (%d,%d)",
							i, j, keys[j], vals[j], want[j], ref[want[j]])
					}
				}
			}
		}
	}
	th.Flush()
}
