// Package dstest is the conformance suite every concurrent set in this
// repository must pass, under every reclamation policy. Data-structure
// packages call Run from their tests; the suite exercises:
//
//   - sequential semantics (insert/delete/contains truth table, ordering,
//     duplicates, sentinels);
//   - randomized sequential equivalence against a reference map;
//   - concurrent mixed workloads with a net-count invariant (inserts
//     minus deletes equals final size);
//   - reclamation pressure (tiny retire thresholds force constant
//     reclaim/ping traffic while readers traverse);
//   - a delayed-thread scenario that must not break safety.
//
// Any use-after-free surfaces as a poisoned key, a failed invariant, or
// an arena panic — the Go analogue of the segfault the paper's C++
// benchmark would produce.
package dstest

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"pop/internal/core"
	"pop/internal/ds"
	"pop/internal/rng"
)

// Factory builds a fresh set instance over the given domain.
type Factory func(d *core.Domain) ds.Set

// Config tunes the suite for a data structure's cost profile.
type Config struct {
	// KeyRange bounds random keys to [0, KeyRange).
	KeyRange int64
	// ConcOps is the per-goroutine operation count in concurrent tests.
	ConcOps int
	// Threads is the concurrency level (defaults to 4).
	Threads int
	// SkipPolicies lists policies the structure does not support.
	SkipPolicies []core.Policy
}

func (c Config) withDefaults() Config {
	if c.KeyRange <= 0 {
		c.KeyRange = 512
	}
	if c.ConcOps <= 0 {
		c.ConcOps = 3000
	}
	if c.Threads <= 0 {
		c.Threads = 4
	}
	return c
}

func (c Config) skip(p core.Policy) bool {
	for _, s := range c.SkipPolicies {
		if s == p {
			return true
		}
	}
	return false
}

// Run executes the full conformance suite.
func Run(t *testing.T, f Factory, cfg Config) {
	cfg = cfg.withDefaults()
	for _, p := range core.Policies() {
		if cfg.skip(p) {
			continue
		}
		p := p
		t.Run(p.String(), func(t *testing.T) {
			t.Run("Sequential", func(t *testing.T) { sequential(t, f, p) })
			t.Run("RandomizedVsMap", func(t *testing.T) { randomizedVsMap(t, f, p, cfg) })
			t.Run("ConcurrentInvariant", func(t *testing.T) { concurrentInvariant(t, f, p, cfg) })
			t.Run("ConcurrentDistinctKeys", func(t *testing.T) { concurrentDistinctKeys(t, f, p, cfg) })
			t.Run("DelayedReader", func(t *testing.T) { delayedReader(t, f, p, cfg) })
		})
	}
}

// newDomain builds a domain with a tiny reclaim threshold so reclamation
// paths run constantly during the suite.
func newDomain(p core.Policy, threads int) *core.Domain {
	return core.NewDomain(p, threads, &core.Options{
		ReclaimThreshold: 32,
		EpochFreq:        8,
		BatchSize:        8,
		Debug:            true,
	})
}

func sequential(t *testing.T, f Factory, p core.Policy) {
	d := newDomain(p, 1)
	s := f(d)
	th := d.RegisterThread()

	if s.Contains(th, 10) {
		t.Fatal("empty set contains 10")
	}
	if s.Delete(th, 10) {
		t.Fatal("delete from empty set succeeded")
	}
	if !s.Insert(th, 10) {
		t.Fatal("insert 10 failed")
	}
	if s.Insert(th, 10) {
		t.Fatal("duplicate insert 10 succeeded")
	}
	if !s.Contains(th, 10) {
		t.Fatal("set lost 10")
	}
	// Neighbours must not be confused with 10.
	for _, k := range []int64{9, 11, 0, 1 << 40} {
		if s.Contains(th, k) {
			t.Fatalf("phantom key %d", k)
		}
	}
	if !s.Delete(th, 10) {
		t.Fatal("delete 10 failed")
	}
	if s.Contains(th, 10) {
		t.Fatal("10 survived delete")
	}
	if s.Delete(th, 10) {
		t.Fatal("double delete succeeded")
	}

	// Ascending, descending, interleaved batches.
	for i := int64(0); i < 64; i++ {
		if !s.Insert(th, i) {
			t.Fatalf("insert %d failed", i)
		}
	}
	for i := int64(127); i >= 64; i-- {
		if !s.Insert(th, i) {
			t.Fatalf("insert %d failed", i)
		}
	}
	for i := int64(0); i < 128; i++ {
		if !s.Contains(th, i) {
			t.Fatalf("missing %d", i)
		}
	}
	if sized, ok := s.(ds.Sized); ok {
		if got := sized.Size(th); got != 128 {
			t.Fatalf("Size = %d, want 128", got)
		}
	}
	// Delete evens, verify odds.
	for i := int64(0); i < 128; i += 2 {
		if !s.Delete(th, i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	for i := int64(0); i < 128; i++ {
		want := i%2 == 1
		if got := s.Contains(th, i); got != want {
			t.Fatalf("Contains(%d) = %v, want %v", i, got, want)
		}
	}
	th.Flush()
}

func randomizedVsMap(t *testing.T, f Factory, p core.Policy, cfg Config) {
	d := newDomain(p, 1)
	s := f(d)
	th := d.RegisterThread()
	ref := make(map[int64]bool)
	r := rng.New(uint64(0xC0FFEE) ^ uint64(p))

	for i := 0; i < 4000; i++ {
		k := r.Intn(cfg.KeyRange)
		switch r.Intn(3) {
		case 0:
			want := !ref[k]
			if got := s.Insert(th, k); got != want {
				t.Fatalf("op %d: Insert(%d) = %v, want %v", i, k, got, want)
			}
			ref[k] = true
		case 1:
			want := ref[k]
			if got := s.Delete(th, k); got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
			delete(ref, k)
		default:
			if got := s.Contains(th, k); got != ref[k] {
				t.Fatalf("op %d: Contains(%d) = %v, want %v", i, k, got, ref[k])
			}
		}
	}
	if sized, ok := s.(ds.Sized); ok {
		if got := sized.Size(th); got != len(ref) {
			t.Fatalf("Size = %d, want %d", got, len(ref))
		}
	}
	th.Flush()
}

// concurrentInvariant hammers the set from several goroutines and checks
// that successful inserts minus successful deletes equals the final size.
func concurrentInvariant(t *testing.T, f Factory, p core.Policy, cfg Config) {
	d := newDomain(p, cfg.Threads)
	s := f(d)
	var net atomic.Int64
	var wg sync.WaitGroup
	threads := make([]*core.Thread, cfg.Threads)
	for i := range threads {
		threads[i] = d.RegisterThread()
	}
	for i := 0; i < cfg.Threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := threads[id]
			r := rng.New(uint64(id)*7919 + uint64(p))
			local := int64(0)
			for n := 0; n < cfg.ConcOps; n++ {
				k := r.Intn(cfg.KeyRange)
				switch r.Intn(10) {
				case 0, 1, 2, 3:
					if s.Insert(th, k) {
						local++
					}
				case 4, 5, 6, 7:
					if s.Delete(th, k) {
						local--
					}
				default:
					s.Contains(th, k)
				}
			}
			net.Add(local)
		}(i)
	}
	wg.Wait()

	if sized, ok := s.(ds.Sized); ok {
		if got := sized.Size(threads[0]); int64(got) != net.Load() {
			t.Fatalf("net inserts %d != final size %d", net.Load(), got)
		}
	}
	for _, th := range threads {
		th.Flush()
	}
	// Everything retired must be freed once all threads are quiescent
	// (except NR, which leaks by design).
	if p != core.NR {
		if u := d.Unreclaimed(); u != 0 {
			t.Fatalf("%d unreclaimed nodes after quiescent flush", u)
		}
	}
}

// concurrentDistinctKeys gives each goroutine a private key range so
// every operation's outcome is deterministic even under concurrency.
func concurrentDistinctKeys(t *testing.T, f Factory, p core.Policy, cfg Config) {
	d := newDomain(p, cfg.Threads)
	s := f(d)
	var wg sync.WaitGroup
	threads := make([]*core.Thread, cfg.Threads)
	for i := range threads {
		threads[i] = d.RegisterThread()
	}
	errs := make(chan error, cfg.Threads)
	for i := 0; i < cfg.Threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := threads[id]
			base := int64(id) * 1_000_000
			for k := base; k < base+200; k++ {
				if !s.Insert(th, k) {
					errs <- fmt.Errorf("thread %d: insert %d failed", id, k)
					return
				}
			}
			for k := base; k < base+200; k++ {
				if !s.Contains(th, k) {
					errs <- fmt.Errorf("thread %d: lost key %d", id, k)
					return
				}
			}
			for k := base; k < base+200; k += 2 {
				if !s.Delete(th, k) {
					errs <- fmt.Errorf("thread %d: delete %d failed", id, k)
					return
				}
			}
			for k := base; k < base+200; k++ {
				want := k%2 == 1
				if got := s.Contains(th, k); got != want {
					errs <- fmt.Errorf("thread %d: Contains(%d)=%v want %v", id, k, got, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, th := range threads {
		th.Flush()
	}
}

// delayedReader holds one thread inside an operation (answering polls,
// like a thread busy with other work) while writers churn. Robust
// policies must keep reclaiming; all policies must stay safe.
func delayedReader(t *testing.T, f Factory, p core.Policy, cfg Config) {
	d := newDomain(p, 3)
	s := f(d)
	reader := d.RegisterThread()
	w1 := d.RegisterThread()
	w2 := d.RegisterThread()

	// Seed some keys so the reader has something to look at.
	for k := int64(0); k < 32; k++ {
		s.Insert(w1, k)
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		// The reader performs one op, then stalls inside a fresh op
		// polling (busy-delayed), then resumes.
		s.Contains(reader, 1)
		reader.StartOp()
		for {
			select {
			case <-stop:
				reader.EndOp()
				return
			default:
				reader.Poll()
				runtime.Gosched()
			}
		}
	}()

	var wg sync.WaitGroup
	for _, th := range []*core.Thread{w1, w2} {
		wg.Add(1)
		go func(th *core.Thread) {
			defer wg.Done()
			r := rng.New(uint64(th.ID()) + 99)
			for n := 0; n < cfg.ConcOps; n++ {
				k := r.Intn(cfg.KeyRange)
				if r.Intn(2) == 0 {
					s.Insert(th, k)
				} else {
					s.Delete(th, k)
				}
			}
		}(th)
	}
	wg.Wait()
	close(stop)
	<-done

	st := d.Stats()
	if p.Robust() && st.Frees == 0 && st.Retires > 64 {
		t.Fatalf("robust policy %v freed nothing under a delayed reader (retires=%d)", p, st.Retires)
	}
	for _, th := range []*core.Thread{reader, w1, w2} {
		th.Flush()
	}
}
