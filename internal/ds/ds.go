// Package ds defines the common contract implemented by every concurrent
// set in this repository: the five data structures of the paper's
// evaluation (Harris-Michael list, lazy list, hash table, external BST,
// (a,b)-tree) plus the lock-free skiplist. The two ordered structures —
// skiplist and (a,b)-tree — additionally support ordered range scans via
// RangeScanner, with deliberately opposite reservation shapes (per-node
// Protect chains versus whole-leaf protection; see each package's doc),
// which turns the range-query dimension into a cross-structure axis of
// the benchmark matrix.
//
// All operations take the calling thread's reclamation handle; keys are
// restricted to the open interval (math.MinInt64, math.MaxInt64) because
// the extreme values are reserved for sentinel nodes.
package ds

import "pop/internal/core"

// Set is a concurrent set of int64 keys integrated with a reclamation
// domain. Implementations are linearizable; operations may be called
// concurrently from any number of threads registered with the set's
// domain.
type Set interface {
	// Insert adds key and reports whether it was absent.
	Insert(t *core.Thread, key int64) bool
	// Delete removes key and reports whether it was present.
	Delete(t *core.Thread, key int64) bool
	// Contains reports whether key is present.
	Contains(t *core.Thread, key int64) bool
}

// Sized is implemented by sets that can report their cardinality with a
// full traversal. Only meaningful while no operations are in flight;
// used by tests and prefill accounting.
type Sized interface {
	// Size counts the keys currently in the set.
	Size(t *core.Thread) int
}

// RangeScanner is implemented by ordered sets that support range
// queries (the skiplist and the (a,b)-tree). A scan is one long
// operation — it holds the calling thread's reservations across every
// hop — which makes it the strongest traversal pressure the workload
// layer can put on a reclamation policy's read path. The two
// implementations protect differently (the skiplist reserves every
// node it hops through; the tree reserves whole leaves and re-descends
// between them), so comparing policies across both separates the cost
// of reservation *count* from reservation *lifetime*.
//
// Both methods are safe under concurrent updates. Results are sorted
// and duplicate-free; every reported key was observed present at some
// point during the scan, and a key continuously present (or absent) for
// the scan's whole duration is always (never) reported.
type RangeScanner interface {
	// RangeCount counts the keys in [lo, hi].
	RangeCount(t *core.Thread, lo, hi int64) int
	// RangeCollect appends the keys in [lo, hi], ascending, to buf[:0]
	// and returns the filled slice.
	RangeCollect(t *core.Thread, lo, hi int64, buf []int64) []int64
}
