// Package ds defines the common contract implemented by every concurrent
// structure in this repository. The primary contract is Map — a
// linearizable key→value dictionary integrated with a reclamation
// domain — implemented by the five data structures of the paper's
// evaluation (Harris-Michael list, lazy list, hash table, external BST,
// (a,b)-tree) plus the lock-free skiplist. The paper benchmarks key-only
// sets; the map contract is this repository's extension toward the
// KV-serving layer the ROADMAP names, and Set remains as a thin adapter
// over Map so key-only call sites keep working unchanged.
//
// The two ordered structures — skiplist and (a,b)-tree — additionally
// support ordered range scans via RangeScanner, with deliberately
// opposite reservation shapes (per-node Protect chains versus whole-leaf
// protection; see each package's doc), which turns the range-query
// dimension into a cross-structure axis of the benchmark matrix.
//
// # Overwrite strategies
//
// Put on a present key replaces the value. How a structure does that is
// a reclamation-relevant design choice, documented per package:
//
//   - hmlist, skiplist (lock-free, CAS-marked nodes): replace-node-and-
//     retire. A value cannot be stored in place because the node may be
//     logically deleted between the lookup and the store, which would let
//     a concurrent Get observe a value the map never held. Instead the
//     overwrite links a fresh node carrying the new value behind the old
//     one with the same CAS that marks the old node — the mark the
//     structure already uses for deletion — so the key is never absent
//     and the old node retires through the ordinary path. Every
//     overwrite is therefore a retirement: update-heavy KV workloads
//     put allocation/reclamation pressure on the SMR layer even when the
//     key set is static.
//   - lazylist, extbst (lock-based updates): atomic in-place store,
//     validated under the same lock that deletion takes (the node's own
//     lock for the lazy list, the parent's for the external BST), so an
//     overwrite can never race a deletion of the same node. Values are
//     frozen once a node dies, which keeps optimistic readers correct.
//   - abtree (copy-on-write leaves): leaf replacement. Leaves are
//     immutable once published (range scans depend on it), so an
//     overwrite copies the leaf with one value slot changed and retires
//     the old leaf — the same CoW shape as every other (a,b)-tree
//     update, and a second new source of retirements.
//
// All operations take the calling thread's reclamation handle; keys are
// restricted to the open interval (math.MinInt64, math.MaxInt64) because
// the extreme values are reserved for sentinel nodes. Values are opaque
// uint64s; the workload layer derives them from the key stream so a
// stale read surfaces as a checksum mismatch.
package ds

import "pop/internal/core"

// Map is a concurrent map from int64 keys to uint64 values integrated
// with a reclamation domain. Implementations are linearizable;
// operations may be called concurrently from any number of threads
// registered with the map's domain.
type Map interface {
	// Put maps key to val (inserting or overwriting) and returns the
	// previous value, with replaced reporting whether the key was
	// present. Overwrites are last-writer-wins: the returned old value
	// is exactly the value the new one replaced.
	Put(t *core.Thread, key int64, val uint64) (old uint64, replaced bool)
	// PutIfAbsent maps key to val only if key is absent and reports
	// whether it did. A present key keeps its value — this is the
	// set-flavoured insert, and what the Set adapter uses.
	PutIfAbsent(t *core.Thread, key int64, val uint64) bool
	// Get returns the value mapped to key.
	Get(t *core.Thread, key int64) (uint64, bool)
	// Delete removes key and returns the value it removed.
	Delete(t *core.Thread, key int64) (uint64, bool)
}

// Set is the key-only view of a concurrent map: the contract the
// paper's benchmarks use. Structures implement Map natively; AsSet
// adapts any Map to this interface.
type Set interface {
	// Insert adds key and reports whether it was absent.
	Insert(t *core.Thread, key int64) bool
	// Delete removes key and reports whether it was present.
	Delete(t *core.Thread, key int64) bool
	// Contains reports whether key is present.
	Contains(t *core.Thread, key int64) bool
}

// setAdapter is the thin Set-over-Map adapter. Inserted keys carry the
// zero value; the value plane is simply unused.
type setAdapter struct{ m Map }

// AsSet adapts a Map to the key-only Set interface.
func AsSet(m Map) Set { return setAdapter{m} }

func (s setAdapter) Insert(t *core.Thread, key int64) bool {
	return s.m.PutIfAbsent(t, key, 0)
}

func (s setAdapter) Delete(t *core.Thread, key int64) bool {
	_, ok := s.m.Delete(t, key)
	return ok
}

func (s setAdapter) Contains(t *core.Thread, key int64) bool {
	_, ok := s.m.Get(t, key)
	return ok
}

// Sized is implemented by structures that can report their cardinality
// with a full traversal. Only meaningful while no operations are in
// flight; used by tests and prefill accounting.
type Sized interface {
	// Size counts the keys currently present.
	Size(t *core.Thread) int
}

// RangeScanner is implemented by ordered structures that support range
// queries (the skiplist and the (a,b)-tree). A scan is one long
// operation — it holds the calling thread's reservations across every
// hop — which makes it the strongest traversal pressure the workload
// layer can put on a reclamation policy's read path. The two
// implementations protect differently (the skiplist reserves every
// node it hops through; the tree reserves whole leaves and re-descends
// between them), so comparing policies across both separates the cost
// of reservation *count* from reservation *lifetime*.
//
// All methods are safe under concurrent updates. Results are sorted
// and duplicate-free; every reported key was observed present at some
// point during the scan, and a key continuously present (or absent) for
// the scan's whole duration is always (never) reported.
type RangeScanner interface {
	// RangeCount counts the keys in [lo, hi].
	RangeCount(t *core.Thread, lo, hi int64) int
	// RangeCollect appends the keys in [lo, hi], ascending, to buf[:0]
	// and returns the filled slice.
	RangeCollect(t *core.Thread, lo, hi int64, buf []int64) []int64
	// RangeCollectKV appends up to max (key, value) pairs from [lo, hi],
	// ascending by key, to keys[:0]/vals[:0] and returns the filled
	// parallel slices (max <= 0 means no limit). Each value is the one
	// its key was observed holding when the key was emitted — on the
	// replace-node and CoW structures values are immutable per node, so
	// the pair is atomic. This is the value-returning scan the store
	// layer's iterators are built on; the limit bounds the length of one
	// protected operation so a large scan can be chunked into several.
	RangeCollectKV(t *core.Thread, lo, hi int64, max int, keys []int64, vals []uint64) ([]int64, []uint64)
}

// BatchGetter is implemented by structures with an amortized multi-get:
// one protected operation (one StartOp/EndOp, one reservation epoch)
// answers every key in the batch, instead of paying the entry/exit
// protocol per key. Implementations answer keys in the order given;
// callers that sort keys ascending additionally get warm upper-level
// paths on the tree-shaped structures. The store layer's GetBatch
// groups keys per shard and issues one call per shard.
type BatchGetter interface {
	// GetBatch looks every keys[i] up and records the result in vals[i]
	// and present[i]. The three slices must have equal length.
	GetBatch(t *core.Thread, keys []int64, vals []uint64, present []bool)
}

// BatchPutter is the write-side analogue of BatchGetter: one protected
// operation upserts every key in the batch, amortizing the entry/exit
// protocol — and, on the replace-node structures, the per-operation
// retire bookkeeping — across the group. Callers that sort keys
// ascending get warm descent paths on tree-shaped structures, exactly
// as with GetBatch. The store layer's PutBatch groups keys per shard
// and issues one call per shard.
type BatchPutter interface {
	// PutBatch upserts every keys[i] to vals[i], recording the value it
	// replaced in old[i] and whether the key was present in replaced[i].
	// The four slices must have equal length.
	PutBatch(t *core.Thread, keys []int64, vals []uint64, old []uint64, replaced []bool)
}
