package extbst_test

import (
	"testing"
	"testing/quick"

	"pop/internal/core"
	"pop/internal/ds"
	"pop/internal/ds/dstest"
	"pop/internal/ds/extbst"
)

func TestConformance(t *testing.T) {
	dstest.Run(t, func(d *core.Domain) ds.Map { return extbst.New(d) }, dstest.Config{
		KeyRange: 1024,
	})
}

// TestQuickSequentialEquivalence checks map equivalence on random tapes.
func TestQuickSequentialEquivalence(t *testing.T) {
	prop := func(tape []uint32) bool {
		d := core.NewDomain(core.EpochPOP, 1, &core.Options{ReclaimThreshold: 16})
		th := d.RegisterThread()
		tr := extbst.New(d)
		ref := make(map[int64]bool)
		for _, w := range tape {
			k := int64(w % 512)
			switch (w / 512) % 3 {
			case 0:
				if tr.Insert(th, k) == ref[k] {
					return false
				}
				ref[k] = true
			case 1:
				if _, ok := tr.Delete(th, k); ok != ref[k] {
					return false
				}
				delete(ref, k)
			default:
				if tr.Contains(th, k) != ref[k] {
					return false
				}
			}
		}
		return tr.Size(th) == len(ref)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteRetiresRouterAndLeaf checks the two-node retirement pattern
// that distinguishes the external BST's churn from the lists'.
func TestDeleteRetiresRouterAndLeaf(t *testing.T) {
	d := core.NewDomain(core.HP, 1, &core.Options{ReclaimThreshold: 1 << 30})
	tr := extbst.New(d)
	th := d.RegisterThread()
	for k := int64(0); k < 10; k++ {
		tr.Insert(th, k)
	}
	before := d.Stats().Retires
	tr.Delete(th, 5)
	if got := d.Stats().Retires - before; got != 2 {
		t.Fatalf("delete retired %d nodes, want 2 (router+leaf)", got)
	}
}

// TestSortedDegenerateShape inserts sorted keys (worst-case shape) and
// verifies correctness is unaffected.
func TestSortedDegenerateShape(t *testing.T) {
	d := core.NewDomain(core.EBR, 1, &core.Options{ReclaimThreshold: 64})
	tr := extbst.New(d)
	th := d.RegisterThread()
	const n = 2000
	for k := int64(0); k < n; k++ {
		if !tr.Insert(th, k) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if got := tr.Size(th); got != n {
		t.Fatalf("Size = %d, want %d", got, n)
	}
	for k := int64(n - 1); k >= 0; k-- {
		if _, ok := tr.Delete(th, k); !ok {
			t.Fatalf("delete %d failed", k)
		}
	}
	if got := tr.Size(th); got != 0 {
		t.Fatalf("Size = %d, want 0", got)
	}
}
