package extbst_test

import (
	"os"
	"sync"
	"testing"
	"time"

	"pop/internal/core"
	"pop/internal/ds/extbst"
	"pop/internal/rng"
)

// TestHammerProbe chases the frozen-cell reclamation race (DESIGN.md F1)
// with sustained recycling pressure. Enabled by EXTBST_HAMMER=1; the
// short always-on variant below runs a single round.
func TestHammerProbe(t *testing.T) {
	dur := 2 * time.Second
	if os.Getenv("EXTBST_HAMMER") != "" {
		dur = 90 * time.Second
	}
	start := time.Now()
	round := 0
	for time.Since(start) < dur {
		round++
		for _, p := range []core.Policy{core.HazardPtrPOP, core.EpochPOP, core.IBR} {
			d := core.NewDomain(p, 4, &core.Options{ReclaimThreshold: 128, EpochFreq: 32})
			tr := extbst.New(d)
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				th := d.RegisterThread()
				wg.Add(1)
				go func(id int, th *core.Thread) {
					defer wg.Done()
					r := rng.New(uint64(id)*13 + uint64(round))
					for i := 0; i < 6000; i++ {
						k := r.Intn(4096)
						switch i % 3 {
						case 0:
							tr.Insert(th, k)
						case 1:
							tr.Delete(th, k)
						default:
							tr.Contains(th, k)
						}
					}
				}(w, th)
			}
			wg.Wait()
		}
	}
}
