// Package extbst implements the external (leaf-oriented) binary search
// tree of David, Guerraoui and Trigonakis [20] (DGT in the paper's
// plots), in its lock-based "ticket" style: searches descend with no
// synchronization beyond SMR protection; updates lock the one or two
// nodes they change and re-validate the edges before mutating.
//
// Structure: internal nodes route (left subtree < key ≤ right subtree);
// leaves carry the actual set members. Every internal node has exactly
// two children. An insert replaces a leaf with a (router, two leaves)
// triple; a delete unlinks a leaf *and its parent router*, promoting the
// sibling — so updates retire one or two nodes each, giving the SMR layer
// a tree-shaped churn pattern with short reservations (3 slots:
// grandparent, parent, leaf).
//
// # Overwrite strategy: atomic in-place store under the parent lock
//
// Values live in an atomic cell of the leaf; every value write first
// locks the leaf's parent and validates that the parent is alive and
// still points at the leaf — the same validation every structural
// update performs, and the same lock Delete holds when it marks the
// leaf dead. A leaf's value is therefore frozen from the moment it
// dies, which keeps the optimistic read path (Get loads the value after
// an unsynchronized descent) linearizable. Overwrites here retire
// nothing; contrast hmlist/skiplist (replace-node-and-retire) and
// abtree (copy-on-write leaf).
package extbst

import (
	"math"
	"sync"
	"sync/atomic"
	"unsafe"

	"pop/internal/arena"
	"pop/internal/core"
)

// node is either a router (isLeaf=false) or a leaf. Header first
// (reclamation contract). val is meaningful on leaves only; it is
// written exclusively under the parent's lock with the leaf validated
// live (see the package comment) and frozen once dead is set.
type node struct {
	core.Header
	key    int64
	val    atomic.Uint64
	isLeaf bool
	dead   core.Flag // set under lock when unlinked; validates optimism
	mu     sync.Mutex
	left   core.Atomic // routers only
	right  core.Atomic
}

// Tree is an external BST set.
type Tree struct {
	d     *core.Domain
	typ   uint8
	pool  *arena.Pool[node]
	cache []*arena.ThreadCache[node]
	// rootHolder is a permanent pseudo-router whose left child is the
	// real tree (initially the permanent sentinel leaf). It is never
	// locked for deletion and never dies, so every real parent has a
	// grandparent.
	rootHolder *node
	sentinel   *node
}

// New creates an empty tree in domain d.
func New(d *core.Domain) *Tree {
	tr := &Tree{
		d:     d,
		pool:  arena.NewPool[node](nil, nil),
		cache: make([]*arena.ThreadCache[node], d.MaxThreads()),
	}
	tr.typ = d.RegisterType(func(t *core.Thread, h *core.Header) {
		n := (*node)(unsafe.Pointer(h))
		n.dead.Store(false)
		tr.cacheFor(t).Put(n)
	})
	tr.sentinel = &node{key: math.MaxInt64, isLeaf: true}
	tr.rootHolder = &node{key: math.MaxInt64}
	tr.rootHolder.left.Raw(unsafe.Pointer(tr.sentinel))
	tr.rootHolder.right.Raw(unsafe.Pointer(tr.sentinel))
	return tr
}

// Outstanding reports pool-level live+retired nodes (memory metric).
func (tr *Tree) Outstanding() int64 { return tr.pool.Outstanding() }

func (tr *Tree) cacheFor(t *core.Thread) *arena.ThreadCache[node] {
	c := tr.cache[t.ID()]
	if c == nil {
		c = tr.pool.NewCache()
		tr.cache[t.ID()] = c
	}
	return c
}

// childCell returns the link of p followed for key.
func childCell(p *node, key int64) *core.Atomic {
	if key < p.key {
		return &p.left
	}
	return &p.right
}

// pos is a search result: l is the leaf reached; p its parent; gp its
// grandparent (rootHolder when p is the first real router). All three
// are protected in the slots recorded.
type pos struct {
	gp, p, l    *node
	sGP, sP, sL int
}

// search descends to the leaf for key, rotating three protection slots.
// ok=false: neutralized (NBR), restart the operation.
func (tr *Tree) search(t *core.Thread, key int64) (pos, bool) {
restart:
	ps := pos{gp: tr.rootHolder, p: tr.rootHolder, sGP: 0, sP: 1, sL: 2}
	raw, ok := t.Protect(ps.sL, &tr.rootHolder.left)
	if !ok {
		return ps, false
	}
	cur := (*node)(raw)
	for !cur.isLeaf {
		ps.gp = ps.p
		ps.p = cur
		raw, ok = t.Protect(ps.sGP, childCell(cur, key)) // recycle old gp slot
		if !ok {
			return ps, false
		}
		// Liveness validation: a dead router's cells are frozen, so the
		// protect's re-read cannot detect a stale edge; checking dead
		// after the protect proves the child was reachable at protect
		// time (required by the hazard-pointer safety argument).
		if cur.dead.Load() {
			goto restart
		}
		ps.sGP, ps.sP, ps.sL = ps.sP, ps.sL, ps.sGP
		cur = (*node)(raw)
	}
	ps.l = cur
	return ps, true
}

// Contains reports whether key is present.
func (tr *Tree) Contains(t *core.Thread, key int64) bool {
	_, ok := tr.Get(t, key)
	return ok
}

// Get returns the value mapped to key. The descent is unsynchronized;
// the value load is safe because the leaf was reachable at protect time
// and values are frozen once a leaf dies.
func (tr *Tree) Get(t *core.Thread, key int64) (uint64, bool) {
	t.StartOp()
	defer t.EndOp()
	for {
		ps, ok := tr.search(t, key)
		if !ok {
			continue
		}
		if ps.l.key != key {
			return 0, false
		}
		return ps.l.val.Load(), true
	}
}

// Insert adds key with the zero value; false if already present.
func (tr *Tree) Insert(t *core.Thread, key int64) bool {
	return tr.PutIfAbsent(t, key, 0)
}

// PutIfAbsent maps key to val only if key is absent.
func (tr *Tree) PutIfAbsent(t *core.Thread, key int64, val uint64) bool {
	ok, _, _ := tr.put(t, key, val, false)
	return ok
}

// Put maps key to val, overwriting; returns the previous value.
func (tr *Tree) Put(t *core.Thread, key int64, val uint64) (uint64, bool) {
	_, old, replaced := tr.put(t, key, val, true)
	return old, replaced
}

// put is the shared insert/overwrite path. An overwrite stores into the
// leaf's value cell under the parent's lock after validating the edge —
// the validation that guarantees the leaf is live (a dead leaf always
// has a dead parent or a swung edge; both are set under this lock).
func (tr *Tree) put(t *core.Thread, key int64, val uint64, overwrite bool) (inserted bool, old uint64, replaced bool) {
	checkKey(key)
	t.StartOp()
	defer t.EndOp()
	cache := tr.cacheFor(t)
	var newLeaf, router *node
	for {
		ps, ok := tr.search(t, key)
		if !ok {
			continue
		}
		if ps.l.key == key {
			if !overwrite {
				if newLeaf != nil {
					cache.Put(newLeaf)
					cache.Put(router)
				}
				return false, ps.l.val.Load(), true
			}
			if !t.EnterWritePhase() {
				continue
			}
			cell := childCell(ps.p, key)
			ps.p.mu.Lock()
			if ps.p.dead.Load() || cell.Load() != unsafe.Pointer(ps.l) {
				ps.p.mu.Unlock()
				t.ExitWritePhase()
				continue
			}
			old = ps.l.val.Load()
			ps.l.val.Store(val)
			ps.p.mu.Unlock()
			t.ExitWritePhase()
			if newLeaf != nil {
				cache.Put(newLeaf)
				cache.Put(router)
			}
			return false, old, true
		}
		if newLeaf == nil {
			newLeaf = cache.Get()
			newLeaf.isLeaf = true
			newLeaf.key = key
			newLeaf.dead.Store(false)
			t.OnAlloc(&newLeaf.Header, tr.typ)
			router = cache.Get()
			router.isLeaf = false
			router.dead.Store(false)
			t.OnAlloc(&router.Header, tr.typ)
		}
		newLeaf.val.Store(val)
		// Order the two leaves under the router: left < router.key ≤ right.
		if key < ps.l.key {
			router.key = ps.l.key
			router.left.Raw(unsafe.Pointer(newLeaf))
			router.right.Raw(unsafe.Pointer(ps.l))
		} else {
			router.key = key
			router.left.Raw(unsafe.Pointer(ps.l))
			router.right.Raw(unsafe.Pointer(newLeaf))
		}
		if !t.EnterWritePhase() {
			continue
		}
		cell := childCell(ps.p, key)
		ps.p.mu.Lock()
		if ps.p.dead.Load() || cell.Load() != unsafe.Pointer(ps.l) {
			ps.p.mu.Unlock()
			t.ExitWritePhase()
			continue
		}
		cell.Store(unsafe.Pointer(router))
		ps.p.mu.Unlock()
		t.ExitWritePhase()
		return true, 0, false
	}
}

// Delete removes key and returns the value it removed. Unlinks the leaf
// and its parent router, promoting the sibling subtree.
func (tr *Tree) Delete(t *core.Thread, key int64) (uint64, bool) {
	checkKey(key)
	t.StartOp()
	defer t.EndOp()
	for {
		ps, ok := tr.search(t, key)
		if !ok {
			continue
		}
		if ps.l.key != key {
			return 0, false
		}
		if ps.p == tr.rootHolder {
			// Only the sentinel leaf hangs directly off the root holder,
			// and the sentinel never matches a real key.
			panic("extbst: real leaf directly under root holder")
		}
		if !t.EnterWritePhase() {
			continue
		}
		gpCell := childCell(ps.gp, key)
		lCell := childCell(ps.p, key)
		ps.gp.mu.Lock()
		ps.p.mu.Lock()
		if ps.gp.dead.Load() || ps.p.dead.Load() ||
			gpCell.Load() != unsafe.Pointer(ps.p) || lCell.Load() != unsafe.Pointer(ps.l) {
			ps.p.mu.Unlock()
			ps.gp.mu.Unlock()
			t.ExitWritePhase()
			continue
		}
		// Promote the sibling; the router and leaf leave the tree. The
		// value is read under the locks that exclude overwriters, so it
		// is exactly the value at the linearization point.
		old := ps.l.val.Load()
		var sibling unsafe.Pointer
		if lCell == &ps.p.left {
			sibling = ps.p.right.Load()
		} else {
			sibling = ps.p.left.Load()
		}
		gpCell.Store(sibling)
		ps.p.dead.Store(true)
		ps.l.dead.Store(true)
		ps.p.mu.Unlock()
		ps.gp.mu.Unlock()
		t.Retire(&ps.p.Header)
		t.Retire(&ps.l.Header)
		t.ExitWritePhase()
		return old, true
	}
}

// Size counts real leaves. Quiescent use only.
func (tr *Tree) Size(t *core.Thread) int {
	return tr.count((*node)(tr.rootHolder.left.Load()))
}

func (tr *Tree) count(n *node) int {
	if n.isLeaf {
		if n == tr.sentinel {
			return 0
		}
		return 1
	}
	return tr.count((*node)(n.left.Load())) + tr.count((*node)(n.right.Load()))
}

func checkKey(key int64) {
	if key == math.MaxInt64 {
		panic("extbst: key collides with sentinel")
	}
}
