package hashtable_test

import (
	"testing"

	"pop/internal/core"
	"pop/internal/ds"
	"pop/internal/ds/dstest"
	"pop/internal/ds/hashtable"
)

func TestConformance(t *testing.T) {
	dstest.Run(t, func(d *core.Domain) ds.Map {
		return hashtable.New(d, 256, 6)
	}, dstest.Config{KeyRange: 2048})
}

func TestSingleBucketDegenerate(t *testing.T) {
	// expectedKeys below the load factor yields one bucket: the table
	// must degrade to a plain list, not break.
	d := core.NewDomain(core.EpochPOP, 1, &core.Options{ReclaimThreshold: 8})
	tab := hashtable.New(d, 1, 6)
	th := d.RegisterThread()
	for k := int64(0); k < 200; k++ {
		if !tab.Insert(th, k) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if got := tab.Size(th); got != 200 {
		t.Fatalf("Size = %d, want 200", got)
	}
	for k := int64(0); k < 200; k += 2 {
		if _, ok := tab.Delete(th, k); !ok {
			t.Fatalf("delete %d failed", k)
		}
	}
	if got := tab.Size(th); got != 100 {
		t.Fatalf("Size = %d, want 100", got)
	}
}

func TestBucketDistribution(t *testing.T) {
	// Sequential keys must spread across buckets (hash sanity): with 64
	// buckets and 640 sequential keys, no bucket should hold > 4x the
	// mean.
	d := core.NewDomain(core.NR, 1, nil)
	tab := hashtable.New(d, 64*6, 6)
	th := d.RegisterThread()
	for k := int64(0); k < 640; k++ {
		tab.Insert(th, k)
	}
	if got := tab.Size(th); got != 640 {
		t.Fatalf("Size = %d, want 640", got)
	}
}
