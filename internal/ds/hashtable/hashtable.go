// Package hashtable implements HMHT from the paper's plots: a fixed-size
// open hash table whose buckets are Harris-Michael lists. With the
// paper's load factor of 6, bucket chains stay short, which makes this
// the data structure with the *least* traversal per operation — the
// regime where per-read SMR overhead is proportionally largest and cache
// behaviour dominates.
//
// The map contract (values, overwrite) is inherited from the buckets:
// overwrites are replace-node-and-retire (see hmlist), so value churn on
// a static key set still produces retirements in every bucket.
package hashtable

import (
	"pop/internal/core"
	"pop/internal/ds/hmlist"
)

// Table is a fixed-bucket-count hash map of int64 keys to uint64 values.
type Table struct {
	shared  *hmlist.Shared
	buckets []*hmlist.List
	mask    uint64
}

// New creates a table sized for expectedKeys at the given load factor
// (keys per bucket; the paper uses 6). The bucket count is rounded up to
// a power of two. All buckets share one node pool.
func New(d *core.Domain, expectedKeys int64, loadFactor int) *Table {
	if loadFactor <= 0 {
		loadFactor = 6
	}
	want := expectedKeys / int64(loadFactor)
	n := uint64(1)
	for int64(n) < want {
		n <<= 1
	}
	t := &Table{
		shared:  hmlist.NewShared(d),
		buckets: make([]*hmlist.List, n),
		mask:    n - 1,
	}
	for i := range t.buckets {
		t.buckets[i] = hmlist.NewWithShared(t.shared)
	}
	return t
}

// Outstanding reports pool-level live+retired nodes (memory metric).
func (t *Table) Outstanding() int64 { return t.shared.Outstanding() }

// bucket hashes key with a Fibonacci multiply (SplitMix-style finisher
// keeps adjacent keys in distinct buckets).
func (t *Table) bucket(key int64) *hmlist.List {
	x := uint64(key)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return t.buckets[x&t.mask]
}

// Insert adds key with the zero value; false if already present.
func (t *Table) Insert(th *core.Thread, key int64) bool {
	return t.bucket(key).Insert(th, key)
}

// PutIfAbsent maps key to val only if key is absent.
func (t *Table) PutIfAbsent(th *core.Thread, key int64, val uint64) bool {
	return t.bucket(key).PutIfAbsent(th, key, val)
}

// Put maps key to val, overwriting; returns the previous value.
func (t *Table) Put(th *core.Thread, key int64, val uint64) (uint64, bool) {
	return t.bucket(key).Put(th, key, val)
}

// Get returns the value mapped to key.
func (t *Table) Get(th *core.Thread, key int64) (uint64, bool) {
	return t.bucket(key).Get(th, key)
}

// Delete removes key and returns the value it removed.
func (t *Table) Delete(th *core.Thread, key int64) (uint64, bool) {
	return t.bucket(key).Delete(th, key)
}

// GetBatch looks up every keys[i] inside one protected operation —
// bucket chains are short (load factor ~6), so the per-operation
// entry/exit protocol is a large share of a single Get's cost here and
// the batch amortization is proportionally strongest.
func (t *Table) GetBatch(th *core.Thread, keys []int64, vals []uint64, present []bool) {
	th.StartOp()
	defer th.EndOp()
	for i, key := range keys {
		vals[i], present[i] = t.bucket(key).GetInOp(th, key)
	}
}

// PutBatch upserts every keys[i] inside one protected operation (the
// ds.BatchPutter contract). The same short-chain argument as GetBatch
// applies, and more strongly: an upsert pays entry/exit plus the
// write-phase bracket per operation, so batching folds both into one.
func (t *Table) PutBatch(th *core.Thread, keys []int64, vals []uint64, old []uint64, replaced []bool) {
	th.StartOp()
	defer th.EndOp()
	for i, key := range keys {
		old[i], replaced[i] = t.bucket(key).PutInOp(th, key, vals[i])
	}
}

// Contains reports whether key is present.
func (t *Table) Contains(th *core.Thread, key int64) bool {
	return t.bucket(key).Contains(th, key)
}

// Size sums bucket sizes. Quiescent use only.
func (t *Table) Size(th *core.Thread) int {
	n := 0
	for _, b := range t.buckets {
		n += b.Size(th)
	}
	return n
}
