package abtree_test

import (
	"sync"
	"testing"

	"pop/internal/core"
	"pop/internal/ds/abtree"
	"pop/internal/rng"
)

func TestInsertOnlyStressProbe(t *testing.T) {
	for _, p := range []core.Policy{core.IBR, core.HE, core.HP, core.EBR, core.HazardPtrPOP} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			for round := 0; round < 3; round++ {
				d := core.NewDomain(p, 8, &core.Options{ReclaimThreshold: 64, EpochFreq: 16})
				tr := abtree.New(d)
				var wg sync.WaitGroup
				for w := 0; w < 8; w++ {
					th := d.RegisterThread()
					wg.Add(1)
					go func(id int, th *core.Thread) {
						defer wg.Done()
						r := rng.New(uint64(id) + uint64(round)*31)
						for i := 0; i < 8000; i++ {
							tr.Insert(th, r.Intn(60000))
						}
					}(w, th)
				}
				wg.Wait()
			}
		})
	}
}
