// Package abtree implements a concurrent leaf-oriented (a,b)-tree
// (ABT in the paper's plots; after Brown [13]).
//
// Substitution (DESIGN.md system 18): Brown's original is lock-free via
// LLX/SCX multi-word primitives that Go cannot express without a full
// software LL/SC layer. This implementation keeps the *reclamation-
// relevant* behaviour — copy-on-write node replacement, multi-node
// retirement per structural operation, wide shallow traversals with a
// handful of protection slots — and replaces LLX/SCX with the same
// optimistic-traversal/lock-and-validate discipline the benchmark's
// other tree (extbst) uses:
//
//   - Searches descend without locks, protecting grandparent/parent/child
//     in three rotating reservation slots.
//   - Leaf updates copy the leaf (immutable key arrays), lock the parent,
//     validate the edge and the parent's liveness, swing one child
//     pointer, and retire the old leaf.
//   - Leaf splits and empty-leaf excisions rebuild the parent node
//     (immutable separator array) under parent+grandparent locks and
//     retire the replaced nodes.
//   - Overfull internal nodes (they may exceed b transiently, because a
//     split adds a child to the parent without splitting it in the same
//     step) are repaired by the next traversal that passes through:
//     "relaxed" rebalancing in the style of relaxed (a,b)-trees.
//
// # Range scans (ds.RangeScanner)
//
// The tree is the repository's second range-capable structure, with a
// reservation shape opposite to the skiplist's: instead of a Protect
// chain that pins one reservation per node along the bottom level, a
// scan protects whole leaves — each validated descent pins the leaf and
// its ancestors in three rotating slots, emits up to B keys from the
// leaf's immutable key array, and re-descends to the leaf's exclusive
// upper bound (the minimum right-hand separator on the path; leaves
// carry no sibling links). Validation is the leaf's dead flag read
// after the protecting descent: !dead proves the leaf was live — its
// snapshot current for its whole interval — at that instant. A failed
// validation or an NBR neutralization re-descends to the first key not
// yet emitted, so results stay sorted and duplicate-free without
// restarting the scan. See scanRange for the safety argument.
//
// The min-degree bound a is maintained lazily: leaves shrink until empty
// and are then excised together with their separator (an (a,b)-tree with
// a enforced by excision rather than merging). The paper's experiments
// measure SMR behaviour — throughput under traversal-protection cost and
// retire-list churn — and both are preserved: every update retires 1-3
// nodes through the same Retire path as the original.
//
// # Overwrite strategy: copy-on-write leaf replacement
//
// Leaves are immutable once published — the range-scan safety argument
// depends on a protected leaf being a consistent snapshot — so values
// are stored in an immutable array parallel to the keys, and Put on a
// present key copies the leaf with one value slot changed, swings the
// parent's child pointer under the parent's lock, and retires the old
// leaf. This is the same CoW shape as every other (a,b)-tree update and
// makes overwrites a second source of retirements: value churn alone
// feeds the reclamation layer with whole leaves (contrast extbst's
// in-place store, which retires nothing). The returned old value is
// read from the immutable old leaf, so it is exactly the value the
// overwrite replaced.
package abtree

import (
	"math"
	"sort"
	"sync"
	"unsafe"

	"pop/internal/arena"
	"pop/internal/core"
)

const (
	// B is the split threshold: leaves split above B keys, internals are
	// repaired above B+1 children.
	B = 12
	// maxKeys/maxKids size the node arrays. Internals may transiently
	// exceed B+1 children while repairs lag; the hard cap is generous
	// enough that a repair always runs first (each traversal repairs).
	maxKeys = 3 * B
	maxKids = 3*B + 1
)

// node is a tree node. Header first (reclamation contract). keys and
// vals (and, for internal nodes, the key/child counts) are immutable
// once the node is published; only the kids cells are mutated in place
// (child swings under the node's lock). vals parallels keys on leaves
// and is unused on internal nodes.
type node struct {
	core.Header
	leaf  bool
	dead  core.Flag
	mu    sync.Mutex
	nkeys int
	keys  [maxKeys]int64
	vals  [maxKeys]uint64
	kids  [maxKids]core.Atomic // internal: nkeys+1 children
}

// nkids returns the child count of an internal node.
func (n *node) nkids() int { return n.nkeys + 1 }

// route returns the child index followed for key: the first separator
// greater than key. (entry has nkeys == 0, so routing yields index 0.)
func (n *node) route(key int64) int {
	i := sort.Search(n.nkeys, func(i int) bool { return key < n.keys[i] })
	return i
}

// findKey returns the position of key in a leaf, or (-1, false).
func (n *node) findKey(key int64) (int, bool) {
	i := sort.Search(n.nkeys, func(i int) bool { return n.keys[i] >= key })
	if i < n.nkeys && n.keys[i] == key {
		return i, true
	}
	return -1, false
}

// Tree is a concurrent (a,b)-tree set.
type Tree struct {
	d     *core.Domain
	typ   uint8
	pool  *arena.Pool[node]
	cache []*arena.ThreadCache[node]
	// entry is a permanent pseudo-internal node with zero separators and
	// a single child cell holding the real root. It is never dead, which
	// uniformizes every structural operation: the root's parent always
	// exists and always validates.
	entry *node
}

// New creates an empty tree in domain d.
func New(d *core.Domain) *Tree {
	tr := &Tree{
		d:     d,
		pool:  arena.NewPool[node](nil, nil),
		cache: make([]*arena.ThreadCache[node], d.MaxThreads()),
	}
	tr.typ = d.RegisterType(func(t *core.Thread, h *core.Header) {
		n := (*node)(unsafe.Pointer(h))
		n.dead.Store(false)
		tr.cacheFor(t).Put(n)
	})
	tr.entry = &node{}
	// The initial root leaf is pool-managed (unlike the permanent entry)
	// because the first insert will copy-on-write and retire it. No
	// thread exists yet, so it is stamped directly: BirthEra 0 predates
	// every possible reservation, which is safe (conservative).
	c := tr.pool.NewCache()
	root := c.Get()
	root.leaf = true
	root.nkeys = 0
	root.dead.Store(false)
	root.Header.Type = tr.typ
	tr.entry.kids[0].Raw(unsafe.Pointer(root))
	return tr
}

// Outstanding reports pool-level live+retired nodes (memory metric).
func (tr *Tree) Outstanding() int64 { return tr.pool.Outstanding() }

func (tr *Tree) cacheFor(t *core.Thread) *arena.ThreadCache[node] {
	c := tr.cache[t.ID()]
	if c == nil {
		c = tr.pool.NewCache()
		tr.cache[t.ID()] = c
	}
	return c
}

// pos is a completed descent: l is the leaf; p its parent; gp its
// grandparent (entry when shallow). All protected in rotating slots.
// bound is the exclusive upper limit of l's key space — the minimum
// right-hand separator passed on the way down (math.MaxInt64 on the
// rightmost spine). Range scans use it to resume at the next leaf.
type pos struct {
	gp, p, l *node
	bound    int64
}

// search descends to the leaf covering key. On the way it repairs any
// overfull internal node it passes (split propagation). ok=false:
// neutralized (NBR) — restart the operation.
func (tr *Tree) search(t *core.Thread, key int64) (pos, bool) {
	for {
		gp, p := tr.entry, tr.entry
		sGP, sP, sL := 0, 1, 2
		bound := int64(math.MaxInt64)
		raw, ok := t.Protect(sL, &tr.entry.kids[0])
		if !ok {
			return pos{}, false
		}
		cur := (*node)(raw)
		restart := false
		for !cur.leaf {
			if cur.nkids() > B+1 {
				// Overfull internal: repair, then restart the descent.
				if !tr.repairSplit(t, gp, p, cur) {
					return pos{}, false
				}
				restart = true
				break
			}
			gp = p
			p = cur
			idx := cur.route(key)
			if idx < cur.nkeys && cur.keys[idx] < bound {
				bound = cur.keys[idx]
			}
			raw, ok = t.Protect(sGP, &cur.kids[idx])
			if !ok {
				return pos{}, false
			}
			// Liveness validation: a dead node's child cells are frozen,
			// so Protect's re-read check cannot detect that the edge is
			// stale. Checking dead *after* the protect guarantees the
			// child was reachable at protect time — the reachability the
			// hazard-pointer safety argument requires. (The sorted lists
			// get this for free from their mark bits; the trees must
			// check explicitly.)
			if cur.dead.Load() {
				restart = true
				break
			}
			sGP, sP, sL = sP, sL, sGP
			cur = (*node)(raw)
		}
		if restart {
			continue
		}
		return pos{gp: gp, p: p, l: cur, bound: bound}, true
	}
}

// Contains reports whether key is present.
func (tr *Tree) Contains(t *core.Thread, key int64) bool {
	_, ok := tr.Get(t, key)
	return ok
}

// Get returns the value mapped to key. The leaf is protected and
// immutable, so plain reads of its arrays are a consistent snapshot.
func (tr *Tree) Get(t *core.Thread, key int64) (uint64, bool) {
	t.StartOp()
	defer t.EndOp()
	for {
		ps, ok := tr.search(t, key)
		if !ok {
			continue
		}
		i, found := ps.l.findKey(key)
		if !found {
			return 0, false
		}
		return ps.l.vals[i], true
	}
}

// newLeaf builds an unpublished leaf from parallel key/value slices.
func (tr *Tree) newLeaf(t *core.Thread, cache *arena.ThreadCache[node], keys []int64, vals []uint64) *node {
	n := cache.Get()
	n.leaf = true
	n.dead.Store(false)
	n.nkeys = len(keys)
	copy(n.keys[:], keys)
	copy(n.vals[:], vals)
	t.OnAlloc(&n.Header, tr.typ)
	return n
}

// newInternal builds an unpublished internal node; kids are raw child
// pointers.
func (tr *Tree) newInternal(t *core.Thread, cache *arena.ThreadCache[node], keys []int64, kids []unsafe.Pointer) *node {
	n := cache.Get()
	n.leaf = false
	n.dead.Store(false)
	n.nkeys = len(keys)
	copy(n.keys[:], keys)
	for i, k := range kids {
		n.kids[i].Raw(k)
	}
	t.OnAlloc(&n.Header, tr.typ)
	return n
}

// Insert adds key with the zero value; false if already present.
func (tr *Tree) Insert(t *core.Thread, key int64) bool {
	return tr.PutIfAbsent(t, key, 0)
}

// PutIfAbsent maps key to val only if key is absent.
func (tr *Tree) PutIfAbsent(t *core.Thread, key int64, val uint64) bool {
	ok, _, _ := tr.put(t, key, val, false)
	return ok
}

// Put maps key to val, overwriting; returns the previous value.
func (tr *Tree) Put(t *core.Thread, key int64, val uint64) (uint64, bool) {
	_, old, replaced := tr.put(t, key, val, true)
	return old, replaced
}

// put is the shared insert/overwrite path. An overwrite copies the leaf
// with one value slot changed and retires the original (see the package
// comment); the old value is read from the immutable old leaf.
func (tr *Tree) put(t *core.Thread, key int64, val uint64, overwrite bool) (inserted bool, old uint64, replaced bool) {
	checkKey(key)
	t.StartOp()
	defer t.EndOp()
	cache := tr.cacheFor(t)
	for {
		ps, ok := tr.search(t, key)
		if !ok {
			continue
		}
		if i, found := ps.l.findKey(key); found {
			// Read the old value before the CoW retires the leaf: the
			// leaf is immutable, so this is exactly the replaced value.
			old = ps.l.vals[i]
			if !overwrite {
				return false, old, true
			}
			if tr.overwriteCoW(t, cache, ps, key, i, val) {
				return false, old, true
			}
			continue
		}
		if ps.l.nkeys < B {
			if tr.insertCoW(t, cache, ps, key, val) {
				return true, 0, false
			}
			continue
		}
		done, ok2 := tr.insertSplit(t, cache, ps, key, val)
		if !ok2 {
			continue // neutralized during write phase entry
		}
		if done {
			return true, 0, false
		}
	}
}

// overwriteCoW replaces the leaf with a copy whose i-th value is val.
func (tr *Tree) overwriteCoW(t *core.Thread, cache *arena.ThreadCache[node], ps pos, key int64, i int, val uint64) bool {
	nl := tr.newLeaf(t, cache, ps.l.keys[:ps.l.nkeys], ps.l.vals[:ps.l.nkeys])
	nl.vals[i] = val
	if !t.EnterWritePhase() {
		cache.Put(nl)
		return false
	}
	cell := &ps.p.kids[ps.p.route(key)]
	ps.p.mu.Lock()
	if (ps.p != tr.entry && ps.p.dead.Load()) || cell.Load() != unsafe.Pointer(ps.l) {
		ps.p.mu.Unlock()
		t.ExitWritePhase()
		cache.Put(nl)
		return false
	}
	cell.Store(unsafe.Pointer(nl))
	ps.l.dead.Store(true)
	ps.p.mu.Unlock()
	t.Retire(&ps.l.Header)
	t.ExitWritePhase()
	return true
}

// insertCoW replaces the leaf with a copy containing key (no split).
func (tr *Tree) insertCoW(t *core.Thread, cache *arena.ThreadCache[node], ps pos, key int64, val uint64) bool {
	mk, mv := mergeKV(ps.l, key, val)
	nl := tr.newLeaf(t, cache, mk, mv)
	if !t.EnterWritePhase() {
		cache.Put(nl)
		return false
	}
	cell := &ps.p.kids[ps.p.route(key)]
	ps.p.mu.Lock()
	if (ps.p != tr.entry && ps.p.dead.Load()) || cell.Load() != unsafe.Pointer(ps.l) {
		ps.p.mu.Unlock()
		t.ExitWritePhase()
		cache.Put(nl)
		return false
	}
	cell.Store(unsafe.Pointer(nl))
	ps.l.dead.Store(true)
	ps.p.mu.Unlock()
	t.Retire(&ps.l.Header)
	t.ExitWritePhase()
	return true
}

// insertSplit splits a full leaf into two and adds the separator to the
// parent (rebuilt copy-on-write), or grows a new root when the parent is
// the entry. Returns (done, !neutralized).
func (tr *Tree) insertSplit(t *core.Thread, cache *arena.ThreadCache[node], ps pos, key int64, val uint64) (bool, bool) {
	mk, mv := mergeKV(ps.l, key, val)
	h := len(mk) / 2
	l1 := tr.newLeaf(t, cache, mk[:h], mv[:h])
	l2 := tr.newLeaf(t, cache, mk[h:], mv[h:])
	sep := mk[h]
	giveUp := func() {
		cache.Put(l1)
		cache.Put(l2)
	}
	if !t.EnterWritePhase() {
		giveUp()
		return false, false
	}
	if ps.p == tr.entry {
		// Root leaf split: new root internal above the two halves.
		newRoot := tr.newInternal(t, cache, []int64{sep},
			[]unsafe.Pointer{unsafe.Pointer(l1), unsafe.Pointer(l2)})
		cell := &tr.entry.kids[0]
		tr.entry.mu.Lock()
		if cell.Load() != unsafe.Pointer(ps.l) {
			tr.entry.mu.Unlock()
			t.ExitWritePhase()
			cache.Put(newRoot)
			giveUp()
			return false, true
		}
		cell.Store(unsafe.Pointer(newRoot))
		ps.l.dead.Store(true)
		tr.entry.mu.Unlock()
		t.Retire(&ps.l.Header)
		t.ExitWritePhase()
		return true, true
	}

	gpCell := &ps.gp.kids[ps.gp.route(key)]
	pCell := &ps.p.kids[ps.p.route(key)]
	ps.gp.mu.Lock()
	ps.p.mu.Lock()
	if (ps.gp != tr.entry && ps.gp.dead.Load()) || ps.p.dead.Load() ||
		gpCell.Load() != unsafe.Pointer(ps.p) || pCell.Load() != unsafe.Pointer(ps.l) {
		ps.p.mu.Unlock()
		ps.gp.mu.Unlock()
		t.ExitWritePhase()
		giveUp()
		return false, true
	}
	// Rebuild the parent with l replaced by (l1, sep, l2). The parent is
	// locked, so snapshotting its child cells is stable.
	idx := ps.p.route(key)
	keys := make([]int64, 0, ps.p.nkeys+1)
	kids := make([]unsafe.Pointer, 0, ps.p.nkids()+1)
	for i := 0; i < ps.p.nkids(); i++ {
		if i == idx {
			kids = append(kids, unsafe.Pointer(l1), unsafe.Pointer(l2))
		} else {
			kids = append(kids, ps.p.kids[i].Load())
		}
	}
	for i := 0; i < ps.p.nkeys; i++ {
		if i == idx {
			keys = append(keys, sep)
		}
		keys = append(keys, ps.p.keys[i])
	}
	if idx == ps.p.nkeys {
		keys = append(keys, sep)
	}
	np := tr.newInternal(t, cache, keys, kids)
	gpCell.Store(unsafe.Pointer(np))
	ps.p.dead.Store(true)
	ps.l.dead.Store(true)
	ps.p.mu.Unlock()
	ps.gp.mu.Unlock()
	t.Retire(&ps.p.Header)
	t.Retire(&ps.l.Header)
	t.ExitWritePhase()
	return true, true
}

// repairSplit splits the overfull internal node cur, rebuilding its
// parent (or growing a new root). gp/p/cur are protected by the caller.
// Returns false only when neutralized.
func (tr *Tree) repairSplit(t *core.Thread, gp, p, cur *node) bool {
	cache := tr.cacheFor(t)
	if !t.EnterWritePhase() {
		return false
	}
	key := cur.keys[0] // any key routed through cur locates the cells
	gpCell := &gp.kids[gp.route(key)]
	pCell := &p.kids[p.route(key)]
	gp.mu.Lock()
	if gp != p {
		p.mu.Lock()
	}
	cur.mu.Lock()
	valid := (gp == tr.entry || !gp.dead.Load()) &&
		(p == tr.entry || !p.dead.Load()) && !cur.dead.Load() &&
		pCell.Load() == unsafe.Pointer(cur) && cur.nkids() > B+1
	if p != tr.entry {
		valid = valid && gpCell.Load() == unsafe.Pointer(p)
	}
	if !valid {
		cur.mu.Unlock()
		if gp != p {
			p.mu.Unlock()
		}
		gp.mu.Unlock()
		t.ExitWritePhase()
		return true // state changed under us; descent restarts anyway
	}

	// Split cur's children in half around a median separator.
	n := cur.nkids()
	h := n / 2
	kidsAll := make([]unsafe.Pointer, n)
	for i := 0; i < n; i++ {
		kidsAll[i] = cur.kids[i].Load()
	}
	c1 := tr.newInternal(t, cache, append([]int64(nil), cur.keys[:h-1]...), kidsAll[:h])
	c2 := tr.newInternal(t, cache, append([]int64(nil), cur.keys[h:cur.nkeys]...), kidsAll[h:])
	sep := cur.keys[h-1]

	if p == tr.entry {
		// cur is the root: grow a new root.
		newRoot := tr.newInternal(t, cache, []int64{sep},
			[]unsafe.Pointer{unsafe.Pointer(c1), unsafe.Pointer(c2)})
		pCell.Store(unsafe.Pointer(newRoot))
		cur.dead.Store(true)
		cur.mu.Unlock()
		gp.mu.Unlock()
		t.Retire(&cur.Header)
		t.ExitWritePhase()
		return true
	}

	// Rebuild p with cur replaced by (c1, sep, c2).
	idx := p.route(key)
	keys := make([]int64, 0, p.nkeys+1)
	kids := make([]unsafe.Pointer, 0, p.nkids()+1)
	for i := 0; i < p.nkids(); i++ {
		if i == idx {
			kids = append(kids, unsafe.Pointer(c1), unsafe.Pointer(c2))
		} else {
			kids = append(kids, p.kids[i].Load())
		}
	}
	for i := 0; i < p.nkeys; i++ {
		if i == idx {
			keys = append(keys, sep)
		}
		keys = append(keys, p.keys[i])
	}
	if idx == p.nkeys {
		keys = append(keys, sep)
	}
	np := tr.newInternal(t, cache, keys, kids)
	gpCell.Store(unsafe.Pointer(np))
	p.dead.Store(true)
	cur.dead.Store(true)
	cur.mu.Unlock()
	p.mu.Unlock()
	gp.mu.Unlock()
	t.Retire(&p.Header)
	t.Retire(&cur.Header)
	t.ExitWritePhase()
	return true
}

// Delete removes key and returns the value it removed. An emptied leaf
// is excised together with its separator; a parent reduced to a single
// child is replaced by that child.
func (tr *Tree) Delete(t *core.Thread, key int64) (uint64, bool) {
	checkKey(key)
	t.StartOp()
	defer t.EndOp()
	cache := tr.cacheFor(t)
	for {
		ps, ok := tr.search(t, key)
		if !ok {
			continue
		}
		i, found := ps.l.findKey(key)
		if !found {
			return 0, false
		}
		// The old leaf is immutable and protected; its value array still
		// holds the removed value after the CoW below retires it.
		old := ps.l.vals[i]
		if ps.l.nkeys > 1 || ps.p == tr.entry {
			// CoW the leaf without it (the root leaf may become empty).
			if tr.deleteCoW(t, cache, ps, key) {
				return old, true
			}
			continue
		}
		done, ok2 := tr.deleteExcise(t, cache, ps, key)
		if !ok2 {
			continue
		}
		if done {
			return old, true
		}
	}
}

// deleteCoW replaces the leaf with a copy lacking key.
func (tr *Tree) deleteCoW(t *core.Thread, cache *arena.ThreadCache[node], ps pos, key int64) bool {
	remaining := make([]int64, 0, ps.l.nkeys-1)
	vals := make([]uint64, 0, ps.l.nkeys-1)
	for i := 0; i < ps.l.nkeys; i++ {
		if ps.l.keys[i] != key {
			remaining = append(remaining, ps.l.keys[i])
			vals = append(vals, ps.l.vals[i])
		}
	}
	nl := tr.newLeaf(t, cache, remaining, vals)
	if !t.EnterWritePhase() {
		cache.Put(nl)
		return false
	}
	cell := &ps.p.kids[ps.p.route(key)]
	ps.p.mu.Lock()
	if (ps.p != tr.entry && ps.p.dead.Load()) || cell.Load() != unsafe.Pointer(ps.l) {
		ps.p.mu.Unlock()
		t.ExitWritePhase()
		cache.Put(nl)
		return false
	}
	cell.Store(unsafe.Pointer(nl))
	ps.l.dead.Store(true)
	ps.p.mu.Unlock()
	t.Retire(&ps.l.Header)
	t.ExitWritePhase()
	return true
}

// deleteExcise removes a singleton leaf and its separator from the
// parent, collapsing the parent if it would be left with one child.
func (tr *Tree) deleteExcise(t *core.Thread, cache *arena.ThreadCache[node], ps pos, key int64) (bool, bool) {
	if !t.EnterWritePhase() {
		return false, false
	}
	gpCell := &ps.gp.kids[ps.gp.route(key)]
	pCell := &ps.p.kids[ps.p.route(key)]
	ps.gp.mu.Lock()
	ps.p.mu.Lock()
	if (ps.gp != tr.entry && ps.gp.dead.Load()) || ps.p.dead.Load() ||
		gpCell.Load() != unsafe.Pointer(ps.p) || pCell.Load() != unsafe.Pointer(ps.l) ||
		ps.l.nkeys != 1 || ps.l.keys[0] != key {
		ps.p.mu.Unlock()
		ps.gp.mu.Unlock()
		t.ExitWritePhase()
		return false, true
	}
	idx := ps.p.route(key)
	if ps.p.nkids() == 2 {
		// Parent would keep a single child: promote the sibling.
		sib := ps.p.kids[1-idx].Load()
		gpCell.Store(sib)
		ps.p.dead.Store(true)
		ps.l.dead.Store(true)
		ps.p.mu.Unlock()
		ps.gp.mu.Unlock()
		t.Retire(&ps.p.Header)
		t.Retire(&ps.l.Header)
		t.ExitWritePhase()
		return true, true
	}
	// Rebuild the parent without the leaf and without one separator.
	keys := make([]int64, 0, ps.p.nkeys-1)
	kids := make([]unsafe.Pointer, 0, ps.p.nkids()-1)
	for i := 0; i < ps.p.nkids(); i++ {
		if i != idx {
			kids = append(kids, ps.p.kids[i].Load())
		}
	}
	drop := idx
	if drop == ps.p.nkeys {
		drop = ps.p.nkeys - 1
	}
	for i := 0; i < ps.p.nkeys; i++ {
		if i != drop {
			keys = append(keys, ps.p.keys[i])
		}
	}
	np := tr.newInternal(t, cache, keys, kids)
	gpCell.Store(unsafe.Pointer(np))
	ps.p.dead.Store(true)
	ps.l.dead.Store(true)
	ps.p.mu.Unlock()
	ps.gp.mu.Unlock()
	t.Retire(&ps.p.Header)
	t.Retire(&ps.l.Header)
	t.ExitWritePhase()
	return true, true
}

// RangeCount counts the keys in [lo, hi].
func (tr *Tree) RangeCount(t *core.Thread, lo, hi int64) int {
	n := 0
	tr.scanRange(t, lo, hi, func(int64, uint64) bool { n++; return true })
	return n
}

// RangeCollect appends the keys in [lo, hi], ascending, to buf[:0] and
// returns the filled slice. The result is sorted and duplicate-free;
// each reported key was observed present in a validated live leaf at
// some point during the scan, and no key absent for the scan's whole
// duration is reported.
func (tr *Tree) RangeCollect(t *core.Thread, lo, hi int64, buf []int64) []int64 {
	buf = buf[:0]
	tr.scanRange(t, lo, hi, func(k int64, _ uint64) bool { buf = append(buf, k); return true })
	return buf
}

// RangeCollectKV appends up to max (key, value) pairs from [lo, hi],
// ascending, to keys[:0]/vals[:0] (max <= 0 = unlimited). Leaves are
// immutable once published — an overwrite replaces the whole leaf — so
// each emitted pair comes from one consistent leaf snapshot.
func (tr *Tree) RangeCollectKV(t *core.Thread, lo, hi int64, max int, keys []int64, vals []uint64) ([]int64, []uint64) {
	keys, vals = keys[:0], vals[:0]
	tr.scanRange(t, lo, hi, func(k int64, v uint64) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return max <= 0 || len(keys) < max
	})
	return keys, vals
}

// scanRange walks the leaves covering [lo, hi] in key order as one long
// operation. The tree has no sibling links, so the scan is a sequence of
// validated descents: each descent protects the whole leaf (plus its
// ancestors, in the same three rotating slots every search uses) and
// records the minimum right-hand separator on the path — the exclusive
// upper bound of the leaf's key space and therefore the next descent's
// target. This is a deliberately different reservation shape from the
// skiplist's scan (a per-node Protect chain along level 0): here a
// handful of reservations cover up to B keys at a time, so the per-key
// protection cost is amortised while the operation as a whole still
// pins its reservations across every hop.
//
// Validation is the leaf's dead flag, checked after the protecting
// descent completes: leaves are immutable once published and dead is
// set only after the replacement is linked, so !dead proves the
// protected leaf was the live leaf for its interval at that moment, and
// its key array is a consistent snapshot of [from, bound). Emission is
// capped at bound; if the check fails (or NBR neutralizes a hop), the
// scan re-descends to the first key not yet emitted — emitted keys are
// never revisited, keeping output sorted and duplicate-free. emit
// receives each key with the value its (immutable) leaf snapshot holds
// for it; returning false stops the scan (the KV collector's limit).
func (tr *Tree) scanRange(t *core.Thread, lo, hi int64, emit func(int64, uint64) bool) {
	if lo > hi {
		return
	}
	t.StartOp()
	defer t.EndOp()
	from := lo
	for {
		ps, ok := tr.search(t, from)
		if !ok {
			continue // neutralized: resume at `from`
		}
		if ps.l.dead.Load() {
			continue // leaf replaced under the descent: retry
		}
		// The leaf is protected and was live at the check above; its key
		// array is immutable, so plain reads are a valid snapshot (under
		// NBR the reclaimer waits for our ack, which we only give at the
		// next Protect — after these reads are done).
		for i := 0; i < ps.l.nkeys; i++ {
			k := ps.l.keys[i]
			if k >= from && k <= hi && k < ps.bound {
				if !emit(k, ps.l.vals[i]) {
					return
				}
			}
		}
		if ps.bound > hi || ps.bound == math.MaxInt64 {
			return // past hi, or on the rightmost spine
		}
		from = ps.bound
	}
}

// mergeKV returns the leaf's keys plus key (sorted) and the parallel
// value slice with val in key's slot.
func mergeKV(l *node, key int64, val uint64) ([]int64, []uint64) {
	keys := make([]int64, 0, l.nkeys+1)
	vals := make([]uint64, 0, l.nkeys+1)
	placed := false
	for i := 0; i < l.nkeys; i++ {
		if !placed && key < l.keys[i] {
			keys = append(keys, key)
			vals = append(vals, val)
			placed = true
		}
		keys = append(keys, l.keys[i])
		vals = append(vals, l.vals[i])
	}
	if !placed {
		keys = append(keys, key)
		vals = append(vals, val)
	}
	return keys, vals
}

// Size counts keys. Quiescent use only.
func (tr *Tree) Size(t *core.Thread) int {
	return count((*node)(tr.entry.kids[0].Load()))
}

func count(n *node) int {
	if n.leaf {
		return n.nkeys
	}
	total := 0
	for i := 0; i < n.nkids(); i++ {
		total += count((*node)(n.kids[i].Load()))
	}
	return total
}

func checkKey(key int64) {
	if key == math.MaxInt64 {
		panic("abtree: key reserved")
	}
}
