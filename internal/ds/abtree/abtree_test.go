package abtree_test

import (
	"testing"
	"testing/quick"

	"pop/internal/core"
	"pop/internal/ds"
	"pop/internal/ds/abtree"
	"pop/internal/ds/dstest"
)

func TestConformance(t *testing.T) {
	dstest.Run(t, func(d *core.Domain) ds.Map { return abtree.New(d) }, dstest.Config{
		KeyRange: 4096, // force real tree depth and split/excise traffic
	})
}

// TestQuickSequentialEquivalence checks map equivalence on random tapes.
func TestQuickSequentialEquivalence(t *testing.T) {
	prop := func(tape []uint32) bool {
		d := core.NewDomain(core.HazardPtrPOP, 1, &core.Options{ReclaimThreshold: 16})
		th := d.RegisterThread()
		tr := abtree.New(d)
		ref := make(map[int64]bool)
		for _, w := range tape {
			k := int64(w % 1024)
			switch (w / 1024) % 3 {
			case 0:
				if tr.Insert(th, k) == ref[k] {
					return false
				}
				ref[k] = true
			case 1:
				if _, ok := tr.Delete(th, k); ok != ref[k] {
					return false
				}
				delete(ref, k)
			default:
				if tr.Contains(th, k) != ref[k] {
					return false
				}
			}
		}
		return tr.Size(th) == len(ref)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestGrowShrinkCycles drives the tree through repeated full growth and
// emptying, which exercises root growth, leaf splits, excision and root
// collapse paths.
func TestGrowShrinkCycles(t *testing.T) {
	d := core.NewDomain(core.EBR, 1, &core.Options{ReclaimThreshold: 128})
	tr := abtree.New(d)
	th := d.RegisterThread()
	const n = 5000
	for cycle := 0; cycle < 3; cycle++ {
		for k := int64(0); k < n; k++ {
			if !tr.Insert(th, k*7%n) {
				t.Fatalf("cycle %d: insert %d failed", cycle, k*7%n)
			}
		}
		if got := tr.Size(th); got != n {
			t.Fatalf("cycle %d: Size = %d, want %d", cycle, got, n)
		}
		for k := int64(0); k < n; k++ {
			if _, ok := tr.Delete(th, k); !ok {
				t.Fatalf("cycle %d: delete %d failed", cycle, k)
			}
		}
		if got := tr.Size(th); got != 0 {
			t.Fatalf("cycle %d: Size = %d, want 0", cycle, got)
		}
	}
	th.Flush()
	if u := d.Unreclaimed(); u != 0 {
		t.Fatalf("unreclaimed = %d after flush", u)
	}
}

// TestRangeScanAcrossLeaves drives scans whose windows straddle many
// leaf boundaries: the scan has no sibling links to follow, so every
// window exercises the bound-tracking re-descent (including after leaf
// splits and excisions reshuffle the separators mid-history).
func TestRangeScanAcrossLeaves(t *testing.T) {
	d := core.NewDomain(core.HazardPtrPOP, 1, &core.Options{ReclaimThreshold: 64})
	tr := abtree.New(d)
	th := d.RegisterThread()

	// Multiples of 3 in [0, 3000): forces ~80+ leaves at B=12.
	const n = int64(1000)
	for k := int64(0); k < n; k++ {
		tr.Insert(th, k*3)
	}
	check := func(lo, hi int64) {
		t.Helper()
		var want []int64
		for k := int64(0); k < n; k++ {
			if k*3 >= lo && k*3 <= hi {
				want = append(want, k*3)
			}
		}
		got := tr.RangeCollect(th, lo, hi, nil)
		if len(got) != len(want) {
			t.Fatalf("RangeCollect(%d,%d) -> %d keys, want %d", lo, hi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("RangeCollect(%d,%d)[%d] = %d, want %d", lo, hi, i, got[i], want[i])
			}
		}
		if c := tr.RangeCount(th, lo, hi); c != len(want) {
			t.Fatalf("RangeCount(%d,%d) = %d, want %d", lo, hi, c, len(want))
		}
	}
	check(0, 3*n)      // whole structure
	check(7, 8)        // empty window between keys
	check(300, 1500)   // many leaves
	check(2997, 1<<62) // tail, hi far past the last key
	check(0, 0)        // single key at the left edge
	check(5, 4)        // inverted: empty
	check(-100, -1)    // entirely below the key space
	check(0, 1<<62)    // near-max hi exercises the rightmost spine

	// Excise most leaves (delete two of every three keys), then rescan:
	// bounds collected from rebuilt parents must still partition the
	// space.
	for k := int64(0); k < n; k++ {
		if k%3 != 0 {
			tr.Delete(th, k*3)
		}
	}
	var want []int64
	for k := int64(0); k < n; k += 3 {
		want = append(want, k*3)
	}
	got := tr.RangeCollect(th, 0, 3*n, nil)
	if len(got) != len(want) {
		t.Fatalf("post-excision scan -> %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-excision scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	th.Flush()
}

// TestDescendingAndAscendingOrders stresses split balance on adversarial
// insertion orders.
func TestDescendingAndAscendingOrders(t *testing.T) {
	for name, step := range map[string]int64{"Ascending": 1, "Descending": -1} {
		t.Run(name, func(t *testing.T) {
			d := core.NewDomain(core.HP, 1, &core.Options{ReclaimThreshold: 64})
			tr := abtree.New(d)
			th := d.RegisterThread()
			const n = 3000
			start := int64(0)
			if step < 0 {
				start = n - 1
			}
			for i, k := int64(0), start; i < n; i, k = i+1, k+step {
				if !tr.Insert(th, k) {
					t.Fatalf("insert %d failed", k)
				}
			}
			if got := tr.Size(th); got != n {
				t.Fatalf("Size = %d, want %d", got, n)
			}
			for k := int64(0); k < n; k++ {
				if !tr.Contains(th, k) {
					t.Fatalf("missing %d", k)
				}
			}
		})
	}
}
