package abtree_test

import (
	"testing"
	"testing/quick"

	"pop/internal/core"
	"pop/internal/ds"
	"pop/internal/ds/abtree"
	"pop/internal/ds/dstest"
)

func TestConformance(t *testing.T) {
	dstest.Run(t, func(d *core.Domain) ds.Set { return abtree.New(d) }, dstest.Config{
		KeyRange: 4096, // force real tree depth and split/excise traffic
	})
}

// TestQuickSequentialEquivalence checks map equivalence on random tapes.
func TestQuickSequentialEquivalence(t *testing.T) {
	prop := func(tape []uint32) bool {
		d := core.NewDomain(core.HazardPtrPOP, 1, &core.Options{ReclaimThreshold: 16})
		th := d.RegisterThread()
		tr := abtree.New(d)
		ref := make(map[int64]bool)
		for _, w := range tape {
			k := int64(w % 1024)
			switch (w / 1024) % 3 {
			case 0:
				if tr.Insert(th, k) == ref[k] {
					return false
				}
				ref[k] = true
			case 1:
				if tr.Delete(th, k) != ref[k] {
					return false
				}
				delete(ref, k)
			default:
				if tr.Contains(th, k) != ref[k] {
					return false
				}
			}
		}
		return tr.Size(th) == len(ref)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestGrowShrinkCycles drives the tree through repeated full growth and
// emptying, which exercises root growth, leaf splits, excision and root
// collapse paths.
func TestGrowShrinkCycles(t *testing.T) {
	d := core.NewDomain(core.EBR, 1, &core.Options{ReclaimThreshold: 128})
	tr := abtree.New(d)
	th := d.RegisterThread()
	const n = 5000
	for cycle := 0; cycle < 3; cycle++ {
		for k := int64(0); k < n; k++ {
			if !tr.Insert(th, k*7%n) {
				t.Fatalf("cycle %d: insert %d failed", cycle, k*7%n)
			}
		}
		if got := tr.Size(th); got != n {
			t.Fatalf("cycle %d: Size = %d, want %d", cycle, got, n)
		}
		for k := int64(0); k < n; k++ {
			if !tr.Delete(th, k) {
				t.Fatalf("cycle %d: delete %d failed", cycle, k)
			}
		}
		if got := tr.Size(th); got != 0 {
			t.Fatalf("cycle %d: Size = %d, want 0", cycle, got)
		}
	}
	th.Flush()
	if u := d.Unreclaimed(); u != 0 {
		t.Fatalf("unreclaimed = %d after flush", u)
	}
}

// TestDescendingAndAscendingOrders stresses split balance on adversarial
// insertion orders.
func TestDescendingAndAscendingOrders(t *testing.T) {
	for name, step := range map[string]int64{"Ascending": 1, "Descending": -1} {
		t.Run(name, func(t *testing.T) {
			d := core.NewDomain(core.HP, 1, &core.Options{ReclaimThreshold: 64})
			tr := abtree.New(d)
			th := d.RegisterThread()
			const n = 3000
			start := int64(0)
			if step < 0 {
				start = n - 1
			}
			for i, k := int64(0), start; i < n; i, k = i+1, k+step {
				if !tr.Insert(th, k) {
					t.Fatalf("insert %d failed", k)
				}
			}
			if got := tr.Size(th); got != n {
				t.Fatalf("Size = %d, want %d", got, n)
			}
			for k := int64(0); k < n; k++ {
				if !tr.Contains(th, k) {
					t.Fatalf("missing %d", k)
				}
			}
		})
	}
}
