package abtree_test

import (
	"os"
	"sync"
	"testing"
	"time"

	"pop/internal/core"
	"pop/internal/ds/abtree"
	"pop/internal/rng"
)

// TestHammerProbe is a long-running reproduction probe, enabled by
// ABTREE_HAMMER=1 (used during development to chase a rare race).
func TestHammerProbe(t *testing.T) {
	if os.Getenv("ABTREE_HAMMER") == "" {
		t.Skip("set ABTREE_HAMMER=1 to run")
	}
	start := time.Now()
	round := 0
	for time.Since(start) < 120*time.Second {
		round++
		for _, p := range core.Policies() {
			d := core.NewDomain(p, 8, &core.Options{ReclaimThreshold: 384, EpochFreq: 128})
			tr := abtree.New(d)
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				th := d.RegisterThread()
				wg.Add(1)
				go func(id int, th *core.Thread) {
					defer wg.Done()
					r := rng.New(uint64(id)*7 + uint64(round))
					for i := 0; i < 20000; i++ {
						tr.Insert(th, r.Intn(312500))
					}
				}(w, th)
			}
			wg.Wait()
		}
	}
}
