package lazylist_test

import (
	"testing"
	"testing/quick"

	"pop/internal/core"
	"pop/internal/ds"
	"pop/internal/ds/dstest"
	"pop/internal/ds/lazylist"
)

func TestConformance(t *testing.T) {
	dstest.Run(t, func(d *core.Domain) ds.Map { return lazylist.New(d) }, dstest.Config{
		KeyRange: 256,
	})
}

// TestQuickSequentialEquivalence drives the list with random operation
// tapes and checks it behaves exactly like a map (property-based).
func TestQuickSequentialEquivalence(t *testing.T) {
	prop := func(tape []uint16) bool {
		d := core.NewDomain(core.HazardEraPOP, 1, &core.Options{ReclaimThreshold: 16})
		th := d.RegisterThread()
		l := lazylist.New(d)
		ref := make(map[int64]bool)
		for _, w := range tape {
			k := int64(w % 64)
			switch (w / 64) % 3 {
			case 0:
				if l.Insert(th, k) == ref[k] {
					return false
				}
				ref[k] = true
			case 1:
				if _, ok := l.Delete(th, k); ok != ref[k] {
					return false
				}
				delete(ref, k)
			default:
				if l.Contains(th, k) != ref[k] {
					return false
				}
			}
		}
		return l.Size(th) == len(ref)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
