package lazylist_test

import (
	"os"
	"sync"
	"testing"
	"time"

	"pop/internal/core"
	"pop/internal/ds/lazylist"
	"pop/internal/rng"
)

// TestHammerProbe chases the frozen-cell reclamation race (DESIGN.md F1):
// traversals must restart on marked nodes rather than cross frozen links.
// Enabled long via LAZYLIST_HAMMER=1; one short round otherwise.
func TestHammerProbe(t *testing.T) {
	dur := 2 * time.Second
	if os.Getenv("LAZYLIST_HAMMER") != "" {
		dur = 90 * time.Second
	}
	start := time.Now()
	round := 0
	for time.Since(start) < dur {
		round++
		for _, p := range []core.Policy{core.HazardPtrPOP, core.EpochPOP, core.HE} {
			d := core.NewDomain(p, 4, &core.Options{ReclaimThreshold: 64, EpochFreq: 32})
			l := lazylist.New(d)
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				th := d.RegisterThread()
				wg.Add(1)
				go func(id int, th *core.Thread) {
					defer wg.Done()
					r := rng.New(uint64(id)*17 + uint64(round))
					for i := 0; i < 6000; i++ {
						k := r.Intn(512)
						switch i % 3 {
						case 0:
							l.Insert(th, k)
						case 1:
							l.Delete(th, k)
						default:
							l.Contains(th, k)
						}
					}
				}(w, th)
			}
			wg.Wait()
		}
	}
}
