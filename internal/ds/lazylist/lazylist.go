// Package lazylist implements the lazy list of Heller et al. [31]
// (LL in the paper's plots): a sorted linked-list set with wait-free
// unsynchronized traversals, per-node locks for updates, and a marked
// flag for logical deletion.
//
// Where the Harris-Michael list helps unlink during traversal, the lazy
// list's readers are pure: Contains walks the list with no writes at all,
// validating only the final node. Updates lock pred and curr, validate
// that both are unmarked and still adjacent, and then mutate. This gives
// the paper a second list with a very different reader/writer balance:
// traversal cost is dominated purely by the SMR read protocol.
package lazylist

import (
	"math"
	"sync"
	"unsafe"

	"pop/internal/arena"
	"pop/internal/core"
)

// node is a list cell. Header must be first (reclamation contract).
type node struct {
	core.Header
	key    int64
	marked core.Flag // logical deletion mark (distinct from link tags)
	mu     sync.Mutex
	next   core.Atomic
}

// List is a lazy-list set.
type List struct {
	d     *core.Domain
	typ   uint8
	pool  *arena.Pool[node]
	cache []*arena.ThreadCache[node]
	head  *node
	tail  *node
}

// New creates an empty lazy list in domain d.
func New(d *core.Domain) *List {
	l := &List{
		d:     d,
		pool:  arena.NewPool[node](nil, nil),
		cache: make([]*arena.ThreadCache[node], d.MaxThreads()),
	}
	l.typ = d.RegisterType(func(t *core.Thread, h *core.Header) {
		n := (*node)(unsafe.Pointer(h))
		n.marked.Store(false)
		l.cacheFor(t).Put(n)
	})
	l.head = &node{key: math.MinInt64}
	l.tail = &node{key: math.MaxInt64}
	l.head.next.Raw(unsafe.Pointer(l.tail))
	return l
}

// Outstanding reports pool-level live+retired nodes (memory metric).
func (l *List) Outstanding() int64 { return l.pool.Outstanding() }

func (l *List) cacheFor(t *core.Thread) *arena.ThreadCache[node] {
	c := l.cache[t.ID()]
	if c == nil {
		c = l.pool.NewCache()
		l.cache[t.ID()] = c
	}
	return c
}

const (
	slotPred = 0
	slotCurr = 1
)

// search walks to the first node with key >= key. Slots rotate between
// the two roles so advancing does not re-publish. ok=false: neutralized.
func (l *List) search(t *core.Thread, key int64) (pred, curr *node, sPred, sCurr int, ok bool) {
restart:
	pred = l.head
	sPred, sCurr = slotPred, slotCurr
	raw, okp := t.Protect(sCurr, &pred.next)
	if !okp {
		return nil, nil, 0, 0, false
	}
	curr = (*node)(raw)
	for curr.key < key {
		nraw, okp := t.Protect(sPred, &curr.next) // old pred slot becomes next's
		if !okp {
			return nil, nil, 0, 0, false
		}
		// Liveness validation: an unlinked node is marked before its
		// next pointer freezes, so restarting on a marked curr (checked
		// *after* protecting the successor) guarantees the successor was
		// reachable at protect time. The textbook lazy list traverses
		// marked nodes freely, but that is only safe under garbage
		// collection or epochs; under pointer-based reclamation the
		// traversal must not cross frozen links.
		if curr.marked.Load() {
			goto restart
		}
		pred = curr
		curr = (*node)(nraw)
		sPred, sCurr = sCurr, sPred
	}
	return pred, curr, sPred, sCurr, true
}

// Contains is the lazy list's wait-free membership test: walk, then check
// the final node's key and mark.
func (l *List) Contains(t *core.Thread, key int64) bool {
	t.StartOp()
	defer t.EndOp()
	for {
		_, curr, _, _, ok := l.search(t, key)
		if !ok {
			continue
		}
		return curr.key == key && !curr.marked.Load()
	}
}

// validate re-checks, under locks, that pred and curr are both unmarked
// and adjacent — the lazy list's linearization guard.
func (l *List) validate(pred, curr *node) bool {
	return !pred.marked.Load() && !curr.marked.Load() &&
		l.nextOf(pred) == curr
}

func (l *List) nextOf(n *node) *node { return (*node)(n.next.Load()) }

// Insert adds key; false if already present.
func (l *List) Insert(t *core.Thread, key int64) bool {
	checkKey(key)
	t.StartOp()
	defer t.EndOp()
	cache := l.cacheFor(t)
	var n *node
	for {
		pred, curr, _, _, ok := l.search(t, key)
		if !ok {
			continue
		}
		if curr.key == key && !curr.marked.Load() {
			if n != nil {
				cache.Put(n) // never published
			}
			return false
		}
		// Write phase: reservations for pred/curr are already in slots.
		if !t.EnterWritePhase() {
			continue
		}
		pred.mu.Lock()
		curr.mu.Lock()
		if !l.validate(pred, curr) {
			curr.mu.Unlock()
			pred.mu.Unlock()
			t.ExitWritePhase()
			continue
		}
		if curr.key == key {
			// An unmarked duplicate appeared (or curr was the match all
			// along and a racing delete lost).
			curr.mu.Unlock()
			pred.mu.Unlock()
			t.ExitWritePhase()
			if n != nil {
				cache.Put(n)
			}
			return false
		}
		if n == nil {
			n = cache.Get()
			n.key = key
			n.marked.Store(false)
			t.OnAlloc(&n.Header, l.typ)
		}
		n.next.Raw(unsafe.Pointer(curr))
		pred.next.Store(unsafe.Pointer(n))
		curr.mu.Unlock()
		pred.mu.Unlock()
		t.ExitWritePhase()
		return true
	}
}

// Delete removes key; false if absent.
func (l *List) Delete(t *core.Thread, key int64) bool {
	checkKey(key)
	t.StartOp()
	defer t.EndOp()
	for {
		pred, curr, _, _, ok := l.search(t, key)
		if !ok {
			continue
		}
		if curr.key != key || curr.marked.Load() {
			return false
		}
		if !t.EnterWritePhase() {
			continue
		}
		pred.mu.Lock()
		curr.mu.Lock()
		if !l.validate(pred, curr) || curr.key != key {
			curr.mu.Unlock()
			pred.mu.Unlock()
			t.ExitWritePhase()
			continue
		}
		curr.marked.Store(true)          // logical delete (linearization point)
		pred.next.Store(l.rawNext(curr)) // physical unlink
		curr.mu.Unlock()
		pred.mu.Unlock()
		t.Retire(&curr.Header)
		t.ExitWritePhase()
		return true
	}
}

func (l *List) rawNext(n *node) unsafe.Pointer { return n.next.Load() }

// Size counts unmarked nodes. Quiescent use only.
func (l *List) Size(t *core.Thread) int {
	n := 0
	for c := l.nextOf(l.head); c != l.tail; c = l.nextOf(c) {
		if !c.marked.Load() {
			n++
		}
	}
	return n
}

func checkKey(key int64) {
	if key == math.MinInt64 || key == math.MaxInt64 {
		panic("lazylist: key collides with sentinel")
	}
}
