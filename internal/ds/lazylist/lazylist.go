// Package lazylist implements the lazy list of Heller et al. [31]
// (LL in the paper's plots): a sorted linked-list map with wait-free
// unsynchronized traversals, per-node locks for updates, and a marked
// flag for logical deletion.
//
// Where the Harris-Michael list helps unlink during traversal, the lazy
// list's readers are pure: Contains/Get walk the list with no writes at
// all, validating only the final node. Updates lock pred and curr,
// validate that both are unmarked and still adjacent, and then mutate.
// This gives the paper a second list with a very different reader/writer
// balance: traversal cost is dominated purely by the SMR read protocol.
//
// # Overwrite strategy: atomic in-place store under the node lock
//
// Values live in an atomic cell mutated only while holding the node's
// lock with the node validated unmarked. Deletion marks the node under
// that same lock, so an overwrite can never race a deletion of the same
// node: a node's value is frozen from the moment it is marked. Readers
// load the value optimistically after the unmarked check; the value they
// see is either the current one or one that was current at some instant
// between the check and the load, which is exactly the lazy list's usual
// linearization argument extended to the value plane. Unlike the
// lock-free structures, overwrites here retire nothing.
package lazylist

import (
	"math"
	"sync"
	"sync/atomic"
	"unsafe"

	"pop/internal/arena"
	"pop/internal/core"
)

// node is a list cell. Header must be first (reclamation contract).
// val is written only under mu with marked validated false, and frozen
// once marked is set.
type node struct {
	core.Header
	key    int64
	val    atomic.Uint64
	marked core.Flag // logical deletion mark (distinct from link tags)
	mu     sync.Mutex
	next   core.Atomic
}

// List is a lazy-list map.
type List struct {
	d     *core.Domain
	typ   uint8
	pool  *arena.Pool[node]
	cache []*arena.ThreadCache[node]
	head  *node
	tail  *node
}

// New creates an empty lazy list in domain d.
func New(d *core.Domain) *List {
	l := &List{
		d:     d,
		pool:  arena.NewPool[node](nil, nil),
		cache: make([]*arena.ThreadCache[node], d.MaxThreads()),
	}
	l.typ = d.RegisterType(func(t *core.Thread, h *core.Header) {
		n := (*node)(unsafe.Pointer(h))
		n.marked.Store(false)
		l.cacheFor(t).Put(n)
	})
	l.head = &node{key: math.MinInt64}
	l.tail = &node{key: math.MaxInt64}
	l.head.next.Raw(unsafe.Pointer(l.tail))
	return l
}

// Outstanding reports pool-level live+retired nodes (memory metric).
func (l *List) Outstanding() int64 { return l.pool.Outstanding() }

func (l *List) cacheFor(t *core.Thread) *arena.ThreadCache[node] {
	c := l.cache[t.ID()]
	if c == nil {
		c = l.pool.NewCache()
		l.cache[t.ID()] = c
	}
	return c
}

const (
	slotPred = 0
	slotCurr = 1
)

// search walks to the first node with key >= key. Slots rotate between
// the two roles so advancing does not re-publish. ok=false: neutralized.
func (l *List) search(t *core.Thread, key int64) (pred, curr *node, sPred, sCurr int, ok bool) {
restart:
	pred = l.head
	sPred, sCurr = slotPred, slotCurr
	raw, okp := t.Protect(sCurr, &pred.next)
	if !okp {
		return nil, nil, 0, 0, false
	}
	curr = (*node)(raw)
	for curr.key < key {
		nraw, okp := t.Protect(sPred, &curr.next) // old pred slot becomes next's
		if !okp {
			return nil, nil, 0, 0, false
		}
		// Liveness validation: an unlinked node is marked before its
		// next pointer freezes, so restarting on a marked curr (checked
		// *after* protecting the successor) guarantees the successor was
		// reachable at protect time. The textbook lazy list traverses
		// marked nodes freely, but that is only safe under garbage
		// collection or epochs; under pointer-based reclamation the
		// traversal must not cross frozen links.
		if curr.marked.Load() {
			goto restart
		}
		pred = curr
		curr = (*node)(nraw)
		sPred, sCurr = sCurr, sPred
	}
	return pred, curr, sPred, sCurr, true
}

// Contains is the lazy list's wait-free membership test: walk, then check
// the final node's key and mark.
func (l *List) Contains(t *core.Thread, key int64) bool {
	_, ok := l.Get(t, key)
	return ok
}

// Get returns the value mapped to key. The read is wait-free: the value
// load happens after the unmarked check, and values are frozen once a
// node is marked (see the package comment).
func (l *List) Get(t *core.Thread, key int64) (uint64, bool) {
	t.StartOp()
	defer t.EndOp()
	for {
		_, curr, _, _, ok := l.search(t, key)
		if !ok {
			continue
		}
		if curr.key != key || curr.marked.Load() {
			return 0, false
		}
		return curr.val.Load(), true
	}
}

// validate re-checks, under locks, that pred and curr are both unmarked
// and adjacent — the lazy list's linearization guard.
func (l *List) validate(pred, curr *node) bool {
	return !pred.marked.Load() && !curr.marked.Load() &&
		l.nextOf(pred) == curr
}

func (l *List) nextOf(n *node) *node { return (*node)(n.next.Load()) }

// Insert adds key with the zero value; false if already present.
func (l *List) Insert(t *core.Thread, key int64) bool {
	return l.PutIfAbsent(t, key, 0)
}

// PutIfAbsent maps key to val only if key is absent.
func (l *List) PutIfAbsent(t *core.Thread, key int64, val uint64) bool {
	ok, _, _ := l.put(t, key, val, false)
	return ok
}

// Put maps key to val, overwriting; returns the previous value.
func (l *List) Put(t *core.Thread, key int64, val uint64) (uint64, bool) {
	_, old, replaced := l.put(t, key, val, true)
	return old, replaced
}

// put is the shared insert/overwrite path. Overwrites store in place
// under curr's lock with curr validated unmarked — deletion takes the
// same lock before marking, so the store cannot land in a dead node.
func (l *List) put(t *core.Thread, key int64, val uint64, overwrite bool) (inserted bool, old uint64, replaced bool) {
	checkKey(key)
	t.StartOp()
	defer t.EndOp()
	cache := l.cacheFor(t)
	var n *node
	for {
		pred, curr, _, _, ok := l.search(t, key)
		if !ok {
			continue
		}
		if curr.key == key && !curr.marked.Load() {
			if !overwrite {
				if n != nil {
					cache.Put(n) // never published
				}
				return false, curr.val.Load(), true
			}
			if !t.EnterWritePhase() {
				continue
			}
			curr.mu.Lock()
			if curr.marked.Load() {
				curr.mu.Unlock()
				t.ExitWritePhase()
				continue // deleted under us: re-search (may re-insert)
			}
			old = curr.val.Load()
			curr.val.Store(val)
			curr.mu.Unlock()
			t.ExitWritePhase()
			if n != nil {
				cache.Put(n)
			}
			return false, old, true
		}
		// Write phase: reservations for pred/curr are already in slots.
		if !t.EnterWritePhase() {
			continue
		}
		pred.mu.Lock()
		curr.mu.Lock()
		if !l.validate(pred, curr) {
			curr.mu.Unlock()
			pred.mu.Unlock()
			t.ExitWritePhase()
			continue
		}
		if curr.key == key {
			// An unmarked duplicate appeared (or curr was the match all
			// along and a racing delete lost). Both locks are held and
			// curr validated live, so an overwrite can finish in place.
			old = curr.val.Load()
			if overwrite {
				curr.val.Store(val)
			}
			curr.mu.Unlock()
			pred.mu.Unlock()
			t.ExitWritePhase()
			if n != nil {
				cache.Put(n)
			}
			return false, old, true
		}
		if n == nil {
			n = cache.Get()
			n.key = key
			n.marked.Store(false)
			t.OnAlloc(&n.Header, l.typ)
		}
		n.val.Store(val)
		n.next.Raw(unsafe.Pointer(curr))
		pred.next.Store(unsafe.Pointer(n))
		curr.mu.Unlock()
		pred.mu.Unlock()
		t.ExitWritePhase()
		return true, 0, false
	}
}

// Delete removes key and returns the value it removed.
func (l *List) Delete(t *core.Thread, key int64) (uint64, bool) {
	checkKey(key)
	t.StartOp()
	defer t.EndOp()
	for {
		pred, curr, _, _, ok := l.search(t, key)
		if !ok {
			continue
		}
		if curr.key != key || curr.marked.Load() {
			return 0, false
		}
		if !t.EnterWritePhase() {
			continue
		}
		pred.mu.Lock()
		curr.mu.Lock()
		if !l.validate(pred, curr) || curr.key != key {
			curr.mu.Unlock()
			pred.mu.Unlock()
			t.ExitWritePhase()
			continue
		}
		old := curr.val.Load()           // value at the linearization point
		curr.marked.Store(true)          // logical delete (linearization point)
		pred.next.Store(l.rawNext(curr)) // physical unlink
		curr.mu.Unlock()
		pred.mu.Unlock()
		t.Retire(&curr.Header)
		t.ExitWritePhase()
		return old, true
	}
}

func (l *List) rawNext(n *node) unsafe.Pointer { return n.next.Load() }

// Size counts unmarked nodes. Quiescent use only.
func (l *List) Size(t *core.Thread) int {
	n := 0
	for c := l.nextOf(l.head); c != l.tail; c = l.nextOf(c) {
		if !c.marked.Load() {
			n++
		}
	}
	return n
}

func checkKey(key int64) {
	if key == math.MinInt64 || key == math.MaxInt64 {
		panic("lazylist: key collides with sentinel")
	}
}
