// Package hmlist implements the Harris-Michael lock-free linked-list
// map (HML in the paper's plots; Michael [42], building on Harris [29]).
// It is also the repository's unified bottom layer: the hash table's
// buckets and the skiplist's level 0 are both hmlist chains, so the map
// logic — upsert, replace-node-and-retire overwrite, PutIfAbsent,
// Delete, batched get/put, and the retire handoff — exists exactly once.
//
// Nodes are sorted by key between two sentinels. Deletion is two-phase:
// a CAS sets the mark bit in the victim's next field (logical delete),
// then a CAS swings the predecessor's next past it (physical unlink).
// Traversals help unlink marked nodes they encounter, which is what makes
// every traversal a potential reclaimer interaction — the property that
// makes this list the paper's most SMR-sensitive benchmark (per-read
// protection cost is paid on every hop of every operation).
//
// # Overwrite strategy: replace-node-and-retire
//
// Node values are immutable once published. Storing a new value into a
// live node looks tempting, but the node can be CAS-marked (logically
// deleted) between the lookup and the store, and a concurrent Get could
// then observe a value the map never held — the in-place path is not
// linearizable on a lock-free list. Instead Put on a present key links
// a fresh node carrying the new value directly behind the victim with
// the very CAS that marks the victim:
//
//	victim.next: succ  ->  mark(new)     where new.next = succ
//
// A single CAS therefore (a) logically deletes the victim and (b) makes
// the replacement the continuation of the chain, so traversals that snip
// the marked victim land on a node with the same key and the new value —
// the key is never absent. The victim retires through the ordinary
// deletion path (unlink winner retires), which makes every overwrite a
// retirement: value churn alone now exercises the reclamation layer.
//
// # Retire handoff (LINKING/RETIREREQ)
//
// A structure layered above the list (the skiplist's probabilistic
// index) may keep touching a node after it is published — splicing index
// columns that point at it. Retiring such a node out from under its
// inserter would be a use-after-free, so every retirement funnels
// through a two-bit state machine in the node:
//
//   - The inserter publishes the node with LINKING set (linking mode
//     only) and calls FinishLinking when it stops touching the node.
//   - The unlink winner calls retire, which sets RETIREREQ. If LINKING
//     was already clear the winner retires the node (after the list's
//     purge hook detaches any index state); otherwise the retire is
//     handed off, and FinishLinking — observing RETIREREQ — purges and
//     retires instead.
//
// Exactly one side sees "my bit cleared last" on the same atomic word,
// so every node is retired exactly once. Plain lists (hash-table
// buckets) run the same code with LINKING never set: retire degenerates
// to the immediate path, and the hash table and skiplist retire through
// literally the same function.
//
// The retire itself runs after ExitWritePhase: the node is already
// unlinked and marked by then, the purge hook must always run to
// completion (it clears index cells a concurrent hint may still
// validate against), and no poll point intervenes between the winning
// CAS and the Retire call, so the handoff is policy-safe under all
// eleven reclamation schemes (the skiplist used this exact ordering
// before the handoff moved here).
//
// # Hinted traversals
//
// An index layered above the list descends to some node with key < the
// target and resumes the walk there instead of at the head. The hinted
// entry points (GetInOpHinted, PutInOpHinted, DeleteInOpHinted,
// ScanInOpHinted) take such a start node, already protected by the
// caller in a slot of its choosing, and return valid=false when the
// hint turns out to be stale (start marked, an edge fails validation,
// or a CAS loses a race) — the caller re-descends its index for a fresh
// hint rather than falling back to an O(n) head walk. With start=nil
// they are exactly the classic head-walk operations.
//
// Reservation discipline (Michael's, adapted to the core API): three
// rotating slots protect pred, curr and next; after protecting curr's
// successor the traversal re-validates pred.next == curr, restarting from
// the head on failure. Under NBR the unlink/insert/delete CASes are
// bracketed by EnterWritePhase/ExitWritePhase and a neutralized Protect
// restarts the whole operation.
package hmlist

import (
	"math"
	"sync/atomic"
	"unsafe"

	"pop/internal/arena"
	"pop/internal/core"
)

// State-word bits (Node.state). See the package comment's retire-handoff
// section for the protocol.
const (
	// stateLinking is set by the inserter before the node is published
	// (linking mode only) and cleared by FinishLinking when the inserter
	// stops touching the node. A node with LINKING set is never retired.
	stateLinking = uint32(1) << 0
	// stateRetireReq is set by the unlink winner. If LINKING was already
	// clear the winner retires; otherwise FinishLinking does.
	stateRetireReq = uint32(1) << 1
)

// Node is a list cell. Header must be first (reclamation contract).
// The mark bit of next tags *this* node as logically deleted. key and
// val are immutable once the node is published (see the package comment
// for why values are never stored in place). state is the
// LINKING/RETIREREQ retire-handoff word.
type Node struct {
	core.Header
	key   int64
	val   uint64
	next  core.Atomic
	state atomic.Uint32
}

// Key returns the node's key (immutable once published). Index layers
// need it to locate the column a retiring node owns.
func (n *Node) Key() int64 { return n.key }

// Shared is the allocation state that one or more lists built over the
// same domain can share — the hash table creates one Shared and thousands
// of bucket Lists.
type Shared struct {
	d      *core.Domain
	typ    uint8
	pool   *arena.Pool[Node]
	caches []*arena.ThreadCache[Node] // indexed by thread id, owner-only
	// Retire-handoff balance counters (see Handoffs).
	deferred atomic.Int64
	adopted  atomic.Int64
}

// NewShared creates the node pool for lists in domain d.
func NewShared(d *core.Domain) *Shared {
	s := &Shared{
		d:      d,
		pool:   arena.NewPool[Node](nil, nil),
		caches: make([]*arena.ThreadCache[Node], d.MaxThreads()),
	}
	s.typ = d.RegisterType(func(t *core.Thread, h *core.Header) {
		s.cacheFor(t).Put((*Node)(unsafe.Pointer(h)))
	})
	return s
}

// Outstanding reports pool-level live+retired nodes (memory metric).
func (s *Shared) Outstanding() int64 { return s.pool.Outstanding() }

// Handoffs reports the retire-handoff balance: deferred counts unlink
// winners that found LINKING set and handed the retire to the inserter;
// adopted counts FinishLinking calls that observed RETIREREQ and
// performed the handed-off retire. At quiescence the two must be equal —
// every deferred retire was adopted by exactly one inserter.
func (s *Shared) Handoffs() (deferred, adopted int64) {
	return s.deferred.Load(), s.adopted.Load()
}

// cacheFor returns t's allocation cache, creating it on first use. The
// slot is only ever touched by t's goroutine.
func (s *Shared) cacheFor(t *core.Thread) *arena.ThreadCache[Node] {
	c := s.caches[t.ID()]
	if c == nil {
		c = s.pool.NewCache()
		s.caches[t.ID()] = c
	}
	return c
}

// List is a Harris-Michael sorted-list map.
type List struct {
	s       *Shared
	head    *Node
	tail    *Node
	linking bool
	purge   func(*core.Thread, *Node)
}

// New creates a standalone list (with its own Shared pool) in domain d.
func New(d *core.Domain) *List { return NewWithShared(NewShared(d)) }

// NewWithShared creates a list drawing nodes from an existing pool.
func NewWithShared(s *Shared) *List {
	// Sentinels come from the Go heap, not the pool: they are never
	// retired, and keeping them out of the pool means pool.Outstanding
	// counts only real keys.
	head := &Node{key: math.MinInt64}
	tail := &Node{key: math.MaxInt64}
	head.next.Raw(unsafe.Pointer(tail))
	return &List{s: s, head: head, tail: tail}
}

// EnableLinking switches the list into linking mode: nodes publish with
// LINKING set, PutInOpHinted returns the published node, and the caller
// must call FinishLinking once it stops touching it. purge, if non-nil,
// runs exactly once per retired node — after the node is unlinked and
// marked, before it is Retired — to detach any index state still naming
// it (the skiplist clears its column's node pointer here). Must be
// called before the list is shared.
func (l *List) EnableLinking(purge func(*core.Thread, *Node)) {
	l.linking = true
	l.purge = purge
}

// retire resolves a won unlink through the handoff state machine: the
// sole caller-side entry point for retiring a node. Runs outside the
// write phase (see the package comment).
func (l *List) retire(t *core.Thread, victim *Node) {
	if st := victim.state.Or(stateRetireReq); st&stateLinking != 0 {
		// The inserter is still touching the node (index splice in
		// flight): hand the retire off to its FinishLinking.
		l.s.deferred.Add(1)
		return
	}
	if l.purge != nil {
		l.purge(t, victim)
	}
	t.Retire(&victim.Header)
}

// FinishLinking releases a published node's LINKING bit. If an unlink
// winner requested the retire while the caller was still linking, the
// handoff lands here: purge + Retire, exactly once.
func (l *List) FinishLinking(t *core.Thread, n *Node) {
	if st := n.state.And(^stateLinking); st&stateRetireReq != 0 {
		l.s.adopted.Add(1)
		if l.purge != nil {
			l.purge(t, n)
		}
		t.Retire(&n.Header)
	}
}

// Reservation slots. The traversal rotates roles among three physical
// slots so advancing never re-publishes (Michael's index-rotation trick).
// Hinted walks substitute the caller's hint slot for slotC in the
// rotation, so the two walk flavors use disjoint slot sets only by
// convention, never by requirement — each operation owns all its slots.
const (
	slotA = 0
	slotB = 1
	slotC = 2
)

// position is the state of a walk at its stopping point: the
// predecessor cell and both nodes, with pred protected in sPred and
// curr in sCurr.
type position struct {
	predCell *core.Atomic
	pred     *Node // protected; may be head sentinel or the caller's hint
	curr     *Node // protected; tail sentinel if key > all
	next     *Node // protected; successor of curr (nil iff curr==tail)
	sPred    int   // slot currently protecting pred
	sCurr    int   // slot currently protecting curr
	sNext    int   // slot currently protecting next
}

// find locates the first unmarked node with key >= key, unlinking marked
// nodes on the way. ok=false means the operation was neutralized (NBR)
// and must restart from StartOp level.
func (l *List) find(t *core.Thread, key int64) (pos position, ok bool) {
retry:
	pos = position{
		predCell: &l.head.next,
		pred:     l.head,
		sPred:    slotC, sCurr: slotA, sNext: slotB,
	}
	craw, okp := t.Protect(pos.sCurr, pos.predCell)
	if !okp {
		return pos, false
	}
	if core.Marked(craw) {
		// Head is never deleted; a marked head.next is impossible.
		panic("hmlist: head.next marked")
	}
	pos.curr = (*Node)(craw)
	for {
		if pos.curr == l.tail {
			pos.next = nil
			return pos, true
		}
		nraw, okp := t.Protect(pos.sNext, &pos.curr.next)
		if !okp {
			return pos, false
		}
		// Validate the edge: pred must still point at curr (and pred must
		// not have been logically deleted, which would mark this cell).
		if pos.predCell.Load() != unsafe.Pointer(pos.curr) {
			goto retry
		}
		if core.Marked(nraw) {
			// curr is logically deleted (or replaced): help unlink it. For
			// a replaced node the masked successor is the same-key
			// replacement, so the walk lands on the key's live node.
			next := (*Node)(core.Mask(nraw))
			if !t.EnterWritePhase() {
				return pos, false
			}
			if !pos.predCell.CompareAndSwap(unsafe.Pointer(pos.curr), unsafe.Pointer(next)) {
				t.ExitWritePhase()
				goto retry
			}
			t.ExitWritePhase()
			l.retire(t, pos.curr)
			// next keeps its protection and becomes curr.
			pos.curr = next
			pos.sCurr, pos.sNext = pos.sNext, pos.sCurr
			continue
		}
		next := (*Node)(nraw)
		if pos.curr.key >= key {
			pos.next = next
			return pos, true
		}
		// Advance: curr becomes pred, next becomes curr; the old pred
		// slot is recycled for the next protection.
		pos.pred = pos.curr
		pos.predCell = &pos.curr.next
		pos.curr = next
		pos.sPred, pos.sCurr, pos.sNext = pos.sCurr, pos.sNext, pos.sPred
	}
}

// findFrom is find starting at a hinted node (key strictly below the
// target, protected by the caller in sStart) instead of the head. Any
// validation failure returns valid=false instead of restarting: the
// walk origin may be stale, so only the caller — who owns the index
// that produced it — can pick a fresh one. With start=nil it is exactly
// find (valid always true).
func (l *List) findFrom(t *core.Thread, key int64, start *Node, sStart int) (pos position, ok, valid bool) {
	if start == nil {
		pos, ok = l.find(t, key)
		return pos, ok, true
	}
	pos = position{
		predCell: &start.next,
		pred:     start,
		sPred:    sStart, sCurr: slotA, sNext: slotB,
	}
	craw, okp := t.Protect(pos.sCurr, pos.predCell)
	if !okp {
		return pos, false, false
	}
	if core.Marked(craw) {
		// The hint itself was deleted under us: its links are no longer
		// a valid walk origin.
		return pos, true, false
	}
	pos.curr = (*Node)(craw)
	for {
		if pos.curr == l.tail {
			pos.next = nil
			return pos, true, true
		}
		nraw, okp := t.Protect(pos.sNext, &pos.curr.next)
		if !okp {
			return pos, false, false
		}
		if pos.predCell.Load() != unsafe.Pointer(pos.curr) {
			return pos, true, false
		}
		if core.Marked(nraw) {
			next := (*Node)(core.Mask(nraw))
			if !t.EnterWritePhase() {
				return pos, false, false
			}
			if !pos.predCell.CompareAndSwap(unsafe.Pointer(pos.curr), unsafe.Pointer(next)) {
				t.ExitWritePhase()
				return pos, true, false
			}
			t.ExitWritePhase()
			l.retire(t, pos.curr)
			pos.curr = next
			pos.sCurr, pos.sNext = pos.sNext, pos.sCurr
			continue
		}
		next := (*Node)(nraw)
		if pos.curr.key >= key {
			pos.next = next
			return pos, true, true
		}
		pos.pred = pos.curr
		pos.predCell = &pos.curr.next
		pos.curr = next
		pos.sPred, pos.sCurr, pos.sNext = pos.sCurr, pos.sNext, pos.sPred
	}
}

// Contains reports whether key is in the map.
func (l *List) Contains(t *core.Thread, key int64) bool {
	_, ok := l.Get(t, key)
	return ok
}

// Get returns the value mapped to key.
func (l *List) Get(t *core.Thread, key int64) (uint64, bool) {
	t.StartOp()
	defer t.EndOp()
	return l.GetInOp(t, key)
}

// GetInOp is Get's body without the StartOp/EndOp bracket: the caller
// must already be inside an operation on t. It exists for batch
// wrappers (GetBatch here, the hash table's cross-bucket batch) that
// amortize one protected entry/exit over many lookups.
func (l *List) GetInOp(t *core.Thread, key int64) (uint64, bool) {
	for {
		v, present, valid := l.GetInOpHinted(t, key, nil, 0)
		if valid {
			return v, present
		}
	}
}

// GetInOpHinted is GetInOp resuming at a hinted start node (see
// findFrom). valid=false: the hint was stale, re-descend.
func (l *List) GetInOpHinted(t *core.Thread, key int64, start *Node, sStart int) (v uint64, present, valid bool) {
	for {
		pos, ok, val := l.findFrom(t, key, start, sStart)
		if !ok || !val {
			if start != nil {
				return 0, false, false
			}
			continue // neutralized head walk: retry within the operation
		}
		if pos.curr == l.tail || pos.curr.key != key {
			return 0, false, true
		}
		// curr is protected and its value immutable: a plain read is the
		// value the node was published with.
		return pos.curr.val, true, true
	}
}

// GetBatch looks up every keys[i] inside one protected operation,
// recording results in vals[i] and present[i] (the ds.BatchGetter
// contract).
func (l *List) GetBatch(t *core.Thread, keys []int64, vals []uint64, present []bool) {
	t.StartOp()
	defer t.EndOp()
	for i, key := range keys {
		vals[i], present[i] = l.GetInOp(t, key)
	}
}

// Insert adds key with the zero value; false if already present.
func (l *List) Insert(t *core.Thread, key int64) bool {
	return l.PutIfAbsent(t, key, 0)
}

// PutIfAbsent maps key to val only if key is absent.
func (l *List) PutIfAbsent(t *core.Thread, key int64, val uint64) bool {
	ok, _, _ := l.put(t, key, val, false)
	return ok
}

// Put maps key to val, overwriting; returns the previous value.
func (l *List) Put(t *core.Thread, key int64, val uint64) (uint64, bool) {
	_, old, replaced := l.put(t, key, val, true)
	return old, replaced
}

// PutInOp is Put's body without the StartOp/EndOp bracket: the caller
// must already be inside an operation on t. It exists for batch
// wrappers (PutBatch here, the hash table's cross-bucket batch) that
// amortize one protected entry/exit over many upserts.
func (l *List) PutInOp(t *core.Thread, key int64, val uint64) (uint64, bool) {
	_, old, replaced := l.putInOp(t, key, val, true)
	return old, replaced
}

// PutBatch upserts every keys[i] inside one protected operation,
// recording the replaced values in old[i]/replaced[i] (the
// ds.BatchPutter contract).
func (l *List) PutBatch(t *core.Thread, keys []int64, vals []uint64, old []uint64, replaced []bool) {
	t.StartOp()
	defer t.EndOp()
	for i, key := range keys {
		old[i], replaced[i] = l.PutInOp(t, key, vals[i])
	}
}

// put is the shared insert/overwrite path. With overwrite=false it
// reports whether it inserted; with overwrite=true it always installs
// val and reports the value it replaced, using replace-node-and-retire
// on a present key (see the package comment).
func (l *List) put(t *core.Thread, key int64, val uint64, overwrite bool) (inserted bool, old uint64, replaced bool) {
	t.StartOp()
	defer t.EndOp()
	return l.putInOp(t, key, val, overwrite)
}

// putInOp is put inside an already-open operation. An NBR
// neutralization restarts the find loop within the operation, matching
// GetInOp's discipline. In linking mode the published node's LINKING
// bit is released immediately — this path builds no index, so the node
// is never touched after publication.
func (l *List) putInOp(t *core.Thread, key int64, val uint64, overwrite bool) (inserted bool, old uint64, replaced bool) {
	for {
		out, valid := l.PutInOpHinted(t, key, val, overwrite, nil, 0)
		if !valid {
			continue
		}
		if out.New != nil && l.linking {
			l.FinishLinking(t, out.New)
		}
		return out.Inserted, out.Old, out.Replaced
	}
}

// PutOutcome is the result of PutInOpHinted. New is the node the call
// published (insert or replacement), nil if nothing was published; in
// linking mode the caller owns its LINKING bit and must call
// FinishLinking once it stops touching it.
type PutOutcome struct {
	Inserted bool
	Old      uint64
	Replaced bool
	New      *Node
}

// PutInOpHinted is the upsert body resuming at a hinted start node (see
// findFrom). valid=false: the hint went stale or a CAS lost its race —
// nothing was published, re-descend and retry. With start=nil it
// retries internally and always returns valid=true.
func (l *List) PutInOpHinted(t *core.Thread, key int64, val uint64, overwrite bool, start *Node, sStart int) (out PutOutcome, valid bool) {
	checkKey(key)
	cache := l.s.cacheFor(t)
	var n *Node
	for {
		pos, ok, val2 := l.findFrom(t, key, start, sStart)
		if !ok || !val2 {
			if start != nil {
				goto fail
			}
			continue
		}
		if pos.curr != l.tail && pos.curr.key == key {
			if !overwrite {
				if n != nil {
					cache.Put(n)
				}
				return PutOutcome{Old: pos.curr.val, Replaced: true}, true
			}
			// Overwrite: replace the victim. One CAS marks it and links
			// the replacement behind it, so the key is never absent.
			victim := pos.curr // protected in pos.sCurr
			if n == nil {
				n = l.alloc(t, cache, key, val)
			}
			n.next.Raw(unsafe.Pointer(pos.next))
			// Snapshot the replaced value before the CAS: the victim is
			// immutable, and once it is retired a neutralized thread (NBR)
			// must not touch it again.
			old := victim.val
			if !t.EnterWritePhase() {
				if start != nil {
					goto fail
				}
				continue
			}
			if !victim.next.CompareAndSwap(unsafe.Pointer(pos.next), core.WithMark(unsafe.Pointer(n))) {
				// Lost to a racing delete/overwrite: re-find. n stays
				// private and is reused (head walk) or returned (hinted).
				t.ExitWritePhase()
				if start != nil {
					goto fail
				}
				continue
			}
			// Linearized: n replaced victim. Physically unlink the victim;
			// on failure some traversal will help (and resolve the retire).
			if pos.predCell.CompareAndSwap(unsafe.Pointer(victim), unsafe.Pointer(n)) {
				t.ExitWritePhase()
				l.retire(t, victim)
			} else {
				t.ExitWritePhase()
			}
			return PutOutcome{Old: old, Replaced: true, New: n}, true
		}
		if n == nil {
			n = l.alloc(t, cache, key, val)
		}
		n.next.Raw(unsafe.Pointer(pos.curr))
		if !t.EnterWritePhase() {
			if start != nil {
				goto fail
			}
			continue
		}
		if pos.predCell.CompareAndSwap(unsafe.Pointer(pos.curr), unsafe.Pointer(n)) {
			t.ExitWritePhase()
			return PutOutcome{Inserted: true, New: n}, true
		}
		t.ExitWritePhase()
		if start != nil {
			goto fail
		}
	}
fail:
	if n != nil {
		// Never published: return straight to the pool.
		cache.Put(n)
	}
	return PutOutcome{}, false
}

// alloc draws and initialises an unpublished node. The state word is
// always re-stored: a recycled node carries its previous life's bits.
func (l *List) alloc(t *core.Thread, cache *arena.ThreadCache[Node], key int64, val uint64) *Node {
	n := cache.Get()
	n.key = key
	n.val = val
	st := uint32(0)
	if l.linking {
		st = stateLinking
	}
	n.state.Store(st)
	t.OnAlloc(&n.Header, l.s.typ)
	return n
}

// Delete removes key and returns the value it removed.
func (l *List) Delete(t *core.Thread, key int64) (uint64, bool) {
	t.StartOp()
	defer t.EndOp()
	for {
		old, removed, valid := l.DeleteInOpHinted(t, key, nil, 0)
		if valid {
			return old, removed
		}
	}
}

// DeleteInOpHinted is Delete's body resuming at a hinted start node
// (see findFrom). valid=false: the hint went stale or the mark CAS lost
// its race — nothing was removed, re-descend and retry.
func (l *List) DeleteInOpHinted(t *core.Thread, key int64, start *Node, sStart int) (old uint64, removed, valid bool) {
	checkKey(key)
	for {
		pos, ok, val := l.findFrom(t, key, start, sStart)
		if !ok || !val {
			if start != nil {
				return 0, false, false
			}
			continue
		}
		if pos.curr == l.tail || pos.curr.key != key {
			return 0, false, true
		}
		// Snapshot before the mark CAS: values are immutable, and after
		// the retire a neutralized thread must not touch the node.
		old = pos.curr.val
		if !t.EnterWritePhase() {
			if start != nil {
				return 0, false, false
			}
			continue
		}
		// Logical delete: mark curr.next. pos.next is protected, so the
		// CAS succeeding means no successor change raced us.
		if !pos.curr.next.CompareAndSwap(unsafe.Pointer(pos.next), core.WithMark(unsafe.Pointer(pos.next))) {
			t.ExitWritePhase()
			if start != nil {
				return 0, false, false
			}
			continue
		}
		// Physical unlink; on failure some traversal will help (and
		// resolve the retire through the same handoff).
		if pos.predCell.CompareAndSwap(unsafe.Pointer(pos.curr), unsafe.Pointer(pos.next)) {
			t.ExitWritePhase()
			l.retire(t, pos.curr)
		} else {
			t.ExitWritePhase()
		}
		return old, true, true
	}
}

// ScanInOpHinted walks keys in [from, hi] ascending, resuming at a
// hinted start node (see findFrom; start=nil walks from the head),
// emitting every (key, value) pair observed unmarked while validated
// reachable. done=true: the scan passed hi (or emit returned false).
// done=false: a hop failed validation, was neutralized, or hit a marked
// node (whose links are not a safe bridge) — re-descend and call again
// with from=resume; keys below resume were emitted and are never
// revisited, keeping output sorted and unique.
func (l *List) ScanInOpHinted(t *core.Thread, from, hi int64, start *Node, sStart int, emit func(int64, uint64) bool) (resume int64, done bool) {
	pos, ok, valid := l.findFrom(t, from, start, sStart)
	if !ok || !valid {
		return from, false
	}
	predCell, curr := pos.predCell, pos.curr
	// Full three-slot rotation, exactly as in the find walk: the node
	// holding predCell must keep its reservation through the validation
	// read below, so the slot reused for each new protect is the one two
	// hops back, never the current predecessor's.
	sPred, sCurr, sNext := pos.sPred, pos.sCurr, pos.sNext
	for {
		if curr == l.tail || curr.key > hi {
			return 0, true
		}
		// Snapshot the key and value while curr is still protected: a
		// failed Protect below means we were neutralized and curr may be
		// reclaimed before the !ok branch runs.
		k, v := curr.key, curr.val
		nraw, okp := t.Protect(sNext, &curr.next)
		if !okp {
			return k, false // neutralized: re-descend
		}
		if predCell.Load() != unsafe.Pointer(curr) {
			return k, false // chain changed behind us: re-descend
		}
		if core.Marked(nraw) {
			// curr was deleted or replaced under the scan: resume at its
			// key (the re-descent finds the replacement if there is one,
			// whose key has not been emitted yet).
			return k, false
		}
		if !emit(k, v) {
			return 0, true
		}
		predCell = &curr.next
		curr = (*Node)(nraw)
		sPred, sCurr, sNext = sCurr, sNext, sPred
	}
}

// Size counts the unmarked nodes. Quiescent use only.
func (l *List) Size(t *core.Thread) int {
	n := 0
	for c := (*Node)(core.Mask(l.head.next.Load())); c != l.tail; {
		nraw := c.next.Load()
		if !core.Marked(nraw) {
			n++
		}
		c = (*Node)(core.Mask(nraw))
	}
	return n
}

func checkKey(key int64) {
	if key == math.MinInt64 || key == math.MaxInt64 {
		panic("hmlist: key collides with sentinel")
	}
}

// Outstanding reports pool-level live+retired nodes (memory metric).
func (l *List) Outstanding() int64 { return l.s.Outstanding() }
