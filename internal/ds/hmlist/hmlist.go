// Package hmlist implements the Harris-Michael lock-free linked-list set
// (HML in the paper's plots; Michael [42], building on Harris [29]).
//
// Nodes are sorted by key between two sentinels. Deletion is two-phase:
// a CAS sets the mark bit in the victim's next field (logical delete),
// then a CAS swings the predecessor's next past it (physical unlink).
// Traversals help unlink marked nodes they encounter, which is what makes
// every traversal a potential reclaimer interaction — the property that
// makes this list the paper's most SMR-sensitive benchmark (per-read
// protection cost is paid on every hop of every operation).
//
// Reservation discipline (Michael's, adapted to the core API): three
// rotating slots protect pred, curr and next; after protecting curr's
// successor the traversal re-validates pred.next == curr, restarting from
// the head on failure. Under NBR the unlink/insert/delete CASes are
// bracketed by EnterWritePhase/ExitWritePhase and a neutralized Protect
// restarts the whole operation.
package hmlist

import (
	"math"
	"unsafe"

	"pop/internal/arena"
	"pop/internal/core"
)

// node is a list cell. Header must be first (reclamation contract).
// The mark bit of next tags *this* node as logically deleted.
type node struct {
	core.Header
	key  int64
	next core.Atomic
}

// Shared is the allocation state that one or more lists built over the
// same domain can share — the hash table creates one Shared and thousands
// of bucket Lists.
type Shared struct {
	d      *core.Domain
	typ    uint8
	pool   *arena.Pool[node]
	caches []*arena.ThreadCache[node] // indexed by thread id, owner-only
}

// NewShared creates the node pool for lists in domain d.
func NewShared(d *core.Domain) *Shared {
	s := &Shared{
		d:      d,
		pool:   arena.NewPool[node](nil, nil),
		caches: make([]*arena.ThreadCache[node], d.MaxThreads()),
	}
	s.typ = d.RegisterType(func(t *core.Thread, h *core.Header) {
		s.cacheFor(t).Put((*node)(unsafe.Pointer(h)))
	})
	return s
}

// Outstanding reports pool-level live+retired nodes (memory metric).
func (s *Shared) Outstanding() int64 { return s.pool.Outstanding() }

// cacheFor returns t's allocation cache, creating it on first use. The
// slot is only ever touched by t's goroutine.
func (s *Shared) cacheFor(t *core.Thread) *arena.ThreadCache[node] {
	c := s.caches[t.ID()]
	if c == nil {
		c = s.pool.NewCache()
		s.caches[t.ID()] = c
	}
	return c
}

// List is a Harris-Michael sorted-list set.
type List struct {
	s    *Shared
	head *node
	tail *node
}

// New creates a standalone list (with its own Shared pool) in domain d.
func New(d *core.Domain) *List { return NewWithShared(NewShared(d)) }

// NewWithShared creates a list drawing nodes from an existing pool.
func NewWithShared(s *Shared) *List {
	// Sentinels come from the Go heap, not the pool: they are never
	// retired, and keeping them out of the pool means pool.Outstanding
	// counts only real keys.
	head := &node{key: math.MinInt64}
	tail := &node{key: math.MaxInt64}
	head.next.Raw(unsafe.Pointer(tail))
	return &List{s: s, head: head, tail: tail}
}

// Reservation slots. The traversal rotates roles among three physical
// slots so advancing never re-publishes (Michael's index-rotation trick).
const (
	slotA = 0
	slotB = 1
	slotC = 2
)

// find locates the first unmarked node with key >= key, unlinking marked
// nodes on the way. It returns the predecessor cell and both nodes with
// pred protected in sPred and curr in sCurr. ok=false means the operation
// was neutralized (NBR) and must restart from StartOp level.
type position struct {
	predCell *core.Atomic
	pred     *node // protected; may be head sentinel
	curr     *node // protected; tail sentinel if key > all
	next     *node // protected; successor of curr (nil iff curr==tail)
	sPred    int   // slot currently protecting pred
	sCurr    int   // slot currently protecting curr
	sNext    int   // slot currently protecting next
}

func (l *List) find(t *core.Thread, key int64) (pos position, ok bool) {
retry:
	pos = position{
		predCell: &l.head.next,
		pred:     l.head,
		sPred:    slotC, sCurr: slotA, sNext: slotB,
	}
	craw, okp := t.Protect(pos.sCurr, pos.predCell)
	if !okp {
		return pos, false
	}
	if core.Marked(craw) {
		// Head is never deleted; a marked head.next is impossible.
		panic("hmlist: head.next marked")
	}
	pos.curr = (*node)(craw)
	for {
		if pos.curr == l.tail {
			pos.next = nil
			return pos, true
		}
		nraw, okp := t.Protect(pos.sNext, &pos.curr.next)
		if !okp {
			return pos, false
		}
		// Validate the edge: pred must still point at curr (and pred must
		// not have been logically deleted, which would mark this cell).
		if pos.predCell.Load() != unsafe.Pointer(pos.curr) {
			goto retry
		}
		if core.Marked(nraw) {
			// curr is logically deleted: help unlink it.
			next := (*node)(core.Mask(nraw))
			if !t.EnterWritePhase() {
				return pos, false
			}
			if !pos.predCell.CompareAndSwap(unsafe.Pointer(pos.curr), unsafe.Pointer(next)) {
				t.ExitWritePhase()
				goto retry
			}
			t.Retire(&pos.curr.Header)
			t.ExitWritePhase()
			// next keeps its protection and becomes curr.
			pos.curr = next
			pos.sCurr, pos.sNext = pos.sNext, pos.sCurr
			continue
		}
		next := (*node)(nraw)
		if pos.curr.key >= key {
			pos.next = next
			return pos, true
		}
		// Advance: curr becomes pred, next becomes curr; the old pred
		// slot is recycled for the next protection.
		pos.pred = pos.curr
		pos.predCell = &pos.curr.next
		pos.curr = next
		pos.sPred, pos.sCurr, pos.sNext = pos.sCurr, pos.sNext, pos.sPred
	}
}

// Contains reports whether key is in the set.
func (l *List) Contains(t *core.Thread, key int64) bool {
	t.StartOp()
	defer t.EndOp()
	for {
		pos, ok := l.find(t, key)
		if !ok {
			continue // neutralized: restart
		}
		return pos.curr != l.tail && pos.curr.key == key
	}
}

// Insert adds key; false if already present.
func (l *List) Insert(t *core.Thread, key int64) bool {
	checkKey(key)
	t.StartOp()
	defer t.EndOp()
	cache := l.s.cacheFor(t)
	var n *node
	for {
		pos, ok := l.find(t, key)
		if !ok {
			continue
		}
		if pos.curr != l.tail && pos.curr.key == key {
			if n != nil {
				// Never published: return straight to the pool.
				cache.Put(n)
			}
			return false
		}
		if n == nil {
			n = cache.Get()
			n.key = key
			t.OnAlloc(&n.Header, l.s.typ)
		}
		n.next.Raw(unsafe.Pointer(pos.curr))
		if !t.EnterWritePhase() {
			continue
		}
		if pos.predCell.CompareAndSwap(unsafe.Pointer(pos.curr), unsafe.Pointer(n)) {
			t.ExitWritePhase()
			return true
		}
		t.ExitWritePhase()
	}
}

// Delete removes key; false if absent.
func (l *List) Delete(t *core.Thread, key int64) bool {
	checkKey(key)
	t.StartOp()
	defer t.EndOp()
	for {
		pos, ok := l.find(t, key)
		if !ok {
			continue
		}
		if pos.curr == l.tail || pos.curr.key != key {
			return false
		}
		if !t.EnterWritePhase() {
			continue
		}
		// Logical delete: mark curr.next. pos.next is protected, so the
		// CAS succeeding means no successor change raced us.
		if !pos.curr.next.CompareAndSwap(unsafe.Pointer(pos.next), core.WithMark(unsafe.Pointer(pos.next))) {
			t.ExitWritePhase()
			continue
		}
		// Physical unlink; on failure some traversal will help.
		if pos.predCell.CompareAndSwap(unsafe.Pointer(pos.curr), unsafe.Pointer(pos.next)) {
			t.Retire(&pos.curr.Header)
		}
		t.ExitWritePhase()
		return true
	}
}

// Size counts the unmarked nodes. Quiescent use only.
func (l *List) Size(t *core.Thread) int {
	n := 0
	for c := (*node)(core.Mask(l.head.next.Load())); c != l.tail; {
		nraw := c.next.Load()
		if !core.Marked(nraw) {
			n++
		}
		c = (*node)(core.Mask(nraw))
	}
	return n
}

func checkKey(key int64) {
	if key == math.MinInt64 || key == math.MaxInt64 {
		panic("hmlist: key collides with sentinel")
	}
}

// Outstanding reports pool-level live+retired nodes (memory metric).
func (l *List) Outstanding() int64 { return l.s.Outstanding() }
