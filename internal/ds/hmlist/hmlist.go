// Package hmlist implements the Harris-Michael lock-free linked-list
// map (HML in the paper's plots; Michael [42], building on Harris [29]).
//
// Nodes are sorted by key between two sentinels. Deletion is two-phase:
// a CAS sets the mark bit in the victim's next field (logical delete),
// then a CAS swings the predecessor's next past it (physical unlink).
// Traversals help unlink marked nodes they encounter, which is what makes
// every traversal a potential reclaimer interaction — the property that
// makes this list the paper's most SMR-sensitive benchmark (per-read
// protection cost is paid on every hop of every operation).
//
// # Overwrite strategy: replace-node-and-retire
//
// Node values are immutable once published. Storing a new value into a
// live node looks tempting, but the node can be CAS-marked (logically
// deleted) between the lookup and the store, and a concurrent Get could
// then observe a value the map never held — the in-place path is not
// linearizable on a lock-free list. Instead Put on a present key links
// a fresh node carrying the new value directly behind the victim with
// the very CAS that marks the victim:
//
//	victim.next: succ  ->  mark(new)     where new.next = succ
//
// A single CAS therefore (a) logically deletes the victim and (b) makes
// the replacement the continuation of the chain, so traversals that snip
// the marked victim land on a node with the same key and the new value —
// the key is never absent. The victim retires through the ordinary
// deletion path (unlink winner retires), which makes every overwrite a
// retirement: value churn alone now exercises the reclamation layer.
//
// Reservation discipline (Michael's, adapted to the core API): three
// rotating slots protect pred, curr and next; after protecting curr's
// successor the traversal re-validates pred.next == curr, restarting from
// the head on failure. Under NBR the unlink/insert/delete CASes are
// bracketed by EnterWritePhase/ExitWritePhase and a neutralized Protect
// restarts the whole operation.
package hmlist

import (
	"math"
	"unsafe"

	"pop/internal/arena"
	"pop/internal/core"
)

// node is a list cell. Header must be first (reclamation contract).
// The mark bit of next tags *this* node as logically deleted. key and
// val are immutable once the node is published (see the package comment
// for why values are never stored in place).
type node struct {
	core.Header
	key  int64
	val  uint64
	next core.Atomic
}

// Shared is the allocation state that one or more lists built over the
// same domain can share — the hash table creates one Shared and thousands
// of bucket Lists.
type Shared struct {
	d      *core.Domain
	typ    uint8
	pool   *arena.Pool[node]
	caches []*arena.ThreadCache[node] // indexed by thread id, owner-only
}

// NewShared creates the node pool for lists in domain d.
func NewShared(d *core.Domain) *Shared {
	s := &Shared{
		d:      d,
		pool:   arena.NewPool[node](nil, nil),
		caches: make([]*arena.ThreadCache[node], d.MaxThreads()),
	}
	s.typ = d.RegisterType(func(t *core.Thread, h *core.Header) {
		s.cacheFor(t).Put((*node)(unsafe.Pointer(h)))
	})
	return s
}

// Outstanding reports pool-level live+retired nodes (memory metric).
func (s *Shared) Outstanding() int64 { return s.pool.Outstanding() }

// cacheFor returns t's allocation cache, creating it on first use. The
// slot is only ever touched by t's goroutine.
func (s *Shared) cacheFor(t *core.Thread) *arena.ThreadCache[node] {
	c := s.caches[t.ID()]
	if c == nil {
		c = s.pool.NewCache()
		s.caches[t.ID()] = c
	}
	return c
}

// List is a Harris-Michael sorted-list map.
type List struct {
	s    *Shared
	head *node
	tail *node
}

// New creates a standalone list (with its own Shared pool) in domain d.
func New(d *core.Domain) *List { return NewWithShared(NewShared(d)) }

// NewWithShared creates a list drawing nodes from an existing pool.
func NewWithShared(s *Shared) *List {
	// Sentinels come from the Go heap, not the pool: they are never
	// retired, and keeping them out of the pool means pool.Outstanding
	// counts only real keys.
	head := &node{key: math.MinInt64}
	tail := &node{key: math.MaxInt64}
	head.next.Raw(unsafe.Pointer(tail))
	return &List{s: s, head: head, tail: tail}
}

// Reservation slots. The traversal rotates roles among three physical
// slots so advancing never re-publishes (Michael's index-rotation trick).
const (
	slotA = 0
	slotB = 1
	slotC = 2
)

// find locates the first unmarked node with key >= key, unlinking marked
// nodes on the way. It returns the predecessor cell and both nodes with
// pred protected in sPred and curr in sCurr. ok=false means the operation
// was neutralized (NBR) and must restart from StartOp level.
type position struct {
	predCell *core.Atomic
	pred     *node // protected; may be head sentinel
	curr     *node // protected; tail sentinel if key > all
	next     *node // protected; successor of curr (nil iff curr==tail)
	sPred    int   // slot currently protecting pred
	sCurr    int   // slot currently protecting curr
	sNext    int   // slot currently protecting next
}

func (l *List) find(t *core.Thread, key int64) (pos position, ok bool) {
retry:
	pos = position{
		predCell: &l.head.next,
		pred:     l.head,
		sPred:    slotC, sCurr: slotA, sNext: slotB,
	}
	craw, okp := t.Protect(pos.sCurr, pos.predCell)
	if !okp {
		return pos, false
	}
	if core.Marked(craw) {
		// Head is never deleted; a marked head.next is impossible.
		panic("hmlist: head.next marked")
	}
	pos.curr = (*node)(craw)
	for {
		if pos.curr == l.tail {
			pos.next = nil
			return pos, true
		}
		nraw, okp := t.Protect(pos.sNext, &pos.curr.next)
		if !okp {
			return pos, false
		}
		// Validate the edge: pred must still point at curr (and pred must
		// not have been logically deleted, which would mark this cell).
		if pos.predCell.Load() != unsafe.Pointer(pos.curr) {
			goto retry
		}
		if core.Marked(nraw) {
			// curr is logically deleted (or replaced): help unlink it. For
			// a replaced node the masked successor is the same-key
			// replacement, so the walk lands on the key's live node.
			next := (*node)(core.Mask(nraw))
			if !t.EnterWritePhase() {
				return pos, false
			}
			if !pos.predCell.CompareAndSwap(unsafe.Pointer(pos.curr), unsafe.Pointer(next)) {
				t.ExitWritePhase()
				goto retry
			}
			t.Retire(&pos.curr.Header)
			t.ExitWritePhase()
			// next keeps its protection and becomes curr.
			pos.curr = next
			pos.sCurr, pos.sNext = pos.sNext, pos.sCurr
			continue
		}
		next := (*node)(nraw)
		if pos.curr.key >= key {
			pos.next = next
			return pos, true
		}
		// Advance: curr becomes pred, next becomes curr; the old pred
		// slot is recycled for the next protection.
		pos.pred = pos.curr
		pos.predCell = &pos.curr.next
		pos.curr = next
		pos.sPred, pos.sCurr, pos.sNext = pos.sCurr, pos.sNext, pos.sPred
	}
}

// Contains reports whether key is in the map.
func (l *List) Contains(t *core.Thread, key int64) bool {
	_, ok := l.Get(t, key)
	return ok
}

// Get returns the value mapped to key.
func (l *List) Get(t *core.Thread, key int64) (uint64, bool) {
	t.StartOp()
	defer t.EndOp()
	return l.GetInOp(t, key)
}

// GetInOp is Get's body without the StartOp/EndOp bracket: the caller
// must already be inside an operation on t. It exists for batch
// wrappers (GetBatch here, the hash table's cross-bucket batch) that
// amortize one protected entry/exit over many lookups.
func (l *List) GetInOp(t *core.Thread, key int64) (uint64, bool) {
	for {
		pos, ok := l.find(t, key)
		if !ok {
			continue // neutralized: retry within the operation
		}
		if pos.curr == l.tail || pos.curr.key != key {
			return 0, false
		}
		// curr is protected and its value immutable: a plain read is the
		// value the node was published with.
		return pos.curr.val, true
	}
}

// GetBatch looks up every keys[i] inside one protected operation,
// recording results in vals[i] and present[i] (the ds.BatchGetter
// contract).
func (l *List) GetBatch(t *core.Thread, keys []int64, vals []uint64, present []bool) {
	t.StartOp()
	defer t.EndOp()
	for i, key := range keys {
		vals[i], present[i] = l.GetInOp(t, key)
	}
}

// Insert adds key with the zero value; false if already present.
func (l *List) Insert(t *core.Thread, key int64) bool {
	return l.PutIfAbsent(t, key, 0)
}

// PutIfAbsent maps key to val only if key is absent.
func (l *List) PutIfAbsent(t *core.Thread, key int64, val uint64) bool {
	ok, _, _ := l.put(t, key, val, false)
	return ok
}

// Put maps key to val, overwriting; returns the previous value.
func (l *List) Put(t *core.Thread, key int64, val uint64) (uint64, bool) {
	_, old, replaced := l.put(t, key, val, true)
	return old, replaced
}

// PutInOp is Put's body without the StartOp/EndOp bracket: the caller
// must already be inside an operation on t. It exists for batch
// wrappers (PutBatch here, the hash table's cross-bucket batch) that
// amortize one protected entry/exit over many upserts.
func (l *List) PutInOp(t *core.Thread, key int64, val uint64) (uint64, bool) {
	_, old, replaced := l.putInOp(t, key, val, true)
	return old, replaced
}

// PutBatch upserts every keys[i] inside one protected operation,
// recording the replaced values in old[i]/replaced[i] (the
// ds.BatchPutter contract).
func (l *List) PutBatch(t *core.Thread, keys []int64, vals []uint64, old []uint64, replaced []bool) {
	t.StartOp()
	defer t.EndOp()
	for i, key := range keys {
		old[i], replaced[i] = l.PutInOp(t, key, vals[i])
	}
}

// put is the shared insert/overwrite path. With overwrite=false it
// reports whether it inserted; with overwrite=true it always installs
// val and reports the value it replaced, using replace-node-and-retire
// on a present key (see the package comment).
func (l *List) put(t *core.Thread, key int64, val uint64, overwrite bool) (inserted bool, old uint64, replaced bool) {
	t.StartOp()
	defer t.EndOp()
	return l.putInOp(t, key, val, overwrite)
}

// putInOp is put inside an already-open operation. An NBR
// neutralization restarts the find loop within the operation, matching
// GetInOp's discipline.
func (l *List) putInOp(t *core.Thread, key int64, val uint64, overwrite bool) (inserted bool, old uint64, replaced bool) {
	checkKey(key)
	cache := l.s.cacheFor(t)
	var n *node
	for {
		pos, ok := l.find(t, key)
		if !ok {
			continue
		}
		if pos.curr != l.tail && pos.curr.key == key {
			if !overwrite {
				if n != nil {
					// Never published: return straight to the pool.
					cache.Put(n)
				}
				return false, pos.curr.val, true
			}
			// Overwrite: replace the victim. One CAS marks it and links
			// the replacement behind it, so the key is never absent.
			victim := pos.curr // protected in pos.sCurr
			if n == nil {
				n = cache.Get()
				n.key = key
				n.val = val
				t.OnAlloc(&n.Header, l.s.typ)
			}
			n.next.Raw(unsafe.Pointer(pos.next))
			// Snapshot the replaced value before the CAS: the victim is
			// immutable, and once it is retired a neutralized thread (NBR)
			// must not touch it again.
			old = victim.val
			if !t.EnterWritePhase() {
				continue
			}
			if !victim.next.CompareAndSwap(unsafe.Pointer(pos.next), core.WithMark(unsafe.Pointer(n))) {
				// Lost to a racing delete/overwrite: re-find. n stays
				// private and is reused on the next attempt.
				t.ExitWritePhase()
				continue
			}
			// Linearized: n replaced victim. Physically unlink the victim;
			// on failure some traversal will help (and retire it).
			if pos.predCell.CompareAndSwap(unsafe.Pointer(victim), unsafe.Pointer(n)) {
				t.Retire(&victim.Header)
			}
			t.ExitWritePhase()
			return false, old, true
		}
		if n == nil {
			n = cache.Get()
			n.key = key
			n.val = val
			t.OnAlloc(&n.Header, l.s.typ)
		}
		n.next.Raw(unsafe.Pointer(pos.curr))
		if !t.EnterWritePhase() {
			continue
		}
		if pos.predCell.CompareAndSwap(unsafe.Pointer(pos.curr), unsafe.Pointer(n)) {
			t.ExitWritePhase()
			return true, 0, false
		}
		t.ExitWritePhase()
	}
}

// Delete removes key and returns the value it removed.
func (l *List) Delete(t *core.Thread, key int64) (uint64, bool) {
	checkKey(key)
	t.StartOp()
	defer t.EndOp()
	for {
		pos, ok := l.find(t, key)
		if !ok {
			continue
		}
		if pos.curr == l.tail || pos.curr.key != key {
			return 0, false
		}
		// Snapshot before the mark CAS: values are immutable, and after
		// the retire a neutralized thread must not touch the node.
		old := pos.curr.val
		if !t.EnterWritePhase() {
			continue
		}
		// Logical delete: mark curr.next. pos.next is protected, so the
		// CAS succeeding means no successor change raced us.
		if !pos.curr.next.CompareAndSwap(unsafe.Pointer(pos.next), core.WithMark(unsafe.Pointer(pos.next))) {
			t.ExitWritePhase()
			continue
		}
		// Physical unlink; on failure some traversal will help.
		if pos.predCell.CompareAndSwap(unsafe.Pointer(pos.curr), unsafe.Pointer(pos.next)) {
			t.Retire(&pos.curr.Header)
		}
		t.ExitWritePhase()
		return old, true
	}
}

// Size counts the unmarked nodes. Quiescent use only.
func (l *List) Size(t *core.Thread) int {
	n := 0
	for c := (*node)(core.Mask(l.head.next.Load())); c != l.tail; {
		nraw := c.next.Load()
		if !core.Marked(nraw) {
			n++
		}
		c = (*node)(core.Mask(nraw))
	}
	return n
}

func checkKey(key int64) {
	if key == math.MinInt64 || key == math.MaxInt64 {
		panic("hmlist: key collides with sentinel")
	}
}

// Outstanding reports pool-level live+retired nodes (memory metric).
func (l *List) Outstanding() int64 { return l.s.Outstanding() }
