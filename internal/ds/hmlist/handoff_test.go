package hmlist_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pop/internal/core"
	"pop/internal/ds/hmlist"
)

// TestRetireHandoffDeterministic forces one handoff single-threaded:
// publish a node in linking mode, delete it while LINKING is still
// held (the unlink winner must defer), then FinishLinking (which must
// adopt the deferred retire and run the purge hook exactly once).
func TestRetireHandoffDeterministic(t *testing.T) {
	d := core.NewDomain(core.EBR, 1, &core.Options{ReclaimThreshold: 16})
	s := hmlist.NewShared(d)
	l := hmlist.NewWithShared(s)
	var purges atomic.Int64
	l.EnableLinking(func(_ *core.Thread, n *hmlist.Node) {
		if n.Key() != 7 {
			t.Errorf("purge saw key %d, want 7", n.Key())
		}
		purges.Add(1)
	})
	th := d.RegisterThread()

	th.StartOp()
	out, valid := l.PutInOpHinted(th, 7, 77, true, nil, 0)
	th.EndOp()
	if !valid || !out.Inserted || out.New == nil {
		t.Fatalf("publish: valid=%v out=%+v", valid, out)
	}
	if _, removed := l.Delete(th, 7); !removed {
		t.Fatal("delete missed the published key")
	}
	if def, ad := s.Handoffs(); def != 1 || ad != 0 {
		t.Fatalf("after delete under LINKING: deferred=%d adopted=%d, want 1,0", def, ad)
	}
	if n := purges.Load(); n != 0 {
		t.Fatalf("purge ran %d times before FinishLinking", n)
	}
	th.StartOp()
	l.FinishLinking(th, out.New)
	th.EndOp()
	if def, ad := s.Handoffs(); def != 1 || ad != 1 {
		t.Fatalf("after FinishLinking: deferred=%d adopted=%d, want 1,1", def, ad)
	}
	if n := purges.Load(); n != 1 {
		t.Fatalf("purge ran %d times, want exactly 1", n)
	}
}

// TestRetireHandoffStorm is the chaos version, under every policy:
// writers publish in linking mode and dawdle before FinishLinking
// (occasionally sleeping — a stalled index splice) while overwrites
// and deletes on the same small key set race to win unlinks against
// live LINKING bits. At quiescence every deferred retire must have
// been adopted by exactly one FinishLinking, and the exactly-once
// ledger must close: nodes purged (retired) + nodes still live ==
// nodes published. A double retire overflows the ledger; a lost
// handoff (leaked node) underflows it.
func TestRetireHandoffStorm(t *testing.T) {
	const (
		workers = 4
		keys    = 64
		opsEach = 4000
	)
	var totalDeferred int64
	for _, p := range core.Policies() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			d := core.NewDomain(p, workers, &core.Options{
				ReclaimThreshold: 32,
				EpochFreq:        8,
			})
			s := hmlist.NewShared(d)
			l := hmlist.NewWithShared(s)
			var purges, published atomic.Int64
			l.EnableLinking(func(_ *core.Thread, _ *hmlist.Node) {
				purges.Add(1)
			})
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					th := d.RegisterThread()
					defer th.Release()
					seed := uint64(w)*0x9e3779b97f4a7c15 + 1
					for i := 0; i < opsEach; i++ {
						seed = seed*6364136223846793005 + 1442695040888963407
						k := int64((seed >> 33) % keys)
						if seed%10 < 6 {
							th.StartOp()
							out, valid := l.PutInOpHinted(th, k, seed, true, nil, 0)
							if !valid {
								t.Error("head-walk PutInOpHinted returned valid=false")
							}
							if out.New != nil {
								published.Add(1)
								// Hold LINKING open across scheduling points —
								// the window a racing unlink must hand off in.
								runtime.Gosched()
								if seed%251 == 0 {
									time.Sleep(50 * time.Microsecond)
								}
								l.FinishLinking(th, out.New)
							}
							th.EndOp()
						} else {
							l.Delete(th, k)
						}
					}
				}(w)
			}
			wg.Wait()
			def, ad := s.Handoffs()
			if def != ad {
				t.Fatalf("handoff imbalance: deferred=%d adopted=%d", def, ad)
			}
			th := d.RegisterThread()
			live := int64(l.Size(th))
			if got, want := purges.Load()+live, published.Load(); got != want {
				t.Fatalf("retire ledger: purged(%d) + live(%d) = %d, want published(%d)",
					purges.Load(), live, got, want)
			}
			totalDeferred += def
		})
	}
	// The storm must actually exercise the deferred path somewhere, or
	// the balance assertions above are vacuous.
	if totalDeferred == 0 {
		t.Error("no handoff was deferred under any policy; widen the LINKING window")
	}
}
