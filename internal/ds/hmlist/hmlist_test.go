package hmlist_test

import (
	"math"
	"testing"
	"testing/quick"

	"pop/internal/core"
	"pop/internal/ds"
	"pop/internal/ds/dstest"
	"pop/internal/ds/hmlist"
)

func TestConformance(t *testing.T) {
	dstest.Run(t, func(d *core.Domain) ds.Map { return hmlist.New(d) }, dstest.Config{
		KeyRange: 256, // short lists: maximal traversal contention
	})
}

func TestSentinelKeyPanics(t *testing.T) {
	d := core.NewDomain(core.EBR, 1, nil)
	l := hmlist.New(d)
	th := d.RegisterThread()
	for _, k := range []int64{math.MinInt64, math.MaxInt64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Insert(%d) did not panic", k)
				}
			}()
			l.Insert(th, k)
		}()
	}
}

// TestQuickSequentialEquivalence drives the list with random operation
// tapes and checks it behaves exactly like a map (property-based).
func TestQuickSequentialEquivalence(t *testing.T) {
	prop := func(tape []uint16) bool {
		d := core.NewDomain(core.HazardPtrPOP, 1, &core.Options{ReclaimThreshold: 16})
		th := d.RegisterThread()
		l := hmlist.New(d)
		ref := make(map[int64]bool)
		for _, w := range tape {
			k := int64(w % 64)
			switch (w / 64) % 3 {
			case 0:
				if l.Insert(th, k) == ref[k] {
					return false
				}
				ref[k] = true
			case 1:
				if _, ok := l.Delete(th, k); ok != ref[k] {
					return false
				}
				delete(ref, k)
			default:
				if l.Contains(th, k) != ref[k] {
					return false
				}
			}
		}
		return l.Size(th) == len(ref)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestHelpingUnlink checks that a traversal physically unlinks logically
// deleted nodes: after a delete whose unlink CAS lost, a later Contains
// must still not observe the key.
func TestHelpingUnlink(t *testing.T) {
	d := core.NewDomain(core.HP, 1, nil)
	l := hmlist.New(d)
	th := d.RegisterThread()
	for k := int64(0); k < 100; k++ {
		l.Insert(th, k)
	}
	for k := int64(0); k < 100; k += 3 {
		l.Delete(th, k)
	}
	for k := int64(0); k < 100; k++ {
		want := k%3 != 0
		if got := l.Contains(th, k); got != want {
			t.Fatalf("Contains(%d) = %v, want %v", k, got, want)
		}
	}
}
