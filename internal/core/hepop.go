package core

import (
	"time"
	"unsafe"
)

// hePOPAlgo is HazardEraPOP (paper Alg. 5): hazard eras with the
// publish-on-ping treatment. Reads reserve the current era in a private
// array — the fence HE pays on era change disappears entirely; the
// reservation becomes visible to reclaimers only on ping. Freeing uses
// HE's lifespan test against the published (plus the reclaimer's own
// private) era reservations.
type hePOPAlgo struct{ baseAlgo }

func (a *hePOPAlgo) protect(t *Thread, slot int, cell *Atomic) (unsafe.Pointer, bool) {
	t.checkPing((*Thread).publishEras)
	oldEra := t.localEras[slot]
	for {
		p := cell.Load()
		newEra := a.d.epoch.Load()
		if newEra == oldEra {
			return p, true
		}
		t.localEras[slot] = newEra // private: no fence (Alg. 5 line 16)
		oldEra = newEra
	}
}

func (a *hePOPAlgo) startOp(t *Thread) { t.checkPing((*Thread).publishEras) }

func (a *hePOPAlgo) endOp(t *Thread) { t.checkPing((*Thread).publishEras) }

func (a *hePOPAlgo) poll(t *Thread) { t.checkPing((*Thread).publishEras) }

func (a *hePOPAlgo) retireHook(t *Thread) {
	if t.sinceReclaim < a.d.opts.ReclaimThreshold {
		return
	}
	t.sinceReclaim = 0
	// As in HE, advance the era before reclaiming so new operations stop
	// pinning the current one.
	a.d.epoch.Add(1)
	a.reclaim(t)
}

// reclaim: see hppop.go's slot-lifecycle audit — identical here, with
// era reservations in place of pointers (released slots read eraNone in
// every era slot and are skipped as quiescent by pingAllAndWait).
func (a *hePOPAlgo) reclaim(t *Thread) {
	defer a.d.recordPass(time.Now())
	t.stats.Reclaims++
	t.adoptOrphans()
	skip := t.pingAllAndWait((*Thread).publishEras)
	eras := t.collectEraList(skip)
	t.freeOutsideEras(eras)
}

func (a *hePOPAlgo) flush(t *Thread) {
	a.d.epoch.Add(1)
	a.reclaim(t)
}
