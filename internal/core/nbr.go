package core

import (
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// nbrAlgo is NBR+ (Singh, Brown & Mashtizadeh [54,57]), the strongest
// baseline in the paper's plots. Operations are structured into a read
// phase and a write phase:
//
//   - Read phase: reads are plain loads with no published reservations. A
//     reclaimer that wants to free memory "neutralizes" all threads (a
//     signal in the original; the ping word here); a neutralized thread in
//     its read phase discards everything it has read and restarts the
//     operation from its entry point (Protect returns ok=false).
//   - Write phase: before performing writes the operation publishes the
//     pointers it needs (HP-style, one fence via EnterWritePhase) and
//     becomes immune to neutralization until ExitWritePhase. Reclaimers
//     skip the published reservations instead of waiting.
//
// This is what makes NBR+ the fastest scheme on short operations and the
// slowest on long-running reads (paper Fig. 4): every reclamation event
// throws away all concurrent read-phase progress.
type nbrAlgo struct{ baseAlgo }

// ack acknowledges a pending neutralization: advance the counter the
// reclaimer is waiting on. Every ack path either restarts the operation
// or has already published its reservations.
func nbrAck(t *Thread) {
	t.ping.Store(0)
	t.pubCount.Add(1)
	// Yield so the waiting reclaimer resumes promptly (see
	// Thread.checkPing for why this models signal-handler return).
	runtime.Gosched()
}

func (a *nbrAlgo) startOp(t *Thread) {
	if t.ping.Load() != 0 {
		nbrAck(t) // nothing read yet; ack is free
	}
	t.neutral = false
	t.inWrite = false
	t.phase.Store(1)
}

func (a *nbrAlgo) endOp(t *Thread) {
	if t.inWrite {
		a.exitWrite(t)
	}
	t.phase.Store(0)
	if t.ping.Load() != 0 {
		nbrAck(t) // operation is over; nothing to discard
	}
}

func (a *nbrAlgo) protect(t *Thread, slot int, cell *Atomic) (unsafe.Pointer, bool) {
	if t.neutral || t.ping.Load() != 0 {
		// Neutralized: discard all read-phase pointers and restart.
		t.neutral = false
		nbrAck(t)
		t.stats.Restarts++
		return nil, false
	}
	p := cell.Load()
	// Track privately so EnterWritePhase knows what to publish. Plain
	// store, same cost as the POP algorithms' private reservation.
	t.localPtrs[slot] = Mask(p)
	return p, true
}

func (a *nbrAlgo) poll(t *Thread) {
	// A busy (delayed) thread hit by a neutralization signal: ack now so
	// the reclaimer can proceed, restart when the operation resumes.
	if t.ping.Load() != 0 {
		nbrAck(t)
		t.neutral = true
	}
}

func (a *nbrAlgo) enterWrite(t *Thread) bool {
	if t.neutral || t.ping.Load() != 0 {
		t.neutral = false
		nbrAck(t)
		t.stats.Restarts++
		return false
	}
	// Publish the read-phase reservations (the one fence NBR pays per
	// update), then mask neutralization by entering phase 2.
	for i := 0; i <= t.hiSlot; i++ {
		atomic.StorePointer(&t.sharedPtrs[i], t.localPtrs[i])
	}
	t.phase.Store(2)
	t.inWrite = true
	// A ping that raced with the publish: our reservations are visible,
	// so ack without restarting (the reclaimer scans them).
	if t.ping.Load() != 0 {
		nbrAck(t)
	}
	return true
}

func (a *nbrAlgo) exitWrite(t *Thread) {
	for i := 0; i < MaxSlots; i++ {
		atomic.StorePointer(&t.sharedPtrs[i], nil)
	}
	t.inWrite = false
	t.phase.Store(1)
}

func (a *nbrAlgo) retireHook(t *Thread) {
	if t.sinceReclaim < a.d.opts.ReclaimThreshold {
		return
	}
	t.sinceReclaim = 0
	a.reclaim(t)
}

// reclaim neutralizes everyone and frees around published write-phase
// reservations. Slot lifecycle audit: a released slot reads phase 0, so
// the wait loop below never blocks on it; a neutralization ping that
// lands on a slot as (or after) its tenant departs is inert — the next
// tenant's startOp acks it before anything has been read, so the ack
// can neither discard progress nor attribute a restart to the wrong
// tenant; and a released slot's shared reservations read all-nil, so
// departed tenants never pin nodes.
func (a *nbrAlgo) reclaim(t *Thread) {
	defer a.d.recordPass(time.Now())
	t.stats.Reclaims++
	t.adoptOrphans()
	ts := t.d.threadList()
	t.stats.ThreadsScanned += uint64(len(ts))
	counts := grow(t.scCounts, len(ts))
	for i, o := range ts {
		if o == t {
			continue
		}
		counts[i] = o.pubCount.Load()
	}
	// Neutralize everyone (the signal broadcast).
	pingStart := time.Now()
	pinged := false
	for _, o := range ts {
		if o == t {
			continue
		}
		o.ping.Store(1)
		t.stats.PingsSent++
		pinged = true
	}
	// Wait until every thread acked, went quiescent, or is in a write
	// phase (whose reservations are published — never wait on phase 2:
	// it may be blocked on a lock we hold).
	deadline := pingStart.Add(publishWaitLimit)
	for i, o := range ts {
		if o == t {
			continue
		}
		for o.pubCount.Load() == counts[i] {
			if ph := o.phase.Load(); ph == 0 || ph == 2 {
				break
			}
			// Another reclaimer may be waiting on *our* ack: answer any
			// pending neutralization while we spin (the POP wait loop's
			// checkPing(selfPublish), in NBR terms). Retire sites run
			// after the write phase, so acking here discards no writes;
			// it just marks the surrounding operation for restart at its
			// next Protect. Without this, two threads whose retires
			// trigger reclamation concurrently deadlock in phase 1, each
			// waiting for the other's ack.
			a.poll(t)
			runtime.Gosched()
			if time.Now().After(deadline) {
				panic("core: NBR reclaimer waited >30s for neutralization acks")
			}
		}
	}
	if pinged {
		// Neutralization broadcast → last ack: NBR's ping-ack span.
		t.d.recordPingAck(pingStart)
	}
	// Scan all published reservations (only write-phase threads have
	// non-empty slots; that includes our own, published at EnterWrite).
	set := t.collectPtrSet(nil)
	t.freeUnreserved(set)
}

func (a *nbrAlgo) flush(t *Thread) { a.reclaim(t) }
