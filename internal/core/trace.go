package core

import (
	"time"

	"pop/internal/report"
)

// This file is the live-telemetry surface of the reclamation core: the
// race-safe mirrors and histograms that internal/telemetry samples
// mid-run. Everything here is off the read hot path — the only cost a
// data-structure operation ever pays is one branch per EndOp (the
// mirror cadence check) and, every statsPubEvery operations, ten plain
// atomic stores to owned cache lines.

// statsPubEvery is the operation cadence at which a thread republishes
// its stats mirror. Mid-run sampled stats therefore lag the owner-only
// truth by at most statsPubEvery operations per thread; Flush and
// Release republish unconditionally, so sampled stats are exact once a
// thread has flushed or departed.
const statsPubEvery = 256

// Indices into Thread.statsPub, one per Stats field.
const (
	mRetires = iota
	mFrees
	mReclaims
	mEpochReclaims
	mPOPReclaims
	mPingsSent
	mThreadsScanned
	mPublishes
	mRestarts
	mMaxRetire
	statsMirrorLen
)

// publishStats copies the owner-only stats counters into the thread's
// atomic mirror. Owner goroutine only. Fields are stored independently
// (no seqlock): each mirror word is individually monotone, which is the
// property interval deltas need; cross-field consistency is only
// claimed at quiescence.
func (t *Thread) publishStats() {
	m := &t.statsPub
	m[mRetires].Store(t.stats.Retires)
	m[mFrees].Store(t.stats.Frees)
	m[mReclaims].Store(t.stats.Reclaims)
	m[mEpochReclaims].Store(t.stats.EpochReclaims)
	m[mPOPReclaims].Store(t.stats.POPReclaims)
	m[mPingsSent].Store(t.stats.PingsSent)
	m[mThreadsScanned].Store(t.stats.ThreadsScanned)
	m[mPublishes].Store(t.stats.Publishes)
	m[mRestarts].Store(t.stats.Restarts)
	m[mMaxRetire].Store(uint64(t.maxRetire))
}

// StatsSampled aggregates the per-thread stats mirrors: the race-safe,
// any-goroutine counterpart of Stats. Mid-run it lags each live thread
// by at most statsPubEvery operations; after every thread has flushed
// or released it equals Stats exactly. Every mirror word is monotone,
// so successive StatsSampled snapshots delta cleanly per field.
func (d *Domain) StatsSampled() Stats {
	var agg Stats
	for _, t := range d.threadList() {
		m := &t.statsPub
		agg.Retires += m[mRetires].Load()
		agg.Frees += m[mFrees].Load()
		agg.Reclaims += m[mReclaims].Load()
		agg.EpochReclaims += m[mEpochReclaims].Load()
		agg.POPReclaims += m[mPOPReclaims].Load()
		agg.PingsSent += m[mPingsSent].Load()
		agg.ThreadsScanned += m[mThreadsScanned].Load()
		agg.Publishes += m[mPublishes].Load()
		agg.Restarts += m[mRestarts].Load()
		if mr := int(m[mMaxRetire].Load()); mr > agg.MaxRetire {
			agg.MaxRetire = mr
		}
	}
	return agg
}

// ReclaimStatsSampled is the race-safe counterpart of ReclaimStats,
// derived from the stats mirrors.
func (d *Domain) ReclaimStatsSampled() ReclaimStats {
	s := d.StatsSampled()
	r := ReclaimStats{Passes: s.Reclaims, Pings: s.PingsSent, Scanned: s.ThreadsScanned}
	r.fillAverages()
	return r
}

// StatsSampled aggregates the sampled stats across member domains (the
// group-level counterpart of Stats, race-safe mid-run).
func (g *DomainGroup) StatsSampled() Stats {
	var agg Stats
	for _, d := range g.members {
		s := d.StatsSampled()
		agg.Retires += s.Retires
		agg.Frees += s.Frees
		agg.Reclaims += s.Reclaims
		agg.EpochReclaims += s.EpochReclaims
		agg.POPReclaims += s.POPReclaims
		agg.PingsSent += s.PingsSent
		agg.ThreadsScanned += s.ThreadsScanned
		agg.Publishes += s.Publishes
		agg.Restarts += s.Restarts
		if s.MaxRetire > agg.MaxRetire {
			agg.MaxRetire = s.MaxRetire
		}
	}
	return agg
}

// ReclaimStatsSampled is the race-safe group counterpart of
// ReclaimStats.
func (g *DomainGroup) ReclaimStatsSampled() ReclaimStats {
	s := g.StatsSampled()
	r := ReclaimStats{Passes: s.Reclaims, Pings: s.PingsSent, Scanned: s.ThreadsScanned}
	r.fillAverages()
	return r
}

// ---------------------------------------------------------------------
// Ping-ack and pass-duration tracing
// ---------------------------------------------------------------------

// recordPingAck records one ping→all-acks wait (the broadcast-to-last-
// publish span of a POP or NBR pass). Called from pingAllAndWait and
// the NBR neutralization loop, only on passes that actually pinged.
func (d *Domain) recordPingAck(start time.Time) {
	d.pingAckH.Record(int64(time.Since(start)))
}

// recordPass records one whole reclamation pass's duration. Passes are
// threshold-gated (thousands of retires apart), so the two time.Now
// calls per pass are noise; tracing is therefore always on.
func (d *Domain) recordPass(start time.Time) {
	d.passDurH.Record(int64(time.Since(start)))
}

// PingAckHist snapshots the domain's ping→ack latency distribution:
// one observation per reclamation pass that pinged, measuring broadcast
// to last publish (paper Assumption 1's "bounded time" made visible).
func (d *Domain) PingAckHist() report.Histogram { return d.pingAckH.Snapshot() }

// PassDurHist snapshots the domain's reclamation-pass duration
// distribution (one observation per pass, all policies).
func (d *Domain) PassDurHist() report.Histogram { return d.passDurH.Snapshot() }

// PingAckHist merges the ping-ack distributions of all members.
func (g *DomainGroup) PingAckHist() report.Histogram {
	var out report.Histogram
	for _, d := range g.members {
		h := d.pingAckH.Snapshot()
		out.Merge(&h)
	}
	return out
}

// PassDurHist merges the pass-duration distributions of all members.
func (g *DomainGroup) PassDurHist() report.Histogram {
	var out report.Histogram
	for _, d := range g.members {
		h := d.passDurH.Snapshot()
		out.Merge(&h)
	}
	return out
}

// ---------------------------------------------------------------------
// Slot probes (the stalled-reader detector's raw material)
// ---------------------------------------------------------------------

// SlotProbe is one thread slot's SWMR progress words, read atomically:
// everything an external watcher needs to decide whether the slot's
// tenant is advancing. The telemetry layer reads these on an interval
// and flags slots whose opSeq stays odd-and-unchanged (a reader parked
// inside an operation — the §5.1.2 stall) or whose pending ping goes
// unanswered across ticks.
type SlotProbe struct {
	Member      int    // member index within a group (0 for a lone domain)
	Slot        int    // dense slot id (Thread.ID)
	Incarnation uint64 // lease count: identifies the tenant being probed
	OpSeq       uint64 // odd = inside an operation
	PubCount    uint64 // publish/ack counter
	PingPending bool   // a reclaimer's ping is waiting to be answered
}

// Probes appends one SlotProbe per slot ever created to dst and returns
// it (append-style so interval samplers can reuse one backing array).
func (d *Domain) Probes(dst []SlotProbe) []SlotProbe {
	for _, t := range d.threadList() {
		dst = append(dst, SlotProbe{
			Slot:        t.tid,
			Incarnation: t.incarnation.Load(),
			OpSeq:       t.opSeq.Load(),
			PubCount:    t.pubCount.Load(),
			PingPending: t.ping.Load() != 0,
		})
	}
	return dst
}

// Probes appends every member's slot probes to dst, stamped with the
// member index.
func (g *DomainGroup) Probes(dst []SlotProbe) []SlotProbe {
	for mi, d := range g.members {
		base := len(dst)
		dst = d.Probes(dst)
		for i := base; i < len(dst); i++ {
			dst[i].Member = mi
		}
	}
	return dst
}
