package core

import (
	"time"
	"unsafe"
)

// ibrAlgo is 2GE interval-based reclamation (Wen et al. [60], the "IBR"
// line in the paper's plots). Each operation reserves an era *interval*
// [lo, hi]: lo is the epoch at operation start, hi grows to the current
// epoch whenever a read observes the epoch moved. A node is freeable when
// its [birth, retire] lifespan intersects no thread's reserved interval.
// Robust (a stalled thread pins only nodes overlapping its interval) and
// fence-light (the hi bump is rare), at the cost of tagging every node
// with birth/retire eras.
type ibrAlgo struct{ baseAlgo }

func (a *ibrAlgo) startOp(t *Thread) {
	e := a.d.epoch.Load()
	t.ibrLo.Store(e)
	t.ibrHi.Store(e)
	t.ibrHiCache = e
}

func (a *ibrAlgo) endOp(t *Thread) {
	t.ibrLo.Store(eraMax)
	t.ibrHi.Store(eraMax)
}

func (a *ibrAlgo) protect(t *Thread, slot int, cell *Atomic) (unsafe.Pointer, bool) {
	for {
		p := cell.Load()
		e := a.d.epoch.Load()
		if e == t.ibrHiCache {
			return p, true
		}
		// Epoch moved since our last reservation: extend the interval
		// (seq_cst store = fence) and retry the read under it.
		t.ibrHi.Store(e)
		t.ibrHiCache = e
	}
}

func (a *ibrAlgo) allocHook(t *Thread) {
	// IBR advances the global epoch on an allocation cadence.
	if t.allocCount%uint64(a.d.opts.EpochFreq) == 0 {
		a.d.epoch.Add(1)
	}
}

func (a *ibrAlgo) retireHook(t *Thread) {
	if t.sinceReclaim < a.d.opts.ReclaimThreshold {
		return
	}
	t.sinceReclaim = 0
	a.reclaim(t)
}

// reclaim gathers reserved intervals from every slot. Released slots
// read [eraMax, eraMax] (Thread.Release), which intervalReserved treats
// as quiescent, so a departed tenant's interval never pins a lifespan.
func (a *ibrAlgo) reclaim(t *Thread) {
	defer a.d.recordPass(time.Now())
	t.stats.Reclaims++
	t.adoptOrphans()
	ts := t.d.threadList()
	t.stats.ThreadsScanned += uint64(len(ts))
	// Gather reserved intervals.
	los := grow(t.scCounts, len(ts))
	his := grow(t.scSeqs, len(ts))
	for i, o := range ts {
		los[i] = o.ibrLo.Load()
		his[i] = o.ibrHi.Load()
	}
	kept := t.retired[:0]
	freed := 0
	for _, h := range t.retired {
		if intervalReserved(los, his, h.BirthEra, h.RetireEra) {
			kept = append(kept, h)
		} else {
			a.d.free(t, h)
			freed++
		}
	}
	t.retired = kept
	t.stats.Frees += uint64(freed)
}

// intervalReserved reports whether [birth, retire] intersects any
// reserved [lo, hi] interval.
func intervalReserved(los, his []uint64, birth, retire uint64) bool {
	for i := range los {
		if los[i] == eraMax {
			continue // quiescent
		}
		if retire >= los[i] && birth <= his[i] {
			return true
		}
	}
	return false
}

func (a *ibrAlgo) flush(t *Thread) {
	a.d.epoch.Add(1)
	a.reclaim(t)
}
