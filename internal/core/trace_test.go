package core_test

import (
	"sync"
	"testing"
	"unsafe"

	"pop/internal/core"
)

// TestStatsSampledExactAfterFlush: mid-run the mirror may lag, but after
// Flush (unconditional republish) and Release the sampled view must
// equal the owner-only truth field for field.
func TestStatsSampledExactAfterFlush(t *testing.T) {
	for _, p := range core.Policies() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			opts := &core.Options{ReclaimThreshold: 8, EpochFreq: 2, BatchSize: 4}
			e := newEnv(t, p, 2, opts)
			th := e.d.RegisterThread()
			cache := e.pool.NewCache()

			var cell core.Atomic
			for i := 0; i < 300; i++ {
				th.StartOp()
				n := e.alloc(th, cache, int64(i))
				cell.Store(unsafe.Pointer(n))
				cell.Store(nil)
				th.Retire(&n.Header)
				th.EndOp()
			}
			th.Flush()
			if got, want := e.d.StatsSampled(), e.d.Stats(); got != want {
				t.Fatalf("post-flush StatsSampled = %+v, want %+v", got, want)
			}
			th.Release()
			if got, want := e.d.StatsSampled(), e.d.Stats(); got != want {
				t.Fatalf("post-release StatsSampled = %+v, want %+v", got, want)
			}
			rs, rw := e.d.ReclaimStatsSampled(), e.d.ReclaimStats()
			if rs != rw {
				t.Fatalf("ReclaimStatsSampled = %+v, want %+v", rs, rw)
			}
		})
	}
}

// TestStatsSampledMonotoneMidRun: every sampled field must be
// non-decreasing across concurrent snapshots (the property interval
// deltas rely on), even while a worker is mutating.
func TestStatsSampledMonotoneMidRun(t *testing.T) {
	opts := &core.Options{ReclaimThreshold: 8, EpochFreq: 2, BatchSize: 4}
	e := newEnv(t, core.HazardPtrPOP, 2, opts)
	th := e.d.RegisterThread()
	cache := e.pool.NewCache()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev core.Stats
		for {
			select {
			case <-done:
				return
			default:
			}
			s := e.d.StatsSampled()
			if s.Retires < prev.Retires || s.Frees < prev.Frees ||
				s.Reclaims < prev.Reclaims || s.PingsSent < prev.PingsSent ||
				s.MaxRetire < prev.MaxRetire {
				t.Errorf("sampled stats regressed: %+v -> %+v", prev, s)
				return
			}
			prev = s
		}
	}()

	var cell core.Atomic
	for i := 0; i < 4000; i++ {
		th.StartOp()
		n := e.alloc(th, cache, int64(i))
		cell.Store(unsafe.Pointer(n))
		cell.Store(nil)
		th.Retire(&n.Header)
		th.EndOp()
	}
	close(done)
	wg.Wait()
	th.Flush()
	th.Release()
}

// TestProbesShape: Probes reports one entry per created slot with the
// live incarnation, odd opSeq mid-op, and even opSeq at quiescence.
func TestProbesShape(t *testing.T) {
	opts := &core.Options{ReclaimThreshold: 64, EpochFreq: 2, BatchSize: 4}
	e := newEnv(t, core.HazardPtrPOP, 4, opts)
	a := e.d.RegisterThread()
	b := e.d.RegisterThread()

	a.StartOp()
	ps := e.d.Probes(nil)
	if len(ps) != 2 {
		t.Fatalf("Probes returned %d entries, want 2", len(ps))
	}
	byID := map[int]core.SlotProbe{}
	for _, p := range ps {
		byID[p.Slot] = p
	}
	pa, ok := byID[a.ID()]
	if !ok {
		t.Fatalf("no probe for slot %d", a.ID())
	}
	if pa.OpSeq%2 != 1 {
		t.Fatalf("mid-op slot has even OpSeq %d", pa.OpSeq)
	}
	if pa.Incarnation != a.Incarnation() {
		t.Fatalf("probe incarnation %d != thread %d", pa.Incarnation, a.Incarnation())
	}
	pb := byID[b.ID()]
	if pb.OpSeq%2 != 0 {
		t.Fatalf("quiescent slot has odd OpSeq %d", pb.OpSeq)
	}
	a.EndOp()
	ps = e.d.Probes(ps[:0])
	if len(ps) != 2 {
		t.Fatalf("reused Probes returned %d entries, want 2", len(ps))
	}
	for _, p := range ps {
		if p.OpSeq%2 != 0 {
			t.Fatalf("slot %d still odd after EndOp: %d", p.Slot, p.OpSeq)
		}
	}
	a.Release()
	b.Release()
}

// TestTraceHistograms: reclamation passes populate the pass-duration
// histogram for every policy, and the POP policies populate the
// ping-ack histogram when a second thread is parked mid-operation
// (forcing a real ping and a publish-side ack).
func TestTraceHistograms(t *testing.T) {
	for _, p := range core.Policies() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			opts := &core.Options{ReclaimThreshold: 4, EpochFreq: 2, BatchSize: 2, CMult: 2}
			e := newEnv(t, p, 2, opts)
			th := e.d.RegisterThread()
			cache := e.pool.NewCache()

			// Park a second tenant mid-operation so reclaimers have
			// someone to ping; Poll keeps it responsive.
			other := e.d.RegisterThread()
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					other.StartOp()
					for i := 0; i < 32; i++ {
						other.Poll()
					}
					other.EndOp()
					select {
					case <-stop:
						return
					default:
					}
				}
			}()

			var cell core.Atomic
			for i := 0; i < 400; i++ {
				th.StartOp()
				n := e.alloc(th, cache, int64(i))
				cell.Store(unsafe.Pointer(n))
				cell.Store(nil)
				th.Retire(&n.Header)
				th.EndOp()
			}
			close(stop)
			wg.Wait()
			th.Flush()

			passH, ackH := e.d.PassDurHist(), e.d.PingAckHist()
			s := e.d.Stats()
			if s.Reclaims > 0 && passH.Count() == 0 {
				t.Fatalf("%d reclaim passes but PassDurHist empty", s.Reclaims)
			}
			if s.PingsSent > 0 && ackH.Count() == 0 {
				t.Fatalf("%d pings sent but PingAckHist empty", s.PingsSent)
			}
			if p != core.NR && passH.Count() == 0 {
				t.Fatal("no reclamation passes recorded in PassDurHist")
			}
			other.Flush()
			other.Release()
			th.Release()
		})
	}
}
