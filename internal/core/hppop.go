package core

import (
	"time"
	"unsafe"
)

// hpPOPAlgo is HazardPtrPOP (paper Alg. 1–2), the core contribution:
// hazard pointers without the per-read fence. Reads reserve pointers in a
// *private* array (a plain store to an owned cache line — no fence, no
// sharing); reservations are published to the shared SWMR array only when
// a reclaimer pings. The reclaimer pings every thread, waits until each
// has published (or is quiescent — see the package comment on the opSeq
// seqlock), then scans and frees exactly like HP.
//
// From the data structure's point of view the interface is identical to
// HP: the drop-in-replacement property the paper emphasises.
type hpPOPAlgo struct{ baseAlgo }

func (a *hpPOPAlgo) protect(t *Thread, slot int, cell *Atomic) (unsafe.Pointer, bool) {
	// The simulated signal: poll our ping word (an owned cache line; the
	// load is the delivery cost) and run the handler inline if pinged.
	t.checkPing((*Thread).publishPtrs)
	for {
		p := cell.Load()
		t.localPtrs[slot] = Mask(p) // private reservation: no fence (Alg. 1 line 12)
		if cell.Load() == p {
			return p, true
		}
	}
}

func (a *hpPOPAlgo) startOp(t *Thread) { t.checkPing((*Thread).publishPtrs) }

func (a *hpPOPAlgo) endOp(t *Thread) { t.checkPing((*Thread).publishPtrs) }

func (a *hpPOPAlgo) poll(t *Thread) { t.checkPing((*Thread).publishPtrs) }

func (a *hpPOPAlgo) retireHook(t *Thread) {
	if t.sinceReclaim < a.d.opts.ReclaimThreshold {
		return
	}
	t.sinceReclaim = 0
	a.reclaim(t)
}

// reclaim is Alg. 1 lines 19-22: collect publish counters, ping all,
// wait for all to publish, then free everything unreserved. Slot
// lifecycle audit: released slots are quiescent (even opSeq), so
// pingAllAndWait skips them published-empty; a slot released (and even
// re-leased) mid-wait crossed an operation boundary — opSeq moved, both
// counters being monotone across reuse — so the wait loop skips it
// rather than reading the new tenant's publishes as the old tenant's.
func (a *hpPOPAlgo) reclaim(t *Thread) {
	defer a.d.recordPass(time.Now())
	t.stats.Reclaims++
	t.adoptOrphans()
	skip := t.pingAllAndWait((*Thread).publishPtrs)
	set := t.collectPtrSet(skip)
	t.freeUnreserved(set)
}

func (a *hpPOPAlgo) flush(t *Thread) { a.reclaim(t) }
