package core_test

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"unsafe"

	"pop/internal/arena"
	"pop/internal/core"
)

// --- Era-based policies: lifespan logic ---

// TestHEKeepsIntersectingLifespan pins an era with a reader and checks HE
// frees only nodes whose lifespan misses the reservation.
func TestHEKeepsIntersectingLifespan(t *testing.T) {
	for _, p := range []core.Policy{core.HE, core.HazardEraPOP} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			e := newEnv(t, p, 2, &core.Options{ReclaimThreshold: 4})
			reader := e.d.RegisterThread()
			reclaimer := e.d.RegisterThread()
			cache := e.pool.NewCache()

			// Node A lives in the current era.
			reclaimer.StartOp()
			a := e.alloc(reclaimer, cache, 1)
			var cell core.Atomic
			cell.Store(unsafe.Pointer(a))

			// Reader reserves the current era (and keeps answering pings
			// from its own goroutine).
			ready := make(chan struct{})
			release := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				reader.StartOp()
				reader.Protect(0, &cell)
				close(ready)
				for {
					select {
					case <-release:
						reader.EndOp()
						return
					default:
						reader.Poll()
						runtime.Gosched()
					}
				}
			}()
			<-ready

			// Retire A (lifespan intersects the reader's era) plus filler
			// allocated in later eras.
			cell.Store(nil)
			reclaimer.Retire(&a.Header)
			for i := 0; i < 12; i++ {
				f := e.alloc(reclaimer, cache, int64(i))
				reclaimer.Retire(&f.Header)
			}
			reclaimer.EndOp()

			if !a.Header.Retired() {
				t.Fatal("node with reserved lifespan was freed")
			}
			if reclaimer.StatsSnapshot().Frees == 0 {
				t.Fatal("nothing freed despite unreserved later-era nodes")
			}
			close(release)
			<-done
			reclaimer.Flush()
			if a.Header.Retired() {
				t.Fatal("node not freed after reader released its era")
			}
		})
	}
}

// TestIBRFreesOutsideInterval checks IBR's defining property: a reader's
// reserved interval does not block nodes born after it.
func TestIBRFreesOutsideInterval(t *testing.T) {
	for _, p := range []core.Policy{core.IBR, core.Crystalline} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			e := newEnv(t, p, 2, &core.Options{ReclaimThreshold: 4, EpochFreq: 1, BatchSize: 2})
			reader := e.d.RegisterThread()
			reclaimer := e.d.RegisterThread()
			cache := e.pool.NewCache()

			// Reader opens an operation, fixing its interval at the
			// current epoch.
			reader.StartOp()

			// Reclaimer allocates (advancing the epoch every allocation:
			// EpochFreq=1) and retires; those nodes are born after the
			// reader's interval, so they must be freeable.
			reclaimer.StartOp()
			for i := 0; i < 16; i++ {
				f := e.alloc(reclaimer, cache, int64(i))
				reclaimer.Retire(&f.Header)
			}
			reclaimer.EndOp()

			if reclaimer.StatsSnapshot().Frees == 0 {
				t.Fatal("IBR blocked by a reader whose interval predates every birth era")
			}
			reader.EndOp()
			reclaimer.Flush()
		})
	}
}

// TestEBRBlockedByPinnedEpoch checks the non-robustness EBR is famous
// for: a thread inside an operation pins the minimum epoch and no node
// retired after its announcement can be freed.
func TestEBRBlockedByPinnedEpoch(t *testing.T) {
	e := newEnv(t, core.EBR, 2, &core.Options{ReclaimThreshold: 4, EpochFreq: 1})
	pinner := e.d.RegisterThread()
	reclaimer := e.d.RegisterThread()
	cache := e.pool.NewCache()

	pinner.StartOp() // announces the current epoch and sits on it

	reclaimer.StartOp()
	for i := 0; i < 64; i++ {
		f := e.alloc(reclaimer, cache, int64(i))
		reclaimer.Retire(&f.Header)
	}
	reclaimer.EndOp()
	if got := reclaimer.StatsSnapshot().Frees; got != 0 {
		t.Fatalf("EBR freed %d nodes retired after a pinned announcement", got)
	}

	pinner.EndOp()
	reclaimer.Flush()
	if e.pool.Outstanding() != 0 {
		t.Fatal("EBR did not drain after the pin was released")
	}
}

// TestEpochPOPEscalation: same pinned-epoch scenario, but EpochPOP must
// escalate to publish-on-ping and keep freeing around the pinned thread.
func TestEpochPOPEscalation(t *testing.T) {
	e := newEnv(t, core.EpochPOP, 2, &core.Options{ReclaimThreshold: 4, CMult: 2, EpochFreq: 1})
	pinner := e.d.RegisterThread()
	reclaimer := e.d.RegisterThread()
	cache := e.pool.NewCache()

	ready := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		pinner.StartOp() // pins the epoch, like EBR's failure case
		close(ready)
		for {
			select {
			case <-release:
				pinner.EndOp()
				return
			default:
				pinner.Poll() // but stays responsive to pings
				runtime.Gosched()
			}
		}
	}()
	<-ready

	reclaimer.StartOp()
	for i := 0; i < 64; i++ {
		f := e.alloc(reclaimer, cache, int64(i))
		reclaimer.Retire(&f.Header)
	}
	reclaimer.EndOp()

	st := reclaimer.StatsSnapshot()
	if st.Frees == 0 {
		t.Fatal("EpochPOP failed to reclaim around a pinned epoch")
	}
	if st.POPReclaims == 0 {
		t.Fatal("EpochPOP never escalated to the publish-on-ping path")
	}
	if st.EpochReclaims == 0 {
		t.Fatal("EpochPOP never tried the epoch fast path")
	}
	close(release)
	<-done
	reclaimer.Flush()
}

// TestEpochPOPFastPathOnly: with no delays, EpochPOP must reclaim purely
// in epoch mode — zero pings is the paper's "POP mechanism not needed at
// all" common case.
func TestEpochPOPFastPathOnly(t *testing.T) {
	e := newEnv(t, core.EpochPOP, 1, &core.Options{ReclaimThreshold: 8, EpochFreq: 2})
	th := e.d.RegisterThread()
	cache := e.pool.NewCache()
	for i := 0; i < 200; i++ {
		th.StartOp()
		n := e.alloc(th, cache, int64(i))
		th.Retire(&n.Header)
		th.EndOp()
	}
	st := th.StatsSnapshot()
	if st.POPReclaims != 0 || st.PingsSent != 0 {
		t.Fatalf("undelayed EpochPOP used the POP path (pop=%d pings=%d)",
			st.POPReclaims, st.PingsSent)
	}
	if st.Frees == 0 {
		t.Fatal("no epoch-mode frees")
	}
}

// --- Publish-on-ping machinery ---

// TestQuiescentThreadDoesNotBlockPing: a registered thread that never
// runs must not stall a POP reclamation (the opSeq seqlock treats it as
// published-empty, like a signal handler running between operations).
func TestQuiescentThreadDoesNotBlockPing(t *testing.T) {
	for _, p := range []core.Policy{core.HazardPtrPOP, core.HazardEraPOP, core.EpochPOP, core.NBR} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			e := newEnv(t, p, 3, &core.Options{ReclaimThreshold: 4})
			_ = e.d.RegisterThread() // never used: permanently quiescent
			_ = e.d.RegisterThread() // ditto
			reclaimer := e.d.RegisterThread()
			cache := e.pool.NewCache()
			reclaimer.StartOp()
			for i := 0; i < 16; i++ {
				f := e.alloc(reclaimer, cache, int64(i))
				reclaimer.Retire(&f.Header)
			}
			reclaimer.EndOp()
			// Reaching here without the 30s publish-wait panic is the
			// property; also everything must have been freed.
			if reclaimer.StatsSnapshot().Frees == 0 {
				t.Fatal("nothing freed")
			}
		})
	}
}

// TestConcurrentReclaimersNoDeadlock: multiple POP reclaimers pinging
// each other mid-retire must answer each other's pings (handler nesting).
func TestConcurrentReclaimersNoDeadlock(t *testing.T) {
	for _, p := range []core.Policy{core.HazardPtrPOP, core.HazardEraPOP, core.EpochPOP} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			e := newEnv(t, p, 4, &core.Options{ReclaimThreshold: 8, CMult: 2})
			var working, flushed sync.WaitGroup
			flushGo := make(chan struct{})
			for w := 0; w < 4; w++ {
				th := e.d.RegisterThread()
				working.Add(1)
				flushed.Add(1)
				go func(th *core.Thread) {
					defer flushed.Done()
					cache := e.pool.NewCache()
					for i := 0; i < 3000; i++ {
						th.StartOp()
						n := e.alloc(th, cache, int64(i))
						th.Retire(&n.Header)
						th.EndOp()
					}
					working.Done()
					<-flushGo // flush only once everyone is quiescent
					th.Flush()
				}(th)
			}
			working.Wait()
			close(flushGo)
			flushed.Wait()
			if u := e.d.Unreclaimed(); u != 0 {
				t.Fatalf("%d unreclaimed after concurrent reclaimers drained", u)
			}
		})
	}
}

// --- NBR specifics ---

// TestNBRReadPhaseRestart: a neutralized read-phase Protect must return
// ok=false exactly once per neutralization.
func TestNBRReadPhaseRestart(t *testing.T) {
	e := newEnv(t, core.NBR, 2, &core.Options{ReclaimThreshold: 4})
	reader := e.d.RegisterThread()
	reclaimer := e.d.RegisterThread()
	cache := e.pool.NewCache()

	reclaimer.StartOp()
	n := e.alloc(reclaimer, cache, 1)
	var cell core.Atomic
	cell.Store(unsafe.Pointer(n))

	reader.StartOp()
	if _, ok := reader.Protect(0, &cell); !ok {
		t.Fatal("spurious restart with no neutralization pending")
	}

	// Reclaimer neutralizes (reader acks via its own goroutine polling).
	release := make(chan struct{})
	done := make(chan struct{})
	restarted := make(chan bool, 1)
	go func() {
		defer close(done)
		for {
			select {
			case <-release:
				return
			default:
				if _, ok := reader.Protect(0, &cell); !ok {
					restarted <- true
					reader.EndOp()
					return
				}
				runtime.Gosched()
			}
		}
	}()

	cell.Store(nil)
	reclaimer.Retire(&n.Header)
	for i := 0; i < 8; i++ {
		f := e.alloc(reclaimer, cache, int64(i))
		reclaimer.Retire(&f.Header)
	}
	reclaimer.EndOp()

	select {
	case <-restarted:
	default:
		t.Fatal("reader was never neutralized")
	}
	close(release)
	<-done
	if reader.StatsSnapshot().Restarts == 0 {
		t.Fatal("restart not counted")
	}
	reclaimer.Flush()
}

// TestNBRWritePhasePublishesAndProtects: reservations published at
// EnterWritePhase must survive a concurrent reclamation.
func TestNBRWritePhasePublishes(t *testing.T) {
	e := newEnv(t, core.NBR, 2, &core.Options{ReclaimThreshold: 4})
	writer := e.d.RegisterThread()
	reclaimer := e.d.RegisterThread()
	cache := e.pool.NewCache()

	reclaimer.StartOp()
	n := e.alloc(reclaimer, cache, 42)
	var cell core.Atomic
	cell.Store(unsafe.Pointer(n))

	// Writer protects n and enters its write phase (immune, published).
	writer.StartOp()
	if _, ok := writer.Protect(0, &cell); !ok {
		t.Fatal("unexpected restart")
	}
	if !writer.EnterWritePhase() {
		t.Fatal("unexpected neutralization at write-phase entry")
	}

	// Reclaimer retires n and reclaims; it must not wait on the
	// write-phase writer and must skip n.
	cell.Store(nil)
	reclaimer.Retire(&n.Header)
	for i := 0; i < 8; i++ {
		f := e.alloc(reclaimer, cache, int64(i))
		reclaimer.Retire(&f.Header)
	}
	reclaimer.EndOp()

	if !n.Header.Retired() {
		t.Fatal("write-phase reservation was freed")
	}
	if reclaimer.StatsSnapshot().Frees == 0 {
		t.Fatal("reclaimer freed nothing")
	}
	writer.ExitWritePhase()
	writer.EndOp()
	reclaimer.Flush()
	if n.Header.Retired() {
		t.Fatal("node not freed after writer finished")
	}
}

// --- Crystalline-lite batching ---

func TestCrystallineBatchSealing(t *testing.T) {
	e := newEnv(t, core.Crystalline, 1, &core.Options{ReclaimThreshold: 8, BatchSize: 4})
	th := e.d.RegisterThread()
	cache := e.pool.NewCache()
	th.StartOp()
	for i := 0; i < 3; i++ {
		n := e.alloc(th, cache, int64(i))
		th.Retire(&n.Header)
	}
	th.EndOp()
	// 3 < BatchSize: nothing sealed, nothing freed.
	if got := th.StatsSnapshot().Frees; got != 0 {
		t.Fatalf("freed %d before a batch sealed", got)
	}
	th.StartOp()
	for i := 0; i < 16; i++ {
		n := e.alloc(th, cache, int64(i))
		th.Retire(&n.Header)
	}
	th.EndOp()
	th.Flush()
	if e.pool.Outstanding() != 0 {
		t.Fatalf("outstanding %d after flush", e.pool.Outstanding())
	}
}

// --- Liveness: bounded garbage for the robust pointer-based schemes ---

// TestBoundedGarbageProperty (paper Property 3): across random workloads,
// a HazardPtrPOP thread's unreclaimed backlog immediately after a
// reclamation pass is at most threshold + N*MaxSlots.
func TestBoundedGarbageProperty(t *testing.T) {
	prop := func(seed uint16) bool {
		const threshold = 16
		e := newEnvQuick(core.HazardPtrPOP, 1, &core.Options{ReclaimThreshold: threshold})
		th := e.d.RegisterThread()
		cache := e.pool.NewCache()
		var cell core.Atomic
		for i := 0; i < 300+int(seed%200); i++ {
			th.StartOp()
			n := e.alloc(th, cache, int64(i))
			cell.Store(unsafe.Pointer(n))
			th.Protect(int(uint(seed)+uint(i))%core.MaxSlots, &cell)
			cell.Store(nil)
			th.Retire(&n.Header)
			th.EndOp()
			if th.RetireListLen() > threshold+1*core.MaxSlots {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// newEnvQuick is newEnv without the *testing.T (for quick properties).
func newEnvQuick(policy core.Policy, maxThreads int, opts *core.Options) *env {
	e := &env{pool: arena.NewPool[tnode](nil, nil)}
	e.d = core.NewDomain(policy, maxThreads, opts)
	e.caches = make([]*arena.ThreadCache[tnode], maxThreads)
	e.typ = e.d.RegisterType(func(t *core.Thread, h *core.Header) {
		e.cacheFor(t).Put((*tnode)(unsafe.Pointer(h)))
	})
	return e
}

// TestEpochMonotonicUnderChurn: the global era never decreases while
// many threads advance it.
func TestEpochMonotonicUnderChurn(t *testing.T) {
	e := newEnv(t, core.EBR, 4, &core.Options{ReclaimThreshold: 1 << 20, EpochFreq: 2})
	var wg sync.WaitGroup
	stopped := make(chan struct{})
	go func() {
		last := uint64(0)
		for {
			select {
			case <-stopped:
				return
			default:
				cur := e.d.Epoch()
				if cur < last {
					t.Error("epoch went backwards")
					return
				}
				last = cur
			}
		}
	}()
	for w := 0; w < 4; w++ {
		th := e.d.RegisterThread()
		wg.Add(1)
		go func(th *core.Thread) {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				th.StartOp()
				th.EndOp()
			}
		}(th)
	}
	wg.Wait()
	close(stopped)
	if e.d.Epoch() < 1000 {
		t.Fatalf("epoch advanced only to %d", e.d.Epoch())
	}
}

// TestDoubleRetirePanics guards the accounting that every other test
// depends on.
func TestDoubleRetirePanics(t *testing.T) {
	e := newEnv(t, core.NR, 1, nil)
	th := e.d.RegisterThread()
	cache := e.pool.NewCache()
	n := e.alloc(th, cache, 1)
	// NR drains its list instantly but never frees, so the retired flag
	// stays set and a second retire must trip.
	th.Retire(&n.Header)
	defer func() {
		if recover() == nil {
			t.Fatal("double retire did not panic")
		}
	}()
	th.Retire(&n.Header)
}
