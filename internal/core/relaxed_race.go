//go:build race

package core

import (
	"sync/atomic"
	"unsafe"
)

// storeRelaxed under the race detector uses a sequentially consistent
// store so `go test -race` is clean. This makes HPAsym's read path
// cost-identical to HP's in race builds — acceptable, because race builds
// exist to validate correctness, not performance. See relaxed.go for the
// performance build.
func storeRelaxed(addr *unsafe.Pointer, p unsafe.Pointer) {
	atomic.StorePointer(addr, p)
}
