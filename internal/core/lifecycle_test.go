package core_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
	"unsafe"

	"pop/internal/core"
)

func TestTryRegisterThreadCapacityError(t *testing.T) {
	d := core.NewDomain(core.EBR, 2, nil)
	if _, err := d.TryRegisterThread(); err != nil {
		t.Fatalf("first lease: %v", err)
	}
	b, err := d.TryRegisterThread()
	if err != nil {
		t.Fatalf("second lease: %v", err)
	}
	if _, err := d.TryRegisterThread(); err == nil {
		t.Fatal("third lease at capacity 2 did not error")
	} else if !errors.Is(err, core.ErrNoSlots) {
		t.Fatalf("exhaustion error is not ErrNoSlots: %v", err)
	} else if !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("unhelpful capacity error: %v", err)
	}
	// A release makes the capacity error go away without growing slots.
	b.Release()
	if _, err := d.TryRegisterThread(); err != nil {
		t.Fatalf("lease after release: %v", err)
	}
}

func TestSlotReuse(t *testing.T) {
	d := core.NewDomain(core.HazardPtrPOP, 2, nil)
	a := d.RegisterThread()
	b := d.RegisterThread()
	if a.Incarnation() != 1 || b.Incarnation() != 1 {
		t.Fatalf("fresh incarnations = %d, %d, want 1, 1", a.Incarnation(), b.Incarnation())
	}
	bid := b.ID()
	b.Release()
	c := d.RegisterThread() // must re-lease b's slot, not grow
	if c.ID() != bid {
		t.Fatalf("re-lease got slot %d, want released slot %d", c.ID(), bid)
	}
	if c.Incarnation() != 2 {
		t.Fatalf("re-leased incarnation = %d, want 2", c.Incarnation())
	}
	lc := d.Lifecycle()
	if lc.Slots != 2 || lc.Leased != 2 || lc.Peak != 2 || lc.Releases != 1 {
		t.Fatalf("lifecycle = %+v", lc)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	d := core.NewDomain(core.EBR, 1, nil)
	th := d.RegisterThread()
	th.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	th.Release()
}

func TestReleaseInsideOpPanics(t *testing.T) {
	d := core.NewDomain(core.EBR, 1, nil)
	th := d.RegisterThread()
	th.StartOp()
	defer func() {
		if recover() == nil {
			t.Fatal("Release inside an operation did not panic")
		}
	}()
	th.Release()
}

// TestOrphanAdoption checks, for every reclaiming policy, that a
// departing thread's unreclaimed retire list is donated to the domain
// and fully freed by a surviving thread's flush — no nodes stranded.
func TestOrphanAdoption(t *testing.T) {
	for _, p := range core.Policies() {
		if p == core.NR {
			continue // NR leaks by design and never holds a retire list
		}
		p := p
		t.Run(p.String(), func(t *testing.T) {
			// Threshold high enough that the departing thread never
			// reclaims on its own; small Crystalline batches so sealed
			// batches are part of the donation.
			e := newEnv(t, p, 2, &core.Options{ReclaimThreshold: 1 << 20, BatchSize: 8})
			survivor := e.d.RegisterThread()
			departing := e.d.RegisterThread()
			cache := e.pool.NewCache()

			const rounds = 100
			for i := 0; i < rounds; i++ {
				departing.StartOp()
				n := e.alloc(departing, cache, int64(i))
				departing.Retire(&n.Header)
				departing.EndOp()
			}
			departing.Release()

			lc := e.d.Lifecycle()
			if lc.OrphanNodes != rounds || lc.OrphansDonated != rounds {
				t.Fatalf("after release: lifecycle = %+v, want %d donated", lc, rounds)
			}
			if got := e.d.Unreclaimed(); got != rounds {
				t.Fatalf("Unreclaimed = %d, want %d (orphans must be counted)", got, rounds)
			}

			survivor.Flush()
			lc = e.d.Lifecycle()
			if lc.OrphanNodes != 0 || lc.OrphansAdopted != rounds {
				t.Fatalf("after flush: lifecycle = %+v, want %d adopted", lc, rounds)
			}
			if got := e.d.Unreclaimed(); got != 0 {
				t.Fatalf("flush left %d unreclaimed orphan nodes", got)
			}
			if got := e.pool.Outstanding(); got != 0 {
				t.Fatalf("pool outstanding = %d after adoption flush", got)
			}
		})
	}
}

// TestReleasedSlotInvisibleToScanners releases a thread that had
// protected a node and checks another thread can then free it: the
// released slot's reservations must read empty.
func TestReleasedSlotInvisibleToScanners(t *testing.T) {
	for _, p := range []core.Policy{core.HP, core.HPAsym, core.HE, core.HazardPtrPOP, core.HazardEraPOP} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			e := newEnv(t, p, 2, &core.Options{ReclaimThreshold: 2})
			reader := e.d.RegisterThread()
			reclaimer := e.d.RegisterThread()
			cache := e.pool.NewCache()

			reclaimer.StartOp()
			n := e.alloc(reclaimer, cache, 7)
			var cell core.Atomic
			cell.Store(unsafe.Pointer(n))

			reader.StartOp()
			reader.Protect(0, &cell)
			reader.EndOp()
			reader.Release()

			cell.Store(nil)
			reclaimer.Retire(&n.Header)
			for i := 0; i < 4; i++ {
				f := e.alloc(reclaimer, cache, int64(i))
				reclaimer.Retire(&f.Header)
			}
			reclaimer.EndOp()
			reclaimer.Flush()
			if n.Header.Retired() {
				t.Fatal("node still retired: released slot's reservation pinned it")
			}
		})
	}
}

// TestHandlesPool exercises the acquire/release facade: growth to cap,
// exhaustion error, reuse after release, Do, and the counters.
func TestHandlesPool(t *testing.T) {
	d := core.NewDomain(core.EpochPOP, 3, nil)
	pool := core.NewHandles(d)
	if pool.Cap() != 3 || pool.Domain() != d {
		t.Fatalf("Cap/Domain wiring: cap=%d", pool.Cap())
	}
	a, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	c, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Acquire(); err == nil {
		t.Fatal("Acquire past cap did not error")
	} else if !errors.Is(err, core.ErrNoSlots) {
		t.Fatalf("Acquire exhaustion error is not ErrNoSlots: %v", err)
	}
	if pool.InUse() != 3 || pool.Peak() != 3 {
		t.Fatalf("InUse=%d Peak=%d, want 3, 3", pool.InUse(), pool.Peak())
	}
	pool.Release(b)
	if pool.InUse() != 2 {
		t.Fatalf("InUse after release = %d", pool.InUse())
	}
	if err := pool.Do(func(th *core.Thread) error {
		th.StartOp()
		th.EndOp()
		if th.ID() != b.ID() {
			t.Fatalf("Do leased slot %d, want released slot %d", th.ID(), b.ID())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if pool.InUse() != 2 || pool.Acquires() != 4 {
		t.Fatalf("InUse=%d Acquires=%d after Do", pool.InUse(), pool.Acquires())
	}
	pool.Release(a)
	pool.Release(c)
	if pool.InUse() != 0 {
		t.Fatalf("InUse = %d after releasing all", pool.InUse())
	}
}

// TestLeaseChurnAllPolicies hammers lease → protected retires → release
// from many goroutines for every policy, then verifies a final flush
// leaves nothing unreclaimed (except NR's accounted leak).
func TestLeaseChurnAllPolicies(t *testing.T) {
	for _, p := range core.Policies() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			const (
				churners = 4
				legs     = 16
				opsPer   = 32
			)
			e := newEnv(t, p, churners+1, &core.Options{ReclaimThreshold: 64, EpochFreq: 8, BatchSize: 8})
			pool := core.NewHandles(e.d)
			var wg sync.WaitGroup
			var retires int64
			var mu sync.Mutex
			for g := 0; g < churners; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					local := int64(0)
					for leg := 0; leg < legs; leg++ {
						th, err := pool.Acquire()
						if err != nil {
							t.Error(err)
							return
						}
						cache := e.cacheFor(th)
						var cell core.Atomic
						for i := 0; i < opsPer; i++ {
							th.StartOp()
							n := e.alloc(th, cache, int64(i))
							cell.Store(unsafe.Pointer(n))
							// An NBR-neutralized Protect (ok=false) changes
							// nothing here: the node is ours alone, so we
							// unlink and retire it either way.
							th.Protect(0, &cell)
							cell.Store(nil)
							th.Retire(&n.Header)
							local++
							th.EndOp()
						}
						pool.Release(th)
					}
					mu.Lock()
					retires += local
					mu.Unlock()
				}()
			}
			wg.Wait()
			collector, err := pool.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			collector.Flush()
			pool.Release(collector)
			want := int64(0)
			if p == core.NR {
				want = retires // the accounted leak
			}
			if got := e.d.Unreclaimed(); got != want {
				t.Fatalf("Unreclaimed = %d after churn flush, want %d (lifecycle %+v)", got, want, e.d.Lifecycle())
			}
			if p != core.NR {
				if got := e.pool.Outstanding(); got != 0 {
					t.Fatalf("pool outstanding = %d after churn flush", got)
				}
			}
			lc := e.d.Lifecycle()
			if lc.Releases != churners*legs+1 {
				t.Fatalf("releases = %d, want %d", lc.Releases, churners*legs+1)
			}
			if lc.Slots > churners+1 {
				t.Fatalf("slots grew to %d despite reuse (cap %d)", lc.Slots, churners+1)
			}
		})
	}
}

// TestSlotLeaseCounts checks Lifecycle's per-slot acquire counts: every
// lease of a slot shows up as that slot's incarnation.
func TestSlotLeaseCounts(t *testing.T) {
	d := core.NewDomain(core.EBR, 2, nil)
	a := d.RegisterThread()
	b := d.RegisterThread()
	bid := b.ID()
	b.Release()
	d.RegisterThread() // re-leases b's slot: its count goes to 2
	lc := d.Lifecycle()
	if len(lc.SlotLeases) != 2 {
		t.Fatalf("SlotLeases length = %d, want 2", len(lc.SlotLeases))
	}
	if lc.SlotLeases[a.ID()] != 1 || lc.SlotLeases[bid] != 2 {
		t.Fatalf("SlotLeases = %v, want slot %d at 1 and slot %d at 2", lc.SlotLeases, a.ID(), bid)
	}
	var total uint64
	for _, n := range lc.SlotLeases {
		total += n
	}
	if want := lc.Releases + uint64(lc.Leased); total != want {
		t.Fatalf("SlotLeases sum = %d, want releases+leased = %d", total, want)
	}
}

// TestAcquireWaitBlocksUntilRelease saturates a one-slot pool, parks an
// AcquireWait behind it, and checks the waiter is admitted exactly when
// the holder releases.
func TestAcquireWaitBlocksUntilRelease(t *testing.T) {
	d := core.NewDomain(core.HazardPtrPOP, 1, nil)
	pool := core.NewHandles(d)
	holder, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan *core.Thread)
	go func() {
		th, err := pool.AcquireWait(context.Background())
		if err != nil {
			t.Errorf("AcquireWait: %v", err)
			close(admitted)
			return
		}
		admitted <- th
	}()
	// The waiter must be parked, not admitted: give it time to enqueue.
	select {
	case <-admitted:
		t.Fatal("AcquireWait admitted past a saturated domain")
	case <-time.After(20 * time.Millisecond):
	}
	if pool.Waiting() != 1 {
		t.Fatalf("Waiting = %d, want 1", pool.Waiting())
	}
	pool.Release(holder)
	select {
	case th := <-admitted:
		if th == nil {
			t.Fatal("AcquireWait errored after release")
		}
		if th.ID() != holder.ID() {
			t.Fatalf("waiter admitted to slot %d, want released slot %d", th.ID(), holder.ID())
		}
		pool.Release(th)
	case <-time.After(5 * time.Second):
		t.Fatal("AcquireWait still parked after Release")
	}
	if pool.Waits() == 0 {
		t.Fatal("Waits counter did not record the queued acquire")
	}
}

// TestAcquireWaitContextTimeout checks a parked waiter is unparked with
// its context's error, leaves the queue, and does not leak a wakeup.
func TestAcquireWaitContextTimeout(t *testing.T) {
	d := core.NewDomain(core.EBR, 1, nil)
	pool := core.NewHandles(d)
	holder, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := pool.AcquireWait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("AcquireWait under saturation = %v, want DeadlineExceeded", err)
	}
	if pool.Waiting() != 0 {
		t.Fatalf("timed-out waiter still queued (Waiting = %d)", pool.Waiting())
	}
	// The slot must still be cleanly admittable afterwards.
	pool.Release(holder)
	th, err := pool.AcquireWait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pool.Release(th)
}

// TestAcquireWaitStorm floods a tiny pool with far more waiters than
// slots and checks every one is eventually admitted, does work, and
// that the pool drains to zero without leaking leases.
func TestAcquireWaitStorm(t *testing.T) {
	const (
		slots   = 2
		workers = 16
		legs    = 25
	)
	d := core.NewDomain(core.EpochPOP, slots, nil)
	pool := core.NewHandles(d)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < legs; i++ {
				th, err := pool.AcquireWait(ctx)
				if err != nil {
					t.Errorf("AcquireWait: %v", err)
					return
				}
				th.StartOp()
				th.EndOp()
				pool.Release(th)
			}
		}()
	}
	wg.Wait()
	if pool.InUse() != 0 || pool.Waiting() != 0 {
		t.Fatalf("after storm: InUse=%d Waiting=%d, want 0, 0", pool.InUse(), pool.Waiting())
	}
	lc := d.Lifecycle()
	if lc.Leased != 0 {
		t.Fatalf("leaked leases: %+v", lc)
	}
	if lc.Slots > slots {
		t.Fatalf("slots grew to %d past the cap %d", lc.Slots, slots)
	}
	if lc.Releases != workers*legs {
		t.Fatalf("releases = %d, want %d", lc.Releases, workers*legs)
	}
}
