package core

import (
	"time"

	"sync/atomic"
	"unsafe"
)

// hpAlgo is Michael's classic hazard pointers (paper §2.1): every read of
// a new shared object publishes a reservation with a sequentially
// consistent store — an XCHG on amd64, i.e. a full fence — then
// re-validates that the object is still reachable. The per-read fence is
// exactly the overhead the paper's POP technique removes.
type hpAlgo struct{ baseAlgo }

func (a *hpAlgo) protect(t *Thread, slot int, cell *Atomic) (unsafe.Pointer, bool) {
	for {
		p := cell.Load()
		// Publish + fence (seq_cst store), then validate: the reservation
		// must have been globally visible while the pointer was still
		// reachable (§2.1.1 steps 1-3).
		atomic.StorePointer(&t.sharedPtrs[slot], Mask(p))
		if cell.Load() == p {
			return p, true
		}
	}
}

func (a *hpAlgo) endOp(t *Thread) {
	// clear(): drop published reservations so reserved nodes can be freed.
	for i := 0; i <= t.hiSlot; i++ {
		atomic.StorePointer(&t.sharedPtrs[i], nil)
	}
}

func (a *hpAlgo) retireHook(t *Thread) {
	if t.sinceReclaim < a.d.opts.ReclaimThreshold {
		return
	}
	t.sinceReclaim = 0
	a.reclaim(t)
}

// reclaim scans every slot's shared reservations. Released slots read
// all-nil (Thread.Release wipes them after EndOp already did), so a
// departed tenant's reservations can never pin a node, and a reused
// slot's visible reservations are always the current tenant's.
func (a *hpAlgo) reclaim(t *Thread) {
	defer a.d.recordPass(time.Now())
	t.stats.Reclaims++
	t.adoptOrphans()
	set := t.collectPtrSet(nil) // eager publishing: shared slots are current
	t.freeUnreserved(set)
}

func (a *hpAlgo) flush(t *Thread) { a.reclaim(t) }
