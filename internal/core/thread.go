package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"

	"pop/internal/padded"
)

// publishWaitLimit bounds how long a reclaimer spins waiting for other
// threads to publish (the paper's Assumption 1: threads publish in
// bounded time after a ping). Exceeding it means a thread is blocked
// inside an operation without polling — a bug in the harness or data
// structure — so we fail loudly rather than hang the test suite.
const publishWaitLimit = 30 * time.Second

// Thread is a per-worker handle into a Domain. All data-structure
// operations happen through a Thread; a Thread must only ever be used by
// the goroutine that owns it — and ownership is a lease, not a life
// sentence: Release returns the slot to the domain (donating any
// unreclaimed retires to the orphan queue), after which a different
// goroutine may lease the same slot through TryRegisterThread. The
// domain mutex in the release/lease pair is the happens-before edge
// that hands the slot's private state (and any tid-indexed caches in
// higher layers) from the old tenant to the new one.
//
// The first block of fields is the thread's SWMR (single-writer
// multi-reader) surface: the words reclaimers read. Each is cache-line
// padded so that thread i's announcements never false-share with thread
// j's. The reservation arrays are padded as a group (slots of one thread
// share a writer, so intra-thread sharing is free).
type Thread struct {
	d   *Domain
	tid int

	// --- SWMR surface (read by reclaimers) ---

	// ping is the simulated signal: reclaimers set it, the owner polls it
	// at every Protect and StartOp/EndOp and runs the publish handler.
	// For NBR it doubles as the neutralization flag.
	ping padded.Uint32
	// pubCount counts publish-handler executions (NBR: neutralization
	// acks). Reclaimers compare before/after values to learn that a
	// publish happened after their ping.
	pubCount padded.Uint64
	// opSeq is a seqlock-style operation counter: odd while inside an
	// operation, even while quiescent. Reclaimers use it to treat
	// quiescent threads as published-empty (signal handlers run between
	// operations; polls do not — see the package comment).
	opSeq padded.Uint64
	// phase is NBR's operation phase: 0 quiescent, 1 read phase, 2 write
	// phase (reservations published, neutralization masked).
	phase padded.Uint32
	// resEpoch is the announced epoch for EBR/EpochPOP (eraMax when
	// quiescent).
	resEpoch padded.Uint64
	// ibrLo/ibrHi are IBR's reserved interval.
	ibrLo padded.Uint64
	ibrHi padded.Uint64
	// retiredLen mirrors len(retired) for Domain.Unreclaimed.
	retiredLen padded.Uint32
	// batchedLen mirrors the Crystalline-lite sealed-batch population.
	batchedLen padded.Int64
	// incarnation counts leases of this slot (monotone, bumped by the
	// domain on each lease): tenant k+1 of a reused slot is
	// distinguishable from tenant k even though tid is identical.
	incarnation padded.Uint64

	_          [padded.CacheLine]byte
	sharedPtrs [MaxSlots]unsafe.Pointer // published pointer reservations
	sharedEras [MaxSlots]uint64         // published era reservations
	_          [padded.CacheLine]byte

	// --- private state (owner goroutine only) ---

	localPtrs  [MaxSlots]unsafe.Pointer // private pointer reservations
	localEras  [MaxSlots]uint64         // private era reservations
	hiSlot     int                      // highest slot used since last clear
	opCount    uint64                   // operations started (epoch cadence)
	allocCount uint64                   // allocations (IBR epoch cadence)
	ibrHiCache uint64                   // private mirror of ibrHi
	heCache    [MaxSlots]uint64         // HE: private mirror of sharedEras
	inWrite    bool                     // NBR: inside a write phase
	neutral    bool                     // NBR: neutralization seen by Poll

	retired      []*Header
	maxRetire    int
	sinceReclaim int // retires since the last reclamation attempt

	// crystalline-lite batching state
	batches *batchState

	// leased is the slot's lease state. Guarded by d.mu (never read on
	// hot paths; reclaimer scans rely on the cleared SWMR surface, not
	// on this bit).
	leased bool

	// scratch buffers reused across reclamation passes
	scCounts []uint64
	scSeqs   []uint64
	scSkip   []bool
	scPtrs   map[unsafe.Pointer]struct{}
	scEras   []uint64

	stats Stats

	// statsPub is the atomic mirror of stats (indexed by the m* consts
	// in trace.go), republished by the owner every statsPubEvery
	// operations and at Flush/Release — what StatsSampled aggregates so
	// live samplers never race the owner-only counters above. sincePub
	// is the owner-only cadence counter.
	statsPub [statsMirrorLen]atomic.Uint64
	sincePub uint32
}

// ID returns the thread's dense index within its domain. IDs are slot
// indices: a released slot's ID is reused by its next tenant, so
// tid-indexed caches in higher layers transfer with the lease.
func (t *Thread) ID() int { return t.tid }

// Incarnation returns the slot's lease count: 1 for a slot's first
// tenant, bumped every time the slot is re-leased after a Release.
func (t *Thread) Incarnation() uint64 { return t.incarnation.Load() }

// Domain returns the owning domain.
func (t *Thread) Domain() *Domain { return t.d }

// Release returns the thread's slot to the domain. It must be called by
// the owner goroutine, outside any operation (after EndOp); the handle
// must not be used afterwards. The slot becomes re-leasable by any
// goroutine via TryRegisterThread.
//
// Departure is made invisible to reclaimers in two steps:
//
//  1. The SWMR surface is wiped to its quiescent-empty state (shared
//     reservations nil/eraNone, announced epochs and IBR intervals
//     eraMax, NBR phase 0), so any scan — HP/HPAsym/HE pointer or era
//     scans, IBR/Crystalline interval scans, EBR's minimum epoch, the
//     POP pingAllAndWait skip logic — sees exactly what it sees for a
//     quiescent thread. Wiping is idempotent: EndOp already cleared
//     everything a policy publishes, so no reclaimer can be relying on
//     these words at release time.
//  2. The unreclaimed retire list (and Crystalline's sealed batches)
//     is donated to the domain's orphan queue, adopted by a live
//     thread's next reclamation pass — departing threads strand no
//     garbage.
//
// Monotone counters (opSeq, pubCount, incarnation) are deliberately NOT
// reset: a reclaimer that pinged this slot's old tenant and is still
// waiting observes an operation-boundary crossing (opSeq moved) and
// skips the slot, never attributing a stale reservation — or a stale
// publish count — to the new tenant. A ping word left set by such a
// reclaimer is inert: the next tenant's poll answers it with a publish
// of its own (empty or current) reservations, which is always safe, and
// under NBR with a restart-free ack (startOp acks before anything is
// read).
func (t *Thread) Release() {
	if t.opSeq.Load()%2 == 1 {
		panic("core: Thread.Release inside an operation (call EndOp first)")
	}
	// Claim the lease end first: a double Release panics before the
	// wipe below can disturb anything, and the slot stays off the free
	// list until finishRelease, so no tenant can lease it mid-wipe.
	// (A stale Release issued after the slot was already released AND
	// re-leased is the same contract violation as any other use of a
	// released handle, and is equally undetectable — a handle must
	// never be touched after Release returns.)
	t.d.beginRelease(t)
	for i := 0; i < MaxSlots; i++ {
		atomic.StorePointer(&t.sharedPtrs[i], nil)
		atomic.StoreUint64(&t.sharedEras[i], eraNone)
		t.localPtrs[i] = nil
		t.localEras[i] = eraNone
		t.heCache[i] = eraNone
	}
	t.resEpoch.Store(eraMax)
	t.ibrLo.Store(eraMax)
	t.ibrHi.Store(eraMax)
	t.phase.Store(0)
	t.ping.Store(0) // best effort; a ping landing after this is inert (see above)
	t.hiSlot = -1
	t.ibrHiCache = 0
	t.inWrite = false
	t.neutral = false
	t.sinceReclaim = 0
	t.d.finishRelease(t)
}

// adoptOrphans transfers retire lists donated by departed threads to t.
// Every policy calls it at the start of its reclamation pass and flush,
// so orphaned garbage is reclaimed by whichever live thread reclaims
// next. Adopted nodes are indistinguishable from t's own retires: their
// headers carry birth/retire eras and the retired flag, which is all
// any policy's free test reads.
func (t *Thread) adoptOrphans() {
	d := t.d
	if d.orphanLen.Load() == 0 {
		return // racy fast path: a missed donation is caught next pass
	}
	d.mu.Lock()
	nodes, batches := d.orphanNodes, d.orphanBatches
	adopted := d.orphanLen.Load()
	d.orphanNodes, d.orphanBatches = nil, nil
	d.orphanLen.Store(0)
	d.orphansAdopted += uint64(adopted)
	d.mu.Unlock()
	if len(nodes) > 0 {
		t.retired = append(t.retired, nodes...)
		if len(t.retired) > t.maxRetire {
			t.maxRetire = len(t.retired)
		}
		t.retiredLen.Store(uint32(len(t.retired)))
	}
	if len(batches) > 0 {
		// Sealed batches adopt wholesale; only a Crystalline domain
		// donates them, so t.batches is non-nil here.
		bs := t.batches
		for _, b := range batches {
			bs.pending += len(b.nodes)
		}
		bs.full = append(bs.full, batches...)
		t.batchedLen.Store(int64(bs.pending))
	}
}

// StatsSnapshot returns the thread's counters. Only meaningful from the
// owner goroutine or after the owner has stopped.
func (t *Thread) StatsSnapshot() Stats {
	s := t.stats
	s.MaxRetire = t.maxRetire
	return s
}

// StartOp marks the beginning of a data-structure operation. Every
// public operation of every data structure calls StartOp/EndOp exactly
// once (retries happen inside the pair).
func (t *Thread) StartOp() {
	t.opSeq.Add(1) // -> odd: active
	t.d.algo.startOp(t)
}

// EndOp marks the end of an operation: reservations are released and the
// thread becomes quiescent.
func (t *Thread) EndOp() {
	t.d.algo.endOp(t)
	// Drop private reservations. Plain stores: the array is owner-only.
	for i := 0; i <= t.hiSlot; i++ {
		t.localPtrs[i] = nil
		t.localEras[i] = eraNone
	}
	t.hiSlot = -1
	t.opSeq.Add(1) // -> even: quiescent (fences the clears above)
	if t.sincePub++; t.sincePub >= statsPubEvery {
		t.sincePub = 0
		t.publishStats()
	}
}

// Protect reads the shared link a into reservation slot `slot` and
// returns the (possibly tag-marked) pointer read. The second result is
// false only under NBR when the operation has been neutralized and must
// restart from its entry point; all other policies always return true
// (the POP algorithms' headline property: no reclamation-induced control
// flow).
func (t *Thread) Protect(slot int, a *Atomic) (unsafe.Pointer, bool) {
	if t.d.opts.Debug && (slot < 0 || slot >= MaxSlots) {
		panic(fmt.Sprintf("core: Protect slot %d out of range", slot))
	}
	if slot > t.hiSlot {
		t.hiSlot = slot
	}
	return t.d.algo.protect(t, slot, a)
}

// OnAlloc stamps a freshly allocated node. typ is the id returned by
// Domain.RegisterType for the node's type.
func (t *Thread) OnAlloc(h *Header, typ uint8) {
	h.Type = typ
	h.BirthEra = t.d.epoch.Load()
	h.RetireEra = 0
	t.allocCount++
	t.d.algo.allocHook(t)
}

// Retire hands an unlinked node to the reclamation layer. The node must
// already be unreachable from the data structure's roots.
func (t *Thread) Retire(h *Header) {
	if !h.retiredFlag.CompareAndSwap(0, 1) {
		panic("core: double retire")
	}
	h.RetireEra = t.d.epoch.Load()
	t.retired = append(t.retired, h)
	if len(t.retired) > t.maxRetire {
		t.maxRetire = len(t.retired)
	}
	t.retiredLen.Store(uint32(len(t.retired)))
	t.stats.Retires++
	t.sinceReclaim++
	t.d.algo.retireHook(t)
	t.retiredLen.Store(uint32(len(t.retired)))
}

// RetireListLen returns the current retire-list length (owner only).
func (t *Thread) RetireListLen() int { return len(t.retired) }

// Poll is a reclamation safepoint for threads that are busy outside
// Protect calls (the harness's "delayed but running" workers). It models
// the fact that a POSIX signal interrupts arbitrary user code.
func (t *Thread) Poll() { t.d.algo.poll(t) }

// EnterWritePhase begins an NBR write phase: the reservations currently
// held in the thread's slots are published with one fence and the thread
// becomes immune to neutralization until ExitWritePhase. It returns false
// if the operation was neutralized before the reservations could be
// published, in which case the caller must restart. For every other
// policy it is a no-op returning true.
func (t *Thread) EnterWritePhase() bool { return t.d.algo.enterWrite(t) }

// ExitWritePhase ends an NBR write phase (no-op for other policies). It
// must be called before the operation performs further unprotected reads
// (i.e., before retrying a failed attempt or continuing a traversal).
func (t *Thread) ExitWritePhase() { t.d.algo.exitWrite(t) }

// Flush attempts a final reclamation pass. Call it once per thread after
// the workload has stopped (all other threads quiescent) to drain retire
// lists for the end-of-run accounting.
func (t *Thread) Flush() {
	t.d.algo.flush(t)
	t.retiredLen.Store(uint32(len(t.retired)))
	t.publishStats() // flushed threads report exact sampled stats
}

// ---------------------------------------------------------------------
// Publish-on-ping machinery (shared by HazardPtrPOP, HazardEraPOP,
// EpochPOP and, as the ack path, NBR).
// ---------------------------------------------------------------------

// publishPtrs is the pointer-reservation "signal handler": copy the
// private array to the shared SWMR array, then advance the publish
// counter. The counter increment is an atomic RMW, so it both fences the
// stores and tells waiting reclaimers the handler completed (paper Alg. 2
// lines 40-43).
func (t *Thread) publishPtrs() {
	for i := 0; i < MaxSlots; i++ {
		atomic.StorePointer(&t.sharedPtrs[i], t.localPtrs[i])
	}
	t.pubCount.Add(1)
	t.stats.Publishes++
}

// publishEras is the era-reservation handler (HazardEraPOP).
func (t *Thread) publishEras() {
	for i := 0; i < MaxSlots; i++ {
		atomic.StoreUint64(&t.sharedEras[i], t.localEras[i])
	}
	t.pubCount.Add(1)
	t.stats.Publishes++
}

// checkPing polls the ping word and runs the given handler if a ping is
// pending. Clearing the flag before publishing means a ping that arrives
// mid-publish is handled by the next poll rather than lost.
//
// After publishing, the thread yields. A POSIX signal handler returns
// control to a *waiting* reclaimer immediately (the reclaimer runs on
// its own core); under GOMAXPROCS < threads the publisher would instead
// keep burning its whole timeslice while the reclaimer sits in the run
// queue, inflating every reclamation by tens of milliseconds. The yield
// restores the paper's prompt-handler semantics at the cost of one
// scheduler call on the (rare) publish path.
func (t *Thread) checkPing(publish func(*Thread)) {
	if t.ping.Load() != 0 {
		t.ping.Store(0)
		publish(t)
		runtime.Gosched()
	}
}

// pingAllAndWait implements collectPublishedCounters + pingAllToPublish +
// waitForAllPublished (paper Alg. 1 lines 19-21, Alg. 2 lines 36-51).
//
// It returns a per-thread skip mask: skip[i] means thread i's shared
// reservations must be ignored (the thread was quiescent, or crossed an
// operation boundary after our ping — in both cases any reservation it
// holds now was created after our victims were unlinked and is therefore
// excluded by the validation step; see the package comment).
//
// While waiting, the caller answers pings directed at itself via
// selfPublish, which is what makes concurrent reclaimers ping each other
// without deadlock (in the paper, signal handlers nest freely).
func (t *Thread) pingAllAndWait(selfPublish func(*Thread)) []bool {
	ts := t.d.threadList()
	n := len(ts)
	t.scCounts = grow(t.scCounts, n)
	t.scSeqs = grow(t.scSeqs, n)
	t.scSkip = growBool(t.scSkip, n)
	counts, seqs, skip := t.scCounts, t.scSeqs, t.scSkip
	t.stats.ThreadsScanned += uint64(n)

	// Collect counters and operation states.
	for i, o := range ts {
		if o == t {
			skip[i] = true // self: scanned from localPtrs/localEras directly
			continue
		}
		counts[i] = o.pubCount.Load()
		seqs[i] = o.opSeq.Load()
		skip[i] = seqs[i]%2 == 0 // quiescent: published-empty
	}

	// Ping (the pthread_kill loop).
	pingStart := time.Now()
	pinged := false
	for i, o := range ts {
		if !skip[i] {
			o.ping.Store(1)
			t.stats.PingsSent++
			pinged = true
		}
	}

	// Wait for every pinged thread to publish or to cross an operation
	// boundary.
	deadline := pingStart.Add(publishWaitLimit)
	for i, o := range ts {
		if skip[i] {
			continue
		}
		for o.pubCount.Load() == counts[i] {
			if o.opSeq.Load() != seqs[i] {
				// The thread left the operation it was in when we pinged;
				// its reservations were cleared at that boundary.
				skip[i] = true
				break
			}
			t.checkPing(selfPublish)
			runtime.Gosched()
			if time.Now().After(deadline) {
				panic(fmt.Sprintf("core: thread %d waited >%v for thread %d to publish (Assumption 1 violated: a thread is blocked inside an operation without polling)", t.tid, publishWaitLimit, o.tid))
			}
		}
	}
	if pinged {
		// Broadcast → last publish: one ping-ack observation per pass
		// that actually pinged (an all-quiescent pass has no ack wait).
		t.d.recordPingAck(pingStart)
	}
	return skip
}

// ---------------------------------------------------------------------
// Scanning and freeing
// ---------------------------------------------------------------------

// collectPtrSet gathers the reservation set for a pointer-based scan.
// skip==nil means scan everyone's shared slots (classic HP/HPAsym);
// otherwise skipped threads are ignored and the caller's own private
// slots are used directly.
func (t *Thread) collectPtrSet(skip []bool) map[unsafe.Pointer]struct{} {
	if t.scPtrs == nil {
		t.scPtrs = make(map[unsafe.Pointer]struct{}, MaxSlots*8)
	}
	set := t.scPtrs
	clear(set)
	ts := t.d.threadList()
	t.stats.ThreadsScanned += uint64(len(ts))
	for i, o := range ts {
		if skip != nil {
			if o == t {
				for s := 0; s < MaxSlots; s++ {
					if p := Mask(t.localPtrs[s]); p != nil {
						set[p] = struct{}{}
					}
				}
				continue
			}
			if i >= len(skip) {
				// A slot created after pingAllAndWait snapshotted the
				// list: every reservation it holds was made after our
				// victims were unlinked, so the POP skip rule applies.
				continue
			}
			if skip[i] {
				continue
			}
		}
		for s := 0; s < MaxSlots; s++ {
			if p := Mask(atomic.LoadPointer(&o.sharedPtrs[s])); p != nil {
				set[p] = struct{}{}
			}
		}
	}
	return set
}

// collectEraList gathers reserved eras for an era-based scan, with the
// same skip semantics as collectPtrSet.
func (t *Thread) collectEraList(skip []bool) []uint64 {
	eras := t.scEras[:0]
	ts := t.d.threadList()
	t.stats.ThreadsScanned += uint64(len(ts))
	for i, o := range ts {
		if skip != nil {
			if o == t {
				for s := 0; s < MaxSlots; s++ {
					if e := t.localEras[s]; e != eraNone {
						eras = append(eras, e)
					}
				}
				continue
			}
			if i >= len(skip) {
				continue // slot created after the ping snapshot (see collectPtrSet)
			}
			if skip[i] {
				continue
			}
		}
		for s := 0; s < MaxSlots; s++ {
			if e := atomic.LoadUint64(&o.sharedEras[s]); e != eraNone {
				eras = append(eras, e)
			}
		}
	}
	t.scEras = eras
	return eras
}

// freeUnreserved frees every retired node whose pointer is absent from
// the reservation set (paper Alg. 2 lines 26-35) and compacts the retire
// list in place. Returns the number freed.
//
// Node pointers equal Header pointers because Header is, by contract, the
// first field of every managed node type.
func (t *Thread) freeUnreserved(set map[unsafe.Pointer]struct{}) int {
	kept := t.retired[:0]
	freed := 0
	for _, h := range t.retired {
		if _, reserved := set[unsafe.Pointer(h)]; reserved {
			kept = append(kept, h)
		} else {
			t.d.free(t, h)
			freed++
		}
	}
	t.retired = kept
	t.stats.Frees += uint64(freed)
	return freed
}

// freeOutsideEras frees every retired node whose [birth,retire] lifespan
// intersects no reserved era (paper Alg. 4 canFree) and compacts.
func (t *Thread) freeOutsideEras(eras []uint64) int {
	kept := t.retired[:0]
	freed := 0
	for _, h := range t.retired {
		if eraListIntersects(eras, h.BirthEra, h.RetireEra) {
			kept = append(kept, h)
		} else {
			t.d.free(t, h)
			freed++
		}
	}
	t.retired = kept
	t.stats.Frees += uint64(freed)
	return freed
}

// eraListIntersects reports whether any reserved era falls within
// [birth, retire].
func eraListIntersects(eras []uint64, birth, retire uint64) bool {
	for _, e := range eras {
		if e >= birth && e <= retire {
			return true
		}
	}
	return false
}

// freeBeforeEpoch frees retired nodes with RetireEra < min (EBR/EpochPOP
// fast path) and compacts.
func (t *Thread) freeBeforeEpoch(min uint64) int {
	kept := t.retired[:0]
	freed := 0
	for _, h := range t.retired {
		if h.RetireEra < min {
			t.d.free(t, h)
			freed++
		} else {
			kept = append(kept, h)
		}
	}
	t.retired = kept
	t.stats.Frees += uint64(freed)
	return freed
}

// minAnnouncedEpoch scans every thread's announced epoch (eraMax when
// quiescent) and returns the minimum.
func (t *Thread) minAnnouncedEpoch() uint64 {
	min := uint64(eraMax)
	ts := t.d.threadList()
	t.stats.ThreadsScanned += uint64(len(ts))
	for _, o := range ts {
		if e := o.resEpoch.Load(); e < min {
			min = e
		}
	}
	return min
}

func grow(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
