package core

import (
	"time"
	"unsafe"
)

// ebrAlgo is RCU-style epoch-based reclamation (paper Alg. 6): reads are
// free; each operation announces the global epoch on entry and eraMax on
// exit; a reclaimer frees everything retired before the minimum announced
// epoch. Fast — and not robust: one delayed thread pins the minimum epoch
// and stalls reclamation everywhere (the failure mode EpochPOP fixes).
type ebrAlgo struct{ baseAlgo }

func (a *ebrAlgo) startOp(t *Thread) {
	t.opCount++
	if t.opCount%uint64(a.d.opts.EpochFreq) == 0 {
		a.d.epoch.Add(1)
	}
	t.resEpoch.Store(a.d.epoch.Load())
}

func (a *ebrAlgo) endOp(t *Thread) {
	t.resEpoch.Store(eraMax)
}

func (a *ebrAlgo) protect(t *Thread, slot int, cell *Atomic) (unsafe.Pointer, bool) {
	return cell.Load(), true
}

func (a *ebrAlgo) retireHook(t *Thread) {
	if t.sinceReclaim < a.d.opts.ReclaimThreshold {
		return
	}
	t.sinceReclaim = 0
	a.reclaim(t)
}

// reclaim frees everything retired before the minimum announced epoch.
// Released slots announce eraMax (Thread.Release), identical to
// quiescence, so they never pin the minimum.
func (a *ebrAlgo) reclaim(t *Thread) {
	defer a.d.recordPass(time.Now())
	t.stats.Reclaims++
	t.adoptOrphans()
	t.freeBeforeEpoch(t.minAnnouncedEpoch())
}

func (a *ebrAlgo) flush(t *Thread) {
	// Advance the epoch so nodes retired in the current epoch become
	// eligible once every thread is quiescent.
	a.d.epoch.Add(1)
	a.reclaim(t)
}
