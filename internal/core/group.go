package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// DomainGroup partitions one logical reclamation domain into member
// domains so that reclaim-time ping/scan fan-out is bounded by the
// threads actually reading a member's structures, not by the total
// thread population. A sharded store maps shards onto members; a
// reclaimer inside member m then pings and scans only m's registrants —
// O(readers-of-shard) instead of O(total threads) — which is exactly
// the multiplier that flattens POP's 64+-thread curves when one domain
// backs many shards.
//
// The group presents a single Handles-style lease facade: Acquire
// claims one *group slot* and returns a GroupHandle; the handle leases
// a real Thread in a member domain lazily, on first use of that member
// (GroupHandle.Member). A worker that only ever touches one shard
// therefore occupies exactly one member's thread list, and every other
// member's reclaimers never see it at all. Release returns every
// member thread the handle leased (each member donates its unreclaimed
// retires to its own orphanage, so the per-member Unreclaimed bounds
// are preserved) and frees the group slot.
//
// Membership invariant (safety): a thread's protected operation only
// touches structures registered in the member domain whose Thread
// performed it. The store layer guarantees this by construction —
// every store operation resolves the shard first and runs on that
// shard's member thread, and batched operations (GetBatch/PutBatch/
// Scan) visit shards sequentially, one member op at a time. A
// goroutine is consequently mid-operation in at most one member at any
// instant: its threads in all other members are quiescent (even
// opSeq), which reclaimers there skip without pinging, and a reclaimer
// spinning in pingAllAndWait inside member j can never be waiting on a
// publish from a thread stuck inside member k — no cross-member
// deadlock, and no cross-member fan-out.
//
// Each member is created with the full group-slot capacity, so a lazy
// member lease cannot fail: at most one member thread exists per
// (group slot, member) pair, and group slots are not re-leasable until
// the departing handle has released all its member threads.
type DomainGroup struct {
	members []*Domain
	slots   int

	mu       sync.Mutex
	handles  []*GroupHandle // one per group slot ever created, reused across leases
	free     []int          // LIFO of released group slots
	inUse    int
	peak     int
	acquires uint64
	releases uint64
	waits    uint64
	waiters  []chan struct{} // FIFO admission queue (buffered-1 wakeup tokens)
}

// NewDomainGroup creates a group of `members` member domains under one
// lease facade with `slots` group slots. members must be a positive
// power of two (the store's shard→member mapping is a shift); a group
// of 1 is the degenerate, ungrouped case and behaves exactly like a
// lone Domain behind a Handles pool. opts may be nil for defaults and
// applies to every member.
func NewDomainGroup(policy Policy, members, slots int, opts *Options) *DomainGroup {
	if members <= 0 || members&(members-1) != 0 {
		panic(fmt.Sprintf("core: group members must be a positive power of two, got %d", members))
	}
	if slots <= 0 {
		panic("core: group slots must be positive")
	}
	g := &DomainGroup{
		members: make([]*Domain, members),
		slots:   slots,
	}
	for i := range g.members {
		// Full group capacity per member: a handle leases at most one
		// thread here, so Member can never hit ErrNoSlots.
		g.members[i] = NewDomain(policy, slots, opts)
	}
	return g
}

// Members returns the number of member domains.
func (g *DomainGroup) Members() int { return len(g.members) }

// Member returns member domain i.
func (g *DomainGroup) Member(i int) *Domain { return g.members[i] }

// Policy returns the group's reclamation policy.
func (g *DomainGroup) Policy() Policy { return g.members[0].Policy() }

// Cap returns the group-slot capacity.
func (g *DomainGroup) Cap() int { return g.slots }

// GroupHandle is one leased group slot: the group-level analogue of a
// Thread handle. Between Acquire and Release it must only be used by
// the goroutine that acquired it (the same affinity rule as
// RegisterThread). Member lazily leases the per-member Thread the
// caller runs protected operations on.
type GroupHandle struct {
	g       *DomainGroup
	slot    int
	leased  bool
	leases  uint64
	threads []*Thread // lazily leased member threads, indexed by member
}

// Slot returns the handle's dense group-slot index, stable across
// release/re-lease — the group-level tid for slot-indexed caches.
func (h *GroupHandle) Slot() int { return h.slot }

// Incarnation returns the slot's cumulative lease count; (Slot,
// Incarnation) names this tenancy uniquely, mirroring
// Thread.Incarnation.
func (h *GroupHandle) Incarnation() uint64 { return h.leases }

// Group returns the handle's group.
func (h *GroupHandle) Group() *DomainGroup { return h.g }

// Member returns the handle's thread in member domain i, leasing it on
// first use. Lazy leasing is what keeps member thread lists short: a
// worker that never touches member i never appears in i's reclaimer
// scans.
func (h *GroupHandle) Member(i int) *Thread {
	if t := h.threads[i]; t != nil {
		return t
	}
	t, err := h.g.members[i].TryRegisterThread()
	if err != nil {
		// Impossible by construction (member capacity == group-slot
		// capacity, ≤ 1 thread per slot per member) unless the member
		// domain is also used outside the group facade.
		panic(fmt.Sprintf("core: member %d lease failed for group slot %d: %v", i, h.slot, err))
	}
	h.threads[i] = t
	return t
}

// MemberLeased returns the handle's thread in member i if one has been
// leased, else nil — the non-leasing observer for flush/stat paths.
func (h *GroupHandle) MemberLeased(i int) *Thread { return h.threads[i] }

// Flush drains the retire lists of every member thread this handle has
// leased (Thread.Flush per member).
func (h *GroupHandle) Flush() {
	for _, t := range h.threads {
		if t != nil {
			t.Flush()
		}
	}
}

// Drain is the end-of-run flush: it leases the handle's thread in
// every member it has not touched yet, then flushes all of them — so
// orphan retire lists donated to any member by departed tenants are
// adopted and reclaimed even if this handle's workload never visited
// that member. Use Flush for the lazy variant that preserves the
// handle's membership footprint.
func (h *GroupHandle) Drain() {
	for i := range h.threads {
		h.Member(i).Flush()
	}
}

// Poll answers pending pings on every member thread this handle has
// leased. Call it from code that runs long outside protected
// operations.
func (h *GroupHandle) Poll() {
	for _, t := range h.threads {
		if t != nil {
			t.Poll()
		}
	}
}

// Acquire leases a group slot for the calling goroutine. When every
// slot is leased it fails with an error wrapping ErrNoSlots.
func (g *DomainGroup) Acquire() (*GroupHandle, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	var h *GroupHandle
	if n := len(g.free); n > 0 {
		h = g.handles[g.free[n-1]]
		g.free = g.free[:n-1]
	} else if len(g.handles) < g.slots {
		h = &GroupHandle{
			g:       g,
			slot:    len(g.handles),
			threads: make([]*Thread, len(g.members)),
		}
		g.handles = append(g.handles, h)
	} else {
		return nil, fmt.Errorf("core: %d-slot domain group: %w", g.slots, ErrNoSlots)
	}
	h.leased = true
	h.leases++
	g.inUse++
	g.acquires++
	if g.inUse > g.peak {
		g.peak = g.inUse
	}
	return h, nil
}

// AcquireWait leases a group slot, blocking while the group is
// saturated: callers queue FIFO and are woken as handles are released.
// It returns ctx.Err() if ctx expires first — the admission-control
// path, identical in discipline to Handles.AcquireWait (eventually
// fair under queued load, not strictly FIFO against line-jumpers).
func (g *DomainGroup) AcquireWait(ctx context.Context) (*GroupHandle, error) {
	for {
		h, err := g.Acquire()
		if err == nil {
			return h, nil
		}
		if !errors.Is(err, ErrNoSlots) {
			return nil, err
		}
		w := make(chan struct{}, 1)
		g.mu.Lock()
		g.waiters = append(g.waiters, w)
		g.waits++
		g.mu.Unlock()
		// Re-try after enqueueing: a Release between the failed Acquire
		// above and the enqueue would have seen an empty queue and woken
		// nobody; this second look closes that window.
		if h, err := g.Acquire(); err == nil {
			g.abandonWait(w)
			return h, nil
		} else if !errors.Is(err, ErrNoSlots) {
			g.abandonWait(w)
			return nil, err
		}
		select {
		case <-w:
			// Woken by a Release: loop and contend for the freed slot.
		case <-ctx.Done():
			g.abandonWait(w)
			return nil, ctx.Err()
		}
	}
}

// abandonWait removes w from the admission queue; if w was already
// signalled, the wakeup token is forwarded so a cancelled waiter never
// swallows an admission.
func (g *DomainGroup) abandonWait(w chan struct{}) {
	g.mu.Lock()
	for i, x := range g.waiters {
		if x == w {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			g.mu.Unlock()
			return
		}
	}
	g.mu.Unlock()
	// Not queued ⇒ signalLocked already sent w its token.
	<-w
	g.mu.Lock()
	g.signalLocked()
	g.mu.Unlock()
}

// signalLocked pops the head waiter and hands it a wakeup token (g.mu
// held; buffered channels, the send never blocks).
func (g *DomainGroup) signalLocked() {
	if len(g.waiters) == 0 {
		return
	}
	w := g.waiters[0]
	g.waiters = g.waiters[1:]
	w <- struct{}{}
}

// Release returns h's group slot. Every member thread the handle
// leased is released first — each member's Thread.Release donates that
// member's unreclaimed retires to that member's orphanage, so orphan
// adoption stays member-local — and only then does the slot become
// re-leasable (keeping the ≤-1-thread-per-member-per-slot invariant),
// after which the head AcquireWait waiter, if any, is woken. Must be
// called by the goroutine that acquired h; h must not be used
// afterwards.
func (g *DomainGroup) Release(h *GroupHandle) {
	g.mu.Lock()
	if !h.leased {
		g.mu.Unlock()
		panic("core: Release of a group handle that is not leased (double release?)")
	}
	h.leased = false
	// Bookkeeping before the slot is actually freed, mirroring
	// Handles.Release: the brief under-count is the safe direction for
	// the peak statistic.
	g.inUse--
	g.mu.Unlock()
	for i, t := range h.threads {
		if t != nil {
			t.Release()
			h.threads[i] = nil
		}
	}
	g.mu.Lock()
	g.free = append(g.free, h.slot)
	g.releases++
	g.signalLocked()
	g.mu.Unlock()
}

// Do acquires a handle, runs fn with it, and releases it.
func (g *DomainGroup) Do(fn func(*GroupHandle) error) error {
	h, err := g.Acquire()
	if err != nil {
		return err
	}
	defer g.Release(h)
	return fn(h)
}

// InUse returns the number of group slots currently leased.
func (g *DomainGroup) InUse() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inUse
}

// Peak returns the maximum concurrently leased group slots.
func (g *DomainGroup) Peak() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.peak
}

// Acquires returns the cumulative group-slot lease count.
func (g *DomainGroup) Acquires() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.acquires
}

// Waits returns how many AcquireWait calls found the group saturated
// and queued (re-queues after losing a woken race count again).
func (g *DomainGroup) Waits() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waits
}

// Waiting returns the current admission-queue length.
func (g *DomainGroup) Waiting() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.waiters)
}

// Releases returns the cumulative group-slot release count.
func (g *DomainGroup) Releases() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.releases
}

// Stats aggregates reclamation statistics across all member domains.
func (g *DomainGroup) Stats() Stats {
	var agg Stats
	for _, d := range g.members {
		s := d.Stats()
		agg.Retires += s.Retires
		agg.Frees += s.Frees
		agg.Reclaims += s.Reclaims
		agg.EpochReclaims += s.EpochReclaims
		agg.POPReclaims += s.POPReclaims
		agg.PingsSent += s.PingsSent
		agg.ThreadsScanned += s.ThreadsScanned
		agg.Publishes += s.Publishes
		agg.Restarts += s.Restarts
		if s.MaxRetire > agg.MaxRetire {
			agg.MaxRetire = s.MaxRetire
		}
	}
	return agg
}

// ReclaimStats aggregates the per-pass fan-out counters across members
// — the figure of merit for grouping: ScannedPerPass at G members
// should be ~1/G of the ungrouped value for the same workload.
func (g *DomainGroup) ReclaimStats() ReclaimStats {
	var agg ReclaimStats
	for _, d := range g.members {
		r := d.ReclaimStats()
		agg.Passes += r.Passes
		agg.Pings += r.Pings
		agg.Scanned += r.Scanned
	}
	agg.fillAverages()
	return agg
}

// Unreclaimed sums retired-but-unfreed nodes across members (each
// member's orphanage included), preserving the per-member bound the
// robust policies guarantee.
func (g *DomainGroup) Unreclaimed() int64 {
	var total int64
	for _, d := range g.members {
		total += d.Unreclaimed()
	}
	return total
}

// Lifecycle aggregates member thread-slot lifecycle counters. Slots,
// Leased, Peak, Releases and the orphanage counters are sums over
// members (Peak is a sum of per-member peaks, an upper bound on the
// true concurrent peak); SlotLeases is the *group-slot* lease vector —
// tenant k of group slot i is (slot i, incarnation k), matching
// GroupHandle.Incarnation.
func (g *DomainGroup) Lifecycle() LifecycleStats {
	var agg LifecycleStats
	for _, d := range g.members {
		l := d.Lifecycle()
		agg.Slots += l.Slots
		agg.Leased += l.Leased
		agg.Peak += l.Peak
		agg.Releases += l.Releases
		agg.OrphanNodes += l.OrphanNodes
		agg.OrphansDonated += l.OrphansDonated
		agg.OrphansAdopted += l.OrphansAdopted
	}
	g.mu.Lock()
	leases := make([]uint64, len(g.handles))
	for i, h := range g.handles {
		leases[i] = h.leases
	}
	g.mu.Unlock()
	agg.SlotLeases = leases
	return agg
}
