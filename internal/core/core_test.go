package core_test

import (
	"runtime"
	"testing"
	"unsafe"

	"pop/internal/arena"
	"pop/internal/core"
)

// tnode is a minimal managed node for core-level tests. Header first, by
// the package contract.
type tnode struct {
	core.Header
	val  int64
	next core.Atomic
}

// env bundles a domain, a pool, and the registered type id.
type env struct {
	d      *core.Domain
	pool   *arena.Pool[tnode]
	caches []*arena.ThreadCache[tnode] // indexed by thread id (owner-only)
	typ    uint8
}

// cacheFor returns t's free-side cache (same sharded-free discipline the
// real data structures use).
func (e *env) cacheFor(t *core.Thread) *arena.ThreadCache[tnode] {
	c := e.caches[t.ID()]
	if c == nil {
		c = e.pool.NewCache()
		e.caches[t.ID()] = c
	}
	return c
}

func newEnv(t *testing.T, policy core.Policy, maxThreads int, opts *core.Options) *env {
	t.Helper()
	e := &env{pool: arena.NewPool[tnode](nil, nil)}
	e.d = core.NewDomain(policy, maxThreads, opts)
	e.caches = make([]*arena.ThreadCache[tnode], maxThreads)
	e.typ = e.d.RegisterType(func(t *core.Thread, h *core.Header) {
		e.cacheFor(t).Put((*tnode)(unsafe.Pointer(h)))
	})
	return e
}

func (e *env) alloc(t *core.Thread, cache *arena.ThreadCache[tnode], v int64) *tnode {
	n := cache.Get()
	n.val = v
	n.next.Raw(nil)
	t.OnAlloc(&n.Header, e.typ)
	return n
}

func TestPolicyStringRoundTrip(t *testing.T) {
	for _, p := range core.Policies() {
		got, err := core.ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("round trip %v -> %v", p, got)
		}
	}
	if _, err := core.ParsePolicy("nope"); err == nil {
		t.Fatal("ParsePolicy accepted junk")
	}
}

func TestMaskAndMark(t *testing.T) {
	var n tnode
	p := unsafe.Pointer(&n)
	if core.Marked(p) {
		t.Fatal("fresh pointer reads as marked")
	}
	m := core.WithMark(p)
	if !core.Marked(m) {
		t.Fatal("WithMark lost the mark")
	}
	if core.Mask(m) != p {
		t.Fatal("Mask did not recover the pointer")
	}
	if core.Mask(nil) != nil {
		t.Fatal("Mask(nil) != nil")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("WithMark(nil) did not panic")
			}
		}()
		core.WithMark(nil)
	}()
}

// TestBasicReclaimCycle exercises alloc → publish → retire → reclaim →
// free for every policy, verifying that unreserved nodes are eventually
// freed and the pool recycles them.
func TestBasicReclaimCycle(t *testing.T) {
	for _, p := range core.Policies() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			opts := &core.Options{ReclaimThreshold: 8, EpochFreq: 2, BatchSize: 4}
			e := newEnv(t, p, 2, opts)
			th := e.d.RegisterThread()
			cache := e.pool.NewCache()

			var cell core.Atomic
			const rounds = 100
			for i := 0; i < rounds; i++ {
				th.StartOp()
				n := e.alloc(th, cache, int64(i))
				cell.Store(unsafe.Pointer(n))
				got, ok := th.Protect(0, &cell)
				if !ok {
					t.Fatal("Protect returned restart outside NBR neutralization")
				}
				if got != unsafe.Pointer(n) {
					t.Fatalf("Protect read %p want %p", got, n)
				}
				// Unlink and retire.
				cell.Store(nil)
				th.Retire(&n.Header)
				th.EndOp()
			}
			th.Flush()

			st := e.d.Stats()
			if st.Retires != rounds && p != core.NR {
				t.Fatalf("retires = %d, want %d", st.Retires, rounds)
			}
			if p == core.NR {
				if st.Frees != 0 {
					t.Fatalf("NR freed %d nodes", st.Frees)
				}
				if e.d.Unreclaimed() != rounds {
					t.Fatalf("NR unreclaimed = %d, want %d", e.d.Unreclaimed(), rounds)
				}
				return
			}
			if st.Frees == 0 {
				t.Fatal("no nodes were freed")
			}
			if got := e.d.Unreclaimed(); got != rounds-int64(st.Frees) {
				t.Fatalf("Unreclaimed = %d, want %d", got, rounds-int64(st.Frees))
			}
			// After a quiescent flush every policy except NR should have
			// drained everything: no reservations remain.
			if e.d.Unreclaimed() != 0 {
				t.Fatalf("flush left %d unreclaimed nodes", e.d.Unreclaimed())
			}
			if e.pool.Outstanding() != 0 {
				t.Fatalf("pool outstanding = %d after flush", e.pool.Outstanding())
			}
		})
	}
}

// TestReservedNodeNotFreed pins a node via a second thread's reservation
// and checks that reclamation skips it while freeing everything else.
func TestReservedNodeNotFreed(t *testing.T) {
	for _, p := range core.Policies() {
		if p == core.NR || p == core.EBR || p == core.EpochPOP ||
			p == core.IBR || p == core.Crystalline || p == core.NBR {
			// Era/epoch policies protect by epoch, not identity; NBR
			// restarts the reader instead. Covered by their own tests.
			continue
		}
		p := p
		t.Run(p.String(), func(t *testing.T) {
			opts := &core.Options{ReclaimThreshold: 4}
			e := newEnv(t, p, 2, opts)
			reader := e.d.RegisterThread()
			reclaimer := e.d.RegisterThread()
			rcache := e.pool.NewCache()

			reclaimer.StartOp()
			pinned := e.alloc(reclaimer, rcache, 42)
			var cell core.Atomic
			cell.Store(unsafe.Pointer(pinned))

			// The reader protects the node on its own goroutine, then
			// stays inside its operation answering pings (a "busy"
			// thread) until released.
			readerReady := make(chan struct{})
			release := make(chan struct{})
			readerDone := make(chan struct{})
			go func() {
				defer close(readerDone)
				reader.StartOp()
				if got, _ := reader.Protect(0, &cell); got != unsafe.Pointer(pinned) {
					t.Error("reader failed to protect")
				}
				close(readerReady)
				for {
					select {
					case <-release:
						reader.EndOp()
						return
					default:
						reader.Poll()
						runtime.Gosched()
					}
				}
			}()
			<-readerReady

			// Unlink, retire the pinned node plus filler to cross the
			// reclamation threshold.
			cell.Store(nil)
			reclaimer.Retire(&pinned.Header)
			for i := 0; i < 8; i++ {
				filler := e.alloc(reclaimer, rcache, int64(i))
				reclaimer.Retire(&filler.Header)
			}
			reclaimer.EndOp()

			if !pinned.Header.Retired() {
				t.Fatal("pinned node was freed while reserved")
			}
			if reclaimer.StatsSnapshot().Frees == 0 {
				t.Fatal("reclaimer freed nothing at all")
			}

			// Release the reservation; the next reclamation frees it.
			close(release)
			<-readerDone
			reclaimer.Flush()
			if pinned.Header.Retired() {
				t.Fatal("pinned node not freed after release")
			}
		})
	}
}
