package core

import "unsafe"

// nrAlgo is the leaky baseline ("NR" in the paper's plots): reads are
// plain loads, retired nodes are dropped on the floor and never freed.
// It bounds the best possible read-path performance and the worst
// possible memory behaviour.
type nrAlgo struct{ baseAlgo }

func (a *nrAlgo) protect(t *Thread, slot int, cell *Atomic) (unsafe.Pointer, bool) {
	return cell.Load(), true
}

func (a *nrAlgo) retireHook(t *Thread) {
	// Leak: account the nodes and forget them. The retire list is drained
	// immediately so its length stays ~0 in the memory plots (NR has no
	// deferred-reclamation backlog — the leak shows up in outstanding
	// nodes instead). Slot lifecycle audit: because the list is always
	// empty at quiescence, an NR thread's Release never donates orphans,
	// so NR needs no adoption pass.
	a.d.leaked.Add(int64(len(t.retired)))
	for _, h := range t.retired {
		// Mark permanently retired; nobody will free these.
		_ = h
	}
	t.retired = t.retired[:0]
}
