package core

import (
	"time"
	"unsafe"
)

// epochPOPAlgo is EpochPOP (paper Alg. 3): threads run classic EBR and
// HazardPtrPOP *simultaneously*. Operations announce epochs exactly like
// EBR (so reclamation is normally the cheap minimum-epoch test), while
// every read also maintains a private pointer reservation exactly like
// HazardPtrPOP (no fence). When the EBR path fails to shrink the retire
// list — the signature of a delayed thread pinning the minimum epoch —
// the reclaimer escalates to publish-on-ping and frees around the delayed
// thread's (now published) reservations. No global mode switch: different
// threads can be reclaiming in different modes at the same time, which is
// the paper's key contrast with Qsense.
type epochPOPAlgo struct{ baseAlgo }

func (a *epochPOPAlgo) startOp(t *Thread) {
	t.checkPing((*Thread).publishPtrs)
	// EBR announcement (Alg. 3 lines 10-13).
	t.opCount++
	if t.opCount%uint64(a.d.opts.EpochFreq) == 0 {
		a.d.epoch.Add(1)
	}
	t.resEpoch.Store(a.d.epoch.Load())
}

func (a *epochPOPAlgo) endOp(t *Thread) {
	t.resEpoch.Store(eraMax)
	t.checkPing((*Thread).publishPtrs)
}

func (a *epochPOPAlgo) protect(t *Thread, slot int, cell *Atomic) (unsafe.Pointer, bool) {
	t.checkPing((*Thread).publishPtrs)
	for {
		p := cell.Load()
		t.localPtrs[slot] = Mask(p) // the HazardPtrPOP half: private, no fence
		if cell.Load() == p {
			return p, true
		}
	}
}

func (a *epochPOPAlgo) poll(t *Thread) { t.checkPing((*Thread).publishPtrs) }

func (a *epochPOPAlgo) retireHook(t *Thread) {
	threshold := a.d.opts.ReclaimThreshold
	if t.sinceReclaim < threshold {
		return
	}
	t.sinceReclaim = 0
	defer a.d.recordPass(time.Now())
	// Fast path (Alg. 3 lines 24-25): EBR-style reclamation. Released
	// slots announce eraMax and never pin the minimum epoch; the
	// escalation path inherits hppop.go's slot-lifecycle audit (released
	// slots skip as quiescent, boundary-crossing detection is monotone
	// across slot reuse).
	t.stats.Reclaims++
	t.stats.EpochReclaims++
	t.adoptOrphans()
	t.freeBeforeEpoch(t.minAnnouncedEpoch())
	// Escalation (lines 26-30): if the list is still ≥ C×threshold, some
	// thread is pinning an old epoch — ping everyone and free with the
	// HazardPtrPOP rule, skipping only the published reservations.
	if len(t.retired) >= a.d.opts.CMult*threshold {
		t.stats.POPReclaims++
		skip := t.pingAllAndWait((*Thread).publishPtrs)
		set := t.collectPtrSet(skip)
		t.freeUnreserved(set)
	}
}

func (a *epochPOPAlgo) flush(t *Thread) {
	defer a.d.recordPass(time.Now())
	a.d.epoch.Add(1)
	t.stats.Reclaims++
	t.stats.EpochReclaims++
	t.adoptOrphans()
	t.freeBeforeEpoch(t.minAnnouncedEpoch())
	if len(t.retired) > 0 {
		t.stats.POPReclaims++
		skip := t.pingAllAndWait((*Thread).publishPtrs)
		set := t.collectPtrSet(skip)
		t.freeUnreserved(set)
	}
}
