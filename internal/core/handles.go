package core

import "sync"

// Handles is a goroutine-affine pool of Thread handles over a Domain:
// serving layers size their domain for the peak worker count and let
// the live worker set breathe inside it. Acquire leases a handle
// (re-leasing released slots before growing toward the domain cap) and
// binds it to the calling goroutine; Release returns it, after which
// any goroutine may acquire the same slot. The pool is just the
// domain's slot lifecycle behind a concurrency-safe facade — the
// ownership-transfer (happens-before) edge is the domain's, so
// tid-indexed caches in the ds and store layers hand over with the
// slot.
//
// A handle acquired here obeys the same affinity rule as one from
// RegisterThread: between Acquire and Release it must only be used by
// the goroutine that acquired it.
type Handles struct {
	d *Domain

	mu       sync.Mutex
	inUse    int
	peak     int
	acquires uint64
}

// NewHandles creates a handle pool over d. Multiple pools may share a
// domain (they draw from the same slot space); handles from
// RegisterThread and from pools coexist freely.
func NewHandles(d *Domain) *Handles {
	return &Handles{d: d}
}

// Domain returns the pool's domain.
func (p *Handles) Domain() *Domain { return p.d }

// Acquire leases a thread handle for the calling goroutine. It fails
// only when every one of the domain's slots is currently leased.
func (p *Handles) Acquire() (*Thread, error) {
	t, err := p.d.TryRegisterThread()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.inUse++
	p.acquires++
	if p.inUse > p.peak {
		p.peak = p.inUse
	}
	p.mu.Unlock()
	return t, nil
}

// Release returns a handle to the domain (Thread.Release: the slot's
// reservations read empty to scanners, unreclaimed retires are donated
// for adoption, and the slot becomes re-leasable). Must be called by
// the goroutine that acquired t; t must not be used afterwards.
func (p *Handles) Release(t *Thread) {
	// Bookkeeping before the slot is actually freed: once t.Release
	// returns, a concurrent Acquire can succeed, and counting ourselves
	// out afterwards would let InUse/Peak overshoot the domain's true
	// concurrency. The brief under-count in the other order is the safe
	// direction for a peak statistic.
	p.mu.Lock()
	p.inUse--
	p.mu.Unlock()
	t.Release()
}

// Do acquires a handle, runs fn with it, and releases it — the
// lease-scoped convenience for short-lived workers.
func (p *Handles) Do(fn func(*Thread) error) error {
	t, err := p.Acquire()
	if err != nil {
		return err
	}
	defer p.Release(t)
	return fn(t)
}

// InUse returns the number of handles currently acquired through this
// pool.
func (p *Handles) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inUse
}

// Peak returns the maximum concurrently acquired handles this pool has
// seen.
func (p *Handles) Peak() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// Acquires returns the cumulative Acquire count (lease churn).
func (p *Handles) Acquires() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.acquires
}

// Cap returns the domain's slot capacity.
func (p *Handles) Cap() int { return p.d.MaxThreads() }
