package core

import (
	"context"
	"errors"
	"sync"
)

// Handles is a goroutine-affine pool of Thread handles over a Domain:
// serving layers size their domain for the peak worker count and let
// the live worker set breathe inside it. Acquire leases a handle
// (re-leasing released slots before growing toward the domain cap) and
// binds it to the calling goroutine; Release returns it, after which
// any goroutine may acquire the same slot. The pool is just the
// domain's slot lifecycle behind a concurrency-safe facade — the
// ownership-transfer (happens-before) edge is the domain's, so
// tid-indexed caches in the ds and store layers hand over with the
// slot.
//
// AcquireWait is the admission-control variant: instead of returning
// ErrNoSlots when the domain is full, the caller queues (FIFO) until a
// handle released through THIS pool frees a slot or its context
// expires. A serving front places it in the accept path, so the
// connection population can exceed the slot population and excess
// connections wait their turn instead of being refused.
//
// A handle acquired here obeys the same affinity rule as one from
// RegisterThread: between Acquire and Release it must only be used by
// the goroutine that acquired it.
type Handles struct {
	d *Domain

	mu       sync.Mutex
	inUse    int
	peak     int
	acquires uint64
	waits    uint64          // AcquireWait calls that had to queue
	waiters  []chan struct{} // FIFO admission queue (buffered-1 wakeup tokens)
}

// NewHandles creates a handle pool over d. Multiple pools may share a
// domain (they draw from the same slot space); handles from
// RegisterThread and from pools coexist freely. Note that AcquireWait
// waiters are woken only by Release calls on their own pool: a domain
// shared between pools can starve one pool's waiters if the other pool
// holds every slot.
func NewHandles(d *Domain) *Handles {
	return &Handles{d: d}
}

// Domain returns the pool's domain.
func (p *Handles) Domain() *Domain { return p.d }

// Acquire leases a thread handle for the calling goroutine. When every
// one of the domain's slots is currently leased it fails with an error
// wrapping ErrNoSlots.
func (p *Handles) Acquire() (*Thread, error) {
	t, err := p.d.TryRegisterThread()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.inUse++
	p.acquires++
	if p.inUse > p.peak {
		p.peak = p.inUse
	}
	p.mu.Unlock()
	return t, nil
}

// AcquireWait leases a thread handle, blocking while the domain is
// saturated: callers queue FIFO and are woken as handles are released
// through this pool. It returns ctx.Err() if ctx expires first. This is
// the admission-control primitive — a caller population larger than the
// slot population queues for slots instead of erroring — so the only
// error a healthy (deadline-free) caller can see is its own context's.
//
// Wakeups are handed to waiters in queue order, but a woken waiter
// re-runs Acquire and can lose the slot to a concurrent non-waiting
// Acquire; it then re-queues at the tail. Admission is therefore
// eventually fair under queued load, not strictly FIFO against
// line-jumpers.
func (p *Handles) AcquireWait(ctx context.Context) (*Thread, error) {
	for {
		t, err := p.Acquire()
		if err == nil {
			return t, nil
		}
		if !errors.Is(err, ErrNoSlots) {
			return nil, err
		}
		w := make(chan struct{}, 1)
		p.mu.Lock()
		p.waiters = append(p.waiters, w)
		p.waits++
		p.mu.Unlock()
		// Re-try after enqueueing: a Release between the failed Acquire
		// above and the enqueue would have seen an empty queue and woken
		// nobody; this second look closes that window.
		if t, err := p.Acquire(); err == nil {
			p.abandonWait(w)
			return t, nil
		} else if !errors.Is(err, ErrNoSlots) {
			p.abandonWait(w)
			return nil, err
		}
		select {
		case <-w:
			// Woken by a Release: loop and contend for the freed slot.
		case <-ctx.Done():
			p.abandonWait(w)
			return nil, ctx.Err()
		}
	}
}

// abandonWait removes w from the admission queue. If w was already
// popped and signalled, the wakeup token is forwarded to the next
// waiter so a cancelled waiter never swallows an admission.
func (p *Handles) abandonWait(w chan struct{}) {
	p.mu.Lock()
	for i, x := range p.waiters {
		if x == w {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			p.mu.Unlock()
			return
		}
	}
	p.mu.Unlock()
	// Not queued ⇒ signalLocked already sent w its token (the send
	// happens under the lock we just held), so this receive cannot block.
	<-w
	p.mu.Lock()
	p.signalLocked()
	p.mu.Unlock()
}

// signalLocked pops the head waiter and hands it a wakeup token
// (p.mu held; the channels are buffered so the send never blocks).
func (p *Handles) signalLocked() {
	if len(p.waiters) == 0 {
		return
	}
	w := p.waiters[0]
	p.waiters = p.waiters[1:]
	w <- struct{}{}
}

// Release returns a handle to the domain (Thread.Release: the slot's
// reservations read empty to scanners, unreclaimed retires are donated
// for adoption, and the slot becomes re-leasable) and wakes the head
// AcquireWait waiter, if any. Must be called by the goroutine that
// acquired t; t must not be used afterwards.
func (p *Handles) Release(t *Thread) {
	// Bookkeeping before the slot is actually freed: once t.Release
	// returns, a concurrent Acquire can succeed, and counting ourselves
	// out afterwards would let InUse/Peak overshoot the domain's true
	// concurrency. The brief under-count in the other order is the safe
	// direction for a peak statistic.
	p.mu.Lock()
	p.inUse--
	p.mu.Unlock()
	t.Release()
	// Wake after the slot is genuinely free, so the woken waiter's
	// Acquire can succeed immediately.
	p.mu.Lock()
	p.signalLocked()
	p.mu.Unlock()
}

// Do acquires a handle, runs fn with it, and releases it — the
// lease-scoped convenience for short-lived workers.
func (p *Handles) Do(fn func(*Thread) error) error {
	t, err := p.Acquire()
	if err != nil {
		return err
	}
	defer p.Release(t)
	return fn(t)
}

// InUse returns the number of handles currently acquired through this
// pool.
func (p *Handles) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inUse
}

// Peak returns the maximum concurrently acquired handles this pool has
// seen.
func (p *Handles) Peak() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// Acquires returns the cumulative Acquire count (lease churn).
func (p *Handles) Acquires() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.acquires
}

// Waits returns how many AcquireWait calls found the domain saturated
// and queued (each re-queue after losing a woken race counts again): the
// admission-queue pressure statistic.
func (p *Handles) Waits() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.waits
}

// Waiting returns the current admission-queue length.
func (p *Handles) Waiting() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.waiters)
}

// Cap returns the domain's slot capacity.
func (p *Handles) Cap() int { return p.d.MaxThreads() }
