package core

import (
	"sync/atomic"
	"unsafe"
)

// Header is embedded (by value, typically as the first field) in every
// node managed by a Domain. It carries the lifetime metadata the era-based
// algorithms need and the retire-state bit used for double-retire and
// double-free detection.
type Header struct {
	// BirthEra is the global era at allocation (stamped by Thread.OnAlloc;
	// used by HE, IBR and the POP era variant).
	BirthEra uint64
	// RetireEra is the global era at retirement (stamped by Thread.Retire).
	RetireEra uint64
	// Type is the node-type id from Domain.RegisterType; it selects the
	// free function when the node is reclaimed.
	Type uint8

	// retiredFlag is 1 between Retire and free. It exists purely to turn
	// double retires and double frees into immediate panics instead of
	// silent corruption.
	retiredFlag atomic.Uint32
}

// Retired reports whether the node is currently in some retire list.
func (h *Header) Retired() bool { return h.retiredFlag.Load() == 1 }

// Atomic is a CAS-able cell holding a (possibly tag-marked) node pointer.
// It is the only way data structures read or write shared links, which
// lets the reclamation layer own the memory-ordering story.
type Atomic struct {
	p unsafe.Pointer
}

// Load atomically reads the cell.
func (a *Atomic) Load() unsafe.Pointer { return atomic.LoadPointer(&a.p) }

// Store atomically writes the cell.
func (a *Atomic) Store(p unsafe.Pointer) { atomic.StorePointer(&a.p, p) }

// CompareAndSwap atomically replaces old with new and reports success.
func (a *Atomic) CompareAndSwap(old, new unsafe.Pointer) bool {
	return atomic.CompareAndSwapPointer(&a.p, old, new)
}

// Raw initialises the cell with a plain store (no fence). Only valid
// while the cell is unpublished (node initialisation) — but note that a
// *recycled* node's cells can still be loaded by an NBR-neutralized
// thread that held the node before it was freed: that thread's read
// value is discarded at its restart (EnterWritePhase/Protect gate every
// use), and a word-sized aligned store cannot tear, so the pairing is
// sound. It is still formally a data race, so race builds substitute an
// atomic store via storeRelaxed (the same shim HPAsym's publication
// uses; see relaxed.go).
func (a *Atomic) Raw(p unsafe.Pointer) { storeRelaxed(&a.p, p) }

// Marked reports whether the low-order tag bit is set (Harris-Michael's
// logical-deletion mark).
func Marked(p unsafe.Pointer) bool { return uintptr(p)&1 != 0 }

// WithMark returns p with the low-order tag bit set. p must be an
// unmarked, word-aligned, non-nil node pointer: data structures that mark
// links terminate them with sentinel nodes, never nil, so a marked nil
// cannot arise. The tagged value remains a valid interior pointer of the
// node's arena slab, so it is safe to store in pointer-typed shared cells.
// (unsafe.Add rather than a uintptr round-trip: the result provably stays
// inside the node's allocation, which both vet and the GC accept.)
func WithMark(p unsafe.Pointer) unsafe.Pointer {
	if p == nil {
		panic("core: WithMark(nil): marked links must use sentinel tails")
	}
	return unsafe.Add(p, 1)
}

// Flag is an atomic boolean for data-structure state bits (the lazy
// list's marked flag, the trees' dead flags). A plain bool under a lock
// would race with optimistic readers, so the bit is atomic.
type Flag struct {
	v atomic.Uint32
}

// Load reports the flag.
func (f *Flag) Load() bool { return f.v.Load() != 0 }

// Store sets the flag.
func (f *Flag) Store(b bool) {
	if b {
		f.v.Store(1)
	} else {
		f.v.Store(0)
	}
}
