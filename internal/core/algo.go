package core

import "unsafe"

// algorithm is the per-policy behaviour behind a Thread's public API.
// One stateless instance per Domain; all mutable state lives on Thread.
type algorithm interface {
	// initThread runs on every lease of a slot — first registration AND
	// re-lease after a Release. Implementations must tolerate
	// re-initialization of a reused slot: by then finishRelease has
	// drained the slot's retire list and sealed batches into the orphan
	// queue, so replacing per-slot state (as crystalline does with a
	// fresh batchState) discards nothing.
	initThread(t *Thread)
	// startOp runs at operation start (after opSeq goes odd).
	startOp(t *Thread)
	// endOp runs at operation end (before local slots are cleared and
	// opSeq goes even); it releases any policy-specific announcements.
	endOp(t *Thread)
	// protect implements Thread.Protect.
	protect(t *Thread, slot int, a *Atomic) (unsafe.Pointer, bool)
	// retireHook runs after a node is appended to the retire list and
	// decides whether to reclaim.
	retireHook(t *Thread)
	// allocHook runs on every allocation (IBR's epoch cadence).
	allocHook(t *Thread)
	// poll is a reclamation safepoint outside Protect.
	poll(t *Thread)
	// enterWrite / exitWrite bracket an NBR write phase.
	enterWrite(t *Thread) bool
	exitWrite(t *Thread)
	// flush performs a final reclamation attempt.
	flush(t *Thread)
}

// baseAlgo supplies the no-op defaults every policy starts from.
type baseAlgo struct{ d *Domain }

func (baseAlgo) initThread(*Thread) {}
func (baseAlgo) startOp(*Thread)    {}
func (baseAlgo) endOp(*Thread)      {}
func (baseAlgo) retireHook(*Thread) {}
func (baseAlgo) allocHook(*Thread)  {}
func (baseAlgo) poll(*Thread)       {}
func (b baseAlgo) enterWrite(*Thread) bool {
	return true
}
func (baseAlgo) exitWrite(*Thread) {}
func (baseAlgo) flush(*Thread)     {}

// newAlgorithm wires a policy to its implementation.
func newAlgorithm(d *Domain, p Policy) algorithm {
	b := baseAlgo{d: d}
	switch p {
	case NR:
		return &nrAlgo{baseAlgo: b}
	case HP:
		return &hpAlgo{baseAlgo: b}
	case HPAsym:
		return &hpAsymAlgo{baseAlgo: b}
	case HE:
		return &heAlgo{baseAlgo: b}
	case EBR:
		return &ebrAlgo{baseAlgo: b}
	case IBR:
		return &ibrAlgo{baseAlgo: b}
	case NBR:
		return &nbrAlgo{baseAlgo: b}
	case HazardPtrPOP:
		return &hpPOPAlgo{baseAlgo: b}
	case HazardEraPOP:
		return &hePOPAlgo{baseAlgo: b}
	case EpochPOP:
		return &epochPOPAlgo{baseAlgo: b}
	case Crystalline:
		return &crystAlgo{baseAlgo: b}
	default:
		panic("core: unknown policy " + p.String())
	}
}
