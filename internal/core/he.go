package core

import (
	"time"

	"sync/atomic"
	"unsafe"
)

// heAlgo is hazard eras (Ramalhete & Correia; paper Alg. 4). Readers
// reserve the current global era instead of a pointer; the publish fence
// is only paid when the era changed since the slot's previous
// reservation, which amortises HP's per-read fence across epoch periods.
// A node is freeable when no reserved era intersects its [birth, retire]
// lifespan.
type heAlgo struct{ baseAlgo }

func (a *heAlgo) protect(t *Thread, slot int, cell *Atomic) (unsafe.Pointer, bool) {
	oldEra := t.heCache[slot]
	for {
		p := cell.Load()
		newEra := a.d.epoch.Load()
		if newEra == oldEra {
			return p, true
		}
		// Era moved: publish the new reservation (seq_cst store = fence)
		// and re-read the pointer under it.
		atomic.StoreUint64(&t.sharedEras[slot], newEra)
		t.heCache[slot] = newEra
		oldEra = newEra
	}
}

func (a *heAlgo) endOp(t *Thread) {
	for i := 0; i <= t.hiSlot; i++ {
		if t.heCache[i] != eraNone {
			atomic.StoreUint64(&t.sharedEras[i], eraNone)
			t.heCache[i] = eraNone
		}
	}
}

func (a *heAlgo) retireHook(t *Thread) {
	if t.sinceReclaim < a.d.opts.ReclaimThreshold {
		return
	}
	t.sinceReclaim = 0
	// Alg. 4 line 21: the reclaimer advances the era so in-flight
	// operations stop pinning the current one.
	a.d.epoch.Add(1)
	a.reclaim(t)
}

// reclaim gathers reserved eras from every slot. Released slots read
// eraNone in every era slot (Thread.Release), contributing nothing to
// the lifespan test; a re-leased slot shows only eras its new tenant
// published.
func (a *heAlgo) reclaim(t *Thread) {
	defer a.d.recordPass(time.Now())
	t.stats.Reclaims++
	t.adoptOrphans()
	eras := t.collectEraList(nil)
	t.freeOutsideEras(eras)
}

func (a *heAlgo) flush(t *Thread) {
	a.d.epoch.Add(1)
	a.reclaim(t)
}
