// Package core implements the paper's contribution — the publish-on-ping
// (POP) safe-memory-reclamation algorithms HazardPtrPOP, HazardEraPOP and
// EpochPOP — together with every baseline scheme the paper evaluates
// against: hazard pointers (HP), asymmetric-fence hazard pointers
// (HPAsym, Folly-style), hazard eras (HE), epoch-based reclamation (EBR,
// RCU-style), interval-based reclamation (IBR/2GE), neutralization-based
// reclamation (NBR+), a leaky no-reclamation baseline (NR) and a
// simplified Crystalline-style batch reclaimer.
//
// # The ping substrate (simulating POSIX signals)
//
// The paper delivers "publish your reservations" requests with
// pthread_kill; the receiving signal handler copies the thread's private
// reservation array into shared single-writer multi-reader (SWMR) slots,
// issues one fence, and increments a publish counter. Go cannot interrupt
// a goroutine asynchronously, so this package substitutes safepoint
// polling: every Thread owns a padded ping word that reclaimers set and
// that the thread polls on each Protect (every shared-pointer read, the
// natural unit of reader progress) and at StartOp/EndOp. When the poll
// observes a ping, the thread runs the handler inline. Signal-delivery
// latency in the paper (bounded, per Assumption 1) becomes poll latency
// here (bounded by the gap between consecutive reads).
//
// A real signal handler also runs while a thread is *between* operations;
// a polling thread does not. Each Thread therefore maintains a
// seqlock-style operation counter (opSeq: odd while inside an operation,
// even while quiescent). A reclaimer that observes an even opSeq treats
// the thread as published-empty: EndOp clears reservations before the
// transition, and any reservation made by a later operation can only name
// nodes read after the victim was unlinked, which the standard hazard-
// pointer validation step rejects (the paper's own safety argument,
// Property 2 case t1' < t2').
//
// # Cost fidelity
//
// The asymmetry the paper exploits is preserved on amd64:
//
//   - HP publishes with a sequentially-consistent store (Go's
//     atomic.StorePointer compiles to XCHG — a full fence, the same
//     instruction C++ seq_cst stores compile to);
//   - HPAsym publishes with a plain store (MOV) and shifts ordering cost
//     to the reclaimer (see hpasym.go for the membarrier substitution);
//   - the POP algorithms store to a *private* array (MOV to an owned
//     cache line) plus one load of an owned ping word, and fence only in
//     the rare publish handler.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"
	"unsafe"

	"pop/internal/padded"
	"pop/internal/report"
)

// ErrNoSlots is the typed exhaustion error: every one of a domain's
// thread slots is currently leased. Domain.TryRegisterThread and
// Handles.Acquire return errors wrapping it (test with errors.Is), and
// Handles.AcquireWait turns it into queueing — the admission-control
// path serving layers block on instead of failing the client.
var ErrNoSlots = errors.New("thread capacity exhausted (all slots leased)")

// MaxSlots is the number of reservation slots per thread (the paper's
// MAX_HP). The deepest consumer is the (a,b)-tree, which protects
// grandparent, parent, leaf and a sibling.
const MaxSlots = 8

// maxTypes is the number of distinct node types a domain can free. The
// store layer registers one type per shard (each shard is its own
// structure instance) plus one for value-retire tickets, so the budget
// accommodates the store's 32-shard cap with room for side structures.
const maxTypes = 64

// eraNone is the "no reservation" era value (eras start at 1).
const eraNone = 0

// eraMax marks a quiescent thread's announced epoch.
const eraMax = ^uint64(0)

// Policy selects a reclamation algorithm.
type Policy uint8

// The reclamation policies, in the order the paper's plots list them.
const (
	NR           Policy = iota // no reclamation (leaky baseline)
	HP                         // hazard pointers, per-read fence
	HPAsym                     // hazard pointers with asymmetric fences (Folly-style)
	HE                         // hazard eras
	EBR                        // epoch-based reclamation (RCU-style)
	IBR                        // interval-based reclamation (2GE)
	NBR                        // neutralization-based reclamation (NBR+)
	HazardPtrPOP               // the paper: HP with publish-on-ping
	HazardEraPOP               // the paper: HE with publish-on-ping
	EpochPOP                   // the paper: dual-mode EBR + HazardPtrPOP
	Crystalline                // simplified Crystalline-style batch reclaimer (appendix E)
	numPolicies
)

var policyNames = [numPolicies]string{
	NR: "NR", HP: "HP", HPAsym: "HPAsym", HE: "HE", EBR: "EBR", IBR: "IBR",
	NBR: "NBR", HazardPtrPOP: "HazardPtrPOP", HazardEraPOP: "HazardEraPOP",
	EpochPOP: "EpochPOP", Crystalline: "Crystalline",
}

// String returns the policy's canonical name.
func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// ParsePolicy resolves a case-sensitive policy name.
func ParsePolicy(s string) (Policy, error) {
	for i, n := range policyNames {
		if n == s {
			return Policy(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown policy %q", s)
}

// Policies returns all policies in plot order.
func Policies() []Policy {
	out := make([]Policy, numPolicies)
	for i := range out {
		out[i] = Policy(i)
	}
	return out
}

// Robust reports whether the policy bounds unreclaimed garbage in the
// presence of delayed threads (the paper's robustness property).
func (p Policy) Robust() bool {
	switch p {
	case HP, HPAsym, HE, IBR, NBR, HazardPtrPOP, HazardEraPOP, EpochPOP:
		return true
	}
	return false
}

// Options tunes a Domain. The zero value is usable; unset fields take the
// paper's defaults.
type Options struct {
	// ReclaimThreshold is the retire-list length that triggers a
	// reclamation attempt (the paper's reclaimFreq; §5.0.1 uses 24K for
	// the main experiments and 2K for the long-running-reads experiment).
	ReclaimThreshold int
	// EpochFreq is the number of operations (or allocations, for IBR)
	// between global epoch increments.
	EpochFreq int
	// CMult is EpochPOP's escalation factor C: when the retire list
	// reaches CMult*ReclaimThreshold despite epoch reclamation, the
	// publish-on-ping path is engaged (paper Alg. 3 line 26).
	CMult int
	// AsymDrain is the reclaimer-side wait that stands in for
	// sys_membarrier in HPAsym (substitution S3 in DESIGN.md).
	AsymDrain time.Duration
	// BatchSize is the Crystalline-lite batch size.
	BatchSize int
	// Debug enables expensive internal assertions (double-retire checks
	// are always on; Debug adds slot-bounds and phase checks).
	Debug bool
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.ReclaimThreshold <= 0 {
		out.ReclaimThreshold = 24576
	}
	if out.EpochFreq <= 0 {
		out.EpochFreq = 128
	}
	if out.CMult <= 1 {
		out.CMult = 2
	}
	if out.AsymDrain <= 0 {
		out.AsymDrain = 10 * time.Microsecond
	}
	if out.BatchSize <= 0 {
		out.BatchSize = 64
	}
	return out
}

// Domain is one reclamation domain: a policy, a global epoch, and a set
// of thread slots. All threads operating on a data structure must share
// its domain.
//
// Thread identity is a leasable resource, not a birth-to-death property:
// RegisterThread / TryRegisterThread lease a slot (reusing released
// slots before growing toward maxThreads), and Thread.Release returns
// it. A releasing thread donates its unreclaimed retire list to the
// domain's orphan queue; live threads adopt the queue at the start of
// their next reclamation pass (every policy's reclaim and flush call
// Thread.adoptOrphans), so no retired node is stranded by a departed
// thread.
type Domain struct {
	policy Policy
	opts   Options
	algo   algorithm

	// epoch is the global era for HE/EBR/IBR/EpochPOP. Starts at 1 so 0
	// can mean "no reservation".
	epoch padded.Uint64

	mu         sync.Mutex
	threads    []*Thread
	maxThreads int

	// Slot lifecycle (mu-guarded). freeSlots is a LIFO of released slot
	// indices; re-leasing prefers it over growing threads so the dense
	// tid space (which ds-layer per-thread caches index by) stays small.
	freeSlots   []int
	leasedCount int
	peakLeased  int
	releases    uint64

	// Orphanage (mu-guarded except orphanLen): retire lists donated by
	// departed threads, awaiting adoption by a live thread's next
	// reclamation pass. orphanBatches holds Crystalline's sealed batches
	// (only a Crystalline domain ever donates them).
	orphanNodes    []*Header
	orphanBatches  []cbatch
	orphansDonated uint64
	orphansAdopted uint64
	orphanLen      padded.Int64 // nodes awaiting adoption (incl. batched)

	freeFns [maxTypes]func(*Thread, *Header)
	ntypes  int

	leaked padded.Int64 // nodes dropped by NR (never freed)

	// Reclamation trace histograms (see trace.go): per-pass ping→ack
	// wait and whole-pass duration, recorded by whichever thread runs
	// the pass. Always on — passes are threshold-gated, so two clock
	// reads per pass are noise.
	pingAckH report.AtomicHistogram
	passDurH report.AtomicHistogram
}

// NewDomain creates a domain for at most maxThreads threads. opts may be
// nil for defaults.
func NewDomain(policy Policy, maxThreads int, opts *Options) *Domain {
	if maxThreads <= 0 {
		panic("core: maxThreads must be positive")
	}
	var o Options
	if opts != nil {
		o = *opts
	}
	d := &Domain{
		policy:     policy,
		opts:       o.withDefaults(),
		threads:    make([]*Thread, 0, maxThreads),
		maxThreads: maxThreads,
	}
	d.epoch.Store(1)
	d.algo = newAlgorithm(d, policy)
	return d
}

// Policy returns the domain's reclamation policy.
func (d *Domain) Policy() Policy { return d.policy }

// Epoch returns the current global era.
func (d *Domain) Epoch() uint64 { return d.epoch.Load() }

// RegisterType registers the free function for one node type and returns
// the type id to place in Header.Type at allocation. The free function
// receives the reclaiming thread so it can return the node to that
// thread's allocation cache (mimalloc-style sharded frees, which §5.0.1
// identifies as necessary for scalability).
func (d *Domain) RegisterType(free func(*Thread, *Header)) uint8 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ntypes >= maxTypes {
		panic("core: too many node types registered")
	}
	id := uint8(d.ntypes)
	d.freeFns[id] = free
	d.ntypes++
	return id
}

// RegisterThread leases a thread handle, panicking when the domain is
// full (the original, compatibility API; prefer TryRegisterThread where
// capacity exhaustion should be an error, not a crash). A Thread must
// only be used by the goroutine that leased it, until Release.
func (d *Domain) RegisterThread() *Thread {
	t, err := d.TryRegisterThread()
	if err != nil {
		panic(err.Error())
	}
	return t
}

// TryRegisterThread leases a thread handle: a released slot is re-leased
// first (same dense tid, bumped incarnation); otherwise a new slot is
// created, and an error is returned once maxThreads slots are all
// leased. The handle belongs to the calling goroutine until
// Thread.Release; the lease/release pair is the ownership-transfer edge
// that makes slot (and per-tid cache) reuse safe across goroutines.
func (d *Domain) TryRegisterThread() (*Thread, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n := len(d.freeSlots); n > 0 {
		t := d.threads[d.freeSlots[n-1]]
		d.freeSlots = d.freeSlots[:n-1]
		d.leaseLocked(t)
		return t, nil
	}
	if len(d.threads) >= d.maxThreads {
		return nil, fmt.Errorf("core: %d-slot domain: %w", d.maxThreads, ErrNoSlots)
	}
	t := &Thread{
		d:      d,
		tid:    len(d.threads),
		hiSlot: -1,
	}
	t.resEpoch.Store(eraMax)
	t.ibrLo.Store(eraMax)
	t.ibrHi.Store(eraMax)
	// Pre-size the retire list for the common threshold but cap the
	// eager allocation: callers may set a huge threshold to disable
	// reclamation entirely.
	capHint := d.opts.ReclaimThreshold + MaxSlots
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	t.retired = make([]*Header, 0, capHint)
	d.threads = append(d.threads, t)
	d.leaseLocked(t)
	return t, nil
}

// leaseLocked marks slot t leased (d.mu held). The incarnation bump is
// what distinguishes tenants of a reused slot; the SWMR words scanners
// read (opSeq, pubCount) stay monotone across reuse, so reclaimers
// in-flight during a release+re-lease observe ordinary operation
// boundaries, never a counter reset.
func (d *Domain) leaseLocked(t *Thread) {
	t.leased = true
	t.incarnation.Add(1)
	d.leasedCount++
	if d.leasedCount > d.peakLeased {
		d.peakLeased = d.leasedCount
	}
	d.algo.initThread(t)
}

// beginRelease claims the end of t's lease: a double Release panics
// here, BEFORE Thread.Release touches the slot's state, and the slot is
// not re-leasable (not on freeSlots) until finishRelease — so no new
// tenant can appear while the SWMR wipe is in progress.
func (d *Domain) beginRelease(t *Thread) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !t.leased {
		panic("core: Release of a thread handle that is not leased (double release?)")
	}
	t.leased = false
}

// finishRelease completes a release begun by beginRelease: donate the
// unreclaimed retire list (and any sealed Crystalline batches) to the
// orphan queue and make the slot re-leasable.
func (d *Domain) finishRelease(t *Thread) {
	d.mu.Lock()
	defer d.mu.Unlock()
	donated := int64(len(t.retired))
	if donated > 0 {
		d.orphanNodes = append(d.orphanNodes, t.retired...)
		t.retired = t.retired[:0]
	}
	if bs := t.batches; bs != nil && len(bs.full) > 0 {
		d.orphanBatches = append(d.orphanBatches, bs.full...)
		donated += int64(bs.pending)
		bs.full = nil
		bs.pending = 0
	}
	if donated > 0 {
		d.orphansDonated += uint64(donated)
		d.orphanLen.Add(donated)
	}
	t.retiredLen.Store(0)
	t.batchedLen.Store(0)
	// Departing tenants leave an exact stats mirror behind: sampled
	// aggregates never under-count a slot between tenancies.
	t.publishStats()
	d.freeSlots = append(d.freeSlots, t.tid)
	d.leasedCount--
	d.releases++
}

// LifecycleStats counts thread-slot lifecycle events: how elastic the
// domain's thread population has been and how much garbage changed
// hands when threads departed.
type LifecycleStats struct {
	Slots          int    // slots ever created (high-water of distinct tids)
	Leased         int    // currently leased slots
	Peak           int    // maximum concurrently leased slots
	Releases       uint64 // cumulative Thread.Release calls
	OrphanNodes    int64  // nodes currently awaiting adoption
	OrphansDonated uint64 // nodes ever donated by departing threads
	OrphansAdopted uint64 // nodes ever adopted by live threads

	// SlotLeases[i] is slot i's cumulative lease count (its current
	// incarnation): the per-slot view of how lease traffic spreads over
	// the dense tid space — per-tenant accounting's ground truth, since
	// tenant k of slot i is exactly (slot i, incarnation k).
	SlotLeases []uint64
}

// Lifecycle snapshots the domain's thread-lifecycle counters.
func (d *Domain) Lifecycle() LifecycleStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	leases := make([]uint64, len(d.threads))
	for i, t := range d.threads {
		leases[i] = t.incarnation.Load()
	}
	return LifecycleStats{
		Slots:          len(d.threads),
		Leased:         d.leasedCount,
		Peak:           d.peakLeased,
		Releases:       d.releases,
		OrphanNodes:    d.orphanLen.Load(),
		OrphansDonated: d.orphansDonated,
		OrphansAdopted: d.orphansAdopted,
		SlotLeases:     leases,
	}
}

// Threads returns a snapshot of every thread slot ever created,
// including released (unleased) ones — released slots read as quiescent
// and reservation-free, exactly how reclaimer scans see them.
func (d *Domain) Threads() []*Thread {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*Thread, len(d.threads))
	copy(out, d.threads)
	return out
}

// snapshot of registered threads without copying; reclaimers iterate this.
// The backing array only ever grows and registration is rare, so reading
// the slice header under the lock once per reclamation pass is cheap.
func (d *Domain) threadList() []*Thread {
	d.mu.Lock()
	ts := d.threads
	d.mu.Unlock()
	return ts
}

// free returns one node to its pool on behalf of reclaiming thread t.
func (d *Domain) free(t *Thread, h *Header) {
	if !h.retiredFlag.CompareAndSwap(1, 0) {
		panic("core: freeing a node that is not retired (double free?)")
	}
	fn := d.freeFns[h.Type]
	if fn == nil {
		panic(fmt.Sprintf("core: no free function registered for type %d", h.Type))
	}
	fn(t, h)
}

// MaxThreads returns the domain's thread capacity.
func (d *Domain) MaxThreads() int { return d.maxThreads }

// Unreclaimed returns the number of retired-but-unfreed nodes across all
// threads — orphaned retire lists awaiting adoption included — plus
// nodes leaked by NR. It is exact when the domain is quiescent and
// approximate otherwise.
func (d *Domain) Unreclaimed() int64 {
	total := d.leaked.Load() + d.orphanLen.Load()
	for _, t := range d.threadList() {
		total += int64(t.retiredLen.Load()) + t.batchedLen.Load()
	}
	return total
}

// Stats aggregates per-thread statistics.
func (d *Domain) Stats() Stats {
	var agg Stats
	for _, t := range d.threadList() {
		s := t.StatsSnapshot()
		agg.Retires += s.Retires
		agg.Frees += s.Frees
		agg.Reclaims += s.Reclaims
		agg.EpochReclaims += s.EpochReclaims
		agg.POPReclaims += s.POPReclaims
		agg.PingsSent += s.PingsSent
		agg.ThreadsScanned += s.ThreadsScanned
		agg.Publishes += s.Publishes
		agg.Restarts += s.Restarts
		if s.MaxRetire > agg.MaxRetire {
			agg.MaxRetire = s.MaxRetire
		}
	}
	return agg
}

// Stats counts reclamation events. All fields are monotone counters
// except MaxRetire (a high-water mark).
type Stats struct {
	Retires       uint64 // nodes handed to Retire
	Frees         uint64 // nodes returned to their pool
	Reclaims      uint64 // reclamation passes executed
	EpochReclaims uint64 // EpochPOP: passes served by the EBR mode
	POPReclaims   uint64 // EpochPOP: passes that escalated to publish-on-ping
	PingsSent     uint64 // ping words set by this thread's reclamation passes
	// ThreadsScanned counts thread slots examined by reclaim-time scans
	// (ping sweeps, reservation gathers, epoch minima): each full
	// iteration of the domain's thread list adds its length. Divided by
	// Reclaims it is the per-pass fan-out — the quantity domain groups
	// shrink from O(total threads) to O(readers-of-member).
	ThreadsScanned uint64
	Publishes      uint64 // publish-handler executions on this thread
	Restarts       uint64 // NBR: neutralization-induced operation restarts
	MaxRetire      int    // maximum retire-list length observed
}

// ReclaimStats is the reclaimer fan-out view of Stats: how many passes
// ran, how many pings they sent, and how many thread slots they
// examined, with per-pass averages precomputed for reporting. A pass
// may scan the thread list more than once (a POP pass pings, then
// gathers), so ScannedPerPass is a small multiple of the thread count
// in an ungrouped domain — the point of comparison for grouped runs.
type ReclaimStats struct {
	Passes  uint64 // reclamation passes (= Stats.Reclaims)
	Pings   uint64 // ping words set (= Stats.PingsSent)
	Scanned uint64 // thread slots examined (= Stats.ThreadsScanned)

	PingsPerPass   float64 // Pings / Passes (0 when no pass ran)
	ScannedPerPass float64 // Scanned / Passes (0 when no pass ran)
}

func (r *ReclaimStats) fillAverages() {
	if r.Passes > 0 {
		r.PingsPerPass = float64(r.Pings) / float64(r.Passes)
		r.ScannedPerPass = float64(r.Scanned) / float64(r.Passes)
	}
}

// ReclaimStats snapshots the domain's ping/scan fan-out counters.
func (d *Domain) ReclaimStats() ReclaimStats {
	s := d.Stats()
	r := ReclaimStats{Passes: s.Reclaims, Pings: s.PingsSent, Scanned: s.ThreadsScanned}
	r.fillAverages()
	return r
}

// Mask clears the tag bits of a (possibly marked) node pointer. Data
// structures tag the two low-order bits (Harris-Michael's mark); the
// reclamation layer always works with masked pointers.
func Mask(p unsafe.Pointer) unsafe.Pointer {
	return unsafe.Pointer(uintptr(p) &^ 3)
}
