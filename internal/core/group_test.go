package core_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"pop/internal/core"
)

// TestGroupFacadeSemantics pins the lease facade: slot identity, LIFO
// reuse, incarnation counting, and the usage counters.
func TestGroupFacadeSemantics(t *testing.T) {
	g := core.NewDomainGroup(core.EBR, 2, 3, nil)
	if g.Members() != 2 || g.Cap() != 3 || g.Policy() != core.EBR {
		t.Fatalf("group shape: members=%d cap=%d policy=%v", g.Members(), g.Cap(), g.Policy())
	}
	h1, err := g.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := g.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	h3, err := g.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Acquire(); !errors.Is(err, core.ErrNoSlots) {
		t.Fatalf("4th acquire on a 3-slot group: %v, want ErrNoSlots", err)
	}
	if g.InUse() != 3 || g.Peak() != 3 {
		t.Fatalf("InUse=%d Peak=%d, want 3/3", g.InUse(), g.Peak())
	}
	slots := map[int]bool{h1.Slot(): true, h2.Slot(): true, h3.Slot(): true}
	if len(slots) != 3 {
		t.Fatalf("slots not distinct: %d %d %d", h1.Slot(), h2.Slot(), h3.Slot())
	}
	// LIFO reuse: the most recently released slot is handed out next,
	// with a bumped incarnation.
	slot, inc := h2.Slot(), h2.Incarnation()
	g.Release(h2)
	h2b, err := g.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if h2b.Slot() != slot {
		t.Fatalf("re-lease got slot %d, want the just-freed %d", h2b.Slot(), slot)
	}
	if h2b.Incarnation() != inc+1 {
		t.Fatalf("incarnation = %d, want %d", h2b.Incarnation(), inc+1)
	}
	g.Release(h1)
	g.Release(h2b)
	g.Release(h3)
	if g.InUse() != 0 {
		t.Fatalf("InUse=%d after releasing everything", g.InUse())
	}
	if g.Acquires() != 4 || g.Releases() != 4 {
		t.Fatalf("acquires=%d releases=%d, want 4/4", g.Acquires(), g.Releases())
	}
	// Do wraps an acquire/release pair.
	if err := g.Do(func(h *core.GroupHandle) error {
		_ = h.Member(0)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if g.InUse() != 0 {
		t.Fatalf("Do leaked a slot: InUse=%d", g.InUse())
	}
}

// TestGroupLazyMemberLease pins the fan-out mechanism itself: a handle
// appears in a member's thread list only after first touching that
// member, and release returns every member thread it did lease.
func TestGroupLazyMemberLease(t *testing.T) {
	g := core.NewDomainGroup(core.EpochPOP, 4, 8, nil)
	h, err := g.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if h.MemberLeased(i) != nil {
			t.Fatalf("member %d leased before use", i)
		}
		if got := g.Member(i).Lifecycle().Leased; got != 0 {
			t.Fatalf("member %d shows %d leases before use", i, got)
		}
	}
	th := h.Member(2)
	if th == nil || h.MemberLeased(2) != th {
		t.Fatal("Member(2) did not lease and cache a thread")
	}
	if h.Member(2) != th {
		t.Fatal("second Member(2) re-leased instead of reusing")
	}
	for i := 0; i < 4; i++ {
		want := 0
		if i == 2 {
			want = 1
		}
		if got := g.Member(i).Lifecycle().Leased; got != want {
			t.Fatalf("member %d leased=%d, want %d", i, got, want)
		}
	}
	g.Release(h)
	if got := g.Member(2).Lifecycle().Leased; got != 0 {
		t.Fatalf("member 2 still shows %d leases after group release", got)
	}
}

// TestGroupFanoutReduction is the tentpole's measurable claim at the
// core layer: with T handles spread evenly over M members, a member
// reclaimer's per-pass thread scan covers T/M slots, not T. Runs the
// same retire/flush schedule against an ungrouped and a 4-member group
// and asserts the per-pass fan-out shrank by at least the group factor
// (with slack for the final-flush passes).
func TestGroupFanoutReduction(t *testing.T) {
	const (
		handles = 8
		members = 4
		retires = 2048
	)
	run := func(m int) core.ReclaimStats {
		g := core.NewDomainGroup(core.EBR, m, handles, &core.Options{ReclaimThreshold: 64})
		typs := make([]uint8, m)
		for i := 0; i < m; i++ {
			typs[i] = g.Member(i).RegisterType(func(*core.Thread, *core.Header) {})
		}
		// Register every handle's member thread up front so scan fan-out
		// reflects the full registered population even if the goroutines
		// end up serialized by the scheduler (released slots are LIFO-
		// reused, so sequential lease/release would keep the list at 1).
		hs := make([]*core.GroupHandle, handles)
		for i := range hs {
			h, err := g.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			h.Member(i % m)
			hs[i] = h
		}
		var wg sync.WaitGroup
		for i, h := range hs {
			wg.Add(1)
			go func(i int, h *core.GroupHandle) {
				defer wg.Done()
				mi := i % m
				th := h.Member(mi)
				for n := 0; n < retires; n++ {
					th.StartOp()
					hd := new(core.Header)
					th.OnAlloc(hd, typs[mi])
					th.Retire(hd)
					th.EndOp()
				}
				th.Flush()
			}(i, h)
		}
		wg.Wait()
		for _, h := range hs {
			g.Release(h)
		}
		return g.ReclaimStats()
	}
	flat := run(1)
	grouped := run(members)
	if flat.Passes == 0 || grouped.Passes == 0 {
		t.Fatalf("no reclamation passes ran: flat=%+v grouped=%+v", flat, grouped)
	}
	// Every handle is registered in the flat domain, so a pass there
	// scans ~handles slots; in the grouped run each member holds only
	// handles/members threads.
	factor := flat.ScannedPerPass / grouped.ScannedPerPass
	if factor < float64(members)*0.75 {
		t.Fatalf("fan-out reduction %.2fx < group factor %d (flat %.1f/pass, grouped %.1f/pass)",
			factor, members, flat.ScannedPerPass, grouped.ScannedPerPass)
	}
}

// TestGroupAcquireWait covers the blocking admission path: a saturated
// group queues waiters FIFO, a release admits the head, and context
// cancellation dequeues cleanly.
func TestGroupAcquireWait(t *testing.T) {
	g := core.NewDomainGroup(core.HP, 1, 1, nil)
	h, err := g.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan *core.GroupHandle)
	go func() {
		h2, err := g.AcquireWait(context.Background())
		if err != nil {
			t.Error(err)
		}
		admitted <- h2
	}()
	// The waiter must be queued, not admitted, while h is held.
	deadline := time.After(time.Second)
	for g.Waiting() == 0 {
		select {
		case <-deadline:
			t.Fatal("AcquireWait never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	select {
	case <-admitted:
		t.Fatal("waiter admitted while the only slot was held")
	default:
	}
	g.Release(h)
	h2 := <-admitted
	if h2 == nil {
		t.Fatal("woken waiter got nil handle")
	}
	if g.Waits() == 0 {
		t.Fatal("Waits counter did not record the queued acquire")
	}

	// Cancellation: a second waiter gives up when its context expires.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := g.AcquireWait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled AcquireWait: %v, want DeadlineExceeded", err)
	}
	if g.Waiting() != 0 {
		t.Fatalf("cancelled waiter still queued (%d)", g.Waiting())
	}
	g.Release(h2)
}

// TestGroupDrainAdoptsForeignOrphans: Drain must adopt orphans donated
// to members the draining handle never touched — the end-of-run
// guarantee harnesses rely on.
func TestGroupDrainAdoptsForeignOrphans(t *testing.T) {
	g := core.NewDomainGroup(core.EBR, 2, 2, &core.Options{ReclaimThreshold: 1 << 20})
	typ0 := g.Member(0).RegisterType(func(*core.Thread, *core.Header) {})

	// A departing tenant retires into member 0 only, then releases —
	// donating to member 0's orphanage.
	h, err := g.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	th := h.Member(0)
	th.StartOp()
	for i := 0; i < 16; i++ {
		hd := new(core.Header)
		th.OnAlloc(hd, typ0)
		th.Retire(hd)
	}
	th.EndOp()
	g.Release(h)
	if g.Unreclaimed() == 0 {
		t.Fatal("release donated nothing to the orphanage")
	}

	// A successor that has only ever touched member 1 must still drain
	// member 0's orphans.
	h2, err := g.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	_ = h2.Member(1)
	h2.Flush() // lazy flush: member 0 untouched, orphans must survive
	if g.Unreclaimed() == 0 {
		t.Fatal("Flush adopted orphans from an unleased member (laziness broken)")
	}
	h2.Drain()
	if u := g.Unreclaimed(); u != 0 {
		t.Fatalf("%d unreclaimed after Drain", u)
	}
	if lc := g.Lifecycle(); lc.OrphanNodes != 0 || lc.OrphansAdopted != lc.OrphansDonated {
		t.Fatalf("orphan ledger unbalanced after Drain: %+v", lc)
	}
	g.Release(h2)
}

// TestGroupDoubleReleasePanics: releasing a handle twice is a caller
// bug and must fail loudly.
func TestGroupDoubleReleasePanics(t *testing.T) {
	g := core.NewDomainGroup(core.EBR, 1, 1, nil)
	h, err := g.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	g.Release(h)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	g.Release(h)
}

// TestGroupConstructionPanics: invalid shapes fail at construction.
func TestGroupConstructionPanics(t *testing.T) {
	for _, tc := range []struct {
		name           string
		members, slots int
	}{
		{"zero members", 0, 4},
		{"non-power-of-two members", 3, 4},
		{"zero slots", 2, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewDomainGroup(%d members, %d slots) did not panic", tc.members, tc.slots)
				}
			}()
			core.NewDomainGroup(core.EBR, tc.members, tc.slots, nil)
		})
	}
}
