//go:build !race

package core

import "unsafe"

// storeRelaxed publishes p to a shared word with a plain store. This is
// the Go spelling of C++ memory_order_relaxed/release on amd64 (a MOV):
// it is exactly the reader-side cost model of Folly's hazard pointers,
// whose fast path the paper's HPAsym baseline reproduces. The Go memory
// model classifies a concurrent plain store/atomic load pair as a data
// race; the pairing is sound here because (a) the word is pointer-sized
// and aligned, so hardware tearing cannot occur on any supported
// architecture, and (b) the reclaimer orders itself against the store
// with the membarrier substitution (see hpasym.go) before acting on the
// value, and a stale read is conservative (it only prevents a free).
// Under `go test -race` the relaxed_race.go variant substitutes an atomic
// store so the detector stays clean.
func storeRelaxed(addr *unsafe.Pointer, p unsafe.Pointer) {
	*addr = p
}
