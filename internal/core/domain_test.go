package core_test

import (
	"testing"
	"unsafe"

	"pop/internal/core"
)

func TestRegisterThreadCapacity(t *testing.T) {
	d := core.NewDomain(core.EBR, 2, nil)
	d.RegisterThread()
	d.RegisterThread()
	defer func() {
		if recover() == nil {
			t.Fatal("third RegisterThread did not panic at capacity 2")
		}
	}()
	d.RegisterThread()
}

func TestNewDomainValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDomain(0 threads) did not panic")
		}
	}()
	core.NewDomain(core.EBR, 0, nil)
}

func TestThreadsSnapshot(t *testing.T) {
	d := core.NewDomain(core.HP, 3, nil)
	a := d.RegisterThread()
	b := d.RegisterThread()
	ts := d.Threads()
	if len(ts) != 2 || ts[0] != a || ts[1] != b {
		t.Fatalf("Threads() = %v", ts)
	}
	if a.ID() != 0 || b.ID() != 1 {
		t.Fatalf("ids = %d, %d", a.ID(), b.ID())
	}
	if a.Domain() != d {
		t.Fatal("Domain() mismatch")
	}
}

func TestOptionsDefaults(t *testing.T) {
	// A zero Options must yield the paper's defaults; verify indirectly:
	// reclamation must not trigger before 24576 retires.
	e := newEnv(t, core.HP, 1, &core.Options{})
	th := e.d.RegisterThread()
	cache := e.pool.NewCache()
	th.StartOp()
	for i := 0; i < 1000; i++ {
		n := e.alloc(th, cache, int64(i))
		th.Retire(&n.Header)
	}
	th.EndOp()
	if got := th.StatsSnapshot().Frees; got != 0 {
		t.Fatalf("reclaimed after only 1000 retires with default threshold (frees=%d)", got)
	}
	if got := th.RetireListLen(); got != 1000 {
		t.Fatalf("retire list = %d", got)
	}
}

func TestRobustClassification(t *testing.T) {
	robust := map[core.Policy]bool{
		core.NR: false, core.EBR: false, core.Crystalline: false,
		core.HP: true, core.HPAsym: true, core.HE: true, core.IBR: true,
		core.NBR: true, core.HazardPtrPOP: true, core.HazardEraPOP: true,
		core.EpochPOP: true,
	}
	for p, want := range robust {
		if got := p.Robust(); got != want {
			t.Fatalf("%v.Robust() = %v, want %v", p, got, want)
		}
	}
}

func TestProtectSlotBoundsDebug(t *testing.T) {
	d := core.NewDomain(core.HP, 1, &core.Options{Debug: true})
	th := d.RegisterThread()
	var cell core.Atomic
	th.StartOp()
	defer th.EndOp()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range slot did not panic in debug mode")
		}
	}()
	th.Protect(core.MaxSlots, &cell)
}

func TestFlushIdempotent(t *testing.T) {
	e := newEnv(t, core.HazardPtrPOP, 1, &core.Options{ReclaimThreshold: 4})
	th := e.d.RegisterThread()
	cache := e.pool.NewCache()
	th.StartOp()
	for i := 0; i < 10; i++ {
		n := e.alloc(th, cache, int64(i))
		th.Retire(&n.Header)
	}
	th.EndOp()
	th.Flush()
	th.Flush() // second flush on an empty list must be a no-op
	th.Flush()
	if e.pool.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", e.pool.Outstanding())
	}
}

func TestEndOpClearsReservations(t *testing.T) {
	// After EndOp, a previously protected node must become freeable by
	// another thread's reclamation.
	e := newEnv(t, core.HP, 2, &core.Options{ReclaimThreshold: 2})
	reader := e.d.RegisterThread()
	reclaimer := e.d.RegisterThread()
	cache := e.pool.NewCache()

	reclaimer.StartOp()
	n := e.alloc(reclaimer, cache, 9)
	var cell core.Atomic
	cell.Store(unsafe.Pointer(n))

	reader.StartOp()
	reader.Protect(3, &cell) // arbitrary high slot: EndOp must clear it too
	reader.EndOp()

	cell.Store(nil)
	reclaimer.Retire(&n.Header)
	for i := 0; i < 4; i++ {
		f := e.alloc(reclaimer, cache, int64(i))
		reclaimer.Retire(&f.Header)
	}
	reclaimer.EndOp()
	if n.Header.Retired() {
		t.Fatal("node still unreclaimed after reader's EndOp released it")
	}
}

func TestAtomicCellOps(t *testing.T) {
	var cell core.Atomic
	var x, y int64
	px, py := unsafe.Pointer(&x), unsafe.Pointer(&y)
	if cell.Load() != nil {
		t.Fatal("zero cell not nil")
	}
	cell.Store(px)
	if cell.Load() != px {
		t.Fatal("store/load")
	}
	if cell.CompareAndSwap(py, px) {
		t.Fatal("CAS with wrong expected succeeded")
	}
	if !cell.CompareAndSwap(px, py) || cell.Load() != py {
		t.Fatal("CAS failed")
	}
	cell.Raw(px)
	if cell.Load() != px {
		t.Fatal("Raw init")
	}
}

func TestStatsAggregation(t *testing.T) {
	e := newEnv(t, core.HP, 2, &core.Options{ReclaimThreshold: 4})
	a := e.d.RegisterThread()
	b := e.d.RegisterThread()
	cache := e.pool.NewCache()
	for _, th := range []*core.Thread{a, b} {
		th.StartOp()
		for i := 0; i < 6; i++ {
			n := e.alloc(th, cache, int64(i))
			th.Retire(&n.Header)
		}
		th.EndOp()
	}
	agg := e.d.Stats()
	if agg.Retires != 12 {
		t.Fatalf("aggregate retires = %d, want 12", agg.Retires)
	}
	sa, sb := a.StatsSnapshot(), b.StatsSnapshot()
	if sa.Retires+sb.Retires != agg.Retires {
		t.Fatal("aggregate != sum of per-thread stats")
	}
	if agg.MaxRetire < sa.MaxRetire || agg.MaxRetire < sb.MaxRetire {
		t.Fatal("aggregate MaxRetire below a thread's")
	}
}

func TestHeaderRetiredFlagLifecycle(t *testing.T) {
	e := newEnv(t, core.HP, 1, &core.Options{ReclaimThreshold: 1})
	th := e.d.RegisterThread()
	cache := e.pool.NewCache()
	n := e.alloc(th, cache, 1)
	if n.Header.Retired() {
		t.Fatal("fresh node reads retired")
	}
	th.StartOp()
	th.Retire(&n.Header)
	th.EndOp()
	th.Flush()
	if n.Header.Retired() {
		t.Fatal("flag not cleared by free")
	}
}
