package core

import (
	"sync/atomic"
	"time"
	"unsafe"
)

// hpAsymAlgo is the paper's HPAsym baseline: hazard pointers with
// asymmetric fences, modelled on Folly's implementation. Readers publish
// reservations with a *plain* store (a MOV — no fence); the ordering cost
// moves to the reclaimer, which in the original executes sys_membarrier
// to force a barrier on every CPU before scanning.
//
// Substitution (DESIGN.md S3): Go has no process-wide membarrier, so the
// reclaimer issues a full fence of its own and then waits AsymDrain
// before scanning, relying on the temporally-bounded-TSO property
// (Morrison & Afek [46]) that a store buffer drains within a bounded,
// sub-microsecond window on real hardware. A reservation that is missed
// anyway is caught by the validation step for newly created reservations,
// and the type-stable arena turns the residual theoretical risk into a
// detectable (not memory-unsafe) event. Under `go test -race` the reader
// store is atomic and the scheme is unconditionally sound.
type hpAsymAlgo struct{ baseAlgo }

// asymFence is the dummy word the reclaimer RMWs to order itself.
var asymFence atomic.Uint64

func (a *hpAsymAlgo) protect(t *Thread, slot int, cell *Atomic) (unsafe.Pointer, bool) {
	for {
		p := cell.Load()
		storeRelaxed(&t.sharedPtrs[slot], Mask(p)) // no fence: the HPAsym fast path
		if cell.Load() == p {
			return p, true
		}
	}
}

func (a *hpAsymAlgo) endOp(t *Thread) {
	for i := 0; i <= t.hiSlot; i++ {
		storeRelaxed(&t.sharedPtrs[i], nil)
	}
}

func (a *hpAsymAlgo) retireHook(t *Thread) {
	if t.sinceReclaim < a.d.opts.ReclaimThreshold {
		return
	}
	t.sinceReclaim = 0
	a.reclaim(t)
}

// reclaim: as in HP, released slots' shared arrays read all-nil, so
// slot churn only ever removes reservations from the scan, never adds
// stale ones.
func (a *hpAsymAlgo) reclaim(t *Thread) {
	defer a.d.recordPass(time.Now())
	t.stats.Reclaims++
	t.adoptOrphans()
	// The membarrier substitution: fence ourselves, then give every other
	// CPU's store buffer time to drain so the readers' plain stores are
	// visible to the scan below.
	asymFence.Add(1)
	sleepFor(a.d.opts.AsymDrain)
	set := t.collectPtrSet(nil)
	t.freeUnreserved(set)
}

func (a *hpAsymAlgo) flush(t *Thread) { a.reclaim(t) }

// sleepFor waits approximately d without arming a timer (timer resolution
// on Linux is far coarser than the microsecond drains we need).
func sleepFor(d time.Duration) {
	start := time.Now()
	for time.Since(start) < d {
		// Busy wait; the reclaimer is about to do a full scan anyway, so
		// burning a few microseconds here mirrors the membarrier syscall
		// cost in the original.
	}
}
