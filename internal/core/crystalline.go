package core

import (
	"time"
	"unsafe"
)

// crystAlgo is the appendix-E comparator: a simplified Crystalline-style
// reclaimer (Nikolaev & Ravindran [50]).
//
// Substitution (DESIGN.md S5): full Crystalline is a wait-free scheme
// built on batch reference counting with per-slot handshakes. We keep its
// two observable characteristics — (a) retirement in fixed-size *batches*
// whose bookkeeping is amortised across members, and (b) robustness — by
// combining IBR-style interval reservations on the read path with
// batch-granularity freeing: a batch is freed when its aggregate
// [min birth, max retire] interval intersects no thread's reservation.
// Batch granularity gives Crystalline-lite its signature behaviour in the
// plots: cheaper reclamation passes but a coarser memory floor.
type crystAlgo struct{ baseAlgo }

// batchState is a thread's batch bookkeeping.
type batchState struct {
	full    []cbatch
	pending int // nodes across full batches (t.retired holds the open one)
}

type cbatch struct {
	nodes []*Header
	lo    uint64 // min birth era
	hi    uint64 // max retire era
}

func (a *crystAlgo) initThread(t *Thread) { t.batches = &batchState{} }

// Read path: IBR interval reservations (see ibr.go).

func (a *crystAlgo) startOp(t *Thread) {
	e := a.d.epoch.Load()
	t.ibrLo.Store(e)
	t.ibrHi.Store(e)
	t.ibrHiCache = e
}

func (a *crystAlgo) endOp(t *Thread) {
	t.ibrLo.Store(eraMax)
	t.ibrHi.Store(eraMax)
}

func (a *crystAlgo) protect(t *Thread, slot int, cell *Atomic) (unsafe.Pointer, bool) {
	for {
		p := cell.Load()
		e := a.d.epoch.Load()
		if e == t.ibrHiCache {
			return p, true
		}
		t.ibrHi.Store(e)
		t.ibrHiCache = e
	}
}

func (a *crystAlgo) allocHook(t *Thread) {
	if t.allocCount%uint64(a.d.opts.EpochFreq) == 0 {
		a.d.epoch.Add(1)
	}
}

func (a *crystAlgo) retireHook(t *Thread) {
	bs := t.batches
	// Seal a batch once the open list reaches BatchSize.
	if len(t.retired) >= a.d.opts.BatchSize {
		b := cbatch{nodes: make([]*Header, len(t.retired)), lo: eraMax, hi: 0}
		copy(b.nodes, t.retired)
		for _, h := range b.nodes {
			if h.BirthEra < b.lo {
				b.lo = h.BirthEra
			}
			if h.RetireEra > b.hi {
				b.hi = h.RetireEra
			}
		}
		bs.full = append(bs.full, b)
		bs.pending += len(b.nodes)
		t.batchedLen.Store(int64(bs.pending))
		t.retired = t.retired[:0]
	}
	if t.sinceReclaim >= a.d.opts.ReclaimThreshold {
		t.sinceReclaim = 0
		a.reclaim(t)
	}
}

// reclaim frees whole batches whose aggregate lifespan intersects no
// reserved interval. Released slots read [eraMax, eraMax] (quiescent to
// intervalReserved); a departing thread donates its sealed batches and
// its open tail to the orphan queue, and adoption moves sealed batches
// wholesale into the adopter's batch list (lo/hi eras travel with the
// batch, so the free test is unchanged by the handoff).
func (a *crystAlgo) reclaim(t *Thread) {
	defer a.d.recordPass(time.Now())
	t.stats.Reclaims++
	t.adoptOrphans()
	ts := t.d.threadList()
	t.stats.ThreadsScanned += uint64(len(ts))
	los := grow(t.scCounts, len(ts))
	his := grow(t.scSeqs, len(ts))
	for i, o := range ts {
		los[i] = o.ibrLo.Load()
		his[i] = o.ibrHi.Load()
	}
	bs := t.batches
	kept := bs.full[:0]
	for _, b := range bs.full {
		if intervalReserved(los, his, b.lo, b.hi) {
			kept = append(kept, b)
			continue
		}
		for _, h := range b.nodes {
			a.d.free(t, h)
		}
		t.stats.Frees += uint64(len(b.nodes))
		bs.pending -= len(b.nodes)
	}
	bs.full = kept
	t.batchedLen.Store(int64(bs.pending))
}

func (a *crystAlgo) flush(t *Thread) {
	// Adopt before sealing: donated open-tail nodes land in t.retired
	// and must make it into a batch, or this flush would strand them.
	t.adoptOrphans()
	// Seal the open tail so everything is batch-resident, then reclaim.
	if len(t.retired) > 0 {
		b := cbatch{nodes: make([]*Header, len(t.retired)), lo: eraMax, hi: 0}
		copy(b.nodes, t.retired)
		for _, h := range b.nodes {
			if h.BirthEra < b.lo {
				b.lo = h.BirthEra
			}
			if h.RetireEra > b.hi {
				b.hi = h.RetireEra
			}
		}
		t.batches.full = append(t.batches.full, b)
		t.batches.pending += len(b.nodes)
		t.batchedLen.Store(int64(t.batches.pending))
		t.retired = t.retired[:0]
	}
	a.d.epoch.Add(1)
	a.reclaim(t)
}

// Pending returns the number of nodes awaiting reclamation in sealed
// batches (for Unreclaimed accounting).
func (bs *batchState) Pending() int {
	if bs == nil {
		return 0
	}
	return bs.pending
}
