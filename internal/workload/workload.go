// Package workload defines the operation mixes and key distributions of
// the paper's evaluation (§5.0.2): uniformly random keys over a fixed
// range, chosen operation percentages, and the two standard mixes —
// read-heavy (90% contains, 5% insert, 5% delete) and update-heavy
// (50% insert, 50% delete) — plus the long-running-reads asymmetric
// workload of §5.1.2 and, beyond the paper, two extension dimensions:
//
//   - a range-query dimension (RangePct/RangeSpan) with a scan-heavy mix
//     that stresses reservation publication with long ordered scans
//     (requires a ds.RangeScanner);
//   - a key→value dimension (OverwritePct, the KVStore mix) for the map
//     contract: Contains doubles as Get, Insert as Put-if-absent, and
//     Overwrite is an upsert Put that replaces a present key's value —
//     on the lock-free structures that is a replace-node-and-retire, so
//     overwrite share directly dials retirement pressure without
//     changing the key population.
//
// Value payloads are derived from the key stream and are checksum-
// verifiable: EncodeValue packs a write tag with a checksum over
// (key, tag), and ValueValid rejects any value that was not produced by
// EncodeValue for that key. A torn, stale or cross-key value — the
// value-plane symptom of a use-after-free — fails verification, so the
// harness can assert correctness while benchmarking.
//
// Generators are built with NewGeneratorErr wherever a configuration
// comes from user input (harness configs, popbench flags); the
// panicking NewGenerator remains only as a convenience for tests.
//
// Beyond the paper's uniform draws, keys can follow a scrambled
// Zipfian distribution (Dist/Sampler; s≈0.99, the YCSB shape for
// skewed serving traffic). The store layer's dialect also lives here:
// StoreMix/StoreOp (get/put/mget/scan/delete), KeyString (canonical
// string keys), and byte-payload analogues of the checksummed values
// (AppendValueBytes/ValueBytesValid) so the harness can verify every
// served byte slice the way it verifies every served uint64.
package workload

import (
	"fmt"
	"math"

	"pop/internal/rng"
)

// Op is a data-structure operation kind.
type Op uint8

// Operation kinds. The map-facing names Get and Put alias Contains and
// Insert: the harness issues Get/PutIfAbsent for them against the map
// contract, which preserves set semantics exactly (an insert never
// disturbs a present key's value).
const (
	Contains Op = iota
	Insert
	Delete
	// RangeQuery is an ordered scan over [key, key+span): one long
	// operation whose reservations stay live across every hop. Only
	// meaningful against structures implementing ds.RangeScanner.
	RangeQuery
	// Overwrite is an upsert Put: it installs a fresh value whether or
	// not the key is present. On a present key the structures either
	// replace the node (hmlist, skiplist, abtree leaves) or store in
	// place under a lock (lazylist, extbst) — see each package's
	// overwrite-strategy doc.
	Overwrite
)

// Map-contract aliases for the KV naming of the same operations.
const (
	Get = Contains
	Put = Insert
)

// Mix is an operation mixture in percent. Fields must sum to 100.
type Mix struct {
	ContainsPct  int
	InsertPct    int
	DeletePct    int
	RangePct     int
	OverwritePct int
}

// The standard mixes: the paper's two, plus the scan-heavy mix that
// exercises the range-query dimension and the KV-serving mix that
// exercises the value dimension.
var (
	// ReadHeavy is 90% contains / 5% insert / 5% delete.
	ReadHeavy = Mix{ContainsPct: 90, InsertPct: 5, DeletePct: 5}
	// UpdateHeavy is 50% insert / 50% delete.
	UpdateHeavy = Mix{ContainsPct: 0, InsertPct: 50, DeletePct: 50}
	// ScanHeavy is 50% range queries / 40% contains / 5% insert /
	// 5% delete: most time is spent inside long scans while updates
	// churn the structure underneath them.
	ScanHeavy = Mix{ContainsPct: 40, InsertPct: 5, DeletePct: 5, RangePct: 50}
	// KVStore is the KV-serving mix: 70% get / 10% put / 15% overwrite /
	// 5% delete. Reads dominate (cache-style serving), but the overwrite
	// share keeps a steady stream of value replacements — and therefore
	// retirements on the replace-node structures — flowing through a
	// mostly stable key population.
	KVStore = Mix{ContainsPct: 70, InsertPct: 10, DeletePct: 5, OverwritePct: 15}
)

// Valid reports whether the mix sums to 100 with no negatives.
func (m Mix) Valid() bool {
	return m.ContainsPct >= 0 && m.InsertPct >= 0 && m.DeletePct >= 0 &&
		m.RangePct >= 0 && m.OverwritePct >= 0 &&
		m.ContainsPct+m.InsertPct+m.DeletePct+m.RangePct+m.OverwritePct == 100
}

// DefaultRangeSpan is the scan width used when a mix draws range
// queries and the caller did not choose one.
const DefaultRangeSpan = 100

// Churn is the worker-turnover knob for elastic serving experiments:
// with AfterOps set, a harness worker releases its thread handle after
// that many operations — donating its unreclaimed retire list to the
// domain's orphan queue — and a fresh goroutine re-leases a slot and
// continues the measurement. Churn dials thread-lifecycle pressure the
// way OverwritePct dials retirement pressure: the op stream is
// unchanged; only how long each thread identity lives varies.
type Churn struct {
	// AfterOps is the number of operations one worker incarnation
	// performs before releasing its handle and respawning (0 = no
	// churn: workers keep one handle for the whole run).
	AfterOps uint64
}

// Enabled reports whether the knob is set.
func (c Churn) Enabled() bool { return c.AfterOps > 0 }

// EncodeValue packs a verifiable value for key: the write tag in the
// upper half, a checksum over (key, tag) in the lower. Distinct tags
// yield distinct values for the same key, so overwrite streams are
// last-writer-wins distinguishable while staying verifiable.
func EncodeValue(key int64, tag uint32) uint64 {
	return uint64(tag)<<32 | uint64(checksum32(key, tag))
}

// ValueValid reports whether v is a value EncodeValue could have
// produced for key. A value read from the wrong node, a torn value, or
// bytes from a recycled node fail this check with probability
// 1 - 2^-32.
func ValueValid(key int64, v uint64) bool {
	return uint32(v) == checksum32(key, uint32(v>>32))
}

// checksum32 mixes key and tag through a SplitMix-style finisher.
func checksum32(key int64, tag uint32) uint32 {
	x := uint64(key)*0x9e3779b97f4a7c15 + uint64(tag)*0xff51afd7ed558ccd + 1
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return uint32(x)
}

// Dist selects a key distribution.
type Dist uint8

// The key distributions: uniform over [0, keyRange) (the paper's
// §5.0.2 methodology), scrambled Zipfian (YCSB-style, skew s≈0.99),
// the standard model for skewed serving traffic — a few hot keys absorb
// most operations while the tail stays warm — and Latest (YCSB
// workload D): reads favour the most recently inserted keys, with the
// insert frontier advancing as writers call NextInsert.
const (
	Uniform Dist = iota
	Zipf
	Latest
)

// DefaultZipfS is the Zipfian skew used when none is chosen — YCSB's
// 0.99, under which the hottest of 10^6 keys draws ~7% of traffic.
const DefaultZipfS = 0.99

// ParseDist resolves a distribution name ("uniform", "zipf",
// "latest").
func ParseDist(s string) (Dist, error) {
	switch s {
	case "uniform":
		return Uniform, nil
	case "zipf":
		return Zipf, nil
	case "latest":
		return Latest, nil
	}
	return 0, fmt.Errorf("workload: unknown key distribution %q (want uniform, zipf or latest)", s)
}

// String returns the distribution's flag name.
func (d Dist) String() string {
	switch d {
	case Zipf:
		return "zipf"
	case Latest:
		return "latest"
	}
	return "uniform"
}

// Sampler draws keys in [0, n) under a distribution. Not safe for
// concurrent use; create one per thread.
type Sampler struct {
	r        *rng.State
	n        int64
	z        *zipfState // nil for Uniform
	latest   bool
	frontier int64 // Latest only: next rank NextInsert hands out
}

// NewSampler creates a key sampler. skew is the Zipfian s parameter
// (<= 0 means DefaultZipfS); it is ignored for Uniform.
//
// For Latest, ranks model insertion order: the frontier starts at n/2
// (matching the harness's half-population prefill) and advances on
// NextInsert; Next draws a Zipfian recency offset behind it, so reads
// chase the most recently inserted keys. The frontier is per-sampler —
// a deliberate simplification of YCSB's shared insert counter that
// keeps samplers contention- and coordination-free.
func NewSampler(seed uint64, n int64, dist Dist, skew float64) (*Sampler, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: non-positive key range %d", n)
	}
	s := &Sampler{r: rng.New(seed), n: n}
	if dist == Zipf || dist == Latest {
		if skew <= 0 {
			skew = DefaultZipfS
		}
		if skew >= 1 {
			return nil, fmt.Errorf("workload: zipf skew %v out of range (0, 1)", skew)
		}
		s.z = newZipfState(n, skew)
		if dist == Latest {
			s.latest = true
			s.frontier = n / 2
		}
	}
	return s, nil
}

// Next draws the next key. Zipfian ranks are scrambled through a
// Fibonacci mix so the hot keys are spread across the key space (and
// therefore across store shards) instead of clustering at 0, the
// YCSB ScrambledZipfian behaviour. Latest ranks are not scrambled:
// recency order is the point, so the draw lands a Zipfian offset
// behind the insert frontier (rank frontier-1 is the hottest).
func (s *Sampler) Next() int64 {
	if s.z == nil {
		return s.r.Intn(s.n)
	}
	rank := s.z.next(s.r)
	if s.latest {
		k := s.frontier - 1 - rank
		for k < 0 {
			k += s.n
		}
		return k
	}
	x := uint64(rank) * 0x9e3779b97f4a7c15
	x ^= x >> 29
	return int64(x % uint64(s.n))
}

// NextInsert draws the key for an insert/put. Under Latest it returns
// the frontier rank and advances it (wrapping at n, so long runs
// recycle the oldest keys); under Uniform/Zipf it is exactly Next(),
// keeping the draw stream of existing workloads unchanged.
func (s *Sampler) NextInsert() int64 {
	if !s.latest {
		return s.Next()
	}
	k := s.frontier
	s.frontier++
	if s.frontier >= s.n {
		s.frontier = 0
	}
	return k
}

// Frontier returns the Latest insert frontier (0 otherwise).
func (s *Sampler) Frontier() int64 { return s.frontier }

// Rank draws an unscrambled Zipfian rank (0 = hottest); uniform for a
// Uniform sampler. Exposed so the sampler's distribution is directly
// testable.
func (s *Sampler) Rank() int64 {
	if s.z == nil {
		return s.r.Intn(s.n)
	}
	return s.z.next(s.r)
}

// zipfState is the YCSB-style Zipfian generator (Gray et al.'s
// "Quickly generating billion-record synthetic databases" method): one
// O(n) zeta computation at construction, then O(1) per draw.
type zipfState struct {
	n          int64
	theta      float64
	zetan      float64
	alpha, eta float64
}

func newZipfState(n int64, theta float64) *zipfState {
	z := &zipfState{n: n, theta: theta}
	zeta2 := 0.0
	for i := int64(1); i <= n; i++ {
		v := 1 / math.Pow(float64(i), theta)
		z.zetan += v
		if i == 2 {
			zeta2 = z.zetan
		}
		if n < 2 {
			zeta2 = z.zetan
		}
	}
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z
}

// next draws a rank in [0, n), rank 0 being the hottest.
func (z *zipfState) next(r *rng.State) int64 {
	u := float64(r.Uint64()>>11) / (1 << 53) // uniform in [0, 1)
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	rank := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if rank >= z.n {
		rank = z.n - 1
	}
	return rank
}

// Generator draws (operation, key) pairs for one worker thread. Not safe
// for concurrent use; create one per thread.
type Generator struct {
	r         *rng.State
	seed      uint64 // construction seed (SetDist derives from it)
	keys      *Sampler
	mix       Mix
	keyRange  int64
	rangeSpan int64
	vtag      uint32
}

// NewGeneratorErr creates a generator over [0, keyRange) with the given
// mix, reporting invalid configurations as errors (so harness-level
// validation can surface them instead of crashing a sweep).
func NewGeneratorErr(seed uint64, mix Mix, keyRange int64) (*Generator, error) {
	if !mix.Valid() {
		return nil, fmt.Errorf("workload: mix %+v does not sum to 100", mix)
	}
	if keyRange <= 0 {
		return nil, fmt.Errorf("workload: non-positive key range %d", keyRange)
	}
	keys, err := NewSampler(seed^0x6b65795f73747265, keyRange, Uniform, 0)
	if err != nil {
		return nil, err
	}
	return &Generator{
		r: rng.New(seed), seed: seed, keys: keys, mix: mix, keyRange: keyRange,
		rangeSpan: DefaultRangeSpan, vtag: uint32(seed),
	}, nil
}

// SetDist switches the generator's key distribution (default Uniform).
// skew is the Zipfian s (<= 0 means DefaultZipfS). The op mix and the
// key stream use independent random streams seeded from the stored
// construction seed — SetDist never draws from the op-mix stream — so
// two same-seed runs differing only in distribution execute the exact
// same operation sequence over different keys.
func (g *Generator) SetDist(dist Dist, skew float64) error {
	keys, err := NewSampler(g.seed^0x64697374_7a697066, g.keyRange, dist, skew)
	if err != nil {
		return err
	}
	g.keys = keys
	return nil
}

// NewGenerator creates a generator over [0, keyRange) with the given
// mix. It panics on invalid input; use NewGeneratorErr to get an error
// instead.
func NewGenerator(seed uint64, mix Mix, keyRange int64) *Generator {
	g, err := NewGeneratorErr(seed, mix, keyRange)
	if err != nil {
		panic(err.Error())
	}
	return g
}

// SetRangeSpan overrides the scan width drawn for RangeQuery operations
// (default DefaultRangeSpan). span must be positive.
func (g *Generator) SetRangeSpan(span int64) {
	if span <= 0 {
		panic("workload: non-positive range span")
	}
	g.rangeSpan = span
}

// RangeSpan returns the scan width for RangeQuery operations.
func (g *Generator) RangeSpan() int64 { return g.rangeSpan }

// Next returns the next operation and key. For RangeQuery the key is the
// scan's lower bound; the upper bound is key+RangeSpan()-1.
func (g *Generator) Next() (Op, int64) {
	k := g.keys.Next()
	p := g.r.Pct()
	switch {
	case p < g.mix.ContainsPct:
		return Contains, k
	case p < g.mix.ContainsPct+g.mix.InsertPct:
		return Insert, k
	case p < g.mix.ContainsPct+g.mix.InsertPct+g.mix.DeletePct:
		return Delete, k
	case p < g.mix.ContainsPct+g.mix.InsertPct+g.mix.DeletePct+g.mix.OverwritePct:
		return Overwrite, k
	default:
		return RangeQuery, k
	}
}

// Value returns the next verifiable value payload for key: a fresh tag
// from the generator's private counter, encoded with EncodeValue.
func (g *Generator) Value(key int64) uint64 {
	g.vtag++
	return EncodeValue(key, g.vtag)
}

// Key returns a key in [0, keyRange) under the generator's distribution
// (prefill use).
func (g *Generator) Key() int64 { return g.keys.Next() }

// KeyIn returns a uniform key in [0, n).
func (g *Generator) KeyIn(n int64) int64 { return g.r.Intn(n) }

// ---------------------------------------------------------------------
// Store-workload dialect: string keys, byte values, serving mixes.
// ---------------------------------------------------------------------

// StoreOp is a store-level operation kind (string keys, byte values).
type StoreOp uint8

// The store operation kinds.
const (
	// StoreGet serves one key's value.
	StoreGet StoreOp = iota
	// StorePut upserts one key with a fresh payload.
	StorePut
	// StoreMGet serves a batch of keys through the store's batched
	// multi-get (one protected entry/exit per shard per batch).
	StoreMGet
	// StoreScan walks a hashed-key window, returning value copies.
	StoreScan
	// StoreDelete removes one key.
	StoreDelete
	// StoreRMW is a read-modify-write: read one key's value, then put
	// a fresh payload back under the same key (YCSB workload F's op
	// class). The read and the write are separate protected ops, like
	// a cache's read-update cycle.
	StoreRMW
	// StoreMPut upserts a batch of keys through the store's batched
	// multi-put (one protected entry/exit and one arena reservation
	// pass per shard per batch) — the write-side mirror of StoreMGet.
	StoreMPut
)

// StoreMix is a store operation mixture in percent; fields must sum to
// 100.
type StoreMix struct {
	GetPct    int
	PutPct    int
	MGetPct   int
	ScanPct   int
	DeletePct int
	RMWPct    int
	MPutPct   int
}

// StoreServe is the standard KV-serving mix for store sweeps: 65% get /
// 15% put / 10% multi-get / 5% scan / 5% delete — read-dominated like a
// cache front, with enough writes that value retirement runs
// continuously.
var StoreServe = StoreMix{GetPct: 65, PutPct: 15, MGetPct: 10, ScanPct: 5, DeletePct: 5}

// Valid reports whether the mix sums to 100 with no negatives.
func (m StoreMix) Valid() bool {
	return m.GetPct >= 0 && m.PutPct >= 0 && m.MGetPct >= 0 && m.ScanPct >= 0 &&
		m.DeletePct >= 0 && m.RMWPct >= 0 && m.MPutPct >= 0 &&
		m.GetPct+m.PutPct+m.MGetPct+m.ScanPct+m.DeletePct+m.RMWPct+m.MPutPct == 100
}

// NextStore draws the next store operation kind from m using r. Newer
// classes (RMW, then MPut) are drawn last so mixes without them consume
// the exact same random stream they did before the class existed.
func (m StoreMix) NextStore(r *rng.State) StoreOp {
	p := r.Pct()
	switch {
	case p < m.GetPct:
		return StoreGet
	case p < m.GetPct+m.PutPct:
		return StorePut
	case p < m.GetPct+m.PutPct+m.MGetPct:
		return StoreMGet
	case p < m.GetPct+m.PutPct+m.MGetPct+m.ScanPct:
		return StoreScan
	case p < m.GetPct+m.PutPct+m.MGetPct+m.ScanPct+m.DeletePct:
		return StoreDelete
	case p < m.GetPct+m.PutPct+m.MGetPct+m.ScanPct+m.DeletePct+m.RMWPct:
		return StoreRMW
	default:
		return StoreMPut
	}
}

const hexDigits = "0123456789abcdef"

// KeyString renders rank i as the canonical store benchmark key
// ("k" + 16 hex digits): fixed-length, allocation-exact, and unique per
// rank. The harness pregenerates a table of these so the hot loop never
// formats.
func KeyString(i int64) string {
	var b [17]byte
	b[0] = 'k'
	x := uint64(i)
	for j := 16; j >= 1; j-- {
		b[j] = hexDigits[x&0xf]
		x >>= 4
	}
	return string(b[:])
}

// MinValueLen is the smallest payload of the full verifiable format:
// the 8-byte checksum head. Sizes below it use the compact format.
const MinValueLen = 8

// MinCompactLen is the smallest verifiable payload overall: the 4-byte
// checksum of the compact small-value format. Requested sizes below it
// are clamped up to it.
const MinCompactLen = 4

// AppendValueBytes appends a verifiable payload of exactly size bytes
// for key to buf and returns the result. Two formats, selected by
// length alone so the verifier needs no side channel:
//
//   - size >= MinValueLen (full): the head is EncodeValue(key, tag) —
//     the same (tag, checksum) word the uint64 value plane uses — and
//     the body is a splitmix stream seeded by that head.
//   - MinCompactLen <= size < MinValueLen (compact): size-4 low tag
//     bytes little-endian, then checksum32(key, truncated tag)
//     little-endian. These sizes exist so the store's inline-value
//     fast path (payloads <= 7 bytes) is exercisable with the same
//     checksum discipline as every other served byte.
//
// Sizes below MinCompactLen clamp up to it. Either way, any torn,
// truncated, cross-key or stale-slot payload fails ValueBytesValid
// with overwhelming probability.
func AppendValueBytes(buf []byte, key int64, tag uint32, size int) []byte {
	if size < MinCompactLen {
		size = MinCompactLen
	}
	if size < MinValueLen {
		nb := size - MinCompactLen // tag bytes carried (0..3)
		tt := tag
		if nb < 4 {
			tt &= 1<<(8*nb) - 1
		}
		for i := 0; i < nb; i++ {
			buf = append(buf, byte(tt>>(8*i)))
		}
		ck := checksum32(key, tt)
		for i := 0; i < 4; i++ {
			buf = append(buf, byte(ck>>(8*i)))
		}
		return buf
	}
	head := EncodeValue(key, tag)
	for i := 0; i < 8; i++ {
		buf = append(buf, byte(head>>(8*i)))
	}
	x := head
	for n := size - 8; n > 0; n -= 8 {
		w := splitmix(&x)
		for i := 0; i < 8 && i < n; i++ {
			buf = append(buf, byte(w>>(8*i)))
		}
	}
	return buf
}

// ValueBytesValid reports whether v is a payload AppendValueBytes could
// have produced for key, in whichever format its length selects: the
// compact tag/checksum pair for lengths in [MinCompactLen, MinValueLen),
// or the head word passing ValueValid and the body matching the
// head-seeded stream exactly for full-format lengths.
func ValueBytesValid(key int64, v []byte) bool {
	if len(v) < MinCompactLen {
		return false
	}
	if len(v) < MinValueLen {
		nb := len(v) - MinCompactLen
		var tt uint32
		for i := 0; i < nb; i++ {
			tt |= uint32(v[i]) << (8 * i)
		}
		ck := checksum32(key, tt)
		for i := 0; i < 4; i++ {
			if v[nb+i] != byte(ck>>(8*i)) {
				return false
			}
		}
		return true
	}
	var head uint64
	for i := 0; i < 8; i++ {
		head |= uint64(v[i]) << (8 * i)
	}
	if !ValueValid(key, head) {
		return false
	}
	x := head
	for off := 8; off < len(v); off += 8 {
		w := splitmix(&x)
		for i := 0; i < 8 && off+i < len(v); i++ {
			if v[off+i] != byte(w>>(8*i)) {
				return false
			}
		}
	}
	return true
}

// splitmix is the SplitMix64 step used for value-body streams.
func splitmix(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
