// Package workload defines the operation mixes and key distributions of
// the paper's evaluation (§5.0.2): uniformly random keys over a fixed
// range, chosen operation percentages, and the two standard mixes —
// read-heavy (90% contains, 5% insert, 5% delete) and update-heavy
// (50% insert, 50% delete) — plus the long-running-reads asymmetric
// workload of §5.1.2 and, beyond the paper, two extension dimensions:
//
//   - a range-query dimension (RangePct/RangeSpan) with a scan-heavy mix
//     that stresses reservation publication with long ordered scans
//     (requires a ds.RangeScanner);
//   - a key→value dimension (OverwritePct, the KVStore mix) for the map
//     contract: Contains doubles as Get, Insert as Put-if-absent, and
//     Overwrite is an upsert Put that replaces a present key's value —
//     on the lock-free structures that is a replace-node-and-retire, so
//     overwrite share directly dials retirement pressure without
//     changing the key population.
//
// Value payloads are derived from the key stream and are checksum-
// verifiable: EncodeValue packs a write tag with a checksum over
// (key, tag), and ValueValid rejects any value that was not produced by
// EncodeValue for that key. A torn, stale or cross-key value — the
// value-plane symptom of a use-after-free — fails verification, so the
// harness can assert correctness while benchmarking.
//
// Generators are built with NewGeneratorErr wherever a configuration
// comes from user input (harness configs, popbench flags); the
// panicking NewGenerator remains only as a convenience for tests.
package workload

import (
	"fmt"

	"pop/internal/rng"
)

// Op is a data-structure operation kind.
type Op uint8

// Operation kinds. The map-facing names Get and Put alias Contains and
// Insert: the harness issues Get/PutIfAbsent for them against the map
// contract, which preserves set semantics exactly (an insert never
// disturbs a present key's value).
const (
	Contains Op = iota
	Insert
	Delete
	// RangeQuery is an ordered scan over [key, key+span): one long
	// operation whose reservations stay live across every hop. Only
	// meaningful against structures implementing ds.RangeScanner.
	RangeQuery
	// Overwrite is an upsert Put: it installs a fresh value whether or
	// not the key is present. On a present key the structures either
	// replace the node (hmlist, skiplist, abtree leaves) or store in
	// place under a lock (lazylist, extbst) — see each package's
	// overwrite-strategy doc.
	Overwrite
)

// Map-contract aliases for the KV naming of the same operations.
const (
	Get = Contains
	Put = Insert
)

// Mix is an operation mixture in percent. Fields must sum to 100.
type Mix struct {
	ContainsPct  int
	InsertPct    int
	DeletePct    int
	RangePct     int
	OverwritePct int
}

// The standard mixes: the paper's two, plus the scan-heavy mix that
// exercises the range-query dimension and the KV-serving mix that
// exercises the value dimension.
var (
	// ReadHeavy is 90% contains / 5% insert / 5% delete.
	ReadHeavy = Mix{ContainsPct: 90, InsertPct: 5, DeletePct: 5}
	// UpdateHeavy is 50% insert / 50% delete.
	UpdateHeavy = Mix{ContainsPct: 0, InsertPct: 50, DeletePct: 50}
	// ScanHeavy is 50% range queries / 40% contains / 5% insert /
	// 5% delete: most time is spent inside long scans while updates
	// churn the structure underneath them.
	ScanHeavy = Mix{ContainsPct: 40, InsertPct: 5, DeletePct: 5, RangePct: 50}
	// KVStore is the KV-serving mix: 70% get / 10% put / 15% overwrite /
	// 5% delete. Reads dominate (cache-style serving), but the overwrite
	// share keeps a steady stream of value replacements — and therefore
	// retirements on the replace-node structures — flowing through a
	// mostly stable key population.
	KVStore = Mix{ContainsPct: 70, InsertPct: 10, DeletePct: 5, OverwritePct: 15}
)

// Valid reports whether the mix sums to 100 with no negatives.
func (m Mix) Valid() bool {
	return m.ContainsPct >= 0 && m.InsertPct >= 0 && m.DeletePct >= 0 &&
		m.RangePct >= 0 && m.OverwritePct >= 0 &&
		m.ContainsPct+m.InsertPct+m.DeletePct+m.RangePct+m.OverwritePct == 100
}

// DefaultRangeSpan is the scan width used when a mix draws range
// queries and the caller did not choose one.
const DefaultRangeSpan = 100

// EncodeValue packs a verifiable value for key: the write tag in the
// upper half, a checksum over (key, tag) in the lower. Distinct tags
// yield distinct values for the same key, so overwrite streams are
// last-writer-wins distinguishable while staying verifiable.
func EncodeValue(key int64, tag uint32) uint64 {
	return uint64(tag)<<32 | uint64(checksum32(key, tag))
}

// ValueValid reports whether v is a value EncodeValue could have
// produced for key. A value read from the wrong node, a torn value, or
// bytes from a recycled node fail this check with probability
// 1 - 2^-32.
func ValueValid(key int64, v uint64) bool {
	return uint32(v) == checksum32(key, uint32(v>>32))
}

// checksum32 mixes key and tag through a SplitMix-style finisher.
func checksum32(key int64, tag uint32) uint32 {
	x := uint64(key)*0x9e3779b97f4a7c15 + uint64(tag)*0xff51afd7ed558ccd + 1
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return uint32(x)
}

// Generator draws (operation, key) pairs for one worker thread. Not safe
// for concurrent use; create one per thread.
type Generator struct {
	r         *rng.State
	mix       Mix
	keyRange  int64
	rangeSpan int64
	vtag      uint32
}

// NewGeneratorErr creates a generator over [0, keyRange) with the given
// mix, reporting invalid configurations as errors (so harness-level
// validation can surface them instead of crashing a sweep).
func NewGeneratorErr(seed uint64, mix Mix, keyRange int64) (*Generator, error) {
	if !mix.Valid() {
		return nil, fmt.Errorf("workload: mix %+v does not sum to 100", mix)
	}
	if keyRange <= 0 {
		return nil, fmt.Errorf("workload: non-positive key range %d", keyRange)
	}
	return &Generator{
		r: rng.New(seed), mix: mix, keyRange: keyRange,
		rangeSpan: DefaultRangeSpan, vtag: uint32(seed),
	}, nil
}

// NewGenerator creates a generator over [0, keyRange) with the given
// mix. It panics on invalid input; use NewGeneratorErr to get an error
// instead.
func NewGenerator(seed uint64, mix Mix, keyRange int64) *Generator {
	g, err := NewGeneratorErr(seed, mix, keyRange)
	if err != nil {
		panic(err.Error())
	}
	return g
}

// SetRangeSpan overrides the scan width drawn for RangeQuery operations
// (default DefaultRangeSpan). span must be positive.
func (g *Generator) SetRangeSpan(span int64) {
	if span <= 0 {
		panic("workload: non-positive range span")
	}
	g.rangeSpan = span
}

// RangeSpan returns the scan width for RangeQuery operations.
func (g *Generator) RangeSpan() int64 { return g.rangeSpan }

// Next returns the next operation and key. For RangeQuery the key is the
// scan's lower bound; the upper bound is key+RangeSpan()-1.
func (g *Generator) Next() (Op, int64) {
	k := g.r.Intn(g.keyRange)
	p := g.r.Pct()
	switch {
	case p < g.mix.ContainsPct:
		return Contains, k
	case p < g.mix.ContainsPct+g.mix.InsertPct:
		return Insert, k
	case p < g.mix.ContainsPct+g.mix.InsertPct+g.mix.DeletePct:
		return Delete, k
	case p < g.mix.ContainsPct+g.mix.InsertPct+g.mix.DeletePct+g.mix.OverwritePct:
		return Overwrite, k
	default:
		return RangeQuery, k
	}
}

// Value returns the next verifiable value payload for key: a fresh tag
// from the generator's private counter, encoded with EncodeValue.
func (g *Generator) Value(key int64) uint64 {
	g.vtag++
	return EncodeValue(key, g.vtag)
}

// Key returns a uniform key in [0, keyRange) (prefill use).
func (g *Generator) Key() int64 { return g.r.Intn(g.keyRange) }

// KeyIn returns a uniform key in [0, n).
func (g *Generator) KeyIn(n int64) int64 { return g.r.Intn(n) }
