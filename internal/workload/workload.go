// Package workload defines the operation mixes and key distributions of
// the paper's evaluation (§5.0.2): uniformly random keys over a fixed
// range, chosen operation percentages, and the two standard mixes —
// read-heavy (90% contains, 5% insert, 5% delete) and update-heavy
// (50% insert, 50% delete) — plus the long-running-reads asymmetric
// workload of §5.1.2.
package workload

import "pop/internal/rng"

// Op is a data-structure operation kind.
type Op uint8

// Operation kinds.
const (
	Contains Op = iota
	Insert
	Delete
)

// Mix is an operation mixture in percent. Fields must sum to 100.
type Mix struct {
	ContainsPct int
	InsertPct   int
	DeletePct   int
}

// The paper's two standard mixes.
var (
	// ReadHeavy is 90% contains / 5% insert / 5% delete.
	ReadHeavy = Mix{ContainsPct: 90, InsertPct: 5, DeletePct: 5}
	// UpdateHeavy is 50% insert / 50% delete.
	UpdateHeavy = Mix{ContainsPct: 0, InsertPct: 50, DeletePct: 50}
)

// Valid reports whether the mix sums to 100 with no negatives.
func (m Mix) Valid() bool {
	return m.ContainsPct >= 0 && m.InsertPct >= 0 && m.DeletePct >= 0 &&
		m.ContainsPct+m.InsertPct+m.DeletePct == 100
}

// Generator draws (operation, key) pairs for one worker thread. Not safe
// for concurrent use; create one per thread.
type Generator struct {
	r        *rng.State
	mix      Mix
	keyRange int64
}

// NewGenerator creates a generator over [0, keyRange) with the given mix.
func NewGenerator(seed uint64, mix Mix, keyRange int64) *Generator {
	if !mix.Valid() {
		panic("workload: mix does not sum to 100")
	}
	if keyRange <= 0 {
		panic("workload: non-positive key range")
	}
	return &Generator{r: rng.New(seed), mix: mix, keyRange: keyRange}
}

// Next returns the next operation and key.
func (g *Generator) Next() (Op, int64) {
	k := g.r.Intn(g.keyRange)
	p := g.r.Pct()
	switch {
	case p < g.mix.ContainsPct:
		return Contains, k
	case p < g.mix.ContainsPct+g.mix.InsertPct:
		return Insert, k
	default:
		return Delete, k
	}
}

// Key returns a uniform key in [0, keyRange) (prefill use).
func (g *Generator) Key() int64 { return g.r.Intn(g.keyRange) }

// KeyIn returns a uniform key in [0, n).
func (g *Generator) KeyIn(n int64) int64 { return g.r.Intn(n) }
