// Package workload defines the operation mixes and key distributions of
// the paper's evaluation (§5.0.2): uniformly random keys over a fixed
// range, chosen operation percentages, and the two standard mixes —
// read-heavy (90% contains, 5% insert, 5% delete) and update-heavy
// (50% insert, 50% delete) — plus the long-running-reads asymmetric
// workload of §5.1.2 and, beyond the paper, a range-query dimension
// (RangePct/RangeSpan) with a scan-heavy mix that stresses reservation
// publication with long ordered scans. The range dimension is
// cross-structure: any set implementing ds.RangeScanner (skiplist,
// (a,b)-tree) can run a range-bearing mix, and the harness records
// each scan's latency so tails are comparable across policies.
//
// Generators are built with NewGeneratorErr wherever a configuration
// comes from user input (harness configs, popbench flags); the
// panicking NewGenerator remains only as a convenience for tests.
package workload

import (
	"fmt"

	"pop/internal/rng"
)

// Op is a data-structure operation kind.
type Op uint8

// Operation kinds.
const (
	Contains Op = iota
	Insert
	Delete
	// RangeQuery is an ordered scan over [key, key+span): one long
	// operation whose reservations stay live across every hop. Only
	// meaningful against sets implementing ds.RangeScanner.
	RangeQuery
)

// Mix is an operation mixture in percent. Fields must sum to 100.
type Mix struct {
	ContainsPct int
	InsertPct   int
	DeletePct   int
	RangePct    int
}

// The standard mixes: the paper's two, plus the scan-heavy mix that
// exercises the range-query dimension.
var (
	// ReadHeavy is 90% contains / 5% insert / 5% delete.
	ReadHeavy = Mix{ContainsPct: 90, InsertPct: 5, DeletePct: 5}
	// UpdateHeavy is 50% insert / 50% delete.
	UpdateHeavy = Mix{ContainsPct: 0, InsertPct: 50, DeletePct: 50}
	// ScanHeavy is 50% range queries / 40% contains / 5% insert /
	// 5% delete: most time is spent inside long scans while updates
	// churn the structure underneath them.
	ScanHeavy = Mix{ContainsPct: 40, InsertPct: 5, DeletePct: 5, RangePct: 50}
)

// Valid reports whether the mix sums to 100 with no negatives.
func (m Mix) Valid() bool {
	return m.ContainsPct >= 0 && m.InsertPct >= 0 && m.DeletePct >= 0 && m.RangePct >= 0 &&
		m.ContainsPct+m.InsertPct+m.DeletePct+m.RangePct == 100
}

// DefaultRangeSpan is the scan width used when a mix draws range
// queries and the caller did not choose one.
const DefaultRangeSpan = 100

// Generator draws (operation, key) pairs for one worker thread. Not safe
// for concurrent use; create one per thread.
type Generator struct {
	r         *rng.State
	mix       Mix
	keyRange  int64
	rangeSpan int64
}

// NewGeneratorErr creates a generator over [0, keyRange) with the given
// mix, reporting invalid configurations as errors (so harness-level
// validation can surface them instead of crashing a sweep).
func NewGeneratorErr(seed uint64, mix Mix, keyRange int64) (*Generator, error) {
	if !mix.Valid() {
		return nil, fmt.Errorf("workload: mix %+v does not sum to 100", mix)
	}
	if keyRange <= 0 {
		return nil, fmt.Errorf("workload: non-positive key range %d", keyRange)
	}
	return &Generator{r: rng.New(seed), mix: mix, keyRange: keyRange, rangeSpan: DefaultRangeSpan}, nil
}

// NewGenerator creates a generator over [0, keyRange) with the given
// mix. It panics on invalid input; use NewGeneratorErr to get an error
// instead.
func NewGenerator(seed uint64, mix Mix, keyRange int64) *Generator {
	g, err := NewGeneratorErr(seed, mix, keyRange)
	if err != nil {
		panic(err.Error())
	}
	return g
}

// SetRangeSpan overrides the scan width drawn for RangeQuery operations
// (default DefaultRangeSpan). span must be positive.
func (g *Generator) SetRangeSpan(span int64) {
	if span <= 0 {
		panic("workload: non-positive range span")
	}
	g.rangeSpan = span
}

// RangeSpan returns the scan width for RangeQuery operations.
func (g *Generator) RangeSpan() int64 { return g.rangeSpan }

// Next returns the next operation and key. For RangeQuery the key is the
// scan's lower bound; the upper bound is key+RangeSpan()-1.
func (g *Generator) Next() (Op, int64) {
	k := g.r.Intn(g.keyRange)
	p := g.r.Pct()
	switch {
	case p < g.mix.ContainsPct:
		return Contains, k
	case p < g.mix.ContainsPct+g.mix.InsertPct:
		return Insert, k
	case p < g.mix.ContainsPct+g.mix.InsertPct+g.mix.DeletePct:
		return Delete, k
	default:
		return RangeQuery, k
	}
}

// Key returns a uniform key in [0, keyRange) (prefill use).
func (g *Generator) Key() int64 { return g.r.Intn(g.keyRange) }

// KeyIn returns a uniform key in [0, n).
func (g *Generator) KeyIn(n int64) int64 { return g.r.Intn(n) }
