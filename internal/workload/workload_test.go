package workload_test

import (
	"testing"
	"testing/quick"

	"pop/internal/workload"
)

func TestStandardMixesValid(t *testing.T) {
	if !workload.ReadHeavy.Valid() {
		t.Fatal("ReadHeavy invalid")
	}
	if !workload.UpdateHeavy.Valid() {
		t.Fatal("UpdateHeavy invalid")
	}
	if !workload.ScanHeavy.Valid() {
		t.Fatal("ScanHeavy invalid")
	}
}

func TestMixValidation(t *testing.T) {
	cases := []struct {
		mix workload.Mix
		ok  bool
	}{
		{workload.Mix{ContainsPct: 100}, true},
		{workload.Mix{ContainsPct: 34, InsertPct: 33, DeletePct: 33}, true},
		{workload.Mix{ContainsPct: 50, InsertPct: 50, DeletePct: 50}, false},
		{workload.Mix{ContainsPct: -10, InsertPct: 60, DeletePct: 50}, false},
		{workload.Mix{}, false},
		{workload.Mix{RangePct: 100}, true},
		{workload.Mix{ContainsPct: 40, InsertPct: 5, DeletePct: 5, RangePct: 50}, true},
		{workload.Mix{ContainsPct: 90, InsertPct: 5, DeletePct: 5, RangePct: 10}, false},
		{workload.Mix{ContainsPct: 50, InsertPct: 30, DeletePct: 30, RangePct: -10}, false},
	}
	for _, c := range cases {
		if got := c.mix.Valid(); got != c.ok {
			t.Fatalf("Valid(%+v) = %v, want %v", c.mix, got, c.ok)
		}
	}
}

func TestGeneratorHonoursMix(t *testing.T) {
	const draws = 100_000
	g := workload.NewGenerator(1, workload.ReadHeavy, 1000)
	var counts [3]int
	for i := 0; i < draws; i++ {
		op, key := g.Next()
		if key < 0 || key >= 1000 {
			t.Fatalf("key %d out of range", key)
		}
		counts[op]++
	}
	// 90/5/5 within 1.5 points each.
	if c := float64(counts[workload.Contains]) / draws * 100; c < 88.5 || c > 91.5 {
		t.Fatalf("contains fraction %.2f%%, want ~90%%", c)
	}
	if c := float64(counts[workload.Insert]) / draws * 100; c < 3.5 || c > 6.5 {
		t.Fatalf("insert fraction %.2f%%, want ~5%%", c)
	}
}

func TestUpdateHeavyHasNoReads(t *testing.T) {
	g := workload.NewGenerator(2, workload.UpdateHeavy, 100)
	for i := 0; i < 10_000; i++ {
		if op, _ := g.Next(); op == workload.Contains {
			t.Fatal("update-heavy mix produced a contains")
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := workload.NewGenerator(7, workload.ReadHeavy, 500)
	b := workload.NewGenerator(7, workload.ReadHeavy, 500)
	for i := 0; i < 1000; i++ {
		opA, kA := a.Next()
		opB, kB := b.Next()
		if opA != opB || kA != kB {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestScanHeavyHonoursRangePct(t *testing.T) {
	const draws = 100_000
	g := workload.NewGenerator(3, workload.ScanHeavy, 1000)
	var counts [4]int
	for i := 0; i < draws; i++ {
		op, _ := g.Next()
		counts[op]++
	}
	if c := float64(counts[workload.RangeQuery]) / draws * 100; c < 48.5 || c > 51.5 {
		t.Fatalf("range fraction %.2f%%, want ~50%%", c)
	}
	if c := float64(counts[workload.Contains]) / draws * 100; c < 38.5 || c > 41.5 {
		t.Fatalf("contains fraction %.2f%%, want ~40%%", c)
	}
}

func TestRangeSpanDefaultsAndOverride(t *testing.T) {
	g := workload.NewGenerator(4, workload.ScanHeavy, 1000)
	if got := g.RangeSpan(); got != workload.DefaultRangeSpan {
		t.Fatalf("default RangeSpan = %d, want %d", got, workload.DefaultRangeSpan)
	}
	g.SetRangeSpan(17)
	if got := g.RangeSpan(); got != 17 {
		t.Fatalf("RangeSpan after SetRangeSpan(17) = %d", got)
	}
}

func TestNewGeneratorErr(t *testing.T) {
	if _, err := workload.NewGeneratorErr(1, workload.Mix{ContainsPct: 1}, 10); err == nil {
		t.Fatal("bad mix accepted")
	}
	if _, err := workload.NewGeneratorErr(1, workload.ReadHeavy, 0); err == nil {
		t.Fatal("bad key range accepted")
	}
	g, err := workload.NewGeneratorErr(1, workload.ScanHeavy, 10)
	if err != nil || g == nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestInvalidConstructionPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"bad mix":   func() { workload.NewGenerator(1, workload.Mix{ContainsPct: 1}, 10) },
		"bad range": func() { workload.NewGenerator(1, workload.ReadHeavy, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestQuickKeysInRange property-checks key bounds for arbitrary seeds and
// ranges.
func TestQuickKeysInRange(t *testing.T) {
	prop := func(seed uint64, r uint16) bool {
		keyRange := int64(r%5000) + 2
		g := workload.NewGenerator(seed, workload.UpdateHeavy, keyRange)
		for i := 0; i < 64; i++ {
			if _, k := g.Next(); k < 0 || k >= keyRange {
				return false
			}
			if k := g.Key(); k < 0 || k >= keyRange {
				return false
			}
			if k := g.KeyIn(7); k < 0 || k >= 7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKVStoreMixValid(t *testing.T) {
	if !workload.KVStore.Valid() {
		t.Fatal("KVStore invalid")
	}
	if workload.KVStore.OverwritePct == 0 {
		t.Fatal("KVStore has no overwrite share")
	}
}

func TestOverwriteMixHonoured(t *testing.T) {
	const draws = 100_000
	g := workload.NewGenerator(9, workload.KVStore, 1000)
	counts := make(map[workload.Op]int)
	for i := 0; i < draws; i++ {
		op, _ := g.Next()
		counts[op]++
	}
	if counts[workload.RangeQuery] != 0 {
		t.Fatal("kv mix produced a range query")
	}
	check := func(op workload.Op, want float64) {
		t.Helper()
		got := float64(counts[op]) / draws * 100
		if got < want-1.5 || got > want+1.5 {
			t.Fatalf("op %d fraction %.2f%%, want ~%.0f%%", op, got, want)
		}
	}
	check(workload.Get, 70)
	check(workload.Put, 10)
	check(workload.Overwrite, 15)
	check(workload.Delete, 5)
}

// TestOldMixStreamsUnchanged pins that adding OverwritePct did not
// perturb the draw sequence of overwrite-free mixes (trial
// reproducibility across this refactor).
func TestOldMixStreamsUnchanged(t *testing.T) {
	g := workload.NewGenerator(5, workload.ScanHeavy, 100)
	for i := 0; i < 10_000; i++ {
		if op, _ := g.Next(); op == workload.Overwrite {
			t.Fatal("overwrite drawn from a mix without OverwritePct")
		}
	}
}

func TestEncodeValueRoundTrip(t *testing.T) {
	for _, key := range []int64{0, 1, -1, 42, 1 << 40} {
		for tag := uint32(0); tag < 64; tag++ {
			v := workload.EncodeValue(key, tag)
			if !workload.ValueValid(key, v) {
				t.Fatalf("EncodeValue(%d, %d) = %#x fails its own checksum", key, tag, v)
			}
			if workload.ValueValid(key+1, v) {
				t.Fatalf("value %#x for key %d also validates for key %d", v, key, key+1)
			}
		}
	}
	// A perturbed value must fail.
	v := workload.EncodeValue(7, 3)
	for bit := 0; bit < 64; bit += 7 {
		if workload.ValueValid(7, v^(1<<bit)) {
			t.Fatalf("bit-%d-flipped value still validates", bit)
		}
	}
}

func TestGeneratorValueVerifiable(t *testing.T) {
	g := workload.NewGenerator(11, workload.KVStore, 100)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		k := g.Key()
		v := g.Value(k)
		if !workload.ValueValid(k, v) {
			t.Fatalf("generated value %#x for key %d fails verification", v, k)
		}
		if seen[v] {
			t.Fatalf("generator repeated value %#x", v)
		}
		seen[v] = true
	}
}
