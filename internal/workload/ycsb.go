package workload

import (
	"fmt"
	"strings"
)

// YCSBWorkload is one of the six YCSB core workloads (Cooper et al.,
// "Benchmarking cloud serving systems with YCSB", SoCC 2010) expressed
// in the store dialect: an op mixture plus the key distribution the
// spec pairs with it. Scan span and value sizes stay harness knobs —
// the spec leaves them to the target store.
type YCSBWorkload struct {
	// Name is the single-letter workload name, "A" through "F".
	Name string
	// Desc is the spec's one-line characterisation.
	Desc string
	// Mix is the op mixture in the store dialect.
	Mix StoreMix
	// Dist is the key distribution the spec pairs with the mix.
	Dist Dist
}

// Ordered reports whether the workload draws scans and therefore needs
// an ordered store backing (skl or abt).
func (w YCSBWorkload) Ordered() bool { return w.Mix.ScanPct > 0 }

// The six YCSB core workloads. Inserts are modelled as puts: the store
// is an upsert KV, so "insert a new record" and "update a record" are
// the same wire op; under the Latest distribution puts land on the
// advancing insert frontier (NextInsert), which is exactly workload D's
// "read the records just inserted" shape.
var ycsbWorkloads = []YCSBWorkload{
	{"A", "update-heavy: 50% read / 50% update, zipfian", StoreMix{GetPct: 50, PutPct: 50}, Zipf},
	{"B", "read-heavy: 95% read / 5% update, zipfian", StoreMix{GetPct: 95, PutPct: 5}, Zipf},
	{"C", "read-only: 100% read, zipfian", StoreMix{GetPct: 100}, Zipf},
	{"D", "read-latest: 95% read / 5% insert, latest", StoreMix{GetPct: 95, PutPct: 5}, Latest},
	{"E", "scan-heavy: 95% scan / 5% insert, zipfian", StoreMix{ScanPct: 95, PutPct: 5}, Zipf},
	{"F", "read-modify-write: 50% read / 50% rmw, zipfian", StoreMix{GetPct: 50, RMWPct: 50}, Zipf},
}

// YCSBWorkloads returns the six core workloads A–F in order. The slice
// is a copy; callers may reorder or filter it.
func YCSBWorkloads() []YCSBWorkload {
	out := make([]YCSBWorkload, len(ycsbWorkloads))
	copy(out, ycsbWorkloads)
	return out
}

// ParseYCSB resolves a workload by letter ("A".."F", case-insensitive).
func ParseYCSB(name string) (YCSBWorkload, error) {
	n := strings.ToUpper(strings.TrimSpace(name))
	for _, w := range ycsbWorkloads {
		if w.Name == n {
			return w, nil
		}
	}
	return YCSBWorkload{}, fmt.Errorf("workload: unknown YCSB workload %q (want A..F)", name)
}
