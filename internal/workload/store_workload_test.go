package workload

import (
	"testing"

	"pop/internal/rng"
)

func TestZipfTailMass(t *testing.T) {
	const (
		n     = 10_000
		draws = 200_000
		skew  = 0.99
	)
	s, err := NewSampler(7, n, Zipf, skew)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Rank()]++
	}
	// Theoretical head mass: P(rank 0) = 1/zetan. For n=10^4, s=0.99,
	// zetan ≈ 10.75, so ~9.3% of draws hit the hottest rank.
	z := newZipfState(n, skew)
	want0 := 1 / z.zetan
	got0 := float64(counts[0]) / draws
	if got0 < want0*0.9 || got0 > want0*1.1 {
		t.Errorf("rank-0 mass = %.4f, want ≈ %.4f (±10%%)", got0, want0)
	}
	// Head-vs-tail shape: the hottest 100 ranks (1%) must carry the
	// majority of the mass, and the coldest half only a sliver — the
	// defining property a uniform sampler lacks.
	head, tail := 0, 0
	for r, c := range counts {
		if r < 100 {
			head += c
		}
		if r >= n/2 {
			tail += c
		}
	}
	if hm := float64(head) / draws; hm < 0.5 {
		t.Errorf("top-1%% mass = %.3f, want > 0.5", hm)
	}
	if tm := float64(tail) / draws; tm > 0.1 {
		t.Errorf("coldest-half mass = %.3f, want < 0.1", tm)
	}
	// Monotone head: rank 0 strictly hotter than ranks 10 and 100.
	if !(counts[0] > counts[10] && counts[10] > counts[100]) {
		t.Errorf("head not monotone: c0=%d c10=%d c100=%d", counts[0], counts[10], counts[100])
	}
}

func TestZipfScrambleCoversSpace(t *testing.T) {
	const n = 1024
	s, err := NewSampler(11, n, Zipf, 0) // default skew
	if err != nil {
		t.Fatal(err)
	}
	var lowHalf int
	const draws = 10_000
	for i := 0; i < draws; i++ {
		k := s.Next()
		if k < 0 || k >= n {
			t.Fatalf("Next() = %d outside [0,%d)", k, n)
		}
		if k < n/2 {
			lowHalf++
		}
	}
	// Scrambling spreads the hot ranks: the low half of the key space
	// must not hold almost all draws (it would without the scramble,
	// since low ranks are hottest).
	if frac := float64(lowHalf) / draws; frac > 0.75 || frac < 0.25 {
		t.Errorf("low-half fraction = %.3f, want scrambled (0.25..0.75)", frac)
	}
}

func TestParseDist(t *testing.T) {
	if d, err := ParseDist("uniform"); err != nil || d != Uniform {
		t.Errorf("ParseDist(uniform) = %v, %v", d, err)
	}
	if d, err := ParseDist("zipf"); err != nil || d != Zipf {
		t.Errorf("ParseDist(zipf) = %v, %v", d, err)
	}
	if _, err := ParseDist("pareto"); err == nil {
		t.Error("ParseDist(pareto) succeeded")
	}
}

func TestGeneratorSetDist(t *testing.T) {
	g, err := NewGeneratorErr(3, ReadHeavy, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetDist(Zipf, 0.99); err != nil {
		t.Fatal(err)
	}
	counts := make(map[int64]int)
	for i := 0; i < 50_000; i++ {
		_, k := g.Next()
		counts[k]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Under uniform the max bucket of 50k draws over 4k keys is ~30;
	// under zipf(0.99) the hottest key draws several thousand.
	if max < 1000 {
		t.Errorf("hottest key drew %d of 50000, want zipf-like (>1000)", max)
	}
	if err := g.SetDist(Zipf, 1.5); err == nil {
		t.Error("SetDist accepted skew >= 1")
	}
}

// TestSetDistPreservesOpSequence pins the comparability property: two
// same-seed generators differing only in key distribution must draw
// the exact same operation sequence (only the keys differ), so uniform
// and zipf sweeps compare distributions, not accidental op tapes.
func TestSetDistPreservesOpSequence(t *testing.T) {
	gu, err := NewGeneratorErr(99, KVStore, 4096)
	if err != nil {
		t.Fatal(err)
	}
	gz, err := NewGeneratorErr(99, KVStore, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := gz.SetDist(Zipf, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		opU, _ := gu.Next()
		opZ, _ := gz.Next()
		if opU != opZ {
			t.Fatalf("draw %d: op %v (uniform) != %v (zipf)", i, opU, opZ)
		}
	}
}

func TestKeyString(t *testing.T) {
	if got := KeyString(0); got != "k0000000000000000" {
		t.Errorf("KeyString(0) = %q", got)
	}
	if got := KeyString(0xdeadbeef); got != "k00000000deadbeef" {
		t.Errorf("KeyString(0xdeadbeef) = %q", got)
	}
	seen := make(map[string]bool)
	for i := int64(0); i < 1000; i++ {
		s := KeyString(i)
		if len(s) != 17 || seen[s] {
			t.Fatalf("KeyString(%d) = %q (len %d, dup %v)", i, s, len(s), seen[s])
		}
		seen[s] = true
	}
}

func TestValueBytesRoundTrip(t *testing.T) {
	for _, size := range []int{4, 5, 6, 7, 8, 16, 17, 100, 1024} {
		v := AppendValueBytes(nil, 42, 7, size)
		if len(v) != size {
			t.Fatalf("size %d: got %d bytes", size, len(v))
		}
		if !ValueBytesValid(42, v) {
			t.Fatalf("size %d: fresh payload invalid", size)
		}
		if ValueBytesValid(43, v) {
			t.Fatalf("size %d: cross-key payload accepted", size)
		}
		v[size-1] ^= 1
		if ValueBytesValid(42, v) {
			t.Fatalf("size %d: corrupted tail accepted", size)
		}
		v[size-1] ^= 1
		v[3] ^= 0x80
		if ValueBytesValid(42, v) {
			t.Fatalf("size %d: corrupted head accepted", size)
		}
	}
	if ValueBytesValid(1, []byte{1, 2, 3}) {
		t.Error("short payload accepted")
	}
	// Undersized requests are padded up to the compact checksum.
	if v := AppendValueBytes(nil, 5, 1, 3); len(v) != MinCompactLen || !ValueBytesValid(5, v) {
		t.Errorf("padded payload: len=%d valid=%v", len(v), ValueBytesValid(5, v))
	}
	// Compact payloads with distinct surviving tag bytes stay
	// last-writer-wins distinguishable.
	a := AppendValueBytes(nil, 9, 0x01, 6)
	b := AppendValueBytes(nil, 9, 0x02, 6)
	if string(a) == string(b) {
		t.Error("compact payloads with distinct tags collide")
	}
}

func TestStoreMix(t *testing.T) {
	if !StoreServe.Valid() {
		t.Error("StoreServe mix invalid")
	}
	if (StoreMix{GetPct: 50}).Valid() {
		t.Error("partial mix accepted")
	}
	r := rng.New(1)
	var counts [5]int
	for i := 0; i < 100_000; i++ {
		counts[StoreServe.NextStore(r)]++
	}
	for op, want := range map[StoreOp]int{
		StoreGet: StoreServe.GetPct, StorePut: StoreServe.PutPct,
		StoreMGet: StoreServe.MGetPct, StoreScan: StoreServe.ScanPct,
		StoreDelete: StoreServe.DeletePct,
	} {
		got := float64(counts[op]) / 1000 // percent
		if got < float64(want)-1.5 || got > float64(want)+1.5 {
			t.Errorf("op %d share = %.2f%%, want ≈ %d%%", op, got, want)
		}
	}
}
