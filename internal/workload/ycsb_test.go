package workload

import (
	"math"
	"testing"

	"pop/internal/rng"
)

// TestYCSBMixFrequencies is the statistical drift guard: each YCSB
// mix's drawn op-class frequencies must land within tolerance of the
// spec percentages, so a silent change to the NextStore cascade (or to
// a workload definition) fails loudly.
func TestYCSBMixFrequencies(t *testing.T) {
	const draws = 100_000
	const tolerance = 1.5 // percentage points
	for _, w := range YCSBWorkloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			if !w.Mix.Valid() {
				t.Fatalf("workload %s mix %+v invalid", w.Name, w.Mix)
			}
			r := rng.New(0xcafe + uint64(w.Name[0]))
			var counts [6]int
			for i := 0; i < draws; i++ {
				counts[w.Mix.NextStore(r)]++
			}
			check := func(class StoreOp, name string, wantPct int) {
				got := 100 * float64(counts[class]) / draws
				if math.Abs(got-float64(wantPct)) > tolerance {
					t.Errorf("%s: %s frequency %.2f%%, want %d%% ± %v",
						w.Name, name, got, wantPct, tolerance)
				}
			}
			check(StoreGet, "get", w.Mix.GetPct)
			check(StorePut, "put", w.Mix.PutPct)
			check(StoreMGet, "mget", w.Mix.MGetPct)
			check(StoreScan, "scan", w.Mix.ScanPct)
			check(StoreDelete, "delete", w.Mix.DeletePct)
			check(StoreRMW, "rmw", w.Mix.RMWPct)
		})
	}
}

func TestParseYCSB(t *testing.T) {
	for _, name := range []string{"A", "b", " C ", "d", "E", "f"} {
		w, err := ParseYCSB(name)
		if err != nil {
			t.Errorf("ParseYCSB(%q): %v", name, err)
			continue
		}
		if !w.Mix.Valid() {
			t.Errorf("workload %s: invalid mix %+v", w.Name, w.Mix)
		}
	}
	if _, err := ParseYCSB("G"); err == nil {
		t.Error("ParseYCSB(G) succeeded, want error")
	}
	if _, err := ParseYCSB(""); err == nil {
		t.Error("ParseYCSB(empty) succeeded, want error")
	}
	if d, _ := ParseYCSB("D"); d.Dist != Latest {
		t.Errorf("workload D distribution = %v, want latest", d.Dist)
	}
	if e, _ := ParseYCSB("E"); !e.Ordered() {
		t.Error("workload E not marked Ordered despite scans")
	}
	if a, _ := ParseYCSB("A"); a.Ordered() {
		t.Error("workload A marked Ordered without scans")
	}
}

func TestParseDistLatest(t *testing.T) {
	d, err := ParseDist("latest")
	if err != nil || d != Latest {
		t.Fatalf("ParseDist(latest) = %v, %v", d, err)
	}
	if d.String() != "latest" {
		t.Errorf("Latest.String() = %q", d.String())
	}
	if _, err := ParseDist("pareto"); err == nil {
		t.Error("ParseDist(pareto) succeeded")
	}
}

// TestLatestSampler pins the read-latest shape: reads cluster just
// behind the insert frontier, and NextInsert walks the frontier
// forward so reads chase the writers.
func TestLatestSampler(t *testing.T) {
	const n = 10_000
	s, err := NewSampler(7, n, Latest, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Frontier(); got != n/2 {
		t.Fatalf("initial frontier = %d, want %d", got, n/2)
	}
	// Reads: most draws must land within 100 ranks behind the frontier
	// (zipf 0.99 concentrates far harder than that).
	recent := 0
	const draws = 20_000
	for i := 0; i < draws; i++ {
		k := s.Next()
		if k < 0 || k >= n {
			t.Fatalf("draw %d out of range [0,%d)", k, n)
		}
		if d := s.Frontier() - 1 - k; d >= 0 && d < 100 {
			recent++
		}
	}
	if frac := float64(recent) / draws; frac < 0.5 {
		t.Errorf("only %.2f of reads within 100 ranks of the frontier, want latest-skewed (>0.5)", frac)
	}
	// Inserts: sequential frontier ranks, then reads chase them.
	start := s.Frontier()
	for i := int64(0); i < 50; i++ {
		if k := s.NextInsert(); k != start+i {
			t.Fatalf("NextInsert #%d = %d, want %d", i, k, start+i)
		}
	}
	if got := s.Frontier(); got != start+50 {
		t.Fatalf("frontier after 50 inserts = %d, want %d", got, start+50)
	}
	// Wrap-around: frontier recycles at n.
	w, err := NewSampler(9, 4, Latest, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for i := 0; i < 8; i++ {
		k := w.NextInsert()
		if k < 0 || k >= 4 {
			t.Fatalf("wrapped insert rank %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) != 4 {
		t.Errorf("insert frontier covered %d of 4 ranks over a full wrap", len(seen))
	}
}

// TestNextInsertTransparentForOldDists pins that NextInsert is exactly
// Next for uniform and zipf samplers, so workers can call it
// unconditionally for puts without changing any pre-existing key
// stream.
func TestNextInsertTransparentForOldDists(t *testing.T) {
	for _, dist := range []Dist{Uniform, Zipf} {
		a, err := NewSampler(42, 4096, dist, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewSampler(42, 4096, dist, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			if x, y := a.Next(), b.NextInsert(); x != y {
				t.Fatalf("dist %v draw %d: Next=%d NextInsert=%d", dist, i, x, y)
			}
		}
	}
}
