package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// TraceOp is one recorded store operation in a replayable trace.
type TraceOp struct {
	// Op is the operation kind: StoreGet, StorePut, StoreDelete,
	// StoreScan or StoreRMW (StoreMGet has no single-key line form).
	Op StoreOp
	// Key is the store key.
	Key string
	// Size is op-specific: payload bytes for put/rmw (0 = harness
	// default), scan span for scan (0 = harness default). Ignored for
	// get/delete.
	Size int
	// Offset is the op's timestamp relative to trace start. Replay
	// honours it only in paced mode; otherwise ops fire back-to-back.
	Offset time.Duration
}

// traceOps maps the text form to the op kind.
var traceOps = map[string]StoreOp{
	"get":    StoreGet,
	"put":    StorePut,
	"set":    StorePut, // memcached spelling
	"delete": StoreDelete,
	"del":    StoreDelete,
	"scan":   StoreScan,
	"rmw":    StoreRMW,
}

// ParseTrace reads a timestamped op trace: one op per line in the form
//
//	op,key,size,offset_us
//
// where op is get|put|set|delete|del|scan|rmw, size is the put/rmw
// payload length or scan span in bytes/pairs (0 = use the replaying
// harness's default), and offset_us is the op's microsecond offset
// from trace start. Blank lines and lines starting with '#' are
// skipped. Malformed lines return an error naming the line number;
// ParseTrace never panics on hostile input (see FuzzParseTrace).
func ParseTrace(r io.Reader) ([]TraceOp, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var ops []TraceOp
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("workload: trace line %d: want op,key,size,offset_us, got %d field(s)", line, len(fields))
		}
		op, ok := traceOps[strings.ToLower(strings.TrimSpace(fields[0]))]
		if !ok {
			return nil, fmt.Errorf("workload: trace line %d: unknown op %q (want get, put, delete, scan or rmw)", line, fields[0])
		}
		key := strings.TrimSpace(fields[1])
		if key == "" {
			return nil, fmt.Errorf("workload: trace line %d: empty key", line)
		}
		size, err := strconv.Atoi(strings.TrimSpace(fields[2]))
		if err != nil || size < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad size %q", line, fields[2])
		}
		offUS, err := strconv.ParseInt(strings.TrimSpace(fields[3]), 10, 64)
		if err != nil || offUS < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad offset_us %q", line, fields[3])
		}
		ops = append(ops, TraceOp{Op: op, Key: key, Size: size, Offset: time.Duration(offUS) * time.Microsecond})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: trace read: %w", err)
	}
	return ops, nil
}

// AppendTrace renders ops back into the ParseTrace line format —
// useful for generating sample traces and for round-trip tests.
func AppendTrace(buf []byte, ops []TraceOp) []byte {
	for _, op := range ops {
		name := "get"
		switch op.Op {
		case StorePut:
			name = "put"
		case StoreDelete:
			name = "delete"
		case StoreScan:
			name = "scan"
		case StoreRMW:
			name = "rmw"
		}
		buf = append(buf, name...)
		buf = append(buf, ',')
		buf = append(buf, op.Key...)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(op.Size), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, op.Offset.Microseconds(), 10)
		buf = append(buf, '\n')
	}
	return buf
}

// TraceKeys returns the distinct keys appearing in ops, in first-seen
// order — the load set a replay prefills so reads hit.
func TraceKeys(ops []TraceOp) []string {
	seen := make(map[string]struct{}, len(ops))
	var keys []string
	for _, op := range ops {
		if _, ok := seen[op.Key]; !ok {
			seen[op.Key] = struct{}{}
			keys = append(keys, op.Key)
		}
	}
	return keys
}
