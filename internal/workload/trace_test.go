package workload

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

const sampleTrace = `# sample trace: comments and blank lines are skipped
put,user1,64,0
put,user2,128,50

get,user1,0,100
SET,user3,32,150
rmw,user2,64,200
scan,user1,16,250
del,user3,0,300
get , user2 , 0 , 350
`

func TestParseTraceBasic(t *testing.T) {
	ops, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	want := []TraceOp{
		{StorePut, "user1", 64, 0},
		{StorePut, "user2", 128, 50 * time.Microsecond},
		{StoreGet, "user1", 0, 100 * time.Microsecond},
		{StorePut, "user3", 32, 150 * time.Microsecond},
		{StoreRMW, "user2", 64, 200 * time.Microsecond},
		{StoreScan, "user1", 16, 250 * time.Microsecond},
		{StoreDelete, "user3", 0, 300 * time.Microsecond},
		{StoreGet, "user2", 0, 350 * time.Microsecond},
	}
	if !reflect.DeepEqual(ops, want) {
		t.Fatalf("ParseTrace =\n%+v\nwant\n%+v", ops, want)
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []struct {
		name, line string
	}{
		{"too few fields", "get,user1,0"},
		{"too many fields", "get,user1,0,0,0"},
		{"unknown op", "frob,user1,0,0"},
		{"empty key", "get,,0,0"},
		{"bad size", "put,user1,big,0"},
		{"negative size", "put,user1,-8,0"},
		{"bad offset", "get,user1,0,soon"},
		{"negative offset", "get,user1,0,-5"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			input := "put,ok,16,0\n" + c.line + "\n"
			if _, err := ParseTrace(strings.NewReader(input)); err == nil {
				t.Fatalf("line %q parsed without error", c.line)
			} else if !strings.Contains(err.Error(), "line 2") {
				t.Errorf("error %q does not name line 2", err)
			}
		})
	}
}

// TestParseTraceDeterministic: the same bytes parse to the same ops —
// the workload-level half of trace-replay determinism (the harness
// half lives in internal/harness).
func TestParseTraceDeterministic(t *testing.T) {
	a, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two parses of the same trace differ")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	ops, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(strings.NewReader(string(AppendTrace(nil, ops))))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ops, back) {
		t.Fatalf("round trip drifted:\n%+v\nwant\n%+v", back, ops)
	}
}

func TestTraceKeys(t *testing.T) {
	ops, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	got := TraceKeys(ops)
	want := []string{"user1", "user2", "user3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TraceKeys = %v, want %v", got, want)
	}
}

// FuzzParseTrace: hostile input must error or parse — never panic.
func FuzzParseTrace(f *testing.F) {
	f.Add(sampleTrace)
	f.Add("")
	f.Add("get,user1,0")
	f.Add("frob,user1,0,0")
	f.Add("get,,0,0")
	f.Add("put,k,99999999999999999999,0")
	f.Add("get,k,0,-1\nput,k,16,0")
	f.Add("#only a comment\n\n\n")
	f.Add("get,k,0,0,")
	f.Add(strings.Repeat("x", 4096))
	f.Add("put,\x00\xff,8,1")
	f.Fuzz(func(t *testing.T, input string) {
		ops, err := ParseTrace(strings.NewReader(input))
		if err != nil && ops != nil {
			t.Fatal("non-nil ops alongside error")
		}
		for _, op := range ops {
			if op.Key == "" || op.Size < 0 || op.Offset < 0 {
				t.Fatalf("invalid op passed validation: %+v", op)
			}
		}
	})
}
