package report

import "math/bits"

// Histogram is an HDR-style fixed-bucket latency histogram for
// nanosecond durations. Buckets are laid out as power-of-two groups of
// histSub linear sub-buckets, so the relative bucket width — and hence
// the worst-case quantile error — is bounded by 1/histSub (6.25%) at
// every magnitude from 1ns to ~2.4h. Record is a few shifts plus one
// array increment: no allocation, no locks, safe for one writer on the
// benchmark hot path. Per-thread histograms are combined with Merge
// after the run.
//
// The zero value is an empty, ready-to-use histogram.
type Histogram struct {
	counts [histBuckets]uint64
	total  uint64
	max    int64
}

const (
	// histSubBits sets the linear resolution within each power-of-two
	// group: 2^histSubBits sub-buckets per octave.
	histSubBits = 4
	histSub     = 1 << histSubBits
	// histGroups covers values up to ~2^43 ns (about 2.4 hours) — far
	// past any scan this harness times; larger values clamp into the
	// top bucket (Max still reports them exactly).
	histGroups  = 40
	histBuckets = histGroups * histSub
)

// bucketIndex maps a value to its bucket. Values below histSub map one
// to one (exact); a value with its most significant bit at position m
// (m >= histSubBits) lands in group m-histSubBits+1, sub-bucket given
// by the histSubBits bits below the MSB.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSub {
		return int(v)
	}
	shift := bits.Len64(uint64(v)) - 1 - histSubBits
	idx := (shift+1)*histSub + int(uint64(v)>>uint(shift)) - histSub
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketLow returns the smallest value mapping to bucket idx. The
// half-open value range of bucket idx is [bucketLow(idx),
// bucketLow(idx+1)).
func bucketLow(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	shift := idx/histSub - 1
	return int64(histSub+idx%histSub) << uint(shift)
}

// Record adds one observation (a duration in nanoseconds).
func (h *Histogram) Record(v int64) {
	h.counts[bucketIndex(v)]++
	h.total++
	if v > h.max {
		h.max = v
	}
}

// Merge folds o's observations into h (combining per-thread histograms;
// neither histogram may be concurrently written during the call).
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	if o.max > h.max {
		h.max = o.max
	}
}

// MergeAll returns a fresh histogram holding the union of hs,
// skipping nil entries. It returns nil when every input is nil, so a
// metric that was never recorded stays absent after aggregation. This
// is the one merge path for every per-worker histogram the harness
// collects (scan latency, per-op-class latency).
func MergeAll(hs ...*Histogram) *Histogram {
	var out *Histogram
	for _, h := range hs {
		if h == nil {
			continue
		}
		if out == nil {
			out = new(Histogram)
		}
		out.Merge(h)
	}
	return out
}

// Sub returns the difference h - o: the observations recorded between
// snapshot o and snapshot h of the same histogram. o must be an earlier
// snapshot (per-bucket counts in h ≥ those in o); a bucket that would
// go negative is clamped to zero, so slightly-torn concurrent snapshots
// degrade to an undercount instead of garbage. This is how interval
// samplers report per-window latency percentiles from cumulative
// histograms: window = now.Sub(&prev).
//
// The exact maximum of the window is not recoverable from bucket
// counts; Sub reports h's max when it falls inside the window's highest
// occupied bucket (the window necessarily contains it), and that
// bucket's upper bound otherwise — within the same 1/histSub relative
// error as every quantile.
func (h *Histogram) Sub(o *Histogram) Histogram {
	var d Histogram
	for i := range h.counts {
		if h.counts[i] > o.counts[i] {
			d.counts[i] = h.counts[i] - o.counts[i]
			d.total += d.counts[i]
		}
	}
	for i := histBuckets - 1; i >= 0; i-- {
		if d.counts[i] == 0 {
			continue
		}
		if hi := bucketLow(i+1) - 1; h.max >= bucketLow(i) && h.max <= hi {
			d.max = h.max
		} else {
			d.max = hi
		}
		break
	}
	return d
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Max returns the largest recorded value exactly (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns the value at quantile q in [0, 1], linearly
// interpolated within the containing bucket (so Quantile(0.5) on
// {1, 3} reports 2-ish rather than snapping to an observation). The
// result is clamped to Max; an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.total)
	cum := 0.0
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo, width := bucketLow(i), float64(bucketLow(i+1)-bucketLow(i))
			frac := (rank - cum) / float64(c)
			v := float64(lo) + width*frac
			if v > float64(h.max) {
				v = float64(h.max)
			}
			return v
		}
		cum = next
	}
	return float64(h.max)
}
