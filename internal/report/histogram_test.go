package report

import (
	"math"
	"testing"
)

// TestBucketBoundaries pins the index function to its contract: values
// below histSub are exact; above, buckets are power-of-two groups of
// histSub linear sub-buckets; bucketLow/bucketIndex are inverse at
// every boundary.
func TestBucketBoundaries(t *testing.T) {
	// Exact region.
	for v := int64(0); v < histSub; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want exact", v, got)
		}
	}
	// First grouped bucket starts exactly at histSub with width 1.
	if got := bucketIndex(histSub); got != histSub {
		t.Fatalf("bucketIndex(histSub) = %d, want %d", got, histSub)
	}
	// Every bucket's low bound must map back to that bucket, and the
	// value one below must map to the previous bucket.
	for idx := 1; idx < histBuckets; idx++ {
		lo := bucketLow(idx)
		if got := bucketIndex(lo); got != idx {
			t.Fatalf("bucketIndex(bucketLow(%d)=%d) = %d", idx, lo, got)
		}
		if got := bucketIndex(lo - 1); got != idx-1 {
			t.Fatalf("bucketIndex(%d) = %d, want %d", lo-1, got, idx-1)
		}
	}
	// Doubling the value past the linear region advances exactly one
	// group (histSub buckets).
	for _, v := range []int64{64, 1024, 1 << 20, 1 << 30} {
		if got, want := bucketIndex(2*v), bucketIndex(v)+histSub; got != want {
			t.Fatalf("bucketIndex(%d) = %d, want %d", 2*v, got, want)
		}
	}
	// Relative bucket width is bounded by 1/histSub everywhere.
	for idx := histSub; idx < histBuckets-1; idx++ {
		lo, hi := bucketLow(idx), bucketLow(idx+1)
		if float64(hi-lo)/float64(lo) > 1.0/histSub+1e-9 {
			t.Fatalf("bucket %d: width %d at magnitude %d exceeds 1/%d relative error", idx, hi-lo, lo, histSub)
		}
	}
	// Negative and huge values clamp instead of panicking.
	if got := bucketIndex(-5); got != 0 {
		t.Fatalf("bucketIndex(-5) = %d, want 0", got)
	}
	if got := bucketIndex(math.MaxInt64); got != histBuckets-1 {
		t.Fatalf("bucketIndex(MaxInt64) = %d, want top bucket %d", got, histBuckets-1)
	}
}

// TestQuantileInterpolation checks the quantile math on distributions
// with known answers.
func TestQuantileInterpolation(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram Quantile = %v, want 0", got)
	}

	// Uniform 1..1000: quantiles must track q*1000 within bucket error
	// (6.25%) everywhere.
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("Max = %d, want 1000", h.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got, want := h.Quantile(q), q*1000
		if math.Abs(got-want) > want/histSub+1 {
			t.Fatalf("uniform Quantile(%v) = %v, want %v ± %v", q, got, want, want/histSub+1)
		}
	}
	if got := h.Quantile(1); got != 1000 {
		t.Fatalf("Quantile(1) = %v, want exact max 1000", got)
	}
	// Out-of-range q clamps.
	if got := h.Quantile(2); got != 1000 {
		t.Fatalf("Quantile(2) = %v, want 1000", got)
	}
	if got := h.Quantile(-1); got > 2 {
		t.Fatalf("Quantile(-1) = %v, want ~min", got)
	}

	// Interpolation within one bucket: two observations in exact
	// (width-1) buckets snap to their values; the median of {2, 4}
	// falls between them.
	var h2 Histogram
	h2.Record(2)
	h2.Record(4)
	if got := h2.Quantile(0.5); got < 2 || got > 4 {
		t.Fatalf("Quantile(0.5) of {2,4} = %v, want within [2,4]", got)
	}
	if got := h2.Quantile(1); got != 4 {
		t.Fatalf("Quantile(1) of {2,4} = %v, want 4", got)
	}

	// A spike distribution: 99 fast ops at 100ns, 1 slow at ~1ms. p50
	// must sit at the spike, p995+ at the tail.
	var h3 Histogram
	for i := 0; i < 99; i++ {
		h3.Record(100)
	}
	h3.Record(1_000_000)
	if got := h3.Quantile(0.5); math.Abs(got-100) > 100.0/histSub+1 {
		t.Fatalf("spike Quantile(0.5) = %v, want ~100", got)
	}
	if got := h3.Quantile(0.995); got < 900_000 {
		t.Fatalf("spike Quantile(0.995) = %v, want ~1e6", got)
	}
}

// TestHistogramMerge: merging per-thread histograms must be equivalent
// to recording everything into one.
func TestHistogramMerge(t *testing.T) {
	var whole, part1, part2 Histogram
	for v := int64(1); v <= 3000; v++ {
		whole.Record(v)
		if v%2 == 0 {
			part1.Record(v)
		} else {
			part2.Record(v)
		}
	}
	var merged Histogram
	merged.Merge(&part1)
	merged.Merge(&part2)
	if merged.Count() != whole.Count() {
		t.Fatalf("merged Count = %d, want %d", merged.Count(), whole.Count())
	}
	if merged.Max() != whole.Max() {
		t.Fatalf("merged Max = %d, want %d", merged.Max(), whole.Max())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got, want := merged.Quantile(q), whole.Quantile(q); got != want {
			t.Fatalf("merged Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if merged.counts != whole.counts {
		t.Fatal("merged bucket counts differ from whole-history counts")
	}
	// Merging an empty histogram is a no-op.
	var empty Histogram
	before := merged.Count()
	merged.Merge(&empty)
	if merged.Count() != before {
		t.Fatal("merging an empty histogram changed the count")
	}
}

func TestMergeAll(t *testing.T) {
	if got := MergeAll(nil, nil); got != nil {
		t.Fatal("MergeAll of all-nil inputs must be nil")
	}
	a, b := new(Histogram), new(Histogram)
	a.Record(10)
	a.Record(20)
	b.Record(30)
	m := MergeAll(a, nil, b)
	if m == nil || m.Count() != 3 {
		t.Fatalf("MergeAll count = %v, want 3", m.Count())
	}
	if m.Max() != 30 {
		t.Fatalf("MergeAll max = %d, want 30", m.Max())
	}
	// Inputs must be untouched and the result independent.
	if a.Count() != 2 || b.Count() != 1 {
		t.Fatal("MergeAll mutated its inputs")
	}
	m.Record(40)
	if a.Max() == 40 || b.Max() == 40 {
		t.Fatal("MergeAll result aliases an input")
	}
}
