package report

import (
	"math"
	"testing"
)

// TestBucketBoundaries pins the index function to its contract: values
// below histSub are exact; above, buckets are power-of-two groups of
// histSub linear sub-buckets; bucketLow/bucketIndex are inverse at
// every boundary.
func TestBucketBoundaries(t *testing.T) {
	// Exact region.
	for v := int64(0); v < histSub; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want exact", v, got)
		}
	}
	// First grouped bucket starts exactly at histSub with width 1.
	if got := bucketIndex(histSub); got != histSub {
		t.Fatalf("bucketIndex(histSub) = %d, want %d", got, histSub)
	}
	// Every bucket's low bound must map back to that bucket, and the
	// value one below must map to the previous bucket.
	for idx := 1; idx < histBuckets; idx++ {
		lo := bucketLow(idx)
		if got := bucketIndex(lo); got != idx {
			t.Fatalf("bucketIndex(bucketLow(%d)=%d) = %d", idx, lo, got)
		}
		if got := bucketIndex(lo - 1); got != idx-1 {
			t.Fatalf("bucketIndex(%d) = %d, want %d", lo-1, got, idx-1)
		}
	}
	// Doubling the value past the linear region advances exactly one
	// group (histSub buckets).
	for _, v := range []int64{64, 1024, 1 << 20, 1 << 30} {
		if got, want := bucketIndex(2*v), bucketIndex(v)+histSub; got != want {
			t.Fatalf("bucketIndex(%d) = %d, want %d", 2*v, got, want)
		}
	}
	// Relative bucket width is bounded by 1/histSub everywhere.
	for idx := histSub; idx < histBuckets-1; idx++ {
		lo, hi := bucketLow(idx), bucketLow(idx+1)
		if float64(hi-lo)/float64(lo) > 1.0/histSub+1e-9 {
			t.Fatalf("bucket %d: width %d at magnitude %d exceeds 1/%d relative error", idx, hi-lo, lo, histSub)
		}
	}
	// Negative and huge values clamp instead of panicking.
	if got := bucketIndex(-5); got != 0 {
		t.Fatalf("bucketIndex(-5) = %d, want 0", got)
	}
	if got := bucketIndex(math.MaxInt64); got != histBuckets-1 {
		t.Fatalf("bucketIndex(MaxInt64) = %d, want top bucket %d", got, histBuckets-1)
	}
}

// TestQuantileInterpolation checks the quantile math on distributions
// with known answers.
func TestQuantileInterpolation(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram Quantile = %v, want 0", got)
	}

	// Uniform 1..1000: quantiles must track q*1000 within bucket error
	// (6.25%) everywhere.
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("Max = %d, want 1000", h.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got, want := h.Quantile(q), q*1000
		if math.Abs(got-want) > want/histSub+1 {
			t.Fatalf("uniform Quantile(%v) = %v, want %v ± %v", q, got, want, want/histSub+1)
		}
	}
	if got := h.Quantile(1); got != 1000 {
		t.Fatalf("Quantile(1) = %v, want exact max 1000", got)
	}
	// Out-of-range q clamps.
	if got := h.Quantile(2); got != 1000 {
		t.Fatalf("Quantile(2) = %v, want 1000", got)
	}
	if got := h.Quantile(-1); got > 2 {
		t.Fatalf("Quantile(-1) = %v, want ~min", got)
	}

	// Interpolation within one bucket: two observations in exact
	// (width-1) buckets snap to their values; the median of {2, 4}
	// falls between them.
	var h2 Histogram
	h2.Record(2)
	h2.Record(4)
	if got := h2.Quantile(0.5); got < 2 || got > 4 {
		t.Fatalf("Quantile(0.5) of {2,4} = %v, want within [2,4]", got)
	}
	if got := h2.Quantile(1); got != 4 {
		t.Fatalf("Quantile(1) of {2,4} = %v, want 4", got)
	}

	// A spike distribution: 99 fast ops at 100ns, 1 slow at ~1ms. p50
	// must sit at the spike, p995+ at the tail.
	var h3 Histogram
	for i := 0; i < 99; i++ {
		h3.Record(100)
	}
	h3.Record(1_000_000)
	if got := h3.Quantile(0.5); math.Abs(got-100) > 100.0/histSub+1 {
		t.Fatalf("spike Quantile(0.5) = %v, want ~100", got)
	}
	if got := h3.Quantile(0.995); got < 900_000 {
		t.Fatalf("spike Quantile(0.995) = %v, want ~1e6", got)
	}
}

// TestHistogramMerge: merging per-thread histograms must be equivalent
// to recording everything into one.
func TestHistogramMerge(t *testing.T) {
	var whole, part1, part2 Histogram
	for v := int64(1); v <= 3000; v++ {
		whole.Record(v)
		if v%2 == 0 {
			part1.Record(v)
		} else {
			part2.Record(v)
		}
	}
	var merged Histogram
	merged.Merge(&part1)
	merged.Merge(&part2)
	if merged.Count() != whole.Count() {
		t.Fatalf("merged Count = %d, want %d", merged.Count(), whole.Count())
	}
	if merged.Max() != whole.Max() {
		t.Fatalf("merged Max = %d, want %d", merged.Max(), whole.Max())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got, want := merged.Quantile(q), whole.Quantile(q); got != want {
			t.Fatalf("merged Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if merged.counts != whole.counts {
		t.Fatal("merged bucket counts differ from whole-history counts")
	}
	// Merging an empty histogram is a no-op.
	var empty Histogram
	before := merged.Count()
	merged.Merge(&empty)
	if merged.Count() != before {
		t.Fatal("merging an empty histogram changed the count")
	}
}

// TestHistogramSub: Sub of an earlier snapshot must recover exactly the
// observations recorded between the snapshots, and Merge must invert it
// (the merge/delta round trip interval samplers rely on).
func TestHistogramSub(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 500; v++ {
		h.Record(v)
	}
	snap := h // first snapshot
	for v := int64(2000); v <= 2300; v++ {
		h.Record(v)
	}
	d := h.Sub(&snap)
	if d.Count() != 301 {
		t.Fatalf("window Count = %d, want 301", d.Count())
	}
	// The window's counts must be bucket-identical to recording the
	// window's observations alone.
	var want Histogram
	for v := int64(2000); v <= 2300; v++ {
		want.Record(v)
	}
	if d.counts != want.counts {
		t.Fatal("window bucket counts differ from a fresh recording of the window")
	}
	// h.max (2300) falls in the window's highest occupied bucket, so the
	// window max is exact.
	if d.Max() != 2300 {
		t.Fatalf("window Max = %d, want exact 2300", d.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.99} {
		if got, w := d.Quantile(q), want.Quantile(q); got != w {
			t.Fatalf("window Quantile(%v) = %v, want %v", q, got, w)
		}
	}
	// Round trip: snapshot + window == whole history.
	rt := snap
	rt.Merge(&d)
	if rt.counts != h.counts || rt.Count() != h.Count() || rt.Max() != h.Max() {
		t.Fatal("snap.Merge(h.Sub(snap)) does not reproduce h")
	}
	// Empty window: no observations between identical snapshots.
	e := h.Sub(&h)
	if e.Count() != 0 || e.Max() != 0 {
		t.Fatalf("self-Sub = count %d max %d, want empty", e.Count(), e.Max())
	}
	// A window whose observations all precede the history max: the max
	// is bounded by the highest occupied bucket, not h's max.
	var h2 Histogram
	h2.Record(1 << 20) // old tail
	snap2 := h2
	h2.Record(100)
	d2 := h2.Sub(&snap2)
	if d2.Count() != 1 {
		t.Fatalf("window Count = %d, want 1", d2.Count())
	}
	if d2.Max() < 100 || d2.Max() >= 1<<20 {
		t.Fatalf("window Max = %d, want ~100 (bucket upper bound), not the stale history max", d2.Max())
	}
}

// TestAtomicHistogram: concurrent Records must all land, and interval
// snapshots must telescope (Sub of successive snapshots sums to the
// final snapshot).
func TestAtomicHistogram(t *testing.T) {
	var ah AtomicHistogram
	const writers, per = 8, 10000
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				ah.Record(int64(w*per + i))
			}
		}(w)
	}
	for w := 0; w < writers; w++ {
		<-done
	}
	snap := ah.Snapshot()
	if snap.Count() != writers*per {
		t.Fatalf("Count = %d, want %d", snap.Count(), writers*per)
	}
	if snap.Max() != writers*per-1 {
		t.Fatalf("Max = %d, want %d", snap.Max(), writers*per-1)
	}
	if ah.Count() != writers*per {
		t.Fatalf("AtomicHistogram.Count = %d, want %d", ah.Count(), writers*per)
	}
	// Interval telescoping: base + Σ windows == final.
	var ah2 AtomicHistogram
	base := ah2.Snapshot()
	acc := base
	for round := 0; round < 5; round++ {
		prev := ah2.Snapshot()
		for i := 0; i < 100; i++ {
			ah2.Record(int64(round*1000 + i))
		}
		cur := ah2.Snapshot()
		w := cur.Sub(&prev)
		if w.Count() != 100 {
			t.Fatalf("round %d window Count = %d, want 100", round, w.Count())
		}
		acc.Merge(&w)
	}
	if fin := ah2.Snapshot(); acc.counts != fin.counts || acc.Count() != fin.Count() {
		t.Fatal("base + Σ interval windows does not telescope to the final snapshot")
	}
}

func TestMergeAll(t *testing.T) {
	if got := MergeAll(nil, nil); got != nil {
		t.Fatal("MergeAll of all-nil inputs must be nil")
	}
	a, b := new(Histogram), new(Histogram)
	a.Record(10)
	a.Record(20)
	b.Record(30)
	m := MergeAll(a, nil, b)
	if m == nil || m.Count() != 3 {
		t.Fatalf("MergeAll count = %v, want 3", m.Count())
	}
	if m.Max() != 30 {
		t.Fatalf("MergeAll max = %d, want 30", m.Max())
	}
	// Inputs must be untouched and the result independent.
	if a.Count() != 2 || b.Count() != 1 {
		t.Fatal("MergeAll mutated its inputs")
	}
	m.Record(40)
	if a.Max() == 40 || b.Max() == 40 {
		t.Fatal("MergeAll result aliases an input")
	}
}
