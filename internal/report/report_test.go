package report_test

import (
	"strings"
	"testing"

	"pop/internal/report"
)

func sample() report.Series {
	s := report.Series{
		Title:  "demo — throughput (ops/s)",
		XLabel: "threads",
		Names:  []string{"HP", "HazardPtrPOP"},
	}
	s.AddRow("1", []float64{1_500_000, 3_000_000})
	s.AddRow("2", []float64{2_200_000, 6_100_000})
	return s
}

func TestWriteTSV(t *testing.T) {
	var sb strings.Builder
	s := sample()
	if err := s.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("TSV has %d lines, want 4:\n%s", len(lines), out)
	}
	if lines[1] != "threads\tHP\tHazardPtrPOP" {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[0], "# demo") {
		t.Fatalf("title comment = %q", lines[0])
	}
	if !strings.Contains(lines[2], "1.50M") {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	s := sample()
	s.Names[0] = `HP, "classic"` // force quoting
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want 4:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "# demo") {
		t.Fatalf("title comment = %q", lines[0])
	}
	if lines[1] != `threads,"HP, ""classic""",HazardPtrPOP` {
		t.Fatalf("header = %q", lines[1])
	}
	// CSV carries full precision, not the humanized table format.
	if lines[2] != "1,1.5e+06,3e+06" {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestWriteTableAligned(t *testing.T) {
	var sb strings.Builder
	s := sample()
	if err := s.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(sb.String(), "\n")
	// Header + 2 rows share column starts: find "HP" column offset in
	// the header and check a row cell begins at the same offset.
	header := lines[1]
	col := strings.Index(header, "HP")
	if col < 0 {
		t.Fatalf("no HP column in %q", header)
	}
	for _, row := range lines[2:4] {
		if len(row) <= col || row[col] == ' ' {
			t.Fatalf("misaligned row %q (col %d)", row, col)
		}
	}
}

func TestAddRowArityPanics(t *testing.T) {
	s := sample()
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row width did not panic")
		}
	}()
	s.AddRow("3", []float64{1})
}

func TestValueFormatting(t *testing.T) {
	var sb strings.Builder
	s := report.Series{Title: "fmt", XLabel: "x", Names: []string{"a", "b", "c", "d"}}
	s.AddRow("r", []float64{2_500_000_000, 42, 0.125, 33_000})
	if err := s.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"2.50G", "42", "0.125", "33.0K"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
