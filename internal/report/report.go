// Package report formats benchmark sweeps as the series the paper's
// figures plot: one row per x-value (thread count, structure size), one
// column per reclamation scheme. Output is aligned text for terminals,
// or TSV/CSV for plotting tools and spreadsheets. The package also
// provides the HDR-style latency Histogram the harness uses for
// per-scan tail-latency accounting (see histogram.go).
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Series is one plot: a titled table of float values.
type Series struct {
	Title  string   // e.g. "Fig 1a: DGT 200K update-heavy — throughput (ops/s)"
	XLabel string   // e.g. "threads"
	Names  []string // column (scheme) names, plot order
	Rows   []Row
}

// Row is one x position.
type Row struct {
	X     string
	Cells []float64
}

// AddRow appends a row; len(cells) must equal len(Names).
func (s *Series) AddRow(x string, cells []float64) {
	if len(cells) != len(s.Names) {
		panic(fmt.Sprintf("report: row has %d cells, series has %d names", len(cells), len(s.Names)))
	}
	s.Rows = append(s.Rows, Row{X: x, Cells: cells})
}

// WriteTSV emits a tab-separated table with a header row.
func (s *Series) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", s.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s\t%s\n", s.XLabel, strings.Join(s.Names, "\t")); err != nil {
		return err
	}
	for _, r := range s.Rows {
		cells := make([]string, len(r.Cells))
		for i, v := range r.Cells {
			cells[i] = formatVal(v)
		}
		if _, err := fmt.Fprintf(w, "%s\t%s\n", r.X, strings.Join(cells, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits an RFC-4180 comma-separated table. The series title
// travels in a leading `# title` comment line (matching WriteTSV) so
// several series can share one stream.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", s.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{s.XLabel}, s.Names...)); err != nil {
		return err
	}
	row := make([]string, 0, len(s.Names)+1)
	for _, r := range s.Rows {
		row = append(row[:0], r.X)
		for _, v := range r.Cells {
			// Full precision, not the humanized table format: CSV is for
			// machines.
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable emits an aligned human-readable table.
func (s *Series) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n", s.Title); err != nil {
		return err
	}
	widths := make([]int, len(s.Names)+1)
	widths[0] = len(s.XLabel)
	for _, r := range s.Rows {
		if len(r.X) > widths[0] {
			widths[0] = len(r.X)
		}
	}
	cellStrs := make([][]string, len(s.Rows))
	for i, n := range s.Names {
		widths[i+1] = len(n)
	}
	for ri, r := range s.Rows {
		cellStrs[ri] = make([]string, len(r.Cells))
		for ci, v := range r.Cells {
			str := formatVal(v)
			cellStrs[ri][ci] = str
			if len(str) > widths[ci+1] {
				widths[ci+1] = len(str)
			}
		}
	}
	// Header.
	cols := make([]string, len(s.Names)+1)
	cols[0] = pad(s.XLabel, widths[0])
	for i, n := range s.Names {
		cols[i+1] = pad(n, widths[i+1])
	}
	if _, err := fmt.Fprintf(w, "  %s\n", strings.Join(cols, "  ")); err != nil {
		return err
	}
	for ri, r := range s.Rows {
		cols[0] = pad(r.X, widths[0])
		for ci := range r.Cells {
			cols[ci+1] = pad(cellStrs[ri][ci], widths[ci+1])
		}
		if _, err := fmt.Fprintf(w, "  %s\n", strings.Join(cols, "  ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// formatVal renders large values compactly (12.3M) and small exactly.
func formatVal(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fK", v/1e3)
	case v == float64(int64(v)):
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
