package report

import "sync/atomic"

// AtomicHistogram is the concurrent-writer variant of Histogram, with
// identical bucket geometry. Record is one atomic add per observation
// plus a CAS loop for the max, so many threads can record into one
// shared instance (the reclamation trace sites: any thread's pass may
// record into its domain's histogram). Snapshot produces a plain
// Histogram for quantiles and deltas.
//
// The zero value is an empty, ready-to-use histogram.
type AtomicHistogram struct {
	counts [histBuckets]atomic.Uint64
	max    atomic.Int64
}

// Record adds one observation (a duration in nanoseconds).
func (h *AtomicHistogram) Record(v int64) {
	h.counts[bucketIndex(v)].Add(1)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Snapshot returns the recorded distribution as a plain Histogram.
// Concurrent Records may straddle the snapshot; each bucket is read
// atomically and buckets only grow, so successive snapshots are
// per-bucket monotone — exactly what Histogram.Sub needs for interval
// windows. The total is recomputed from the bucket reads so it is
// internally consistent with them.
func (h *AtomicHistogram) Snapshot() Histogram {
	var out Histogram
	for i := range h.counts {
		c := h.counts[i].Load()
		out.counts[i] = c
		out.total += c
	}
	out.max = h.max.Load()
	return out
}

// Count returns the number of recorded observations (approximate while
// writers are active, like every concurrent counter read).
func (h *AtomicHistogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}
