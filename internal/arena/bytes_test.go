package arena

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestBytesRoundTrip(t *testing.T) {
	b := NewBytes()
	c := b.NewCache()
	sizes := []int{0, 1, 7, 8, 9, 16, 100, 1024, MaxValueLen}
	for _, n := range sizes {
		v := make([]byte, n)
		for i := range v {
			v[i] = byte(i*7 + n)
		}
		h := c.Alloc(v)
		if h == 0 {
			t.Fatalf("size %d: zero handle", n)
		}
		if got, ok := b.Len(h); !ok || got != n {
			t.Fatalf("size %d: Len = %d, %v", n, got, ok)
		}
		got, ok := b.Read(h, nil)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("size %d: Read mismatch (ok=%v, len=%d)", n, ok, len(got))
		}
		if !b.CheckHandle(h) {
			t.Fatalf("size %d: CheckHandle false on live handle", n)
		}
		c.Free(h)
		if b.CheckHandle(h) {
			t.Fatalf("size %d: CheckHandle true after free", n)
		}
		if _, ok := b.Read(h, nil); ok {
			t.Fatalf("size %d: Read succeeded after free", n)
		}
	}
	if out := b.Outstanding(); out != 0 {
		t.Fatalf("outstanding = %d after balanced alloc/free", out)
	}
}

func TestBytesClassFor(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want uint32
	}{{0, 0}, {8, 0}, {9, 1}, {24, 1}, {25, 2}, {1024, 7}, {MaxValueLen, 7}} {
		if got := classFor(tc.n); got != tc.want {
			t.Errorf("classFor(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestBytesStaleHandleAfterRecycle(t *testing.T) {
	b := NewBytes()
	c := b.NewCache()
	h := c.Alloc([]byte("original payload"))
	c.Free(h)
	// Drain the cache until the same slot is reallocated: the new
	// allocation must not be readable through the old handle.
	var reused Handle
	var live []Handle
	for i := 0; i < 10*bytesMaxCache; i++ {
		nh := c.Alloc([]byte("recycled payload"))
		if nh.class() == h.class() && nh.idx() == h.idx() {
			reused = nh
			break
		}
		live = append(live, nh)
	}
	if reused == 0 {
		t.Fatal("slot never recycled")
	}
	if _, ok := b.Read(h, nil); ok {
		t.Fatal("stale handle read the recycled slot")
	}
	if b.CheckHandle(h) {
		t.Fatal("stale handle passed CheckHandle after recycle")
	}
	if got, ok := b.Read(reused, nil); !ok || string(got) != "recycled payload" {
		t.Fatalf("fresh handle unreadable: %q, %v", got, ok)
	}
	for _, lh := range live {
		c.Free(lh)
	}
	c.Free(reused)
}

func TestBytesDoubleFreePanics(t *testing.T) {
	b := NewBytes()
	c := b.NewCache()
	h := c.Alloc([]byte("x"))
	c.Free(h)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	c.Free(h)
}

// TestBytesConcurrentChurn hammers the arena from several goroutines:
// each owns a cache and continuously allocates, reads back (must match
// exactly — live handles are never torn), frees, and probes other
// goroutines' published handles (which may be stale by the time they
// are read: Read must then either return the exact published payload or
// report !ok, never garbage). Run under -race this also proves the
// word-atomic slot protocol is data-race-free.
func TestBytesConcurrentChurn(t *testing.T) {
	const (
		workers = 4
		rounds  = 2000
	)
	b := NewBytes()
	var published [workers]atomic.Uint64 // handle currently readable (racy by design)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := b.NewCache()
			var buf []byte
			for i := 0; i < rounds; i++ {
				n := (id*31 + i*17) % 512
				v := make([]byte, n)
				for j := range v {
					v[j] = byte(id ^ j ^ i)
				}
				h := c.Alloc(v)
				var ok bool
				if buf, ok = b.Read(h, buf); !ok || !bytes.Equal(buf, v) {
					errs <- fmt.Errorf("worker %d round %d: own live handle misread", id, i)
					return
				}
				published[id].Store(uint64(h))
				// Probe a neighbour's latest handle: may already be stale.
				if ph := Handle(published[(id+1)%workers].Load()); ph != 0 {
					if pv, ok := b.Read(ph, nil); ok {
						// A successful read must be internally consistent:
						// every payload byte was written by one Alloc, so the
						// first byte determines the rest.
						for j := range pv {
							if pv[j]^byte(j) != pv[0] {
								errs <- fmt.Errorf("worker %d round %d: torn foreign read", id, i)
								return
							}
						}
					}
				}
				c.Free(h)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if out := b.Outstanding(); out != 0 {
		t.Fatalf("outstanding = %d after balanced churn", out)
	}
}
