package arena_test

import (
	"sync"
	"testing"
	"testing/quick"

	"pop/internal/arena"
)

type payload struct {
	a, b int64
}

func TestGetPutRoundTrip(t *testing.T) {
	p := arena.NewPool[payload](nil, nil)
	c := p.NewCache()
	v := c.Get()
	v.a, v.b = 1, 2
	c.Put(v)
	st := p.Stats()
	if st.Allocs != 1 || st.Frees != 1 || st.Outstanding != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRecyclesSlots(t *testing.T) {
	p := arena.NewPool[payload](nil, nil)
	c := p.NewCache()
	v1 := c.Get()
	c.Put(v1)
	v2 := c.Get()
	if v1 != v2 {
		t.Fatal("pool did not recycle the freed slot LIFO")
	}
}

func TestSeqParity(t *testing.T) {
	p := arena.NewPool[payload](nil, nil)
	c := p.NewCache()
	v := c.Get()
	if arena.Seq(v)%2 != 1 {
		t.Fatalf("allocated slot has even seq %d", arena.Seq(v))
	}
	arena.Check(v) // must not panic
	c.Put(v)
	if arena.Seq(v)%2 != 0 {
		t.Fatalf("freed slot has odd seq %d", arena.Seq(v))
	}
}

func TestCheckDetectsUseAfterFree(t *testing.T) {
	p := arena.NewPool[payload](nil, nil)
	c := p.NewCache()
	v := c.Get()
	c.Put(v)
	defer func() {
		if recover() == nil {
			t.Fatal("Check did not panic on freed slot")
		}
	}()
	arena.Check(v)
}

func TestDoubleFreePanics(t *testing.T) {
	p := arena.NewPool[payload](nil, nil)
	c := p.NewCache()
	v := c.Get()
	c.Put(v)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	c.Put(v)
}

func TestResetAndPoisonHooks(t *testing.T) {
	resets, poisons := 0, 0
	p := arena.NewPool[payload](
		func(v *payload) { resets++; *v = payload{} },
		func(v *payload) { poisons++; v.a = -0xDEAD },
	)
	c := p.NewCache()
	v := c.Get()
	if resets != 1 {
		t.Fatalf("resets = %d", resets)
	}
	v.a = 7
	c.Put(v)
	if poisons != 1 {
		t.Fatalf("poisons = %d", poisons)
	}
	if v.a != -0xDEAD {
		t.Fatal("poison did not scramble the payload")
	}
	v2 := c.Get()
	if v2.a != 0 {
		t.Fatal("reset did not clear recycled payload")
	}
}

func TestCrossThreadFreeMigration(t *testing.T) {
	// Thread A allocates, thread B frees (the reclaimer pattern); the
	// counters must balance and B's cache must absorb the nodes.
	p := arena.NewPool[payload](nil, nil)
	a, b := p.NewCache(), p.NewCache()
	const n = 5000
	ch := make(chan *payload, n)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			ch <- a.Get()
		}
		close(ch)
	}()
	go func() {
		defer wg.Done()
		for v := range ch {
			b.Put(v)
		}
	}()
	wg.Wait()
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("Outstanding = %d after balanced alloc/free", got)
	}
}

func TestManyConcurrentCaches(t *testing.T) {
	p := arena.NewPool[payload](nil, nil)
	const workers, rounds = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := p.NewCache()
			live := make([]*payload, 0, 64)
			for i := 0; i < rounds; i++ {
				live = append(live, c.Get())
				if len(live) == 64 {
					for _, v := range live {
						c.Put(v)
					}
					live = live[:0]
				}
			}
			for _, v := range live {
				c.Put(v)
			}
		}()
	}
	wg.Wait()
	st := p.Stats()
	if st.Outstanding != 0 {
		t.Fatalf("Outstanding = %d", st.Outstanding)
	}
	if st.Allocs != workers*rounds {
		t.Fatalf("Allocs = %d, want %d", st.Allocs, workers*rounds)
	}
}

// TestQuickAllocFreeSequences drives a cache with arbitrary alloc/free
// tapes and checks the outstanding count is always len(live).
func TestQuickAllocFreeSequences(t *testing.T) {
	prop := func(tape []bool) bool {
		p := arena.NewPool[payload](nil, nil)
		c := p.NewCache()
		var live []*payload
		for _, alloc := range tape {
			if alloc || len(live) == 0 {
				live = append(live, c.Get())
			} else {
				v := live[len(live)-1]
				live = live[:len(live)-1]
				c.Put(v)
			}
			if p.Outstanding() != int64(len(live)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsSlabGrowth(t *testing.T) {
	p := arena.NewPool[payload](nil, nil)
	c := p.NewCache()
	var live []*payload
	for i := 0; i < 5000; i++ { // > one slab (4096)
		live = append(live, c.Get())
	}
	if st := p.Stats(); st.Slabs < 2 {
		t.Fatalf("Slabs = %d, want >= 2", st.Slabs)
	}
	for _, v := range live {
		c.Put(v)
	}
}
