// Package arena implements the manual-memory substrate underneath every
// data structure in this repository.
//
// The paper's system runs in C++ where free(node) returns memory to
// mimalloc and a use-after-free is a real memory-safety bug. Go has a
// garbage collector, so "freeing" must be simulated for safe memory
// reclamation (SMR) to mean anything: Pool hands out nodes from large
// type-stable slabs and recycles them on Put. Because slabs are never
// returned to the Go heap while the pool lives, a node pointer held past
// its free does not crash — instead the pool's allocation-sequence
// discipline makes the error *detectable*: every node slot carries a
// sequence number that is bumped on each free, so a stale reader can be
// caught deterministically (see Check) where C++ would segfault
// non-deterministically.
//
// Design points that matter for the benchmarks:
//
//   - Per-thread free lists. Frees performed by a reclaimer go to that
//     reclaimer's cache and are reused by its next allocations, exactly
//     like mimalloc's sharded free lists, which the paper's §5.0.1 calls
//     out as necessary to avoid allocator-induced scalability collapse.
//   - A global overflow list (mutex-protected, batch transfers) bounds
//     per-thread hoarding when producers and consumers are different
//     threads.
//   - Padded outstanding counters so memory statistics (the paper's
//     memory-consumption plots) can be sampled without perturbing the run.
package arena

import (
	"fmt"
	"sync"
	"unsafe"

	"pop/internal/padded"
)

// slabSize is the number of nodes allocated per slab. Large enough that
// slab allocation is off every hot path, small enough that tiny tests do
// not waste memory.
const slabSize = 4096

// batchSize is the number of nodes moved between a thread cache and the
// global overflow list in one transfer.
const batchSize = 256

// maxCache is the per-thread cache size above which frees overflow to the
// global list.
const maxCache = 4 * batchSize

// Slot wraps a node with the pool's bookkeeping. Seq is incremented on
// every Put, so a reader that captured (node, seq) can detect that the
// node was recycled under it.
type Slot[T any] struct {
	// Seq counts completed lifetimes of this slot; it is even while the
	// slot is free and odd while it is allocated. Mutated only by the
	// pool, read by debug checks.
	Seq uint64
	// V is the node payload handed to the data structure.
	V T
}

// Stats is a snapshot of pool counters.
type Stats struct {
	Allocs      uint64 // total Get calls
	Frees       uint64 // total Put calls
	Outstanding int64  // Allocs - Frees (live + retired-but-unfreed nodes)
	Slabs       int    // slabs ever allocated
}

// Pool is a type-stable allocator for nodes of type T.
//
// Get and Put are safe for concurrent use by threads that were registered
// with ThreadCache handles; the zero-handle (nil) path falls back to the
// shared list and is safe but slower.
type Pool[T any] struct {
	mu     sync.Mutex
	free   []*Slot[T] // global overflow free list
	slabs  [][]Slot[T]
	poison func(*T) // optional: scrambles payload on free (debug)
	reset  func(*T) // optional: zeroes payload on alloc

	allocs padded.Uint64
	frees  padded.Uint64
}

// NewPool returns an empty pool. reset, if non-nil, is applied to every
// node before Get returns it; poison, if non-nil, is applied on Put so
// that use-after-free reads observe scrambled data in tests.
func NewPool[T any](reset, poison func(*T)) *Pool[T] {
	return &Pool[T]{reset: reset, poison: poison}
}

// ThreadCache is a per-thread allocation cache. Not safe for concurrent
// use by multiple goroutines (one per worker thread, by construction).
type ThreadCache[T any] struct {
	p     *Pool[T]
	cache []*Slot[T]
}

// NewCache returns a thread cache bound to the pool.
func (p *Pool[T]) NewCache() *ThreadCache[T] {
	return &ThreadCache[T]{p: p, cache: make([]*Slot[T], 0, maxCache)}
}

// grow allocates a slab and pushes its slots on the global free list.
// Caller holds p.mu.
func (p *Pool[T]) grow() {
	slab := make([]Slot[T], slabSize)
	p.slabs = append(p.slabs, slab)
	for i := range slab {
		p.free = append(p.free, &slab[i])
	}
}

// refill moves up to batchSize slots from the global list into the cache.
func (c *ThreadCache[T]) refill() {
	p := c.p
	p.mu.Lock()
	if len(p.free) == 0 {
		p.grow()
	}
	n := batchSize
	if n > len(p.free) {
		n = len(p.free)
	}
	c.cache = append(c.cache, p.free[len(p.free)-n:]...)
	p.free = p.free[:len(p.free)-n]
	p.mu.Unlock()
}

// Get allocates a node. The returned pointer is valid until Put.
func (c *ThreadCache[T]) Get() *T {
	if len(c.cache) == 0 {
		c.refill()
	}
	s := c.cache[len(c.cache)-1]
	c.cache = c.cache[:len(c.cache)-1]
	s.Seq++ // even -> odd: now allocated
	c.p.allocs.Add(1)
	if c.p.reset != nil {
		c.p.reset(&s.V)
	}
	return &s.V
}

// Put frees a node obtained from Get. Double frees panic.
func (c *ThreadCache[T]) Put(v *T) {
	s := slotOf(v)
	if s.Seq%2 == 0 {
		panic(fmt.Sprintf("arena: double free of slot (seq=%d)", s.Seq))
	}
	if c.p.poison != nil {
		c.p.poison(v)
	}
	s.Seq++ // odd -> even: now free
	c.p.frees.Add(1)
	c.cache = append(c.cache, s)
	if len(c.cache) >= maxCache {
		p := c.p
		p.mu.Lock()
		p.free = append(p.free, c.cache[len(c.cache)-batchSize:]...)
		p.mu.Unlock()
		c.cache = c.cache[:len(c.cache)-batchSize]
	}
}

// Seq returns the current lifetime sequence number of the slot holding v.
// Odd means allocated, even means free. Reading it from a non-owner
// thread is inherently racy and intended only for debug checks.
func Seq[T any](v *T) uint64 { return slotOf(v).Seq }

// Check panics if v is not currently allocated. It is the pool-level
// use-after-free detector: data-structure debug modes call it after
// protecting a node.
func Check[T any](v *T) {
	if s := slotOf(v); s.Seq%2 == 0 {
		panic(fmt.Sprintf("arena: use after free detected (seq=%d)", s.Seq))
	}
}

// Stats returns a snapshot of the pool counters. Outstanding can be
// momentarily negative in a racing snapshot; callers treat it as an
// approximation (it is exact once the pool is quiescent).
func (p *Pool[T]) Stats() Stats {
	a, f := p.allocs.Load(), p.frees.Load()
	p.mu.Lock()
	n := len(p.slabs)
	p.mu.Unlock()
	return Stats{Allocs: a, Frees: f, Outstanding: int64(a) - int64(f), Slabs: n}
}

// Outstanding returns Allocs-Frees without taking the pool lock.
func (p *Pool[T]) Outstanding() int64 {
	return int64(p.allocs.Load()) - int64(p.frees.Load())
}

// slotOf recovers the Slot header from a payload pointer. V is at a fixed
// offset inside Slot, so this is the inverse of &s.V.
func slotOf[T any](v *T) *Slot[T] {
	return (*Slot[T])(unsafe.Pointer(uintptr(unsafe.Pointer(v)) - unsafe.Offsetof(Slot[T]{}.V)))
}
