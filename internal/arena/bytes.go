package arena

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pop/internal/padded"
)

// Bytes is the variable-size value arena underneath the store layer: a
// size-class slab pool for byte payloads whose allocations are named by
// opaque uint64 Handles rather than pointers, so a data structure can
// hold a value in the uint64 slot it already has.
//
// Like Pool, Bytes simulates manual memory in a garbage-collected
// runtime: slabs are never returned to the Go heap while the arena
// lives, and every slot carries a lifetime sequence number (even while
// free, odd while allocated) whose low 32 bits are baked into the
// Handle. The seqlock discipline makes a stale read *deterministically
// detectable* instead of a crash:
//
//   - Alloc copies the payload into the slot with atomic word stores and
//     only then publishes the new (odd) sequence number;
//   - Free bumps the sequence (odd -> even) before the slot can be
//     handed out again;
//   - Read loads the sequence, copies the payload with atomic word
//     loads, and loads the sequence again — if either load disagrees
//     with the Handle's sequence the slot was freed (and possibly
//     recycled) under the reader, and Read reports !ok instead of
//     returning torn or recycled bytes.
//
// All slot accesses are atomic at word granularity, so a reader racing a
// recycler is well-defined under the Go memory model (and clean under
// -race) — the race is resolved by the sequence validation, exactly the
// role the node pools' Seq/Check discipline plays for pointers.
//
// Payloads are length-prefixed inside the slot; the usable capacity of
// class c is 16<<c − 8 bytes, up to MaxValueLen.

// bytesClasses is the number of size classes: 16 B .. 2048 B slots.
const bytesClasses = 8

// bytesSlabSlots is the number of slots allocated per slab (per class).
const bytesSlabSlots = 1024

// bytesBatch is the number of slot indices moved between a thread cache
// and a class's global free list in one transfer.
const bytesBatch = 64

// bytesMaxCache is the per-thread, per-class cache size above which
// frees overflow to the global list.
const bytesMaxCache = 4 * bytesBatch

// MaxValueLen is the largest payload Bytes can hold: the top class's
// slot minus the 8-byte length prefix.
const MaxValueLen = (16 << (bytesClasses - 1)) - 8

// Handle names one allocated value: the slot's class and global index
// plus the low 31 bits of the slot's (odd) allocation sequence. The
// zero Handle is never produced by Alloc, so 0 can mean "no value" in
// the structures that store handles.
//
// Layout: 0 << 63 | seq31 << 32 | class4 << 28 | idx28.
//
// Bit 63 is reserved-zero: the store layer tags values that are encoded
// inline (not arena-backed at all) with that bit in the same uint64
// slot, so a Handle must never set it. Dropping the sequence from 32 to
// 31 bits halves the recycle count needed for a false CheckHandle
// match, from 2^32 to 2^31 per-slot reuses within one reader's
// protected operation — still far beyond any reachable churn.
type Handle uint64

// handleSeqMask selects the sequence bits a Handle carries.
const handleSeqMask = 1<<31 - 1

func makeHandle(seq uint64, class, idx uint32) Handle {
	return Handle((seq&handleSeqMask)<<32 | uint64(class)<<28 | uint64(idx))
}

func (h Handle) seq() uint32   { return uint32(uint64(h)>>32) & handleSeqMask }
func (h Handle) class() uint32 { return uint32(h) >> 28 }
func (h Handle) idx() uint32   { return uint32(h) & (1<<28 - 1) }

// SameSlot reports whether two handles name the same arena slot,
// ignoring the lifetime sequence — true for a handle and the handle of
// a later value recycled into its slot. Test/debug use.
func (h Handle) SameSlot(o Handle) bool {
	return h.class() == o.class() && h.idx() == o.idx()
}

// bslab is one slab of a size class: the payload words and the parallel
// per-slot sequence numbers. Both slices are fixed-length once created;
// all element accesses are atomic.
type bslab struct {
	words []uint64 // bytesSlabSlots * wordsPerSlot(class)
	seqs  []uint64 // bytesSlabSlots lifetime counters
}

// bclass is one size class: a mutex-protected global free list plus a
// copy-on-grow slab directory readers can index without the lock.
type bclass struct {
	mu    sync.Mutex
	free  []uint32 // free slot indices (global overflow)
	slabs atomic.Pointer[[]*bslab]
}

// wordsPerSlot returns the slot width of class c in 8-byte words
// (length word included).
func wordsPerSlot(c uint32) uint32 { return (16 << c) / 8 }

// classCap returns the payload capacity of class c in bytes.
func classCap(c uint32) int { return (16 << int(c)) - 8 }

// classFor returns the smallest class whose capacity holds n bytes.
func classFor(n int) uint32 {
	for c := uint32(0); c < bytesClasses; c++ {
		if classCap(c) >= n {
			return c
		}
	}
	panic(fmt.Sprintf("arena: value of %d bytes exceeds MaxValueLen (%d)", n, MaxValueLen))
}

// Bytes is the value arena. Alloc/Free go through per-thread
// BytesCaches; Read and CheckHandle are safe from any goroutine.
type Bytes struct {
	classes [bytesClasses]bclass

	allocs padded.Uint64
	frees  padded.Uint64
}

// NewBytes returns an empty value arena.
func NewBytes() *Bytes { return &Bytes{} }

// BytesCache is a per-thread allocation cache over a Bytes arena. Not
// safe for concurrent use (one per worker thread, by construction).
type BytesCache struct {
	b    *Bytes
	free [bytesClasses][]uint32
}

// NewCache returns a thread cache bound to the arena.
func (b *Bytes) NewCache() *BytesCache { return &BytesCache{b: b} }

// grow allocates one slab for class c and pushes its slot indices on the
// class free list. Caller holds the class mutex.
func (b *Bytes) grow(c uint32) {
	cl := &b.classes[c]
	old := cl.slabs.Load()
	var slabs []*bslab
	if old != nil {
		slabs = append(slabs, *old...)
	}
	slab := &bslab{
		words: make([]uint64, bytesSlabSlots*int(wordsPerSlot(c))),
		seqs:  make([]uint64, bytesSlabSlots),
	}
	base := uint32(len(slabs)) * bytesSlabSlots
	slabs = append(slabs, slab)
	cl.slabs.Store(&slabs)
	for i := uint32(0); i < bytesSlabSlots; i++ {
		cl.free = append(cl.free, base+i)
	}
}

// refill moves up to bytesBatch slot indices from the class's global
// list into the cache.
func (c *BytesCache) refill(class uint32) {
	cl := &c.b.classes[class]
	cl.mu.Lock()
	if len(cl.free) == 0 {
		c.b.grow(class)
	}
	n := bytesBatch
	if n > len(cl.free) {
		n = len(cl.free)
	}
	c.free[class] = append(c.free[class], cl.free[len(cl.free)-n:]...)
	cl.free = cl.free[:len(cl.free)-n]
	cl.mu.Unlock()
}

// slotOf resolves a (class, idx) pair to its slab, sequence cell and
// first payload word. ok=false means idx names a slab that was never
// allocated — only possible for a corrupted handle.
func (b *Bytes) slotOf(class, idx uint32) (slab *bslab, slot, base uint32, ok bool) {
	slabs := b.classes[class].slabs.Load()
	si := idx / bytesSlabSlots
	if slabs == nil || si >= uint32(len(*slabs)) {
		return nil, 0, 0, false
	}
	slab = (*slabs)[si]
	slot = idx % bytesSlabSlots
	base = slot * wordsPerSlot(class)
	return slab, slot, base, true
}

// Alloc copies v into a fresh slot and returns its Handle. The returned
// handle is valid until Free. Values longer than MaxValueLen panic.
func (c *BytesCache) Alloc(v []byte) Handle {
	class := classFor(len(v))
	if len(c.free[class]) == 0 {
		c.refill(class)
	}
	idx := c.free[class][len(c.free[class])-1]
	c.free[class] = c.free[class][:len(c.free[class])-1]
	slab, slot, base, ok := c.b.slotOf(class, idx)
	if !ok {
		panic("arena: cached slot index names no slab")
	}
	// The slot is free (even seq) and owned by this thread until the seq
	// publish below, but readers chasing a stale handle may race these
	// stores, so they stay atomic.
	atomic.StoreUint64(&slab.words[base], uint64(len(v)))
	w := base + 1
	for len(v) >= 8 {
		atomic.StoreUint64(&slab.words[w], leWord(v))
		v = v[8:]
		w++
	}
	if len(v) > 0 {
		var last [8]byte
		copy(last[:], v)
		atomic.StoreUint64(&slab.words[w], leWord(last[:]))
	}
	seq := atomic.LoadUint64(&slab.seqs[slot]) + 1 // even -> odd: allocated
	atomic.StoreUint64(&slab.seqs[slot], seq)
	c.b.allocs.Add(1)
	return makeHandle(seq, class, idx)
}

// reserve tops the cache up to at least need free slots of class, in
// one lock acquisition — the batched analogue of refill.
func (c *BytesCache) reserve(class uint32, need int) {
	cl := &c.b.classes[class]
	cl.mu.Lock()
	for len(c.free[class]) < need {
		if len(cl.free) == 0 {
			c.b.grow(class)
		}
		n := need - len(c.free[class])
		if n < bytesBatch {
			n = bytesBatch
		}
		if n > len(cl.free) {
			n = len(cl.free)
		}
		c.free[class] = append(c.free[class], cl.free[len(cl.free)-n:]...)
		cl.free = cl.free[:len(cl.free)-n]
	}
	cl.mu.Unlock()
}

// AllocBatch copies every vs[i] into a fresh slot and records its
// handle in out[i] (len(out) must be >= len(vs)). Slot reservation is
// batched: each size class the batch touches takes the global-list
// lock at most once, up front, instead of once per bytesBatch
// allocations — so a store-level batched put pays one reservation pass
// per shard group, mirroring its one protected operation per group.
func (c *BytesCache) AllocBatch(vs [][]byte, out []Handle) {
	var need [bytesClasses]int
	for _, v := range vs {
		need[classFor(len(v))]++
	}
	for class := uint32(0); class < bytesClasses; class++ {
		if n := need[class]; n > len(c.free[class]) {
			c.reserve(class, n)
		}
	}
	for i, v := range vs {
		out[i] = c.Alloc(v)
	}
}

// Free returns h's slot to the pool. Freeing a handle that is not the
// slot's current allocation (stale or double free) panics: frees flow
// through the reclamation layer exactly once per retirement.
func (c *BytesCache) Free(h Handle) {
	class, idx := h.class(), h.idx()
	slab, slot, _, ok := c.b.slotOf(class, idx)
	if !ok {
		panic("arena: Free of handle naming no slab")
	}
	seq := atomic.LoadUint64(&slab.seqs[slot])
	if seq%2 == 0 || uint32(seq)&handleSeqMask != h.seq() {
		panic(fmt.Sprintf("arena: double or stale free of value slot (seq=%d, handle seq=%d)", seq, h.seq()))
	}
	atomic.StoreUint64(&slab.seqs[slot], seq+1) // odd -> even: free
	c.b.frees.Add(1)
	c.free[class] = append(c.free[class], idx)
	if len(c.free[class]) >= bytesMaxCache {
		cl := &c.b.classes[class]
		cl.mu.Lock()
		cl.free = append(cl.free, c.free[class][len(c.free[class])-bytesBatch:]...)
		cl.mu.Unlock()
		c.free[class] = c.free[class][:len(c.free[class])-bytesBatch]
	}
}

// Read copies h's payload into buf (growing it as needed) and returns
// the filled slice. ok=false means the handle is stale — the slot was
// freed (and possibly reallocated) after h was issued — in which case
// no bytes are returned: the seqlock validation brackets the copy, so a
// caller never observes torn or recycled data. Safe from any goroutine.
func (b *Bytes) Read(h Handle, buf []byte) ([]byte, bool) {
	class, idx := h.class(), h.idx()
	if class >= bytesClasses {
		return buf[:0], false
	}
	slab, slot, base, ok := b.slotOf(class, idx)
	if !ok {
		return buf[:0], false
	}
	seq := atomic.LoadUint64(&slab.seqs[slot])
	if seq%2 == 0 || uint32(seq)&handleSeqMask != h.seq() {
		return buf[:0], false
	}
	n := atomic.LoadUint64(&slab.words[base])
	if n > uint64(classCap(class)) {
		return buf[:0], false // recycled mid-read; the re-check would fail too
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	w := base + 1
	out := buf
	for len(out) >= 8 {
		putLeWord(out, atomic.LoadUint64(&slab.words[w]))
		out = out[8:]
		w++
	}
	if len(out) > 0 {
		var last [8]byte
		putLeWord(last[:], atomic.LoadUint64(&slab.words[w]))
		copy(out, last[:len(out)])
	}
	// Validate: if the slot was freed or recycled during the copy the
	// sequence moved and the bytes above are garbage.
	if atomic.LoadUint64(&slab.seqs[slot]) != seq {
		return buf[:0], false
	}
	return buf, true
}

// CheckHandle reports whether h still names a live allocation: the
// slot's sequence is odd and matches the handle. A false result is the
// deterministic stale-value detection the store's tests assert on —
// the analogue of Check for pointer arenas, minus the panic (stale
// value handles are an expected event for readers that outlive an
// overwrite, not a bug).
func (b *Bytes) CheckHandle(h Handle) bool {
	slab, slot, _, ok := b.slotOf(h.class(), h.idx())
	if !ok {
		return false
	}
	seq := atomic.LoadUint64(&slab.seqs[slot])
	return seq%2 == 1 && uint32(seq)&handleSeqMask == h.seq()
}

// Len returns the payload length recorded for h, without copying.
// ok=false under the same conditions as Read.
func (b *Bytes) Len(h Handle) (int, bool) {
	slab, slot, base, ok := b.slotOf(h.class(), h.idx())
	if !ok {
		return 0, false
	}
	seq := atomic.LoadUint64(&slab.seqs[slot])
	if seq%2 == 0 || uint32(seq)&handleSeqMask != h.seq() {
		return 0, false
	}
	n := atomic.LoadUint64(&slab.words[base])
	if n > uint64(classCap(h.class())) || atomic.LoadUint64(&slab.seqs[slot]) != seq {
		return 0, false
	}
	return int(n), true
}

// Outstanding returns Allocs-Frees (live + retired-but-unfreed values).
func (b *Bytes) Outstanding() int64 {
	return int64(b.allocs.Load()) - int64(b.frees.Load())
}

// BytesStats is a snapshot of value-arena counters.
type BytesStats struct {
	Allocs      uint64 // total Alloc calls
	Frees       uint64 // total Free calls
	Outstanding int64  // Allocs - Frees
	Slabs       int    // slabs ever allocated, all classes
}

// Stats returns a snapshot of the arena counters.
func (b *Bytes) Stats() BytesStats {
	a, f := b.allocs.Load(), b.frees.Load()
	slabs := 0
	for c := range b.classes {
		if s := b.classes[c].slabs.Load(); s != nil {
			slabs += len(*s)
		}
	}
	return BytesStats{Allocs: a, Frees: f, Outstanding: int64(a) - int64(f), Slabs: slabs}
}

// leWord packs b[0:8] little-endian into a word.
func leWord(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// putLeWord unpacks w little-endian into b[0:8].
func putLeWord(b []byte, w uint64) {
	b[0] = byte(w)
	b[1] = byte(w >> 8)
	b[2] = byte(w >> 16)
	b[3] = byte(w >> 24)
	b[4] = byte(w >> 32)
	b[5] = byte(w >> 40)
	b[6] = byte(w >> 48)
	b[7] = byte(w >> 56)
}
