// Package figures encodes every experiment in the paper's evaluation —
// Figures 1-11 plus the §2.1.2 read-cost analysis, the robustness
// scenario, and ablations over the design parameters DESIGN.md calls out
// — and this repository's extension experiments: the skiplist sweeps,
// the scan-heavy range-query workloads on both ordered structures
// (skl-scan, abt-scan), whose series include per-scan latency quantiles
// (p50/p99 from the harness's HDR histogram) alongside throughput and
// memory, and the KV-serving sweeps (skl-kv, hmht-kv) that run the
// get/put/overwrite/delete map workload with per-op-class tail
// latencies.
// Each figure knows its workload, data structure, sizes and thresholds,
// runs the sweep through the harness, and returns the same series the
// paper plots. cmd/popbench renders them; bench_test.go reuses the same
// definitions so `go test -bench` regenerates every figure.
//
// Sizes are the paper's divided by Ctx.Scale so laptop-scale runs finish;
// pass Scale=1 for full-size structures. The retire-list threshold
// (paper: 24K) scales with the structure so that reclamation actually
// triggers at reduced size.
package figures

import (
	"fmt"
	"time"

	"pop/internal/chaos"
	"pop/internal/core"
	"pop/internal/harness"
	"pop/internal/report"
	"pop/internal/store"
	"pop/internal/telemetry"
	"pop/internal/workload"
)

// Ctx carries sweep-wide parameters.
type Ctx struct {
	Duration time.Duration // per-trial execution time
	Threads  []int         // thread counts to sweep
	Scale    int64         // divide paper structure sizes by this (>=1)
	Seed     uint64
	Policies []core.Policy        // nil = paper's standard set
	Log      func(string, ...any) // optional progress sink
}

func (c Ctx) withDefaults() Ctx {
	if c.Duration <= 0 {
		c.Duration = 300 * time.Millisecond
	}
	if len(c.Threads) == 0 {
		c.Threads = []int{1, 2, 4, 8}
	}
	if c.Scale <= 0 {
		c.Scale = 64
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Log == nil {
		c.Log = func(string, ...any) {}
	}
	return c
}

// standardPolicies is the paper's plot legend order (Figures 1-9).
var standardPolicies = []core.Policy{
	core.IBR, core.HE, core.HP, core.HPAsym, core.HazardPtrPOP,
	core.EBR, core.HazardEraPOP, core.NBR, core.NR, core.EpochPOP,
}

func (c Ctx) policySet(withCrystalline bool) []core.Policy {
	if c.Policies != nil {
		return c.Policies
	}
	if !withCrystalline {
		return standardPolicies
	}
	out := append([]core.Policy(nil), standardPolicies...)
	return append(out, core.Crystalline)
}

// Figure is one reproducible experiment.
type Figure struct {
	ID   string
	Desc string
	Run  func(Ctx) ([]report.Series, error)
}

// Metric extracts one plotted value from a trial result. The standard
// metrics below cover the paper's plots; cmd/popbench composes ad-hoc
// ones for direct sweeps.
type Metric struct {
	Name string
	Get  func(harness.Result) float64
}

var (
	mThroughput  = Metric{"throughput (ops/s)", func(r harness.Result) float64 { return r.Throughput }}
	mReadTput    = Metric{"read throughput (ops/s)", func(r harness.Result) float64 { return r.ReadTput }}
	mRangeTput   = Metric{"range throughput (scans/s)", func(r harness.Result) float64 { return r.RangeTput }}
	mMaxRetire   = Metric{"max retireList size (nodes)", func(r harness.Result) float64 { return float64(r.MaxRetire) }}
	mPeakRes     = Metric{"peak resident nodes", func(r harness.Result) float64 { return float64(r.PeakResident) }}
	mUnreclaimed = Metric{"total unreclaimed nodes", func(r harness.Result) float64 { return float64(r.Unreclaimed) }}
	mScanP50     = ScanLatencyMetric("scan p50 (µs)", 0.50)
	mScanP99     = ScanLatencyMetric("scan p99 (µs)", 0.99)
)

// ScanLatencyMetric builds a metric reading quantile q (in microseconds)
// from a trial's scan-latency histogram; 0 when the mix had no scans.
func ScanLatencyMetric(name string, q float64) Metric {
	return Metric{Name: name, Get: func(r harness.Result) float64 {
		if r.ScanLat == nil {
			return 0
		}
		return r.ScanLat.Quantile(q) / 1e3
	}}
}

// OpLatencyMetric builds a metric reading quantile q (in microseconds)
// of one operation class's latency histogram; 0 when the class was not
// profiled (requires harness.Config.OpLatency).
func OpLatencyMetric(name string, class harness.OpClass, q float64) Metric {
	return Metric{Name: name, Get: func(r harness.Result) float64 {
		h := r.OpLat[class]
		if h == nil {
			return 0
		}
		return h.Quantile(q) / 1e3
	}}
}

// ScanLatencyMaxMetric builds a metric reading the worst observed scan
// latency in microseconds.
func ScanLatencyMaxMetric(name string) Metric {
	return Metric{Name: name, Get: func(r harness.Result) float64 {
		if r.ScanLat == nil {
			return 0
		}
		return float64(r.ScanLat.Max()) / 1e3
	}}
}

// scaleSize divides a paper size by the context scale with a floor.
func scaleSize(c Ctx, paperSize int64) int64 {
	s := paperSize / c.Scale
	if s < 128 {
		s = 128
	}
	return s
}

// scaleThreshold shrinks the paper's 24K retire threshold proportionally
// to the structure so reclamation still triggers at reduced scale.
func scaleThreshold(c Ctx, paperThreshold int) int {
	t := int(int64(paperThreshold) / c.Scale)
	if t < 64 {
		t = 64
	}
	return t
}

// SweepThreads runs cfgBase for every (policy, thread-count) pair and
// builds one series per metric. Callers fill Ctx completely (Run
// functions do it via withDefaults; cmd/popbench from its flags).
func SweepThreads(c Ctx, title string, cfgBase harness.Config, policies []core.Policy, metrics []Metric) ([]report.Series, error) {
	names := make([]string, len(policies))
	for i, p := range policies {
		names[i] = p.String()
	}
	out := make([]report.Series, len(metrics))
	for i, m := range metrics {
		out[i] = report.Series{
			Title:  fmt.Sprintf("%s — %s", title, m.Name),
			XLabel: "threads",
			Names:  names,
		}
	}
	for _, n := range c.Threads {
		cells := make([][]float64, len(metrics))
		for i := range cells {
			cells[i] = make([]float64, len(policies))
		}
		for pi, p := range policies {
			cfg := cfgBase
			cfg.Policy = p
			cfg.Threads = n
			cfg.Duration = c.Duration
			cfg.Seed = c.Seed
			c.Log("  %s: threads=%d policy=%v", title, n, p)
			res, err := harness.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s [threads=%d policy=%v]: %w", title, n, p, err)
			}
			for mi, m := range metrics {
				cells[mi][pi] = m.Get(res)
			}
		}
		for mi := range metrics {
			out[mi].AddRow(fmt.Sprintf("%d", n), cells[mi])
		}
	}
	return out, nil
}

// throughputAndMemory is the Figure 1/2 layout: throughput + max retire
// list across a thread sweep. fixed=true keeps the paper's exact size
// (the 2K lists are already laptop-scale and their size is the point).
func throughputAndMemory(id, what, dsName string, paperSize int64, fixed bool, mix workload.Mix) Figure {
	return Figure{
		ID:   id,
		Desc: what,
		Run: func(c Ctx) ([]report.Series, error) {
			c = c.withDefaults()
			size, threshold := paperSize, 24576
			if !fixed {
				size = scaleSize(c, paperSize)
				threshold = scaleThreshold(c, 24576)
			}
			cfg := harness.Config{
				DS:               dsName,
				KeyRange:         size,
				Mix:              mix,
				ReclaimThreshold: threshold,
			}
			return SweepThreads(c, what, cfg, c.policySet(false),
				[]Metric{mThroughput, mMaxRetire})
		},
	}
}

// throughputOnly is the Figure 3 layout.
func throughputOnly(id, what, dsName string, paperSize int64, mix workload.Mix) Figure {
	return Figure{
		ID:   id,
		Desc: what,
		Run: func(c Ctx) ([]report.Series, error) {
			c = c.withDefaults()
			cfg := harness.Config{
				DS:               dsName,
				KeyRange:         scaleSize(c, paperSize),
				Mix:              mix,
				ReclaimThreshold: scaleThreshold(c, 24576),
			}
			return SweepThreads(c, what, cfg, c.policySet(false), []Metric{mThroughput})
		},
	}
}

// appendixFigure is the appendix D/E layout: update-heavy and read-heavy
// panels, each with throughput, peak resident memory and unreclaimed
// nodes (Figures 5-11).
func appendixFigure(id, what, dsName string, paperSize int64, fixed, withCrystalline bool) Figure {
	return Figure{
		ID:   id,
		Desc: what,
		Run: func(c Ctx) ([]report.Series, error) {
			c = c.withDefaults()
			var out []report.Series
			size, threshold := paperSize, 24576
			if !fixed {
				size = scaleSize(c, paperSize)
				threshold = scaleThreshold(c, 24576)
			}
			for _, panel := range []struct {
				name string
				mix  workload.Mix
			}{
				{"update-heavy", workload.UpdateHeavy},
				{"read-heavy", workload.ReadHeavy},
			} {
				cfg := harness.Config{
					DS:               dsName,
					KeyRange:         size,
					Mix:              panel.mix,
					ReclaimThreshold: threshold,
				}
				series, err := SweepThreads(c, fmt.Sprintf("%s (%s)", what, panel.name),
					cfg, c.policySet(withCrystalline),
					[]Metric{mThroughput, mPeakRes, mUnreclaimed})
				if err != nil {
					return nil, err
				}
				out = append(out, series...)
			}
			return out, nil
		},
	}
}

// longReadsFigure is Figure 4: HML size sweep under the long-running-
// reads workload, plotting read-throughput ratio to NR and max retire
// list. The retire threshold is the paper's 2K (scaled).
func longReadsFigure() Figure {
	return Figure{
		ID:   "fig4",
		Desc: "Fig 4: long-running reads on HML, sizes 10K-800K; read throughput ratio vs NR and memory",
		Run: func(c Ctx) ([]report.Series, error) {
			c = c.withDefaults()
			threads := c.Threads[len(c.Threads)-1]
			if threads < 2 {
				threads = 2
			}
			policies := c.policySet(false)
			names := make([]string, len(policies))
			for i, p := range policies {
				names[i] = p.String()
			}
			ratio := report.Series{
				Title:  "Fig 4a: HML long-running reads — read throughput ratio to NR",
				XLabel: "size",
				Names:  names,
			}
			mem := report.Series{
				Title:  "Fig 4b: HML long-running reads — max retireList size (nodes)",
				XLabel: "size",
				Names:  names,
			}
			for _, paperSize := range []int64{10_000, 50_000, 100_000, 400_000, 800_000} {
				size := scaleSize(c, paperSize)
				cells := make([]float64, len(policies))
				mems := make([]float64, len(policies))
				var nrTput float64
				run := func(p core.Policy) (harness.Result, error) {
					return harness.Run(harness.Config{
						DS:               harness.DSHarrisMichaelList,
						Policy:           p,
						Threads:          threads,
						Duration:         c.Duration,
						KeyRange:         size,
						LongReads:        true,
						Seed:             c.Seed,
						ReclaimThreshold: scaleThreshold(c, 2048),
					})
				}
				c.Log("  fig4: size=%d policy=NR (baseline)", size)
				base, err := run(core.NR)
				if err != nil {
					return nil, err
				}
				nrTput = base.ReadTput
				for pi, p := range policies {
					var res harness.Result
					if p == core.NR {
						res = base
					} else {
						c.Log("  fig4: size=%d policy=%v", size, p)
						res, err = run(p)
						if err != nil {
							return nil, err
						}
					}
					if nrTput > 0 {
						cells[pi] = res.ReadTput / nrTput
					}
					mems[pi] = float64(res.MaxRetire)
				}
				label := fmt.Sprintf("%d", size)
				ratio.AddRow(label, cells)
				mem.AddRow(label, mems)
			}
			return []report.Series{ratio, mem}, nil
		},
	}
}

// readCostFigure quantifies §2.1.2: single-threaded read-path cost per
// scheme on a small HML (ns per contains).
func readCostFigure() Figure {
	return Figure{
		ID:   "readcost",
		Desc: "§2.1.2: single-thread read-path cost (ns/contains, HML size 1K)",
		Run: func(c Ctx) ([]report.Series, error) {
			c = c.withDefaults()
			policies := c.policySet(false)
			names := make([]string, len(policies))
			cells := make([]float64, len(policies))
			for i, p := range policies {
				names[i] = p.String()
				res, err := harness.Run(harness.Config{
					DS:       harness.DSHarrisMichaelList,
					Policy:   p,
					Threads:  1,
					Duration: c.Duration,
					KeyRange: 1024,
					Mix:      workload.Mix{ContainsPct: 100},
					Seed:     c.Seed,
				})
				if err != nil {
					return nil, err
				}
				if res.Ops > 0 {
					cells[i] = float64(c.Duration.Nanoseconds()) / float64(res.Ops)
				}
			}
			s := report.Series{Title: "Read-path cost — ns per contains (lower is better)", XLabel: "run", Names: names}
			s.AddRow("1 thread", cells)
			return []report.Series{s}, nil
		},
	}
}

// stallFigure is the robustness claim: a periodically delayed thread
// pins EBR's epoch; robust schemes keep garbage bounded.
func stallFigure() Figure {
	return Figure{
		ID:   "stall",
		Desc: "Robustness: unreclaimed garbage and throughput with a delayed thread",
		Run: func(c Ctx) ([]report.Series, error) {
			c = c.withDefaults()
			threads := c.Threads[len(c.Threads)-1]
			if threads < 2 {
				threads = 2
			}
			policies := c.policySet(false)
			names := make([]string, len(policies))
			unre := make([]float64, len(policies))
			tput := make([]float64, len(policies))
			for i, p := range policies {
				names[i] = p.String()
				c.Log("  stall: policy=%v", p)
				res, err := harness.Run(harness.Config{
					DS:               harness.DSHarrisMichaelList,
					Policy:           p,
					Threads:          threads,
					Duration:         c.Duration,
					KeyRange:         2048,
					ReclaimThreshold: 128,
					StallEvery:       2 * time.Millisecond,
					StallLength:      c.Duration / 4,
					Seed:             c.Seed,
				})
				if err != nil {
					return nil, err
				}
				unre[i] = float64(res.Unreclaimed)
				tput[i] = res.Throughput
			}
			s1 := report.Series{Title: "Delayed thread — unreclaimed nodes at run end", XLabel: "run", Names: names}
			s1.AddRow("stall", unre)
			s2 := report.Series{Title: "Delayed thread — throughput (ops/s)", XLabel: "run", Names: names}
			s2.AddRow("stall", tput)
			return []report.Series{s1, s2}, nil
		},
	}
}

// ablateThreshold sweeps the retire-list threshold (the reclaimFreq knob;
// cf. Kim, Brown & Singh [36] on batch-free harm).
func ablateThreshold() Figure {
	return Figure{
		ID:   "ablate-threshold",
		Desc: "Ablation: retire-list threshold sweep on HML update-heavy",
		Run: func(c Ctx) ([]report.Series, error) {
			c = c.withDefaults()
			threads := c.Threads[len(c.Threads)-1]
			policies := []core.Policy{core.HP, core.HPAsym, core.HazardPtrPOP, core.EpochPOP, core.EBR, core.NBR}
			if c.Policies != nil {
				policies = c.Policies
			}
			names := make([]string, len(policies))
			for i, p := range policies {
				names[i] = p.String()
			}
			thr := report.Series{Title: "Threshold ablation — throughput (ops/s)", XLabel: "threshold", Names: names}
			mem := report.Series{Title: "Threshold ablation — peak resident nodes", XLabel: "threshold", Names: names}
			for _, threshold := range []int{128, 512, 2048, 8192} {
				tputs := make([]float64, len(policies))
				mems := make([]float64, len(policies))
				for pi, p := range policies {
					c.Log("  ablate-threshold: threshold=%d policy=%v", threshold, p)
					res, err := harness.Run(harness.Config{
						DS:               harness.DSHarrisMichaelList,
						Policy:           p,
						Threads:          threads,
						Duration:         c.Duration,
						KeyRange:         2048,
						ReclaimThreshold: threshold,
						Seed:             c.Seed,
					})
					if err != nil {
						return nil, err
					}
					tputs[pi] = res.Throughput
					mems[pi] = float64(res.PeakResident)
				}
				thr.AddRow(fmt.Sprintf("%d", threshold), tputs)
				mem.AddRow(fmt.Sprintf("%d", threshold), mems)
			}
			return []report.Series{thr, mem}, nil
		},
	}
}

// ablateEpochFreq sweeps the epoch-advance cadence for the epoch-based
// schemes.
func ablateEpochFreq() Figure {
	return Figure{
		ID:   "ablate-epochfreq",
		Desc: "Ablation: epoch frequency sweep for EBR/HE/IBR/EpochPOP on DGT",
		Run: func(c Ctx) ([]report.Series, error) {
			c = c.withDefaults()
			threads := c.Threads[len(c.Threads)-1]
			policies := []core.Policy{core.EBR, core.HE, core.IBR, core.HazardEraPOP, core.EpochPOP}
			if c.Policies != nil {
				policies = c.Policies
			}
			names := make([]string, len(policies))
			for i, p := range policies {
				names[i] = p.String()
			}
			thr := report.Series{Title: "EpochFreq ablation — throughput (ops/s)", XLabel: "epochFreq", Names: names}
			mem := report.Series{Title: "EpochFreq ablation — peak resident nodes", XLabel: "epochFreq", Names: names}
			for _, freq := range []int{16, 64, 256, 1024} {
				tputs := make([]float64, len(policies))
				mems := make([]float64, len(policies))
				for pi, p := range policies {
					c.Log("  ablate-epochfreq: freq=%d policy=%v", freq, p)
					res, err := harness.Run(harness.Config{
						DS:               harness.DSExternalBST,
						Policy:           p,
						Threads:          threads,
						Duration:         c.Duration,
						KeyRange:         scaleSize(c, 200_000),
						EpochFreq:        freq,
						ReclaimThreshold: scaleThreshold(c, 24576),
						Seed:             c.Seed,
					})
					if err != nil {
						return nil, err
					}
					tputs[pi] = res.Throughput
					mems[pi] = float64(res.PeakResident)
				}
				thr.AddRow(fmt.Sprintf("%d", freq), tputs)
				mem.AddRow(fmt.Sprintf("%d", freq), mems)
			}
			return []report.Series{thr, mem}, nil
		},
	}
}

// ablateCMult sweeps EpochPOP's escalation factor C under a stalling
// thread: small C escalates (pings) eagerly, large C tolerates garbage.
func ablateCMult() Figure {
	return Figure{
		ID:   "ablate-c",
		Desc: "Ablation: EpochPOP escalation factor C under a delayed thread",
		Run: func(c Ctx) ([]report.Series, error) {
			c = c.withDefaults()
			threads := c.Threads[len(c.Threads)-1]
			if threads < 2 {
				threads = 2
			}
			names := []string{"throughput (ops/s)", "unreclaimed nodes", "POP reclaims", "pings sent"}
			s := report.Series{Title: "EpochPOP C ablation (delayed thread)", XLabel: "C", Names: names}
			for _, cm := range []int{2, 4, 8, 16} {
				c.Log("  ablate-c: C=%d", cm)
				res, err := harness.Run(harness.Config{
					DS:               harness.DSHarrisMichaelList,
					Policy:           core.EpochPOP,
					Threads:          threads,
					Duration:         c.Duration,
					KeyRange:         2048,
					ReclaimThreshold: 128,
					CMult:            cm,
					StallEvery:       2 * time.Millisecond,
					StallLength:      c.Duration / 4,
					Seed:             c.Seed,
				})
				if err != nil {
					return nil, err
				}
				s.AddRow(fmt.Sprintf("%d", cm), []float64{
					res.Throughput,
					float64(res.Unreclaimed),
					float64(res.Reclaim.POPReclaims),
					float64(res.Reclaim.PingsSent),
				})
			}
			return []report.Series{s}, nil
		},
	}
}

// scanHeavyFigure sweeps one range-capable structure under the
// scan-heavy mix: half the operations are multi-key ordered scans, each
// one long operation whose reservations stay pinned across every hop.
// This is the structural extreme of the paper's long-running-reads
// argument — the regime where cheap reservation publication (POP)
// should matter most. Running it on both the skiplist (per-node
// reservation chains) and the (a,b)-tree (whole-leaf reservations)
// separates reservation count from reservation lifetime; the series
// include scan-latency quantiles so the per-policy tail is visible, not
// just the mean.
func scanHeavyFigure(id, what, dsName string, paperSize int64) Figure {
	return Figure{
		ID:   id,
		Desc: what,
		Run: func(c Ctx) ([]report.Series, error) {
			c = c.withDefaults()
			cfg := harness.Config{
				DS:               dsName,
				KeyRange:         scaleSize(c, paperSize),
				Mix:              workload.ScanHeavy,
				RangeSpan:        100,
				ReclaimThreshold: scaleThreshold(c, 2048),
			}
			return SweepThreads(c, what, cfg, c.policySet(false),
				[]Metric{mThroughput, mRangeTput, mScanP50, mScanP99, mMaxRetire, mUnreclaimed})
		},
	}
}

// kvFigure sweeps one structure under the KV-serving mix (70% get /
// 10% put / 15% overwrite / 5% delete) with per-operation latency
// profiling on: the series report KV throughput plus the read and
// write tails (p50/p99 per op class). Overwrites replace values on
// present keys — a retirement per overwrite on the replace-node
// structures — so this is the reclamation pressure a value-serving
// workload adds on top of the paper's key-only churn.
func kvFigure(id, what, dsName string, paperSize int64) Figure {
	return Figure{
		ID:   id,
		Desc: what,
		Run: func(c Ctx) ([]report.Series, error) {
			c = c.withDefaults()
			cfg := harness.Config{
				DS:               dsName,
				KeyRange:         scaleSize(c, paperSize),
				Mix:              workload.KVStore,
				OpLatency:        true,
				ReclaimThreshold: scaleThreshold(c, 24576),
			}
			return SweepThreads(c, what, cfg, c.policySet(false), []Metric{
				mThroughput,
				OpLatencyMetric("get p50 (µs)", harness.OpGet, 0.50),
				OpLatencyMetric("get p99 (µs)", harness.OpGet, 0.99),
				OpLatencyMetric("put p99 (µs)", harness.OpPut, 0.99),
				OpLatencyMetric("overwrite p99 (µs)", harness.OpOverwrite, 0.99),
				OpLatencyMetric("delete p99 (µs)", harness.OpDelete, 0.99),
				mMaxRetire,
			})
		},
	}
}

// StoreMetric extracts one plotted value from a store trial result.
type StoreMetric struct {
	Name string
	Get  func(harness.StoreResult) float64
}

// StoreOpLatencyMetric builds a metric reading quantile q (in
// microseconds) of one store operation class's latency histogram; 0
// when the class was not profiled.
func StoreOpLatencyMetric(name string, class harness.StoreOpClass, q float64) StoreMetric {
	return StoreMetric{Name: name, Get: func(r harness.StoreResult) float64 {
		h := r.OpLat[class]
		if h == nil {
			return 0
		}
		return h.Quantile(q) / 1e3
	}}
}

// SweepStoreThreads runs cfgBase for every (policy, thread-count) pair
// and builds one series per metric — SweepThreads for store trials.
func SweepStoreThreads(c Ctx, title string, cfgBase harness.StoreConfig, policies []core.Policy, metrics []StoreMetric) ([]report.Series, error) {
	names := make([]string, len(policies))
	for i, p := range policies {
		names[i] = p.String()
	}
	out := make([]report.Series, len(metrics))
	for i, m := range metrics {
		out[i] = report.Series{
			Title:  fmt.Sprintf("%s — %s", title, m.Name),
			XLabel: "threads",
			Names:  names,
		}
	}
	for _, n := range c.Threads {
		cells := make([][]float64, len(metrics))
		for i := range cells {
			cells[i] = make([]float64, len(policies))
		}
		for pi, p := range policies {
			cfg := cfgBase
			cfg.Policy = p
			cfg.Threads = n
			cfg.Duration = c.Duration
			cfg.Seed = c.Seed
			c.Log("  %s: threads=%d policy=%v", title, n, p)
			res, err := harness.RunStore(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s [threads=%d policy=%v]: %w", title, n, p, err)
			}
			for mi, m := range metrics {
				cells[mi][pi] = m.Get(res)
			}
		}
		for mi := range metrics {
			out[mi].AddRow(fmt.Sprintf("%d", n), cells[mi])
		}
	}
	return out, nil
}

// storeServeFigure sweeps the KV-serving front: an 8-shard skiplist
// store under the StoreServe mix with Zipfian key popularity — single
// gets, batched multi-gets (one protected operation per shard per
// batch), value-returning scans, and 16–256 B payload writes whose
// replaced values retire through the core reclamation path. The series
// report the serving tails per policy plus the stale-read count: how
// often a value read lost to an overwrite's reclamation and retried,
// the read-side signature of each policy's retire-to-free latency.
func storeServeFigure() Figure {
	return Figure{
		ID:   "store-serve",
		Desc: "Store: 8-shard skiplist KV front, zipf(0.99) serving mix; throughput, per-class tails, stale reads",
		Run: func(c Ctx) ([]report.Series, error) {
			c = c.withDefaults()
			cfg := harness.StoreConfig{
				Keys:             scaleSize(c, 4_000_000),
				Shards:           8,
				Dist:             workload.Zipf,
				OpLatency:        true,
				ReclaimThreshold: scaleThreshold(c, 24576),
			}
			return SweepStoreThreads(c, "Store serve (skl ×8 shards, zipf)", cfg, c.policySet(false), []StoreMetric{
				{Name: "throughput (ops/s)", Get: func(r harness.StoreResult) float64 { return r.Throughput }},
				{Name: "served keys/s", Get: func(r harness.StoreResult) float64 { return r.KeyTput }},
				StoreOpLatencyMetric("get p50 (µs)", harness.SOpGet, 0.50),
				StoreOpLatencyMetric("get p99 (µs)", harness.SOpGet, 0.99),
				StoreOpLatencyMetric("mget p99 (µs)", harness.SOpMGet, 0.99),
				StoreOpLatencyMetric("scan p99 (µs)", harness.SOpScan, 0.99),
				StoreOpLatencyMetric("put p99 (µs)", harness.SOpPut, 0.99),
				{Name: "stale value reads", Get: func(r harness.StoreResult) float64 { return float64(r.Stale) }},
				{Name: "value checksum failures", Get: func(r harness.StoreResult) float64 { return float64(r.ValueErrors) }},
				{Name: "unreclaimed at run end (nodes)", Get: func(r harness.StoreResult) float64 { return float64(r.Unreclaimed) }},
			})
		},
	}
}

// pingFanoutFigure is the domain-group scaling experiment: the same
// 32-shard store swept over grouping factors g ∈ {1, shards/4, shards}
// at thread counts up to 64+, under the POP policies whose reclaimers
// ping. With one flat domain (g=1) every reclamation pass pings and
// scans all T registered threads; with g members a pass covers only the
// threads leased into that member — O(readers-per-shard-group), not
// O(total threads). The series plot throughput, the write tail (puts
// absorb reclamation pauses), and the measured per-pass ping/scan
// fan-out, so the claimed reduction is read directly off the figure
// rather than inferred.
func pingFanoutFigure() Figure {
	return Figure{
		ID:   "pingfanout",
		Desc: "Domain groups: 32-shard store, groups ∈ {1,8,32}, threads to 64+ — throughput, put p99, per-pass ping/scan fan-out",
		Run: func(c Ctx) ([]report.Series, error) {
			c = c.withDefaults()
			// The fan-out claim is about many threads; make sure the sweep
			// reaches 64 even under the default thread list.
			threads := append([]int(nil), c.Threads...)
			if threads[len(threads)-1] < 64 {
				threads = append(threads, 64)
			}
			const shards = 32
			groups := []int{1, shards / 4, shards}
			policies := []core.Policy{core.EpochPOP, core.HazardPtrPOP}
			if c.Policies != nil {
				policies = c.Policies
			}
			type variant struct {
				p core.Policy
				g int
			}
			var vs []variant
			names := make([]string, 0, len(policies)*len(groups))
			for _, p := range policies {
				for _, g := range groups {
					vs = append(vs, variant{p, g})
					names = append(names, fmt.Sprintf("%v g=%d", p, g))
				}
			}
			metrics := []StoreMetric{
				{Name: "throughput (ops/s)", Get: func(r harness.StoreResult) float64 { return r.Throughput }},
				StoreOpLatencyMetric("get p99 (µs)", harness.SOpGet, 0.99),
				StoreOpLatencyMetric("put p99 (µs)", harness.SOpPut, 0.99),
				{Name: "reclaim pings per pass", Get: func(r harness.StoreResult) float64 { return r.ReclaimDetail.PingsPerPass }},
				{Name: "reclaim threads scanned per pass", Get: func(r harness.StoreResult) float64 { return r.ReclaimDetail.ScannedPerPass }},
				{Name: "unreclaimed at run end (nodes)", Get: func(r harness.StoreResult) float64 { return float64(r.Unreclaimed) }},
			}
			out := make([]report.Series, len(metrics))
			for i, m := range metrics {
				out[i] = report.Series{
					Title:  fmt.Sprintf("Ping fan-out (skl ×%d shards, zipf) — %s", shards, m.Name),
					XLabel: "threads",
					Names:  names,
				}
			}
			for _, n := range threads {
				cells := make([][]float64, len(metrics))
				for i := range cells {
					cells[i] = make([]float64, len(vs))
				}
				for vi, v := range vs {
					c.Log("  pingfanout: threads=%d policy=%v groups=%d", n, v.p, v.g)
					res, err := harness.RunStore(harness.StoreConfig{
						Policy:   v.p,
						Threads:  n,
						Duration: c.Duration,
						Keys:     scaleSize(c, 4_000_000),
						Shards:   shards,
						Groups:   v.g,
						// Scan-free serving mix: a scan visits every shard and
						// leases its worker into every member, which would
						// flatten the per-member fan-out this figure measures.
						// The batched-put share exercises PutBatch's
						// one-protected-op-per-shard-group write path.
						Mix:              workload.StoreMix{GetPct: 60, PutPct: 15, MGetPct: 10, MPutPct: 10, DeletePct: 5},
						Dist:             workload.Zipf,
						OpLatency:        true,
						ReclaimThreshold: scaleThreshold(c, 24576),
						Seed:             c.Seed,
					})
					if err != nil {
						return nil, fmt.Errorf("pingfanout [threads=%d policy=%v groups=%d]: %w", n, v.p, v.g, err)
					}
					for mi, m := range metrics {
						cells[mi][vi] = m.Get(res)
					}
				}
				for mi := range metrics {
					out[mi].AddRow(fmt.Sprintf("%d", n), cells[mi])
				}
			}
			return out, nil
		},
	}
}

// ycsbFigure runs the six YCSB core workloads (Cooper et al., SoCC'10)
// against the KV front at the sweep's top thread count: one row per
// workload A–F, one column per policy. The mixes move the reclamation
// pressure around — A/F are overwrite- and RMW-heavy (a retirement per
// hit), B/C/D nearly read-only, D shifts popularity to the insert
// frontier (latest), E holds scans open across churn — so the figure
// shows which schedules separate the policies, not just how hard one
// mix can be pushed.
func ycsbFigure() Figure {
	return Figure{
		ID:   "ycsb",
		Desc: "YCSB A–F on the 8-shard skiplist store: throughput and per-class tails per policy across the six core mixes",
		Run: func(c Ctx) ([]report.Series, error) {
			c = c.withDefaults()
			threads := c.Threads[len(c.Threads)-1]
			policies := c.policySet(false)
			names := make([]string, len(policies))
			for i, p := range policies {
				names[i] = p.String()
			}
			metrics := []StoreMetric{
				{Name: "throughput (ops/s)", Get: func(r harness.StoreResult) float64 { return r.Throughput }},
				StoreOpLatencyMetric("get p99 (µs)", harness.SOpGet, 0.99),
				StoreOpLatencyMetric("put p99 (µs)", harness.SOpPut, 0.99),
				StoreOpLatencyMetric("rmw p99 (µs)", harness.SOpRMW, 0.99),
				StoreOpLatencyMetric("scan p99 (µs)", harness.SOpScan, 0.99),
				{Name: "value checksum failures", Get: func(r harness.StoreResult) float64 { return float64(r.ValueErrors) }},
				{Name: "unreclaimed at run end (nodes)", Get: func(r harness.StoreResult) float64 { return float64(r.Unreclaimed) }},
			}
			out := make([]report.Series, len(metrics))
			for i, m := range metrics {
				out[i] = report.Series{
					Title:  fmt.Sprintf("YCSB A–F (skl ×8 shards, %d threads) — %s", threads, m.Name),
					XLabel: "workload",
					Names:  names,
				}
			}
			for _, w := range workload.YCSBWorkloads() {
				cells := make([][]float64, len(metrics))
				for i := range cells {
					cells[i] = make([]float64, len(policies))
				}
				for pi, p := range policies {
					c.Log("  ycsb: workload=%s policy=%v", w.Name, p)
					res, err := harness.RunStore(harness.StoreConfig{
						Policy:           p,
						Threads:          threads,
						Duration:         c.Duration,
						Keys:             scaleSize(c, 4_000_000),
						Shards:           8,
						Mix:              w.Mix,
						Dist:             w.Dist,
						OpLatency:        true,
						ReclaimThreshold: scaleThreshold(c, 24576),
						Seed:             c.Seed,
					})
					if err != nil {
						return nil, fmt.Errorf("ycsb [%s policy=%v]: %w", w.Name, p, err)
					}
					for mi, m := range metrics {
						cells[mi][pi] = m.Get(res)
					}
				}
				for mi := range metrics {
					out[mi].AddRow(w.Name, cells[mi])
				}
			}
			return out, nil
		},
	}
}

// hotpathFigure isolates the value-encoding fast path: the same YCSB-B
// serving run (95% get / 5% overwrite, zipf) at 64 threads on the
// skiplist and hash-table backings, once with 6-byte values — every one
// inline-encoded into the map word, no arena traffic, no stale-read
// window — and once with 64-byte values through the arena path. Rows
// are policies, columns the backing × encoding variants, so the
// inline-vs-arena read win (get p50) and the allocation diet
// (allocs/op, alloc bytes/op) are read directly off each row.
func hotpathFigure() Figure {
	return Figure{
		ID:   "hotpath",
		Desc: "Hot path: YCSB-B at 64 threads, inline 6 B vs arena 64 B values on skl and hmht — get p50/p99, allocs/op",
		Run: func(c Ctx) ([]report.Series, error) {
			c = c.withDefaults()
			threads := c.Threads[len(c.Threads)-1]
			if threads < 64 {
				threads = 64
			}
			w, err := workload.ParseYCSB("B")
			if err != nil {
				return nil, err
			}
			type variant struct {
				backing string
				valLen  int
				label   string
			}
			vs := []variant{
				{store.BackingSkipList, 6, "skl inline 6B"},
				{store.BackingSkipList, 64, "skl arena 64B"},
				{store.BackingHashTable, 6, "hmht inline 6B"},
				{store.BackingHashTable, 64, "hmht arena 64B"},
			}
			names := make([]string, len(vs))
			for i, v := range vs {
				names[i] = v.label
			}
			policies := c.policySet(false)
			metrics := []StoreMetric{
				{Name: "throughput (ops/s)", Get: func(r harness.StoreResult) float64 { return r.Throughput }},
				StoreOpLatencyMetric("get p50 (µs)", harness.SOpGet, 0.50),
				StoreOpLatencyMetric("get p99 (µs)", harness.SOpGet, 0.99),
				StoreOpLatencyMetric("put p99 (µs)", harness.SOpPut, 0.99),
				{Name: "allocs/op", Get: func(r harness.StoreResult) float64 { return r.AllocsPerOp }},
				{Name: "alloc bytes/op", Get: func(r harness.StoreResult) float64 { return r.AllocBytesPerOp }},
				{Name: "stale value reads", Get: func(r harness.StoreResult) float64 { return float64(r.Stale) }},
				{Name: "value checksum failures", Get: func(r harness.StoreResult) float64 { return float64(r.ValueErrors) }},
			}
			out := make([]report.Series, len(metrics))
			for i, m := range metrics {
				out[i] = report.Series{
					Title:  fmt.Sprintf("Hot path (YCSB B, %d threads, 8 shards) — %s", threads, m.Name),
					XLabel: "policy",
					Names:  names,
				}
			}
			for _, p := range policies {
				cells := make([][]float64, len(metrics))
				for i := range cells {
					cells[i] = make([]float64, len(vs))
				}
				for vi, v := range vs {
					c.Log("  hotpath: policy=%v %s", p, v.label)
					res, err := harness.RunStore(harness.StoreConfig{
						Policy:           p,
						Threads:          threads,
						Duration:         c.Duration,
						Keys:             scaleSize(c, 4_000_000),
						Shards:           8,
						Backing:          v.backing,
						Mix:              w.Mix,
						Dist:             w.Dist,
						ValueMin:         v.valLen,
						ValueMax:         v.valLen,
						OpLatency:        true,
						ReclaimThreshold: scaleThreshold(c, 24576),
						Seed:             c.Seed,
					})
					if err != nil {
						return nil, fmt.Errorf("hotpath [policy=%v %s]: %w", p, v.label, err)
					}
					for mi, m := range metrics {
						cells[mi][vi] = m.Get(res)
					}
				}
				for mi := range metrics {
					out[mi].AddRow(p.String(), cells[mi])
				}
			}
			return out, nil
		},
	}
}

// ServeMetric extracts one plotted value from a serve trial result.
type ServeMetric struct {
	Name string
	Get  func(harness.ServeResult) float64
}

// ServeLatencyMetric builds a metric reading quantile q (µs) of a
// client-observed latency histogram chosen by pick.
func ServeLatencyMetric(name string, pick func(harness.ServeResult) *report.Histogram, q float64) ServeMetric {
	return ServeMetric{Name: name, Get: func(r harness.ServeResult) float64 {
		h := pick(r)
		if h == nil {
			return 0
		}
		return h.Quantile(q) / 1e3
	}}
}

// SweepServeConns runs cfgBase for every (policy, connection-count)
// pair — the serving front's capacity view: how client-observed tails
// and admission waits move as connections overcommit the slot budget.
func SweepServeConns(c Ctx, title string, cfgBase harness.ServeConfig, conns []int, policies []core.Policy, metrics []ServeMetric) ([]report.Series, error) {
	names := make([]string, len(policies))
	for i, p := range policies {
		names[i] = p.String()
	}
	out := make([]report.Series, len(metrics))
	for i, m := range metrics {
		out[i] = report.Series{
			Title:  fmt.Sprintf("%s — %s", title, m.Name),
			XLabel: "conns",
			Names:  names,
		}
	}
	for _, n := range conns {
		cells := make([][]float64, len(metrics))
		for i := range cells {
			cells[i] = make([]float64, len(policies))
		}
		for pi, p := range policies {
			cfg := cfgBase
			cfg.Policy = p
			cfg.Conns = n
			cfg.Duration = c.Duration
			cfg.Seed = c.Seed
			c.Log("  %s: conns=%d policy=%v", title, n, p)
			res, err := harness.RunServe(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s [conns=%d policy=%v]: %w", title, n, p, err)
			}
			for mi, m := range metrics {
				cells[mi][pi] = m.Get(res)
			}
		}
		for mi := range metrics {
			out[mi].AddRow(fmt.Sprintf("%d", n), cells[mi])
		}
	}
	return out, nil
}

// serveMetrics is the canonical serve-trial metric set: throughput,
// client-observed get/set tails, the admission-queue wait distribution,
// the coalescing counters, and the correctness columns (checksum
// failures and leaked leases, both of which must be zero).
func ServeMetrics() []ServeMetric {
	getH := func(r harness.ServeResult) *report.Histogram { return r.GetLat }
	setH := func(r harness.ServeResult) *report.Histogram { return r.SetLat }
	admH := func(r harness.ServeResult) *report.Histogram { return r.AdmWait }
	return []ServeMetric{
		{Name: "throughput (ops/s)", Get: func(r harness.ServeResult) float64 { return r.Throughput }},
		ServeLatencyMetric("get latency p50 (µs)", getH, 0.50),
		ServeLatencyMetric("get latency p99 (µs)", getH, 0.99),
		{Name: "get latency max (µs)", Get: func(r harness.ServeResult) float64 {
			if r.GetLat == nil {
				return 0
			}
			return float64(r.GetLat.Max()) / 1e3
		}},
		ServeLatencyMetric("set latency p50 (µs)", setH, 0.50),
		ServeLatencyMetric("set latency p99 (µs)", setH, 0.99),
		ServeLatencyMetric("admission wait p50 (µs)", admH, 0.50),
		ServeLatencyMetric("admission wait p99 (µs)", admH, 0.99),
		{Name: "admission waits (queued bursts)", Get: func(r harness.ServeResult) float64 { return float64(r.Server.AdmissionWaits) }},
		{Name: "coalesced gets", Get: func(r harness.ServeResult) float64 { return float64(r.Server.CoalescedGets) }},
		{Name: "coalesced batches", Get: func(r harness.ServeResult) float64 { return float64(r.Server.CoalescedBatches) }},
		{Name: "value checksum failures", Get: func(r harness.ServeResult) float64 { return float64(r.ValueErrors) }},
		{Name: "leaked leases after shutdown", Get: func(r harness.ServeResult) float64 { return float64(r.Lifecycle.Leased) }},
	}
}

// serveFigure sweeps the wire-protocol serving front: a live popserve
// instance with 4 admission slots, swept from slot-parity up to 8×
// overcommitted connections under a zipf get/set mix. Client-observed
// tails include protocol framing, burst admission queueing, and the
// coalescing window — the end-to-end serving cost of each reclamation
// policy, not just its in-process op latency.
func serveFigure() Figure {
	return Figure{
		ID:   "serve",
		Desc: "Serving front: live TCP memcached-text server, conns ≫ slots; client tails, admission waits, coalescing",
		Run: func(c Ctx) ([]report.Series, error) {
			c = c.withDefaults()
			const slots = 4
			cfg := harness.ServeConfig{
				Slots:  slots,
				Keys:   scaleSize(c, 1_000_000),
				Shards: 4,
				Dist:   workload.Zipf,
			}
			return SweepServeConns(c, fmt.Sprintf("Serve (skl ×4 shards, %d slots, zipf)", slots),
				cfg, []int{slots, 4 * slots, 8 * slots}, c.policySet(false), ServeMetrics())
		},
	}
}

// nbrOverwriteFigure is the NBR overwrite-tail ablation the per-op
// histograms motivated: overwrites are where NBR restart storms live,
// because an overwrite's write phase (mark + link CAS) can be
// neutralized and restarted arbitrarily often under reclamation
// pressure. The sweep holds the structure and key range fixed and
// dials only OverwritePct: each row reports throughput, the overwrite
// p99, NBR's neutralization-induced restarts, and publish-handler runs
// (the ack side of neutralization), so the restart storm's onset and
// cost are directly comparable against the restart-free schemes.
func nbrOverwriteFigure() Figure {
	return Figure{
		ID:   "nbr-overwrite",
		Desc: "Ablation: OverwritePct ∈ {0,5,15,30,50} on HML — overwrite p99, NBR restarts/neutralizations vs restart-free schemes",
		Run: func(c Ctx) ([]report.Series, error) {
			c = c.withDefaults()
			threads := c.Threads[len(c.Threads)-1]
			if threads < 2 {
				threads = 2
			}
			policies := []core.Policy{core.EBR, core.NBR, core.HazardPtrPOP, core.EpochPOP}
			if c.Policies != nil {
				policies = c.Policies
			}
			names := make([]string, len(policies))
			for i, p := range policies {
				names[i] = p.String()
			}
			mk := func(metric string) report.Series {
				return report.Series{
					Title:  fmt.Sprintf("NBR overwrite ablation (HML, %d threads) — %s", threads, metric),
					XLabel: "overwritePct",
					Names:  names,
				}
			}
			thr, p99 := mk("throughput (ops/s)"), mk("overwrite p99 (µs)")
			restarts, pubs := mk("NBR restarts"), mk("publish-handler runs")
			for _, pct := range []int{0, 5, 15, 30, 50} {
				cells := [4][]float64{}
				for i := range cells {
					cells[i] = make([]float64, len(policies))
				}
				for pi, p := range policies {
					c.Log("  nbr-overwrite: pct=%d policy=%v", pct, p)
					res, err := harness.Run(harness.Config{
						DS:               harness.DSHarrisMichaelList,
						Policy:           p,
						Threads:          threads,
						Duration:         c.Duration,
						KeyRange:         2048,
						Mix:              workload.Mix{ContainsPct: 100 - pct, OverwritePct: pct},
						OpLatency:        true,
						ReclaimThreshold: scaleThreshold(c, 2048),
						Seed:             c.Seed,
					})
					if err != nil {
						return nil, err
					}
					cells[0][pi] = res.Throughput
					if h := res.OpLat[harness.OpOverwrite]; h != nil {
						cells[1][pi] = h.Quantile(0.99) / 1e3
					}
					cells[2][pi] = float64(res.Reclaim.Restarts)
					cells[3][pi] = float64(res.Reclaim.Publishes)
				}
				x := fmt.Sprintf("%d", pct)
				thr.AddRow(x, cells[0])
				p99.AddRow(x, cells[1])
				restarts.AddRow(x, cells[2])
				pubs.AddRow(x, cells[3])
			}
			return []report.Series{thr, p99, restarts, pubs}, nil
		},
	}
}

// churnFigure sweeps worker turnover: the KV-serving mix on the
// skiplist with the elastic harness mode, dialing how many operations
// each thread incarnation performs before releasing its slot (and
// donating its retire list) — from no churn down to a lease every 1K
// ops. The series show what thread turnover costs each policy: the
// read and overwrite tails (a release wipes no published work, but
// orphan adoption batches garbage onto whichever thread reclaims
// next), end-of-run garbage, and the lifecycle counters (releases,
// orphan nodes donated/adopted) that make the churn explainable.
func churnFigure() Figure {
	return Figure{
		ID:   "churn",
		Desc: "Elastic serving: worker churn (release/respawn) on SKL KV mix — tails, orphan adoption, memory under turnover",
		Run: func(c Ctx) ([]report.Series, error) {
			c = c.withDefaults()
			threads := c.Threads[len(c.Threads)-1]
			if threads < 2 {
				threads = 2
			}
			policies := c.policySet(false)
			names := make([]string, len(policies))
			for i, p := range policies {
				names[i] = p.String()
			}
			mk := func(metric string) report.Series {
				return report.Series{
					Title:  fmt.Sprintf("Worker churn (SKL kv, %d threads) — %s", threads, metric),
					XLabel: "opsPerLease",
					Names:  names,
				}
			}
			series := []report.Series{
				mk("throughput (ops/s)"),
				mk("get latency p99 (µs)"),
				mk("overwrite latency p99 (µs)"),
				mk("unreclaimed at run end (nodes)"),
				mk("thread releases"),
				mk("orphan nodes adopted"),
			}
			for _, afterOps := range []uint64{0, 20000, 5000, 1000} {
				cells := make([][]float64, len(series))
				for i := range cells {
					cells[i] = make([]float64, len(policies))
				}
				for pi, p := range policies {
					c.Log("  churn: opsPerLease=%d policy=%v", afterOps, p)
					res, err := harness.Run(harness.Config{
						DS:               harness.DSSkipList,
						Policy:           p,
						Threads:          threads,
						Duration:         c.Duration,
						KeyRange:         scaleSize(c, 1_000_000),
						Mix:              workload.KVStore,
						Churn:            workload.Churn{AfterOps: afterOps},
						OpLatency:        true,
						ReclaimThreshold: scaleThreshold(c, 24576),
						Seed:             c.Seed,
					})
					if err != nil {
						return nil, err
					}
					cells[0][pi] = res.Throughput
					if h := res.OpLat[harness.OpGet]; h != nil {
						cells[1][pi] = h.Quantile(0.99) / 1e3
					}
					if h := res.OpLat[harness.OpOverwrite]; h != nil {
						cells[2][pi] = h.Quantile(0.99) / 1e3
					}
					cells[3][pi] = float64(res.Unreclaimed)
					cells[4][pi] = float64(res.Lifecycle.Releases)
					cells[5][pi] = float64(res.Lifecycle.OrphansAdopted)
				}
				x := "none"
				if afterOps > 0 {
					x = fmt.Sprintf("%d", afterOps)
				}
				for i := range series {
					series[i].AddRow(x, cells[i])
				}
			}
			return series, nil
		},
	}
}

// All returns every figure in presentation order.
func All() []Figure {
	return []Figure{
		throughputAndMemory("fig1a", "Fig 1a: DGT (ext. BST) 200K update-heavy", harness.DSExternalBST, 200_000, false, workload.UpdateHeavy),
		throughputAndMemory("fig1b", "Fig 1b: HMHT (hash table) 6M update-heavy", harness.DSHashTable, 6_000_000, false, workload.UpdateHeavy),
		throughputAndMemory("fig1c", "Fig 1c: ABT ((a,b)-tree) 20M update-heavy", harness.DSABTree, 20_000_000, false, workload.UpdateHeavy),
		throughputAndMemory("fig2a", "Fig 2a: HML (Harris-Michael list) 2K update-heavy", harness.DSHarrisMichaelList, 2_000, true, workload.UpdateHeavy),
		throughputAndMemory("fig2b", "Fig 2b: LL (lazy list) 2K update-heavy", harness.DSLazyList, 2_000, true, workload.UpdateHeavy),
		throughputOnly("fig3a", "Fig 3a: ABT 20M read-heavy", harness.DSABTree, 20_000_000, workload.ReadHeavy),
		throughputOnly("fig3b", "Fig 3b: DGT 200K read-heavy", harness.DSExternalBST, 200_000, workload.ReadHeavy),
		longReadsFigure(),
		appendixFigure("fig5", "Fig 5: ABT 20M (appendix D)", harness.DSABTree, 20_000_000, false, false),
		appendixFigure("fig6", "Fig 6: DGT 2M (appendix D)", harness.DSExternalBST, 2_000_000, false, false),
		appendixFigure("fig7", "Fig 7: HT 6M (appendix D)", harness.DSHashTable, 6_000_000, false, false),
		appendixFigure("fig8", "Fig 8: HML 2K (appendix D)", harness.DSHarrisMichaelList, 2_000, true, false),
		appendixFigure("fig9", "Fig 9: LL 2K (appendix D)", harness.DSLazyList, 2_000, true, false),
		appendixFigure("fig10", "Fig 10: HML 2K + Crystalline (appendix E)", harness.DSHarrisMichaelList, 2_000, true, true),
		appendixFigure("fig11", "Fig 11: HT 6M + Crystalline (appendix E)", harness.DSHashTable, 6_000_000, false, true),
		throughputAndMemory("skl-update", "SKL (skiplist) 1M update-heavy", harness.DSSkipList, 1_000_000, false, workload.UpdateHeavy),
		scanHeavyFigure("skl-scan", "SKL (skiplist) 1M scan-heavy: range queries under churn, throughput + scan tail latency + memory", harness.DSSkipList, 1_000_000),
		scanHeavyFigure("abt-scan", "ABT ((a,b)-tree) 1M scan-heavy: whole-leaf range scans under churn, throughput + scan tail latency + memory", harness.DSABTree, 1_000_000),
		kvFigure("skl-kv", "SKL (skiplist) 1M KV-serving mix: get/put/overwrite/delete with per-op-class tail latency", harness.DSSkipList, 1_000_000),
		kvFigure("hmht-kv", "HMHT (hash table) 6M KV-serving mix: get/put/overwrite/delete with per-op-class tail latency", harness.DSHashTable, 6_000_000),
		storeServeFigure(),
		pingFanoutFigure(),
		ycsbFigure(),
		hotpathFigure(),
		serveFigure(),
		nbrOverwriteFigure(),
		churnFigure(),
		timelineFigure(),
		readCostFigure(),
		stallFigure(),
		ablateThreshold(),
		ablateEpochFreq(),
		ablateCMult(),
	}
}

// Get resolves a figure by id.
func Get(id string) (Figure, bool) {
	for _, f := range All() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

// TimelineSeries renders a sampled timeline as one series: a row per
// sample, columns for the window's op count, frees, pings, the
// unreclaimed watermark, stalled readers, and the per-window ping-ack
// p99 — the CSV/TSV form of the live /timeline endpoint, for plotting
// a single run over time.
func TimelineSeries(title string, tl *telemetry.Timeline) report.Series {
	s := report.Series{
		Title:  title,
		XLabel: "t_ms",
		Names:  []string{"ops", "frees", "pings", "unreclaimed", "stalled", "ping_ack_p99_us"},
	}
	for i := range tl.Samples {
		sm := &tl.Samples[i]
		s.AddRow(fmt.Sprintf("%.0f", sm.At), []float64{
			float64(sm.Ops),
			float64(sm.Stats.Frees),
			float64(sm.Stats.PingsSent),
			float64(sm.Unreclaimed),
			float64(sm.Stalled),
			sm.PingAckP99,
		})
	}
	return s
}

// timelineFigure is the observability experiment: a YCSB-A run on the
// grouped store, sampled live, with a stalled-reader chaos burst
// injected for the middle quarter of the run. The series plot the
// unreclaimed watermark, per-window throughput, per-window ping-ack
// p99 and the stalled-reader gauge over time, one column per policy —
// the §5.1.2 story as a live trace: garbage climbs while the stalled
// readers pin their windows, pings flush it back down after the burst
// lifts (epoch-style schemes recover late; POP schemes recover on the
// next pass).
func timelineFigure() Figure {
	return Figure{
		ID:   "timeline",
		Desc: "Telemetry: YCSB-A grouped store sampled live under a stalled-reader burst — unreclaimed watermark, throughput, ping-ack p99 over time",
		Run: func(c Ctx) ([]report.Series, error) {
			c = c.withDefaults()
			threads := c.Threads[len(c.Threads)-1]
			if threads < 4 {
				threads = 4
			}
			policies := []core.Policy{core.EBR, core.NBR, core.HazardPtrPOP, core.EpochPOP}
			if c.Policies != nil {
				policies = c.Policies
			}
			w, err := workload.ParseYCSB("A")
			if err != nil {
				return nil, err
			}
			every := c.Duration / 24
			if every < time.Millisecond {
				every = time.Millisecond
			}
			names := make([]string, len(policies))
			tls := make([]*telemetry.Timeline, len(policies))
			for i, p := range policies {
				names[i] = p.String()
				c.Log("  timeline: policy=%v (sample %v, burst %v..%v)", p, every, c.Duration/4, c.Duration/2)
				res, err := harness.RunStore(harness.StoreConfig{
					Policy:   p,
					Threads:  threads,
					Duration: c.Duration,
					Keys:     scaleSize(c, 4_000_000),
					Shards:   8,
					Groups:   8,
					Mix:      w.Mix,
					Dist:     w.Dist,
					// Stalled readers only: the burst must be attributable to
					// pinned read windows, not GC or lease churn.
					Chaos:            chaos.Config{Stalls: 2},
					ChaosStart:       c.Duration / 4,
					ChaosStop:        c.Duration / 2,
					SampleEvery:      every,
					ReclaimThreshold: scaleThreshold(c, 24576),
					Seed:             c.Seed,
				})
				if err != nil {
					return nil, fmt.Errorf("timeline [policy=%v]: %w", p, err)
				}
				if res.Timeline == nil {
					return nil, fmt.Errorf("timeline [policy=%v]: sampled run returned no timeline", p)
				}
				tls[i] = res.Timeline
			}
			mk := func(metric string) report.Series {
				return report.Series{
					Title:  fmt.Sprintf("Timeline (YCSB A, skl ×8 shards g8, %d threads, stall burst) — %s", threads, metric),
					XLabel: "t_ms",
					Names:  names,
				}
			}
			series := []report.Series{
				mk("unreclaimed watermark (nodes)"),
				mk("window ops"),
				mk("window ping-ack p99 (µs)"),
				mk("stalled readers"),
			}
			rows := 0
			for _, tl := range tls {
				if len(tl.Samples) > rows {
					rows = len(tl.Samples)
				}
			}
			// Policies finish with slightly different sample counts; carry
			// each run's last sample forward so rows stay aligned by index.
			for ri := 0; ri < rows; ri++ {
				cells := make([][]float64, len(series))
				for i := range cells {
					cells[i] = make([]float64, len(policies))
				}
				for pi, tl := range tls {
					si := ri
					if si >= len(tl.Samples) {
						si = len(tl.Samples) - 1
					}
					sm := &tl.Samples[si]
					cells[0][pi] = float64(sm.Unreclaimed)
					cells[1][pi] = float64(sm.Ops)
					cells[2][pi] = sm.PingAckP99
					cells[3][pi] = float64(sm.Stalled)
				}
				x := fmt.Sprintf("%d", (int64(ri)+1)*every.Milliseconds())
				for i := range series {
					series[i].AddRow(x, cells[i])
				}
			}
			return series, nil
		},
	}
}
