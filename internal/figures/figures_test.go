package figures_test

import (
	"strings"
	"testing"
	"time"

	"pop/internal/core"
	"pop/internal/figures"
)

// fastCtx keeps figure smoke-tests quick: two policies, one thread count,
// tiny trials.
func fastCtx() figures.Ctx {
	return figures.Ctx{
		Duration: 10 * time.Millisecond,
		Threads:  []int{2},
		Scale:    2048,
		Seed:     1,
		Policies: []core.Policy{core.HP, core.HazardPtrPOP},
	}
}

func TestAllFiguresHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range figures.All() {
		if f.ID == "" || f.Desc == "" {
			t.Fatalf("figure with empty id/desc: %+v", f)
		}
		if seen[f.ID] {
			t.Fatalf("duplicate figure id %q", f.ID)
		}
		seen[f.ID] = true
	}
	if len(seen) < 19 {
		t.Fatalf("only %d figures registered", len(seen))
	}
}

func TestGetResolvesEveryID(t *testing.T) {
	for _, f := range figures.All() {
		if got, ok := figures.Get(f.ID); !ok || got.ID != f.ID {
			t.Fatalf("Get(%q) failed", f.ID)
		}
	}
	if _, ok := figures.Get("nope"); ok {
		t.Fatal("Get accepted an unknown id")
	}
}

// TestEveryFigureRuns executes each figure once at minimal scale and
// sanity-checks the emitted series.
func TestEveryFigureRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweeps are slow in -short mode")
	}
	for _, f := range figures.All() {
		f := f
		t.Run(f.ID, func(t *testing.T) {
			ctx := fastCtx()
			if f.ID == "ablate-c" {
				ctx.Policies = nil // ablate-c is EpochPOP-only by design
			}
			series, err := f.Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(series) == 0 {
				t.Fatal("no series emitted")
			}
			for _, s := range series {
				if len(s.Rows) == 0 {
					t.Fatalf("series %q has no rows", s.Title)
				}
				if len(s.Names) == 0 {
					t.Fatalf("series %q has no columns", s.Title)
				}
				for _, r := range s.Rows {
					if len(r.Cells) != len(s.Names) {
						t.Fatalf("series %q row %q has %d cells for %d columns",
							s.Title, r.X, len(r.Cells), len(s.Names))
					}
				}
			}
		})
	}
}

// TestThroughputFigureShape checks that a throughput figure produces one
// row per thread count with positive values.
func TestThroughputFigureShape(t *testing.T) {
	f, _ := figures.Get("fig2a")
	ctx := fastCtx()
	ctx.Threads = []int{1, 2}
	series, err := f.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	thr := series[0]
	if !strings.Contains(thr.Title, "throughput") {
		t.Fatalf("first series is %q, want throughput", thr.Title)
	}
	if len(thr.Rows) != 2 {
		t.Fatalf("%d rows, want 2 (thread counts)", len(thr.Rows))
	}
	for _, r := range thr.Rows {
		for i, v := range r.Cells {
			if v <= 0 {
				t.Fatalf("non-positive throughput for %s at threads=%s", thr.Names[i], r.X)
			}
		}
	}
}

// TestScanFiguresEmitLatencyQuantiles: both scan-heavy figures (one per
// RangeScanner) must exist and carry positive p50/p99 scan-latency
// series — the tail metric this repo adds on top of the paper's plots.
func TestScanFiguresEmitLatencyQuantiles(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweeps are slow in -short mode")
	}
	for _, id := range []string{"skl-scan", "abt-scan"} {
		f, ok := figures.Get(id)
		if !ok {
			t.Fatalf("figure %q not registered", id)
		}
		series, err := f.Run(fastCtx())
		if err != nil {
			t.Fatal(err)
		}
		found := 0
		for _, s := range series {
			if !strings.Contains(s.Title, "scan p50") && !strings.Contains(s.Title, "scan p99") {
				continue
			}
			found++
			for _, r := range s.Rows {
				for i, v := range r.Cells {
					if v <= 0 {
						t.Fatalf("%s: %q: non-positive latency for %s at threads=%s", id, s.Title, s.Names[i], r.X)
					}
				}
			}
		}
		if found != 2 {
			t.Fatalf("%s emitted %d latency series, want p50 and p99", id, found)
		}
	}
}
