package chaos

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pop/internal/core"
	"pop/internal/rng"
	"pop/internal/store"
	"pop/internal/workload"
)

// storm builds a store, runs verified workers alongside the full
// injector bundle, and checks every invariant at the end.
func storm(t *testing.T, p core.Policy) {
	const (
		workers = 2
		nKeys   = 2048
		runFor  = 80 * time.Millisecond
	)
	cfg := Config{
		Stalls:     1,
		StallHold:  500 * time.Microsecond,
		GCPressure: true,
		GCEvery:    2 * time.Millisecond,
		Churners:   1,
		ChurnOps:   64,
		Hotspot:    true,
		FlipEvery:  time.Millisecond,
		Seed:       uint64(p) + 1,
	}
	// Workers + injectors + the post-run checker thread.
	d := core.NewDomain(p, workers+cfg.Slots()+1, &core.Options{ReclaimThreshold: 128})
	s, err := store.New(d, store.Config{Shards: 4, ExpectedKeysPerShard: nKeys/4 + 1})
	if err != nil {
		t.Fatal(err)
	}
	keyTab := make([]string, nKeys)
	hkTab := make([]int64, nKeys)
	for i := range keyTab {
		keyTab[i] = workload.KeyString(int64(i))
		hkTab[i] = store.KeyHash(keyTab[i])
	}

	// Prefill half the population with valid values.
	seedTh, err := s.AcquireThread()
	if err != nil {
		t.Fatal(err)
	}
	var vbuf []byte
	for i := 0; i < nKeys/2; i++ {
		vbuf = workload.AppendValueBytes(vbuf[:0], hkTab[i], uint32(i)+1, 32)
		s.Put(seedTh, keyTab[i], vbuf)
	}
	s.ReleaseThread(seedTh)

	r, err := Start(cfg, s, keyTab)
	if err != nil {
		t.Fatal(err)
	}

	// Verified workers: every served value must pass its checksum even
	// while the injectors stall, churn, flip and force GCs.
	var (
		stop      atomic.Bool
		valueErrs atomic.Uint64
		wg        sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		th, err := s.AcquireThread()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id int, th *core.Thread) {
			defer wg.Done()
			rg := rng.New(uint64(id)*0x9e3779b97f4a7c15 + uint64(p) + 3)
			var gbuf, wbuf []byte
			tag := uint32(id) << 20
			for !stop.Load() {
				idx := rg.Intn(nKeys)
				if rg.Pct() < 60 {
					if v, ok := s.Get(th, keyTab[idx], gbuf); ok {
						gbuf = v
						if !workload.ValueBytesValid(hkTab[idx], v) {
							valueErrs.Add(1)
						}
					}
				} else {
					tag++
					wbuf = workload.AppendValueBytes(wbuf[:0], hkTab[idx], tag, 48)
					s.Put(th, keyTab[idx], wbuf)
				}
			}
			th.Flush()
			s.ReleaseThread(th)
		}(w, th)
	}

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()
	st := r.Stop()

	// The injectors must actually have injected; an idle injector would
	// silently weaken every storm built on this package.
	if st.Stalls == 0 {
		t.Error("stalled-reader injector completed no stall windows")
	}
	if st.GCCycles == 0 {
		t.Error("GC-pressure injector forced no GC cycles")
	}
	if st.Leases == 0 {
		t.Error("churn injector completed no lease cycles")
	}
	if st.Flips == 0 {
		t.Error("hotspot injector flipped no shards")
	}
	if st.Ops == 0 {
		t.Error("injectors issued no store ops")
	}

	iv := Invariants{Policy: p}
	checker, err := s.AcquireThread()
	if err != nil {
		t.Fatal(err)
	}
	var vs []Violation
	vs = append(vs, iv.CheckValueErrors(valueErrs.Load())...)
	vs = append(vs, iv.CheckValues(checker, s, keyTab)...)
	// Flush until quiescent (the first pass adopts donated orphans).
	for i := 0; i < 3; i++ {
		checker.Flush()
		if d.Unreclaimed() == 0 {
			break
		}
	}
	vs = append(vs, iv.CheckDrained(d)...)
	vs = append(vs, iv.CheckCounters(d.Stats())...)
	vs = append(vs, iv.CheckLifecycle(d.Lifecycle(), 1)...) // checker still leased
	for _, v := range vs {
		t.Errorf("invariant violated: %s", v)
	}
	s.ReleaseThread(checker)
}

// TestChaosStorm runs the full injector bundle against every policy —
// the CI -race chaos suite.
func TestChaosStorm(t *testing.T) {
	for _, p := range core.Policies() {
		p := p
		t.Run(p.String(), func(t *testing.T) { storm(t, p) })
	}
}

func TestConfigSlotsAndEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero Config reports Enabled")
	}
	if got := (Config{}).Slots(); got != 0 {
		t.Errorf("zero Config Slots = %d", got)
	}
	c := Default()
	if !c.Enabled() {
		t.Error("Default not Enabled")
	}
	if got := c.Slots(); got != 3 { // 1 stall + 1 churner + hotspot
		t.Errorf("Default Slots = %d, want 3", got)
	}
}

// TestStartFailsWithoutCapacity: a domain too small for the injectors
// must fail Start cleanly, releasing any partially leased handles.
func TestStartFailsWithoutCapacity(t *testing.T) {
	d := core.NewDomain(core.EBR, 1, nil)
	s, err := store.New(d, store.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{workload.KeyString(0), workload.KeyString(1)}
	if _, err := Start(Config{Stalls: 1, Hotspot: true}, s, keys); err == nil {
		t.Fatal("Start succeeded with 1 slot for 2 injectors")
	}
	// The partial lease must have been returned.
	th, err := s.AcquireThread()
	if err != nil {
		t.Fatalf("slot not returned after failed Start: %v", err)
	}
	s.ReleaseThread(th)
}
