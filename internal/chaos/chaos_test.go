package chaos

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pop/internal/core"
	"pop/internal/rng"
	"pop/internal/store"
	"pop/internal/workload"
)

// storm builds a store over a domain group with the given member
// count, runs verified workers alongside the full injector bundle, and
// checks every invariant at the end. members=1 is the ungrouped
// degenerate case; members=shards is fully grouped (one reclamation
// domain per shard).
func storm(t *testing.T, p core.Policy, members int) {
	const (
		workers = 2
		shards  = 4
		nKeys   = 2048
		runFor  = 80 * time.Millisecond
	)
	cfg := Config{
		Stalls:     1,
		StallHold:  500 * time.Microsecond,
		GCPressure: true,
		GCEvery:    2 * time.Millisecond,
		Churners:   1,
		ChurnOps:   64,
		Hotspot:    true,
		FlipEvery:  time.Millisecond,
		Seed:       uint64(p) + 1,
	}
	// Workers + injectors + the post-run checker slot.
	g := core.NewDomainGroup(p, members, workers+cfg.Slots()+1, &core.Options{ReclaimThreshold: 128})
	s, err := store.New(g, store.Config{Shards: shards, ExpectedKeysPerShard: nKeys/shards + 1})
	if err != nil {
		t.Fatal(err)
	}
	keyTab := make([]string, nKeys)
	hkTab := make([]int64, nKeys)
	for i := range keyTab {
		keyTab[i] = workload.KeyString(int64(i))
		hkTab[i] = store.KeyHash(keyTab[i])
	}

	// Prefill half the population with valid values.
	seedH, err := s.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	var vbuf []byte
	for i := 0; i < nKeys/2; i++ {
		vbuf = workload.AppendValueBytes(vbuf[:0], hkTab[i], uint32(i)+1, 32)
		s.Put(seedH, keyTab[i], vbuf)
	}
	s.Release(seedH)

	r, err := Start(cfg, s, keyTab)
	if err != nil {
		t.Fatal(err)
	}

	// Verified workers: every served value must pass its checksum even
	// while the injectors stall, churn, flip and force GCs. Workers hit
	// keys across all shards, so on a grouped store each worker's handle
	// leases into several members and its ops cross member boundaries —
	// and the churn injector's release/re-lease cycles donate and adopt
	// orphans across every member the departing tenant had touched.
	var (
		stop      atomic.Bool
		valueErrs atomic.Uint64
		wg        sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		h, err := s.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id int, h *core.GroupHandle) {
			defer wg.Done()
			rg := rng.New(uint64(id)*0x9e3779b97f4a7c15 + uint64(p) + 3)
			var gbuf, wbuf []byte
			tag := uint32(id) << 20
			for !stop.Load() {
				idx := rg.Intn(nKeys)
				if rg.Pct() < 60 {
					if v, ok := s.Get(h, keyTab[idx], gbuf); ok {
						gbuf = v
						if !workload.ValueBytesValid(hkTab[idx], v) {
							valueErrs.Add(1)
						}
					}
				} else {
					tag++
					wbuf = workload.AppendValueBytes(wbuf[:0], hkTab[idx], tag, 48)
					s.Put(h, keyTab[idx], wbuf)
				}
			}
			h.Flush()
			s.Release(h)
		}(w, h)
	}

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()
	st := r.Stop()

	// The injectors must actually have injected; an idle injector would
	// silently weaken every storm built on this package.
	if st.Stalls == 0 {
		t.Error("stalled-reader injector completed no stall windows")
	}
	if st.GCCycles == 0 {
		t.Error("GC-pressure injector forced no GC cycles")
	}
	if st.Leases == 0 {
		t.Error("churn injector completed no lease cycles")
	}
	if st.Flips == 0 {
		t.Error("hotspot injector flipped no shards")
	}
	if st.Ops == 0 {
		t.Error("injectors issued no store ops")
	}

	iv := Invariants{Policy: p}
	checker, err := s.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	var vs []Violation
	vs = append(vs, iv.CheckValueErrors(valueErrs.Load())...)
	vs = append(vs, iv.CheckValues(checker, s, keyTab)...)
	// Drain until quiescent (the first pass adopts donated orphans in
	// every member, including members the checker's walk never leased).
	for i := 0; i < 3; i++ {
		checker.Drain()
		if g.Unreclaimed() == 0 {
			break
		}
	}
	vs = append(vs, iv.CheckDrained(g)...)
	vs = append(vs, iv.CheckCounters(g.Stats())...)
	// Drain leased the checker into every member, so the aggregated
	// leased count is one thread per member.
	vs = append(vs, iv.CheckLifecycle(g.Lifecycle(), g.Members())...)
	for _, v := range vs {
		t.Errorf("invariant violated: %s", v)
	}
	s.Release(checker)
}

// TestChaosStorm runs the full injector bundle against every policy on
// a grouped store (4 shards over 2 member domains) — the CI -race
// chaos suite for domain groups.
func TestChaosStorm(t *testing.T) {
	for _, p := range core.Policies() {
		p := p
		t.Run(p.String(), func(t *testing.T) { storm(t, p, 2) })
	}
}

// TestChaosStormGroupFactors sweeps the grouping factor — ungrouped,
// and fully grouped (one member per shard) — under the POP policies the
// fan-out argument targets, so cross-group release/re-lease is
// exercised at both extremes.
func TestChaosStormGroupFactors(t *testing.T) {
	for _, p := range []core.Policy{core.EpochPOP, core.HazardPtrPOP} {
		for _, members := range []int{1, 4} {
			p, members := p, members
			t.Run(fmt.Sprintf("%v/members=%d", p, members), func(t *testing.T) {
				storm(t, p, members)
			})
		}
	}
}

func TestConfigSlotsAndEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero Config reports Enabled")
	}
	if got := (Config{}).Slots(); got != 0 {
		t.Errorf("zero Config Slots = %d", got)
	}
	c := Default()
	if !c.Enabled() {
		t.Error("Default not Enabled")
	}
	if got := c.Slots(); got != 3 { // 1 stall + 1 churner + hotspot
		t.Errorf("Default Slots = %d, want 3", got)
	}
}

// TestStartFailsWithoutCapacity: a group too small for the injectors
// must fail Start cleanly, releasing any partially leased handles.
func TestStartFailsWithoutCapacity(t *testing.T) {
	g := core.NewDomainGroup(core.EBR, 1, 1, nil)
	s, err := store.New(g, store.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{workload.KeyString(0), workload.KeyString(1)}
	if _, err := Start(Config{Stalls: 1, Hotspot: true}, s, keys); err == nil {
		t.Fatal("Start succeeded with 1 slot for 2 injectors")
	}
	// The partial lease must have been returned.
	h, err := s.Acquire()
	if err != nil {
		t.Fatalf("slot not returned after failed Start: %v", err)
	}
	s.Release(h)
}
