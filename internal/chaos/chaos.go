// Package chaos is the reusable adversarial harness: composable fault
// injectors that run alongside a store workload, plus the shared
// Invariants checker the storm tests assert against.
//
// The injectors generalize the paper's §5.1.2 long-running-reads
// scenario into a catalogue of schedules that reclamation must survive:
//
//   - StalledReader: threads that hold a protected operation across
//     many reclamation windows (answering pings the whole time), the
//     schedule that separates robust policies from epoch-style ones;
//   - GCPressure: forced Go GC cycles plus allocation ballast, so
//     reclamation races the runtime's own stop-the-world machinery;
//   - thread churn: injectors that lease and release group slots in a
//     tight loop through the store's domain group, driving the orphan
//     donation/adoption paths of the slot lifecycle in every member
//     domain the departing tenant had touched;
//   - HotspotFlip: a writer that concentrates overwrites on one
//     shard's keys and flips shards on a timer, moving retirement
//     pressure around the store.
//
// Every injector write is checksum-valid (workload.AppendValueBytes),
// so a run under chaos remains fully value-verifiable: chaos perturbs
// schedules, never the correctness contract.
//
// Invariants is the other half: the checks the one-off storm tests of
// PRs 4–6 each re-implemented, extracted into one checker with one
// name per invariant. Each check has a seeded-violation test in this
// package proving it detects the fault it claims to (a checker that
// cannot fail is worse than none).
package chaos

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pop/internal/core"
	"pop/internal/rng"
	"pop/internal/store"
	"pop/internal/workload"
)

// Config selects which injectors run and how hard. The zero value
// runs nothing; Default returns the standard bundle.
type Config struct {
	// Stalls is the number of stalled-reader injectors. Each holds a
	// protected op for StallHold (default 2ms) at a time, polling so
	// ping-based policies get their answers, then releases and
	// re-enters — a rolling population of long reads.
	Stalls    int
	StallHold time.Duration

	// GCPressure runs a forced-GC loop: one runtime.GC plus an
	// allocation ballast every GCEvery (default 5ms).
	GCPressure bool
	GCEvery    time.Duration

	// Churners is the number of lease-churn injectors; each acquires a
	// thread slot from the store's pool, performs ChurnOps ops
	// (default 200), and releases — oscillating the live thread count
	// and exercising orphan donation/adoption continuously.
	Churners int
	ChurnOps int

	// Hotspot runs the shard-hotspot flipper: overwrites concentrate
	// on one shard's keys and the target shard flips every FlipEvery
	// (default 2ms).
	Hotspot   bool
	FlipEvery time.Duration

	// Seed makes injector op streams reproducible (0 = fixed default).
	Seed uint64
}

// Default returns the standard chaos bundle: one of each injector.
func Default() Config {
	return Config{Stalls: 1, GCPressure: true, Churners: 1, Hotspot: true}
}

// Enabled reports whether any injector is configured.
func (c Config) Enabled() bool {
	return c.Stalls > 0 || c.GCPressure || c.Churners > 0 || c.Hotspot
}

// Slots returns how many extra domain thread slots the injectors
// occupy at peak; harnesses add this to their worker count when sizing
// the domain.
func (c Config) Slots() int {
	n := c.Stalls + c.Churners
	if c.Hotspot {
		n++
	}
	return n
}

func (c Config) withDefaults() Config {
	if c.StallHold <= 0 {
		c.StallHold = 2 * time.Millisecond
	}
	if c.GCEvery <= 0 {
		c.GCEvery = 5 * time.Millisecond
	}
	if c.ChurnOps <= 0 {
		c.ChurnOps = 200
	}
	if c.FlipEvery <= 0 {
		c.FlipEvery = 2 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 0xc4a05_5eed
	}
	return c
}

// Stats counts what the injectors actually did — storms assert these
// are nonzero, so a silently idle injector fails the test rather than
// weakening it.
type Stats struct {
	Stalls   uint64 // completed stall windows
	GCCycles uint64 // forced GC cycles
	Leases   uint64 // churner lease/release cycles
	Flips    uint64 // hotspot shard flips
	Ops      uint64 // store ops issued by injectors
}

// Runner drives a set of injectors against a store until Stop.
type Runner struct {
	cfg   Config
	s     *store.Store
	keys  []string
	hkeys []int64

	stop   atomic.Bool
	cancel context.CancelFunc
	ctx    context.Context
	wg     sync.WaitGroup

	stalls, gcCycles, leases, flips, ops atomic.Uint64
}

// Start launches the configured injectors against s. keys is the
// key population injectors draw from (typically the harness's key
// table). Stalled readers and the hotspot flipper lease their group
// handles from the store's domain group up front — size the group with
// cfg.Slots() spare slots — and churners cycle leases for the run's
// whole length.
func Start(cfg Config, s *store.Store, keys []string) (*Runner, error) {
	cfg = cfg.withDefaults()
	if len(keys) == 0 && cfg.Enabled() {
		return nil, fmt.Errorf("chaos: empty key population")
	}
	r := &Runner{cfg: cfg, s: s, keys: keys}
	r.ctx, r.cancel = context.WithCancel(context.Background())
	r.hkeys = make([]int64, len(keys))
	for i, k := range keys {
		r.hkeys[i] = store.KeyHash(k)
	}

	// Lease every long-lived injector handle before spawning anything,
	// so capacity misconfiguration fails here — with all partial leases
	// returned — rather than mid-run with goroutines already holding
	// handles.
	var held []*core.GroupHandle
	lease := func() (*core.GroupHandle, error) {
		h, err := s.Acquire()
		if err != nil {
			for _, hh := range held {
				s.Release(hh)
			}
			return nil, fmt.Errorf("chaos: injector lease: %w", err)
		}
		held = append(held, h)
		return h, nil
	}
	stallHs := make([]*core.GroupHandle, cfg.Stalls)
	for i := range stallHs {
		h, err := lease()
		if err != nil {
			return nil, err
		}
		stallHs[i] = h
	}
	var hotH *core.GroupHandle
	if cfg.Hotspot {
		h, err := lease()
		if err != nil {
			return nil, err
		}
		hotH = h
	}

	for i, h := range stallHs {
		r.wg.Add(1)
		go r.stalledReader(h, cfg.Seed+uint64(i)*0x9e3779b97f4a7c15)
	}
	if hotH != nil {
		r.wg.Add(1)
		go r.hotspotFlipper(hotH, cfg.Seed^0xf11b)
	}
	for i := 0; i < cfg.Churners; i++ {
		r.wg.Add(1)
		go r.churner(cfg.Seed ^ (uint64(i+1) * 0xff51afd7ed558ccd))
	}
	if cfg.GCPressure {
		r.wg.Add(1)
		go r.gcLoop()
	}
	return r, nil
}

// Stop halts every injector, waits for them to flush and release their
// handles, and returns what they did. After Stop the injectors hold no
// slots and have donated or reclaimed all their retires, so lifecycle
// and drain invariants can be checked against worker state alone.
func (r *Runner) Stop() Stats {
	r.stop.Store(true)
	r.cancel()
	r.wg.Wait()
	return Stats{
		Stalls:   r.stalls.Load(),
		GCCycles: r.gcCycles.Load(),
		Leases:   r.leases.Load(),
		Flips:    r.flips.Load(),
		Ops:      r.ops.Load(),
	}
}

// stalledReader holds a protected operation for StallHold at a time,
// polling throughout so ping-based policies (POP, NBR) get their
// answers while the reservation pins memory — the §5.1.2 schedule as a
// rolling background condition. On a grouped store the stall pins the
// member domain of the key it just read (the member whose shard the
// key hashes to), so reclamation stalls stay member-local exactly as a
// real long read would.
func (r *Runner) stalledReader(h *core.GroupHandle, seed uint64) {
	defer r.wg.Done()
	rg := rng.New(seed)
	var buf []byte
	for !r.stop.Load() {
		// A real read between stalls keeps the injector's reservation
		// pattern honest.
		idx := rg.Intn(int64(len(r.keys)))
		key := r.keys[idx]
		if v, ok := r.s.Get(h, key, buf); ok {
			buf = v
		}
		r.ops.Add(1)
		th := h.Member(r.s.MemberIndex(r.s.ShardIndex(key)))
		th.StartOp()
		deadline := time.Now().Add(r.cfg.StallHold)
		for time.Now().Before(deadline) && !r.stop.Load() {
			th.Poll()
			time.Sleep(20 * time.Microsecond)
		}
		th.EndOp()
		r.stalls.Add(1)
	}
	h.Flush()
	r.s.Release(h)
}

// gcLoop forces a GC cycle every GCEvery with a rotating allocation
// ballast, so reclamation constantly races the runtime's own memory
// machinery.
func (r *Runner) gcLoop() {
	defer r.wg.Done()
	var ballast [][]byte
	for !r.stop.Load() {
		ballast = append(ballast, make([]byte, 64<<10))
		if len(ballast) >= 16 {
			ballast = ballast[:0]
		}
		runtime.GC()
		r.gcCycles.Add(1)
		time.Sleep(r.cfg.GCEvery)
	}
}

// churner oscillates the live thread count: lease a slot from the
// store's pool, run a burst of ops, release — every cycle donates any
// unreclaimed retires to the orphan queue for some later thread to
// adopt.
func (r *Runner) churner(seed uint64) {
	defer r.wg.Done()
	rg := rng.New(seed)
	var vbuf, gbuf []byte
	tag := uint32(seed) | 0x40000000
	for !r.stop.Load() {
		h, err := r.s.AcquireWait(r.ctx)
		if err != nil {
			return // context cancelled by Stop
		}
		r.leases.Add(1)
		for i := 0; i < r.cfg.ChurnOps && !r.stop.Load(); i++ {
			idx := rg.Intn(int64(len(r.keys)))
			switch p := rg.Pct(); {
			case p < 50:
				if v, ok := r.s.Get(h, r.keys[idx], gbuf); ok {
					gbuf = v
				}
			case p < 90:
				tag++
				vbuf = workload.AppendValueBytes(vbuf[:0], r.hkeys[idx], tag, 32)
				r.s.Put(h, r.keys[idx], vbuf)
			default:
				r.s.Delete(h, r.keys[idx])
			}
			r.ops.Add(1)
		}
		r.s.Release(h)
	}
}

// hotspotFlipper concentrates overwrites on one shard's keys, flipping
// the target shard every FlipEvery — retirement pressure that moves
// around the store instead of spreading evenly.
func (r *Runner) hotspotFlipper(h *core.GroupHandle, seed uint64) {
	defer r.wg.Done()
	rg := rng.New(seed)
	// Bucket the key population by shard once.
	byShard := make([][]int32, r.s.Shards())
	for i, k := range r.keys {
		sh := r.s.ShardIndex(k)
		byShard[sh] = append(byShard[sh], int32(i))
	}
	var vbuf []byte
	tag := uint32(seed) | 0x80000000
	for !r.stop.Load() {
		sh := int(rg.Intn(int64(len(byShard))))
		if len(byShard[sh]) == 0 {
			continue
		}
		hot := byShard[sh]
		deadline := time.Now().Add(r.cfg.FlipEvery)
		for time.Now().Before(deadline) && !r.stop.Load() {
			idx := int(hot[rg.Intn(int64(len(hot)))])
			tag++
			vbuf = workload.AppendValueBytes(vbuf[:0], r.hkeys[idx], tag, 48)
			r.s.Put(h, r.keys[idx], vbuf)
			r.ops.Add(1)
		}
		r.flips.Add(1)
	}
	h.Flush()
	r.s.Release(h)
}
