// Seeded-violation tests: each invariant in Invariants is driven to
// fire by deliberately injecting the fault it claims to detect — a
// corrupted checksum, a leaked lease, a skipped retire, a skipped
// flush — plus a clean control proving the check passes when the fault
// is absent. A checker that cannot fail is worse than no checker.
package chaos

import (
	"strings"
	"sync/atomic"
	"testing"

	"pop/internal/core"
	"pop/internal/store"
	"pop/internal/telemetry"
	"pop/internal/workload"
)

func hasInvariant(vs []Violation, name string) bool {
	for _, v := range vs {
		if v.Invariant == name {
			return true
		}
	}
	return false
}

// TestSeededChecksumCorruption: a deliberately garbage value must trip
// "value-checksum"; the uncorrupted store must not.
func TestSeededChecksumCorruption(t *testing.T) {
	g := core.NewDomainGroup(core.EBR, 2, 2, nil)
	s, err := store.New(g, store.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release(h)
	keys := make([]string, 64)
	var vbuf []byte
	for i := range keys {
		keys[i] = workload.KeyString(int64(i))
		vbuf = workload.AppendValueBytes(vbuf[:0], store.KeyHash(keys[i]), uint32(i)+1, 24)
		s.Put(h, keys[i], vbuf)
	}
	iv := Invariants{Policy: core.EBR}
	if vs := iv.CheckValues(h, s, keys); len(vs) != 0 {
		t.Fatalf("control: clean store reported %v", vs)
	}
	// Seed the fault: a payload AppendValueBytes never produced.
	s.Put(h, keys[17], []byte("garbage value, no checksum!!"))
	vs := iv.CheckValues(h, s, keys)
	if !hasInvariant(vs, "value-checksum") {
		t.Fatalf("corrupted value not detected: %v", vs)
	}
	if !strings.Contains(vs[0].Detail, keys[17]) {
		t.Errorf("violation does not name the corrupted key: %v", vs[0])
	}
	// Counter form.
	if vs := iv.CheckValueErrors(0); len(vs) != 0 {
		t.Errorf("control: CheckValueErrors(0) = %v", vs)
	}
	if vs := iv.CheckValueErrors(3); !hasInvariant(vs, "value-errors") {
		t.Errorf("CheckValueErrors(3) not flagged: %v", vs)
	}
}

// TestSeededLeaseLeak: a handle acquired and never released must trip
// "lifecycle"; releasing it clears the violation.
func TestSeededLeaseLeak(t *testing.T) {
	d := core.NewDomain(core.HP, 4, nil)
	pool := core.NewHandles(d)
	iv := Invariants{Policy: core.HP}

	leaked, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	vs := iv.CheckLifecycle(d.Lifecycle(), 0)
	if !hasInvariant(vs, "lifecycle") {
		t.Fatalf("leaked lease not detected: %v", vs)
	}
	pool.Release(leaked)
	if vs := iv.CheckLifecycle(d.Lifecycle(), 0); len(vs) != 0 {
		t.Fatalf("control: balanced lifecycle reported %v", vs)
	}
}

// TestSeededOrphanedRetires: releasing a thread whose retires nobody
// adopts must trip the orphan half of "lifecycle"; a flush by a live
// thread (which adopts) clears it.
func TestSeededOrphanedRetires(t *testing.T) {
	d := core.NewDomain(core.EBR, 2, &core.Options{ReclaimThreshold: 1 << 20})
	var outstanding atomic.Int64
	typ := d.RegisterType(func(_ *core.Thread, _ *core.Header) { outstanding.Add(-1) })

	departing := d.RegisterThread()
	keeper := d.RegisterThread()
	departing.StartOp()
	for i := 0; i < 8; i++ {
		h := new(core.Header)
		departing.OnAlloc(h, typ)
		outstanding.Add(1)
		departing.Retire(h)
	}
	departing.EndOp()
	departing.Release() // donates the 8 retires to the orphan queue

	iv := Invariants{Policy: core.EBR}
	vs := iv.CheckLifecycle(d.Lifecycle(), 1)
	if !hasInvariant(vs, "lifecycle") {
		t.Fatalf("orphaned retires not detected: %v", vs)
	}
	keeper.Flush() // adopt + reclaim
	if vs := iv.CheckLifecycle(d.Lifecycle(), 1); len(vs) != 0 {
		t.Fatalf("control: post-adoption lifecycle reported %v", vs)
	}
	if got := outstanding.Load(); got != 0 {
		t.Fatalf("%d orphaned nodes never freed", got)
	}
	keeper.Release()
}

// TestSeededSkippedRetire: a node unlinked but never retired is a leak
// the drain counter cannot see; "balance" (outstanding vs live) must
// catch it.
func TestSeededSkippedRetire(t *testing.T) {
	d := core.NewDomain(core.EBR, 2, &core.Options{ReclaimThreshold: 4})
	var outstanding atomic.Int64
	typ := d.RegisterType(func(_ *core.Thread, _ *core.Header) { outstanding.Add(-1) })
	th := d.RegisterThread()
	defer th.Release()

	alloc := func() *core.Header {
		h := new(core.Header)
		th.OnAlloc(h, typ)
		outstanding.Add(1)
		return h
	}
	nodes := make([]*core.Header, 4)
	th.StartOp()
	for i := range nodes {
		nodes[i] = alloc()
	}
	// Seed the fault: "unlink" all four but forget to retire one.
	for _, h := range nodes[:3] {
		th.Retire(h)
	}
	th.EndOp()
	th.Flush()

	iv := Invariants{Policy: core.EBR}
	vs := iv.CheckBalance(outstanding.Load(), 0)
	if !hasInvariant(vs, "balance") {
		t.Fatalf("skipped retire not detected: outstanding=%d, %v", outstanding.Load(), vs)
	}
	// Repair: retire the forgotten node; balance must go clean.
	th.StartOp()
	th.Retire(nodes[3])
	th.EndOp()
	th.Flush()
	if vs := iv.CheckBalance(outstanding.Load(), 0); len(vs) != 0 {
		t.Fatalf("control: balanced ledger reported %v (outstanding=%d)", vs, outstanding.Load())
	}
	// NR is exempt: it leaks by design.
	if vs := (Invariants{Policy: core.NR}).CheckBalance(5, 0); len(vs) != 0 {
		t.Errorf("NR not exempt from balance: %v", vs)
	}
}

// TestSeededSkippedFlush: retires left sitting in a thread's list must
// trip "drain"; flushing clears it.
func TestSeededSkippedFlush(t *testing.T) {
	d := core.NewDomain(core.HE, 2, &core.Options{ReclaimThreshold: 1 << 20})
	typ := d.RegisterType(func(_ *core.Thread, _ *core.Header) {})
	th := d.RegisterThread()

	th.StartOp()
	for i := 0; i < 16; i++ {
		h := new(core.Header)
		th.OnAlloc(h, typ)
		th.Retire(h)
	}
	th.EndOp()

	iv := Invariants{Policy: core.HE}
	vs := iv.CheckDrained(d)
	if !hasInvariant(vs, "drain") {
		t.Fatalf("skipped flush not detected (unreclaimed=%d): %v", d.Unreclaimed(), vs)
	}
	th.Flush()
	if vs := iv.CheckDrained(d); len(vs) != 0 {
		t.Fatalf("control: drained domain reported %v (unreclaimed=%d)", vs, d.Unreclaimed())
	}
	th.Release()
	// NR is exempt by design.
	if vs := (Invariants{Policy: core.NR}).CheckLeaked(100); len(vs) != 0 {
		t.Errorf("NR not exempt from drain: %v", vs)
	}
}

// TestSeededCounterFaults: each counter-sanity clause fires on the
// ledger it guards.
func TestSeededCounterFaults(t *testing.T) {
	iv := Invariants{Policy: core.EBR}
	if vs := iv.CheckCounters(core.Stats{Retires: 100, Frees: 90}); len(vs) != 0 {
		t.Errorf("control: sane counters reported %v", vs)
	}
	if vs := iv.CheckCounters(core.Stats{Retires: 5, Frees: 10}); !hasInvariant(vs, "counters") {
		t.Error("frees > retires not flagged")
	}
	if vs := iv.CheckCounters(core.Stats{Retires: 5000, Frees: 0}); !hasInvariant(vs, "counters") {
		t.Error("zero reclamation progress not flagged")
	}
	nr := Invariants{Policy: core.NR}
	if vs := nr.CheckCounters(core.Stats{Retires: 5000, Frees: 1}); !hasInvariant(vs, "counters") {
		t.Error("NR freeing not flagged")
	}
	if vs := nr.CheckCounters(core.Stats{Retires: 5000, Frees: 0}); len(vs) != 0 {
		t.Errorf("control: NR never freeing reported %v", vs)
	}
}

func TestErrs(t *testing.T) {
	if err := Errs(nil); err != nil {
		t.Errorf("Errs(nil) = %v", err)
	}
	err := Errs([]Violation{
		{Invariant: "drain", Detail: "x"},
		{Invariant: "balance", Detail: "y"},
	})
	if err == nil || !strings.Contains(err.Error(), "drain: x") || !strings.Contains(err.Error(), "balance: y") {
		t.Errorf("Errs rendering = %v", err)
	}
}

// TestSeededTimelineDivergence: a live sampled run's timeline passes
// (control), then each seeded corruption — a doctored sample delta, a
// phantom op window, a zero-age recovered stall — trips "timeline".
func TestSeededTimelineDivergence(t *testing.T) {
	g := core.NewDomainGroup(core.EBR, 2, 2, nil)
	s, err := store.New(g, store.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	sam := telemetry.NewSampler(g, telemetry.Config{})
	sam.Start()
	h, err := s.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	var vbuf []byte
	for i := 0; i < 500; i++ {
		k := workload.KeyString(int64(i % 64))
		vbuf = workload.AppendValueBytes(vbuf[:0], store.KeyHash(k), uint32(i)+1, 24)
		s.Put(h, k, vbuf)
		if i%100 == 99 {
			sam.Tick() // drive sampling deterministically (no ticker configured)
		}
	}
	s.Release(h)
	tl := sam.Stop()
	iv := Invariants{Policy: core.EBR}
	if vs := iv.CheckTimeline(nil); len(vs) != 0 {
		t.Errorf("nil timeline (sampling off) reported %v", vs)
	}
	if vs := iv.CheckTimeline(tl); len(vs) != 0 {
		t.Fatalf("control: clean timeline reported %v", vs)
	}
	if len(tl.Samples) == 0 {
		t.Fatal("sampled run recorded no samples")
	}
	// Seed the fault: a delta the run never produced.
	tl.Samples[0].Stats.Retires++
	if vs := iv.CheckTimeline(tl); !hasInvariant(vs, "timeline") {
		t.Error("doctored sample delta not detected")
	}
	tl.Samples[0].Stats.Retires--
	// A phantom op window: sample ops no final count backs.
	tl.Samples[0].Ops += 7
	if vs := iv.CheckTimeline(tl); !hasInvariant(vs, "timeline") {
		t.Error("phantom op window not detected")
	}
	tl.Samples[0].Ops -= 7
	// A recovered episode that claims to have taken no time at all.
	tl.Stalls = append(tl.Stalls, telemetry.StallEvent{Member: 0, Slot: 1, Recovered: true})
	if vs := iv.CheckTimeline(tl); !hasInvariant(vs, "timeline") {
		t.Error("zero-age recovered stall episode not detected")
	}
}
