package chaos

import (
	"fmt"

	"pop/internal/core"
	"pop/internal/store"
	"pop/internal/telemetry"
	"pop/internal/workload"
)

// A Violation is one failed invariant: a stable invariant name plus a
// human-readable detail. Storms report every violation, not just the
// first, so one broken run paints the whole picture.
type Violation struct {
	Invariant string // "value-checksum", "value-errors", "drain", "counters", "lifecycle", "balance"
	Detail    string
}

// String renders the violation as "invariant: detail".
func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Invariants checks the contracts every run must uphold regardless of
// schedule: values verify, retired memory drains, reclamation counters
// stay sane, thread-slot leases balance, and allocation balances
// frees. Policy selects the per-policy exemptions (NR never frees by
// design). Every check here has a seeded-violation test in this
// package proving it fires on the fault it claims to detect.
type Invariants struct {
	Policy core.Policy
}

// violate appends a formatted violation.
func violate(vs []Violation, invariant, format string, args ...any) []Violation {
	return append(vs, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// CheckValues walks keys through the store and verifies every present
// value against its key's checksum ("value-checksum"): a stale, torn
// or cross-key value — the value-plane symptom of a use-after-free —
// fails. The walk runs on h as an ordinary reader.
func (iv Invariants) CheckValues(h *core.GroupHandle, s *store.Store, keys []string) []Violation {
	var vs []Violation
	var buf []byte
	bad := 0
	for _, k := range keys {
		v, ok := s.Get(h, k, buf)
		if !ok {
			continue
		}
		buf = v
		if !workload.ValueBytesValid(store.KeyHash(k), v) {
			bad++
			if bad <= 3 { // name the first few, count the rest
				vs = violate(vs, "value-checksum", "key %q served a value failing its checksum (%d bytes)", k, len(v))
			}
		}
	}
	if bad > 3 {
		vs = violate(vs, "value-checksum", "%d keys total served checksum-failing values", bad)
	}
	return vs
}

// CheckValueErrors asserts a run's accumulated checksum-failure count
// is zero ("value-errors") — the counter form of CheckValues, for
// harnesses that verify inline.
func (iv Invariants) CheckValueErrors(n uint64) []Violation {
	if n == 0 {
		return nil
	}
	return violate(nil, "value-errors", "%d served values failed their checksums (want 0)", n)
}

// CheckLeaked asserts the post-flush unreclaimed count is zero
// ("drain"): once every thread has flushed quiescently, no policy but
// NR may still hold retired memory.
func (iv Invariants) CheckLeaked(unreclaimed int64) []Violation {
	if iv.Policy == core.NR || unreclaimed == 0 {
		return nil
	}
	return violate(nil, "drain", "%d nodes retired but unreclaimed after quiescent flush (want 0)", unreclaimed)
}

// CheckDrained is CheckLeaked against a live counter — a *core.Domain
// or a *core.DomainGroup (which sums its members).
func (iv Invariants) CheckDrained(d interface{ Unreclaimed() int64 }) []Violation {
	return iv.CheckLeaked(d.Unreclaimed())
}

// CheckCounters sanity-checks the reclamation counters ("counters"):
// frees never exceed retires, NR never frees, and a run that retired
// plenty must have freed something (reclamation progress).
func (iv Invariants) CheckCounters(st core.Stats) []Violation {
	var vs []Violation
	if st.Frees > st.Retires {
		vs = violate(vs, "counters", "freed %d nodes but only %d were retired", st.Frees, st.Retires)
	}
	if iv.Policy == core.NR {
		if st.Frees != 0 {
			vs = violate(vs, "counters", "NR freed %d nodes; NR must never free", st.Frees)
		}
		return vs
	}
	if st.Retires > 1000 && st.Frees == 0 {
		vs = violate(vs, "counters", "retired %d nodes and freed none: no reclamation progress", st.Retires)
	}
	return vs
}

// CheckLifecycle asserts the thread-slot ledger balances
// ("lifecycle"): exactly wantLeased slots remain leased, no orphaned
// retires are still awaiting adoption, and every donated orphan was
// adopted. Call it after the run's threads have flushed (a flush
// adopts pending orphans).
func (iv Invariants) CheckLifecycle(lc core.LifecycleStats, wantLeased int) []Violation {
	var vs []Violation
	if lc.Leased != wantLeased {
		vs = violate(vs, "lifecycle", "%d slots still leased, want %d (leaked or double-released handle)", lc.Leased, wantLeased)
	}
	if lc.OrphanNodes != 0 {
		vs = violate(vs, "lifecycle", "%d orphaned retires still awaiting adoption after flush", lc.OrphanNodes)
	}
	if lc.OrphansAdopted > lc.OrphansDonated {
		vs = violate(vs, "lifecycle", "adopted %d orphans but only %d were donated", lc.OrphansAdopted, lc.OrphansDonated)
	}
	if lc.Peak > lc.Slots {
		vs = violate(vs, "lifecycle", "peak leases %d exceed slot count %d", lc.Peak, lc.Slots)
	}
	return vs
}

// CheckBalance asserts allocation balances reclamation ("balance"):
// after a quiescent flush, the structure's outstanding allocation
// count must equal what is still reachable. outstanding is the
// alloc-minus-free ledger (e.g. skiplist.Outstanding, Store.
// Outstanding); live is the reachable population (e.g. Size). NR is
// exempt: it leaks by design.
func (iv Invariants) CheckBalance(outstanding, live int64) []Violation {
	if iv.Policy == core.NR || outstanding == live {
		return nil
	}
	return violate(nil, "balance", "%d allocations outstanding after flush, want exactly the %d live (leak or double-free)", outstanding, live)
}

// CheckTimeline asserts a sampled run's timeline telescopes
// ("timeline"): the base snapshot plus every sample's deltas must
// reproduce the final snapshot exactly — a sampler that lost or
// double-counted a window would misnarrate the very run it claims to
// explain. Ops telescope the same way, and stall episodes must be
// well-formed (a recovered episode has a positive age). A nil timeline
// (sampling off) passes vacuously.
func (iv Invariants) CheckTimeline(tl *telemetry.Timeline) []Violation {
	if tl == nil {
		return nil
	}
	var vs []Violation
	if sum := tl.SumDeltas(); sum != tl.Final {
		vs = violate(vs, "timeline", "base+deltas %+v diverge from final snapshot %+v (lost or double-counted sample window)", sum, tl.Final)
	}
	ops := tl.BaseOps
	for i := range tl.Samples {
		ops += tl.Samples[i].Ops
	}
	if ops != tl.FinalOps {
		vs = violate(vs, "timeline", "base+delta ops %d diverge from final op count %d", ops, tl.FinalOps)
	}
	if tl.Dropped < 0 {
		vs = violate(vs, "timeline", "negative dropped-sample count %d", tl.Dropped)
	}
	for _, ev := range tl.Stalls {
		if ev.Recovered && ev.Age <= 0 {
			vs = violate(vs, "timeline", "recovered stall episode m%d.s%d has non-positive age %v", ev.Member, ev.Slot, ev.Age)
		}
	}
	return vs
}

// Errs renders violations as a single multi-line error (nil if none) —
// for callers outside the testing package, like popstress.
func Errs(vs []Violation) error {
	if len(vs) == 0 {
		return nil
	}
	msg := ""
	for i, v := range vs {
		if i > 0 {
			msg += "\n"
		}
		msg += v.String()
	}
	return fmt.Errorf("%s", msg)
}
