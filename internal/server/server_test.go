package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pop/internal/chaos"
	"pop/internal/core"
	"pop/internal/store"
)

// testClient is a minimal memcached-text client for driving a live
// server over loopback TCP.
type testClient struct {
	t  *testing.T
	nc net.Conn
	r  *bufio.Reader
}

func dialServer(t *testing.T, s *Server) *testClient {
	t.Helper()
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	return &testClient{t: t, nc: nc, r: bufio.NewReader(nc)}
}

func (c *testClient) close() { c.nc.Close() }

func (c *testClient) send(s string) {
	c.t.Helper()
	if _, err := io.WriteString(c.nc, s); err != nil {
		c.t.Fatalf("send %q: %v", s, err)
	}
}

func (c *testClient) line() string {
	c.t.Helper()
	l, err := c.r.ReadString('\n')
	if err != nil {
		c.t.Fatalf("read line: %v", err)
	}
	return strings.TrimRight(l, "\r\n")
}

// set stores key=val and checks the reply.
func (c *testClient) set(key, val string) {
	c.t.Helper()
	c.send(fmt.Sprintf("set %s 0 0 %d\r\n%s\r\n", key, len(val), val))
	if got := c.line(); got != "STORED" {
		c.t.Fatalf("set %s: got %q, want STORED", key, got)
	}
}

// get fetches the keys and returns the VALUE blocks as a map.
func (c *testClient) get(keys ...string) map[string]string {
	c.t.Helper()
	c.send("get " + strings.Join(keys, " ") + "\r\n")
	return c.readValues()
}

func (c *testClient) readValues() map[string]string {
	c.t.Helper()
	out := map[string]string{}
	for {
		l := c.line()
		if l == "END" {
			return out
		}
		f := strings.Fields(l)
		if len(f) < 4 || f[0] != "VALUE" {
			c.t.Fatalf("unexpected get reply line %q", l)
		}
		n, err := strconv.Atoi(f[3])
		if err != nil {
			c.t.Fatalf("bad bytes in %q", l)
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(c.r, buf); err != nil {
			c.t.Fatalf("read payload: %v", err)
		}
		out[f[1]] = string(buf[:n])
	}
}

// stats issues "stats [arg]" and returns the STAT map.
func (c *testClient) stats(arg string) map[string]string {
	c.t.Helper()
	cmd := "stats"
	if arg != "" {
		cmd += " " + arg
	}
	c.send(cmd + "\r\n")
	out := map[string]string{}
	for {
		l := c.line()
		if l == "END" {
			return out
		}
		f := strings.SplitN(l, " ", 3)
		if len(f) != 3 || f[0] != "STAT" {
			c.t.Fatalf("unexpected stats line %q", l)
		}
		out[f[1]] = f[2]
	}
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return s
}

// closeClean shuts the server down and asserts, through the shared
// chaos invariant checker, that shutdown drained cleanly: a checker
// thread adopts whatever the departing executors and connections
// donated, then the lease ledger and retire lists must balance.
func closeClean(t *testing.T, s *Server) {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	h, err := s.Group().Acquire()
	if err != nil {
		t.Fatalf("post-close checker lease: %v", err)
	}
	// A few drains adopt donated orphans in every member and reclaim
	// them (a policy may free at most a batch per pass).
	for i := 0; i < 3 && s.Group().Unreclaimed() != 0; i++ {
		h.Drain()
	}
	iv := chaos.Invariants{Policy: s.Group().Policy()}
	var vs []chaos.Violation
	vs = append(vs, iv.CheckDrained(s.Group())...)
	// The drain leased the checker into every member it flushed; allow
	// either footprint (no drain needed = zero member leases).
	lc := s.Group().Lifecycle()
	if lc.Leased != 0 && lc.Leased != s.Group().Members() {
		t.Errorf("post-close leases = %d, want 0 or %d", lc.Leased, s.Group().Members())
	}
	lc.Leased = 0
	vs = append(vs, iv.CheckLifecycle(lc, 0)...)
	for _, v := range vs {
		t.Errorf("invariant violated after Close: %s", v)
	}
	s.Group().Release(h)
}

// TestServerProtocolE2E drives the full command surface over a real TCP
// connection against one live server.
func TestServerProtocolE2E(t *testing.T) {
	s := startServer(t, Config{
		Policy: core.EpochPOP,
		Slots:  2,
		Store:  store.Config{Shards: 2, MaxValueLen: 64},
	})
	defer closeClean(t, s)
	c := dialServer(t, s)
	defer c.close()

	c.set("alpha", "one")
	c.set("beta", "two two")

	if got := c.get("alpha"); got["alpha"] != "one" {
		t.Fatalf("get alpha = %q", got)
	}
	// Multi-get: both present keys plus a miss.
	got := c.get("alpha", "missing", "beta")
	if len(got) != 2 || got["alpha"] != "one" || got["beta"] != "two two" {
		t.Fatalf("multi-get = %q", got)
	}

	// gets: VALUE lines carry a cas column (served as 0).
	c.send("gets alpha\r\n")
	if l := c.line(); l != "VALUE alpha 0 3 0" {
		t.Fatalf("gets VALUE line = %q", l)
	}
	buf := make([]byte, 5)
	io.ReadFull(c.r, buf)
	if l := c.line(); l != "END" {
		t.Fatalf("gets trailer = %q", l)
	}

	// add: NOT_STORED on an existing key, STORED on a fresh one.
	c.send("add alpha 0 0 1\r\nX\r\n")
	if l := c.line(); l != "NOT_STORED" {
		t.Fatalf("add existing = %q", l)
	}
	c.send("add gamma 0 0 1\r\nG\r\n")
	if l := c.line(); l != "STORED" {
		t.Fatalf("add fresh = %q", l)
	}

	// delete: DELETED then NOT_FOUND.
	c.send("delete gamma\r\n")
	if l := c.line(); l != "DELETED" {
		t.Fatalf("delete = %q", l)
	}
	c.send("delete gamma\r\n")
	if l := c.line(); l != "NOT_FOUND" {
		t.Fatalf("re-delete = %q", l)
	}

	// noreply set is silent; the following get observes it.
	c.send("set quiet 0 0 2 noreply\r\nqq\r\nget quiet\r\n")
	if got := c.readValues(); got["quiet"] != "qq" {
		t.Fatalf("noreply set not applied: %q", got)
	}

	// Protocol errors keep the connection serviceable.
	c.send("bogus\r\n")
	if l := c.line(); l != "ERROR" {
		t.Fatalf("unknown command = %q", l)
	}
	c.send("get\r\n")
	if l := c.line(); !strings.HasPrefix(l, "CLIENT_ERROR") {
		t.Fatalf("keyless get = %q", l)
	}
	c.send("set big 0 0 100\r\n" + strings.Repeat("x", 100) + "\r\n")
	if l := c.line(); !strings.HasPrefix(l, "SERVER_ERROR") {
		t.Fatalf("oversized set = %q", l)
	}
	if got := c.get("alpha"); got["alpha"] != "one" {
		t.Fatalf("connection unusable after protocol errors: %q", got)
	}

	// version, then the stats surface.
	c.send("version\r\n")
	if l := c.line(); !strings.HasPrefix(l, "VERSION") {
		t.Fatalf("version = %q", l)
	}
	st := c.stats("")
	for _, k := range []string{"cmd_get", "cmd_set", "get_hits", "slots",
		"admission_wait_p99_us", "coalesced_batches", "lifecycle_leased", "policy"} {
		if _, ok := st[k]; !ok {
			t.Errorf("stats missing %q", k)
		}
	}
	if st["protocol_errors"] == "0" {
		t.Errorf("protocol_errors = 0 after forced errors")
	}
	cs := c.stats("conns")
	if _, ok := cs["conn.1.ops"]; !ok {
		t.Errorf("stats conns missing conn.1.ops: %v", cs)
	}
	ss := c.stats("slots")
	if _, ok := ss["slot.0.leases"]; !ok {
		t.Errorf("stats slots missing slot.0.leases: %v", ss)
	}
	if l := func() string { c.send("stats wat\r\n"); return c.line() }(); !strings.HasPrefix(l, "CLIENT_ERROR") {
		t.Fatalf("stats wat = %q", l)
	}

	// quit closes the peer side.
	c.send("quit\r\n")
	if _, err := c.r.ReadByte(); err != io.EOF {
		t.Fatalf("after quit: %v, want EOF", err)
	}
}

// TestServerAdmissionStorm is the storm suite: 4× more connections than
// admission slots hammering get/set through a live server under every
// policy. Every connection must complete its legs (eventual admission),
// and shutdown must drain every lease.
func TestServerAdmissionStorm(t *testing.T) {
	const (
		slots = 2
		conns = 4 * slots
		legs  = 40
		keys  = 64
	)
	for _, p := range core.Policies() {
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			s := startServer(t, Config{
				Policy: p,
				Slots:  slots,
				Store:  store.Config{Shards: 2, MaxValueLen: 128},
				// A visible window so concurrent single-key gets coalesce.
				Window:         200 * time.Microsecond,
				AcquireTimeout: 30 * time.Second,
			})
			var wg sync.WaitGroup
			for i := 0; i < conns; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					c := dialServer(t, s)
					defer c.close()
					for leg := 0; leg < legs; leg++ {
						k := fmt.Sprintf("k%03d", (id*legs+leg)%keys)
						v := fmt.Sprintf("v-%d-%d", id, leg)
						c.set(k, v)
						if got, ok := c.get(k)[k]; ok && !strings.HasPrefix(got, "v-") {
							t.Errorf("conn %d: get %s = %q", id, k, got)
						}
						// Multi-key gets force the burst to lease a thread, so
						// admission contention is real: conns > slots must queue.
						c.get(k, fmt.Sprintf("k%03d", (id*legs+leg+1)%keys))
					}
				}(i)
			}
			wg.Wait()

			st := s.Stats()
			if want := uint64(conns * legs); st.CmdSet != want {
				t.Errorf("CmdSet = %d, want %d", st.CmdSet, want)
			}
			if st.AdmissionTimeouts != 0 {
				t.Errorf("AdmissionTimeouts = %d, want 0", st.AdmissionTimeouts)
			}
			if st.ExecutorGets == 0 {
				t.Errorf("no gets flowed through the coalescing executors")
			}
			// Only the per-shard coalescing executors still hold group
			// slots once every client burst has released its lease.
			if got, want := s.Group().InUse(), 2; got != want {
				t.Errorf("InUse = %d after clients done, want %d (the coalescers)", got, want)
			}
			closeClean(t, s)
			// Slot leases must account for every burst admission.
			lc := s.Group().Lifecycle()
			var leases uint64
			for _, n := range lc.SlotLeases {
				leases += n
			}
			if leases == 0 {
				t.Errorf("SlotLeases all zero after storm")
			}
		})
	}
}

// TestServerCoalescedGets pins the cross-connection coalescing claim:
// many connections issuing simultaneous single-key gets inside one
// window must share batches (CoalescedGets > 0, CoalesceWidest > 1).
func TestServerCoalescedGets(t *testing.T) {
	s := startServer(t, Config{
		Policy: core.EpochPOP,
		Slots:  2,
		Store:  store.Config{Shards: 1, MaxValueLen: 64},
		Window: 2 * time.Millisecond,
	})
	defer closeClean(t, s)

	seed := dialServer(t, s)
	seed.set("hotkey", "hot")
	seed.close()

	const clients = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := dialServer(t, s)
			defer c.close()
			<-start
			for j := 0; j < 20; j++ {
				if got := c.get("hotkey"); got["hotkey"] != "hot" {
					t.Errorf("get hotkey = %q", got)
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()

	st := s.Stats()
	if st.CoalescedGets == 0 {
		t.Fatalf("CoalescedGets = 0 across %d concurrent clients (batches=%d gets=%d)",
			clients, st.CoalescedBatches, st.ExecutorGets)
	}
	if st.CoalesceWidest < 2 {
		t.Fatalf("CoalesceWidest = %d, want >= 2", st.CoalesceWidest)
	}
	if st.CoalescedBatches >= st.ExecutorGets {
		t.Fatalf("batches (%d) not amortized over gets (%d)", st.CoalescedBatches, st.ExecutorGets)
	}
}
