package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pop/internal/core"
	"pop/internal/report"
	"pop/internal/store"
	"pop/internal/telemetry"
)

// Config tunes a Server. The zero value listens on a loopback port
// with the paper's defaults.
type Config struct {
	// Addr is the TCP listen address (default "127.0.0.1:11311";
	// ":0" picks a free port — see Server.Addr).
	Addr string
	// Policy is the reclamation scheme (default core.EpochPOP: the
	// paper's headline serving policy).
	Policy core.Policy
	// Slots is the connection-admission budget: how many connections
	// may hold a thread lease at once (default 8). The domain group is
	// sized at Slots plus one dedicated slot per shard for the
	// coalescing executors, so get service never competes with
	// admission.
	Slots int
	// Groups is the number of member reclamation domains the store's
	// shards are partitioned into (default 1 = the classic single
	// domain; rounded up to a power of two, capped at the shard count).
	// More groups shrink reclamation fan-out: a reclaim pass inside one
	// member pings only the connections mid-operation in that member's
	// shards.
	Groups int
	// Store configures the sharded KV store underneath.
	Store store.Config
	// Window is the get-coalescing window: single-key gets arriving at
	// one shard within it are merged into one batched protected
	// operation (default 50µs; negative disables waiting, leaving
	// opportunistic drain-only coalescing).
	Window time.Duration
	// MaxBatch caps a coalesced batch (default 64).
	MaxBatch int
	// AcquireTimeout bounds one burst's wait in the admission queue
	// (default 10s); a timed-out command answers SERVER_ERROR and the
	// connection stays up.
	AcquireTimeout time.Duration
	// ExtraSlots reserves additional domain thread slots for tenants
	// outside the serving path — fault injectors running against
	// Store() directly. The extra capacity is visible to the admission
	// pool too (pools share the domain's slot space), so the Slots
	// budget is only exact while the out-of-band tenants hold their
	// leases; harnesses that use this start injectors before admitting
	// clients.
	ExtraSlots int
	// Opts tunes reclamation (nil = paper defaults).
	Opts *core.Options
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:11311"
	}
	if c.Slots <= 0 {
		c.Slots = 8
	}
	if c.Window == 0 {
		c.Window = 50 * time.Microsecond
	}
	if c.Window < 0 {
		c.Window = 0
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.AcquireTimeout <= 0 {
		c.AcquireTimeout = 10 * time.Second
	}
	return c
}

// Server is a memcached-text serving front over one Store. Create with
// New, start with Start, stop with Close.
type Server struct {
	cfg  Config
	g    *core.DomainGroup
	st   *store.Store
	coal []*coalescer

	ln      net.Listener
	started time.Time
	closed  atomic.Bool
	connWG  sync.WaitGroup // accept loop + connection goroutines
	coalWG  sync.WaitGroup // shard executors

	mu     sync.Mutex
	conns  map[uint64]*conn
	nextID uint64

	admMu   sync.Mutex
	admWait report.Histogram // admission-queue wait per burst (ns)

	sampler atomic.Pointer[telemetry.Sampler] // attached via SetTelemetry

	accepted  atomic.Uint64
	cmdGet    atomic.Uint64 // get/gets commands (not keys)
	cmdSet    atomic.Uint64 // set+add commands
	cmdDelete atomic.Uint64
	getKeys   atomic.Uint64 // keys asked across get/gets
	getHits   atomic.Uint64
	admTimeos atomic.Uint64 // bursts that timed out in the admission queue
	protoErrs atomic.Uint64 // CLIENT_ERROR/ERROR responses
}

// New builds the domain group, store, and shard executors. The
// executors' group-slot leases are taken before Start returns control
// to connections, so the admission budget is exactly cfg.Slots.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	// Resolve the shard count the way the store will (power of two,
	// default 8): the group must hold Slots + shards slots.
	shards := cfg.Store.Shards
	if shards <= 0 {
		shards = 8
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	shards = n
	if shards > store.MaxShards {
		return nil, fmt.Errorf("server: %d shards exceeds store.MaxShards (%d)", shards, store.MaxShards)
	}
	cfg.Store.Shards = shards
	groups := cfg.Groups
	if groups <= 0 {
		groups = 1
	}
	n = 1
	for n < groups {
		n <<= 1
	}
	groups = n
	if groups > shards {
		groups = shards
	}

	g := core.NewDomainGroup(cfg.Policy, groups, cfg.Slots+shards+cfg.ExtraSlots, cfg.Opts)
	st, err := store.New(g, cfg.Store)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		g:     g,
		st:    st,
		coal:  make([]*coalescer, shards),
		conns: make(map[uint64]*conn),
	}
	// Spin up one executor per shard. Each leases its own group handle
	// on its own goroutine (handles are goroutine-affine) and holds it
	// until Close; serving only its shard, it only ever leases that
	// shard's member domain thread, so an executor never widens another
	// member's ping fan-out.
	errs := make(chan error, shards)
	for i := range s.coal {
		s.coal[i] = newCoalescer(st, cfg.Window, cfg.MaxBatch)
		ready := make(chan struct{})
		s.coalWG.Add(1)
		go func(c *coalescer) {
			defer s.coalWG.Done()
			h, err := g.Acquire()
			if err != nil {
				errs <- err
				close(ready)
				return
			}
			errs <- nil
			c.run(h, ready)
		}(s.coal[i])
		<-ready
		if err := <-errs; err != nil {
			s.stopCoalescers()
			return nil, fmt.Errorf("server: coalescer lease: %w", err)
		}
	}
	return s, nil
}

// SetTelemetry attaches a live sampler (normally built over Group()
// with the server itself as telemetry.ExtrasSource). Once attached,
// "stats telemetry" reports its snapshot and "stats reset" rebases it.
// The caller owns the sampler's Start/Stop lifecycle.
func (s *Server) SetTelemetry(t *telemetry.Sampler) { s.sampler.Store(t) }

// Telemetry returns the attached sampler (nil if none).
func (s *Server) Telemetry() *telemetry.Sampler { return s.sampler.Load() }

// ExtraNames lists the serving counters the server contributes to
// telemetry samples (telemetry.ExtrasSource).
func (s *Server) ExtraNames() []string {
	return []string{"conns_accepted", "cmd_get", "cmd_set", "cmd_delete",
		"get_keys", "get_hits", "admission_timeouts", "protocol_errors"}
}

// ReadExtras appends the current cumulative serving counters, aligned
// with ExtraNames (telemetry.ExtrasSource).
func (s *Server) ReadExtras(dst []uint64) []uint64 {
	return append(dst, s.accepted.Load(), s.cmdGet.Load(), s.cmdSet.Load(),
		s.cmdDelete.Load(), s.getKeys.Load(), s.getHits.Load(),
		s.admTimeos.Load(), s.protoErrs.Load())
}

// Store exposes the store underneath (prefill, direct inspection).
// Callers need their own group-handle lease; see Group.
func (s *Server) Store() *store.Store { return s.st }

// Group exposes the domain group: reclamation and lifecycle accounting,
// and the lease facade out-of-band tenants (prefill, fault injectors)
// acquire handles from.
func (s *Server) Group() *core.DomainGroup { return s.g }

// Start begins listening and accepting connections.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.started = time.Now()
	s.connWG.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop() {
	defer s.connWG.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // Close closed the listener
		}
		if s.closed.Load() {
			nc.Close()
			return
		}
		s.accepted.Add(1)
		c := newConn(s, nc)
		s.mu.Lock()
		s.nextID++
		c.id = s.nextID
		s.conns[c.id] = c
		s.mu.Unlock()
		s.connWG.Add(1)
		go c.serve()
	}
}

// Close stops accepting, severs every connection, waits for the
// connection goroutines to finish their in-flight command, then retires
// the shard executors and their thread leases. After Close,
// Domain().Lifecycle().Leased counts only leaks — a clean shutdown
// leaves it at zero.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.mu.Lock()
	for _, c := range s.conns {
		c.nc.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	s.stopCoalescers()
	return err
}

func (s *Server) stopCoalescers() {
	for _, c := range s.coal {
		if c != nil {
			close(c.reqs)
		}
	}
	s.coalWG.Wait()
}

// recordAdmission folds one burst's admission wait into the server
// histogram.
func (s *Server) recordAdmission(d time.Duration) {
	s.admMu.Lock()
	s.admWait.Record(d.Nanoseconds())
	s.admMu.Unlock()
}

// AdmissionWait snapshots the admission-queue wait histogram (ns).
func (s *Server) AdmissionWait() *report.Histogram {
	s.admMu.Lock()
	defer s.admMu.Unlock()
	h := s.admWait
	return &h
}

// Stats is a snapshot of the serving-front counters.
type Stats struct {
	Accepted  uint64 // connections ever accepted
	Conns     int    // currently open connections
	CmdGet    uint64 // get/gets commands
	CmdSet    uint64 // set/add commands
	CmdDelete uint64
	GetKeys   uint64 // keys requested across get/gets
	GetHits   uint64
	GetMisses uint64

	CoalescedGets    uint64 // single-key gets served in a shared batch (>= 2 wide)
	CoalescedBatches uint64 // batched protected ops issued by the executors
	CoalesceWidest   uint64 // widest batch observed
	ExecutorGets     uint64 // all gets routed through shard executors

	AdmissionWaits    uint64 // bursts that queued for a slot
	AdmissionTimeouts uint64 // bursts that gave up (SERVER_ERROR)
	ProtocolErrors    uint64 // ERROR/CLIENT_ERROR replies
}

// Stats aggregates the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	open := len(s.conns)
	s.mu.Unlock()
	st := Stats{
		Accepted:          s.accepted.Load(),
		Conns:             open,
		CmdGet:            s.cmdGet.Load(),
		CmdSet:            s.cmdSet.Load(),
		CmdDelete:         s.cmdDelete.Load(),
		GetKeys:           s.getKeys.Load(),
		GetHits:           s.getHits.Load(),
		AdmissionWaits:    s.g.Waits(),
		AdmissionTimeouts: s.admTimeos.Load(),
		ProtocolErrors:    s.protoErrs.Load(),
	}
	st.GetMisses = st.GetKeys - st.GetHits
	for _, c := range s.coal {
		st.CoalescedGets += c.coalesced.Load()
		st.CoalescedBatches += c.batches.Load()
		st.ExecutorGets += c.gets.Load()
		if w := c.maxSeen.Load(); w > st.CoalesceWidest {
			st.CoalesceWidest = w
		}
	}
	return st
}

// ---------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------

// conn is one client connection: a goroutine, a codec, a result channel
// for coalesced gets, and per-connection accounting (the per-tenant
// groundwork: ops and bytes per connection, admission waits per burst).
type conn struct {
	id  uint64
	srv *Server
	nc  net.Conn
	cr  *Reader
	w   *bufio.Writer
	in  *countingReader
	out *countingWriter

	cmd  Command
	vbuf []byte // set/add payload scratch
	gbuf []byte // coalesced-get value scratch
	res  chan getResult

	th *core.GroupHandle // held only inside a burst

	// Counters read by stats from other goroutines.
	ops       atomic.Uint64
	gets      atomic.Uint64 // keys requested
	hits      atomic.Uint64
	sets      atomic.Uint64
	deletes   atomic.Uint64
	admWaits  atomic.Uint64 // bursts that acquired a thread
	admNanos  atomic.Uint64 // total admission wait
	coalesced atomic.Uint64 // single-key gets routed via executors
}

type countingReader struct {
	r io.Reader
	n atomic.Uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(uint64(n))
	return n, err
}

type countingWriter struct {
	w io.Writer
	n atomic.Uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(uint64(n))
	return n, err
}

func newConn(s *Server, nc net.Conn) *conn {
	in := &countingReader{r: nc}
	out := &countingWriter{w: nc}
	return &conn{
		srv: s,
		nc:  nc,
		cr:  NewReader(in, s.st.MaxValueLen()),
		w:   bufio.NewWriterSize(out, 16<<10),
		in:  in,
		out: out,
		res: make(chan getResult, 1),
	}
}

// serve is the connection loop. The thread-lease discipline is the
// serving front's admission story: the goroutine blocks on the socket
// holding nothing; when a command arrives it processes every buffered
// command as one burst, leasing a thread on first need (blocking in the
// admission queue if the domain is saturated) and releasing it before
// blocking on the socket again. Idle connections are free; the live
// set of leases is capped at Config.Slots no matter how many
// connections exist.
func (c *conn) serve() {
	s := c.srv
	defer func() {
		c.dropThread()
		c.nc.Close()
		s.mu.Lock()
		delete(s.conns, c.id)
		s.mu.Unlock()
		s.connWG.Done()
	}()
	for {
		var err error
		c.vbuf, err = c.cr.ReadCommand(&c.cmd, c.vbuf)
		if err != nil {
			if !c.recoverProtocol(err) {
				return
			}
		} else if !c.dispatch() {
			return
		}
		// Burst boundary: nothing more is buffered, so flush replies and
		// return the thread lease before blocking on the socket.
		if c.cr.Buffered() == 0 {
			c.dropThread()
			if c.w.Flush() != nil {
				return
			}
		}
	}
}

// recoverProtocol answers a recoverable protocol error; false means the
// connection is unusable.
func (c *conn) recoverProtocol(err error) bool {
	s := c.srv
	var ce ClientError
	switch {
	case errors.As(err, &ce):
		s.protoErrs.Add(1)
		return c.reply("CLIENT_ERROR " + string(ce) + crlf)
	case errors.Is(err, ErrUnknownCommand):
		s.protoErrs.Add(1)
		return c.reply("ERROR" + crlf)
	case errors.Is(err, ErrValueTooLarge):
		s.protoErrs.Add(1)
		return c.reply("SERVER_ERROR object too large for cache" + crlf)
	default:
		return false // io error: peer gone or stream unrecoverable
	}
}

const crlf = "\r\n"

// dispatch executes one parsed command; false closes the connection.
func (c *conn) dispatch() bool {
	s := c.srv
	c.ops.Add(1)
	switch c.cmd.Op {
	case OpGet, OpGets:
		s.cmdGet.Add(1)
		return c.doGet(c.cmd.Op == OpGets)
	case OpSet, OpAdd:
		s.cmdSet.Add(1)
		return c.doSet(c.cmd.Op == OpAdd)
	case OpDelete:
		s.cmdDelete.Add(1)
		return c.doDelete()
	case OpStats:
		return c.doStats(c.cmd.StatsArg)
	case OpVersion:
		return c.reply("VERSION pop-serve 1.0" + crlf)
	default: // OpQuit
		c.w.Flush()
		return false
	}
}

// needThread leases the burst's group handle, queueing for admission
// if the group is saturated. nil with ok=true only on timeout (the
// command answers SERVER_ERROR and the connection lives on).
func (c *conn) needThread() (*core.GroupHandle, bool) {
	if c.th != nil {
		return c.th, true
	}
	s := c.srv
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.AcquireTimeout)
	th, err := s.g.AcquireWait(ctx)
	cancel()
	wait := time.Since(start)
	s.recordAdmission(wait)
	c.admNanos.Add(uint64(wait.Nanoseconds()))
	if err != nil {
		s.admTimeos.Add(1)
		return nil, true
	}
	c.admWaits.Add(1)
	c.th = th
	return th, true
}

// dropThread ends the burst, returning the lease to the admission pool.
func (c *conn) dropThread() {
	if c.th != nil {
		c.srv.g.Release(c.th)
		c.th = nil
	}
}

// doGet answers get/gets. Single-key gets ride the shard's coalescing
// executor — no thread lease, and concurrent connections share one
// protected operation. Multi-key gets hold the burst's own lease and go
// through Store.GetBatch directly (already one protected op per shard).
func (c *conn) doGet(withCas bool) bool {
	s := c.srv
	keys := c.cmd.Keys
	s.getKeys.Add(uint64(len(keys)))
	c.gets.Add(uint64(len(keys)))
	if len(keys) == 1 {
		c.coalesced.Add(1)
		s.coal[s.st.ShardIndex(keys[0])].submit(getReq{key: keys[0], buf: c.gbuf, out: c.res})
		r := <-c.res
		c.gbuf = r.val[:0]
		if r.ok {
			s.getHits.Add(1)
			c.hits.Add(1)
			if !c.writeValue(keys[0], r.val, withCas) {
				return false
			}
		}
		return c.reply("END" + crlf)
	}
	th, _ := c.needThread()
	if th == nil {
		return c.reply("SERVER_ERROR admission queue timeout" + crlf)
	}
	var b store.Batch
	s.st.GetBatch(th, keys, &b)
	for i, k := range keys {
		if !b.OK[i] {
			continue
		}
		s.getHits.Add(1)
		c.hits.Add(1)
		if !c.writeValue(k, b.Vals[i], withCas) {
			return false
		}
	}
	return c.reply("END" + crlf)
}

// writeValue emits one VALUE block. Flags are always 0 (accepted on
// set, not stored); gets serves cas 0 (cas is not supported).
func (c *conn) writeValue(key string, val []byte, withCas bool) bool {
	c.w.WriteString("VALUE ")
	c.w.WriteString(key)
	if withCas {
		fmt.Fprintf(c.w, " 0 %d 0%s", len(val), crlf)
	} else {
		fmt.Fprintf(c.w, " 0 %d%s", len(val), crlf)
	}
	c.w.Write(val)
	_, err := c.w.WriteString(crlf)
	return err == nil
}

func (c *conn) doSet(ifAbsent bool) bool {
	s := c.srv
	th, _ := c.needThread()
	if th == nil {
		return c.cmd.Noreply || c.reply("SERVER_ERROR admission queue timeout"+crlf)
	}
	c.sets.Add(1)
	key := c.cmd.Keys[0]
	stored := true
	if ifAbsent {
		stored = s.st.PutIfAbsent(th, key, c.vbuf)
	} else {
		s.st.Put(th, key, c.vbuf)
	}
	if c.cmd.Noreply {
		return true
	}
	if stored {
		return c.reply("STORED" + crlf)
	}
	return c.reply("NOT_STORED" + crlf)
}

func (c *conn) doDelete() bool {
	s := c.srv
	th, _ := c.needThread()
	if th == nil {
		return c.cmd.Noreply || c.reply("SERVER_ERROR admission queue timeout"+crlf)
	}
	c.deletes.Add(1)
	ok := s.st.Delete(th, c.cmd.Keys[0])
	if c.cmd.Noreply {
		return true
	}
	if ok {
		return c.reply("DELETED" + crlf)
	}
	return c.reply("NOT_FOUND" + crlf)
}

func (c *conn) reply(s string) bool {
	_, err := c.w.WriteString(s)
	return err == nil
}

// doStats answers the stats command:
//
//	stats            global serving counters, coalescing, admission
//	                 tails, store + reclamation + lifecycle aggregates
//	stats conns      per-connection op/byte/admission counters
//	stats slots      per-slot lease counts (Lifecycle.SlotLeases)
//	stats telemetry  live-sampler view: stall episodes, ping-ack and
//	                 pass-duration tails, last-window deltas
//	stats reset      rebase the attached sampler (replies RESET)
func (c *conn) doStats(arg string) bool {
	s := c.srv
	emit := func(name string, format string, args ...any) {
		c.w.WriteString("STAT ")
		c.w.WriteString(name)
		c.w.WriteByte(' ')
		fmt.Fprintf(c.w, format, args...)
		c.w.WriteString(crlf)
	}
	switch arg {
	case "":
		st := s.Stats()
		lc := s.g.Lifecycle()
		ss := s.st.Stats()
		// The sampled mirrors, not the owner-only counters: connections
		// are mid-burst while stats runs, so the plain reads would race.
		rs := s.g.ReclaimStatsSampled()
		adm := s.AdmissionWait()
		emit("uptime_s", "%.1f", time.Since(s.started).Seconds())
		emit("curr_connections", "%d", st.Conns)
		emit("total_connections", "%d", st.Accepted)
		emit("cmd_get", "%d", st.CmdGet)
		emit("cmd_set", "%d", st.CmdSet)
		emit("cmd_delete", "%d", st.CmdDelete)
		emit("get_keys", "%d", st.GetKeys)
		emit("get_hits", "%d", st.GetHits)
		emit("get_misses", "%d", st.GetMisses)
		emit("protocol_errors", "%d", st.ProtocolErrors)
		emit("coalesced_gets", "%d", st.CoalescedGets)
		emit("coalesced_batches", "%d", st.CoalescedBatches)
		emit("coalesce_widest", "%d", st.CoalesceWidest)
		emit("executor_gets", "%d", st.ExecutorGets)
		emit("slots", "%d", s.cfg.Slots)
		emit("slots_inuse", "%d", s.g.InUse())
		emit("slots_peak", "%d", s.g.Peak())
		emit("admission_queue", "%d", s.g.Waiting())
		emit("admission_waits", "%d", st.AdmissionWaits)
		emit("admission_timeouts", "%d", st.AdmissionTimeouts)
		emit("admission_wait_p50_us", "%.1f", adm.Quantile(0.50)/1e3)
		emit("admission_wait_p99_us", "%.1f", adm.Quantile(0.99)/1e3)
		emit("admission_wait_max_us", "%.1f", float64(adm.Max())/1e3)
		emit("store_gets", "%d", ss.Gets)
		emit("store_puts", "%d", ss.Puts)
		emit("store_overwrites", "%d", ss.Overwrites)
		emit("store_batches", "%d", ss.Batches)
		emit("store_stale_reads", "%d", ss.StaleReads)
		emit("policy", "%v", s.g.Policy())
		emit("domain_groups", "%d", s.g.Members())
		emit("unreclaimed", "%d", s.g.Unreclaimed())
		emit("reclaim_passes", "%d", rs.Passes)
		emit("reclaim_pings_per_pass", "%.1f", rs.PingsPerPass)
		emit("reclaim_scanned_per_pass", "%.1f", rs.ScannedPerPass)
		emit("lifecycle_slots", "%d", lc.Slots)
		emit("lifecycle_leased", "%d", lc.Leased)
		emit("lifecycle_peak", "%d", lc.Peak)
		emit("lifecycle_releases", "%d", lc.Releases)
		emit("orphans_donated", "%d", lc.OrphansDonated)
		emit("orphans_adopted", "%d", lc.OrphansAdopted)
	case "conns":
		s.mu.Lock()
		conns := make([]*conn, 0, len(s.conns))
		for _, cc := range s.conns {
			conns = append(conns, cc)
		}
		s.mu.Unlock()
		sort.Slice(conns, func(i, j int) bool { return conns[i].id < conns[j].id })
		for _, cc := range conns {
			p := fmt.Sprintf("conn.%d.", cc.id)
			emit(p+"ops", "%d", cc.ops.Load())
			emit(p+"get_keys", "%d", cc.gets.Load())
			emit(p+"get_hits", "%d", cc.hits.Load())
			emit(p+"sets", "%d", cc.sets.Load())
			emit(p+"deletes", "%d", cc.deletes.Load())
			emit(p+"coalesced_gets", "%d", cc.coalesced.Load())
			emit(p+"bytes_in", "%d", cc.in.n.Load())
			emit(p+"bytes_out", "%d", cc.out.n.Load())
			emit(p+"admissions", "%d", cc.admWaits.Load())
			emit(p+"admission_wait_us", "%d", cc.admNanos.Load()/1e3)
		}
	case "slots":
		lc := s.g.Lifecycle()
		for i, n := range lc.SlotLeases {
			emit(fmt.Sprintf("slot.%d.leases", i), "%d", n)
		}
	case "telemetry":
		t := s.sampler.Load()
		if t == nil {
			emit("telemetry_enabled", "%d", 0)
			break
		}
		emit("telemetry_enabled", "%d", 1)
		tl := t.Snapshot()
		emit("sample_every_ms", "%.1f", float64(tl.Every)/1e6)
		emit("samples", "%d", len(tl.Samples))
		emit("samples_dropped", "%d", tl.Dropped)
		active := 0
		for _, ev := range tl.Stalls {
			if !ev.Recovered {
				active++
			}
		}
		emit("stalled_readers", "%d", active)
		emit("stall_episodes", "%d", len(tl.Stalls))
		emit("ping_ack_count", "%d", tl.PingAck.Count())
		emit("ping_ack_p50_us", "%.1f", tl.PingAck.Quantile(0.50)/1e3)
		emit("ping_ack_p99_us", "%.1f", tl.PingAck.Quantile(0.99)/1e3)
		emit("pass_count", "%d", tl.PassDur.Count())
		emit("pass_p99_us", "%.1f", tl.PassDur.Quantile(0.99)/1e3)
		emit("unreclaimed", "%d", tl.FinalUnrec)
		if n := len(tl.Samples); n > 0 {
			last := tl.Samples[n-1]
			emit("window_ops", "%d", last.Ops)
			emit("window_frees", "%d", last.Stats.Frees)
			emit("window_pings", "%d", last.Stats.PingsSent)
			emit("window_stalled", "%d", last.Stalled)
		}
		for _, ev := range tl.Stalls {
			state := "open"
			if ev.Recovered {
				state = "recovered"
			}
			emit(fmt.Sprintf("stall.m%d.s%d.i%d", ev.Member, ev.Slot, ev.Incarnation),
				"%s %s %.1fms", ev.Kind, state, float64(ev.Age)/1e6)
		}
	case "reset":
		// memcached-style counter reset, scoped to the live sampler:
		// rebase it so subsequent "stats telemetry" deltas start now.
		if t := s.sampler.Load(); t != nil {
			t.Reset()
		}
		return c.reply("RESET" + crlf)
	default:
		c.srv.protoErrs.Add(1)
		return c.reply("CLIENT_ERROR unknown stats argument" + crlf)
	}
	return c.reply("END" + crlf)
}
