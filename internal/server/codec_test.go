package server

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// TestParseCommand table-drives the request-line parser over well-formed
// and malformed lines.
func TestParseCommand(t *testing.T) {
	type want struct {
		op      Op
		keys    []string
		flags   uint32
		exptime int64
		bytes   int
		noreply bool
		stats   string
	}
	cases := []struct {
		name string
		line string
		want *want  // nil when an error is expected
		err  string // substring of the expected error; "" with want=nil means ErrUnknownCommand
	}{
		{"get one", "get k1", &want{op: OpGet, keys: []string{"k1"}}, ""},
		{"get many", "get a b c", &want{op: OpGet, keys: []string{"a", "b", "c"}}, ""},
		{"gets", "gets a b", &want{op: OpGets, keys: []string{"a", "b"}}, ""},
		{"get extra spaces", "get   a    b ", &want{op: OpGet, keys: []string{"a", "b"}}, ""},
		{"get no key", "get", nil, "at least one key"},
		{"get key too long", "get " + strings.Repeat("k", MaxKeyLen+1), nil, "bad key"},
		{"get key max len", "get " + strings.Repeat("k", MaxKeyLen), &want{op: OpGet, keys: []string{strings.Repeat("k", MaxKeyLen)}}, ""},
		{"get control char key", "get a\x01b", nil, "bad key"},

		{"set", "set k 7 0 5", &want{op: OpSet, keys: []string{"k"}, flags: 7, bytes: 5}, ""},
		{"set noreply", "set k 0 0 3 noreply", &want{op: OpSet, keys: []string{"k"}, bytes: 3, noreply: true}, ""},
		{"set exptime", "set k 0 120 4", &want{op: OpSet, keys: []string{"k"}, exptime: 120, bytes: 4}, ""},
		{"add", "add k 0 0 2", &want{op: OpAdd, keys: []string{"k"}, bytes: 2}, ""},
		{"set missing bytes", "set k 0 0", nil, "bad command line format"},
		{"set junk flags", "set k x 0 5", nil, "bad flags"},
		{"set negative bytes", "set k 0 0 -1", nil, "bad data length"},
		{"set bytes overflow", "set k 0 0 99999999999999999999", nil, "bad data length"},
		{"set trailing junk", "set k 0 0 5 banana", nil, "bad command line format"},
		{"set empty key", "set  0 0 5", nil, "bad command line format"},

		{"delete", "delete k", &want{op: OpDelete, keys: []string{"k"}}, ""},
		{"delete noreply", "delete k noreply", &want{op: OpDelete, keys: []string{"k"}, noreply: true}, ""},
		{"delete no key", "delete", nil, "bad command line format"},
		{"delete two keys", "delete a b", nil, "bad command line format"},

		{"stats", "stats", &want{op: OpStats}, ""},
		{"stats conns", "stats conns", &want{op: OpStats, stats: "conns"}, ""},
		{"stats extra", "stats a b", nil, "bad command line format"},
		{"quit", "quit", &want{op: OpQuit}, ""},
		{"quit junk", "quit now", nil, "bad command line format"},
		{"version", "version", &want{op: OpVersion}, ""},

		{"empty line", "", nil, "empty command line"},
		{"spaces only", "   ", nil, "empty command line"},
		{"unknown", "frobnicate k", nil, ""},
		{"case sensitive", "GET k", nil, ""},
	}
	var cmd Command
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ParseCommand([]byte(tc.line), &cmd)
			if tc.want == nil {
				if err == nil {
					t.Fatalf("ParseCommand(%q) succeeded, want error", tc.line)
				}
				if tc.err == "" {
					if !errors.Is(err, ErrUnknownCommand) {
						t.Fatalf("ParseCommand(%q) = %v, want ErrUnknownCommand", tc.line, err)
					}
					return
				}
				var ce ClientError
				if !errors.As(err, &ce) {
					t.Fatalf("ParseCommand(%q) = %v, want ClientError", tc.line, err)
				}
				if !strings.Contains(err.Error(), tc.err) {
					t.Fatalf("ParseCommand(%q) = %q, want substring %q", tc.line, err, tc.err)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseCommand(%q): %v", tc.line, err)
			}
			if cmd.Op != tc.want.op {
				t.Errorf("op = %v, want %v", cmd.Op, tc.want.op)
			}
			if len(cmd.Keys) != len(tc.want.keys) {
				t.Fatalf("keys = %q, want %q", cmd.Keys, tc.want.keys)
			}
			for i := range cmd.Keys {
				if cmd.Keys[i] != tc.want.keys[i] {
					t.Errorf("keys[%d] = %q, want %q", i, cmd.Keys[i], tc.want.keys[i])
				}
			}
			if cmd.Flags != tc.want.flags || cmd.Exptime != tc.want.exptime ||
				cmd.Bytes != tc.want.bytes || cmd.Noreply != tc.want.noreply ||
				cmd.StatsArg != tc.want.stats {
				t.Errorf("parsed %+v, want %+v", cmd, *tc.want)
			}
		})
	}
}

// chunkReader yields at most chunk bytes per Read, exercising split
// reads across request-line and data-chunk boundaries.
type chunkReader struct {
	s     string
	chunk int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.s) == 0 {
		return 0, io.EOF
	}
	n := c.chunk
	if n > len(p) {
		n = len(p)
	}
	if n > len(c.s) {
		n = len(c.s)
	}
	copy(p, c.s[:n])
	c.s = c.s[n:]
	return n, nil
}

// TestReadCommandFraming drives the full framing path: payload reads,
// CRLF and bare-LF terminators, pipelining, split reads, and the
// recoverable-error taxonomy.
func TestReadCommandFraming(t *testing.T) {
	read := func(t *testing.T, rd *Reader) (Command, []byte, error) {
		t.Helper()
		var cmd Command
		v, err := rd.ReadCommand(&cmd, nil)
		return cmd, v, err
	}

	t.Run("set payload", func(t *testing.T) {
		rd := NewReader(strings.NewReader("set k 0 0 5\r\nhello\r\n"), 0)
		cmd, v, err := read(t, rd)
		if err != nil || cmd.Op != OpSet || string(v) != "hello" {
			t.Fatalf("got op=%v v=%q err=%v", cmd.Op, v, err)
		}
	})

	t.Run("bare LF terminators", func(t *testing.T) {
		rd := NewReader(strings.NewReader("set k 0 0 2\nhi\nget k\n"), 0)
		if _, v, err := read(t, rd); err != nil || string(v) != "hi" {
			t.Fatalf("set: v=%q err=%v", v, err)
		}
		if cmd, _, err := read(t, rd); err != nil || cmd.Op != OpGet {
			t.Fatalf("get after bare-LF set: %v err=%v", cmd.Op, err)
		}
	})

	t.Run("payload length mismatch", func(t *testing.T) {
		rd := NewReader(strings.NewReader("set k 0 0 5\r\nhelloX\r\n"), 0)
		if _, _, err := read(t, rd); err == nil {
			t.Fatal("want bad-data-chunk error")
		} else {
			var ce ClientError
			if !errors.As(err, &ce) {
				t.Fatalf("want ClientError, got %v", err)
			}
		}
	})

	t.Run("oversized value consumed and stream resyncs", func(t *testing.T) {
		big := strings.Repeat("x", 100)
		rd := NewReader(strings.NewReader("set k 0 0 100\r\n"+big+"\r\nget k\r\n"), 64)
		if _, _, err := read(t, rd); !errors.Is(err, ErrValueTooLarge) {
			t.Fatalf("want ErrValueTooLarge, got %v", err)
		}
		if cmd, _, err := read(t, rd); err != nil || cmd.Op != OpGet {
			t.Fatalf("stream out of sync after oversized set: %v err=%v", cmd.Op, err)
		}
	})

	t.Run("unrecoverable giant declaration", func(t *testing.T) {
		rd := NewReader(strings.NewReader("set k 0 0 2000000\r\n"), 64)
		_, _, err := read(t, rd)
		if err == nil || errors.Is(err, ErrValueTooLarge) {
			t.Fatalf("want fatal error, got %v", err)
		}
	})

	t.Run("line too long drains", func(t *testing.T) {
		long := "get " + strings.Repeat("k ", maxLineLen)
		rd := NewReader(strings.NewReader(long+"\r\nversion\r\n"), 0)
		_, _, err := read(t, rd)
		var ce ClientError
		if !errors.As(err, &ce) {
			t.Fatalf("want ClientError for long line, got %v", err)
		}
		if cmd, _, err := read(t, rd); err != nil || cmd.Op != OpVersion {
			t.Fatalf("stream out of sync after long line: %v err=%v", cmd.Op, err)
		}
	})

	t.Run("pipelined commands", func(t *testing.T) {
		rd := NewReader(strings.NewReader("set a 0 0 1\r\nA\r\nget a b\r\ndelete a noreply\r\nquit\r\n"), 0)
		ops := []Op{OpSet, OpGet, OpDelete, OpQuit}
		for i, wantOp := range ops {
			cmd, _, err := read(t, rd)
			if err != nil || cmd.Op != wantOp {
				t.Fatalf("pipelined cmd %d: op=%v err=%v want %v", i, cmd.Op, err, wantOp)
			}
			if i < len(ops)-1 && rd.Buffered() == 0 {
				t.Fatalf("cmd %d: Buffered() = 0 with commands pending", i)
			}
		}
		if rd.Buffered() != 0 {
			t.Fatalf("Buffered() = %d after last command", rd.Buffered())
		}
	})

	t.Run("split reads", func(t *testing.T) {
		for _, chunk := range []int{1, 2, 3, 7} {
			rd := NewReader(&chunkReader{s: "set key 1 2 6\r\nabcdef\r\ngets key\r\n", chunk: chunk}, 0)
			cmd, v, err := read(t, rd)
			if err != nil || cmd.Op != OpSet || string(v) != "abcdef" {
				t.Fatalf("chunk=%d set: op=%v v=%q err=%v", chunk, cmd.Op, v, err)
			}
			cmd, _, err = read(t, rd)
			if err != nil || cmd.Op != OpGets || cmd.Keys[0] != "key" {
				t.Fatalf("chunk=%d gets: %+v err=%v", chunk, cmd, err)
			}
		}
	})

	t.Run("eof mid-payload", func(t *testing.T) {
		rd := NewReader(strings.NewReader("set k 0 0 10\r\nabc"), 0)
		if _, _, err := read(t, rd); err == nil {
			t.Fatal("want error for truncated payload")
		}
	})
}

// FuzzParseCommand feeds arbitrary request lines through the parser,
// checking it never panics and that accepted commands satisfy the
// parser's own invariants.
func FuzzParseCommand(f *testing.F) {
	for _, seed := range []string{
		"get k",
		"gets a b c",
		"set k 1 2 3 noreply",
		"add key 0 0 0",
		"delete k noreply",
		"stats conns",
		"quit",
		"version",
		"set k 0 0 99999999999999999999",
		"get " + strings.Repeat("k", 251),
		"   ",
		"set k 0 0 5 extra junk",
		"get\x00null",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		var cmd Command
		if err := ParseCommand(line, &cmd); err != nil {
			return
		}
		switch cmd.Op {
		case OpGet, OpGets:
			if len(cmd.Keys) == 0 {
				t.Fatalf("get accepted with no keys: %q", line)
			}
		case OpSet, OpAdd, OpDelete:
			if len(cmd.Keys) != 1 {
				t.Fatalf("%v accepted with %d keys: %q", cmd.Op, len(cmd.Keys), line)
			}
		}
		for _, k := range cmd.Keys {
			if len(k) == 0 || len(k) > MaxKeyLen {
				t.Fatalf("accepted bad key %q from %q", k, line)
			}
			for i := 0; i < len(k); i++ {
				if k[i] <= ' ' || k[i] == 127 {
					t.Fatalf("accepted key with control byte %q from %q", k, line)
				}
			}
		}
		if cmd.Bytes < 0 {
			t.Fatalf("negative payload length from %q", line)
		}
	})
}
