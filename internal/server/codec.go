// Package server is the wire-protocol serving front: a TCP server
// speaking a memcached-text subset (get/gets multi-key, set, add,
// delete, stats, quit) over the sharded KV store, with two
// production-shaped mechanisms layered on the thread-lifecycle work:
//
//   - Admission control. The domain is sized for a bounded number of
//     serving slots; every connection is a goroutine, and a connection
//     leases a core.Thread only while it has buffered commands to
//     execute (a "burst"), through the blocking Handles.AcquireWait.
//     Connections ≫ slots therefore queue for admission instead of
//     being refused, and an idle connection holds no reclamation
//     resources at all.
//
//   - Cross-connection get coalescing. Single-key gets are not executed
//     on the connection's own thread: they are queued to the key's
//     shard, where a dedicated executor merges every get that arrives
//     within a short window into one Store.GetBatch — one protected
//     operation serving many independent clients. This is the batch
//     amortization BenchmarkStoreBatchGet measures, harvested across
//     connections instead of within one.
//
// This file is the protocol codec: request-line parsing and data-chunk
// framing, kept free of net so it is table-testable and fuzzable.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"pop/internal/arena"
)

// MaxKeyLen is the longest accepted key (memcached's limit).
const MaxKeyLen = 250

// maxLineLen bounds a request line (a multi-get of ~60 max-size keys);
// longer lines are rejected and drained.
const maxLineLen = 1 << 14

// maxDiscard bounds how many declared-but-oversized payload bytes the
// server will read and drop to keep the stream in sync; a set claiming
// more than this is unrecoverable and closes the connection.
const maxDiscard = 1 << 20

// Op is a parsed command's operation.
type Op uint8

// The accepted operations (the memcached-text subset).
const (
	OpGet     Op = iota // get <key>+
	OpGets              // gets <key>+ (cas values are served as 0)
	OpSet               // set <key> <flags> <exptime> <bytes> [noreply]
	OpAdd               // add <key> <flags> <exptime> <bytes> [noreply]
	OpDelete            // delete <key> [noreply]
	OpStats             // stats [conns|slots]
	OpQuit              // quit
	OpVersion           // version
)

// Command is one parsed request. Keys is reused across parses; copy
// entries to keep them past the next ReadCommand.
type Command struct {
	Op       Op
	Keys     []string // get/gets: all keys; set/add/delete: Keys[0]
	Flags    uint32   // set/add (accepted, not stored; served back as 0)
	Exptime  int64    // set/add (accepted, ignored: no TTL yet)
	Bytes    int      // set/add payload length
	Noreply  bool
	StatsArg string
}

// ClientError is a recoverable protocol violation: the server answers
// "CLIENT_ERROR <msg>" and keeps the connection.
type ClientError string

// Error implements error.
func (e ClientError) Error() string { return string(e) }

// ErrUnknownCommand is a recoverable unknown command name, answered
// with the bare "ERROR" reply.
var ErrUnknownCommand = errors.New("unknown command")

// ErrValueTooLarge is a set/add whose declared payload exceeds the
// value cap. The payload has been consumed (the stream is still in
// sync) and the server answers "SERVER_ERROR object too large for
// cache".
var ErrValueTooLarge = errors.New("object too large for cache")

// Reader frames commands off a connection's byte stream.
type Reader struct {
	r *bufio.Reader
	// maxValue caps set/add payloads (the store's MaxValueLen).
	maxValue int
}

// NewReader wraps r. maxValue <= 0 defaults to the arena's hard cap.
func NewReader(r io.Reader, maxValue int) *Reader {
	if maxValue <= 0 || maxValue > arena.MaxValueLen {
		maxValue = arena.MaxValueLen
	}
	return &Reader{r: bufio.NewReaderSize(r, maxLineLen), maxValue: maxValue}
}

// Buffered returns how many decoded-but-unconsumed bytes are pending —
// nonzero exactly when the client has pipelined further commands that
// can be served without blocking on the socket (the connection's
// thread-lease burst boundary).
func (rd *Reader) Buffered() int { return rd.r.Buffered() }

// ReadCommand reads one command, blocking for the request line. For
// set/add the payload is read into vbuf (grown as needed) and returned;
// other commands return vbuf untouched. Errors of type ClientError,
// ErrUnknownCommand and ErrValueTooLarge leave the stream in sync and
// the connection serviceable; any other error is fatal to the
// connection.
func (rd *Reader) ReadCommand(cmd *Command, vbuf []byte) ([]byte, error) {
	line, err := rd.readLine()
	if err != nil {
		return vbuf, err
	}
	if err := ParseCommand(line, cmd); err != nil {
		return vbuf, err
	}
	if cmd.Op != OpSet && cmd.Op != OpAdd {
		return vbuf, nil
	}
	if cmd.Bytes > rd.maxValue {
		// Consume the declared chunk so the next command parses.
		if cmd.Bytes > maxDiscard {
			return vbuf, fmt.Errorf("server: unrecoverable %d-byte payload", cmd.Bytes)
		}
		if _, err := io.CopyN(io.Discard, rd.r, int64(cmd.Bytes)+2); err != nil {
			return vbuf, err
		}
		return vbuf, ErrValueTooLarge
	}
	if cap(vbuf) < cmd.Bytes {
		vbuf = make([]byte, cmd.Bytes)
	}
	vbuf = vbuf[:cmd.Bytes]
	if _, err := io.ReadFull(rd.r, vbuf); err != nil {
		return vbuf, err
	}
	// The data chunk's terminator: CRLF per the protocol (a bare LF is
	// tolerated, as in request lines, for hand-driven sessions).
	b, err := rd.r.ReadByte()
	if err != nil {
		return vbuf, err
	}
	if b == '\r' {
		if b, err = rd.r.ReadByte(); err != nil {
			return vbuf, err
		}
	}
	if b != '\n' {
		return vbuf, ClientError("bad data chunk")
	}
	return vbuf, nil
}

// readLine reads one request line, stripping the terminator. Lines
// longer than maxLineLen are drained and rejected as a ClientError.
func (rd *Reader) readLine() ([]byte, error) {
	line, err := rd.r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		// Drain the oversized line so the stream resyncs.
		for err == bufio.ErrBufferFull {
			_, err = rd.r.ReadSlice('\n')
		}
		if err != nil {
			return nil, err
		}
		return nil, ClientError("line too long")
	}
	if err != nil {
		return nil, err
	}
	n := len(line) - 1 // strip '\n'
	if n > 0 && line[n-1] == '\r' {
		n--
	}
	return line[:n], nil
}

// ParseCommand parses one request line (terminator already stripped)
// into cmd, reusing cmd's key slice. It is the pure, fuzzable half of
// the codec.
func ParseCommand(line []byte, cmd *Command) error {
	*cmd = Command{Keys: cmd.Keys[:0]}
	fields := splitFields(line)
	if len(fields) == 0 {
		return ClientError("empty command line")
	}
	name, args := fields[0], fields[1:]
	switch string(name) {
	case "get", "gets":
		cmd.Op = OpGet
		if len(name) == 4 {
			cmd.Op = OpGets
		}
		if len(args) == 0 {
			return ClientError("get requires at least one key")
		}
		for _, k := range args {
			if !validKey(k) {
				return ClientError("bad key")
			}
			cmd.Keys = append(cmd.Keys, string(k))
		}
	case "set", "add":
		cmd.Op = OpSet
		if name[0] == 'a' {
			cmd.Op = OpAdd
		}
		if len(args) == 5 && string(args[4]) == "noreply" {
			cmd.Noreply = true
			args = args[:4]
		}
		if len(args) != 4 {
			return ClientError("bad command line format")
		}
		if !validKey(args[0]) {
			return ClientError("bad key")
		}
		cmd.Keys = append(cmd.Keys, string(args[0]))
		flags, err := parseUint(args[1], 32)
		if err != nil {
			return ClientError("bad flags")
		}
		cmd.Flags = uint32(flags)
		exp, err := parseUint(args[2], 63)
		if err != nil {
			return ClientError("bad exptime")
		}
		cmd.Exptime = int64(exp)
		n, err := parseUint(args[3], 31)
		if err != nil {
			return ClientError("bad data length")
		}
		cmd.Bytes = int(n)
	case "delete":
		cmd.Op = OpDelete
		if len(args) == 2 && string(args[1]) == "noreply" {
			cmd.Noreply = true
			args = args[:1]
		}
		if len(args) != 1 || !validKey(args[0]) {
			return ClientError("bad command line format")
		}
		cmd.Keys = append(cmd.Keys, string(args[0]))
	case "stats":
		cmd.Op = OpStats
		if len(args) > 1 {
			return ClientError("bad command line format")
		}
		if len(args) == 1 {
			cmd.StatsArg = string(args[0])
		}
	case "quit":
		cmd.Op = OpQuit
		if len(args) != 0 {
			return ClientError("bad command line format")
		}
	case "version":
		cmd.Op = OpVersion
		if len(args) != 0 {
			return ClientError("bad command line format")
		}
	default:
		return ErrUnknownCommand
	}
	return nil
}

// splitFields splits on single spaces without allocating a backing
// array per call beyond the slice headers (bytes.Fields semantics for
// the space-only separator the protocol uses).
func splitFields(line []byte) [][]byte {
	var out [][]byte
	start := -1
	for i, b := range line {
		if b == ' ' {
			if start >= 0 {
				out = append(out, line[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, line[start:])
	}
	return out
}

// validKey enforces memcached's key rules: 1..MaxKeyLen bytes, no
// whitespace or control characters.
func validKey(k []byte) bool {
	if len(k) == 0 || len(k) > MaxKeyLen {
		return false
	}
	for _, b := range k {
		if b <= ' ' || b == 127 {
			return false
		}
	}
	return true
}

// parseUint parses a base-10 unsigned integer of at most bits bits
// without allocating.
func parseUint(b []byte, bits int) (uint64, error) {
	if len(b) == 0 {
		return 0, ClientError("empty number")
	}
	var max uint64 = 1<<uint(bits) - 1
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, ClientError("bad number")
		}
		d := uint64(c - '0')
		if v > (max-d)/10 {
			return 0, ClientError("number out of range")
		}
		v = v*10 + d
	}
	return v, nil
}
