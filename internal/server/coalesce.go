package server

import (
	"runtime"
	"sync/atomic"
	"time"

	"pop/internal/core"
	"pop/internal/store"
)

// getReq is one connection's single-key get, queued to its shard's
// coalescer. buf is the connection's scratch: the executor appends the
// value into it and hands it back through out, so a hit costs no
// allocation once the connection's buffer has grown.
type getReq struct {
	key string
	buf []byte
	out chan<- getResult
}

// getResult answers a getReq. val aliases the request's buf (the
// connection owns it again once the result is received); ok=false means
// the key is absent.
type getResult struct {
	val []byte
	ok  bool
}

// coalescer merges concurrent single-key gets bound for one shard into
// batched protected operations. One executor goroutine per shard owns a
// dedicated group handle (leased at server start, outside the
// connection-admission budget, so get service can never deadlock
// against admission): it takes the first queued get, keeps collecting gets that
// arrive within the coalescing window (up to maxBatch), and answers the
// whole set with one Store.GetBatch — one StartOp/EndOp per shard per
// window instead of per connection. Independent clients thereby share
// protected operations: the reclamation cost of a read scales with
// batch windows, not with connection count.
//
// A window of zero degrades to opportunistic draining: whatever is
// already queued is batched, and a lone get is served immediately with
// no added latency.
type coalescer struct {
	st       *store.Store
	window   time.Duration
	maxBatch int
	reqs     chan getReq

	gets      atomic.Uint64 // gets served through this coalescer
	batches   atomic.Uint64 // GetBatch calls issued
	coalesced atomic.Uint64 // gets that shared a batch with >= 1 other
	maxSeen   atomic.Uint64 // widest batch observed
}

func newCoalescer(st *store.Store, window time.Duration, maxBatch int) *coalescer {
	if maxBatch < 2 {
		maxBatch = 2
	}
	return &coalescer{
		st:       st,
		window:   window,
		maxBatch: maxBatch,
		// Buffer one full batch per slot of backlog: submit only blocks
		// when the executor is more than a window behind.
		reqs: make(chan getReq, 4*maxBatch),
	}
}

// submit queues one get; the caller then blocks on its result channel.
func (c *coalescer) submit(r getReq) { c.reqs <- r }

// run is the shard executor: it owns h (a group handle leased by this
// goroutine at server start) until the request channel closes at
// shutdown, then releases it. close(ready) signals that the lease
// exists — the server counts these slots out of the
// connection-admission budget. Serving one shard only, the handle
// lazily leases exactly that shard's member domain thread.
func (c *coalescer) run(h *core.GroupHandle, ready chan<- struct{}) {
	close(ready)
	keys := make([]string, 0, c.maxBatch)
	outs := make([]chan<- getResult, 0, c.maxBatch)
	bufs := make([][]byte, 0, c.maxBatch)
	var b store.Batch
	for first := range c.reqs {
		keys = append(keys[:0], first.key)
		outs = append(outs[:0], first.out)
		bufs = append(bufs[:0], first.buf)

		// Collect the window's arrivals, polling with Gosched rather
		// than a runtime timer: the window is tens of microseconds, well
		// under the timer wakeup granularity of an otherwise idle
		// process, and a lone lightly-loaded get must not pay a
		// millisecond for a 50µs window. With a zero window this only
		// drains what is already queued.
		deadline := time.Now().Add(c.window)
	collect:
		for len(keys) < c.maxBatch {
			select {
			case r, ok := <-c.reqs:
				if !ok {
					break collect // shutdown: serve what we hold
				}
				keys = append(keys, r.key)
				outs = append(outs, r.out)
				bufs = append(bufs, r.buf)
			default:
				if c.window <= 0 || !time.Now().Before(deadline) {
					break collect
				}
				runtime.Gosched()
			}
		}

		c.st.GetBatch(h, keys, &b)
		for i := range outs {
			var res getResult
			if b.OK[i] {
				res = getResult{val: append(bufs[i][:0], b.Vals[i]...), ok: true}
			} else {
				res = getResult{val: bufs[i][:0]}
			}
			outs[i] <- res
		}

		n := uint64(len(keys))
		c.gets.Add(n)
		c.batches.Add(1)
		if n > 1 {
			c.coalesced.Add(n)
		}
		if n > c.maxSeen.Load() {
			c.maxSeen.Store(n)
		}
	}
	c.st.Release(h)
}
