// Package padded provides cache-line padded atomic primitives.
//
// Safe memory reclamation algorithms are dominated by single-writer
// multi-reader (SWMR) per-thread words: reservation slots, publish
// counters, announced epochs. If two threads' words share a cache line,
// false sharing serialises otherwise-independent threads and distorts
// every measurement this repository exists to make. Every per-thread word
// in this module therefore lives in its own padded cell.
//
// The pad size is 128 bytes, not 64: modern Intel parts prefetch cache
// lines in adjacent pairs, so 64-byte padding still ping-pongs under the
// spatial prefetcher.
package padded

import "sync/atomic"

// CacheLine is the padding granularity in bytes (two physical lines, to
// defeat the adjacent-line prefetcher).
const CacheLine = 128

// Uint64 is an atomic uint64 alone on its cache-line pair.
type Uint64 struct {
	_ [CacheLine - 8]byte
	v atomic.Uint64
	_ [CacheLine - 8]byte
}

// Load atomically loads the value.
func (p *Uint64) Load() uint64 { return p.v.Load() }

// Store atomically stores v.
func (p *Uint64) Store(v uint64) { p.v.Store(v) }

// Add atomically adds delta and returns the new value.
func (p *Uint64) Add(delta uint64) uint64 { return p.v.Add(delta) }

// CompareAndSwap executes the CAS on the padded word.
func (p *Uint64) CompareAndSwap(old, new uint64) bool { return p.v.CompareAndSwap(old, new) }

// Uint32 is an atomic uint32 alone on its cache-line pair.
type Uint32 struct {
	_ [CacheLine - 4]byte
	v atomic.Uint32
	_ [CacheLine - 4]byte
}

// Load atomically loads the value.
func (p *Uint32) Load() uint32 { return p.v.Load() }

// Store atomically stores v.
func (p *Uint32) Store(v uint32) { p.v.Store(v) }

// Add atomically adds delta and returns the new value.
func (p *Uint32) Add(delta uint32) uint32 { return p.v.Add(delta) }

// CompareAndSwap executes the CAS on the padded word.
func (p *Uint32) CompareAndSwap(old, new uint32) bool { return p.v.CompareAndSwap(old, new) }

// Int64 is an atomic int64 alone on its cache-line pair.
type Int64 struct {
	_ [CacheLine - 8]byte
	v atomic.Int64
	_ [CacheLine - 8]byte
}

// Load atomically loads the value.
func (p *Int64) Load() int64 { return p.v.Load() }

// Store atomically stores v.
func (p *Int64) Store(v int64) { p.v.Store(v) }

// Add atomically adds delta and returns the new value.
func (p *Int64) Add(delta int64) int64 { return p.v.Add(delta) }

// Bool is an atomic boolean alone on its cache-line pair.
type Bool struct {
	_ [CacheLine - 4]byte
	v atomic.Uint32
	_ [CacheLine - 4]byte
}

// Load reports the current value.
func (p *Bool) Load() bool { return p.v.Load() != 0 }

// Store sets the value.
func (p *Bool) Store(b bool) {
	if b {
		p.v.Store(1)
	} else {
		p.v.Store(0)
	}
}
