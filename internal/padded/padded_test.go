package padded_test

import (
	"sync"
	"testing"
	"unsafe"

	"pop/internal/padded"
)

func TestSizesDefeatFalseSharing(t *testing.T) {
	// Each padded cell must span at least two 64-byte lines so adjacent
	// cells in an array can never share a prefetched line pair.
	if s := unsafe.Sizeof(padded.Uint64{}); s < 2*64 {
		t.Fatalf("padded.Uint64 is %d bytes", s)
	}
	if s := unsafe.Sizeof(padded.Uint32{}); s < 2*64 {
		t.Fatalf("padded.Uint32 is %d bytes", s)
	}
	if s := unsafe.Sizeof(padded.Int64{}); s < 2*64 {
		t.Fatalf("padded.Int64 is %d bytes", s)
	}
	if s := unsafe.Sizeof(padded.Bool{}); s < 2*64 {
		t.Fatalf("padded.Bool is %d bytes", s)
	}
}

func TestUint64Ops(t *testing.T) {
	var v padded.Uint64
	v.Store(10)
	if v.Load() != 10 {
		t.Fatal("store/load")
	}
	if v.Add(5) != 15 {
		t.Fatal("add")
	}
	if !v.CompareAndSwap(15, 20) || v.Load() != 20 {
		t.Fatal("cas success path")
	}
	if v.CompareAndSwap(15, 30) {
		t.Fatal("cas false positive")
	}
}

func TestUint32Ops(t *testing.T) {
	var v padded.Uint32
	v.Store(1)
	if v.Add(2) != 3 || v.Load() != 3 {
		t.Fatal("uint32 ops")
	}
	if !v.CompareAndSwap(3, 9) {
		t.Fatal("uint32 cas")
	}
}

func TestInt64Negative(t *testing.T) {
	var v padded.Int64
	v.Store(-5)
	if v.Add(-5) != -10 || v.Load() != -10 {
		t.Fatal("int64 negative arithmetic")
	}
}

func TestBool(t *testing.T) {
	var v padded.Bool
	if v.Load() {
		t.Fatal("zero value not false")
	}
	v.Store(true)
	if !v.Load() {
		t.Fatal("store true")
	}
	v.Store(false)
	if v.Load() {
		t.Fatal("store false")
	}
}

func TestConcurrentAdders(t *testing.T) {
	var v padded.Uint64
	var wg sync.WaitGroup
	const workers, adds = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				v.Add(1)
			}
		}()
	}
	wg.Wait()
	if v.Load() != workers*adds {
		t.Fatalf("lost updates: %d", v.Load())
	}
}
