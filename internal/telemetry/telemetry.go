// Package telemetry is the live observability layer over the
// reclamation core: an interval sampler that turns the core's race-safe
// mirrors (core.StatsSampled, Unreclaimed, the ping-ack / pass-duration
// histograms, and SlotProbe progress words) into a Timeline of per-window
// deltas, plus a stalled-reader detector that surfaces the paper's
// §5.1.2 scenario — a reader parked inside an operation, or one sitting
// on an unanswered ping — as it happens rather than post-mortem.
//
// The sampler owns one goroutine and allocates only at Start and on
// stall onset; the per-tick work is a fixed number of atomic loads plus
// ring-buffer stores, so sampling at 100ms is invisible next to the
// workload it watches (the acceptance bound is ≤2% at 10ms-class
// intervals).
package telemetry

import (
	"sync"
	"time"

	"pop/internal/core"
	"pop/internal/report"
)

// CoreSource is the sampled surface the reclamation core exposes. Both
// *core.Domain and *core.DomainGroup satisfy it.
type CoreSource interface {
	StatsSampled() core.Stats
	Lifecycle() core.LifecycleStats
	Unreclaimed() int64
	PingAckHist() report.Histogram
	PassDurHist() report.Histogram
	Probes(dst []core.SlotProbe) []core.SlotProbe
}

// ExtrasSource lets a host (store, server) contribute extra monotone
// counters to every sample without telemetry importing its package.
// ExtraNames is called once at Start; ReadExtras is called every tick
// and must append current cumulative values for the same names, in the
// same order.
type ExtrasSource interface {
	ExtraNames() []string
	ReadExtras(dst []uint64) []uint64
}

// Config parameterizes a Sampler.
type Config struct {
	// Every is the sampling interval. Zero disables the ticker (the
	// sampler then only records the base and final snapshots, and Tick
	// can be driven manually in tests).
	Every time.Duration
	// Capacity bounds the sample ring. When full, the oldest sample's
	// deltas fold into Base (telescoping is preserved; Dropped counts
	// the folds). Default 512.
	Capacity int
	// StallAfter is how long a slot may sit inside one operation (odd,
	// unchanged opSeq) — or on an unanswered ping — before it is flagged
	// stalled. Default 50ms. Detection resolution is Every.
	StallAfter time.Duration
	// Ops, if set, reads the host's cumulative completed-operation
	// count (for throughput deltas).
	Ops func() uint64
	// Extras, if set, contributes host counters to every sample.
	Extras ExtrasSource
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 512
	}
	if c.StallAfter <= 0 {
		c.StallAfter = 50 * time.Millisecond
	}
	return c
}

// Sample is one interval's deltas (not cumulative totals): what
// happened between the previous tick and this one.
type Sample struct {
	At    float64    `json:"at_ms"` // ms since Start
	Ops   uint64     `json:"ops,omitempty"`
	Stats core.Stats `json:"stats"` // per-field deltas; MaxRetire is the cumulative high-water gauge
	// Gauges (instantaneous, not deltas):
	Unreclaimed int64 `json:"unreclaimed"`
	Leased      int   `json:"leased"`
	Stalled     int   `json:"stalled"` // slots stalled as of this tick
	// Per-window latency quantiles, microseconds (0 when the window saw
	// no passes/pings):
	PingAckP99 float64  `json:"ping_ack_p99_us"`
	PassP99    float64  `json:"pass_p99_us"`
	Extras     []uint64 `json:"extras,omitempty"` // deltas, aligned with Timeline.ExtraNames
}

// StallKind classifies a stalled slot.
type StallKind string

const (
	// StallInOp: the slot's opSeq has been odd and unchanged past
	// StallAfter — a reader parked inside an operation (it may still be
	// answering pings; EBR-style readers have nothing to answer).
	StallInOp StallKind = "in-op"
	// StallNoAck: in-op and sitting on a pending ping without having
	// advanced pubCount — the reclaimer-blocking variant (for
	// publish-on-ping policies only the publish path clears it).
	StallNoAck StallKind = "no-ack"
)

// StallEvent is one stalled-reader episode: a (member, slot,
// incarnation) tenant that stopped advancing, when it was first seen
// stalled, how long the episode lasted, and whether it recovered before
// the run ended.
type StallEvent struct {
	Member      int           `json:"member"`
	Slot        int           `json:"slot"`
	Incarnation uint64        `json:"incarnation"`
	Kind        StallKind     `json:"kind"`
	Start       float64       `json:"start_ms"` // ms since sampler Start
	Age         time.Duration `json:"age_ns"`   // episode duration so far (final if Recovered)
	Recovered   bool          `json:"recovered"`
}

// Timeline is a completed (or in-flight, via Snapshot) sampling run.
// Invariant: Base + the per-field sum of every Sample's Stats deltas
// == Final, exactly — regardless of mirror staleness, ring folds, or
// when ticks landed — because base, samples, and final all derive from
// the same monotone mirrors. chaos.Invariants.CheckTimeline asserts it.
type Timeline struct {
	Every      time.Duration `json:"every_ns"`
	Base       core.Stats    `json:"base"` // cumulative snapshot at Start (plus any folded samples)
	BaseOps    uint64        `json:"base_ops,omitempty"`
	ExtraNames []string      `json:"extra_names,omitempty"`
	BaseExtras []uint64      `json:"base_extras,omitempty"`
	Samples    []Sample      `json:"samples"`
	Final      core.Stats    `json:"final"` // cumulative snapshot at Stop/Snapshot
	FinalOps   uint64        `json:"final_ops,omitempty"`
	FinalUnrec int64         `json:"final_unreclaimed"`
	Dropped    int           `json:"dropped,omitempty"` // samples folded into Base on ring overflow
	Stalls     []StallEvent  `json:"stalls,omitempty"`
	// Whole-run latency distributions (cumulative, not per-window).
	PingAck report.Histogram `json:"-"`
	PassDur report.Histogram `json:"-"`
}

// SumDeltas returns Base plus every sample's Stats deltas: by the
// telescoping invariant this equals Final. MaxRetire, a gauge, is the
// max over Base and all samples.
func (tl *Timeline) SumDeltas() core.Stats {
	s := tl.Base
	for i := range tl.Samples {
		d := &tl.Samples[i].Stats
		s.Retires += d.Retires
		s.Frees += d.Frees
		s.Reclaims += d.Reclaims
		s.EpochReclaims += d.EpochReclaims
		s.POPReclaims += d.POPReclaims
		s.PingsSent += d.PingsSent
		s.ThreadsScanned += d.ThreadsScanned
		s.Publishes += d.Publishes
		s.Restarts += d.Restarts
		if d.MaxRetire > s.MaxRetire {
			s.MaxRetire = d.MaxRetire
		}
	}
	return s
}

// slotKey identifies a probed slot across ticks.
type slotKey struct {
	member, slot int
}

// slotState is the detector's per-slot memory between ticks.
type slotState struct {
	incarnation uint64
	opSeq       uint64
	pubCount    uint64
	since       time.Time // when this opSeq was first observed (odd only)
	eventIdx    int       // index+1 into timeline.Stalls while stalled; 0 = not stalled
}

// Sampler drives interval sampling over one CoreSource. All methods
// are safe for concurrent use; the hot path belongs to the tick
// goroutine and touches only the sampler's own state plus the source's
// atomic mirrors.
type Sampler struct {
	src CoreSource
	cfg Config

	mu      sync.Mutex
	started time.Time
	running bool
	stop    chan struct{}
	done    chan struct{}

	// Previous cumulative snapshots (tick-to-tick delta bases).
	prevStats  core.Stats
	prevOps    uint64
	prevAck    report.Histogram
	prevPass   report.Histogram
	prevExtras []uint64
	curExtras  []uint64

	// Ring of samples.
	ring    []Sample
	head    int // index of oldest sample
	n       int // samples in ring
	dropped int

	// Stall detector state.
	slots  map[slotKey]slotState
	probes []core.SlotProbe
	stalls []StallEvent

	base       core.Stats
	baseOps    uint64
	baseExtras []uint64
	extraNames []string
}

// NewSampler builds a sampler over src. Call Start to begin.
func NewSampler(src CoreSource, cfg Config) *Sampler {
	return &Sampler{src: src, cfg: cfg.withDefaults()}
}

// Start records the base snapshot and, if cfg.Every > 0, launches the
// tick goroutine. Starting a running sampler is a no-op.
func (s *Sampler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return
	}
	s.running = true
	s.started = time.Now()
	s.rebaseLocked()
	s.ring = make([]Sample, s.cfg.Capacity)
	s.head, s.n, s.dropped = 0, 0, 0
	s.slots = make(map[slotKey]slotState)
	s.stalls = nil
	if s.cfg.Extras != nil {
		s.extraNames = s.cfg.Extras.ExtraNames()
	}
	if s.cfg.Every > 0 {
		s.stop = make(chan struct{})
		s.done = make(chan struct{})
		go s.loop(s.stop, s.done)
	}
}

// rebaseLocked re-reads the cumulative snapshots as the new base.
func (s *Sampler) rebaseLocked() {
	s.base = s.src.StatsSampled()
	s.prevStats = s.base
	if s.cfg.Ops != nil {
		s.baseOps = s.cfg.Ops()
		s.prevOps = s.baseOps
	}
	s.prevAck = s.src.PingAckHist()
	s.prevPass = s.src.PassDurHist()
	if s.cfg.Extras != nil {
		s.baseExtras = s.cfg.Extras.ReadExtras(nil)
		s.prevExtras = append([]uint64(nil), s.baseExtras...)
	}
}

func (s *Sampler) loop(stop, done chan struct{}) {
	defer close(done)
	tk := time.NewTicker(s.cfg.Every)
	defer tk.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tk.C:
			s.Tick()
		}
	}
}

// Tick takes one sample now. Normally driven by the internal ticker;
// exported so tests (and Every==0 users) can drive sampling manually.
func (s *Sampler) Tick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return
	}
	now := time.Now()
	cur := s.src.StatsSampled()
	ack := s.src.PingAckHist()
	pass := s.src.PassDurHist()
	lc := s.src.Lifecycle()

	sm := Sample{
		At:          float64(now.Sub(s.started)) / float64(time.Millisecond),
		Stats:       subStats(cur, s.prevStats),
		Unreclaimed: s.src.Unreclaimed(),
		Leased:      lc.Leased,
	}
	if s.cfg.Ops != nil {
		o := s.cfg.Ops()
		sm.Ops = o - s.prevOps
		s.prevOps = o
	}
	if w := ack.Sub(&s.prevAck); w.Count() > 0 {
		sm.PingAckP99 = w.Quantile(0.99) / 1e3
	}
	if w := pass.Sub(&s.prevPass); w.Count() > 0 {
		sm.PassP99 = w.Quantile(0.99) / 1e3
	}
	if s.cfg.Extras != nil {
		s.curExtras = s.cfg.Extras.ReadExtras(s.curExtras[:0])
		sm.Extras = make([]uint64, len(s.curExtras))
		for i, v := range s.curExtras {
			var p uint64
			if i < len(s.prevExtras) {
				p = s.prevExtras[i]
			}
			sm.Extras[i] = v - p
		}
		s.prevExtras = append(s.prevExtras[:0], s.curExtras...)
	}
	sm.Stalled = s.scanStallsLocked(now)

	s.prevStats = cur
	s.prevAck = ack
	s.prevPass = pass
	s.pushLocked(sm)
}

// subStats returns per-field cur-prev deltas; MaxRetire stays the
// cumulative gauge (high-water marks don't telescope).
func subStats(cur, prev core.Stats) core.Stats {
	return core.Stats{
		Retires:        cur.Retires - prev.Retires,
		Frees:          cur.Frees - prev.Frees,
		Reclaims:       cur.Reclaims - prev.Reclaims,
		EpochReclaims:  cur.EpochReclaims - prev.EpochReclaims,
		POPReclaims:    cur.POPReclaims - prev.POPReclaims,
		PingsSent:      cur.PingsSent - prev.PingsSent,
		ThreadsScanned: cur.ThreadsScanned - prev.ThreadsScanned,
		Publishes:      cur.Publishes - prev.Publishes,
		Restarts:       cur.Restarts - prev.Restarts,
		MaxRetire:      cur.MaxRetire,
	}
}

// pushLocked appends sm to the ring, folding the oldest sample into
// Base when full so the telescoping invariant survives overflow.
func (s *Sampler) pushLocked(sm Sample) {
	if s.n == len(s.ring) {
		old := &s.ring[s.head]
		s.base = mergeStats(s.base, old.Stats)
		if len(old.Extras) == len(s.baseExtras) {
			for i, v := range old.Extras {
				s.baseExtras[i] += v
			}
		}
		s.baseOps += old.Ops
		s.head = (s.head + 1) % len(s.ring)
		s.n--
		s.dropped++
	}
	s.ring[(s.head+s.n)%len(s.ring)] = sm
	s.n++
}

// mergeStats adds delta d onto cumulative base b (gauge MaxRetire by
// max).
func mergeStats(b, d core.Stats) core.Stats {
	b.Retires += d.Retires
	b.Frees += d.Frees
	b.Reclaims += d.Reclaims
	b.EpochReclaims += d.EpochReclaims
	b.POPReclaims += d.POPReclaims
	b.PingsSent += d.PingsSent
	b.ThreadsScanned += d.ThreadsScanned
	b.Publishes += d.Publishes
	b.Restarts += d.Restarts
	if d.MaxRetire > b.MaxRetire {
		b.MaxRetire = d.MaxRetire
	}
	return b
}

// scanStallsLocked runs the stalled-reader detector over the current
// slot probes; returns the number of slots stalled right now.
//
// Only an odd (in-operation) opSeq can stall: a quiescent slot is by
// definition not blocking anyone, even if a stale ping word is parked
// on it (NBR pings every slot; quiescent tenants ack lazily at next
// StartOp). An episode upgrades from in-op to no-ack when a pending
// ping coexists with an unmoved pubCount. Incarnation changes reset
// the state — a new tenant inherits nothing from the old one.
func (s *Sampler) scanStallsLocked(now time.Time) int {
	s.probes = s.src.Probes(s.probes[:0])
	stalled := 0
	for _, p := range s.probes {
		k := slotKey{p.Member, p.Slot}
		st, seen := s.slots[k]
		fresh := !seen || st.incarnation != p.Incarnation || st.opSeq != p.OpSeq
		if fresh {
			// New tenant or progress: close any open episode.
			if st.eventIdx != 0 {
				ev := &s.stalls[st.eventIdx-1]
				ev.Recovered = true
				ev.Age = now.Sub(st.since)
			}
			st = slotState{incarnation: p.Incarnation, opSeq: p.OpSeq, pubCount: p.PubCount, since: now}
		}
		if p.OpSeq%2 == 1 && !fresh && now.Sub(st.since) > s.cfg.StallAfter {
			kind := StallInOp
			if p.PingPending && p.PubCount == st.pubCount {
				kind = StallNoAck
			}
			if st.eventIdx == 0 {
				s.stalls = append(s.stalls, StallEvent{
					Member:      p.Member,
					Slot:        p.Slot,
					Incarnation: p.Incarnation,
					Kind:        kind,
					Start:       float64(st.since.Sub(s.started)) / float64(time.Millisecond),
				})
				st.eventIdx = len(s.stalls)
			}
			ev := &s.stalls[st.eventIdx-1]
			ev.Age = now.Sub(st.since)
			if kind == StallNoAck {
				ev.Kind = StallNoAck // an episode can only escalate
			}
			stalled++
		}
		s.slots[k] = st
	}
	return stalled
}

// Stalled returns the stall episodes observed so far (both recovered
// and still-open), oldest first.
func (s *Sampler) Stalled() []StallEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]StallEvent(nil), s.stalls...)
}

// snapshotLocked assembles a Timeline from current state.
func (s *Sampler) snapshotLocked() Timeline {
	tl := Timeline{
		Every:      s.cfg.Every,
		Base:       s.base,
		BaseOps:    s.baseOps,
		ExtraNames: append([]string(nil), s.extraNames...),
		BaseExtras: append([]uint64(nil), s.baseExtras...),
		Final:      s.src.StatsSampled(),
		FinalUnrec: s.src.Unreclaimed(),
		Dropped:    s.dropped,
		Stalls:     append([]StallEvent(nil), s.stalls...),
		PingAck:    s.src.PingAckHist(),
		PassDur:    s.src.PassDurHist(),
	}
	if s.cfg.Ops != nil {
		tl.FinalOps = s.cfg.Ops()
	}
	tl.Samples = make([]Sample, s.n)
	for i := 0; i < s.n; i++ {
		tl.Samples[i] = s.ring[(s.head+i)%len(s.ring)]
	}
	// Final must equal Base + Σ deltas: fold the not-yet-sampled tail
	// (everything since the last tick) into one closing sample so the
	// invariant holds however the ticker landed.
	tail := subStats(tl.Final, s.prevStats)
	if tail != (core.Stats{MaxRetire: tail.MaxRetire}) || s.n == 0 {
		closing := Sample{
			At:          float64(time.Since(s.started)) / float64(time.Millisecond),
			Stats:       tail,
			Unreclaimed: tl.FinalUnrec,
		}
		if s.cfg.Ops != nil {
			closing.Ops = tl.FinalOps - s.prevOps
		}
		tl.Samples = append(tl.Samples, closing)
	}
	return tl
}

// Snapshot returns the timeline so far without stopping the sampler.
// The closing partial sample makes the snapshot self-consistent
// (Base + Σ deltas == Final); the sampler's own state is unchanged.
func (s *Sampler) Snapshot() Timeline {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

// Stop halts the ticker and returns the final timeline. Idempotent;
// returns nil if never started.
func (s *Sampler) Stop() *Timeline {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return nil
	}
	if s.stop != nil {
		close(s.stop)
		done := s.done
		s.stop, s.done = nil, nil
		s.mu.Unlock()
		<-done
		s.mu.Lock()
	}
	// Close any still-open stall episodes at their final age.
	now := time.Now()
	for _, st := range s.slots {
		if st.eventIdx != 0 {
			ev := &s.stalls[st.eventIdx-1]
			ev.Age = now.Sub(st.since)
		}
	}
	tl := s.snapshotLocked()
	s.running = false
	s.mu.Unlock()
	return &tl
}

// Reset rebases the sampler in place: samples, stalls, and folds are
// discarded and the current cumulative snapshots become the new Base.
// Backs popserve's "stats reset".
func (s *Sampler) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return
	}
	s.started = time.Now()
	s.rebaseLocked()
	s.head, s.n, s.dropped = 0, 0, 0
	s.slots = make(map[slotKey]slotState)
	s.stalls = nil
}

// Running reports whether the sampler is between Start and Stop.
func (s *Sampler) Running() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}
