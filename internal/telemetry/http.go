package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
)

// Handler returns the telemetry HTTP mux:
//
//	/metrics          Prometheus text exposition (counters read live at
//	                  scrape time, so successive scrapes advance mid-run)
//	/timeline         the sampler's Snapshot() as JSON
//	/debug/pprof/...  net/http/pprof (profile, heap, goroutine, trace, ...)
//
// Counters are namespaced pop_*. The handler holds no state of its
// own; everything comes from the sampler's source at request time.
func (s *Sampler) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/timeline", s.serveTimeline)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the telemetry endpoint on addr (host:port; :0 picks a
// free port) and returns the bound address. The server runs until the
// listener is closed via the returned shutdown func.
func (s *Sampler) Serve(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}

func (s *Sampler) serveTimeline(w http.ResponseWriter, r *http.Request) {
	tl := s.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(&tl)
}

// serveMetrics writes Prometheus text exposition format v0.0.4. All
// cumulative values are read from the live source (not the sample
// ring), so two scrapes taken mid-run always differ when work happened
// between them.
func (s *Sampler) serveMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	src := s.src
	extras := s.cfg.Extras
	names := append([]string(nil), s.extraNames...)
	stallEpisodes := len(s.stalls)
	active := 0
	for _, st := range s.slots {
		if st.eventIdx != 0 && !s.stalls[st.eventIdx-1].Recovered {
			active++
		}
	}
	s.mu.Unlock()

	st := src.StatsSampled()
	lc := src.Lifecycle()
	ack := src.PingAckHist()
	pass := src.PassDurHist()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("pop_retires_total", "Nodes retired.", st.Retires)
	counter("pop_frees_total", "Nodes freed by reclamation.", st.Frees)
	counter("pop_reclaim_passes_total", "Reclamation passes.", st.Reclaims)
	counter("pop_epoch_reclaims_total", "EpochPOP fast-path (epoch) passes.", st.EpochReclaims)
	counter("pop_pop_reclaims_total", "EpochPOP escalation (publish-on-ping) passes.", st.POPReclaims)
	counter("pop_pings_sent_total", "Publish-on-ping / neutralization pings sent.", st.PingsSent)
	counter("pop_threads_scanned_total", "Thread slots scanned during passes.", st.ThreadsScanned)
	counter("pop_publishes_total", "Ping-triggered reservation publishes.", st.Publishes)
	counter("pop_restarts_total", "NBR neutralization restarts.", st.Restarts)
	gauge("pop_max_retire_list", "High-water mark of any thread's retire list.", int64(st.MaxRetire))
	gauge("pop_unreclaimed_nodes", "Nodes allocated but not yet freed.", src.Unreclaimed())
	gauge("pop_slots_leased", "Thread slots currently leased.", int64(lc.Leased))
	gauge("pop_slots_peak", "Peak concurrently leased slots.", int64(lc.Peak))
	counter("pop_slot_releases_total", "Thread slot releases.", lc.Releases)
	gauge("pop_stalled_readers", "Slots currently flagged by the stalled-reader detector.", int64(active))
	counter("pop_stall_episodes_total", "Stalled-reader episodes observed.", uint64(stallEpisodes))
	histo := func(name, help string, h interface {
		Count() uint64
		Quantile(float64) float64
		Max() int64
	}) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(&b, "%s{quantile=%q} %g\n", name, fmt.Sprintf("%g", q), h.Quantile(q)/1e9)
		}
		fmt.Fprintf(&b, "%s_count %d\n", name, h.Count())
		fmt.Fprintf(&b, "%s_max_seconds %g\n", name, float64(h.Max())/1e9)
	}
	histo("pop_ping_ack_seconds", "Ping broadcast to last ack, per pass that pinged.", &ack)
	histo("pop_pass_duration_seconds", "Whole reclamation pass duration.", &pass)
	if extras != nil {
		vals := extras.ReadExtras(nil)
		for i, name := range names {
			if i >= len(vals) {
				break
			}
			counter("pop_"+name+"_total", "Host counter "+name+".", vals[i])
		}
	}
	w.Write([]byte(b.String()))
}
