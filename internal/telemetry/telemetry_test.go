package telemetry_test

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"

	"pop/internal/arena"
	"pop/internal/core"
	"pop/internal/report"
	"pop/internal/telemetry"
)

// fakeSource is a hand-cranked CoreSource: tests mutate its fields
// between ticks to script exact counter and probe evolutions.
type fakeSource struct {
	stats  core.Stats
	lc     core.LifecycleStats
	unrec  int64
	ack    report.Histogram
	pass   report.Histogram
	probes []core.SlotProbe
}

func (f *fakeSource) StatsSampled() core.Stats       { return f.stats }
func (f *fakeSource) Lifecycle() core.LifecycleStats { return f.lc }
func (f *fakeSource) Unreclaimed() int64             { return f.unrec }
func (f *fakeSource) PingAckHist() report.Histogram  { return f.ack }
func (f *fakeSource) PassDurHist() report.Histogram  { return f.pass }
func (f *fakeSource) Probes(dst []core.SlotProbe) []core.SlotProbe {
	return append(dst, f.probes...)
}

type fakeExtras struct{ gets, sets uint64 }

func (f *fakeExtras) ExtraNames() []string { return []string{"cmd_get", "cmd_set"} }
func (f *fakeExtras) ReadExtras(dst []uint64) []uint64 {
	return append(dst, f.gets, f.sets)
}

// TestTimelineTelescoping: Base + Σ sample deltas == Final, exactly,
// including after ring overflow folds samples into Base.
func TestTimelineTelescoping(t *testing.T) {
	f := &fakeSource{}
	ex := &fakeExtras{}
	var ops uint64
	s := telemetry.NewSampler(f, telemetry.Config{
		Capacity: 4, // tiny ring: force folds
		Ops:      func() uint64 { return ops },
		Extras:   ex,
	})
	f.stats = core.Stats{Retires: 100, Frees: 40, MaxRetire: 9}
	ops, ex.gets = 1000, 7
	s.Start()
	for i := 0; i < 12; i++ {
		f.stats.Retires += uint64(3 + i)
		f.stats.Frees += uint64(i)
		f.stats.Reclaims++
		f.stats.PingsSent += 2
		if i == 5 {
			f.stats.MaxRetire = 77
		}
		ops += uint64(10 * i)
		ex.gets += 5
		ex.sets++
		s.Tick()
	}
	tl := s.Stop()
	if tl == nil {
		t.Fatal("Stop returned nil after Start")
	}
	if tl.Dropped == 0 {
		t.Fatalf("12 ticks into a 4-slot ring dropped nothing")
	}
	if got := tl.SumDeltas(); got != tl.Final {
		t.Fatalf("telescoping broken: SumDeltas %+v != Final %+v", got, tl.Final)
	}
	if tl.Final != f.stats {
		t.Fatalf("Final %+v != source %+v", tl.Final, f.stats)
	}
	if tl.Final.MaxRetire != 77 {
		t.Fatalf("MaxRetire gauge lost: %d", tl.Final.MaxRetire)
	}
	// Ops and extras telescope too.
	var sumOps uint64
	sumEx := append([]uint64(nil), tl.BaseExtras...)
	for _, sm := range tl.Samples {
		sumOps += sm.Ops
		for i, v := range sm.Extras {
			sumEx[i] += v
		}
	}
	if tl.BaseOps+sumOps != tl.FinalOps {
		t.Fatalf("ops do not telescope: %d + %d != %d", tl.BaseOps, sumOps, tl.FinalOps)
	}
	if sumEx[0] != ex.gets || sumEx[1] != ex.sets {
		t.Fatalf("extras do not telescope: %v vs (%d,%d)", sumEx, ex.gets, ex.sets)
	}
}

// TestSnapshotMidRun: Snapshot is self-consistent without disturbing
// the sampler, and a later Stop is still exact.
func TestSnapshotMidRun(t *testing.T) {
	f := &fakeSource{}
	s := telemetry.NewSampler(f, telemetry.Config{})
	s.Start()
	f.stats.Retires = 50
	s.Tick()
	f.stats.Retires = 80 // un-ticked tail
	snap := s.Snapshot()
	if got := snap.SumDeltas(); got != snap.Final {
		t.Fatalf("snapshot not self-consistent: %+v != %+v", got, snap.Final)
	}
	if snap.Final.Retires != 80 {
		t.Fatalf("snapshot Final.Retires = %d, want 80", snap.Final.Retires)
	}
	f.stats.Retires = 95
	tl := s.Stop()
	if got := tl.SumDeltas(); got != tl.Final || tl.Final.Retires != 95 {
		t.Fatalf("post-snapshot Stop broken: sum %+v final %+v", got, tl.Final)
	}
}

// TestStallDetector scripts the §5.1.2 scenario against fake probes:
// an in-op slot that stops advancing is flagged, upgrades to no-ack
// when a ping goes unanswered, recovers when opSeq moves, and a new
// incarnation inherits nothing.
func TestStallDetector(t *testing.T) {
	f := &fakeSource{}
	s := telemetry.NewSampler(f, telemetry.Config{StallAfter: time.Nanosecond})
	f.probes = []core.SlotProbe{
		{Slot: 0, Incarnation: 1, OpSeq: 7, PubCount: 3},       // in-op, will stall
		{Slot: 1, Incarnation: 1, OpSeq: 4, PingPending: true}, // quiescent: stale ping word, must NOT stall
	}
	s.Start()
	s.Tick() // first sight: records state, nothing stalled yet
	if ev := s.Stalled(); len(ev) != 0 {
		t.Fatalf("stalled on first sight: %+v", ev)
	}
	time.Sleep(time.Millisecond)
	s.Tick() // unchanged past StallAfter: in-op stall
	ev := s.Stalled()
	if len(ev) != 1 || ev[0].Slot != 0 || ev[0].Kind != telemetry.StallInOp || ev[0].Recovered {
		t.Fatalf("want one open in-op stall on slot 0, got %+v", ev)
	}
	// A ping lands and goes unanswered: escalate to no-ack.
	f.probes[0].PingPending = true
	s.Tick()
	if ev = s.Stalled(); len(ev) != 1 || ev[0].Kind != telemetry.StallNoAck {
		t.Fatalf("want escalation to no-ack, got %+v", ev)
	}
	// The reader finally advances: episode closes as recovered.
	f.probes[0].OpSeq = 8
	f.probes[0].PingPending = false
	s.Tick()
	if ev = s.Stalled(); len(ev) != 1 || !ev[0].Recovered || ev[0].Age <= 0 {
		t.Fatalf("want recovered episode, got %+v", ev)
	}
	// Same slot, new tenant parked mid-op: fresh state, second episode.
	f.probes[0] = core.SlotProbe{Slot: 0, Incarnation: 2, OpSeq: 11}
	s.Tick()
	time.Sleep(time.Millisecond)
	s.Tick()
	ev = s.Stalled()
	if len(ev) != 2 || ev[1].Incarnation != 2 || ev[1].Recovered {
		t.Fatalf("want second open episode for incarnation 2, got %+v", ev)
	}
	tl := s.Stop()
	if len(tl.Stalls) != 2 || tl.Stalls[1].Age <= 0 {
		t.Fatalf("Stop did not close open episodes: %+v", tl.Stalls)
	}
}

// tnode mirrors the core test node: Header first.
type tnode struct {
	core.Header
	val int64
}

// TestSamplerOverRealDomain runs the ticker against a live domain under
// churn: samples accumulate, the telescoping invariant holds, and the
// whole-run histograms carry the core's pass observations.
func TestSamplerOverRealDomain(t *testing.T) {
	d := core.NewDomain(core.HazardPtrPOP, 2, &core.Options{ReclaimThreshold: 8, EpochFreq: 2, BatchSize: 4})
	pool := arena.NewPool[tnode](nil, nil)
	caches := make([]*arena.ThreadCache[tnode], 2)
	typ := d.RegisterType(func(th *core.Thread, h *core.Header) {
		c := caches[th.ID()]
		if c == nil {
			c = pool.NewCache()
			caches[th.ID()] = c
		}
		c.Put((*tnode)(unsafe.Pointer(h)))
	})

	var ops atomic.Uint64
	s := telemetry.NewSampler(d, telemetry.Config{
		Every: time.Millisecond,
		Ops:   ops.Load,
	})
	s.Start()

	th := d.RegisterThread()
	cache := pool.NewCache()
	var cell core.Atomic
	deadline := time.Now().Add(30 * time.Millisecond)
	for i := 0; time.Now().Before(deadline); i++ {
		th.StartOp()
		n := cache.Get()
		n.val = int64(i)
		th.OnAlloc(&n.Header, typ)
		cell.Store(unsafe.Pointer(n))
		cell.Store(nil)
		th.Retire(&n.Header)
		th.EndOp()
		ops.Add(1)
		if i%512 == 0 {
			// A hot single-core mutator can starve the 1ms ticker;
			// manual ticks keep the sample count deterministic (Tick
			// is safe concurrently with the ticker).
			s.Tick()
		}
	}
	th.Flush()
	th.Release()
	tl := s.Stop()
	if len(tl.Samples) < 2 {
		t.Fatalf("30ms at 1ms ticks produced %d samples", len(tl.Samples))
	}
	if got := tl.SumDeltas(); got != tl.Final {
		t.Fatalf("telescoping broken on live domain: %+v != %+v", got, tl.Final)
	}
	if want := d.Stats(); tl.Final != want {
		t.Fatalf("post-release Final %+v != Stats %+v", tl.Final, want)
	}
	if tl.PassDur.Count() == 0 {
		t.Fatal("no pass durations in whole-run histogram")
	}
	if tl.FinalOps != ops.Load() {
		t.Fatalf("FinalOps %d != %d", tl.FinalOps, ops.Load())
	}
}

// TestResetRebases: after Reset the old deltas are gone and the
// invariant holds over the new base.
func TestResetRebases(t *testing.T) {
	f := &fakeSource{}
	s := telemetry.NewSampler(f, telemetry.Config{})
	s.Start()
	f.stats.Retires = 500
	s.Tick()
	s.Reset()
	f.stats.Retires = 600
	s.Tick()
	tl := s.Stop()
	if tl.Base.Retires != 500 {
		t.Fatalf("Reset base = %d, want 500", tl.Base.Retires)
	}
	if got := tl.SumDeltas(); got != tl.Final {
		t.Fatalf("telescoping broken after Reset: %+v != %+v", got, tl.Final)
	}
}

// TestHTTPEndpoints: /metrics scrapes advance between samples, and
// /timeline round-trips as JSON.
func TestHTTPEndpoints(t *testing.T) {
	f := &fakeSource{}
	f.stats = core.Stats{Retires: 11, Frees: 5}
	f.unrec = 6
	ex := &fakeExtras{gets: 2}
	s := telemetry.NewSampler(f, telemetry.Config{Extras: ex})
	s.Start()
	defer s.Stop()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	scrape := func() string {
		resp, err := srv.Client().Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}
	m1 := scrape()
	for _, want := range []string{
		"pop_retires_total 11", "pop_frees_total 5", "pop_unreclaimed_nodes 6",
		"pop_cmd_get_total 2", "pop_ping_ack_seconds_count 0",
		"# TYPE pop_retires_total counter",
	} {
		if !strings.Contains(m1, want) {
			t.Fatalf("scrape missing %q:\n%s", want, m1)
		}
	}
	f.stats.Retires = 40
	ex.gets = 9
	m2 := scrape()
	if !strings.Contains(m2, "pop_retires_total 40") || !strings.Contains(m2, "pop_cmd_get_total 9") {
		t.Fatalf("second scrape did not advance:\n%s", m2)
	}

	resp, err := srv.Client().Get(srv.URL + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tl telemetry.Timeline
	if err := json.NewDecoder(resp.Body).Decode(&tl); err != nil {
		t.Fatalf("timeline JSON: %v", err)
	}
	if tl.Final.Retires != 40 {
		t.Fatalf("timeline Final.Retires = %d, want 40", tl.Final.Retires)
	}
}
