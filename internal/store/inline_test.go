// The inline/arena boundary torture tests live in the external test
// package alongside the stale-value storm: they drive the store through
// its public surface only, flipping keys back and forth across the
// 7-byte inline threshold so every read races an encoding change.
package store_test

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"pop/internal/core"
	"pop/internal/rng"
	"pop/internal/store"
	"pop/internal/workload"
)

// flipSize maps a draw to a value size that alternates encodings:
// even draws stay inline (4..7 bytes, compact checksum format), odd
// draws go through the arena (8..63 bytes, full format).
func flipSize(draw uint64) int {
	if draw%2 == 0 {
		return workload.MinCompactLen + int(draw/2%4) // 4..7: inline
	}
	return workload.MinValueLen + int(draw/2%56) // 8..63: arena
}

// TestStoreInlineBoundarySequential pins the single-threaded contract
// at the encoding boundary: a key overwritten across every adjacent
// size pair around InlineMaxLen always serves exactly the last value
// written, and deleting it after each encoding leaves no value slot
// behind (an inline word must retire nothing; an arena handle must
// retire its slot).
func TestStoreInlineBoundarySequential(t *testing.T) {
	g := stormGroup(core.EpochPOP, 2, 1)
	s, err := store.New(g, store.Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	key := workload.KeyString(3)
	hk := store.KeyHash(key)
	var vbuf, rbuf []byte
	tag := uint32(0)
	// Walk sizes across the boundary in both directions, twice.
	sizes := []int{4, 7, 8, 7, 64, 5, 8, 4, 9, 6, 200, 7, 8}
	for round := 0; round < 2; round++ {
		for _, size := range sizes {
			tag++
			vbuf = workload.AppendValueBytes(vbuf[:0], hk, tag, size)
			s.Put(h, key, vbuf)
			got, ok := s.Get(h, key, rbuf)
			if !ok || !bytes.Equal(got, vbuf) {
				t.Fatalf("size %d tag %d: Get = (%d bytes, %v), want the %d bytes just put",
					size, tag, len(got), ok, len(vbuf))
			}
			if !workload.ValueBytesValid(hk, got) {
				t.Fatalf("size %d: served payload fails checksum", size)
			}
		}
		if !s.Delete(h, key) {
			t.Fatal("delete missed")
		}
		h.Flush()
		if vo := s.ValueSlotsOutstanding(); vo != 0 {
			t.Fatalf("round %d: %d value slots outstanding after delete+flush (leak across encodings)", round, vo)
		}
	}
}

// TestStoreInlineBoundaryFlip is the concurrent torture: writers
// continuously overwrite a small hot set with values that alternate
// between inline (≤ 7 B, tag-encoded into the map word) and arena
// (> 7 B, handle-encoded) sizes — single puts, batched puts, and
// deletes — while readers hammer Get and GetBatch on the same keys.
// Every successful read must carry a valid checksum for its key in
// whichever encoding it was served: a torn or misdecoded word, a
// handle read as inline payload (or vice versa), or a stale arena
// value surviving the sequence check all fail the checksum. Run it
// under -race to also catch unsynchronized word transitions.
func TestStoreInlineBoundaryFlip(t *testing.T) {
	const (
		writers = 2
		readers = 2
		hotKeys = 16
		rounds  = 300
		batch   = 8
	)
	for _, p := range core.Policies() {
		t.Run(p.String(), func(t *testing.T) {
			g := stormGroup(p, 2, writers+readers+1)
			s, err := store.New(g, store.Config{Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			keyTab := make([]string, hotKeys)
			hkTab := make([]int64, hotKeys)
			h0, err := s.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			var vbuf []byte
			for i := range keyTab {
				keyTab[i] = workload.KeyString(int64(i))
				hkTab[i] = store.KeyHash(keyTab[i])
				vbuf = workload.AppendValueBytes(vbuf[:0], hkTab[i], 0, flipSize(uint64(i)))
				s.Put(h0, keyTab[i], vbuf)
			}

			var (
				badReads atomic.Uint64
				stop     atomic.Bool
				wgW, wgR sync.WaitGroup
			)
			for w := 0; w < writers; w++ {
				wgW.Add(1)
				go func(w int) {
					defer wgW.Done()
					h, err := s.Acquire()
					if err != nil {
						t.Error(err)
						return
					}
					defer s.Release(h)
					r := rng.New(uint64(w)*977 + 11)
					var buf []byte
					bkeys := make([]string, batch)
					bvals := make([][]byte, batch)
					bufs := make([][]byte, batch)
					var b store.Batch
					for round := 0; round < rounds; round++ {
						switch round % 3 {
						case 0: // single puts flipping the encoding per round
							for i := range keyTab {
								draw := r.Uint64()
								buf = workload.AppendValueBytes(buf[:0], hkTab[i], uint32(draw), flipSize(draw))
								s.Put(h, keyTab[i], buf)
							}
						case 1: // batched puts, mixed encodings within one batch
							for j := range bkeys {
								i := int(r.Intn(hotKeys))
								draw := r.Uint64()
								bkeys[j] = keyTab[i]
								bufs[j] = workload.AppendValueBytes(bufs[j][:0], hkTab[i], uint32(draw), flipSize(draw))
								bvals[j] = bufs[j]
							}
							s.PutBatch(h, bkeys, bvals, &b)
						default: // delete + re-insert through the other encoding
							i := int(r.Intn(hotKeys))
							s.Delete(h, keyTab[i])
							draw := r.Uint64()
							buf = workload.AppendValueBytes(buf[:0], hkTab[i], uint32(draw), flipSize(draw))
							s.Put(h, keyTab[i], buf)
						}
					}
				}(w)
			}
			for rd := 0; rd < readers; rd++ {
				wgR.Add(1)
				go func(rd int) {
					defer wgR.Done()
					h, err := s.Acquire()
					if err != nil {
						t.Error(err)
						return
					}
					defer s.Release(h)
					r := rng.New(uint64(rd)*1543 + 7)
					var buf []byte
					bkeys := make([]string, batch)
					var b store.Batch
					for !stop.Load() {
						if r.Uint64()%4 == 0 {
							for j := range bkeys {
								bkeys[j] = keyTab[r.Intn(hotKeys)]
							}
							s.GetBatch(h, bkeys, &b)
							for j, key := range bkeys {
								if b.OK[j] && !workload.ValueBytesValid(store.KeyHash(key), b.Vals[j]) {
									badReads.Add(1)
								}
							}
							continue
						}
						i := int(r.Intn(hotKeys))
						v, ok := s.Get(h, keyTab[i], buf)
						if ok && !workload.ValueBytesValid(hkTab[i], v) {
							badReads.Add(1)
						}
						buf = v
					}
				}(rd)
			}
			// Writers bound the run; readers spin until they finish.
			wgW.Wait()
			stop.Store(true)
			wgR.Wait()
			if n := badReads.Load(); n != 0 {
				t.Fatalf("%d reads served a payload failing its key checksum", n)
			}

			// Quiescent sweep: every surviving key must still serve a
			// valid payload in a legal encoding.
			var rbuf []byte
			for i, key := range keyTab {
				v, ok := s.Get(h0, key, rbuf)
				if !ok {
					continue
				}
				rbuf = v
				if !workload.ValueBytesValid(hkTab[i], v) {
					t.Fatalf("final value for %s fails checksum (%d bytes)", key, len(v))
				}
				if len(v) > store.InlineMaxLen && len(v) < workload.MinValueLen {
					t.Fatalf("final value for %s has impossible length %d", key, len(v))
				}
			}
			// Inline words are immune to stale reads; arena reads may
			// retry, but none may have been served as garbage (checked
			// per-read above). Log the retry pressure for the record.
			t.Logf("stats: %d stale arena reads retried, %d overwrites",
				s.Stats().StaleReads, s.Stats().Overwrites)
		})
	}
}

// TestStoreInlineNoArenaTraffic pins the allocation claim behind the
// fast path: a workload whose values all fit inline must allocate no
// value-arena slots at all (beyond transient prefill churn, which this
// test avoids by checking the absolute counter).
func TestStoreInlineNoArenaTraffic(t *testing.T) {
	g := stormGroup(core.EBR, 1, 1)
	s, err := store.New(g, store.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	var vbuf []byte
	for i := int64(0); i < 256; i++ {
		key := workload.KeyString(i)
		hk := store.KeyHash(key)
		for sz := workload.MinCompactLen; sz <= store.InlineMaxLen; sz++ {
			vbuf = workload.AppendValueBytes(vbuf[:0], hk, uint32(sz), sz)
			s.Put(h, key, vbuf)
		}
	}
	if vo := s.ValueSlotsOutstanding(); vo != 0 {
		t.Fatalf("inline-only workload left %d arena value slots outstanding", vo)
	}
	// Sanity: the values really are served back inline-sized.
	for i := int64(0); i < 256; i++ {
		key := workload.KeyString(i)
		v, ok := s.Get(h, key, vbuf)
		if !ok || len(v) != store.InlineMaxLen {
			t.Fatalf("key %s: Get = (%d bytes, %v), want %d inline bytes",
				key, len(v), ok, store.InlineMaxLen)
		}
		vbuf = v
		if !workload.ValueBytesValid(store.KeyHash(key), v) {
			t.Fatalf("key %s: inline payload fails checksum", key)
		}
	}
}
