// The stale-value storm lives in an external test package so it can
// assert through the shared chaos.Invariants checker (internal/chaos
// imports store, so an in-package test would cycle). Store internals it
// needs — raw handle capture and direct arena reads — are exported via
// export_test.go.
package store_test

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"pop/internal/arena"
	"pop/internal/chaos"
	"pop/internal/core"
	"pop/internal/rng"
	"pop/internal/store"
	"pop/internal/workload"
)

// stormGroup mirrors the in-package test groups: thresholds small
// enough that reclamation genuinely runs during the storm.
func stormGroup(p core.Policy, members, slots int) *core.DomainGroup {
	return core.NewDomainGroup(p, members, slots, &core.Options{
		ReclaimThreshold: 32,
		EpochFreq:        8,
		BatchSize:        8,
		Debug:            true,
	})
}

// stormVal builds the canonical checksummed payload for key.
func stormVal(buf []byte, key string, tag uint32, size int) []byte {
	return workload.AppendValueBytes(buf[:0], store.KeyHash(key), tag, size)
}

// TestStoreStaleValueDetection is the value-retirement coverage storm:
// readers deliberately capture value handles and hold them across an
// overwrite window before dereferencing — the exact misuse the arena's
// sequence discipline exists to catch. The invariant, under every
// policy: a held handle's Read either fails (stale detected) or returns
// a payload that still passes the key's checksum (the value genuinely
// had not been freed yet — legal, since retire-to-free latency is the
// policy's choice). A successful Read of corrupt bytes is an undetected
// use-after-free and fails the test.
//
// The storm phase races detection against real reclamation; the
// deterministic phase then proves completeness: after every thread
// flushes, policies that drained their retire lists must flag *every*
// held handle as stale. The store is grouped (4 shards over 2 member
// domains), so value retirement also crosses the member mapping.
func TestStoreStaleValueDetection(t *testing.T) {
	const (
		threads = 4 // writers + handle-holding readers
		hotKeys = 16
		rounds  = 50
	)
	for _, p := range core.Policies() {
		t.Run(p.String(), func(t *testing.T) {
			g := stormGroup(p, 2, threads+1)
			s, err := store.New(g, store.Config{Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			hs := make([]*core.GroupHandle, threads+1)
			for i := range hs {
				if hs[i], err = s.Acquire(); err != nil {
					t.Fatal(err)
				}
			}
			keyTab := make([]string, hotKeys)
			hkTab := make([]int64, hotKeys)
			var vbuf []byte
			for i := range keyTab {
				keyTab[i] = workload.KeyString(int64(i))
				hkTab[i] = store.KeyHash(keyTab[i])
				vbuf = stormVal(vbuf, keyTab[i], uint32(i), 48)
				s.Put(hs[0], keyTab[i], vbuf)
			}

			var (
				overwrites [hotKeys]atomic.Uint64 // per-key overwrite progress
				undetected atomic.Uint64          // stale reads served as live garbage
				detected   atomic.Uint64          // stale reads flagged by the seq check
				stop       atomic.Bool
			)
			var wg sync.WaitGroup
			// Writers: continuous overwrites of the hot set.
			for w := 0; w < threads/2; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					h := hs[id]
					r := rng.New(uint64(id)*131 + uint64(p))
					var vb []byte
					tag := uint32(id) << 24
					for !stop.Load() {
						i := int(r.Intn(hotKeys))
						tag++
						vb = stormVal(vb, keyTab[i], tag, 16+int(r.Intn(500)))
						s.Put(h, keyTab[i], vb)
						overwrites[i].Add(1)
					}
				}(w)
			}
			// Readers: capture a handle, wait until the key has provably
			// been overwritten twice (so the captured handle is retired),
			// then dereference it. These drive the storm's duration — the
			// writers churn until every holder has finished its rounds.
			var holders sync.WaitGroup
			for w := threads / 2; w < threads; w++ {
				wg.Add(1)
				holders.Add(1)
				go func(id int) {
					defer wg.Done()
					defer holders.Done()
					h := hs[id]
					r := rng.New(uint64(id)*997 + uint64(p))
					var rb []byte
					for n := 0; n < rounds; n++ {
						i := int(r.Intn(hotKeys))
						rh, ok := s.RawHandle(h, keyTab[i])
						if !ok {
							continue
						}
						gen := overwrites[i].Load()
						// Hold the handle across an overwrite window (yield:
						// the writers make the progress being waited on). One
						// overwrite past the capture retires the held handle.
						for overwrites[i].Load() < gen+1 {
							h.Poll()
							runtime.Gosched()
						}
						var rok bool
						rb, rok = s.ReadRaw(rh, rb)
						switch {
						case !rok:
							detected.Add(1)
						case !workload.ValueBytesValid(hkTab[i], rb):
							undetected.Add(1) // garbage served as live: the bug
						}
					}
				}(w)
			}
			// One more reader uses the public Get path throughout, so the
			// retrying read is also exercised while values churn.
			wg.Add(1)
			go func() {
				defer wg.Done()
				h := hs[threads]
				r := rng.New(uint64(p) + 17)
				var gb []byte
				for !stop.Load() {
					i := int(r.Intn(hotKeys))
					var ok bool
					gb, ok = s.Get(h, keyTab[i], gb)
					if ok && !workload.ValueBytesValid(hkTab[i], gb) {
						undetected.Add(1)
					}
				}
			}()
			holders.Wait()
			stop.Store(true)
			wg.Wait()

			iv := chaos.Invariants{Policy: p}
			if vs := iv.CheckValueErrors(undetected.Load()); len(vs) != 0 {
				t.Fatalf("invariant violated under %v: %v", p, chaos.Errs(vs))
			}

			// Deterministic completeness: capture every key's current
			// handle, overwrite every key once (retiring those handles),
			// and flush. If the policy drained its retire lists, every
			// captured handle must now be flagged stale.
			h := hs[0]
			held := make([]arena.Handle, 0, hotKeys)
			for _, key := range keyTab {
				if rh, ok := s.RawHandle(h, key); ok {
					held = append(held, rh)
				}
			}
			var vb []byte
			for i, key := range keyTab {
				vb = stormVal(vb, key, 0xfff0+uint32(i), 64)
				s.Put(h, key, vb)
			}
			for _, hh := range hs {
				hh.Flush()
			}
			if g.Unreclaimed() == 0 {
				for _, rh := range held {
					if s.CheckRawHandle(rh) {
						t.Fatalf("handle %x still live after its retirement was reclaimed", uint64(rh))
					}
					if _, ok := s.ReadRaw(rh, nil); ok {
						t.Fatalf("handle %x readable after reclamation", uint64(rh))
					}
				}
			} else if p != core.NR && p != core.Crystalline {
				t.Logf("%v: %d retired nodes survived flush (allowed, detection still verified)", p, g.Unreclaimed())
			}
			// Value-plane sweep and counter sanity via the shared checker.
			var vs []chaos.Violation
			vs = append(vs, iv.CheckValues(h, s, keyTab)...)
			vs = append(vs, iv.CheckCounters(g.Stats())...)
			for _, v := range vs {
				t.Errorf("invariant violated: %s", v)
			}
			t.Logf("%v: %d stale dereferences detected during the storm", p, detected.Load())
		})
	}
}

// TestStoreStaleHandleNeverServesNewKeyData pins the recycling case: a
// handle held across free *and reallocation to another key* must not
// read the new key's bytes through the old handle.
func TestStoreStaleHandleNeverServesNewKeyData(t *testing.T) {
	g := stormGroup(core.EBR, 1, 1)
	s, err := store.New(g, store.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	th, err := s.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	s.Put(th, "victim", []byte("victim-value-000"))
	h, ok := s.RawHandle(th, "victim")
	if !ok {
		t.Fatal("no handle")
	}
	// Retire the handle and force its slot back into circulation.
	s.Delete(th, "victim")
	th.Flush()
	var reused bool
	for i := 0; i < 5000 && !reused; i++ {
		key := fmt.Sprintf("other-%d", i)
		s.Put(th, key, []byte("other-value-0000"))
		if nh, ok := s.RawHandle(th, key); ok && nh.SameSlot(h) {
			reused = true
		}
	}
	if !reused {
		t.Skip("slot not recycled within budget (cache order changed?)")
	}
	if _, ok := s.ReadRaw(h, nil); ok {
		t.Fatal("stale handle read another key's slot")
	}
	if s.CheckRawHandle(h) {
		t.Fatal("stale handle passed CheckHandle")
	}
}
