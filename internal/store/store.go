// Package store is the KV-serving front of this repository: a sharded,
// string-keyed key→value store layered on the ds.Map structures, with
// arena-backed byte-slice values, a batched multi-get, and
// value-returning scans over ordered backings. It is the layer the
// ROADMAP's north star asks for — the paper's benchmark dialect (int64
// keys, uint64 values, one protected operation per access) turned into
// a serving API (string keys, variable-size payloads, batch and
// iterator access) without changing the structures underneath.
//
// # Sharding and keys
//
// A Store is N shards (N a power of two), each an independent ds.Map
// over the same reclamation domain. A string key is hashed once to 64
// bits: the low bits select the shard and the whole hash is the int64
// key stored in the shard's map ("string-key layer hashing to int64").
// Keys are therefore identified by their hash — two strings colliding
// in all 64 bits alias one entry, a once-per-two-billion-billion event
// accepted by this layer's serving semantics. Shard statistics are
// cache-line padded so per-shard counters never false-share.
//
// # Values: arena handles, retirement, and stale detection
//
// Values live out of line in an arena.Bytes value arena; the uint64 a
// shard's map stores is the value's arena.Handle. An overwrite or
// delete retires the replaced handle through the *same core retire
// path as nodes* — a small ticket node carrying the handle flows
// through Thread.Retire, and the policy's reclamation pass frees the
// payload slot when it frees the ticket — so value lifetime is
// policy-visible: EBR holds overwritten values until the epoch drains,
// HP frees them at the next scan, NR leaks them.
//
// What makes this safe is the arena's sequence discipline, not reader
// reservations: a value read happens after the map lookup's protected
// operation has ended, so no reservation covers the payload. Instead
// Read validates the slot's sequence number around an atomic-word copy
// — a reader that lost the race to an overwrite's reclamation observes
// a deterministic "stale" verdict (never torn or recycled bytes) and
// retries through a fresh lookup. Staleness is counted per shard
// (Stats.StaleReads): it is the read-side cost of eager value
// reclamation, and it varies by policy exactly the way retire-to-free
// latency does.
//
// # Elastic serving
//
// Serving pools resize mid-run: Store.AcquireThread / ReleaseThread
// (a core.Handles pool over the store's domain) lease thread slots to
// serving goroutines and return them, so the live worker set can grow
// and shrink inside the domain's capacity instead of pinning one
// goroutine per pre-sized slot for the store's lifetime. A departing
// worker's unreclaimed retires — shard nodes and value tickets alike —
// are donated to the domain's orphan queue and adopted by live
// threads' next reclamation pass; its tid-keyed caches (value arena,
// tickets, scan scratch) transfer to the slot's next tenant through
// the lease's happens-before edge.
//
// # Batched multi-get
//
// GetBatch sorts the batch by (shard, hashed key) and answers each
// shard's group in one protected operation via ds.BatchGetter (one
// StartOp/EndOp per shard per batch instead of per key), falling back
// to per-key Gets on backings without batch support. Sorted keys also
// give tree descents warm upper-level paths. See BenchmarkStoreBatchGet.
//
// # Scans
//
// On ordered backings (skl, abt) Scan walks a hashed-key window and
// yields (hashed key, value copy) pairs, built on the validated
// RangeCollectKV scans: each chunk of pairs is one protected scan
// operation, and each value is resolved through the same
// stale-detecting read path as Get.
package store

import (
	"fmt"
	"math"
	"unsafe"

	"pop/internal/arena"
	"pop/internal/core"
	"pop/internal/ds"
	"pop/internal/ds/abtree"
	"pop/internal/ds/extbst"
	"pop/internal/ds/hashtable"
	"pop/internal/ds/hmlist"
	"pop/internal/ds/lazylist"
	"pop/internal/ds/skiplist"
	"pop/internal/padded"
)

// Backing names accepted by Config.Backing (the harness's DS names).
const (
	BackingSkipList          = "skl"  // lock-free skiplist: ordered, batch-capable (default)
	BackingHashTable         = "hmht" // hash table: shortest lookups, batch-capable
	BackingHarrisMichaelList = "hml"  // Harris-Michael list: batch-capable
	BackingABTree            = "abt"  // (a,b)-tree: ordered
	BackingLazyList          = "ll"   // lazy list
	BackingExternalBST       = "dgt"  // external BST
)

// scanChunk bounds the pairs one protected scan operation collects, so
// a large Scan is many medium operations instead of one enormous one.
const scanChunk = 128

// MaxShards caps Config.Shards: every shard registers one node type
// with the domain (plus one for value tickets), and the domain's type
// table is finite.
const MaxShards = 32

// Config tunes a Store. The zero value is usable.
type Config struct {
	// Shards is the shard count, rounded up to a power of two
	// (default 8, max MaxShards).
	Shards int
	// Backing selects the per-shard structure (Backing* constants;
	// default BackingSkipList).
	Backing string
	// ExpectedKeysPerShard sizes hash-table shards (default 1<<15).
	ExpectedKeysPerShard int64
	// MaxValueLen caps Put payloads (default and hard cap
	// arena.MaxValueLen).
	MaxValueLen int
}

func (c Config) withDefaults() (Config, error) {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Shards > MaxShards {
		return c, fmt.Errorf("store: %d shards exceeds MaxShards (%d)", c.Shards, MaxShards)
	}
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
	if c.Backing == "" {
		c.Backing = BackingSkipList
	}
	if c.ExpectedKeysPerShard <= 0 {
		c.ExpectedKeysPerShard = 1 << 15
	}
	if c.MaxValueLen <= 0 || c.MaxValueLen > arena.MaxValueLen {
		c.MaxValueLen = arena.MaxValueLen
	}
	switch c.Backing {
	case BackingSkipList, BackingHashTable, BackingHarrisMichaelList,
		BackingABTree, BackingLazyList, BackingExternalBST:
	default:
		return c, fmt.Errorf("store: unknown backing %q", c.Backing)
	}
	return c, nil
}

// memMap is what a shard's backing must provide.
type memMap interface {
	ds.Map
	Outstanding() int64
}

// shard is one partition: its map plus padded counters. The counters
// are atomic (several threads serve one shard) but each shard's block
// is padded, so shard i's stats never false-share with shard j's.
type shard struct {
	m       memMap
	scanner ds.RangeScanner // nil when the backing is unordered
	batch   ds.BatchGetter  // nil when the backing has no multi-get

	gets       padded.Uint64 // single-key lookups (GetBatch keys included)
	misses     padded.Uint64 // lookups that found no entry
	puts       padded.Uint64 // upserts (inserts + overwrites)
	overwrites padded.Uint64 // upserts that replaced (and retired) a value
	deletes    padded.Uint64 // deletes that removed (and retired) a value
	stale      padded.Uint64 // value reads that lost to reclamation and retried
	scanPairs  padded.Uint64 // pairs yielded by scans
}

// vticket is the retire ticket that routes a value's reclamation
// through the core retire path. Header must be first (the reclamation
// contract); h is the arena handle to free when the policy frees the
// ticket.
type vticket struct {
	core.Header
	h arena.Handle
}

// storeLocal is one thread slot's allocation state: its value-arena
// cache, its ticket cache, and reusable scratch for batches and scans.
// State is keyed by thread ID — a slot index — so when a serving
// goroutine releases its handle and another goroutine re-leases the
// slot (the elastic-pool lifecycle), the caches transfer with it: the
// domain's lease/release mutex is the happens-before edge, and the new
// tenant simply continues filling the previous tenant's caches.
type storeLocal struct {
	vc      *arena.BytesCache
	tickets *arena.ThreadCache[vticket]

	// scan scratch (owner-only)
	keys []int64
	vals []uint64
}

// Store is a sharded string-key KV store. All methods are safe for
// concurrent use by threads registered with the store's domain; as
// everywhere in this repository, a Thread must only be used by the
// goroutine that registered it.
type Store struct {
	d         *core.Domain
	cfg       Config
	mask      uint64
	shards    []shard
	vals      *arena.Bytes
	ticketTyp uint8
	tickets   *arena.Pool[vticket]
	locals    []*storeLocal // indexed by thread id (slot), owner-only
	pool      *core.Handles // serving-handle pool (elastic worker sets)

	batches padded.Uint64 // GetBatch calls
	scans   padded.Uint64 // Scan calls
}

// New creates a store in domain d.
func New(d *core.Domain, cfg Config) (*Store, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Store{
		d:       d,
		cfg:     cfg,
		mask:    uint64(cfg.Shards - 1),
		shards:  make([]shard, cfg.Shards),
		vals:    arena.NewBytes(),
		tickets: arena.NewPool[vticket](nil, nil),
		locals:  make([]*storeLocal, d.MaxThreads()),
		pool:    core.NewHandles(d),
	}
	s.ticketTyp = d.RegisterType(func(t *core.Thread, h *core.Header) {
		tk := (*vticket)(unsafe.Pointer(h))
		tl := s.localFor(t)
		tl.vc.Free(tk.h) // the payload slot frees with its ticket
		tl.tickets.Put(tk)
	})
	for i := range s.shards {
		var m memMap
		switch cfg.Backing {
		case BackingSkipList:
			m = skiplist.New(d)
		case BackingHashTable:
			m = hashtable.New(d, cfg.ExpectedKeysPerShard, 6)
		case BackingHarrisMichaelList:
			m = hmlist.New(d)
		case BackingABTree:
			m = abtree.New(d)
		case BackingLazyList:
			m = lazylist.New(d)
		case BackingExternalBST:
			m = extbst.New(d)
		}
		s.shards[i].m = m
		s.shards[i].scanner, _ = m.(ds.RangeScanner)
		s.shards[i].batch, _ = m.(ds.BatchGetter)
	}
	return s, nil
}

// Shards returns the shard count.
func (s *Store) Shards() int { return len(s.shards) }

// Handles returns the store's serving-handle pool: a goroutine-affine
// acquire/release facade over the domain's thread slots, so serving
// pools can resize mid-run — a departing worker's handle (and its
// tid-keyed caches) is re-leased to the next worker, and its
// unreclaimed value tickets are adopted by live threads.
func (s *Store) Handles() *core.Handles { return s.pool }

// AcquireThread leases a serving handle from the store's pool. The
// handle belongs to the calling goroutine until ReleaseThread.
func (s *Store) AcquireThread() (*core.Thread, error) { return s.pool.Acquire() }

// ReleaseThread returns a serving handle to the pool; the worker's
// unreclaimed retires (nodes and value tickets) are donated to the
// domain for adoption, and the slot becomes re-leasable.
func (s *Store) ReleaseThread(t *core.Thread) { s.pool.Release(t) }

// Ordered reports whether the backing supports hashed-key Scan.
func (s *Store) Ordered() bool { return s.shards[0].scanner != nil }

// localFor returns t's thread-local state, creating it on first use.
func (s *Store) localFor(t *core.Thread) *storeLocal {
	tl := s.locals[t.ID()]
	if tl == nil {
		tl = &storeLocal{vc: s.vals.NewCache(), tickets: s.tickets.NewCache()}
		s.locals[t.ID()] = tl
	}
	return tl
}

// KeyHash returns the int64 the store files key under — the identity
// the hashed-key Scan reports and the key value payloads are checked
// against in the harness.
func KeyHash(key string) int64 { return ikeyOf(hash64(key)) }

// ShardIndex returns the shard key routes to — the partition a serving
// layer's per-shard machinery (e.g. a get-coalescing window) must queue
// it on.
func (s *Store) ShardIndex(key string) int { return int(hash64(key) & s.mask) }

// MaxValueLen returns the store's configured payload cap.
func (s *Store) MaxValueLen() int { return s.cfg.MaxValueLen }

// hash64 is FNV-1a over the key bytes with a SplitMix finisher for
// avalanche (FNV alone is weak in the low bits the shard mask reads).
func hash64(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// ikeyOf folds a hash into the sentinel-free int64 key domain.
func ikeyOf(h uint64) int64 {
	k := int64(h)
	if k == math.MinInt64 {
		return k + 1
	}
	if k == math.MaxInt64 {
		return k - 1
	}
	return k
}

// locate resolves key to its shard and in-shard key.
func (s *Store) locate(key string) (*shard, int64) {
	h := hash64(key)
	return &s.shards[h&s.mask], ikeyOf(h)
}

// Get copies key's value into buf (growing it as needed) and returns
// the filled slice. ok=false means the key is absent. A lookup whose
// value slot was reclaimed between the protected map read and the
// arena read is detected by the arena's sequence check and retried
// with a fresh lookup — Get never returns torn or recycled bytes.
func (s *Store) Get(t *core.Thread, key string, buf []byte) ([]byte, bool) {
	sh, ik := s.locate(key)
	sh.gets.Add(1)
	for {
		hv, ok := sh.m.Get(t, ik)
		if !ok {
			sh.misses.Add(1)
			return buf[:0], false
		}
		if v, ok := s.vals.Read(arena.Handle(hv), buf); ok {
			return v, true
		}
		sh.stale.Add(1) // lost to an overwrite's reclamation: retry
	}
}

// Contains reports whether key is present, without touching its value.
func (s *Store) Contains(t *core.Thread, key string) bool {
	sh, ik := s.locate(key)
	_, ok := sh.m.Get(t, ik)
	return ok
}

// Put upserts key to a private copy of val (len(val) bounded by
// Config.MaxValueLen; it panics beyond it, like the ds layer's key
// checks). A replaced value is retired through the core retire path
// and freed by the domain's policy.
func (s *Store) Put(t *core.Thread, key string, val []byte) {
	if len(val) > s.cfg.MaxValueLen {
		panic(fmt.Sprintf("store: value of %d bytes exceeds MaxValueLen %d", len(val), s.cfg.MaxValueLen))
	}
	tl := s.localFor(t)
	nh := tl.vc.Alloc(val)
	sh, ik := s.locate(key)
	old, replaced := sh.m.Put(t, ik, uint64(nh))
	sh.puts.Add(1)
	if replaced {
		sh.overwrites.Add(1)
		s.retireValue(t, arena.Handle(old))
	}
}

// PutIfAbsent maps key to a copy of val only if key is absent and
// reports whether it did.
func (s *Store) PutIfAbsent(t *core.Thread, key string, val []byte) bool {
	if len(val) > s.cfg.MaxValueLen {
		panic(fmt.Sprintf("store: value of %d bytes exceeds MaxValueLen %d", len(val), s.cfg.MaxValueLen))
	}
	tl := s.localFor(t)
	nh := tl.vc.Alloc(val)
	sh, ik := s.locate(key)
	if sh.m.PutIfAbsent(t, ik, uint64(nh)) {
		sh.puts.Add(1)
		return true
	}
	tl.vc.Free(nh) // never published: no grace period needed
	return false
}

// Delete removes key, retiring its value, and reports whether it was
// present.
func (s *Store) Delete(t *core.Thread, key string) bool {
	sh, ik := s.locate(key)
	old, ok := sh.m.Delete(t, ik)
	if ok {
		sh.deletes.Add(1)
		s.retireValue(t, arena.Handle(old))
	}
	return ok
}

// retireValue hands a replaced value handle to the reclamation layer:
// the ticket is a managed node, so the handle's slot frees exactly when
// the domain's policy decides the retired generation is safe — value
// retirement is policy-visible, like node retirement.
func (s *Store) retireValue(t *core.Thread, h arena.Handle) {
	tl := s.localFor(t)
	tk := tl.tickets.Get()
	tk.h = h
	t.OnAlloc(&tk.Header, s.ticketTyp)
	t.Retire(&tk.Header)
}

// Scan visits the (hashed key, value) pairs with hashed key in
// [lo, hi], shard by shard and ascending within each shard, until fn
// returns false; it returns the number of pairs visited. Each chunk of
// at most scanChunk pairs is one protected scan operation
// (RangeCollectKV on the backing), and each value is resolved through
// the stale-detecting read path: a pair whose value was reclaimed
// mid-scan is re-fetched from the map (it may have a newer value by
// then) or skipped if deleted. The val slice passed to fn is reused
// across calls — copy it to keep it.
//
// Scan requires an ordered backing (Ordered); it panics otherwise.
func (s *Store) Scan(t *core.Thread, lo, hi int64, fn func(hkey int64, val []byte) bool) int {
	if !s.Ordered() {
		panic(fmt.Sprintf("store: Scan on unordered backing %q", s.cfg.Backing))
	}
	s.scans.Add(1)
	tl := s.localFor(t)
	var vbuf []byte
	visited := 0
	for i := range s.shards {
		sh := &s.shards[i]
		from := lo
		for from <= hi {
			tl.keys, tl.vals = sh.scanner.RangeCollectKV(t, from, hi, scanChunk, tl.keys, tl.vals)
			for j, k := range tl.keys {
				v, ok := s.vals.Read(arena.Handle(tl.vals[j]), vbuf)
				for !ok {
					// The pair's value lost to reclamation between the scan
					// and this read: serve the key's current value instead.
					sh.stale.Add(1)
					hv, present := sh.m.Get(t, k)
					if !present {
						break // deleted since the scan observed it: skip
					}
					v, ok = s.vals.Read(arena.Handle(hv), vbuf)
				}
				if !ok {
					continue
				}
				vbuf = v[:0]
				visited++
				sh.scanPairs.Add(1)
				if !fn(k, v) {
					return visited
				}
			}
			if len(tl.keys) < scanChunk {
				break // shard window exhausted
			}
			last := tl.keys[len(tl.keys)-1]
			if last >= hi {
				break
			}
			from = last + 1
		}
	}
	return visited
}

// Batch holds one GetBatch's results and reusable scratch. Vals[i] and
// OK[i] answer keys[i] of the batch; Vals slices point into an internal
// buffer that is overwritten by the next GetBatch with this Batch.
type Batch struct {
	Vals [][]byte
	OK   []bool

	hks   []uint64 // hash per key
	order []int    // key indices grouped by shard, ascending key within
	cnt   []int    // per-shard bucket counts/offsets
	ikeys []int64  // per-group scratch
	gvals []uint64
	gok   []bool
	offs  []int // value offsets into buf (per key; -1 = miss)
	lens  []int
	buf   []byte
}

// groupByShard fills b.order with 0..n-1 bucketed by shard (one
// counting-sort pass — comparison sorting here would cost more than the
// batching saves) and ascending by in-shard key within each bucket
// (insertion sort; buckets are small).
func (b *Batch) groupByShard(n, shards int, mask uint64) {
	b.cnt = resize(b.cnt, shards+1)
	for i := range b.cnt {
		b.cnt[i] = 0
	}
	for _, h := range b.hks[:n] {
		b.cnt[int(h&mask)+1]++
	}
	for s := 1; s <= shards; s++ {
		b.cnt[s] += b.cnt[s-1]
	}
	starts := b.cnt // after the scatter, cnt[s] is bucket s's end
	for i := 0; i < n; i++ {
		s := int(b.hks[i] & mask)
		b.order[starts[s]] = i
		starts[s]++
	}
	// starts[s] now holds bucket s's end; bucket s begins at starts[s-1]
	// (0 for s=0). Order each bucket by in-shard key.
	lo := 0
	for s := 0; s < shards; s++ {
		hi := starts[s]
		for i := lo + 1; i < hi; i++ {
			idx := b.order[i]
			k := ikeyOf(b.hks[idx])
			j := i
			for j > lo && ikeyOf(b.hks[b.order[j-1]]) > k {
				b.order[j] = b.order[j-1]
				j--
			}
			b.order[j] = idx
		}
		lo = hi
	}
}

// GetBatch answers every keys[i] into b.Vals[i]/b.OK[i]. The batch is
// sorted by (shard, hashed key) and each shard's group is answered in
// one protected operation on batch-capable backings — the entry/exit
// amortization that makes a 64-key batch measurably cheaper than 64
// Gets — with values resolved through the same stale-detecting path as
// Get. Results are positional: input order is preserved.
func (s *Store) GetBatch(t *core.Thread, keys []string, b *Batch) {
	n := len(keys)
	s.batches.Add(1)
	b.Vals = resize(b.Vals, n)
	b.OK = resize(b.OK, n)
	b.hks = resize(b.hks, n)
	b.order = resize(b.order, n)
	b.offs = resize(b.offs, n)
	b.lens = resize(b.lens, n)
	b.buf = b.buf[:0]
	for i, k := range keys {
		b.hks[i] = hash64(k)
	}
	b.groupByShard(n, len(s.shards), s.mask)

	for g := 0; g < n; {
		sh := &s.shards[b.hks[b.order[g]]&s.mask]
		e := g + 1
		for e < n && &s.shards[b.hks[b.order[e]]&s.mask] == sh {
			e++
		}
		group := b.order[g:e]
		b.ikeys = resize(b.ikeys, len(group))
		b.gvals = resize(b.gvals, len(group))
		b.gok = resize(b.gok, len(group))
		for j, idx := range group {
			b.ikeys[j] = ikeyOf(b.hks[idx])
		}
		sh.gets.Add(uint64(len(group)))
		if sh.batch != nil {
			// One protected operation for the whole group.
			sh.batch.GetBatch(t, b.ikeys, b.gvals, b.gok)
		} else {
			for j, ik := range b.ikeys {
				b.gvals[j], b.gok[j] = sh.m.Get(t, ik)
			}
		}
		// Resolve values. The buffer may grow (and move) while we append,
		// so record offsets now and slice at the end.
		for j, idx := range group {
			if !b.gok[j] {
				sh.misses.Add(1)
				b.offs[idx] = -1
				continue
			}
			hv := b.gvals[j]
			for {
				off := len(b.buf)
				v, ok := s.vals.Read(arena.Handle(hv), b.buf[off:])
				if ok {
					// v aliases buf's spare capacity unless Read had to
					// grow; append handles both (and keeps offsets valid —
					// slices are cut from the final buffer below).
					b.buf = append(b.buf[:off], v...)
					b.offs[idx], b.lens[idx] = off, len(v)
					break
				}
				// Stale: the batch's handle lost to reclamation. Re-serve
				// this key through a fresh protected lookup.
				sh.stale.Add(1)
				nhv, present := sh.m.Get(t, b.ikeys[j])
				if !present {
					sh.misses.Add(1)
					b.offs[idx] = -1
					break
				}
				hv = nhv
			}
		}
		g = e
	}
	for i := 0; i < n; i++ {
		if b.offs[i] < 0 {
			b.Vals[i], b.OK[i] = nil, false
		} else {
			b.Vals[i], b.OK[i] = b.buf[b.offs[i]:b.offs[i]+b.lens[i]], true
		}
	}
}

// resize returns s with length n, reallocating only when capacity is
// short.
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Size counts the store's keys (quiescent use only).
func (s *Store) Size(t *core.Thread) int {
	n := 0
	for i := range s.shards {
		if sized, ok := s.shards[i].m.(ds.Sized); ok {
			n += sized.Size(t)
		}
	}
	return n
}

// Outstanding reports live+retired occupancy across every pool the
// store owns: shard nodes, value slots, and retire tickets.
func (s *Store) Outstanding() int64 {
	n := s.vals.Outstanding() + s.tickets.Outstanding()
	for i := range s.shards {
		n += s.shards[i].m.Outstanding()
	}
	return n
}

// Stats is a snapshot of store counters, aggregated across shards.
type Stats struct {
	Gets       uint64 // lookups (batch keys included)
	GetMisses  uint64 // lookups finding no entry
	Puts       uint64 // upserts
	Overwrites uint64 // upserts that replaced (and retired) a value
	Deletes    uint64 // deletes that removed (and retired) a value
	Batches    uint64 // GetBatch calls
	Scans      uint64 // Scan calls
	ScanPairs  uint64 // pairs yielded by scans
	StaleReads uint64 // value reads that lost to reclamation and retried

	Values arena.BytesStats // value-arena counters
}

// Stats aggregates the per-shard counters.
func (s *Store) Stats() Stats {
	var out Stats
	for i := range s.shards {
		sh := &s.shards[i]
		out.Gets += sh.gets.Load()
		out.GetMisses += sh.misses.Load()
		out.Puts += sh.puts.Load()
		out.Overwrites += sh.overwrites.Load()
		out.Deletes += sh.deletes.Load()
		out.ScanPairs += sh.scanPairs.Load()
		out.StaleReads += sh.stale.Load()
	}
	out.Batches = s.batches.Load()
	out.Scans = s.scans.Load()
	out.Values = s.vals.Stats()
	return out
}
