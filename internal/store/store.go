// Package store is the KV-serving front of this repository: a sharded,
// string-keyed key→value store layered on the ds.Map structures, with
// arena-backed byte-slice values, batched multi-get and multi-put, and
// value-returning scans over ordered backings. It is the layer the
// ROADMAP's north star asks for — the paper's benchmark dialect (int64
// keys, uint64 values, one protected operation per access) turned into
// a serving API (string keys, variable-size payloads, batch and
// iterator access) without changing the structures underneath.
//
// # Sharding and keys
//
// A Store is N shards (N a power of two), each an independent ds.Map.
// A string key is hashed once to 64 bits: the low bits select the shard
// and the whole hash is the int64 key stored in the shard's map
// ("string-key layer hashing to int64"). Keys are therefore identified
// by their hash — two strings colliding in all 64 bits alias one entry,
// a once-per-two-billion-billion event accepted by this layer's serving
// semantics. Shard statistics are cache-line padded so per-shard
// counters never false-share.
//
// # Domain groups: reclamation fan-out bounded per shard
//
// The store is built over a core.DomainGroup rather than a single
// domain: shards map onto the group's member domains (a contiguous
// block of shards per member), and each shard's structure lives in its
// shard's member. A reclamation pass inside member m therefore pings
// and scans only m's registrants — O(readers-of-member), not O(total
// threads) — which removes the fan-out multiplier that flattens POP's
// high-thread-count curves when one domain backs every shard.
//
// Serving goroutines hold one core.GroupHandle each (Store.Acquire /
// Release, the group's Handles-style facade); the handle leases a
// member Thread lazily on the first operation that touches that
// member's shards. The membership invariant the group's safety
// argument needs — a thread's protected operation only touches
// structures of its member domain — holds by construction here: every
// operation resolves the shard first and runs on that shard's member
// thread, and the batched operations visit shards sequentially, one
// member operation at a time.
//
// # Values: inline words, arena handles, retirement, stale detection
//
// Values at most 7 bytes long never leave the map: the uint64 the
// shard's map stores is the payload itself, tag-encoded with the high
// bit set (bit 63, which arena.Handle reserves as zero) and the length
// in bits 56..58 — the memcached-style slab-inlining move that makes
// the hottest GETs a single protected map read with no second
// dereference, no seqlock validation, and no possibility of a stale
// retry. Inline values also have nothing to reclaim: an overwrite or
// delete of an inline value retires nothing, and overwrites that flip
// a key between encodings retire exactly the arena side (the inline
// word dies with the map cell; the arena handle goes through the
// ticket path below).
//
// Longer values live out of line in an arena.Bytes value arena; the
// uint64 a shard's map stores is the value's arena.Handle. An overwrite or
// delete retires the replaced handle through the *same core retire
// path as nodes* — a small ticket node carrying the handle flows
// through Thread.Retire in the shard's member domain, and the policy's
// reclamation pass frees the payload slot when it frees the ticket —
// so value lifetime is policy-visible: EBR holds overwritten values
// until the epoch drains, HP frees them at the next scan, NR leaks
// them. Orphan donation and adoption stay member-local, so the
// per-member Unreclaimed bounds the robust policies guarantee are
// preserved under grouping.
//
// What makes this safe is the arena's sequence discipline, not reader
// reservations: a value read happens after the map lookup's protected
// operation has ended, so no reservation covers the payload. Instead
// Read validates the slot's sequence number around an atomic-word copy
// — a reader that lost the race to an overwrite's reclamation observes
// a deterministic "stale" verdict (never torn or recycled bytes) and
// retries through a fresh lookup. Staleness is counted per shard
// (Stats.StaleReads): it is the read-side cost of eager value
// reclamation, and it varies by policy exactly the way retire-to-free
// latency does.
//
// # Elastic serving
//
// Serving pools resize mid-run: Store.Acquire / AcquireWait / Release
// lease group slots to serving goroutines and return them, so the live
// worker set can grow and shrink inside the group's capacity. A
// departing worker's unreclaimed retires — shard nodes and value
// tickets alike — are donated to each member domain's orphan queue and
// adopted by that member's live threads; its tid-keyed caches (value
// arena, tickets, scan scratch) transfer to the slot's next tenant
// through the lease's happens-before edge, per member.
//
// # Batched multi-get and multi-put
//
// GetBatch sorts the batch by (shard, hashed key) and answers each
// shard's group in one protected operation via ds.BatchGetter (one
// StartOp/EndOp per shard per batch instead of per key), falling back
// to per-key Gets on backings without batch support. PutBatch is the
// write-side mirror (ds.BatchPutter): the same counting sort, one
// protected operation per shard group, one arena reservation pass per
// group (arena.BytesCache.AllocBatch), and replaced values retired in
// bulk on the group's member thread. A read-modify-write batch reuses
// one Batch's scratch across the GetBatch → modify → PutBatch cycle.
// Sorted keys also give tree descents warm upper-level paths. See
// BenchmarkStoreBatchGet and BenchmarkStorePutBatch.
//
// # Scans
//
// On ordered backings (skl, abt) Scan walks a hashed-key window and
// yields (hashed key, value copy) pairs, built on the validated
// RangeCollectKV scans: each chunk of pairs is one protected scan
// operation on the shard's member thread, and each value is resolved
// through the same stale-detecting read path as Get.
package store

import (
	"context"
	"fmt"
	"math"
	"unsafe"

	"pop/internal/arena"
	"pop/internal/core"
	"pop/internal/ds"
	"pop/internal/ds/abtree"
	"pop/internal/ds/extbst"
	"pop/internal/ds/hashtable"
	"pop/internal/ds/hmlist"
	"pop/internal/ds/lazylist"
	"pop/internal/ds/skiplist"
	"pop/internal/padded"
)

// Backing names accepted by Config.Backing (the harness's DS names).
const (
	BackingSkipList          = "skl"  // lock-free skiplist: ordered, batch-capable (default)
	BackingHashTable         = "hmht" // hash table: shortest lookups, batch-capable
	BackingHarrisMichaelList = "hml"  // Harris-Michael list: batch-capable
	BackingABTree            = "abt"  // (a,b)-tree: ordered
	BackingLazyList          = "ll"   // lazy list
	BackingExternalBST       = "dgt"  // external BST
)

// scanChunk bounds the pairs one protected scan operation collects, so
// a large Scan is many medium operations instead of one enormous one.
const scanChunk = 128

// Inline value encoding: a map word with inlineBit set carries the
// payload itself instead of an arena handle. arena.Handle keeps bit 63
// zero by construction (its layout is 0<<63 | seq31<<32 | class4<<28 |
// idx28), so the tag is unambiguous. Layout of an inline word:
//
//	bit  63      inlineBit
//	bits 56..58  payload length (0..InlineMaxLen)
//	bits 0..55   payload bytes, little-endian
const (
	inlineBit = uint64(1) << 63

	// InlineMaxLen is the longest payload that inline-encodes into the
	// map word (7 bytes: 56 payload bits below the length field).
	InlineMaxLen = 7
)

// inlineEncode packs val (len <= InlineMaxLen) into a tagged map word.
func inlineEncode(val []byte) uint64 {
	w := inlineBit | uint64(len(val))<<56
	for i, c := range val {
		w |= uint64(c) << (8 * i)
	}
	return w
}

// inlineDecode unpacks an inline word into buf (reusing its capacity).
func inlineDecode(w uint64, buf []byte) []byte {
	n := int(w>>56) & 7
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = byte(w >> (8 * i))
	}
	return buf
}

// MaxShards caps Config.Shards: every shard registers one node type
// with its member domain (plus one per member for value tickets), and
// the domain type tables are finite.
const MaxShards = 32

// Config tunes a Store. The zero value is usable.
type Config struct {
	// Shards is the shard count, rounded up to a power of two
	// (default 8, max MaxShards). Must be >= the group's member count:
	// members partition the shards into contiguous blocks.
	Shards int
	// Backing selects the per-shard structure (Backing* constants;
	// default BackingSkipList).
	Backing string
	// ExpectedKeysPerShard sizes hash-table shards (default 1<<15).
	ExpectedKeysPerShard int64
	// MaxValueLen caps Put payloads (default and hard cap
	// arena.MaxValueLen).
	MaxValueLen int
}

func (c Config) withDefaults() (Config, error) {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Shards > MaxShards {
		return c, fmt.Errorf("store: %d shards exceeds MaxShards (%d)", c.Shards, MaxShards)
	}
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
	if c.Backing == "" {
		c.Backing = BackingSkipList
	}
	if c.ExpectedKeysPerShard <= 0 {
		c.ExpectedKeysPerShard = 1 << 15
	}
	if c.MaxValueLen <= 0 || c.MaxValueLen > arena.MaxValueLen {
		c.MaxValueLen = arena.MaxValueLen
	}
	switch c.Backing {
	case BackingSkipList, BackingHashTable, BackingHarrisMichaelList,
		BackingABTree, BackingLazyList, BackingExternalBST:
	default:
		return c, fmt.Errorf("store: unknown backing %q", c.Backing)
	}
	return c, nil
}

// memMap is what a shard's backing must provide.
type memMap interface {
	ds.Map
	Outstanding() int64
}

// shard is one partition: its map plus padded counters. The counters
// are atomic (several threads serve one shard) but each shard's block
// is padded, so shard i's stats never false-share with shard j's.
type shard struct {
	m        memMap
	scanner  ds.RangeScanner // nil when the backing is unordered
	batch    ds.BatchGetter  // nil when the backing has no multi-get
	batchPut ds.BatchPutter  // nil when the backing has no multi-put

	gets       padded.Uint64 // single-key lookups (GetBatch keys included)
	misses     padded.Uint64 // lookups that found no entry
	puts       padded.Uint64 // upserts (inserts + overwrites; PutBatch keys included)
	overwrites padded.Uint64 // upserts that replaced (and retired) a value
	deletes    padded.Uint64 // deletes that removed (and retired) a value
	stale      padded.Uint64 // value reads that lost to reclamation and retried
	scanPairs  padded.Uint64 // pairs yielded by scans
}

// vticket is the retire ticket that routes a value's reclamation
// through the core retire path. Header must be first (the reclamation
// contract); h is the arena handle to free when the policy frees the
// ticket.
type vticket struct {
	core.Header
	h arena.Handle
}

// storeLocal is one member-domain thread slot's allocation state: its
// value-arena cache, its ticket cache, and reusable scratch for
// batches and scans. State is keyed by (member, thread ID) — the
// member's slot index — so when a serving goroutine releases its group
// handle and another goroutine re-leases the slot (the elastic-pool
// lifecycle), the caches transfer with it: the member domain's
// lease/release mutex is the happens-before edge, and the new tenant
// simply continues filling the previous tenant's caches.
type storeLocal struct {
	vc      *arena.BytesCache
	tickets *arena.ThreadCache[vticket]

	// scan scratch (owner-only)
	keys []int64
	vals []uint64
}

// Store is a sharded string-key KV store. All methods are safe for
// concurrent use by group handles leased from the store's domain
// group; as everywhere in this repository, a handle must only be used
// by the goroutine that acquired it.
type Store struct {
	g           *core.DomainGroup
	cfg         Config
	mask        uint64
	memberShift uint // shard >> memberShift = member domain index
	shards      []shard
	vals        *arena.Bytes
	tickets     *arena.Pool[vticket]
	ticketTyps  []uint8         // per-member ticket type ids
	locals      [][]*storeLocal // [member][thread id (slot)], owner-only

	batches    padded.Uint64 // GetBatch calls
	putBatches padded.Uint64 // PutBatch calls
	scans      padded.Uint64 // Scan calls
}

// New creates a store over domain group g. The group's member domains
// partition the shards: shard i lives in member i >> log2(shards /
// members), so a group of 1 is the classic single-domain store and a
// group of Shards gives every shard a private reclamation domain. The
// member count must not exceed the shard count.
func New(g *core.DomainGroup, cfg Config) (*Store, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	groups := g.Members()
	if groups > cfg.Shards {
		return nil, fmt.Errorf("store: %d member domains exceed %d shards (need members <= shards)", groups, cfg.Shards)
	}
	shift := uint(0)
	for 1<<shift < cfg.Shards/groups {
		shift++
	}
	s := &Store{
		g:           g,
		cfg:         cfg,
		mask:        uint64(cfg.Shards - 1),
		memberShift: shift,
		shards:      make([]shard, cfg.Shards),
		vals:        arena.NewBytes(),
		tickets:     arena.NewPool[vticket](nil, nil),
		ticketTyps:  make([]uint8, groups),
		locals:      make([][]*storeLocal, groups),
	}
	for m := 0; m < groups; m++ {
		m := m
		d := g.Member(m)
		s.locals[m] = make([]*storeLocal, d.MaxThreads())
		// One ticket type per member: the free function runs on the
		// member's reclaiming thread and must resolve that member's
		// tid-keyed caches.
		s.ticketTyps[m] = d.RegisterType(func(t *core.Thread, h *core.Header) {
			tk := (*vticket)(unsafe.Pointer(h))
			tl := s.localFor(m, t)
			tl.vc.Free(tk.h) // the payload slot frees with its ticket
			tl.tickets.Put(tk)
		})
	}
	for i := range s.shards {
		d := g.Member(i >> shift)
		var m memMap
		switch cfg.Backing {
		case BackingSkipList:
			m = skiplist.New(d)
		case BackingHashTable:
			m = hashtable.New(d, cfg.ExpectedKeysPerShard, 6)
		case BackingHarrisMichaelList:
			m = hmlist.New(d)
		case BackingABTree:
			m = abtree.New(d)
		case BackingLazyList:
			m = lazylist.New(d)
		case BackingExternalBST:
			m = extbst.New(d)
		}
		s.shards[i].m = m
		s.shards[i].scanner, _ = m.(ds.RangeScanner)
		s.shards[i].batch, _ = m.(ds.BatchGetter)
		s.shards[i].batchPut, _ = m.(ds.BatchPutter)
	}
	return s, nil
}

// Shards returns the shard count.
func (s *Store) Shards() int { return len(s.shards) }

// Group returns the store's domain group: the lease facade serving
// layers acquire handles from, and the aggregation point for
// reclamation, lifecycle and fan-out statistics.
func (s *Store) Group() *core.DomainGroup { return s.g }

// MemberIndex returns the member domain shard belongs to.
func (s *Store) MemberIndex(shard int) int { return shard >> s.memberShift }

// Acquire leases a serving handle from the store's group. The handle
// belongs to the calling goroutine until Release.
func (s *Store) Acquire() (*core.GroupHandle, error) { return s.g.Acquire() }

// AcquireWait leases a serving handle, queueing (FIFO) while the group
// is saturated — the admission-control path; see
// core.DomainGroup.AcquireWait.
func (s *Store) AcquireWait(ctx context.Context) (*core.GroupHandle, error) {
	return s.g.AcquireWait(ctx)
}

// Release returns a serving handle to the group; the worker's
// unreclaimed retires (nodes and value tickets) are donated to each
// member domain for adoption, and the slot becomes re-leasable.
func (s *Store) Release(h *core.GroupHandle) { s.g.Release(h) }

// Ordered reports whether the backing supports hashed-key Scan.
func (s *Store) Ordered() bool { return s.shards[0].scanner != nil }

// localFor returns t's thread-local state in member m, creating it on
// first use.
func (s *Store) localFor(m int, t *core.Thread) *storeLocal {
	tl := s.locals[m][t.ID()]
	if tl == nil {
		tl = &storeLocal{vc: s.vals.NewCache(), tickets: s.tickets.NewCache()}
		s.locals[m][t.ID()] = tl
	}
	return tl
}

// KeyHash returns the int64 the store files key under — the identity
// the hashed-key Scan reports and the key value payloads are checked
// against in the harness.
func KeyHash(key string) int64 { return ikeyOf(hash64(key)) }

// ShardIndex returns the shard key routes to — the partition a serving
// layer's per-shard machinery (e.g. a get-coalescing window) must queue
// it on.
func (s *Store) ShardIndex(key string) int { return int(hash64(key) & s.mask) }

// MaxValueLen returns the store's configured payload cap.
func (s *Store) MaxValueLen() int { return s.cfg.MaxValueLen }

// hash64 is FNV-1a over the key bytes with a SplitMix finisher for
// avalanche (FNV alone is weak in the low bits the shard mask reads).
func hash64(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// ikeyOf folds a hash into the sentinel-free int64 key domain.
func ikeyOf(h uint64) int64 {
	k := int64(h)
	if k == math.MinInt64 {
		return k + 1
	}
	if k == math.MaxInt64 {
		return k - 1
	}
	return k
}

// locate resolves key to its shard index and in-shard key.
func (s *Store) locate(key string) (int, int64) {
	h := hash64(key)
	return int(h & s.mask), ikeyOf(h)
}

// threadFor resolves the handle's thread for shard index si, leasing
// the member thread on first touch.
func (s *Store) threadFor(h *core.GroupHandle, si int) *core.Thread {
	return h.Member(si >> s.memberShift)
}

// readWord resolves a map word to value bytes: an inline word decodes
// from the word itself (always succeeds — the payload travels with the
// map cell), an arena word goes through the stale-detecting arena read.
func (s *Store) readWord(w uint64, buf []byte) ([]byte, bool) {
	if w&inlineBit != 0 {
		return inlineDecode(w, buf), true
	}
	return s.vals.Read(arena.Handle(w), buf)
}

// Get copies key's value into buf (growing it as needed) and returns
// the filled slice. ok=false means the key is absent. Inline values
// decode straight from the map word; an arena lookup whose value slot
// was reclaimed between the protected map read and the arena read is
// detected by the arena's sequence check and retried with a fresh
// lookup — Get never returns torn or recycled bytes.
func (s *Store) Get(h *core.GroupHandle, key string, buf []byte) ([]byte, bool) {
	si, ik := s.locate(key)
	sh := &s.shards[si]
	t := s.threadFor(h, si)
	sh.gets.Add(1)
	for {
		hv, ok := sh.m.Get(t, ik)
		if !ok {
			sh.misses.Add(1)
			return buf[:0], false
		}
		if v, ok := s.readWord(hv, buf); ok {
			return v, true
		}
		sh.stale.Add(1) // lost to an overwrite's reclamation: retry
	}
}

// Contains reports whether key is present, without touching its value.
func (s *Store) Contains(h *core.GroupHandle, key string) bool {
	si, ik := s.locate(key)
	_, ok := s.shards[si].m.Get(s.threadFor(h, si), ik)
	return ok
}

// Put upserts key to a private copy of val (len(val) bounded by
// Config.MaxValueLen; it panics beyond it, like the ds layer's key
// checks). Values of at most InlineMaxLen bytes inline-encode into the
// map word; longer ones take an arena slot. A replaced arena value is
// retired through the core retire path in the shard's member domain
// and freed by the policy; a replaced inline value dies with the map
// cell.
func (s *Store) Put(h *core.GroupHandle, key string, val []byte) {
	if len(val) > s.cfg.MaxValueLen {
		panic(fmt.Sprintf("store: value of %d bytes exceeds MaxValueLen %d", len(val), s.cfg.MaxValueLen))
	}
	si, ik := s.locate(key)
	m := si >> s.memberShift
	t := h.Member(m)
	var nw uint64
	if len(val) <= InlineMaxLen {
		nw = inlineEncode(val)
	} else {
		nw = uint64(s.localFor(m, t).vc.Alloc(val))
	}
	sh := &s.shards[si]
	old, replaced := sh.m.Put(t, ik, nw)
	sh.puts.Add(1)
	if replaced {
		sh.overwrites.Add(1)
		s.retireWord(t, m, old)
	}
}

// PutIfAbsent maps key to a copy of val only if key is absent and
// reports whether it did.
func (s *Store) PutIfAbsent(h *core.GroupHandle, key string, val []byte) bool {
	if len(val) > s.cfg.MaxValueLen {
		panic(fmt.Sprintf("store: value of %d bytes exceeds MaxValueLen %d", len(val), s.cfg.MaxValueLen))
	}
	si, ik := s.locate(key)
	m := si >> s.memberShift
	t := h.Member(m)
	sh := &s.shards[si]
	if len(val) <= InlineMaxLen {
		if sh.m.PutIfAbsent(t, ik, inlineEncode(val)) {
			sh.puts.Add(1)
			return true
		}
		return false
	}
	tl := s.localFor(m, t)
	nh := tl.vc.Alloc(val)
	if sh.m.PutIfAbsent(t, ik, uint64(nh)) {
		sh.puts.Add(1)
		return true
	}
	tl.vc.Free(nh) // never published: no grace period needed
	return false
}

// Delete removes key, retiring its value (if arena-backed), and
// reports whether it was present.
func (s *Store) Delete(h *core.GroupHandle, key string) bool {
	si, ik := s.locate(key)
	m := si >> s.memberShift
	t := h.Member(m)
	sh := &s.shards[si]
	old, ok := sh.m.Delete(t, ik)
	if ok {
		sh.deletes.Add(1)
		s.retireWord(t, m, old)
	}
	return ok
}

// retireWord retires whatever a replaced map word owned: nothing for
// an inline word (the payload lived in the cell the map just
// replaced), the arena slot for a handle word. This is the single
// point where encoding-flipping overwrites converge — inline-replaces-
// arena retires the arena side here, arena-replaces-inline retires
// nothing, and the policy never sees a ticket for memory that was
// never allocated.
func (s *Store) retireWord(t *core.Thread, m int, w uint64) {
	if w&inlineBit != 0 {
		return
	}
	s.retireValue(t, m, arena.Handle(w))
}

// retireValue hands a replaced value handle to the reclamation layer of
// member m on thread t (which must be m's member thread): the ticket is
// a managed node, so the handle's slot frees exactly when m's policy
// decides the retired generation is safe — value retirement is
// policy-visible, like node retirement, and member-local, like every
// other retire.
func (s *Store) retireValue(t *core.Thread, m int, h arena.Handle) {
	tl := s.localFor(m, t)
	tk := tl.tickets.Get()
	tk.h = h
	t.OnAlloc(&tk.Header, s.ticketTyps[m])
	t.Retire(&tk.Header)
}

// Scan visits the (hashed key, value) pairs with hashed key in
// [lo, hi], shard by shard and ascending within each shard, until fn
// returns false; it returns the number of pairs visited. Each chunk of
// at most scanChunk pairs is one protected scan operation
// (RangeCollectKV on the backing) on the shard's member thread, so a
// store-wide scan is a sequence of member-local operations — the
// membership invariant holds chunk by chunk — and the fan-out of any
// reclaimer the scan provokes stays per-member. Each value resolves
// through the stale-detecting read path: a pair whose value was
// reclaimed mid-scan is re-fetched from the map (it may have a newer
// value by then) or skipped if deleted. The val slice passed to fn is
// reused across calls — copy it to keep it.
//
// Scan requires an ordered backing (Ordered); it panics otherwise.
func (s *Store) Scan(h *core.GroupHandle, lo, hi int64, fn func(hkey int64, val []byte) bool) int {
	if !s.Ordered() {
		panic(fmt.Sprintf("store: Scan on unordered backing %q", s.cfg.Backing))
	}
	s.scans.Add(1)
	var vbuf []byte
	visited := 0
	for i := range s.shards {
		sh := &s.shards[i]
		m := i >> s.memberShift
		t := h.Member(m)
		tl := s.localFor(m, t)
		from := lo
		for from <= hi {
			tl.keys, tl.vals = sh.scanner.RangeCollectKV(t, from, hi, scanChunk, tl.keys, tl.vals)
			for j, k := range tl.keys {
				v, ok := s.readWord(tl.vals[j], vbuf)
				for !ok {
					// The pair's value lost to reclamation between the scan
					// and this read: serve the key's current value instead.
					sh.stale.Add(1)
					hv, present := sh.m.Get(t, k)
					if !present {
						break // deleted since the scan observed it: skip
					}
					v, ok = s.readWord(hv, vbuf)
				}
				if !ok {
					continue
				}
				vbuf = v[:0]
				visited++
				sh.scanPairs.Add(1)
				if !fn(k, v) {
					return visited
				}
			}
			if len(tl.keys) < scanChunk {
				break // shard window exhausted
			}
			last := tl.keys[len(tl.keys)-1]
			if last >= hi {
				break
			}
			from = last + 1
		}
	}
	return visited
}

// Batch holds one batched operation's results and reusable scratch.
// After GetBatch, Vals[i] and OK[i] answer keys[i]; Vals slices point
// into an internal buffer that is overwritten by the next batched call
// with this Batch. After PutBatch, OK[i] reports whether keys[i]
// replaced (and retired) a previous value. One Batch may be reused
// across a GetBatch → modify → PutBatch read-modify-write cycle: the
// grouping scratch (hashes, shard order) is simply recomputed per call
// while the allocations persist.
type Batch struct {
	Vals [][]byte
	OK   []bool

	hks   []uint64 // hash per key
	order []int    // key indices grouped by shard, ascending key within
	cnt   []int    // per-shard bucket counts/offsets
	ikeys []int64  // per-group scratch
	gvals []uint64
	gok   []bool
	golds []uint64       // PutBatch: replaced handles per group
	gbuf  [][]byte       // PutBatch: group's value payloads
	ghs   []arena.Handle // PutBatch: group's fresh arena handles
	offs  []int          // value offsets into buf (per key; -1 = miss)
	lens  []int
	buf   []byte
}

// groupByShard fills b.order with 0..n-1 bucketed by shard (one
// counting-sort pass — comparison sorting here would cost more than the
// batching saves) and ascending by in-shard key within each bucket
// (insertion sort; buckets are small).
func (b *Batch) groupByShard(n, shards int, mask uint64) {
	b.cnt = resize(b.cnt, shards+1)
	for i := range b.cnt {
		b.cnt[i] = 0
	}
	for _, h := range b.hks[:n] {
		b.cnt[int(h&mask)+1]++
	}
	for s := 1; s <= shards; s++ {
		b.cnt[s] += b.cnt[s-1]
	}
	starts := b.cnt // after the scatter, cnt[s] is bucket s's end
	for i := 0; i < n; i++ {
		s := int(b.hks[i] & mask)
		b.order[starts[s]] = i
		starts[s]++
	}
	// starts[s] now holds bucket s's end; bucket s begins at starts[s-1]
	// (0 for s=0). Order each bucket by in-shard key.
	lo := 0
	for s := 0; s < shards; s++ {
		hi := starts[s]
		for i := lo + 1; i < hi; i++ {
			idx := b.order[i]
			k := ikeyOf(b.hks[idx])
			j := i
			for j > lo && ikeyOf(b.hks[b.order[j-1]]) > k {
				b.order[j] = b.order[j-1]
				j--
			}
			b.order[j] = idx
		}
		lo = hi
	}
}

// GetBatch answers every keys[i] into b.Vals[i]/b.OK[i]. The batch is
// sorted by (shard, hashed key) and each shard's group is answered in
// one protected operation on batch-capable backings — the entry/exit
// amortization that makes a 64-key batch measurably cheaper than 64
// Gets — with values resolved through the same stale-detecting path as
// Get. Groups run sequentially on each shard's member thread, so the
// handle is mid-operation in at most one member at a time. Results are
// positional: input order is preserved.
func (s *Store) GetBatch(h *core.GroupHandle, keys []string, b *Batch) {
	n := len(keys)
	s.batches.Add(1)
	b.Vals = resize(b.Vals, n)
	b.OK = resize(b.OK, n)
	b.hks = resize(b.hks, n)
	b.order = resize(b.order, n)
	b.offs = resize(b.offs, n)
	b.lens = resize(b.lens, n)
	b.buf = b.buf[:0]
	for i, k := range keys {
		b.hks[i] = hash64(k)
	}
	b.groupByShard(n, len(s.shards), s.mask)

	for g := 0; g < n; {
		si := int(b.hks[b.order[g]] & s.mask)
		sh := &s.shards[si]
		e := g + 1
		for e < n && int(b.hks[b.order[e]]&s.mask) == si {
			e++
		}
		group := b.order[g:e]
		t := s.threadFor(h, si)
		b.ikeys = resize(b.ikeys, len(group))
		b.gvals = resize(b.gvals, len(group))
		b.gok = resize(b.gok, len(group))
		for j, idx := range group {
			b.ikeys[j] = ikeyOf(b.hks[idx])
		}
		sh.gets.Add(uint64(len(group)))
		if sh.batch != nil {
			// One protected operation for the whole group.
			sh.batch.GetBatch(t, b.ikeys, b.gvals, b.gok)
		} else {
			for j, ik := range b.ikeys {
				b.gvals[j], b.gok[j] = sh.m.Get(t, ik)
			}
		}
		// Resolve values. The buffer may grow (and move) while we append,
		// so record offsets now and slice at the end.
		for j, idx := range group {
			if !b.gok[j] {
				sh.misses.Add(1)
				b.offs[idx] = -1
				continue
			}
			hv := b.gvals[j]
			for {
				off := len(b.buf)
				v, ok := s.readWord(hv, b.buf[off:])
				if ok {
					// v aliases buf's spare capacity unless Read had to
					// grow; append handles both (and keeps offsets valid —
					// slices are cut from the final buffer below).
					b.buf = append(b.buf[:off], v...)
					b.offs[idx], b.lens[idx] = off, len(v)
					break
				}
				// Stale: the batch's handle lost to reclamation. Re-serve
				// this key through a fresh protected lookup.
				sh.stale.Add(1)
				nhv, present := sh.m.Get(t, b.ikeys[j])
				if !present {
					sh.misses.Add(1)
					b.offs[idx] = -1
					break
				}
				hv = nhv
			}
		}
		g = e
	}
	for i := 0; i < n; i++ {
		if b.offs[i] < 0 {
			b.Vals[i], b.OK[i] = nil, false
		} else {
			b.Vals[i], b.OK[i] = b.buf[b.offs[i]:b.offs[i]+b.lens[i]], true
		}
	}
}

// PutBatch upserts every keys[i] to a private copy of vals[i], the
// write-side mirror of GetBatch: the batch is counting-sorted by
// (shard, hashed key); each shard group's inline-eligible payloads
// encode into their map words and the rest are copied into the value
// arena in one reservation pass (AllocBatch — the class free
// lists are locked at most once per group instead of per refill); the
// group's upserts run in one protected operation on batch-capable
// backings (ds.BatchPutter); and the replaced handles retire in bulk
// on the shard's member thread. b.OK[i] reports whether keys[i]
// replaced a previous value. A read-modify-write batch can reuse the
// same Batch from the preceding GetBatch — payload slices passed in
// vals may even alias b.Vals, because every payload is copied into the
// arena before any map mutation touches the batch scratch.
func (s *Store) PutBatch(h *core.GroupHandle, keys []string, vals [][]byte, b *Batch) {
	n := len(keys)
	if len(vals) != n {
		panic(fmt.Sprintf("store: PutBatch with %d keys but %d values", n, len(vals)))
	}
	for _, v := range vals {
		if len(v) > s.cfg.MaxValueLen {
			panic(fmt.Sprintf("store: value of %d bytes exceeds MaxValueLen %d", len(v), s.cfg.MaxValueLen))
		}
	}
	s.putBatches.Add(1)
	b.OK = resize(b.OK, n)
	b.hks = resize(b.hks, n)
	b.order = resize(b.order, n)
	for i, k := range keys {
		b.hks[i] = hash64(k)
	}
	b.groupByShard(n, len(s.shards), s.mask)

	for g := 0; g < n; {
		si := int(b.hks[b.order[g]] & s.mask)
		sh := &s.shards[si]
		e := g + 1
		for e < n && int(b.hks[b.order[e]]&s.mask) == si {
			e++
		}
		group := b.order[g:e]
		m := si >> s.memberShift
		t := h.Member(m)
		tl := s.localFor(m, t)
		b.ikeys = resize(b.ikeys, len(group))
		b.gvals = resize(b.gvals, len(group))
		b.golds = resize(b.golds, len(group))
		b.gok = resize(b.gok, len(group))
		b.gbuf = resize(b.gbuf, len(group))
		b.ghs = resize(b.ghs, len(group))
		// Inline-eligible payloads encode straight into their map words;
		// only the rest join the arena reservation pass.
		na := 0
		for j, idx := range group {
			b.ikeys[j] = ikeyOf(b.hks[idx])
			v := vals[idx]
			if len(v) <= InlineMaxLen {
				b.gvals[j] = inlineEncode(v)
			} else {
				b.gbuf[na] = v
				na++
			}
		}
		if na > 0 {
			// One arena reservation pass for the group's long payloads.
			tl.vc.AllocBatch(b.gbuf[:na], b.ghs[:na])
			k := 0
			for j, idx := range group {
				if len(vals[idx]) > InlineMaxLen {
					b.gvals[j] = uint64(b.ghs[k])
					k++
				}
			}
		}
		sh.puts.Add(uint64(len(group)))
		if sh.batchPut != nil {
			// One protected operation for the whole group.
			sh.batchPut.PutBatch(t, b.ikeys, b.gvals, b.golds, b.gok)
		} else {
			for j, ik := range b.ikeys {
				b.golds[j], b.gok[j] = sh.m.Put(t, ik, b.gvals[j])
			}
		}
		for j, idx := range group {
			b.OK[idx] = b.gok[j]
			if b.gok[j] {
				sh.overwrites.Add(1)
				s.retireWord(t, m, b.golds[j])
			}
		}
		g = e
	}
}

// resize returns s with length n, reallocating only when capacity is
// short.
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Size counts the store's keys (quiescent use only).
func (s *Store) Size(h *core.GroupHandle) int {
	n := 0
	for i := range s.shards {
		if sized, ok := s.shards[i].m.(ds.Sized); ok {
			n += sized.Size(s.threadFor(h, i))
		}
	}
	return n
}

// Outstanding reports live+retired occupancy across every pool the
// store owns: shard nodes, value slots, and retire tickets.
func (s *Store) Outstanding() int64 {
	n := s.vals.Outstanding() + s.tickets.Outstanding()
	for i := range s.shards {
		n += s.shards[i].m.Outstanding()
	}
	return n
}

// Stats is a snapshot of store counters, aggregated across shards.
type Stats struct {
	Gets       uint64 // lookups (batch keys included)
	GetMisses  uint64 // lookups finding no entry
	Puts       uint64 // upserts (batch keys included)
	Overwrites uint64 // upserts that replaced (and retired) a value
	Deletes    uint64 // deletes that removed (and retired) a value
	Batches    uint64 // GetBatch calls
	PutBatches uint64 // PutBatch calls
	Scans      uint64 // Scan calls
	ScanPairs  uint64 // pairs yielded by scans
	StaleReads uint64 // value reads that lost to reclamation and retried

	Values arena.BytesStats // value-arena counters
}

// Stats aggregates the per-shard counters.
func (s *Store) Stats() Stats {
	var out Stats
	for i := range s.shards {
		sh := &s.shards[i]
		out.Gets += sh.gets.Load()
		out.GetMisses += sh.misses.Load()
		out.Puts += sh.puts.Load()
		out.Overwrites += sh.overwrites.Load()
		out.Deletes += sh.deletes.Load()
		out.ScanPairs += sh.scanPairs.Load()
		out.StaleReads += sh.stale.Load()
	}
	out.Batches = s.batches.Load()
	out.PutBatches = s.putBatches.Load()
	out.Scans = s.scans.Load()
	out.Values = s.vals.Stats()
	return out
}
