package store

import (
	"testing"

	"pop/internal/core"
	"pop/internal/rng"
	"pop/internal/workload"
)

// benchStore builds an 8-shard skiplist store under EpochPOP (one
// member domain, so batch-vs-sequential numbers isolate the batching)
// prefilled with keys, plus a ready batch of batchKeys lookups.
func benchStore(b *testing.B, keys int64, batchKeys int) (*Store, *core.GroupHandle, []string) {
	b.Helper()
	g := core.NewDomainGroup(core.EpochPOP, 1, 1, nil)
	s, err := New(g, Config{Shards: 8, Backing: BackingSkipList})
	if err != nil {
		b.Fatal(err)
	}
	h, err := s.Acquire()
	if err != nil {
		b.Fatal(err)
	}
	var vbuf []byte
	for i := int64(0); i < keys; i++ {
		key := workload.KeyString(i)
		vbuf = workload.AppendValueBytes(vbuf[:0], KeyHash(key), uint32(i), 64)
		s.Put(h, key, vbuf)
	}
	r := rng.New(0xba7c)
	kb := make([]string, batchKeys)
	for i := range kb {
		kb[i] = workload.KeyString(r.Intn(keys))
	}
	return s, h, kb
}

// BenchmarkStoreBatchGet serves 64 keys per iteration through the
// batched multi-get: the batch is sorted by (shard, hashed key) and
// each shard's group runs in ONE protected operation (ds.BatchGetter),
// so the per-operation entry/exit protocol and the per-key dispatch are
// amortized across the group. Compare ns/op with
// BenchmarkStoreSequentialGet64, which serves the same 64 keys as 64
// independent Gets.
func BenchmarkStoreBatchGet(b *testing.B) {
	s, h, kb := benchStore(b, 1<<16, 64)
	var batch Batch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.GetBatch(h, kb, &batch)
	}
	b.StopTimer()
	if got := s.Stats().GetMisses; got != 0 {
		b.Fatalf("%d misses on a fully prefilled store", got)
	}
	h.Flush()
}

// BenchmarkStoreSequentialGet64 is BenchmarkStoreBatchGet's baseline:
// the identical 64 keys served one protected operation each.
func BenchmarkStoreSequentialGet64(b *testing.B) {
	s, h, kb := benchStore(b, 1<<16, 64)
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, key := range kb {
			v, ok := s.Get(h, key, buf)
			if !ok {
				b.Fatal("miss on a fully prefilled store")
			}
			buf = v[:0]
		}
	}
	b.StopTimer()
	h.Flush()
}

// BenchmarkStoreGet is the single-key serve path (hash, shard, lookup,
// stale-checked value copy).
func BenchmarkStoreGet(b *testing.B) {
	s, h, kb := benchStore(b, 1<<16, 64)
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _ := s.Get(h, kb[i&63], buf)
		buf = v[:0]
	}
	b.StopTimer()
	h.Flush()
}

// BenchmarkStorePut is the upsert path on a hot key set: every
// iteration replaces a value, so it measures alloc + map put + value
// retirement end to end.
func BenchmarkStorePut(b *testing.B) {
	s, h, kb := benchStore(b, 1<<10, 64)
	var vbuf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := kb[i&63]
		vbuf = workload.AppendValueBytes(vbuf[:0], KeyHash(key), uint32(i), 64)
		s.Put(h, key, vbuf)
	}
	b.StopTimer()
	h.Flush()
}

// BenchmarkStorePutBatch upserts 64 keys per iteration through the
// batched multi-put: one counting sort, one arena reservation pass and
// ONE protected operation per shard group (ds.BatchPutter), with
// replaced values retired in bulk. Every key is prefilled, so each
// iteration does 64 overwrite+retire cycles — compare ns/op with
// BenchmarkStoreSequentialPut64, the identical work as 64 Puts.
func BenchmarkStorePutBatch(b *testing.B) {
	s, h, kb := benchStore(b, 1<<10, 64)
	vals := make([][]byte, len(kb))
	for i, key := range kb {
		vals[i] = workload.AppendValueBytes(nil, KeyHash(key), uint32(i), 64)
	}
	var batch Batch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.PutBatch(h, kb, vals, &batch)
	}
	b.StopTimer()
	h.Flush()
}

// BenchmarkStoreSequentialPut64 is BenchmarkStorePutBatch's baseline:
// the identical 64 overwrites served one protected operation each.
func BenchmarkStoreSequentialPut64(b *testing.B) {
	s, h, kb := benchStore(b, 1<<10, 64)
	vals := make([][]byte, len(kb))
	for i, key := range kb {
		vals[i] = workload.AppendValueBytes(nil, KeyHash(key), uint32(i), 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, key := range kb {
			s.Put(h, key, vals[j])
		}
	}
	b.StopTimer()
	h.Flush()
}
