package store

import (
	"testing"

	"pop/internal/core"
	"pop/internal/rng"
	"pop/internal/workload"
)

// benchStore builds an 8-shard skiplist store under EpochPOP prefilled
// with keys, plus a ready batch of batchKeys lookups.
func benchStore(b *testing.B, keys int64, batchKeys int) (*Store, *core.Thread, []string) {
	b.Helper()
	d := core.NewDomain(core.EpochPOP, 1, nil)
	s, err := New(d, Config{Shards: 8, Backing: BackingSkipList})
	if err != nil {
		b.Fatal(err)
	}
	th := d.RegisterThread()
	var vbuf []byte
	for i := int64(0); i < keys; i++ {
		key := workload.KeyString(i)
		vbuf = workload.AppendValueBytes(vbuf[:0], KeyHash(key), uint32(i), 64)
		s.Put(th, key, vbuf)
	}
	r := rng.New(0xba7c)
	kb := make([]string, batchKeys)
	for i := range kb {
		kb[i] = workload.KeyString(r.Intn(keys))
	}
	return s, th, kb
}

// BenchmarkStoreBatchGet serves 64 keys per iteration through the
// batched multi-get: the batch is sorted by (shard, hashed key) and
// each shard's group runs in ONE protected operation (ds.BatchGetter),
// so the per-operation entry/exit protocol and the per-key dispatch are
// amortized across the group. Compare ns/op with
// BenchmarkStoreSequentialGet64, which serves the same 64 keys as 64
// independent Gets.
func BenchmarkStoreBatchGet(b *testing.B) {
	s, th, kb := benchStore(b, 1<<16, 64)
	var batch Batch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.GetBatch(th, kb, &batch)
	}
	b.StopTimer()
	if got := s.Stats().GetMisses; got != 0 {
		b.Fatalf("%d misses on a fully prefilled store", got)
	}
	th.Flush()
}

// BenchmarkStoreSequentialGet64 is BenchmarkStoreBatchGet's baseline:
// the identical 64 keys served one protected operation each.
func BenchmarkStoreSequentialGet64(b *testing.B) {
	s, th, kb := benchStore(b, 1<<16, 64)
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, key := range kb {
			v, ok := s.Get(th, key, buf)
			if !ok {
				b.Fatal("miss on a fully prefilled store")
			}
			buf = v[:0]
		}
	}
	b.StopTimer()
	th.Flush()
}

// BenchmarkStoreGet is the single-key serve path (hash, shard, lookup,
// stale-checked value copy).
func BenchmarkStoreGet(b *testing.B) {
	s, th, kb := benchStore(b, 1<<16, 64)
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _ := s.Get(th, kb[i&63], buf)
		buf = v[:0]
	}
	b.StopTimer()
	th.Flush()
}

// BenchmarkStorePut is the upsert path on a hot key set: every
// iteration replaces a value, so it measures alloc + map put + value
// retirement end to end.
func BenchmarkStorePut(b *testing.B) {
	s, th, kb := benchStore(b, 1<<10, 64)
	var vbuf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := kb[i&63]
		vbuf = workload.AppendValueBytes(vbuf[:0], KeyHash(key), uint32(i), 64)
		s.Put(th, key, vbuf)
	}
	b.StopTimer()
	th.Flush()
}
