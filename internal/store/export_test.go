package store

import (
	"pop/internal/arena"
	"pop/internal/core"
)

// Test-only exports for the external storm tests (package store_test),
// which live outside the package so they can import internal/chaos
// without a cycle (chaos imports store).

// RawHandle fetches the arena handle a key's map entry currently holds
// — the store-internal view a misbehaving reader would capture and sit
// on.
func (s *Store) RawHandle(h *core.GroupHandle, key string) (arena.Handle, bool) {
	si, ik := s.locate(key)
	hv, ok := s.shards[si].m.Get(s.threadFor(h, si), ik)
	return arena.Handle(hv), ok
}

// ReadRaw dereferences a captured handle directly against the value
// arena, bypassing the map — the unsafe access pattern the arena's
// sequence discipline must detect once the slot is retired.
func (s *Store) ReadRaw(h arena.Handle, buf []byte) ([]byte, bool) {
	return s.vals.Read(h, buf)
}

// CheckRawHandle reports whether h still names a live arena slot.
func (s *Store) CheckRawHandle(h arena.Handle) bool {
	return s.vals.CheckHandle(h)
}

// ValueSlotsOutstanding reports live+retired value-arena slots — zero
// for a store whose every value is inline-encoded.
func (s *Store) ValueSlotsOutstanding() int64 {
	return s.vals.Outstanding()
}
