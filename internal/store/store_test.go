package store

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"pop/internal/core"
	"pop/internal/rng"
	"pop/internal/workload"
)

// newGroup builds a domain group with tiny thresholds so reclamation
// paths run constantly during the tests (the dstest convention).
func newGroup(p core.Policy, members, slots int) *core.DomainGroup {
	return core.NewDomainGroup(p, members, slots, &core.Options{
		ReclaimThreshold: 32,
		EpochFreq:        8,
		BatchSize:        8,
		Debug:            true,
	})
}

// acquire leases a handle or fails the test.
func acquire(t testing.TB, s *Store) *core.GroupHandle {
	t.Helper()
	h, err := s.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// valFor builds the canonical checksummed payload for key.
func valFor(buf []byte, key string, tag uint32, size int) []byte {
	return workload.AppendValueBytes(buf[:0], KeyHash(key), tag, size)
}

func TestStoreSequential(t *testing.T) {
	for _, backing := range []string{BackingSkipList, BackingHashTable, BackingABTree,
		BackingHarrisMichaelList, BackingLazyList, BackingExternalBST} {
		t.Run(backing, func(t *testing.T) {
			g := newGroup(core.EpochPOP, 2, 1)
			s, err := New(g, Config{Shards: 4, Backing: backing})
			if err != nil {
				t.Fatal(err)
			}
			h := acquire(t, s)

			if _, ok := s.Get(h, "missing", nil); ok {
				t.Fatal("Get on empty store succeeded")
			}
			s.Put(h, "alpha", []byte("value-1"))
			if v, ok := s.Get(h, "alpha", nil); !ok || string(v) != "value-1" {
				t.Fatalf("Get(alpha) = %q, %v", v, ok)
			}
			s.Put(h, "alpha", []byte("value-2, longer than before"))
			if v, ok := s.Get(h, "alpha", nil); !ok || string(v) != "value-2, longer than before" {
				t.Fatalf("overwritten Get(alpha) = %q, %v", v, ok)
			}
			if s.PutIfAbsent(h, "alpha", []byte("loser")) {
				t.Fatal("PutIfAbsent overwrote a present key")
			}
			if !s.PutIfAbsent(h, "beta", []byte("beta-value")) {
				t.Fatal("PutIfAbsent failed on an absent key")
			}
			if !s.Contains(h, "beta") || s.Contains(h, "gamma") {
				t.Fatal("Contains wrong")
			}
			if got := s.Size(h); got != 2 {
				t.Fatalf("Size = %d, want 2", got)
			}
			if !s.Delete(h, "alpha") || s.Delete(h, "alpha") {
				t.Fatal("Delete semantics wrong")
			}
			if _, ok := s.Get(h, "alpha", nil); ok {
				t.Fatal("deleted key still served")
			}
			st := s.Stats()
			if st.Puts != 3 || st.Overwrites != 1 || st.Deletes != 1 {
				t.Fatalf("stats: %+v", st)
			}
			h.Flush()
			if p := g.Policy(); p != core.NR {
				if u := g.Unreclaimed(); u != 0 {
					t.Fatalf("%d unreclaimed after flush", u)
				}
			}
			// One live key (beta): exactly one value slot outstanding.
			if vo := s.vals.Outstanding(); vo != 1 {
				t.Fatalf("value slots outstanding = %d, want 1", vo)
			}
		})
	}
}

// TestStoreMemberMapping pins the shard→member mapping and the lazy
// member leasing the fan-out argument rests on: an operation touching
// one shard leases exactly that shard's member thread and no other.
func TestStoreMemberMapping(t *testing.T) {
	g := newGroup(core.EpochPOP, 4, 2)
	s, err := New(g, Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Group(); got != g {
		t.Fatal("Group() did not return the constructing group")
	}
	// 8 shards over 4 members: contiguous blocks of 2.
	for si := 0; si < 8; si++ {
		if got, want := s.MemberIndex(si), si/2; got != want {
			t.Fatalf("MemberIndex(%d) = %d, want %d", si, got, want)
		}
	}
	h := acquire(t, s)
	for i := range make([]struct{}, 4) {
		if h.MemberLeased(i) != nil {
			t.Fatalf("member %d leased before any operation", i)
		}
	}
	// One Put touches exactly one shard, hence one member.
	key := "member-mapping-probe"
	si := s.ShardIndex(key)
	s.Put(h, key, []byte("v"))
	for i := range make([]struct{}, 4) {
		if want := i == s.MemberIndex(si); (h.MemberLeased(i) != nil) != want {
			t.Fatalf("after touching shard %d, member %d leased=%v want %v",
				si, i, h.MemberLeased(i) != nil, want)
		}
	}
	h.Flush()
	s.Release(h)
}

// TestStoreGetAfterPut is the linearizable get-after-put check per
// shard: each thread owns a private slice of the key space and every
// Get of an owned key must return exactly the bytes of the thread's
// latest Put, while all other threads churn their own stripes through
// the same shards. Runs under every policy on a grouped store (8
// shards, 2 member domains).
func TestStoreGetAfterPut(t *testing.T) {
	const (
		threads = 4
		stripe  = 64
		ops     = 1500
	)
	for _, p := range core.Policies() {
		t.Run(p.String(), func(t *testing.T) {
			g := newGroup(p, 2, threads)
			s, err := New(g, Config{Shards: 8})
			if err != nil {
				t.Fatal(err)
			}
			hs := make([]*core.GroupHandle, threads)
			for i := range hs {
				hs[i] = acquire(t, s)
			}
			errs := make(chan error, threads)
			var wg sync.WaitGroup
			for w := 0; w < threads; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					h := hs[id]
					r := rng.New(uint64(id)*31 + uint64(p) + 1)
					ref := make(map[string][]byte, stripe)
					var vbuf, gbuf []byte
					for n := 0; n < ops; n++ {
						key := workload.KeyString(int64(id)*stripe + r.Intn(stripe))
						switch r.Intn(10) {
						case 0:
							s.Delete(h, key)
							delete(ref, key)
						case 1, 2, 3, 4:
							size := 16 + int(r.Intn(240))
							vbuf = valFor(vbuf, key, uint32(n), size)
							s.Put(h, key, vbuf)
							ref[key] = append([]byte(nil), vbuf...)
						default:
							got, ok := s.Get(h, key, gbuf)
							want, wok := ref[key]
							if ok != wok || (ok && !bytes.Equal(got, want)) {
								errs <- fmt.Errorf("thread %d op %d: Get(%s) = (%d bytes, %v), want (%d bytes, %v)",
									id, n, key, len(got), ok, len(want), wok)
								return
							}
							gbuf = got[:0]
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			for _, h := range hs {
				h.Flush()
			}
			if p != core.NR {
				if u := g.Unreclaimed(); u != 0 {
					t.Fatalf("%d unreclaimed after quiescent flush", u)
				}
			}
		})
	}
}

// TestStoreBatchVsLoop checks GetBatch's positional equivalence with
// per-key Gets: exactly on a quiescent store (hits, misses, duplicates,
// cross-shard batches), and against private references under full
// concurrency. The store is fully grouped (one member per shard), so
// every batch crosses member domains.
func TestStoreBatchVsLoop(t *testing.T) {
	const (
		threads = 4
		keys    = 512
		batch   = 64
	)
	for _, p := range []core.Policy{core.EBR, core.HP, core.NBR, core.EpochPOP, core.HazardEraPOP} {
		for _, backing := range []string{BackingSkipList, BackingHashTable, BackingABTree} {
			t.Run(fmt.Sprintf("%v/%s", p, backing), func(t *testing.T) {
				g := newGroup(p, 8, threads)
				s, err := New(g, Config{Shards: 8, Backing: backing})
				if err != nil {
					t.Fatal(err)
				}
				hs := make([]*core.GroupHandle, threads)
				for i := range hs {
					hs[i] = acquire(t, s)
				}
				h := hs[0]
				var vbuf []byte
				for i := int64(0); i < keys; i += 2 {
					key := workload.KeyString(i)
					vbuf = valFor(vbuf, key, uint32(i), 16+int(i)%200)
					s.Put(h, key, vbuf)
				}

				// Quiescent equivalence.
				r := rng.New(uint64(p) * 17)
				kbuf := make([]string, batch)
				var b Batch
				for round := 0; round < 10; round++ {
					for i := range kbuf {
						kbuf[i] = workload.KeyString(r.Intn(keys))
					}
					kbuf[3] = kbuf[1] // duplicates answered independently
					s.GetBatch(h, kbuf, &b)
					for i, key := range kbuf {
						want, wok := s.Get(h, key, nil)
						if b.OK[i] != wok || !bytes.Equal(b.Vals[i], want) {
							t.Fatalf("round %d slot %d key %s: batch (%d bytes, %v) vs get (%d bytes, %v)",
								round, i, key, len(b.Vals[i]), b.OK[i], len(want), wok)
						}
					}
				}

				// Concurrent: each thread batch-reads its own stripe.
				errs := make(chan error, threads)
				var wg sync.WaitGroup
				for w := 0; w < threads; w++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						h := hs[id]
						base := int64(keys + id*256)
						ref := make(map[string][]byte)
						r := rng.New(uint64(id)*977 + uint64(p))
						kb := make([]string, batch)
						var vb []byte
						var bb Batch
						for n := 0; n < 30; n++ {
							for j := 0; j < 16; j++ {
								key := workload.KeyString(base + r.Intn(256))
								if r.Intn(5) == 0 {
									s.Delete(h, key)
									delete(ref, key)
								} else {
									vb = valFor(vb, key, uint32(n*16+j), 16+int(r.Intn(100)))
									s.Put(h, key, vb)
									ref[key] = append([]byte(nil), vb...)
								}
							}
							for j := range kb {
								kb[j] = workload.KeyString(base + r.Intn(256))
							}
							s.GetBatch(h, kb, &bb)
							for j, key := range kb {
								want, wok := ref[key]
								if bb.OK[j] != wok || (wok && !bytes.Equal(bb.Vals[j], want)) {
									errs <- fmt.Errorf("thread %d round %d: batch slot %d key %s mismatch", id, n, j, key)
									return
								}
							}
						}
					}(w)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}
				for _, h := range hs {
					h.Flush()
				}
			})
		}
	}
}

// TestStorePutBatchVsLoop checks PutBatch's equivalence with per-key
// Puts: positional replaced-flags, values readable afterwards, replaced
// values retired (value-slot accounting stays exact), batch-capable and
// fallback backings, and Batch reuse across a GetBatch → modify →
// PutBatch read-modify-write cycle.
func TestStorePutBatchVsLoop(t *testing.T) {
	const (
		keys  = 256
		batch = 64
	)
	for _, p := range []core.Policy{core.EBR, core.HP, core.EpochPOP} {
		for _, backing := range []string{BackingSkipList, BackingHashTable,
			BackingHarrisMichaelList, BackingABTree} {
			t.Run(fmt.Sprintf("%v/%s", p, backing), func(t *testing.T) {
				g := newGroup(p, 4, 2)
				s, err := New(g, Config{Shards: 8, Backing: backing})
				if err != nil {
					t.Fatal(err)
				}
				h := acquire(t, s)
				r := rng.New(uint64(p)*29 + 7)
				ref := make(map[string][]byte, keys)
				var vbuf []byte
				// Seed half the space so batches mix inserts and overwrites.
				for i := int64(0); i < keys; i += 2 {
					key := workload.KeyString(i)
					vbuf = valFor(vbuf, key, uint32(i), 24)
					s.Put(h, key, vbuf)
					ref[key] = append([]byte(nil), vbuf...)
				}
				kb := make([]string, batch)
				vb := make([][]byte, batch)
				var b Batch
				for round := 0; round < 8; round++ {
					for i := range kb {
						kb[i] = workload.KeyString(r.Intn(keys))
						vb[i] = valFor(nil, kb[i], uint32(round*batch+i), 16+int(r.Intn(120)))
					}
					kb[5] = kb[2] // duplicate keys upsert in slot order
					vb[5] = valFor(nil, kb[5], uint32(round*batch)+0xbeef, 40)
					wantOK := make([]bool, batch)
					present := make(map[string]bool, batch)
					for i, key := range kb {
						_, had := ref[key]
						wantOK[i] = had || present[key]
						present[key] = true
					}
					s.PutBatch(h, kb, vb, &b)
					for i, key := range kb {
						if b.OK[i] != wantOK[i] {
							t.Fatalf("round %d slot %d key %s: replaced=%v want %v",
								round, i, key, b.OK[i], wantOK[i])
						}
						// Slot order is upsert order (the in-bucket sort is
						// stable), so a duplicate key's later slot wins.
						ref[key] = append([]byte(nil), vb[i]...)
					}
					for key, want := range ref {
						got, ok := s.Get(h, key, nil)
						if !ok || !bytes.Equal(got, want) {
							t.Fatalf("round %d: Get(%s) = (%d bytes, %v), want %d bytes",
								round, key, len(got), ok, len(want))
						}
					}
				}

				// Read-modify-write reusing one Batch: fetch a batch of
				// known-present keys, rewrite every hit with a derived
				// payload, put the batch back.
				live := make([]string, 0, len(ref))
				for key := range ref {
					live = append(live, key)
				}
				for i := range kb {
					kb[i] = live[int(r.Intn(int64(len(live))))]
				}
				s.GetBatch(h, kb, &b)
				for i := range kb {
					if !b.OK[i] {
						t.Fatalf("rmw key %s missing despite being in the reference map", kb[i])
					}
					vb[i] = valFor(vb[i][:0], kb[i], 0xc0de, len(b.Vals[i]))
				}
				s.PutBatch(h, kb, vb, &b)
				for i := range kb {
					if !b.OK[i] {
						t.Fatalf("rmw PutBatch slot %d did not replace", i)
					}
				}

				h.Flush()
				if p != core.NR {
					if u := g.Unreclaimed(); u != 0 {
						t.Fatalf("%d unreclaimed after quiescent flush", u)
					}
					// Every live key holds exactly one value slot: all replaced
					// slots must have been retired and freed.
					if vo, live := s.vals.Outstanding(), int64(s.Size(h)); vo != live {
						t.Fatalf("value slots outstanding = %d, live keys = %d", vo, live)
					}
				}
				if st := s.Stats(); st.PutBatches != 9 {
					t.Fatalf("PutBatches = %d, want 9", st.PutBatches)
				}
			})
		}
	}
}

// TestStoreOverwriteStorm is the acceptance storm: all threads hammer a
// small hot key set with overwrites while serving gets, batches, batch
// puts and scans. Every value the store returns, on every path, must be
// internally consistent — the checksummed payload of some put to
// exactly that key. A torn read, a stale slot served as live, or a
// cross-key value fails the checksum. Runs under every policy on a
// fully grouped store (one member domain per shard).
func TestStoreOverwriteStorm(t *testing.T) {
	const (
		threads = 4
		hotKeys = 32
		ops     = 1200
	)
	for _, p := range core.Policies() {
		t.Run(p.String(), func(t *testing.T) {
			g := newGroup(p, 4, threads)
			s, err := New(g, Config{Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			hs := make([]*core.GroupHandle, threads)
			for i := range hs {
				hs[i] = acquire(t, s)
			}
			keyTab := make([]string, hotKeys)
			hkTab := make([]int64, hotKeys)
			for i := range keyTab {
				keyTab[i] = workload.KeyString(int64(i))
				hkTab[i] = KeyHash(keyTab[i])
			}
			var vbuf []byte
			for i, key := range keyTab {
				vbuf = valFor(vbuf, key, uint32(i), 32)
				s.Put(hs[0], key, vbuf)
			}
			var badValues atomic.Uint64
			var wg sync.WaitGroup
			for w := 0; w < threads; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					h := hs[id]
					r := rng.New(uint64(id)*7919 + uint64(p) + 3)
					var vb, gb []byte
					kb := make([]string, 8)
					pv := make([][]byte, 8)
					var bb Batch
					tag := uint32(id) << 24
					for n := 0; n < ops; n++ {
						i := int(r.Intn(hotKeys))
						switch r.Intn(8) {
						case 0, 1, 2: // overwrite: a retirement per hit
							tag++
							vb = valFor(vb, keyTab[i], tag, 16+int(r.Intn(1000)))
							s.Put(h, keyTab[i], vb)
						case 3: // batched serve
							for j := range kb {
								kb[j] = keyTab[int(r.Intn(hotKeys))]
							}
							s.GetBatch(h, kb, &bb)
							for j := range kb {
								if bb.OK[j] && !workload.ValueBytesValid(KeyHash(kb[j]), bb.Vals[j]) {
									badValues.Add(1)
								}
							}
						case 4: // scan serve (ordered backing)
							s.Scan(h, hkTab[i]-1000, hkTab[i]+1000, func(hk int64, v []byte) bool {
								if !workload.ValueBytesValid(hk, v) {
									badValues.Add(1)
								}
								return true
							})
						case 5: // batched overwrite: 8 retirements per hit set
							for j := range kb {
								tag++
								kb[j] = keyTab[int(r.Intn(hotKeys))]
								pv[j] = valFor(pv[j][:0], kb[j], tag, 16+int(r.Intn(400)))
							}
							s.PutBatch(h, kb, pv, &bb)
						default: // single serve
							var ok bool
							gb, ok = s.Get(h, keyTab[i], gb)
							if ok && !workload.ValueBytesValid(hkTab[i], gb) {
								badValues.Add(1)
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if n := badValues.Load(); n != 0 {
				t.Fatalf("%d checksum-invalid values served under %v", n, p)
			}
			for _, h := range hs {
				h.Flush()
			}
			st := s.Stats()
			if st.Overwrites == 0 {
				t.Fatal("storm produced no overwrites")
			}
			if st.PutBatches == 0 {
				t.Fatal("storm produced no batched puts")
			}
			if p != core.NR {
				if u := g.Unreclaimed(); u != 0 {
					t.Fatalf("%d unreclaimed after quiescent flush", u)
				}
				// Every live key holds exactly one value slot; everything
				// retired must have been freed by the flush.
				if vo, live := s.vals.Outstanding(), int64(s.Size(hs[0])); vo != live {
					t.Fatalf("value slots outstanding = %d, live keys = %d", vo, live)
				}
			}
		})
	}
}

// TestStoreScan checks the value-returning scan on both ordered
// backings: on a quiescent store a full-space scan yields every pair
// exactly once with exact payload bytes, pairs arrive ascending within
// each shard, windows restrict correctly, and early termination stops
// the walk.
func TestStoreScan(t *testing.T) {
	const keys = 300
	for _, backing := range []string{BackingSkipList, BackingABTree} {
		t.Run(backing, func(t *testing.T) {
			g := newGroup(core.EBR, 2, 1)
			s, err := New(g, Config{Shards: 4, Backing: backing})
			if err != nil {
				t.Fatal(err)
			}
			h := acquire(t, s)
			want := make(map[int64][]byte, keys)
			var vbuf []byte
			for i := int64(0); i < keys; i++ {
				key := workload.KeyString(i)
				vbuf = valFor(vbuf, key, uint32(i), 16+int(i)%64)
				s.Put(h, key, vbuf)
				want[KeyHash(key)] = append([]byte(nil), vbuf...)
			}
			got := make(map[int64][]byte, keys)
			// Scan order is shard-major: within one shard keys ascend, and a
			// drop marks a shard boundary — at most Shards()-1 drops total.
			drops := 0
			last := int64(math.MinInt64)
			n := s.Scan(h, -1<<62, 1<<62, func(hk int64, v []byte) bool {
				if _, dup := got[hk]; dup {
					t.Fatalf("pair %d scanned twice", hk)
				}
				if hk < last {
					drops++
				}
				last = hk
				got[hk] = append([]byte(nil), v...)
				return true
			})
			if drops > s.Shards()-1 {
				t.Fatalf("%d order drops, want < shard count %d", drops, s.Shards())
			}
			// The window covers most but not all of the hash space, so
			// compare against the reference filtered the same way.
			expect := 0
			for hk, wv := range want {
				if hk < -1<<62 || hk > 1<<62 {
					continue
				}
				expect++
				gv, ok := got[hk]
				if !ok || !bytes.Equal(gv, wv) {
					t.Fatalf("pair %d: got %d bytes (present=%v), want %d", hk, len(gv), ok, len(wv))
				}
			}
			if n != expect || len(got) != expect {
				t.Fatalf("scan visited %d pairs (map %d), want %d", n, len(got), expect)
			}
			// Early stop.
			count := 0
			s.Scan(h, -1<<62, 1<<62, func(int64, []byte) bool {
				count++
				return count < 5
			})
			if count != 5 {
				t.Fatalf("early-stopped scan visited %d pairs, want 5", count)
			}
			h.Flush()
		})
	}
}

func TestStoreScanUnorderedPanics(t *testing.T) {
	g := newGroup(core.NR, 1, 1)
	s, err := New(g, Config{Backing: BackingHashTable})
	if err != nil {
		t.Fatal(err)
	}
	h := acquire(t, s)
	defer func() {
		if recover() == nil {
			t.Fatal("Scan on unordered backing did not panic")
		}
	}()
	s.Scan(h, 0, 100, func(int64, []byte) bool { return true })
}

func TestStoreConfigValidation(t *testing.T) {
	g := newGroup(core.NR, 1, 1)
	if _, err := New(g, Config{Backing: "btree"}); err == nil {
		t.Fatal("unknown backing accepted")
	}
	s, err := New(core.NewDomainGroup(core.NR, 1, 1, nil), Config{Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 8 {
		t.Fatalf("Shards() = %d, want rounded-up 8", s.Shards())
	}
	// More member domains than shards has no shard→member mapping.
	if _, err := New(core.NewDomainGroup(core.NR, 8, 1, nil), Config{Shards: 4}); err == nil {
		t.Fatal("members > shards accepted")
	}
}
