package store

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"pop/internal/core"
	"pop/internal/rng"
	"pop/internal/workload"
)

// newDomain builds a domain with tiny thresholds so reclamation paths
// run constantly during the tests (the dstest convention).
func newDomain(p core.Policy, threads int) *core.Domain {
	return core.NewDomain(p, threads, &core.Options{
		ReclaimThreshold: 32,
		EpochFreq:        8,
		BatchSize:        8,
		Debug:            true,
	})
}

// valFor builds the canonical checksummed payload for key.
func valFor(buf []byte, key string, tag uint32, size int) []byte {
	return workload.AppendValueBytes(buf[:0], KeyHash(key), tag, size)
}

func TestStoreSequential(t *testing.T) {
	for _, backing := range []string{BackingSkipList, BackingHashTable, BackingABTree,
		BackingHarrisMichaelList, BackingLazyList, BackingExternalBST} {
		t.Run(backing, func(t *testing.T) {
			d := newDomain(core.EpochPOP, 1)
			s, err := New(d, Config{Shards: 4, Backing: backing})
			if err != nil {
				t.Fatal(err)
			}
			th := d.RegisterThread()

			if _, ok := s.Get(th, "missing", nil); ok {
				t.Fatal("Get on empty store succeeded")
			}
			s.Put(th, "alpha", []byte("value-1"))
			if v, ok := s.Get(th, "alpha", nil); !ok || string(v) != "value-1" {
				t.Fatalf("Get(alpha) = %q, %v", v, ok)
			}
			s.Put(th, "alpha", []byte("value-2, longer than before"))
			if v, ok := s.Get(th, "alpha", nil); !ok || string(v) != "value-2, longer than before" {
				t.Fatalf("overwritten Get(alpha) = %q, %v", v, ok)
			}
			if s.PutIfAbsent(th, "alpha", []byte("loser")) {
				t.Fatal("PutIfAbsent overwrote a present key")
			}
			if !s.PutIfAbsent(th, "beta", []byte("beta-value")) {
				t.Fatal("PutIfAbsent failed on an absent key")
			}
			if !s.Contains(th, "beta") || s.Contains(th, "gamma") {
				t.Fatal("Contains wrong")
			}
			if got := s.Size(th); got != 2 {
				t.Fatalf("Size = %d, want 2", got)
			}
			if !s.Delete(th, "alpha") || s.Delete(th, "alpha") {
				t.Fatal("Delete semantics wrong")
			}
			if _, ok := s.Get(th, "alpha", nil); ok {
				t.Fatal("deleted key still served")
			}
			st := s.Stats()
			if st.Puts != 3 || st.Overwrites != 1 || st.Deletes != 1 {
				t.Fatalf("stats: %+v", st)
			}
			th.Flush()
			if p := d.Policy(); p != core.NR {
				if u := d.Unreclaimed(); u != 0 {
					t.Fatalf("%d unreclaimed after flush", u)
				}
			}
			// One live key (beta): exactly one value slot outstanding.
			if vo := s.vals.Outstanding(); vo != 1 {
				t.Fatalf("value slots outstanding = %d, want 1", vo)
			}
		})
	}
}

// TestStoreGetAfterPut is the linearizable get-after-put check per
// shard: each thread owns a private slice of the key space and every
// Get of an owned key must return exactly the bytes of the thread's
// latest Put, while all other threads churn their own stripes through
// the same shards. Runs under every policy.
func TestStoreGetAfterPut(t *testing.T) {
	const (
		threads = 4
		stripe  = 64
		ops     = 1500
	)
	for _, p := range core.Policies() {
		t.Run(p.String(), func(t *testing.T) {
			d := newDomain(p, threads)
			s, err := New(d, Config{Shards: 8})
			if err != nil {
				t.Fatal(err)
			}
			ths := make([]*core.Thread, threads)
			for i := range ths {
				ths[i] = d.RegisterThread()
			}
			errs := make(chan error, threads)
			var wg sync.WaitGroup
			for w := 0; w < threads; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					th := ths[id]
					r := rng.New(uint64(id)*31 + uint64(p) + 1)
					ref := make(map[string][]byte, stripe)
					var vbuf, gbuf []byte
					for n := 0; n < ops; n++ {
						key := workload.KeyString(int64(id)*stripe + r.Intn(stripe))
						switch r.Intn(10) {
						case 0:
							s.Delete(th, key)
							delete(ref, key)
						case 1, 2, 3, 4:
							size := 16 + int(r.Intn(240))
							vbuf = valFor(vbuf, key, uint32(n), size)
							s.Put(th, key, vbuf)
							ref[key] = append([]byte(nil), vbuf...)
						default:
							got, ok := s.Get(th, key, gbuf)
							want, wok := ref[key]
							if ok != wok || (ok && !bytes.Equal(got, want)) {
								errs <- fmt.Errorf("thread %d op %d: Get(%s) = (%d bytes, %v), want (%d bytes, %v)",
									id, n, key, len(got), ok, len(want), wok)
								return
							}
							gbuf = got[:0]
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			for _, th := range ths {
				th.Flush()
			}
			if p != core.NR {
				if u := d.Unreclaimed(); u != 0 {
					t.Fatalf("%d unreclaimed after quiescent flush", u)
				}
			}
		})
	}
}

// TestStoreBatchVsLoop checks GetBatch's positional equivalence with
// per-key Gets: exactly on a quiescent store (hits, misses, duplicates,
// cross-shard batches), and against private references under full
// concurrency.
func TestStoreBatchVsLoop(t *testing.T) {
	const (
		threads = 4
		keys    = 512
		batch   = 64
	)
	for _, p := range []core.Policy{core.EBR, core.HP, core.NBR, core.EpochPOP, core.HazardEraPOP} {
		for _, backing := range []string{BackingSkipList, BackingHashTable, BackingABTree} {
			t.Run(fmt.Sprintf("%v/%s", p, backing), func(t *testing.T) {
				d := newDomain(p, threads)
				s, err := New(d, Config{Shards: 8, Backing: backing})
				if err != nil {
					t.Fatal(err)
				}
				ths := make([]*core.Thread, threads)
				for i := range ths {
					ths[i] = d.RegisterThread()
				}
				th := ths[0]
				var vbuf []byte
				for i := int64(0); i < keys; i += 2 {
					key := workload.KeyString(i)
					vbuf = valFor(vbuf, key, uint32(i), 16+int(i)%200)
					s.Put(th, key, vbuf)
				}

				// Quiescent equivalence.
				r := rng.New(uint64(p) * 17)
				kbuf := make([]string, batch)
				var b Batch
				for round := 0; round < 10; round++ {
					for i := range kbuf {
						kbuf[i] = workload.KeyString(r.Intn(keys))
					}
					kbuf[3] = kbuf[1] // duplicates answered independently
					s.GetBatch(th, kbuf, &b)
					for i, key := range kbuf {
						want, wok := s.Get(th, key, nil)
						if b.OK[i] != wok || !bytes.Equal(b.Vals[i], want) {
							t.Fatalf("round %d slot %d key %s: batch (%d bytes, %v) vs get (%d bytes, %v)",
								round, i, key, len(b.Vals[i]), b.OK[i], len(want), wok)
						}
					}
				}

				// Concurrent: each thread batch-reads its own stripe.
				errs := make(chan error, threads)
				var wg sync.WaitGroup
				for w := 0; w < threads; w++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						th := ths[id]
						base := int64(keys + id*256)
						ref := make(map[string][]byte)
						r := rng.New(uint64(id)*977 + uint64(p))
						kb := make([]string, batch)
						var vb []byte
						var bb Batch
						for n := 0; n < 30; n++ {
							for j := 0; j < 16; j++ {
								key := workload.KeyString(base + r.Intn(256))
								if r.Intn(5) == 0 {
									s.Delete(th, key)
									delete(ref, key)
								} else {
									vb = valFor(vb, key, uint32(n*16+j), 16+int(r.Intn(100)))
									s.Put(th, key, vb)
									ref[key] = append([]byte(nil), vb...)
								}
							}
							for j := range kb {
								kb[j] = workload.KeyString(base + r.Intn(256))
							}
							s.GetBatch(th, kb, &bb)
							for j, key := range kb {
								want, wok := ref[key]
								if bb.OK[j] != wok || (wok && !bytes.Equal(bb.Vals[j], want)) {
									errs <- fmt.Errorf("thread %d round %d: batch slot %d key %s mismatch", id, n, j, key)
									return
								}
							}
						}
					}(w)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}
				for _, th := range ths {
					th.Flush()
				}
			})
		}
	}
}

// TestStoreOverwriteStorm is the acceptance storm: all threads hammer a
// small hot key set with overwrites while serving gets, batches and
// scans. Every value the store returns, on every path, must be
// internally consistent — the checksummed payload of some put to
// exactly that key. A torn read, a stale slot served as live, or a
// cross-key value fails the checksum. Runs under every policy.
func TestStoreOverwriteStorm(t *testing.T) {
	const (
		threads = 4
		hotKeys = 32
		ops     = 1200
	)
	for _, p := range core.Policies() {
		t.Run(p.String(), func(t *testing.T) {
			d := newDomain(p, threads)
			s, err := New(d, Config{Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			ths := make([]*core.Thread, threads)
			for i := range ths {
				ths[i] = d.RegisterThread()
			}
			keyTab := make([]string, hotKeys)
			hkTab := make([]int64, hotKeys)
			for i := range keyTab {
				keyTab[i] = workload.KeyString(int64(i))
				hkTab[i] = KeyHash(keyTab[i])
			}
			var vbuf []byte
			for i, key := range keyTab {
				vbuf = valFor(vbuf, key, uint32(i), 32)
				s.Put(ths[0], key, vbuf)
			}
			var badValues atomic.Uint64
			var wg sync.WaitGroup
			for w := 0; w < threads; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					th := ths[id]
					r := rng.New(uint64(id)*7919 + uint64(p) + 3)
					var vb, gb []byte
					kb := make([]string, 8)
					var bb Batch
					tag := uint32(id) << 24
					for n := 0; n < ops; n++ {
						i := int(r.Intn(hotKeys))
						switch r.Intn(8) {
						case 0, 1, 2: // overwrite: a retirement per hit
							tag++
							vb = valFor(vb, keyTab[i], tag, 16+int(r.Intn(1000)))
							s.Put(th, keyTab[i], vb)
						case 3: // batched serve
							for j := range kb {
								kb[j] = keyTab[int(r.Intn(hotKeys))]
							}
							s.GetBatch(th, kb, &bb)
							for j := range kb {
								if bb.OK[j] && !workload.ValueBytesValid(KeyHash(kb[j]), bb.Vals[j]) {
									badValues.Add(1)
								}
							}
						case 4: // scan serve (ordered backing)
							s.Scan(th, hkTab[i]-1000, hkTab[i]+1000, func(hk int64, v []byte) bool {
								if !workload.ValueBytesValid(hk, v) {
									badValues.Add(1)
								}
								return true
							})
						default: // single serve
							var ok bool
							gb, ok = s.Get(th, keyTab[i], gb)
							if ok && !workload.ValueBytesValid(hkTab[i], gb) {
								badValues.Add(1)
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if n := badValues.Load(); n != 0 {
				t.Fatalf("%d checksum-invalid values served under %v", n, p)
			}
			for _, th := range ths {
				th.Flush()
			}
			st := s.Stats()
			if st.Overwrites == 0 {
				t.Fatal("storm produced no overwrites")
			}
			if p != core.NR {
				if u := d.Unreclaimed(); u != 0 {
					t.Fatalf("%d unreclaimed after quiescent flush", u)
				}
				// Every live key holds exactly one value slot; everything
				// retired must have been freed by the flush.
				if vo, live := s.vals.Outstanding(), int64(s.Size(ths[0])); vo != live {
					t.Fatalf("value slots outstanding = %d, live keys = %d", vo, live)
				}
			}
		})
	}
}

// TestStoreScan checks the value-returning scan on both ordered
// backings: on a quiescent store a full-space scan yields every pair
// exactly once with exact payload bytes, pairs arrive ascending within
// each shard, windows restrict correctly, and early termination stops
// the walk.
func TestStoreScan(t *testing.T) {
	const keys = 300
	for _, backing := range []string{BackingSkipList, BackingABTree} {
		t.Run(backing, func(t *testing.T) {
			d := newDomain(core.EBR, 1)
			s, err := New(d, Config{Shards: 4, Backing: backing})
			if err != nil {
				t.Fatal(err)
			}
			th := d.RegisterThread()
			want := make(map[int64][]byte, keys)
			var vbuf []byte
			for i := int64(0); i < keys; i++ {
				key := workload.KeyString(i)
				vbuf = valFor(vbuf, key, uint32(i), 16+int(i)%64)
				s.Put(th, key, vbuf)
				want[KeyHash(key)] = append([]byte(nil), vbuf...)
			}
			got := make(map[int64][]byte, keys)
			// Scan order is shard-major: within one shard keys ascend, and a
			// drop marks a shard boundary — at most Shards()-1 drops total.
			drops := 0
			last := int64(math.MinInt64)
			n := s.Scan(th, -1<<62, 1<<62, func(hk int64, v []byte) bool {
				if _, dup := got[hk]; dup {
					t.Fatalf("pair %d scanned twice", hk)
				}
				if hk < last {
					drops++
				}
				last = hk
				got[hk] = append([]byte(nil), v...)
				return true
			})
			if drops > s.Shards()-1 {
				t.Fatalf("%d order drops, want < shard count %d", drops, s.Shards())
			}
			// The window covers most but not all of the hash space, so
			// compare against the reference filtered the same way.
			expect := 0
			for hk, wv := range want {
				if hk < -1<<62 || hk > 1<<62 {
					continue
				}
				expect++
				gv, ok := got[hk]
				if !ok || !bytes.Equal(gv, wv) {
					t.Fatalf("pair %d: got %d bytes (present=%v), want %d", hk, len(gv), ok, len(wv))
				}
			}
			if n != expect || len(got) != expect {
				t.Fatalf("scan visited %d pairs (map %d), want %d", n, len(got), expect)
			}
			// Early stop.
			count := 0
			s.Scan(th, -1<<62, 1<<62, func(int64, []byte) bool {
				count++
				return count < 5
			})
			if count != 5 {
				t.Fatalf("early-stopped scan visited %d pairs, want 5", count)
			}
			th.Flush()
		})
	}
}

func TestStoreScanUnorderedPanics(t *testing.T) {
	d := newDomain(core.NR, 1)
	s, err := New(d, Config{Backing: BackingHashTable})
	if err != nil {
		t.Fatal(err)
	}
	th := d.RegisterThread()
	defer func() {
		if recover() == nil {
			t.Fatal("Scan on unordered backing did not panic")
		}
	}()
	s.Scan(th, 0, 100, func(int64, []byte) bool { return true })
}

func TestStoreConfigValidation(t *testing.T) {
	d := newDomain(core.NR, 1)
	if _, err := New(d, Config{Backing: "btree"}); err == nil {
		t.Fatal("unknown backing accepted")
	}
	s, err := New(core.NewDomain(core.NR, 1, nil), Config{Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 8 {
		t.Fatalf("Shards() = %d, want rounded-up 8", s.Shards())
	}
}
