// Store mode: one trial of the KV-serving front (internal/store) — a
// sharded string-key store × a reclamation policy × a store mix ×
// a thread count — with the same per-op-class latency-histogram
// machinery the map trials use. Where a map trial measures the paper's
// dialect (one key, one protected operation), a store trial measures
// serving shapes: single gets, batched multi-gets (one protected
// operation per shard per batch), value-returning scans, and
// variable-size payload writes, under uniform or Zipfian key
// popularity.
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pop/internal/arena"
	"pop/internal/chaos"
	"pop/internal/core"
	"pop/internal/padded"
	"pop/internal/report"
	"pop/internal/rng"
	"pop/internal/store"
	"pop/internal/telemetry"
	"pop/internal/workload"
)

// StoreOpClass is one store operation class for counters and latency
// histograms.
type StoreOpClass int

// The store operation classes, in reporting order.
const (
	SOpGet StoreOpClass = iota
	SOpPut
	SOpMGet
	SOpScan
	SOpDelete
	SOpRMW
	SOpMPut
	NumStoreOpClasses
)

var storeOpClassNames = [NumStoreOpClasses]string{"get", "put", "mget", "scan", "delete", "rmw", "mput"}

// String returns the class's reporting name.
func (c StoreOpClass) String() string {
	if c >= 0 && c < NumStoreOpClasses {
		return storeOpClassNames[c]
	}
	return fmt.Sprintf("StoreOpClass(%d)", int(c))
}

// MixShare returns the class's percentage share of a store mix.
func (c StoreOpClass) MixShare(m workload.StoreMix) int {
	switch c {
	case SOpGet:
		return m.GetPct
	case SOpPut:
		return m.PutPct
	case SOpMGet:
		return m.MGetPct
	case SOpScan:
		return m.ScanPct
	case SOpRMW:
		return m.RMWPct
	case SOpMPut:
		return m.MPutPct
	default:
		return m.DeletePct
	}
}

// classOfStore maps a store op to its reporting class.
func classOfStore(op workload.StoreOp) StoreOpClass {
	switch op {
	case workload.StoreGet:
		return SOpGet
	case workload.StorePut:
		return SOpPut
	case workload.StoreMGet:
		return SOpMGet
	case workload.StoreScan:
		return SOpScan
	case workload.StoreRMW:
		return SOpRMW
	case workload.StoreMPut:
		return SOpMPut
	default:
		return SOpDelete
	}
}

// StoreConfig describes one store trial.
type StoreConfig struct {
	Policy   core.Policy   // reclamation scheme
	Threads  int           // worker count
	Duration time.Duration // execution-phase length
	Keys     int64         // key population (ranks 0..Keys-1)
	Shards   int           // store shard count (power of two; default 8)
	Groups   int           // member reclamation domains (power of two, <= Shards; default 1)
	Backing  string        // per-shard structure (store.Backing*; default skl)
	Seed     uint64        // trial seed (reproducible)

	Mix workload.StoreMix // op mixture (default workload.StoreServe)

	// Dist is the key-popularity distribution (uniform, zipf or
	// latest) with ZipfS skew (<= 0 = workload.DefaultZipfS). Under
	// latest, puts land on the advancing insert frontier (YCSB D's
	// read-the-records-just-inserted shape).
	Dist  workload.Dist
	ZipfS float64

	// Trace replaces the synthetic mix with a recorded op stream
	// (workload.ParseTrace): workers drain the trace exactly once
	// through a shared cursor, and the trial ends when it is
	// exhausted (Duration is ignored). Every distinct trace key is
	// prefilled with a verifiable value so reads hit. Trace mode is
	// incompatible with Churn; Mix/Dist are ignored.
	Trace []workload.TraceOp
	// TracePaced honours each op's Offset (open-loop replay: no op
	// fires before trace-start + Offset). Default: as fast as
	// possible.
	TracePaced bool

	// Chaos runs fault injectors (internal/chaos) alongside the
	// workload: the domain is sized with Chaos.Slots() extra thread
	// slots and StoreResult.Chaos reports what the injectors did.
	Chaos chaos.Config

	// ChaosStart/ChaosStop window the injectors to a burst inside the
	// timed phase: the injectors launch ChaosStart after the measured
	// phase begins and stop at ChaosStop (0 = run to the end of the
	// phase). Both zero (the default) runs chaos for the whole phase.
	// Burst mode is how the timeline figure shows a stalled-reader
	// spike arriving and draining mid-run. Requires Chaos.Enabled();
	// incompatible with trace replay (whose length Duration
	// doesn't bound).
	ChaosStart, ChaosStop time.Duration

	// Churn enables the elastic serving mode: each worker returns its
	// handle to the store's pool after Churn.AfterOps operations and
	// respawns as a fresh goroutine re-leasing a slot —
	// resize-under-load, measured. StoreResult.Lifecycle reports the
	// turnover.
	Churn workload.Churn

	// BatchSize is the multi-get batch width (default 16).
	BatchSize int
	// ScanSpan is the expected number of pairs per scan (default 32);
	// the hashed-key window width is derived from it and the key
	// population.
	ScanSpan int
	// ValueMin/ValueMax bound the (uniformly drawn) payload sizes
	// (defaults 16 and 256; the serving shape is 16–1024 B). ValueMin
	// is clamped up to workload.MinCompactLen (4), the smallest
	// verifiable payload; sizes at or below store.InlineMaxLen (7)
	// take the store's inline-value fast path.
	ValueMin, ValueMax int
	// ValueSmallPct switches the size draw from uniform over
	// [ValueMin, ValueMax] to a bimodal small-vs-large mix: that
	// percentage of puts (and prefilled values) are exactly ValueMin
	// bytes and the rest exactly ValueMax — the knob that dials the
	// inline-vs-arena ratio of a trial. 0 (the default) keeps the
	// uniform draw.
	ValueSmallPct int

	// OpLatency enables per-class latency histograms (on in sweeps).
	OpLatency bool

	// Reclamation tuning (0 = paper defaults; see core.Options).
	ReclaimThreshold int
	EpochFreq        int
	CMult            int
	BatchNodes       int // Crystalline batch size (core.Options.BatchSize)

	// SamplePeriod is the memory-sampling interval (default 2ms).
	SamplePeriod time.Duration

	// SampleEvery enables live telemetry (see Config.SampleEvery):
	// StoreResult.Timeline carries interval deltas of the group's
	// reclamation counters, store-level extras (gets/puts/overwrites/
	// deletes/scan pairs/stale reads), and stalled-reader episodes.
	SampleEvery time.Duration
}

func (c StoreConfig) withDefaults() (StoreConfig, error) {
	if c.Threads <= 0 {
		return c, fmt.Errorf("harness: store Threads must be positive")
	}
	if c.Keys <= 1 {
		return c, fmt.Errorf("harness: store Keys must exceed 1")
	}
	if c.Duration <= 0 {
		c.Duration = 100 * time.Millisecond
	}
	if len(c.Trace) > 0 && c.Churn.Enabled() {
		return c, fmt.Errorf("harness: trace replay is incompatible with churn")
	}
	if c.ChaosStart > 0 || c.ChaosStop > 0 {
		if !c.Chaos.Enabled() {
			return c, fmt.Errorf("harness: ChaosStart/ChaosStop set but Chaos is disabled")
		}
		if len(c.Trace) > 0 {
			return c, fmt.Errorf("harness: chaos bursts are incompatible with trace replay")
		}
		if c.ChaosStop > 0 && c.ChaosStop <= c.ChaosStart {
			return c, fmt.Errorf("harness: ChaosStop %v must exceed ChaosStart %v", c.ChaosStop, c.ChaosStart)
		}
	}
	if c.Mix == (workload.StoreMix{}) {
		c.Mix = workload.StoreServe
	}
	if !c.Mix.Valid() {
		return c, fmt.Errorf("harness: store mix %+v does not sum to 100", c.Mix)
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Groups <= 0 {
		c.Groups = 1
	}
	// Round the group count up to a power of two and cap it at the
	// (equally rounded) shard count — the store's members<=shards rule.
	n := 1
	for n < c.Groups {
		n <<= 1
	}
	c.Groups = n
	n = 1
	for n < c.Shards {
		n <<= 1
	}
	if c.Groups > n {
		c.Groups = n
	}
	if c.Backing == "" {
		c.Backing = store.BackingSkipList
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.ScanSpan <= 0 {
		c.ScanSpan = 32
	}
	if c.ValueMin <= 0 {
		c.ValueMin = 16
	}
	if c.ValueMin < workload.MinCompactLen {
		c.ValueMin = workload.MinCompactLen
	}
	if c.ValueSmallPct < 0 || c.ValueSmallPct > 100 {
		return c, fmt.Errorf("harness: ValueSmallPct %d out of [0, 100]", c.ValueSmallPct)
	}
	if c.ValueMax <= 0 {
		// Default 256, but never below an explicitly chosen ValueMin:
		// {ValueMin: 512} alone means fixed 512-byte payloads.
		c.ValueMax = 256
		if c.ValueMax < c.ValueMin {
			c.ValueMax = c.ValueMin
		}
	}
	if c.ValueMax < c.ValueMin {
		return c, fmt.Errorf("harness: ValueMax %d below ValueMin %d", c.ValueMax, c.ValueMin)
	}
	if c.ValueMax > arena.MaxValueLen {
		return c, fmt.Errorf("harness: ValueMax %d exceeds the value arena's %d-byte cap", c.ValueMax, arena.MaxValueLen)
	}
	if c.SamplePeriod <= 0 {
		c.SamplePeriod = 2 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 0x5707e_cafe
	}
	return c, nil
}

// StoreResult is the outcome of one store trial.
type StoreResult struct {
	Config StoreConfig

	Ops        uint64  // operations completed (a batch or scan counts once)
	Throughput float64 // Ops per second
	ServedKeys uint64  // keys served: gets + batch keys + scan pairs
	KeyTput    float64 // ServedKeys per second

	// OpCounts splits Ops by class (get/put/mget/scan/delete).
	OpCounts [NumStoreOpClasses]uint64

	// ValueErrors counts served values that failed the workload
	// checksum — the value-plane symptom of a reclamation bug; must be
	// zero.
	ValueErrors uint64

	// Stale counts value reads that lost to a concurrent overwrite's
	// reclamation and retried (store.Stats.StaleReads): the read-side
	// cost of eager value reclamation, a per-policy signature.
	Stale uint64

	MaxRetire    int   // max retire-list length across threads
	PeakResident int64 // peak outstanding nodes+values+tickets
	Unreclaimed  int64 // retired-but-unfreed at measurement end
	LeakedAfter  int64 // unreclaimed after a quiescent flush

	// Allocation accounting: Go-heap allocation rate over the measured
	// phase (runtime.MemStats deltas between release and worker
	// quiescence, divided by Ops) — see Result.AllocsPerOp. Inline
	// values and pooled nodes cost zero here, so this is the sweep-level
	// witness of the hot-path memory diet.
	AllocsPerOp     float64 // heap allocations per operation
	AllocBytesPerOp float64 // heap bytes per operation

	// OpLat holds per-class latency histograms (ns), merged across
	// workers; nil unless Config.OpLatency.
	OpLat [NumStoreOpClasses]*report.Histogram

	Store   store.Stats // store-level counters (shard-aggregated)
	Reclaim core.Stats  // reclamation counters (summed across member domains)

	// ReclaimDetail is the per-pass fan-out view (pings sent and
	// threads scanned per reclaim pass, averaged across the whole
	// group) — the quantity domain groups shrink.
	ReclaimDetail core.ReclaimStats

	// Lifecycle reports thread-slot turnover (releases, peak leases,
	// orphan donation/adoption) — the churn-mode explainability view.
	Lifecycle core.LifecycleStats

	// Chaos reports injector activity when Config.Chaos was enabled
	// (zero otherwise); storms assert these are nonzero so an idle
	// injector fails instead of silently weakening the run.
	Chaos chaos.Stats

	// Elapsed is the measured execution-phase length: Config.Duration
	// for mix runs, the actual replay time for trace runs.
	Elapsed time.Duration

	// Timeline is the live-telemetry record of the run (nil unless
	// Config.SampleEvery is set). Its extras columns are the store's
	// counters (gets, puts, overwrites, deletes, scan pairs, stale
	// reads), so value-plane behaviour lines up against reclamation
	// deltas sample by sample.
	Timeline *telemetry.Timeline
}

// storeExtras adapts the store's shard-aggregated counters to
// telemetry.ExtrasSource, so StoreResult.Timeline samples carry
// value-plane deltas next to the reclamation deltas.
type storeExtras struct{ s *store.Store }

func (e storeExtras) ExtraNames() []string {
	return []string{"store_gets", "store_puts", "store_overwrites",
		"store_deletes", "store_scan_pairs", "store_stale_reads"}
}

func (e storeExtras) ReadExtras(dst []uint64) []uint64 {
	st := e.s.Stats()
	return append(dst, st.Gets, st.Puts, st.Overwrites, st.Deletes,
		st.ScanPairs, st.StaleReads)
}

// storeWorkerCounters receives one worker's tallies.
type storeWorkerCounters struct {
	ops       uint64
	byClass   [NumStoreOpClasses]uint64
	served    uint64
	valueErrs uint64
	lats      [NumStoreOpClasses]*report.Histogram
}

// RunStore executes one store trial.
func RunStore(cfg StoreConfig) (StoreResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return StoreResult{}, err
	}
	traceMode := len(cfg.Trace) > 0
	chaosSlots := 0
	if cfg.Chaos.Enabled() {
		chaosSlots = cfg.Chaos.Slots()
	}
	g := core.NewDomainGroup(cfg.Policy, cfg.Groups, cfg.Threads+chaosSlots, &core.Options{
		ReclaimThreshold: cfg.ReclaimThreshold,
		EpochFreq:        cfg.EpochFreq,
		CMult:            cfg.CMult,
		BatchSize:        cfg.BatchNodes,
	})
	s, err := store.New(g, store.Config{
		Shards:               cfg.Shards,
		Backing:              cfg.Backing,
		ExpectedKeysPerShard: cfg.Keys/int64(cfg.Shards) + 1,
	})
	if err != nil {
		return StoreResult{}, err
	}
	if !traceMode && cfg.Mix.ScanPct > 0 && !s.Ordered() {
		return StoreResult{}, fmt.Errorf("harness: mix has ScanPct=%d but backing %q is unordered", cfg.Mix.ScanPct, cfg.Backing)
	}
	if traceMode && !s.Ordered() {
		for i := range cfg.Trace {
			if cfg.Trace[i].Op == workload.StoreScan {
				return StoreResult{}, fmt.Errorf("harness: trace has scans but backing %q is unordered", cfg.Backing)
			}
		}
	}
	// Serving handles come from the store's group facade (the error
	// path, so capacity misconfigurations fail with a message); churn
	// legs rotate them through the same group.
	threads := make([]*core.GroupHandle, cfg.Threads)
	for i := range threads {
		h, err := s.Acquire()
		if err != nil {
			return StoreResult{}, fmt.Errorf("harness: store worker %d: %w", i, err)
		}
		threads[i] = h
	}

	// The key table: rank -> string key and its store hash (for value
	// checksums). Built once; the hot loop only indexes it.
	keyTab := make([]string, cfg.Keys)
	hkTab := make([]int64, cfg.Keys)
	for i := range keyTab {
		keyTab[i] = workload.KeyString(int64(i))
		hkTab[i] = store.KeyHash(keyTab[i])
	}

	// Worker→member affinity: with more than one member domain, worker
	// id is pinned to member (id mod members) and draws keys only from
	// the ranks whose shard group that member owns. This routing is what
	// the grouped fan-out numbers measure: a member's registrant list
	// then holds only its own workers, so a reclamation pass pings
	// O(threads/groups) peers instead of every worker in the trial.
	// Scans are the exception — Store.Scan visits every shard, so one
	// scan leases the scanning worker into every member; mixes with a
	// scan share therefore report flat (ungrouped) fan-out.
	members := s.Group().Members()
	var memberRanks [][]int64
	if !traceMode && members > 1 {
		memberRanks = make([][]int64, members)
		for rank := int64(0); rank < cfg.Keys; rank++ {
			m := s.MemberIndex(s.ShardIndex(keyTab[rank]))
			memberRanks[m] = append(memberRanks[m], rank)
		}
	}
	workerRanks := func(id int) []int64 {
		if memberRanks == nil {
			return nil
		}
		if t := memberRanks[id%members]; len(t) > 1 {
			return t
		}
		return nil // degenerate split (tiny key table): this worker draws globally
	}

	// Per-worker key samplers (zipf state is per-sampler, so build them
	// up front where errors can surface). Trace replay draws no keys.
	// Affinity workers sample a dense [0, len(memberRanks)) space that
	// the hot loop maps through the rank table, preserving the skew
	// shape within the member's key subset.
	samplers := make([]*workload.Sampler, cfg.Threads)
	if !traceMode {
		for i := range samplers {
			n := cfg.Keys
			if t := workerRanks(i); t != nil {
				n = int64(len(t))
			}
			sm, err := workload.NewSampler(cfg.Seed+uint64(i)*0x9e3779b97f4a7c15+1, n, cfg.Dist, cfg.ZipfS)
			if err != nil {
				return StoreResult{}, fmt.Errorf("harness: worker %d: %w", i, err)
			}
			samplers[i] = sm
		}
	}

	workers := make([]storeWorkerCounters, cfg.Threads)
	if cfg.OpLatency {
		for i := range workers {
			for c := StoreOpClass(0); c < NumStoreOpClasses; c++ {
				workers[i].lats[c] = new(report.Histogram)
			}
		}
	}

	// Live per-worker op counters and the telemetry sampler (see
	// Config.SampleEvery): the sampler reads the group's stats mirrors
	// and the store's counters; workers publish coarse-grained
	// throughput on padded lines.
	live := make([]padded.Uint64, cfg.Threads)
	var tsampler *telemetry.Sampler
	if cfg.SampleEvery > 0 {
		tsampler = telemetry.NewSampler(g, telemetry.Config{
			Every:  cfg.SampleEvery,
			Extras: storeExtras{s},
			Ops: func() uint64 {
				var sum uint64
				for i := range live {
					sum += live[i].Load()
				}
				return sum
			},
		})
	}

	// Prefill: mix runs load half the rank population (the §5.0.2
	// shape, transplanted to the store); trace runs load every distinct
	// trace key so reads hit.
	if traceMode {
		tracePrefill(cfg, s, threads)
	} else if err := storePrefill(cfg, s, threads, keyTab, hkTab, workerRanks); err != nil {
		return StoreResult{}, err
	}

	// Launch fault injectors after the prefill so they perturb the
	// measured phase, not the load phase. In burst mode the injectors
	// instead launch from a timer goroutine ChaosStart into the phase
	// (see below).
	burst := cfg.Chaos.Enabled() && (cfg.ChaosStart > 0 || cfg.ChaosStop > 0)
	var chaosRun *chaos.Runner
	if cfg.Chaos.Enabled() && !burst {
		chaosRun, err = chaos.Start(cfg.Chaos, s, keyTab)
		if err != nil {
			return StoreResult{}, err
		}
	}

	var (
		stop      atomic.Bool
		release   = make(chan struct{})
		flushGo   = make(chan struct{})
		loopsDone sync.WaitGroup
		finished  sync.WaitGroup
		cursor    atomic.Int64 // shared trace cursor
		start     time.Time    // set just before release; read after <-release
	)
	var traceHK []int64 // trace[i].Key prehashed (checksum verification)
	if traceMode {
		traceHK = make([]int64, len(cfg.Trace))
		for i := range cfg.Trace {
			traceHK[i] = store.KeyHash(cfg.Trace[i].Key)
		}
	}
	// Leg chains as in Run: a churned leg returns its handle to the
	// store's group and a fresh goroutine re-leases a slot (releasing
	// donates the leg's unreclaimed retires member by member); the
	// terminal leg keeps its handle and flushes (adopting donated
	// orphans).
	var runLeg func(id int, h *core.GroupHandle)
	runLeg = func(id int, h *core.GroupHandle) {
		var lv *padded.Uint64
		if tsampler != nil {
			lv = &live[id]
		}
		if traceMode {
			runStoreTraceWorker(cfg, s, h, start, traceHK, &cursor, &workers[id], lv)
		} else {
			runStoreWorker(cfg, s, h, samplers[id], id, keyTab, hkTab, workerRanks(id), &stop, &workers[id], lv)
		}
		if cfg.Churn.Enabled() && !stop.Load() {
			s.Release(h)
			nh, err := s.Acquire()
			if err != nil {
				panic(fmt.Sprintf("harness: store churn re-lease: %v", err))
			}
			go runLeg(id, nh)
			return
		}
		loopsDone.Done()
		<-flushGo
		// Drain, not Flush: churned predecessors may have donated
		// orphans to members this terminal leg never touched.
		h.Drain()
		finished.Done()
	}
	for i := 0; i < cfg.Threads; i++ {
		loopsDone.Add(1)
		finished.Add(1)
		go func(id int) {
			<-release
			runLeg(id, threads[id])
		}(i)
	}

	var peak atomic.Int64
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for !stop.Load() {
			if v := s.Outstanding(); v > peak.Load() {
				peak.Store(v)
			}
			time.Sleep(cfg.SamplePeriod)
		}
	}()

	if tsampler != nil {
		tsampler.Start() // base snapshot excludes prefill and injector setup
	}
	// Burst-mode chaos: launch the injectors ChaosStart into the timed
	// phase and stop them at ChaosStop, delivering their stats over a
	// channel so the drain accounting below still happens after every
	// injector thread has flushed and released.
	var (
		chaosBurst chan chaos.Stats
		chaosErr   error
	)
	if burst {
		chaosBurst = make(chan chaos.Stats, 1)
		go func() {
			if cfg.ChaosStart > 0 {
				time.Sleep(cfg.ChaosStart)
			}
			run, err := chaos.Start(cfg.Chaos, s, keyTab)
			if err != nil {
				chaosErr = err
				chaosBurst <- chaos.Stats{}
				return
			}
			stopAt := cfg.ChaosStop
			if stopAt == 0 {
				stopAt = cfg.Duration
			}
			if d := stopAt - cfg.ChaosStart; d > 0 {
				time.Sleep(d)
			}
			chaosBurst <- run.Stop()
		}()
	}
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start = time.Now()
	close(release)
	if traceMode {
		// The trace drains exactly once; the trial is over when the
		// last op completes, however long that takes.
		loopsDone.Wait()
		stop.Store(true)
	} else {
		time.Sleep(cfg.Duration)
		stop.Store(true)
		loopsDone.Wait()
	}
	elapsed := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	<-samplerDone

	// Stop the injectors before the drain accounting: their threads
	// flush and release, donating any leftover retires for the final
	// worker flushes to adopt.
	var chaosStats chaos.Stats
	if chaosRun != nil {
		chaosStats = chaosRun.Stop()
	} else if chaosBurst != nil {
		chaosStats = <-chaosBurst // channel receive orders the chaosErr write
		if chaosErr != nil {
			return StoreResult{}, fmt.Errorf("harness: chaos burst: %w", chaosErr)
		}
	}

	if v := s.Outstanding(); v > peak.Load() {
		peak.Store(v)
	}
	unreclaimed := g.Unreclaimed()
	// Per-pass fan-out is a measured-phase statistic: snapshot it before
	// the terminal drains, which lease every handle into every member
	// and would re-average scanned-per-pass toward the flat number.
	reclaimDetail := g.ReclaimStats()
	close(flushGo)
	finished.Wait()

	// Stop after the drain barrier: every handle has republished its
	// stats mirror, so Timeline.Final is exact.
	var timeline *telemetry.Timeline
	if tsampler != nil {
		timeline = tsampler.Stop()
	}

	res := StoreResult{
		Config:        cfg,
		PeakResident:  peak.Load(),
		Unreclaimed:   unreclaimed,
		LeakedAfter:   g.Unreclaimed(),
		Store:         s.Stats(),
		Reclaim:       g.Stats(),
		ReclaimDetail: reclaimDetail,
		Lifecycle:     g.Lifecycle(),
		Chaos:         chaosStats,
		Elapsed:       elapsed,
		Timeline:      timeline,
	}
	for i := range workers {
		res.Ops += workers[i].ops
		res.ServedKeys += workers[i].served
		res.ValueErrors += workers[i].valueErrs
		for c := StoreOpClass(0); c < NumStoreOpClasses; c++ {
			res.OpCounts[c] += workers[i].byClass[c]
		}
	}
	if res.Ops > 0 {
		res.AllocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(res.Ops)
		res.AllocBytesPerOp = float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(res.Ops)
	}
	res.Throughput = float64(res.Ops) / elapsed.Seconds()
	res.KeyTput = float64(res.ServedKeys) / elapsed.Seconds()
	res.MaxRetire = res.Reclaim.MaxRetire
	res.Stale = res.Store.StaleReads
	for c := StoreOpClass(0); c < NumStoreOpClasses; c++ {
		per := make([]*report.Histogram, len(workers))
		for i := range workers {
			per[i] = workers[i].lats[c]
		}
		res.OpLat[c] = report.MergeAll(per...)
	}
	return res, nil
}

// scanWidth returns the hashed-key window width whose expected pair
// count (keys uniform over the hash space, half the population live) is
// about span.
func scanWidth(keys int64, span int) uint64 {
	live := uint64(keys) / 2
	if live == 0 {
		live = 1
	}
	w := (^uint64(0) / live) * uint64(span)
	if w == 0 {
		w = 1
	}
	return w
}

// drawValueSize draws one put payload size from cfg's distribution
// using r: uniform over [ValueMin, ValueMax] by default, or the
// ValueSmallPct bimodal small-vs-large mix. The uniform branch consumes
// the random stream exactly as it did before the knob existed, so
// ValueSmallPct=0 trials reproduce old draws bit for bit.
func drawValueSize(cfg StoreConfig, r *rng.State) int {
	if cfg.ValueSmallPct > 0 {
		if int(r.Intn(100)) < cfg.ValueSmallPct {
			return cfg.ValueMin
		}
		return cfg.ValueMax
	}
	return cfg.ValueMin + int(r.Intn(int64(cfg.ValueMax-cfg.ValueMin+1)))
}

// runStoreWorker is one worker's execution phase. rankTab, when
// non-nil, maps the sampler's dense rank space onto the worker's
// member-owned ranks (worker→member affinity).
func runStoreWorker(cfg StoreConfig, s *store.Store, h *core.GroupHandle, keys *workload.Sampler,
	id int, keyTab []string, hkTab []int64, rankTab []int64, stop *atomic.Bool, c *storeWorkerCounters, live *padded.Uint64) {
	// The incarnation term keeps churn legs from replaying one leg's op
	// sequence: each lease of the slot draws a distinct stream.
	r := rng.New(cfg.Seed ^ (uint64(id)*0xff51afd7ed558ccd + 7) ^ (h.Incarnation() * 0x9e3779b97f4a7c15))
	pick := func(rank int64) int64 {
		if rankTab != nil {
			return rankTab[rank]
		}
		return rank
	}
	var (
		vbuf  []byte
		gbuf  []byte
		batch store.Batch
		kb    = make([]string, cfg.BatchSize)
		ranks = make([]int64, cfg.BatchSize)
		pvals [][]byte // StoreMPut payloads (lazily sized)
		tag   = uint32(id)<<24 ^ uint32(h.Incarnation())<<12
	)
	width := scanWidth(cfg.Keys, cfg.ScanSpan)
	quota := cfg.Churn.AfterOps // 0 = no churn: run until stop
	var (
		ops       uint64
		byClass   [NumStoreOpClasses]uint64
		served    uint64
		valueErrs uint64
		lastPub   uint64 // ops already folded into the live counter
	)
	for !stop.Load() && (quota == 0 || ops < quota) {
		op := cfg.Mix.NextStore(r)
		class := classOfStore(op)
		hist := c.lats[class]
		var start time.Time
		if hist != nil {
			start = time.Now()
		}
		switch op {
		case workload.StoreGet:
			rank := pick(keys.Next())
			var ok bool
			gbuf, ok = s.Get(h, keyTab[rank], gbuf)
			if ok {
				served++
				if !workload.ValueBytesValid(hkTab[rank], gbuf) {
					valueErrs++
				}
			}
		case workload.StorePut:
			// NextInsert == Next for uniform/zipf; under latest it
			// advances the insert frontier the reads chase.
			rank := pick(keys.NextInsert())
			tag++
			size := drawValueSize(cfg, r)
			vbuf = workload.AppendValueBytes(vbuf[:0], hkTab[rank], tag, size)
			s.Put(h, keyTab[rank], vbuf)
		case workload.StoreMGet:
			for i := range kb {
				ranks[i] = pick(keys.Next())
				kb[i] = keyTab[ranks[i]]
			}
			s.GetBatch(h, kb, &batch)
			for i := range kb {
				if batch.OK[i] {
					served++
					if !workload.ValueBytesValid(hkTab[ranks[i]], batch.Vals[i]) {
						valueErrs++
					}
				}
			}
		case workload.StoreScan:
			lo := int64(r.Uint64()) // uniform over the hashed-key space
			hi := lo + int64(width)
			if hi < lo {
				hi = 1<<63 - 2 // clamp at the sentinel-free top
			}
			n := s.Scan(h, lo, hi, func(hk int64, v []byte) bool {
				if !workload.ValueBytesValid(hk, v) {
					valueErrs++
				}
				return true
			})
			served += uint64(n)
		case workload.StoreRMW:
			// Read-modify-write (YCSB F): read the key, then put a
			// fresh payload back — two protected ops, like a cache's
			// read-update cycle.
			rank := pick(keys.Next())
			var ok bool
			gbuf, ok = s.Get(h, keyTab[rank], gbuf)
			if ok {
				served++
				if !workload.ValueBytesValid(hkTab[rank], gbuf) {
					valueErrs++
				}
			}
			tag++
			size := drawValueSize(cfg, r)
			vbuf = workload.AppendValueBytes(vbuf[:0], hkTab[rank], tag, size)
			s.Put(h, keyTab[rank], vbuf)
		case workload.StoreMPut:
			// Batched upsert: one protected op per shard group and one
			// arena publish sequence per group instead of per key.
			if pvals == nil {
				pvals = make([][]byte, cfg.BatchSize)
			}
			for i := range kb {
				ranks[i] = pick(keys.NextInsert())
				kb[i] = keyTab[ranks[i]]
				tag++
				size := drawValueSize(cfg, r)
				pvals[i] = workload.AppendValueBytes(pvals[i][:0], hkTab[ranks[i]], tag, size)
			}
			s.PutBatch(h, kb, pvals, &batch)
		default: // workload.StoreDelete
			s.Delete(h, keyTab[pick(keys.Next())])
		}
		if hist != nil {
			hist.Record(time.Since(start).Nanoseconds())
		}
		byClass[class]++
		ops++
		if live != nil && ops-lastPub >= 512 {
			live.Add(ops - lastPub)
			lastPub = ops
		}
	}
	if live != nil {
		live.Add(ops - lastPub)
	}
	// Accumulate across churn legs.
	c.ops += ops
	c.served += served
	c.valueErrs += valueErrs
	for i := range byClass {
		c.byClass[i] += byClass[i]
	}
}

// runStoreTraceWorker replays trace ops pulled from the shared cursor
// until the trace is exhausted. Every derived quantity (put sizes,
// value tags, scan windows) is a pure function of the op's trace
// index, so two same-config replays execute identical work regardless
// of how ops land on workers.
func runStoreTraceWorker(cfg StoreConfig, s *store.Store, h *core.GroupHandle,
	start time.Time, traceHK []int64, cursor *atomic.Int64, c *storeWorkerCounters, live *padded.Uint64) {
	var (
		vbuf []byte
		gbuf []byte
		done uint64 // ops this worker completed (live-counter cadence)
	)
	width := scanWidth(cfg.Keys, cfg.ScanSpan)
	if live != nil {
		defer func() { live.Add(done % 512) }()
	}
	for {
		i := cursor.Add(1) - 1
		if i >= int64(len(cfg.Trace)) {
			return
		}
		op := cfg.Trace[i]
		hk := traceHK[i]
		if cfg.TracePaced {
			if wait := time.Until(start.Add(op.Offset)); wait > 0 {
				time.Sleep(wait)
			}
		}
		class := classOfStore(op.Op)
		hist := c.lats[class]
		var t0 time.Time
		if hist != nil {
			t0 = time.Now()
		}
		switch op.Op {
		case workload.StoreGet:
			var ok bool
			gbuf, ok = s.Get(h, op.Key, gbuf)
			if ok {
				c.served++
				if !workload.ValueBytesValid(hk, gbuf) {
					c.valueErrs++
				}
			}
		case workload.StorePut:
			vbuf = workload.AppendValueBytes(vbuf[:0], hk, traceTag(i), traceSize(cfg, op, i))
			s.Put(h, op.Key, vbuf)
		case workload.StoreScan:
			span := op.Size
			if span <= 0 {
				span = cfg.ScanSpan
			}
			w := width
			if op.Size > 0 {
				w = scanWidth(cfg.Keys, span)
			}
			lo := hk
			hi := lo + int64(w)
			if hi < lo {
				hi = 1<<63 - 2
			}
			n := s.Scan(h, lo, hi, func(shk int64, v []byte) bool {
				if !workload.ValueBytesValid(shk, v) {
					c.valueErrs++
				}
				return true
			})
			c.served += uint64(n)
		case workload.StoreRMW:
			var ok bool
			gbuf, ok = s.Get(h, op.Key, gbuf)
			if ok {
				c.served++
				if !workload.ValueBytesValid(hk, gbuf) {
					c.valueErrs++
				}
			}
			vbuf = workload.AppendValueBytes(vbuf[:0], hk, traceTag(i), traceSize(cfg, op, i))
			s.Put(h, op.Key, vbuf)
		default: // workload.StoreDelete
			s.Delete(h, op.Key)
		}
		if hist != nil {
			hist.Record(time.Since(t0).Nanoseconds())
		}
		c.byClass[class]++
		c.ops++
		if done++; live != nil && done%512 == 0 {
			live.Add(512)
		}
	}
}

// traceTag derives a write tag from a trace index: distinct per op,
// identical across replays.
func traceTag(i int64) uint32 { return uint32(i)*2654435761 + 1 }

// traceSize resolves a trace put's payload size: the recorded size,
// clamped to the arena's bounds, or an index-derived draw from the
// configured range when the trace does not say.
func traceSize(cfg StoreConfig, op workload.TraceOp, i int64) int {
	if op.Size > 0 {
		size := op.Size
		if size < workload.MinCompactLen {
			size = workload.MinCompactLen
		}
		if size > cfg.ValueMax {
			size = cfg.ValueMax
		}
		return size
	}
	span := int64(cfg.ValueMax - cfg.ValueMin + 1)
	return cfg.ValueMin + int((uint64(i)*0x9e3779b97f4a7c15>>33)%uint64(span))
}

// tracePrefill loads every distinct trace key with a verifiable value,
// split across threads, so replayed reads hit like they did against
// the traced system.
func tracePrefill(cfg StoreConfig, s *store.Store, handles []*core.GroupHandle) {
	keys := workload.TraceKeys(cfg.Trace)
	var wg sync.WaitGroup
	per := (len(keys) + len(handles) - 1) / len(handles)
	for i, h := range handles {
		lo := i * per
		if lo >= len(keys) {
			break
		}
		hi := lo + per
		if hi > len(keys) {
			hi = len(keys)
		}
		wg.Add(1)
		go func(h *core.GroupHandle, chunk []string, base int) {
			defer wg.Done()
			var vbuf []byte
			for j, k := range chunk {
				hk := store.KeyHash(k)
				vbuf = workload.AppendValueBytes(vbuf[:0], hk, uint32(base+j)|0x01000000, cfg.ValueMin)
				s.Put(h, k, vbuf)
			}
		}(h, keys[lo:hi], lo)
	}
	wg.Wait()
}

// storePrefill inserts ranks until the store holds about Keys/2
// entries, split across all threads on their own goroutines.
func storePrefill(cfg StoreConfig, s *store.Store, handles []*core.GroupHandle, keyTab []string, hkTab []int64, workerRanks func(int) []int64) error {
	members := s.Group().Members()
	var wg sync.WaitGroup
	for i, h := range handles {
		// Affinity handles prefill only ranks their own member owns, so
		// the load phase doesn't lease every handle into every member
		// before the measured phase starts. Each member's half-full
		// target is split among the handles pinned to it.
		tab := workerRanks(i)
		pop := cfg.Keys
		peers := int64(len(handles))
		first := i == 0
		if tab != nil {
			pop = int64(len(tab))
			peers = int64((len(handles)-1-i%members)/members + 1)
			first = i < members
		}
		target := pop / 2
		quota := target / peers
		if first {
			quota += target - quota*peers
		}
		wg.Add(1)
		go func(id int, h *core.GroupHandle, tab []int64, pop, quota int64) {
			defer wg.Done()
			r := rng.New(cfg.Seed ^ 0xfeed ^ uint64(id))
			var vbuf []byte
			done, attempts := int64(0), int64(0)
			tag := uint32(id)<<24 | 0x800000
			for done < quota {
				rank := r.Intn(pop)
				if tab != nil {
					rank = tab[rank]
				}
				size := drawValueSize(cfg, r)
				tag++
				vbuf = workload.AppendValueBytes(vbuf[:0], hkTab[rank], tag, size)
				if s.PutIfAbsent(h, keyTab[rank], vbuf) {
					done++
				}
				attempts++
				if attempts > 50*quota+1000 {
					return // saturated; good enough for a prefill
				}
			}
		}(i, h, tab, pop, quota)
	}
	wg.Wait()
	return nil
}
