// Serve mode: one trial of the wire-protocol serving front
// (internal/server) — real TCP clients speaking the memcached-text
// subset against a live popserve instance, with more connections than
// admission slots. Where a store trial measures the KV layer in-process,
// a serve trial measures the production shape end to end: protocol
// framing, burst-scoped thread leases queueing for admission, and
// cross-connection get coalescing, with client-observed latency tails
// per op class and the admission-queue wait distribution.
package harness

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pop/internal/chaos"
	"pop/internal/core"
	"pop/internal/report"
	"pop/internal/rng"
	"pop/internal/server"
	"pop/internal/store"
	"pop/internal/workload"
)

// ServeConfig describes one serve trial.
type ServeConfig struct {
	Policy   core.Policy   // reclamation scheme
	Slots    int           // admission slots (thread leases for connections)
	Conns    int           // client connections (the interesting runs have Conns ≫ Slots)
	Duration time.Duration // execution-phase length
	Keys     int64         // key population (ranks 0..Keys-1)
	Shards   int           // store shard count (power of two; default 8)
	Backing  string        // per-shard structure (default skl)
	Seed     uint64        // trial seed

	// Window is the server's get-coalescing window (default 50µs).
	// Negative disables the wait (drain-only coalescing).
	Window time.Duration
	// MaxBatch caps a coalesced batch (default 64).
	MaxBatch int

	// GetPct is the get share of the op mix (default 90); the rest are
	// sets. Gets are single-key — the coalesced path; sets lease the
	// connection's burst thread, so admission contention is real.
	GetPct int

	// OpenRate switches to open-loop arrivals: the target total ops/s
	// across all connections, each connection pacing at OpenRate/Conns
	// with latency measured from the intended send time (so admission
	// backlog shows up as tail latency, not hidden coordinated
	// omission). 0 = closed loop.
	OpenRate float64

	// Dist is the key-popularity distribution with ZipfS skew.
	Dist  workload.Dist
	ZipfS float64

	// ValueMin/ValueMax bound set payload sizes (defaults 16, 256).
	ValueMin, ValueMax int

	// Chaos runs the fault-injector bundle against the server's store
	// (not over the wire) for the trial's length: the server's domain is
	// sized with Chaos.Slots() extra thread slots and the injectors
	// lease them before any client connects.
	Chaos chaos.Config
}

func (c ServeConfig) withDefaults() (ServeConfig, error) {
	if c.Slots <= 0 {
		c.Slots = 4
	}
	if c.Conns <= 0 {
		return c, fmt.Errorf("harness: serve Conns must be positive")
	}
	if c.Duration <= 0 {
		c.Duration = 100 * time.Millisecond
	}
	if c.Keys <= 1 {
		return c, fmt.Errorf("harness: serve Keys must exceed 1")
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Backing == "" {
		c.Backing = store.BackingSkipList
	}
	if c.Window == 0 {
		c.Window = 50 * time.Microsecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.GetPct == 0 {
		c.GetPct = 90
	}
	if c.GetPct < 0 || c.GetPct > 100 {
		return c, fmt.Errorf("harness: GetPct %d out of [0,100]", c.GetPct)
	}
	if c.ValueMin <= 0 {
		c.ValueMin = 16
	}
	if c.ValueMax <= 0 {
		c.ValueMax = 256
		if c.ValueMax < c.ValueMin {
			c.ValueMax = c.ValueMin
		}
	}
	if c.ValueMax < c.ValueMin {
		return c, fmt.Errorf("harness: ValueMax %d below ValueMin %d", c.ValueMax, c.ValueMin)
	}
	if c.Seed == 0 {
		c.Seed = 0x5e7e_cafe
	}
	return c, nil
}

// ServeResult is the outcome of one serve trial.
type ServeResult struct {
	Config ServeConfig

	Ops        uint64  // client ops completed (one get or set)
	Gets, Sets uint64  // split by class
	Hits       uint64  // gets that returned a value
	Throughput float64 // Ops per second

	// ValueErrors counts served values failing the workload checksum —
	// a stale or torn value crossing the wire; must be zero.
	ValueErrors uint64

	// GetLat/SetLat are client-observed latencies (ns): closed-loop
	// from send, open-loop from the intended send time.
	GetLat, SetLat *report.Histogram

	// AdmWait is the server's admission-queue wait distribution (ns)
	// per burst that needed a thread lease.
	AdmWait *report.Histogram

	Server    server.Stats        // serving-front counters (coalescing, admissions)
	Lifecycle core.LifecycleStats // after shutdown: Leased counts leaks (must be 0)
	Chaos     chaos.Stats         // what the injectors did (zero when Chaos disabled)
}

// serveClient is one load-generating connection.
type serveClient struct {
	nc net.Conn
	r  *bufio.Reader
	w  *bufio.Writer
}

func dialServe(addr string) (*serveClient, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &serveClient{nc: nc, r: bufio.NewReaderSize(nc, 32<<10), w: bufio.NewWriterSize(nc, 32<<10)}, nil
}

func (c *serveClient) close() { c.nc.Close() }

// get issues one single-key get and returns the value (appended into
// buf) and whether it hit.
func (c *serveClient) get(key string, buf []byte) ([]byte, bool, error) {
	c.w.WriteString("get ")
	c.w.WriteString(key)
	c.w.WriteString("\r\n")
	if err := c.w.Flush(); err != nil {
		return buf, false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return buf, false, err
	}
	line = strings.TrimRight(line, "\r\n")
	if line == "END" {
		return buf[:0], false, nil
	}
	f := strings.Fields(line)
	if len(f) < 4 || f[0] != "VALUE" {
		return buf, false, fmt.Errorf("harness: unexpected get reply %q", line)
	}
	n, err := strconv.Atoi(f[3])
	if err != nil {
		return buf, false, fmt.Errorf("harness: bad VALUE length in %q", line)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return buf, false, err
	}
	// Trailing CRLF and the END line.
	if _, err := c.r.Discard(2); err != nil {
		return buf, false, err
	}
	if end, err := c.r.ReadString('\n'); err != nil {
		return buf, false, err
	} else if strings.TrimRight(end, "\r\n") != "END" {
		return buf, false, fmt.Errorf("harness: missing END, got %q", end)
	}
	return buf, true, nil
}

// set stores key=val and waits for the reply.
func (c *serveClient) set(key string, val []byte) error {
	fmt.Fprintf(c.w, "set %s 0 0 %d\r\n", key, len(val))
	c.w.Write(val)
	c.w.WriteString("\r\n")
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return err
	}
	if l := strings.TrimRight(line, "\r\n"); l != "STORED" {
		return fmt.Errorf("harness: set %s: %q", key, l)
	}
	return nil
}

// serveCounters receives one client's tallies.
type serveCounters struct {
	ops, gets, sets, hits uint64
	valueErrs             uint64
	getLat, setLat        *report.Histogram
	err                   error
}

// RunServe executes one serve trial: a live server on a loopback port,
// Conns client connections generating the get/set mix, latency measured
// at the client.
func RunServe(cfg ServeConfig) (ServeResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return ServeResult{}, err
	}
	srv, err := server.New(server.Config{
		Addr:   "127.0.0.1:0",
		Policy: cfg.Policy,
		Slots:  cfg.Slots,
		Store: store.Config{
			Shards:               cfg.Shards,
			Backing:              cfg.Backing,
			ExpectedKeysPerShard: cfg.Keys/int64(cfg.Shards) + 1,
		},
		Window:     cfg.Window,
		MaxBatch:   cfg.MaxBatch,
		ExtraSlots: cfg.Chaos.Slots(),
	})
	if err != nil {
		return ServeResult{}, err
	}
	if err := srv.Start(); err != nil {
		return ServeResult{}, err
	}
	addr := srv.Addr().String()

	// The key table: rank -> wire key and its store hash (checksums).
	keyTab := make([]string, cfg.Keys)
	hkTab := make([]int64, cfg.Keys)
	for i := range keyTab {
		keyTab[i] = workload.KeyString(int64(i))
		hkTab[i] = store.KeyHash(keyTab[i])
	}

	if err := servePrefill(cfg, addr, keyTab, hkTab); err != nil {
		srv.Close()
		return ServeResult{}, err
	}

	// The injectors lease their ExtraSlots now, before any client
	// connects, so the admission budget the clients see stays Slots.
	chaosRun, err := chaos.Start(cfg.Chaos, srv.Store(), keyTab)
	if err != nil {
		srv.Close()
		return ServeResult{}, err
	}

	clients := make([]*serveClient, cfg.Conns)
	for i := range clients {
		if clients[i], err = dialServe(addr); err != nil {
			chaosRun.Stop()
			srv.Close()
			return ServeResult{}, fmt.Errorf("harness: client %d: %w", i, err)
		}
	}
	samplers := make([]*workload.Sampler, cfg.Conns)
	for i := range samplers {
		sm, err := workload.NewSampler(cfg.Seed+uint64(i)*0x9e3779b97f4a7c15+1, cfg.Keys, cfg.Dist, cfg.ZipfS)
		if err != nil {
			chaosRun.Stop()
			srv.Close()
			return ServeResult{}, fmt.Errorf("harness: client %d: %w", i, err)
		}
		samplers[i] = sm
	}

	var (
		stop    atomic.Bool
		release = make(chan struct{})
		wg      sync.WaitGroup
	)
	counters := make([]serveCounters, cfg.Conns)
	for i := range counters {
		counters[i].getLat = new(report.Histogram)
		counters[i].setLat = new(report.Histogram)
	}
	perConnRate := cfg.OpenRate / float64(cfg.Conns)
	for i := 0; i < cfg.Conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			<-release
			runServeClient(cfg, clients[id], samplers[id], id, keyTab, hkTab, perConnRate, &stop, &counters[id])
		}(i)
	}

	close(release)
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	for _, c := range clients {
		c.close()
	}

	res := ServeResult{Config: cfg, Server: srv.Stats(), AdmWait: srv.AdmissionWait()}
	// Injectors stop (flush + release their leases) before Close, so the
	// post-shutdown lifecycle check below counts only real leaks.
	res.Chaos = chaosRun.Stop()
	if err := srv.Close(); err != nil {
		return res, err
	}
	res.Lifecycle = srv.Group().Lifecycle()
	getLats := make([]*report.Histogram, cfg.Conns)
	setLats := make([]*report.Histogram, cfg.Conns)
	for i := range counters {
		if counters[i].err != nil {
			return res, fmt.Errorf("harness: client %d: %w", i, counters[i].err)
		}
		res.Ops += counters[i].ops
		res.Gets += counters[i].gets
		res.Sets += counters[i].sets
		res.Hits += counters[i].hits
		res.ValueErrors += counters[i].valueErrs
		getLats[i] = counters[i].getLat
		setLats[i] = counters[i].setLat
	}
	res.Throughput = float64(res.Ops) / cfg.Duration.Seconds()
	res.GetLat = report.MergeAll(getLats...)
	res.SetLat = report.MergeAll(setLats...)
	if res.Lifecycle.Leased != 0 {
		return res, fmt.Errorf("harness: %d thread leases leaked after shutdown", res.Lifecycle.Leased)
	}
	return res, nil
}

// runServeClient is one connection's load loop.
func runServeClient(cfg ServeConfig, c *serveClient, keys *workload.Sampler, id int,
	keyTab []string, hkTab []int64, rate float64, stop *atomic.Bool, out *serveCounters) {
	r := rng.New(cfg.Seed ^ (uint64(id)*0xff51afd7ed558ccd + 13))
	var (
		vbuf []byte
		gbuf []byte
		tag  = uint32(id)<<24 | 0x400000
	)
	// Open loop: the intended send times are a fixed grid; latency is
	// measured from the intended time, so a stalled server accrues the
	// backlog it caused.
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(time.Second) / rate)
	}
	start := time.Now()
	n := 0
	for !stop.Load() {
		intended := time.Now()
		if interval > 0 {
			intended = start.Add(time.Duration(n) * interval)
			if d := time.Until(intended); d > 0 {
				time.Sleep(d)
			}
			if stop.Load() {
				return
			}
		}
		n++
		rank := keys.Next()
		if int(r.Intn(100)) < cfg.GetPct {
			var ok bool
			var err error
			gbuf, ok, err = c.get(keyTab[rank], gbuf)
			if err != nil {
				out.err = err
				return
			}
			out.getLat.Record(time.Since(intended).Nanoseconds())
			out.gets++
			if ok {
				out.hits++
				if !workload.ValueBytesValid(hkTab[rank], gbuf) {
					out.valueErrs++
				}
			}
		} else {
			tag++
			size := cfg.ValueMin + int(r.Intn(int64(cfg.ValueMax-cfg.ValueMin+1)))
			vbuf = workload.AppendValueBytes(vbuf[:0], hkTab[rank], tag, size)
			if err := c.set(keyTab[rank], vbuf); err != nil {
				out.err = err
				return
			}
			out.setLat.Record(time.Since(intended).Nanoseconds())
			out.sets++
		}
		out.ops++
	}
}

// servePrefill loads half the key population through one pipelined
// connection (sets with noreply, a trailing version to sync).
func servePrefill(cfg ServeConfig, addr string, keyTab []string, hkTab []int64) error {
	c, err := dialServe(addr)
	if err != nil {
		return fmt.Errorf("harness: prefill dial: %w", err)
	}
	defer c.close()
	var vbuf []byte
	r := rng.New(cfg.Seed ^ 0xfeed)
	tag := uint32(0x800000)
	for rank := int64(0); rank < cfg.Keys/2; rank++ {
		tag++
		size := cfg.ValueMin + int(r.Intn(int64(cfg.ValueMax-cfg.ValueMin+1)))
		vbuf = workload.AppendValueBytes(vbuf[:0], hkTab[rank], tag, size)
		fmt.Fprintf(c.w, "set %s 0 0 %d noreply\r\n", keyTab[rank], len(vbuf))
		c.w.Write(vbuf)
		c.w.WriteString("\r\n")
	}
	c.w.WriteString("version\r\n")
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("harness: prefill flush: %w", err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return fmt.Errorf("harness: prefill sync: %w", err)
	}
	if !strings.HasPrefix(line, "VERSION") {
		return fmt.Errorf("harness: prefill sync reply %q", line)
	}
	return nil
}
