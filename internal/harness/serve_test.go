package harness

import (
	"testing"
	"time"

	"pop/internal/core"
	"pop/internal/workload"
)

// TestRunServeClosedLoop smoke-runs the wire-protocol serve trial with
// more connections than admission slots under a POP policy and the
// plain baseline.
func TestRunServeClosedLoop(t *testing.T) {
	for _, p := range []core.Policy{core.EpochPOP, core.EBR} {
		t.Run(p.String(), func(t *testing.T) {
			res, err := RunServe(ServeConfig{
				Policy:   p,
				Slots:    2,
				Conns:    8,
				Duration: 80 * time.Millisecond,
				Keys:     256,
				Shards:   2,
				Seed:     7,
			})
			if err != nil {
				t.Fatalf("RunServe: %v", err)
			}
			if res.Ops == 0 || res.Gets == 0 || res.Sets == 0 {
				t.Fatalf("no load flowed: %+v", res)
			}
			if res.ValueErrors != 0 {
				t.Fatalf("ValueErrors = %d", res.ValueErrors)
			}
			if res.Hits == 0 {
				t.Fatalf("no get hits against a prefilled store")
			}
			if res.Server.ExecutorGets == 0 {
				t.Fatalf("gets bypassed the coalescing executors")
			}
			if res.GetLat == nil || res.GetLat.Count() == 0 {
				t.Fatalf("no get latencies recorded")
			}
			if res.Lifecycle.Leased != 0 {
				t.Fatalf("leaked leases: %d", res.Lifecycle.Leased)
			}
		})
	}
}

// TestRunServeOpenLoop drives the paced arrival mode with zipf keys.
func TestRunServeOpenLoop(t *testing.T) {
	res, err := RunServe(ServeConfig{
		Policy:   core.HazardPtrPOP,
		Slots:    2,
		Conns:    4,
		Duration: 80 * time.Millisecond,
		Keys:     256,
		Shards:   2,
		Dist:     workload.Zipf,
		OpenRate: 8000,
		Seed:     11,
	})
	if err != nil {
		t.Fatalf("RunServe: %v", err)
	}
	if res.Ops == 0 {
		t.Fatal("no ops in open-loop mode")
	}
	// Paced arrivals must not exceed the requested rate by much.
	if res.Throughput > 2*8000 {
		t.Fatalf("open-loop throughput %.0f far above the %d op/s target", res.Throughput, 8000)
	}
	if res.ValueErrors != 0 {
		t.Fatalf("ValueErrors = %d", res.ValueErrors)
	}
}
