package harness_test

import (
	"testing"
	"time"

	"pop/internal/core"
	"pop/internal/harness"
	"pop/internal/workload"
)

func TestRunAllPoliciesAllStructures(t *testing.T) {
	for _, dsName := range harness.DSNames() {
		for _, p := range core.Policies() {
			res, err := harness.Run(harness.Config{
				DS:               dsName,
				Policy:           p,
				Threads:          3,
				Duration:         30 * time.Millisecond,
				KeyRange:         512,
				Mix:              workload.UpdateHeavy,
				ReclaimThreshold: 64,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", dsName, p, err)
			}
			if res.Ops == 0 {
				t.Fatalf("%s/%v: zero ops", dsName, p)
			}
			if p != core.NR && res.LeakedAfter != 0 {
				t.Fatalf("%s/%v: %d nodes leaked after flush", dsName, p, res.LeakedAfter)
			}
			if p == core.NR && res.Reclaim.Frees != 0 {
				t.Fatalf("%s/%v: NR freed nodes", dsName, p)
			}
		}
	}
}

func TestPrefillHitsTarget(t *testing.T) {
	res, err := harness.Run(harness.Config{
		DS:       harness.DSHashTable,
		Policy:   core.EBR,
		Threads:  2,
		Duration: 10 * time.Millisecond,
		KeyRange: 10000,
		Mix:      workload.ReadHeavy,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Prefill targets KeyRange/2 keys; peak outstanding must be at least
	// that (minus reclaim noise, plus churn).
	if res.PeakResident < 4000 {
		t.Fatalf("peak resident %d, want >= 4000 (prefill missed)", res.PeakResident)
	}
}

func TestLongReadsRolesCount(t *testing.T) {
	res, err := harness.Run(harness.Config{
		DS:               harness.DSHarrisMichaelList,
		Policy:           core.HazardPtrPOP,
		Threads:          4,
		Duration:         40 * time.Millisecond,
		KeyRange:         2000,
		LongReads:        true,
		ReclaimThreshold: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadOps == 0 {
		t.Fatal("long-reads run recorded no reads")
	}
	if res.ReadOps == res.Ops {
		t.Fatal("long-reads run recorded no updates")
	}
}

func TestStallInjection(t *testing.T) {
	// With a stalling worker, EBR must accumulate garbage (not robust),
	// while EpochPOP must keep reclaiming (robust). We compare end-of-run
	// unreclaimed counts.
	run := func(p core.Policy) int64 {
		res, err := harness.Run(harness.Config{
			DS:               harness.DSHarrisMichaelList,
			Policy:           p,
			Threads:          3,
			Duration:         120 * time.Millisecond,
			KeyRange:         256,
			ReclaimThreshold: 32,
			StallEvery:       time.Millisecond,
			StallLength:      50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Unreclaimed
	}
	ebr := run(core.EBR)
	epop := run(core.EpochPOP)
	if ebr == 0 {
		t.Skip("stall did not pin EBR reclamation this run (scheduling)")
	}
	if epop >= ebr {
		t.Fatalf("EpochPOP unreclaimed (%d) not better than EBR (%d) under stall", epop, ebr)
	}
}

// TestRangeSweepBothScanners is the acceptance probe for the
// cross-structure range-query dimension: a scan-bearing mix on each
// RangeScanner (skiplist and (a,b)-tree) must complete under every
// policy, record range operations, scanned keys and per-scan latencies,
// and leak nothing on robust policies.
func TestRangeSweepBothScanners(t *testing.T) {
	for _, dsName := range []string{harness.DSSkipList, harness.DSABTree} {
		for _, p := range core.Policies() {
			res, err := harness.Run(harness.Config{
				DS:               dsName,
				Policy:           p,
				Threads:          3,
				Duration:         40 * time.Millisecond,
				KeyRange:         2048,
				Mix:              workload.Mix{ContainsPct: 80, InsertPct: 5, DeletePct: 5, RangePct: 10},
				RangeSpan:        64,
				ReclaimThreshold: 128,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", dsName, p, err)
			}
			if res.RangeOps == 0 || res.RangeTput == 0 {
				t.Fatalf("%s/%v: no range queries recorded (ops=%d)", dsName, p, res.RangeOps)
			}
			if res.RangeKeys == 0 {
				t.Fatalf("%s/%v: scans returned no keys over a prefilled structure", dsName, p)
			}
			if res.Ops <= res.RangeOps {
				t.Fatalf("%s/%v: range ops %d not a subset of total %d", dsName, p, res.RangeOps, res.Ops)
			}
			if res.ScanLat == nil {
				t.Fatalf("%s/%v: no scan-latency histogram for a range-bearing mix", dsName, p)
			}
			if res.ScanLat.Count() != res.RangeOps {
				t.Fatalf("%s/%v: histogram holds %d scans, RangeOps = %d", dsName, p, res.ScanLat.Count(), res.RangeOps)
			}
			p50, p99 := res.ScanLat.Quantile(0.50), res.ScanLat.Quantile(0.99)
			if p50 <= 0 || p99 < p50 || float64(res.ScanLat.Max()) < p99 {
				t.Fatalf("%s/%v: implausible latency quantiles p50=%v p99=%v max=%d", dsName, p, p50, p99, res.ScanLat.Max())
			}
			if p != core.NR && res.LeakedAfter != 0 {
				t.Fatalf("%s/%v: %d nodes leaked after flush", dsName, p, res.LeakedAfter)
			}
		}
	}
}

// TestScanLatAbsentWithoutRanges: mixes without scans must not pay for
// (or report) a histogram.
func TestScanLatAbsentWithoutRanges(t *testing.T) {
	res, err := harness.Run(harness.Config{
		DS:       harness.DSSkipList,
		Policy:   core.EBR,
		Threads:  1,
		Duration: 10 * time.Millisecond,
		KeyRange: 256,
		Mix:      workload.UpdateHeavy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScanLat != nil {
		t.Fatal("scan-latency histogram present for a mix without range queries")
	}
}

// TestRangeMixRequiresScanner: structures without range support must be
// rejected up front, not crash mid-run — and RangeCapable must agree
// with what Run accepts.
func TestRangeMixRequiresScanner(t *testing.T) {
	for _, dsName := range []string{harness.DSHarrisMichaelList, harness.DSLazyList, harness.DSHashTable, harness.DSExternalBST} {
		if harness.RangeCapable(dsName) {
			t.Fatalf("RangeCapable(%s) = true", dsName)
		}
		_, err := harness.Run(harness.Config{
			DS:       dsName,
			Policy:   core.EBR,
			Threads:  1,
			KeyRange: 128,
			Mix:      workload.ScanHeavy,
		})
		if err == nil {
			t.Fatalf("%s accepted a range-bearing mix", dsName)
		}
	}
	for _, dsName := range []string{harness.DSSkipList, harness.DSABTree} {
		if !harness.RangeCapable(dsName) {
			t.Fatalf("RangeCapable(%s) = false", dsName)
		}
	}
	if harness.RangeCapable("nope") {
		t.Fatal(`RangeCapable("nope") = true`)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := harness.Run(harness.Config{DS: "hml", Threads: 0, KeyRange: 10}); err == nil {
		t.Fatal("accepted zero threads")
	}
	if _, err := harness.Run(harness.Config{DS: "hml", Threads: 1, KeyRange: 1}); err == nil {
		t.Fatal("accepted key range 1")
	}
	if _, err := harness.Run(harness.Config{DS: "nope", Threads: 1, KeyRange: 10}); err == nil {
		t.Fatal("accepted unknown structure")
	}
	if _, err := harness.Run(harness.Config{DS: "hml", Threads: 1, KeyRange: 10,
		Mix: workload.Mix{ContainsPct: 50, InsertPct: 10, DeletePct: 10}}); err == nil {
		t.Fatal("accepted invalid mix")
	}
	if _, err := harness.Run(harness.Config{DS: "skl", Threads: 1, KeyRange: 10,
		Mix: workload.Mix{ContainsPct: 50, InsertPct: 25, DeletePct: 25, RangePct: 25}}); err == nil {
		t.Fatal("accepted mix summing past 100")
	}
}
