package harness_test

import (
	"testing"
	"time"

	"pop/internal/core"
	"pop/internal/harness"
	"pop/internal/workload"
)

func TestRunAllPoliciesAllStructures(t *testing.T) {
	for _, dsName := range harness.DSNames() {
		for _, p := range core.Policies() {
			res, err := harness.Run(harness.Config{
				DS:               dsName,
				Policy:           p,
				Threads:          3,
				Duration:         30 * time.Millisecond,
				KeyRange:         512,
				Mix:              workload.UpdateHeavy,
				ReclaimThreshold: 64,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", dsName, p, err)
			}
			if res.Ops == 0 {
				t.Fatalf("%s/%v: zero ops", dsName, p)
			}
			if p != core.NR && res.LeakedAfter != 0 {
				t.Fatalf("%s/%v: %d nodes leaked after flush", dsName, p, res.LeakedAfter)
			}
			if p == core.NR && res.Reclaim.Frees != 0 {
				t.Fatalf("%s/%v: NR freed nodes", dsName, p)
			}
		}
	}
}

func TestPrefillHitsTarget(t *testing.T) {
	res, err := harness.Run(harness.Config{
		DS:       harness.DSHashTable,
		Policy:   core.EBR,
		Threads:  2,
		Duration: 10 * time.Millisecond,
		KeyRange: 10000,
		Mix:      workload.ReadHeavy,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Prefill targets KeyRange/2 keys; peak outstanding must be at least
	// that (minus reclaim noise, plus churn).
	if res.PeakResident < 4000 {
		t.Fatalf("peak resident %d, want >= 4000 (prefill missed)", res.PeakResident)
	}
}

func TestLongReadsRolesCount(t *testing.T) {
	res, err := harness.Run(harness.Config{
		DS:               harness.DSHarrisMichaelList,
		Policy:           core.HazardPtrPOP,
		Threads:          4,
		Duration:         40 * time.Millisecond,
		KeyRange:         2000,
		LongReads:        true,
		ReclaimThreshold: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadOps == 0 {
		t.Fatal("long-reads run recorded no reads")
	}
	if res.ReadOps == res.Ops {
		t.Fatal("long-reads run recorded no updates")
	}
}

func TestStallInjection(t *testing.T) {
	// With a stalling worker, EBR must accumulate garbage (not robust),
	// while EpochPOP must keep reclaiming (robust). We compare end-of-run
	// unreclaimed counts.
	run := func(p core.Policy) int64 {
		res, err := harness.Run(harness.Config{
			DS:               harness.DSHarrisMichaelList,
			Policy:           p,
			Threads:          3,
			Duration:         120 * time.Millisecond,
			KeyRange:         256,
			ReclaimThreshold: 32,
			StallEvery:       time.Millisecond,
			StallLength:      50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Unreclaimed
	}
	ebr := run(core.EBR)
	epop := run(core.EpochPOP)
	if ebr == 0 {
		t.Skip("stall did not pin EBR reclamation this run (scheduling)")
	}
	if epop >= ebr {
		t.Fatalf("EpochPOP unreclaimed (%d) not better than EBR (%d) under stall", epop, ebr)
	}
}

// TestRangeSweepBothScanners is the acceptance probe for the
// cross-structure range-query dimension: a scan-bearing mix on each
// RangeScanner (skiplist and (a,b)-tree) must complete under every
// policy, record range operations, scanned keys and per-scan latencies,
// and leak nothing on robust policies.
func TestRangeSweepBothScanners(t *testing.T) {
	for _, dsName := range []string{harness.DSSkipList, harness.DSABTree} {
		for _, p := range core.Policies() {
			res, err := harness.Run(harness.Config{
				DS:               dsName,
				Policy:           p,
				Threads:          3,
				Duration:         40 * time.Millisecond,
				KeyRange:         2048,
				Mix:              workload.Mix{ContainsPct: 80, InsertPct: 5, DeletePct: 5, RangePct: 10},
				RangeSpan:        64,
				ReclaimThreshold: 128,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", dsName, p, err)
			}
			if res.RangeOps == 0 || res.RangeTput == 0 {
				t.Fatalf("%s/%v: no range queries recorded (ops=%d)", dsName, p, res.RangeOps)
			}
			if res.RangeKeys == 0 {
				t.Fatalf("%s/%v: scans returned no keys over a prefilled structure", dsName, p)
			}
			if res.Ops <= res.RangeOps {
				t.Fatalf("%s/%v: range ops %d not a subset of total %d", dsName, p, res.RangeOps, res.Ops)
			}
			if res.ScanLat == nil {
				t.Fatalf("%s/%v: no scan-latency histogram for a range-bearing mix", dsName, p)
			}
			if res.ScanLat.Count() != res.RangeOps {
				t.Fatalf("%s/%v: histogram holds %d scans, RangeOps = %d", dsName, p, res.ScanLat.Count(), res.RangeOps)
			}
			p50, p99 := res.ScanLat.Quantile(0.50), res.ScanLat.Quantile(0.99)
			if p50 <= 0 || p99 < p50 || float64(res.ScanLat.Max()) < p99 {
				t.Fatalf("%s/%v: implausible latency quantiles p50=%v p99=%v max=%d", dsName, p, p50, p99, res.ScanLat.Max())
			}
			if p != core.NR && res.LeakedAfter != 0 {
				t.Fatalf("%s/%v: %d nodes leaked after flush", dsName, p, res.LeakedAfter)
			}
		}
	}
}

// TestScanLatAbsentWithoutRanges: mixes without scans must not pay for
// (or report) a histogram.
func TestScanLatAbsentWithoutRanges(t *testing.T) {
	res, err := harness.Run(harness.Config{
		DS:       harness.DSSkipList,
		Policy:   core.EBR,
		Threads:  1,
		Duration: 10 * time.Millisecond,
		KeyRange: 256,
		Mix:      workload.UpdateHeavy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScanLat != nil {
		t.Fatal("scan-latency histogram present for a mix without range queries")
	}
}

// TestRangeMixRequiresScanner: structures without range support must be
// rejected up front, not crash mid-run — and RangeCapable must agree
// with what Run accepts.
func TestRangeMixRequiresScanner(t *testing.T) {
	for _, dsName := range []string{harness.DSHarrisMichaelList, harness.DSLazyList, harness.DSHashTable, harness.DSExternalBST} {
		if harness.RangeCapable(dsName) {
			t.Fatalf("RangeCapable(%s) = true", dsName)
		}
		_, err := harness.Run(harness.Config{
			DS:       dsName,
			Policy:   core.EBR,
			Threads:  1,
			KeyRange: 128,
			Mix:      workload.ScanHeavy,
		})
		if err == nil {
			t.Fatalf("%s accepted a range-bearing mix", dsName)
		}
	}
	for _, dsName := range []string{harness.DSSkipList, harness.DSABTree} {
		if !harness.RangeCapable(dsName) {
			t.Fatalf("RangeCapable(%s) = false", dsName)
		}
	}
	if harness.RangeCapable("nope") {
		t.Fatal(`RangeCapable("nope") = true`)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := harness.Run(harness.Config{DS: "hml", Threads: 0, KeyRange: 10}); err == nil {
		t.Fatal("accepted zero threads")
	}
	if _, err := harness.Run(harness.Config{DS: "hml", Threads: 1, KeyRange: 1}); err == nil {
		t.Fatal("accepted key range 1")
	}
	if _, err := harness.Run(harness.Config{DS: "nope", Threads: 1, KeyRange: 10}); err == nil {
		t.Fatal("accepted unknown structure")
	}
	if _, err := harness.Run(harness.Config{DS: "hml", Threads: 1, KeyRange: 10,
		Mix: workload.Mix{ContainsPct: 50, InsertPct: 10, DeletePct: 10}}); err == nil {
		t.Fatal("accepted invalid mix")
	}
	if _, err := harness.Run(harness.Config{DS: "skl", Threads: 1, KeyRange: 10,
		Mix: workload.Mix{ContainsPct: 50, InsertPct: 25, DeletePct: 25, RangePct: 25}}); err == nil {
		t.Fatal("accepted mix summing past 100")
	}
}

// TestKVMixAllStructures is the acceptance probe for the map contract:
// the KV-serving mix (get/put/overwrite/delete) must run on every
// structure, split its counters per op class, verify every served
// value's checksum (zero failures), and populate per-op-class latency
// histograms whose counts match the class counters.
func TestKVMixAllStructures(t *testing.T) {
	for _, dsName := range harness.DSNames() {
		for _, p := range []core.Policy{core.EBR, core.HP, core.NBR, core.EpochPOP} {
			res, err := harness.Run(harness.Config{
				DS:               dsName,
				Policy:           p,
				Threads:          3,
				Duration:         40 * time.Millisecond,
				KeyRange:         1024,
				Mix:              workload.KVStore,
				OpLatency:        true,
				ReclaimThreshold: 64,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", dsName, p, err)
			}
			if res.ValueErrors != 0 {
				t.Fatalf("%s/%v: %d value checksum failures (stale values served)", dsName, p, res.ValueErrors)
			}
			var sum uint64
			for c := harness.OpClass(0); c < harness.NumOpClasses; c++ {
				sum += res.OpCounts[c]
			}
			if sum != res.Ops {
				t.Fatalf("%s/%v: per-class counts sum to %d, Ops = %d", dsName, p, sum, res.Ops)
			}
			if res.OpCounts[harness.OpScan] != 0 {
				t.Fatalf("%s/%v: kv mix recorded scans", dsName, p)
			}
			for _, c := range []harness.OpClass{harness.OpGet, harness.OpPut, harness.OpOverwrite, harness.OpDelete} {
				if res.OpCounts[c] == 0 {
					t.Fatalf("%s/%v: no %v operations in a kv run", dsName, p, c)
				}
				h := res.OpLat[c]
				if h == nil {
					t.Fatalf("%s/%v: no %v latency histogram with OpLatency set", dsName, p, c)
				}
				if h.Count() != res.OpCounts[c] {
					t.Fatalf("%s/%v: %v histogram holds %d ops, counter says %d", dsName, p, c, h.Count(), res.OpCounts[c])
				}
				if p50, p99 := h.Quantile(0.50), h.Quantile(0.99); p50 <= 0 || p99 < p50 {
					t.Fatalf("%s/%v: implausible %v quantiles p50=%v p99=%v", dsName, p, c, p50, p99)
				}
			}
			if p != core.NR && res.LeakedAfter != 0 {
				t.Fatalf("%s/%v: %d nodes leaked after flush", dsName, p, res.LeakedAfter)
			}
		}
	}
}

// TestOverwritesRetireOnReplaceNodeStructures pins the overwrite
// strategies' reclamation signature: an overwrite-only run on a
// replace-node structure must retire roughly one node per overwrite,
// while the in-place structures retire none.
func TestOverwritesRetireOnReplaceNodeStructures(t *testing.T) {
	run := func(dsName string) harness.Result {
		res, err := harness.Run(harness.Config{
			DS:               dsName,
			Policy:           core.EBR,
			Threads:          2,
			Duration:         30 * time.Millisecond,
			KeyRange:         64, // saturated after prefill: almost every Put overwrites
			Mix:              workload.Mix{ContainsPct: 0, OverwritePct: 100},
			ReclaimThreshold: 64,
		})
		if err != nil {
			t.Fatalf("%s: %v", dsName, err)
		}
		return res
	}
	for _, dsName := range []string{harness.DSHarrisMichaelList, harness.DSSkipList, harness.DSABTree, harness.DSHashTable} {
		res := run(dsName)
		if ow := res.OpCounts[harness.OpOverwrite]; res.Reclaim.Retires < uint64(ow/2) {
			t.Fatalf("%s: %d retires for %d overwrites — replace-node strategy not retiring", dsName, res.Reclaim.Retires, ow)
		}
	}
	for _, dsName := range []string{harness.DSLazyList, harness.DSExternalBST} {
		res := run(dsName)
		if ow := res.OpCounts[harness.OpOverwrite]; res.Reclaim.Retires > uint64(ow/10) {
			t.Fatalf("%s: %d retires for %d overwrites — in-place strategy should retire ~none", dsName, res.Reclaim.Retires, ow)
		}
	}
}

// TestOpLatAbsentByDefault: without OpLatency the per-op histograms
// must stay nil (figure reproductions must not pay the clock reads).
func TestOpLatAbsentByDefault(t *testing.T) {
	res, err := harness.Run(harness.Config{
		DS:       harness.DSHarrisMichaelList,
		Policy:   core.EBR,
		Threads:  1,
		Duration: 10 * time.Millisecond,
		KeyRange: 256,
		Mix:      workload.KVStore,
	})
	if err != nil {
		t.Fatal(err)
	}
	for c := harness.OpClass(0); c < harness.NumOpClasses; c++ {
		if res.OpLat[c] != nil {
			t.Fatalf("%v histogram present without OpLatency", c)
		}
	}
}
