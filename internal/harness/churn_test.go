package harness

import (
	"testing"
	"time"

	"pop/internal/core"
	"pop/internal/workload"
)

// TestChurnTrial runs the elastic mode end to end: workers must rotate
// their handles (releases observed), the domain must stay within its
// slot budget (reuse, not growth), no value may fail its checksum, and
// the post-flush state must be leak-free.
func TestChurnTrial(t *testing.T) {
	for _, p := range []core.Policy{core.EpochPOP, core.NBR, core.EBR, core.Crystalline} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			res, err := Run(Config{
				DS:               DSSkipList,
				Policy:           p,
				Threads:          4,
				Duration:         150 * time.Millisecond,
				KeyRange:         4096,
				Mix:              workload.KVStore,
				Churn:            workload.Churn{AfterOps: 500},
				ReclaimThreshold: 256,
			})
			if err != nil {
				t.Fatal(err)
			}
			lc := res.Lifecycle
			if lc.Releases == 0 {
				t.Fatalf("churn trial produced no releases: %+v", lc)
			}
			if lc.Slots > 4 {
				t.Fatalf("slots grew to %d despite reuse (threads=4)", lc.Slots)
			}
			if lc.Peak > 4 {
				t.Fatalf("peak leases %d exceeded worker count", lc.Peak)
			}
			if lc.OrphanNodes != 0 {
				t.Fatalf("orphans left after flush: %+v", lc)
			}
			if res.ValueErrors != 0 {
				t.Fatalf("%d value checksum failures under churn", res.ValueErrors)
			}
			if res.LeakedAfter != 0 {
				t.Fatalf("leaked %d nodes after churn flush", res.LeakedAfter)
			}
			if res.Ops == 0 {
				t.Fatal("no operations completed")
			}
		})
	}
}

// TestStoreChurnTrial is the store-mode analogue: serving workers
// resize through the store's handle pool mid-measurement.
func TestStoreChurnTrial(t *testing.T) {
	res, err := RunStore(StoreConfig{
		Policy:           core.EpochPOP,
		Threads:          4,
		Duration:         150 * time.Millisecond,
		Keys:             4096,
		Shards:           4,
		Churn:            workload.Churn{AfterOps: 300},
		ReclaimThreshold: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lifecycle.Releases == 0 {
		t.Fatalf("store churn trial produced no releases: %+v", res.Lifecycle)
	}
	if res.ValueErrors != 0 {
		t.Fatalf("%d value checksum failures under store churn", res.ValueErrors)
	}
	if res.LeakedAfter != 0 {
		t.Fatalf("leaked %d after store churn flush", res.LeakedAfter)
	}
}

// TestRegisterErrorPath: a thread-capacity misconfiguration must come
// back as an error from the error-returning lease path, not a panic.
func TestRegisterErrorPath(t *testing.T) {
	d := core.NewDomain(core.EBR, 1, nil)
	if _, err := d.TryRegisterThread(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.TryRegisterThread(); err == nil {
		t.Fatal("capacity exhaustion did not error")
	}
}
