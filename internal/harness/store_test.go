package harness_test

import (
	"testing"
	"time"

	"pop/internal/core"
	"pop/internal/harness"
	"pop/internal/workload"
)

// TestRunStoreAllPolicies smoke-runs the store trial under every policy
// with the full mix (batches, scans, deletes) and checks the core
// accounting: ops flow, every served value passes its checksum, and
// per-class counters sum to the total.
func TestRunStoreAllPolicies(t *testing.T) {
	for _, p := range core.Policies() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			res, err := harness.RunStore(harness.StoreConfig{
				Policy:    p,
				Threads:   2,
				Duration:  30 * time.Millisecond,
				Keys:      2048,
				Shards:    4,
				OpLatency: true,
				Seed:      7,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 {
				t.Fatal("no operations completed")
			}
			if res.ValueErrors != 0 {
				t.Fatalf("%d value checksum failures", res.ValueErrors)
			}
			var sum uint64
			for c := harness.StoreOpClass(0); c < harness.NumStoreOpClasses; c++ {
				sum += res.OpCounts[c]
			}
			if sum != res.Ops {
				t.Fatalf("class counts sum to %d, Ops = %d", sum, res.Ops)
			}
			if res.OpCounts[harness.SOpMGet] > 0 && res.Store.Batches == 0 {
				t.Fatal("mget ops ran but the store counted no batches")
			}
			if p != core.NR && res.LeakedAfter != 0 {
				t.Fatalf("%d leaked after flush", res.LeakedAfter)
			}
			if p == core.NR && res.Store.Overwrites > 0 && res.LeakedAfter == 0 {
				t.Fatal("NR reclaimed retired values")
			}
		})
	}
}

// TestRunStoreZipf checks the Zipfian path end to end: the run
// completes, serves verified values, and (with a skewed population) a
// hot key set absorbs repeated overwrites without value errors.
func TestRunStoreZipf(t *testing.T) {
	res, err := harness.RunStore(harness.StoreConfig{
		Policy:   core.EpochPOP,
		Threads:  2,
		Duration: 30 * time.Millisecond,
		Keys:     4096,
		Dist:     workload.Zipf,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.ValueErrors != 0 {
		t.Fatalf("ops=%d errors=%d", res.Ops, res.ValueErrors)
	}
}

// TestRunStoreValidation checks config error paths.
func TestRunStoreValidation(t *testing.T) {
	if _, err := harness.RunStore(harness.StoreConfig{Threads: 0, Keys: 100}); err == nil {
		t.Fatal("zero threads accepted")
	}
	if _, err := harness.RunStore(harness.StoreConfig{Threads: 1, Keys: 1}); err == nil {
		t.Fatal("tiny key population accepted")
	}
	if _, err := harness.RunStore(harness.StoreConfig{
		Threads: 1, Keys: 128, Backing: "hmht",
		Mix: workload.StoreMix{GetPct: 50, ScanPct: 50},
	}); err == nil {
		t.Fatal("scan mix on unordered backing accepted")
	}
	if _, err := harness.RunStore(harness.StoreConfig{
		Threads: 1, Keys: 128,
		Mix: workload.StoreMix{GetPct: 50},
	}); err == nil {
		t.Fatal("mix not summing to 100 accepted")
	}
}

// TestRunStoreUnorderedBacking runs a scan-free mix on the hash-table
// backing (batching but no ordered scans).
func TestRunStoreUnorderedBacking(t *testing.T) {
	res, err := harness.RunStore(harness.StoreConfig{
		Policy:   core.EBR,
		Threads:  2,
		Duration: 20 * time.Millisecond,
		Keys:     1024,
		Backing:  "hmht",
		Mix:      workload.StoreMix{GetPct: 60, PutPct: 20, MGetPct: 15, DeletePct: 5},
		Seed:     13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.ValueErrors != 0 {
		t.Fatalf("ops=%d errors=%d", res.Ops, res.ValueErrors)
	}
}
