package harness_test

import (
	"testing"
	"time"

	"pop/internal/chaos"
	"pop/internal/core"
	"pop/internal/harness"
	"pop/internal/workload"
)

// TestRunStoreAllPolicies smoke-runs the store trial under every policy
// with the full mix (batches, scans, deletes) and checks the core
// accounting: ops flow, every served value passes its checksum, and
// per-class counters sum to the total.
func TestRunStoreAllPolicies(t *testing.T) {
	for _, p := range core.Policies() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			res, err := harness.RunStore(harness.StoreConfig{
				Policy:    p,
				Threads:   2,
				Duration:  30 * time.Millisecond,
				Keys:      2048,
				Shards:    4,
				OpLatency: true,
				Seed:      7,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 {
				t.Fatal("no operations completed")
			}
			if res.ValueErrors != 0 {
				t.Fatalf("%d value checksum failures", res.ValueErrors)
			}
			var sum uint64
			for c := harness.StoreOpClass(0); c < harness.NumStoreOpClasses; c++ {
				sum += res.OpCounts[c]
			}
			if sum != res.Ops {
				t.Fatalf("class counts sum to %d, Ops = %d", sum, res.Ops)
			}
			if res.OpCounts[harness.SOpMGet] > 0 && res.Store.Batches == 0 {
				t.Fatal("mget ops ran but the store counted no batches")
			}
			if p != core.NR && res.LeakedAfter != 0 {
				t.Fatalf("%d leaked after flush", res.LeakedAfter)
			}
			if p == core.NR && res.Store.Overwrites > 0 && res.LeakedAfter == 0 {
				t.Fatal("NR reclaimed retired values")
			}
		})
	}
}

// TestRunStoreZipf checks the Zipfian path end to end: the run
// completes, serves verified values, and (with a skewed population) a
// hot key set absorbs repeated overwrites without value errors.
func TestRunStoreZipf(t *testing.T) {
	res, err := harness.RunStore(harness.StoreConfig{
		Policy:   core.EpochPOP,
		Threads:  2,
		Duration: 30 * time.Millisecond,
		Keys:     4096,
		Dist:     workload.Zipf,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.ValueErrors != 0 {
		t.Fatalf("ops=%d errors=%d", res.Ops, res.ValueErrors)
	}
}

// TestRunStoreValidation checks config error paths.
func TestRunStoreValidation(t *testing.T) {
	if _, err := harness.RunStore(harness.StoreConfig{Threads: 0, Keys: 100}); err == nil {
		t.Fatal("zero threads accepted")
	}
	if _, err := harness.RunStore(harness.StoreConfig{Threads: 1, Keys: 1}); err == nil {
		t.Fatal("tiny key population accepted")
	}
	if _, err := harness.RunStore(harness.StoreConfig{
		Threads: 1, Keys: 128, Backing: "hmht",
		Mix: workload.StoreMix{GetPct: 50, ScanPct: 50},
	}); err == nil {
		t.Fatal("scan mix on unordered backing accepted")
	}
	if _, err := harness.RunStore(harness.StoreConfig{
		Threads: 1, Keys: 128,
		Mix: workload.StoreMix{GetPct: 50},
	}); err == nil {
		t.Fatal("mix not summing to 100 accepted")
	}
}

// TestRunStoreUnorderedBacking runs a scan-free mix on the hash-table
// backing (batching but no ordered scans).
func TestRunStoreUnorderedBacking(t *testing.T) {
	res, err := harness.RunStore(harness.StoreConfig{
		Policy:   core.EBR,
		Threads:  2,
		Duration: 20 * time.Millisecond,
		Keys:     1024,
		Backing:  "hmht",
		Mix:      workload.StoreMix{GetPct: 60, PutPct: 20, MGetPct: 15, DeletePct: 5},
		Seed:     13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.ValueErrors != 0 {
		t.Fatalf("ops=%d errors=%d", res.Ops, res.ValueErrors)
	}
}

// TestRunStoreSampledBurst runs a sampled store trial with the chaos
// injectors windowed to the middle of the run: the result must carry a
// timeline that telescopes (chaos.CheckTimeline), the burst must be
// visible as nonzero injector activity, and the chaos window must not
// perturb the run's value correctness.
func TestRunStoreSampledBurst(t *testing.T) {
	res, err := harness.RunStore(harness.StoreConfig{
		Policy:           core.EpochPOP,
		Threads:          4,
		Duration:         300 * time.Millisecond,
		Keys:             2048,
		Shards:           4,
		Groups:           4,
		Dist:             workload.Zipf,
		Chaos:            chaos.Config{Stalls: 2},
		ChaosStart:       75 * time.Millisecond,
		ChaosStop:        150 * time.Millisecond,
		SampleEvery:      20 * time.Millisecond,
		ReclaimThreshold: 256,
		Seed:             7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline == nil {
		t.Fatal("sampled run returned no timeline")
	}
	tl := res.Timeline
	if len(tl.Samples) == 0 {
		t.Fatal("timeline has no samples")
	}
	iv := chaos.Invariants{Policy: core.EpochPOP}
	if vs := iv.CheckTimeline(tl); len(vs) != 0 {
		t.Fatalf("timeline invariant violations: %v", vs)
	}
	if vs := iv.CheckValueErrors(res.ValueErrors); len(vs) != 0 {
		t.Fatalf("value errors under burst: %v", vs)
	}
	if res.Chaos.Stalls == 0 {
		t.Error("burst window completed no stall windows")
	}
	if res.Chaos.Ops == 0 {
		t.Error("burst injectors issued no ops")
	}
	// The timeline's op count telescopes to what the workers did.
	if tl.FinalOps == 0 {
		t.Error("timeline recorded no worker ops")
	}
}
