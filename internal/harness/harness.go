// Package harness runs one benchmark trial: a data structure × a
// reclamation policy × a workload × a thread count, following the
// methodology of the paper's §5.0.2 — prefill to half the key range,
// then a timed execution phase of randomly mixed operations — and
// collecting the metrics its figures plot: throughput, maximum
// retire-list length, peak resident (outstanding) nodes, and unreclaimed
// nodes at the end of the run.
//
// The data structures implement the ds.Map contract, so every trial is
// a KV trial: reads are Gets whose returned values are verified against
// the workload layer's checksum (Result.ValueErrors — a nonzero count
// is the value-plane symptom of a use-after-free), inserts carry
// encoded payloads, and mixes with an OverwritePct component issue
// upsert Puts that replace values on present keys (retiring nodes on
// the replace-node structures). Counters split per operation class
// (get/put/overwrite/delete/scan), and with Config.OpLatency set each
// worker records every operation's wall-clock latency into a per-class
// report.Histogram (merged across workers into Result.OpLat via one
// shared helper), so p50/p99 read and write tails are comparable across
// policies — the update-path tails where NBR restart storms and HP
// fence costs live.
//
// Mixes with a RangePct component additionally account range queries
// (ops, keys returned, throughput) and always record every scan's
// latency (Result.ScanLat, an alias of the scan class in OpLat), the
// long-read tail metric the figures and popbench sweeps compare across
// policies. Range-bearing mixes require a structure implementing
// ds.RangeScanner — DSSkipList or DSABTree, whose scans stress
// reservations in opposite ways (per-node chains vs whole leaves); use
// RangeCapable to test by name.
//
// Worker "threads" are goroutines; sweeping the thread count past
// runtime.GOMAXPROCS reproduces the paper's oversubscription regime
// (§5.0.2 runs 1..288 threads on 144 hardware threads).
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pop/internal/core"
	"pop/internal/ds"
	"pop/internal/ds/abtree"
	"pop/internal/ds/extbst"
	"pop/internal/ds/hashtable"
	"pop/internal/ds/hmlist"
	"pop/internal/ds/lazylist"
	"pop/internal/ds/skiplist"
	"pop/internal/padded"
	"pop/internal/report"
	"pop/internal/telemetry"
	"pop/internal/workload"
)

// DS names accepted by Config.DS, matching the paper's abbreviations
// (plus the skiplist, which is this repository's extension).
const (
	DSHarrisMichaelList = "hml"  // Harris-Michael list
	DSLazyList          = "ll"   // lazy list
	DSHashTable         = "hmht" // hash table over HML buckets
	DSExternalBST       = "dgt"  // external BST (David-Guerraoui-Trigonakis)
	DSABTree            = "abt"  // (a,b)-tree
	DSSkipList          = "skl"  // lock-free skiplist (range queries)
)

// DSNames lists the supported data structures in the paper's order,
// then the extensions.
func DSNames() []string {
	return []string{DSExternalBST, DSHashTable, DSABTree, DSHarrisMichaelList, DSLazyList, DSSkipList}
}

// OpClass is one operation class for counters and latency histograms.
type OpClass int

// The operation classes, in reporting order.
const (
	OpGet OpClass = iota
	OpPut
	OpOverwrite
	OpDelete
	OpScan
	NumOpClasses
)

var opClassNames = [NumOpClasses]string{"get", "put", "overwrite", "delete", "scan"}

// String returns the class's reporting name.
func (c OpClass) String() string {
	if c >= 0 && c < NumOpClasses {
		return opClassNames[c]
	}
	return fmt.Sprintf("OpClass(%d)", int(c))
}

// MixShare returns the class's percentage share of a mix — the one
// OpClass↔Mix mapping, used by reporting layers to decide which
// latency columns a mix can populate.
func (c OpClass) MixShare(m workload.Mix) int {
	switch c {
	case OpGet:
		return m.ContainsPct
	case OpPut:
		return m.InsertPct
	case OpOverwrite:
		return m.OverwritePct
	case OpDelete:
		return m.DeletePct
	default:
		return m.RangePct
	}
}

// classOf maps a workload operation to its reporting class.
func classOf(op workload.Op) OpClass {
	switch op {
	case workload.Contains:
		return OpGet
	case workload.Insert:
		return OpPut
	case workload.Overwrite:
		return OpOverwrite
	case workload.Delete:
		return OpDelete
	default:
		return OpScan
	}
}

// Config describes one trial.
type Config struct {
	DS       string        // data structure (DS* constants)
	Policy   core.Policy   // reclamation scheme
	Threads  int           // worker count
	Duration time.Duration // execution-phase length
	KeyRange int64         // keys drawn from [0, KeyRange)
	Mix      workload.Mix  // operation mixture
	Seed     uint64        // trial seed (reproducible)
	NoPrefil bool          // skip prefilling to KeyRange/2

	// RangeSpan is the width of RangeQuery scans (keys per scan;
	// default workload.DefaultRangeSpan). Only used when Mix.RangePct
	// is nonzero, which requires a DS implementing ds.RangeScanner.
	RangeSpan int64

	// Dist selects the key-popularity distribution (uniform by
	// default; workload.Zipf with ZipfS skew models skewed serving
	// traffic). LongReads role mixes keep their uniform draws.
	Dist  workload.Dist
	ZipfS float64

	// Churn enables the elastic mode: each worker releases its thread
	// handle after Churn.AfterOps operations (donating unreclaimed
	// retires to the domain's orphan queue) and respawns as a fresh
	// goroutine re-leasing a slot. Result.Lifecycle reports the
	// turnover the run generated.
	Churn workload.Churn

	// OpLatency enables per-operation latency histograms for the
	// get/put/overwrite/delete classes (two clock reads per operation —
	// measurable on sub-100ns operations, so figure reproductions leave
	// it off; popbench direct sweeps and the KV figures turn it on).
	// Scan latency is always recorded when the mix scans.
	OpLatency bool

	// Reclamation tuning (0 = paper defaults; see core.Options).
	ReclaimThreshold int
	EpochFreq        int
	CMult            int
	BatchSize        int

	// LongReads enables the §5.1.2 asymmetric workload: the first half of
	// the threads run contains-only over the whole key range; the second
	// half run 50/50 insert/delete over the lowest 5% of the range ("near
	// the head of the list").
	LongReads bool

	// Stall configures the robustness scenario: worker 0 periodically
	// holds an operation open for StallLength while remaining responsive
	// to pings (a thread busy with other work). Non-robust schemes stop
	// reclaiming for the stall's duration.
	StallEvery  time.Duration
	StallLength time.Duration

	// SamplePeriod is the memory-sampling interval (default 2ms).
	SamplePeriod time.Duration

	// SampleEvery enables live telemetry: an interval sampler snapshots
	// the domain's stats mirrors every SampleEvery and Result.Timeline
	// carries the per-window deltas, stall episodes, and whole-run
	// latency histograms. Zero (the default) disables sampling — and
	// with it every per-op cost except the stats mirror's EndOp branch.
	SampleEvery time.Duration
}

func (c Config) withDefaults() (Config, error) {
	if c.Threads <= 0 {
		return c, fmt.Errorf("harness: Threads must be positive")
	}
	if c.KeyRange <= 1 {
		return c, fmt.Errorf("harness: KeyRange must exceed 1")
	}
	if c.Duration <= 0 {
		c.Duration = 100 * time.Millisecond
	}
	if c.Mix == (workload.Mix{}) {
		c.Mix = workload.UpdateHeavy
	}
	// Validate the mix/key-range pair exactly the way workers will build
	// their generators, so a bad config surfaces as an error here instead
	// of a panic mid-sweep.
	if _, err := workload.NewGeneratorErr(1, c.Mix, c.KeyRange); err != nil {
		return c, fmt.Errorf("harness: %w", err)
	}
	if c.RangeSpan <= 0 {
		c.RangeSpan = workload.DefaultRangeSpan
	}
	if c.SamplePeriod <= 0 {
		c.SamplePeriod = 2 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed_cafe
	}
	return c, nil
}

// Result is the outcome of one trial.
type Result struct {
	Config Config

	Ops        uint64  // operations completed in the execution phase
	ReadOps    uint64  // get/contains operations completed (== OpCounts[OpGet])
	RangeOps   uint64  // range queries completed (== OpCounts[OpScan])
	RangeKeys  uint64  // keys returned across all range queries
	Throughput float64 // Ops per second
	ReadTput   float64 // ReadOps per second (Fig. 4's metric)
	RangeTput  float64 // RangeOps per second

	// OpCounts splits Ops by operation class (get/put/overwrite/
	// delete/scan) — the KV serving view of the trial.
	OpCounts [NumOpClasses]uint64

	// ValueErrors counts Get results whose value failed the workload
	// checksum. Nonzero means a stale or corrupt value was served —
	// the value-plane symptom of a reclamation bug.
	ValueErrors uint64

	MaxRetire    int   // max retire-list length across threads (paper's memory plots)
	PeakResident int64 // peak outstanding nodes (max resident memory analogue)
	Unreclaimed  int64 // retired-but-unfreed nodes at measurement end (pre-flush)
	LeakedAfter  int64 // unreclaimed after a quiescent flush (0 except NR)

	// Allocation accounting: Go-heap allocation rate over the measured
	// phase (runtime.MemStats deltas between release and worker
	// quiescence, divided by Ops) — the whole-process view that makes a
	// hot-path memory diet visible in every sweep, not just in
	// microbenches. Pool-recycled nodes and arena slots cost zero here;
	// what shows up is whatever the hot loops still ask the Go heap for.
	AllocsPerOp     float64 // heap allocations per operation
	AllocBytesPerOp float64 // heap bytes per operation

	// OpLat holds per-class latency histograms (ns), merged across
	// workers. The scan class is populated whenever the mix scans; the
	// other classes only when Config.OpLatency is set. Absent classes
	// are nil.
	OpLat [NumOpClasses]*report.Histogram

	// ScanLat aliases OpLat[OpScan]: every range scan's wall-clock
	// latency, the long-read tail metric (p50/p99) per policy. Nil when
	// the mix has no RangePct component.
	ScanLat *report.Histogram

	Reclaim core.Stats // aggregated reclamation counters

	// Lifecycle reports thread-slot turnover: releases, peak leases and
	// orphan donation/adoption volumes — the explainability counters
	// for churn (elastic-mode) trials.
	Lifecycle core.LifecycleStats

	// Timeline is the live-telemetry record of the run (nil unless
	// Config.SampleEvery is set): interval deltas of the reclamation
	// counters, unreclaimed watermarks, per-window ping-ack/pass p99s,
	// and stalled-reader episodes.
	Timeline *telemetry.Timeline
}

// memMap is a Map that can report pool occupancy.
type memMap interface {
	ds.Map
	Outstanding() int64
}

// build instantiates the data structure named in cfg.
func build(cfg Config, d *core.Domain) (memMap, error) {
	switch cfg.DS {
	case DSHarrisMichaelList:
		return hmlist.New(d), nil
	case DSLazyList:
		return lazylist.New(d), nil
	case DSHashTable:
		return hashtable.New(d, cfg.KeyRange, 6), nil
	case DSExternalBST:
		return extbst.New(d), nil
	case DSABTree:
		return abtree.New(d), nil
	case DSSkipList:
		return skiplist.New(d), nil
	default:
		return nil, fmt.Errorf("harness: unknown data structure %q", cfg.DS)
	}
}

// RangeCapable reports whether the named data structure supports range
// queries (implements ds.RangeScanner) and may therefore run mixes with
// a RangePct component. It answers by building a throwaway instance, so
// it stays in sync with build automatically.
func RangeCapable(name string) bool {
	m, err := build(Config{DS: name, KeyRange: 2}, core.NewDomain(core.NR, 1, nil))
	if err != nil {
		return false
	}
	_, ok := m.(ds.RangeScanner)
	return ok
}

// workerRole resolves worker id's operation mix and key range. Under
// LongReads (§5.1.2) the first half of the workers run contains-only
// over the whole range and the second half run update-heavy over the
// lowest 5% ("near the head of the list"); otherwise every worker runs
// the configured mix.
func workerRole(cfg Config, id int) (workload.Mix, int64) {
	if !cfg.LongReads {
		return cfg.Mix, cfg.KeyRange
	}
	if id < cfg.Threads/2 || cfg.Threads == 1 {
		return workload.Mix{ContainsPct: 100}, cfg.KeyRange
	}
	keyRange := cfg.KeyRange / 20
	if keyRange < 2 {
		keyRange = 2
	}
	return workload.UpdateHeavy, keyRange
}

// workerCounters receives one worker's tallies: total ops, per-class
// ops, range keys, value-checksum failures, and the per-class latency
// histograms (nil when that class is not profiled).
type workerCounters struct {
	ops       uint64
	byClass   [NumOpClasses]uint64
	rangeKeys uint64
	valueErrs uint64
	lats      [NumOpClasses]*report.Histogram
}

// Run executes one trial.
func Run(cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	d := core.NewDomain(cfg.Policy, cfg.Threads, &core.Options{
		ReclaimThreshold: cfg.ReclaimThreshold,
		EpochFreq:        cfg.EpochFreq,
		CMult:            cfg.CMult,
		BatchSize:        cfg.BatchSize,
	})
	m, err := build(cfg, d)
	if err != nil {
		return Result{}, err
	}
	if cfg.Mix.RangePct > 0 {
		if _, ok := m.(ds.RangeScanner); !ok {
			return Result{}, fmt.Errorf("harness: mix has RangePct=%d but %q does not support range queries", cfg.Mix.RangePct, cfg.DS)
		}
	}
	// All handles flow through the domain's pool: workers lease their
	// slot (error-returning path, so a misconfigured sweep fails with a
	// message instead of a stack trace) and, in churn mode, release and
	// re-lease it mid-measurement.
	pool := core.NewHandles(d)
	threads := make([]*core.Thread, cfg.Threads)
	for i := range threads {
		th, err := pool.Acquire()
		if err != nil {
			return Result{}, fmt.Errorf("harness: worker %d: %w", i, err)
		}
		threads[i] = th
	}

	// Per-worker generators go through the error-returning constructor
	// up front: a bad role-derived mix surfaces here as an error instead
	// of panicking inside a worker goroutine mid-sweep.
	gens := make([]*workload.Generator, cfg.Threads)
	for i := range gens {
		mix, keyRange := workerRole(cfg, i)
		gen, err := workload.NewGeneratorErr(cfg.Seed+uint64(i)*0x9e3779b97f4a7c15+1, mix, keyRange)
		if err != nil {
			return Result{}, fmt.Errorf("harness: worker %d: %w", i, err)
		}
		gen.SetRangeSpan(cfg.RangeSpan)
		if cfg.Dist != workload.Uniform && !cfg.LongReads {
			if err := gen.SetDist(cfg.Dist, cfg.ZipfS); err != nil {
				return Result{}, fmt.Errorf("harness: worker %d: %w", i, err)
			}
		}
		gens[i] = gen
	}

	// Per-worker counters and latency histograms (single-writer, merged
	// after the run): scans are always timed when the mix scans; the
	// other classes only under OpLatency, so figure reproductions don't
	// pay the clock reads.
	workers := make([]workerCounters, cfg.Threads)
	for i := range workers {
		if cfg.Mix.RangePct > 0 {
			workers[i].lats[OpScan] = new(report.Histogram)
		}
		if cfg.OpLatency {
			for _, c := range []OpClass{OpGet, OpPut, OpOverwrite, OpDelete} {
				workers[i].lats[c] = new(report.Histogram)
			}
		}
	}

	// Live per-worker op counters (padded: workers publish on owned
	// lines, the telemetry sampler sums them). Only written when a
	// sampler is attached.
	live := make([]padded.Uint64, cfg.Threads)
	var tsampler *telemetry.Sampler
	if cfg.SampleEvery > 0 {
		tsampler = telemetry.NewSampler(d, telemetry.Config{
			Every: cfg.SampleEvery,
			Ops: func() uint64 {
				var sum uint64
				for i := range live {
					sum += live[i].Load()
				}
				return sum
			},
		})
	}

	if !cfg.NoPrefil {
		if err := prefill(cfg, m, threads); err != nil {
			return Result{}, err
		}
	}

	var (
		stop      atomic.Bool
		release   = make(chan struct{})
		flushGo   = make(chan struct{})
		loopsDone sync.WaitGroup // workers out of their op loops (quiescent)
		finished  sync.WaitGroup // workers fully done (flushed)
	)
	// Each worker is a chain of "legs": a leg runs the op loop until
	// stop (or, in churn mode, for Churn.AfterOps operations), and a
	// churned leg releases its handle and spawns a fresh goroutine that
	// re-leases a slot and continues — worker identity survives, thread
	// identity does not. The terminal leg keeps its handle, parks until
	// everyone stopped, and flushes (adopting any orphans its departed
	// predecessors donated).
	var runLeg func(id int, th *core.Thread)
	runLeg = func(id int, th *core.Thread) {
		var lv *padded.Uint64
		if tsampler != nil {
			lv = &live[id]
		}
		runWorker(cfg, m, th, gens[id], id, &stop, &workers[id], lv)
		if cfg.Churn.Enabled() && !stop.Load() {
			pool.Release(th)
			nth, err := pool.Acquire()
			if err != nil {
				// Unreachable: every chain holds at most one handle, so a
				// slot is always free for the successor.
				panic(fmt.Sprintf("harness: churn re-lease: %v", err))
			}
			go runLeg(id, nth)
			return
		}
		loopsDone.Done()
		// Park quiescent until everyone stopped, then flush from the
		// owner goroutine (a leased handle is not transferable).
		<-flushGo
		th.Flush()
		finished.Done()
	}
	for i := 0; i < cfg.Threads; i++ {
		loopsDone.Add(1)
		finished.Add(1)
		go func(id int) {
			<-release
			runLeg(id, threads[id])
		}(i)
	}

	// Memory sampler: tracks peak outstanding nodes during execution.
	var peak atomic.Int64
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for !stop.Load() {
			if v := m.Outstanding(); v > peak.Load() {
				peak.Store(v)
			}
			time.Sleep(cfg.SamplePeriod)
		}
	}()

	if tsampler != nil {
		tsampler.Start() // base snapshot excludes prefill-phase noise
	}
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	close(release)
	time.Sleep(cfg.Duration)
	stop.Store(true)
	loopsDone.Wait() // every worker is quiescent now
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	<-samplerDone

	// End-of-run memory state, before any flush reclaims the backlog.
	if v := m.Outstanding(); v > peak.Load() {
		peak.Store(v)
	}
	unreclaimed := d.Unreclaimed()

	close(flushGo)
	finished.Wait()

	// Stop after the flush barrier: every thread has republished its
	// mirror, so Timeline.Final equals the owner-only Stats exactly.
	var timeline *telemetry.Timeline
	if tsampler != nil {
		timeline = tsampler.Stop()
	}

	res := Result{
		Config:       cfg,
		PeakResident: peak.Load(),
		Unreclaimed:  unreclaimed,
		LeakedAfter:  d.Unreclaimed(),
		Reclaim:      d.Stats(),
		Lifecycle:    d.Lifecycle(),
		Timeline:     timeline,
	}
	for i := range workers {
		res.Ops += workers[i].ops
		res.RangeKeys += workers[i].rangeKeys
		res.ValueErrors += workers[i].valueErrs
		for c := OpClass(0); c < NumOpClasses; c++ {
			res.OpCounts[c] += workers[i].byClass[c]
		}
	}
	res.ReadOps = res.OpCounts[OpGet]
	res.RangeOps = res.OpCounts[OpScan]
	if res.Ops > 0 {
		res.AllocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(res.Ops)
		res.AllocBytesPerOp = float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(res.Ops)
	}
	res.Throughput = float64(res.Ops) / cfg.Duration.Seconds()
	res.ReadTput = float64(res.ReadOps) / cfg.Duration.Seconds()
	res.RangeTput = float64(res.RangeOps) / cfg.Duration.Seconds()
	res.MaxRetire = res.Reclaim.MaxRetire
	// One merge path for every histogram class (the scan class and the
	// per-op classes alike): collect each class across workers and fold.
	for c := OpClass(0); c < NumOpClasses; c++ {
		per := make([]*report.Histogram, len(workers))
		for i := range workers {
			per[i] = workers[i].lats[c]
		}
		res.OpLat[c] = report.MergeAll(per...)
	}
	res.ScanLat = res.OpLat[OpScan]
	return res, nil
}

// runWorker is one worker leg's execution phase. gen is the worker's
// private generator (already role-resolved, see workerRole; it rides
// the whole leg chain, so churn changes thread identity but not the op
// stream). Counters accumulate in stack locals and fold into c once
// after the loop: the workers slice is contiguous, so per-op stores
// there would false-share cache lines between adjacent workers on the
// harness's hottest path. (The histograms are separate heap
// allocations, so recording into them does not share lines across
// workers.) In churn mode the loop additionally ends after
// cfg.Churn.AfterOps operations so the caller can rotate the handle.
func runWorker(cfg Config, m memMap, th *core.Thread, gen *workload.Generator, id int, stop *atomic.Bool, c *workerCounters, live *padded.Uint64) {
	scanner, _ := m.(ds.RangeScanner) // non-nil whenever mix.RangePct > 0

	staller := cfg.StallEvery > 0 && cfg.StallLength > 0 && id == 0
	nextStall := time.Now().Add(cfg.StallEvery)

	quota := cfg.Churn.AfterOps // 0 = no churn: run until stop
	var (
		ops       uint64
		byClass   [NumOpClasses]uint64
		rangeKeys uint64
		valueErrs uint64
		lastPub   uint64 // ops already folded into the live counter
	)
	for !stop.Load() && (quota == 0 || ops < quota) {
		if staller && time.Now().After(nextStall) {
			// Busy delay inside an operation: the thread pins its epoch /
			// read position but keeps answering pings, exactly the
			// "delayed but running" scenario EpochPOP is built for.
			th.StartOp()
			end := time.Now().Add(cfg.StallLength)
			for time.Now().Before(end) && !stop.Load() {
				th.Poll()
			}
			th.EndOp()
			nextStall = time.Now().Add(cfg.StallEvery)
		}
		op, key := gen.Next()
		class := classOf(op)
		hist := c.lats[class]
		var start time.Time
		if hist != nil {
			start = time.Now()
		}
		switch op {
		case workload.Contains: // Get: verify the served value's checksum
			if v, ok := m.Get(th, key); ok && !workload.ValueValid(key, v) {
				valueErrs++
			}
		case workload.Insert: // Put-if-absent with an encoded payload
			m.PutIfAbsent(th, key, gen.Value(key))
		case workload.Overwrite: // upsert Put: replaces values on present keys
			m.Put(th, key, gen.Value(key))
		case workload.Delete:
			m.Delete(th, key)
		default: // workload.RangeQuery
			rangeKeys += uint64(scanner.RangeCount(th, key, key+gen.RangeSpan()-1))
		}
		if hist != nil {
			hist.Record(time.Since(start).Nanoseconds())
		}
		byClass[class]++
		ops++
		// Publish live throughput on a coarse cadence (one Add to an
		// owned padded line every 512 ops — invisible next to the ops
		// themselves) so the telemetry sampler sees progress mid-leg.
		if live != nil && ops-lastPub >= 512 {
			live.Add(ops - lastPub)
			lastPub = ops
		}
	}
	if live != nil {
		live.Add(ops - lastPub)
	}
	// Accumulate (don't overwrite): a churned worker's counters span
	// many legs.
	c.ops += ops
	c.rangeKeys += rangeKeys
	c.valueErrs += valueErrs
	for i := range byClass {
		c.byClass[i] += byClass[i]
	}
}

// prefill inserts until the structure holds about KeyRange/2 keys
// (§5.0.2), splitting the work across all threads. Runs on the worker
// threads'"own" goroutines to respect handle ownership. Prefilled keys
// carry encoded values so execution-phase Gets verify from the start.
func prefill(cfg Config, m memMap, threads []*core.Thread) error {
	target := cfg.KeyRange / 2
	per := target / int64(len(threads))
	extra := target - per*int64(len(threads))
	var wg sync.WaitGroup
	for i, th := range threads {
		quota := per
		if i == 0 {
			quota += extra
		}
		gen, err := workload.NewGeneratorErr(cfg.Seed^0xfeed+uint64(i), workload.UpdateHeavy, cfg.KeyRange)
		if err != nil {
			return fmt.Errorf("harness: prefill: %w", err)
		}
		wg.Add(1)
		go func(th *core.Thread, gen *workload.Generator, quota int64) {
			defer wg.Done()
			done := int64(0)
			attempts := int64(0)
			for done < quota {
				k := gen.Key()
				if m.PutIfAbsent(th, k, gen.Value(k)) {
					done++
				}
				attempts++
				if attempts > 50*quota+1000 {
					// The range is saturated (heavily duplicated draws);
					// good enough for a prefill.
					return
				}
			}
		}(th, gen, quota)
	}
	wg.Wait()
	return nil
}
